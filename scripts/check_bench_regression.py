#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against committed baselines.

Usage: check_bench_regression.py <baseline.json> <current.json> [tolerance]

The benchmarks report MODELED cycles (deterministic cost model), so runs are
reproducible; the tolerance (default 10%) absorbs intentional cost-model
retuning without letting a real fast-path regression slip through.

Checks, per row matched by "name":
  * cost columns (orig / auth / auth_cached / auth_shadow) may not grow by
    more than the tolerance over the baseline;
  * auth_cached may never exceed auth (the cache must never make a call
    more expensive than full verification);
  * auth_shadow may never exceed auth_cached (the policy-state shadow must
    never make a call more expensive than the cache alone). Baselines that
    predate the auth_shadow column are tolerated with a note -- only rows
    that carry the column are gated;
  * auth_inline may never exceed auth_shadow (the trap-less Inline tier must
    never make a call more expensive than the Shadowed tier it promotes
    from). Baselines that predate the column are tolerated with a note;
  * table4 rows must keep overhead_reduction_pct >= 30 (the acceptance bar
    for the verified-call cache), and the getpid() row must keep
    overhead_inline_pct <= 5 (the Inline tier's acceptance bar: near-zero
    residual overhead on the paper's worst-case microbenchmark);
  * table5 rows (parallel install/campaign throughput) must stay
    deterministic and keep modeled_speedup_j8 >= 2.0. Rows carrying
    modeled_rekey_speedup (the differential Rekeyer's modeled advantage over
    a full reinstall, priced per-byte from the runtime cost model) must keep
    it >= 10.0. Wall-clock columns (wall_j*) are host-dependent -- a
    single-core runner shows no speedup -- so they are printed as notes,
    never gated;
  * wall-clock engine columns are INFORMATIONAL and never gated:
    wall_ns_per_instr (tables 4/6, host ns per retired guest instruction),
    wall_ns_per_instr_switch / dispatch_speedup (table 6, threaded engine vs
    the reference switch interpreter), and the table4 top-level
    cmac_blocks_per_sec / cmac_blocks_per_sec_scratch / aes_backend trio.
    They are printed as trend notes so a wall-clock regression is visible in
    the CI log without making the gate host-dependent;
  * table7 rows (fleet-scale multi-tenant throughput, including the
    per-tenant-key fleet_1k_keys row: one install, N differential Rekeyer
    passes) must stay
    deterministic across job counts, report zero invariant-oracle trips,
    keep modeled_vsps_j8 (verified syscalls per modeled second) from falling
    more than the tolerance below the baseline, and keep per_tenant_bytes
    (retained TenantState shard bytes) from growing more than the tolerance.
    Wall-clock columns are again notes, never gated.

Exit status: 0 = within bounds, 1 = regression, 2 = usage/parse error.
"""

import json
import sys

COST_FIELDS = ("orig", "auth", "auth_cached", "auth_shadow", "auth_inline")
MIN_TABLE4_REDUCTION_PCT = 30.0
MAX_TABLE4_GETPID_INLINE_OVERHEAD_PCT = 5.0
MIN_TABLE5_MODELED_SPEEDUP_J8 = 2.0
MIN_TABLE5_REKEY_SPEEDUP = 10.0


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) == 4 else 0.10

    base_rows = {r["name"]: r for r in baseline.get("rows", [])}
    cur_rows = {r["name"]: r for r in current.get("rows", [])}
    table = current.get("table", "?")
    failures = []

    missing = set(base_rows) - set(cur_rows)
    if missing:
        failures.append(f"rows disappeared from {table}: {sorted(missing)}")

    for name, cur in cur_rows.items():
        base = base_rows.get(name)
        if base is None:
            print(f"  note: new row '{name}' (no baseline yet)")
            continue
        # Engine wall-clock trend notes (host-dependent, never gated).
        if "wall_ns_per_instr" in cur:
            trend = ""
            if base.get("wall_ns_per_instr"):
                ratio = cur["wall_ns_per_instr"] / base["wall_ns_per_instr"]
                trend = f", {ratio:.2f}x baseline"
            print(
                f"  note: {name}/wall_ns_per_instr = "
                f"{cur['wall_ns_per_instr']:.2f}ns{trend} (not gated)"
            )
        if "dispatch_speedup" in cur:
            print(
                f"  note: {name}/dispatch_speedup = "
                f"{cur['dispatch_speedup']:.2f}x threaded vs switch (not gated)"
            )
        for field in COST_FIELDS:
            if field not in base or field not in cur:
                continue
            limit = base[field] * (1.0 + tolerance)
            if cur[field] > limit:
                failures.append(
                    f"{table}/{name}/{field}: {cur[field]:.1f} exceeds baseline "
                    f"{base[field]:.1f} by more than {tolerance:.0%}"
                )
        if "auth" in cur and "auth_cached" in cur and cur["auth_cached"] > cur["auth"]:
            failures.append(
                f"{table}/{name}: auth_cached ({cur['auth_cached']:.1f}) exceeds "
                f"auth ({cur['auth']:.1f}) -- the cache made calls slower"
            )
        if "auth_shadow" in cur and "auth_cached" in cur:
            if cur["auth_shadow"] > cur["auth_cached"]:
                failures.append(
                    f"{table}/{name}: auth_shadow ({cur['auth_shadow']:.1f}) exceeds "
                    f"auth_cached ({cur['auth_cached']:.1f}) -- the shadow made "
                    f"calls slower"
                )
            if "auth_shadow" not in base:
                print(
                    f"  note: {name}/auth_shadow has no baseline yet "
                    f"(baseline predates the column -- growth not gated)"
                )
        if "auth_inline" in cur and "auth_shadow" in cur:
            if cur["auth_inline"] > cur["auth_shadow"]:
                failures.append(
                    f"{table}/{name}: auth_inline ({cur['auth_inline']:.1f}) exceeds "
                    f"auth_shadow ({cur['auth_shadow']:.1f}) -- the Inline tier made "
                    f"calls slower than the tier it promotes from"
                )
            if "auth_inline" not in base:
                print(
                    f"  note: {name}/auth_inline has no baseline yet "
                    f"(baseline predates the column -- growth not gated)"
                )
        if table == "table4":
            redu = cur.get("overhead_reduction_pct")
            if redu is not None and redu < MIN_TABLE4_REDUCTION_PCT:
                failures.append(
                    f"{table}/{name}: overhead reduction {redu:.1f}% fell below "
                    f"the {MIN_TABLE4_REDUCTION_PCT:.0f}% acceptance bar"
                )
            inline_ovh = cur.get("overhead_inline_pct")
            if (
                name == "getpid()"
                and inline_ovh is not None
                and inline_ovh > MAX_TABLE4_GETPID_INLINE_OVERHEAD_PCT
            ):
                failures.append(
                    f"{table}/{name}: inline overhead {inline_ovh:.2f}% exceeds "
                    f"the {MAX_TABLE4_GETPID_INLINE_OVERHEAD_PCT:.0f}% acceptance "
                    f"bar for the trap-less tier"
                )
        if table == "table5":
            if cur.get("deterministic") is not True:
                failures.append(
                    f"{table}/{name}: output is NOT deterministic across job "
                    f"counts -- the executor broke the byte-identical contract"
                )
            speedup = cur.get("modeled_speedup_j8")
            if speedup is not None and speedup < MIN_TABLE5_MODELED_SPEEDUP_J8:
                failures.append(
                    f"{table}/{name}: modeled speedup at 8 jobs {speedup:.2f}x "
                    f"fell below the {MIN_TABLE5_MODELED_SPEEDUP_J8:.1f}x bar"
                )
            rekey = cur.get("modeled_rekey_speedup")
            if rekey is not None and rekey < MIN_TABLE5_REKEY_SPEEDUP:
                failures.append(
                    f"{table}/{name}: modeled rekey speedup {rekey:.2f}x fell "
                    f"below the {MIN_TABLE5_REKEY_SPEEDUP:.0f}x differential "
                    f"re-signing bar"
                )
            if "modeled_rekey_speedup" in base and rekey is None:
                failures.append(
                    f"{table}/{name}: modeled_rekey_speedup column disappeared "
                    f"(baseline has it)"
                )
            for wall in ("wall_j1", "wall_j2", "wall_j8"):
                if wall in cur:
                    print(
                        f"  note: {name}/{wall} = {cur[wall]:.3f}s "
                        f"(host-dependent, not gated)"
                    )
        if table == "table7":
            if cur.get("deterministic") is not True:
                failures.append(
                    f"{table}/{name}: output is NOT deterministic across job "
                    f"counts -- the audit pipeline broke the byte-identical "
                    f"contract"
                )
            if cur.get("trips", 0) != 0:
                failures.append(
                    f"{table}/{name}: {cur['trips']} fleet invariant-oracle "
                    f"trips (must be zero)"
                )
            vsps = cur.get("modeled_vsps_j8")
            base_vsps = base.get("modeled_vsps_j8")
            if vsps is not None and base_vsps is not None:
                floor = base_vsps * (1.0 - tolerance)
                if vsps < floor:
                    failures.append(
                        f"{table}/{name}: modeled throughput {vsps:.0f} "
                        f"verified-syscalls/s fell more than {tolerance:.0%} "
                        f"below baseline {base_vsps:.0f}"
                    )
            bytes_per = cur.get("per_tenant_bytes")
            base_bytes = base.get("per_tenant_bytes")
            if bytes_per is not None and base_bytes is not None:
                limit = base_bytes * (1.0 + tolerance)
                if bytes_per > limit:
                    failures.append(
                        f"{table}/{name}: per-tenant shard grew to "
                        f"{bytes_per} bytes, more than {tolerance:.0%} over "
                        f"baseline {base_bytes}"
                    )
            for wall in ("wall_j1", "wall_j2", "wall_j8"):
                if wall in cur:
                    print(
                        f"  note: {name}/{wall} = {cur[wall]:.3f}s "
                        f"(host-dependent, not gated)"
                    )

    # Table4's CMAC engine throughput trio (top-level, informational).
    if "cmac_blocks_per_sec" in current:
        bps = current["cmac_blocks_per_sec"]
        scratch = current.get("cmac_blocks_per_sec_scratch")
        backend = current.get("aes_backend", "?")
        ratio = f", {bps / scratch:.1f}x scratch" if scratch else ""
        print(
            f"  note: cmac_blocks_per_sec = {bps / 1e6:.1f}M ({backend}{ratio}) "
            f"(not gated)"
        )

    if failures:
        print(f"BENCH REGRESSION in {table}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"{table}: {len(cur_rows)} rows within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
