// Attack demo (§4.1): a vulnerable program under ASC enforcement.
//
// vuln_echo reads a file name from stdin into a 64-byte stack buffer with
// an unchecked read() -- classic stack smash -- then runs
// spawn("/bin/ls", <name>). This demo runs it four ways:
//   1. benign input                      -> works
//   2. shellcode injection (new spawn)   -> killed: unauthenticated call
//   3. out-of-order reuse of a real call -> killed: predecessor violation
//   4. authenticated-string overwrite    -> killed: string MAC mismatch
#include <cstdio>

#include "core/asc.h"
#include "isa/encode.h"
#include "util/hex.h"

using namespace asc;

namespace {

std::uint32_t find_as_body(const binary::Image& img, const std::string& content) {
  const auto* sec = img.find_section(binary::SectionKind::AsData);
  for (std::size_t i = 20; i + content.size() <= sec->bytes.size(); ++i) {
    if (std::equal(content.begin(), content.end(),
                   sec->bytes.begin() + static_cast<std::ptrdiff_t>(i)) &&
        util::get_u32(sec->bytes, i - 20) == content.size()) {
      return sec->vaddr() + static_cast<std::uint32_t>(i);
    }
  }
  return 0;
}

std::string overflow_payload(std::uint32_t ret, const std::vector<std::uint8_t>& code) {
  std::string s(64, 'A');
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>(ret >> (8 * i)));
  s.append(code.begin(), code.end());
  return s;
}

void report(const char* what, const vm::RunResult& r) {
  if (r.violation != os::Violation::None) {
    std::printf("%-38s KILLED  (%s: %s)\n", what, os::violation_name(r.violation).c_str(),
                r.violation_detail.c_str());
  } else if (r.completed) {
    std::printf("%-38s ok      (exit %d)\n", what, r.exit_code);
  } else {
    std::printf("%-38s crashed (%s)\n", what, r.violation_detail.c_str());
  }
}

}  // namespace

int main() {
  System sys(os::Personality::LinuxSim);
  auto& fs = sys.kernel().fs();
  const std::string content = "alpha\nbravo\n";
  auto ino = fs.open("/", "/notes.txt", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(content.begin(), content.end()), false);

  sys.install_and_register("/bin/ls", apps::build_tool_cat(os::Personality::LinuxSim));
  auto inst = sys.install(apps::build_vuln_echo(os::Personality::LinuxSim));

  // Recon: capture the vulnerable buffer's address (execution is
  // deterministic, so it is stable across runs).
  std::uint32_t buf = 0;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (p.cpu.regs[0] == 3 && p.cpu.regs[1] == 0 && buf == 0) buf = p.cpu.regs[2];
  };
  report("benign run (/notes.txt)", sys.machine().run(inst.image, {}, "/notes.txt\n"));
  sys.machine().pre_syscall_hook = nullptr;
  const std::uint32_t code_addr = buf + 68;

  // ---- attack 1: injected shellcode spawning /bin/sh ----
  {
    std::vector<std::uint8_t> code;
    isa::encode({isa::Op::Movi, 1, 0, 0}, code);  // patched below
    isa::encode({isa::Op::Movi, 2, 0, 0}, code);
    isa::encode({isa::Op::Movi, 0, 0, 11}, code);  // spawn
    isa::encode({isa::Op::Syscall}, code);
    isa::encode({isa::Op::Halt}, code);
    const std::uint32_t sh = code_addr + static_cast<std::uint32_t>(code.size());
    code.clear();
    isa::encode({isa::Op::Movi, 1, 0, sh}, code);
    isa::encode({isa::Op::Movi, 2, 0, 0}, code);
    isa::encode({isa::Op::Movi, 0, 0, 11}, code);
    isa::encode({isa::Op::Syscall}, code);
    isa::encode({isa::Op::Halt}, code);
    for (char c : std::string("/bin/sh")) code.push_back(static_cast<std::uint8_t>(c));
    code.push_back(0);
    report("shellcode spawn(\"/bin/sh\")", sys.machine().run(inst.image, {},
                                                             overflow_payload(code_addr, code)));
  }

  // ---- attack 2: jump to the config-open out of control-flow order ----
  {
    const policy::SyscallPolicy* open_pol = nullptr;
    for (const auto& p : inst.policies) {
      if (p.sys == os::SysId::Open) open_pol = &p;
    }
    std::vector<std::uint8_t> code;
    isa::encode({isa::Op::Movi, 1, 0, find_as_body(inst.image, "/etc/vuln.conf")}, code);
    isa::encode({isa::Op::Movi, 2, 0, 0}, code);
    isa::encode({isa::Op::Movi, 3, 0, 0}, code);
    isa::encode({isa::Op::Movi, 0, 0, open_pol->sysno}, code);
    isa::encode({isa::Op::Jmp, 0, 0, open_pol->call_site - 30}, code);
    report("out-of-order reuse of real open()",
           sys.machine().run(inst.image, {}, overflow_payload(code_addr, code)));
  }

  // ---- attack 3: overwrite the authenticated "/bin/ls" string ----
  {
    const policy::SyscallPolicy* spawn_pol = nullptr;
    for (const auto& p : inst.policies) {
      if (p.sys == os::SysId::Spawn) spawn_pol = &p;
    }
    const std::uint32_t ls = find_as_body(inst.image, "/bin/ls");
    std::vector<std::uint8_t> code;
    isa::encode({isa::Op::Movi, 11, 0, ls}, code);
    isa::encode({isa::Op::Movi, 12, 0, 's'}, code);
    isa::encode({isa::Op::Storeb, 12, 11, 5}, code);
    isa::encode({isa::Op::Movi, 12, 0, 'h'}, code);
    isa::encode({isa::Op::Storeb, 12, 11, 6}, code);
    isa::encode({isa::Op::Movi, 1, 0, ls}, code);
    isa::encode({isa::Op::Movi, 2, 0, 0}, code);
    isa::encode({isa::Op::Movi, 0, 0, spawn_pol->sysno}, code);
    isa::encode({isa::Op::Jmp, 0, 0, spawn_pol->call_site - 30}, code);
    report("AS overwrite \"/bin/ls\"->\"/bin/sh\"",
           sys.machine().run(inst.image, {}, overflow_payload(code_addr, code)));
  }

  std::printf("\nkernel audit log:\n");
  for (const auto& e : sys.kernel().event_log()) {
    if (e.rfind("ALERT", 0) == 0) std::printf("  %s\n", e.c_str());
  }
  return 0;
}
