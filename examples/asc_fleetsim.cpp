// asc-fleetsim -- fleet-scale multi-tenant simulation.
//
// Drives N tenant lifecycles, each on its own System (= its own kernel =
// its own TenantState shard), fanned out over the work-stealing executor,
// with staggered mid-run key rotations, monitor swaps, and respawn churn.
// Every tenant's audit records stream into the lock-light aggregated
// pipeline; the serial merge is byte-identical at any job count. Exit
// status is nonzero if any invariant oracle trips.
//
//   asc-fleetsim                            1000 tenants, seed 1
//   asc-fleetsim --tenants 10000 --jobs 8   10k tenants on 8 workers
//   asc-fleetsim --tamper 3,17              tamper lifecycles for tenants
//                                           3 and 17 (others unperturbed)
//   asc-fleetsim --rotate 7 --swap 5 --respawn 3   churn cadences (0 = off)
//   asc-fleetsim --trace                    print the per-tenant trace
//   asc-fleetsim --audit                    print the merged audit stream
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "util/executor.h"

using namespace asc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: asc-fleetsim [--tenants N] [--seed N] [--jobs N]\n"
               "                    [--rotate N] [--swap N] [--respawn N]\n"
               "                    [--tamper t1,t2,...] [--trace] [--audit]\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetConfig cfg;
  bool print_trace = false;
  bool print_audit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    auto cadence = [&](int& field) {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 0) return false;
      field = std::atoi(v);
      return true;
    };
    if (a == "--tenants") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return usage();
      cfg.tenants = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--jobs") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return usage();
      util::Executor::set_global_jobs(std::atoi(v));
    } else if (a == "--rotate") {
      if (!cadence(cfg.rotate_every)) return usage();
    } else if (a == "--swap") {
      if (!cadence(cfg.swap_every)) return usage();
    } else if (a == "--respawn") {
      if (!cadence(cfg.respawn_every)) return usage();
    } else if (a == "--tamper") {
      const char* v = next();
      if (v == nullptr) return usage();
      for (const auto& t : split_csv(v)) cfg.tamper_tenants.push_back(std::atoi(t.c_str()));
      if (cfg.tamper_tenants.empty()) return usage();
    } else if (a == "--trace") {
      print_trace = true;
    } else if (a == "--audit") {
      print_audit = true;
    } else {
      return usage();
    }
  }

  std::printf("== fleet: %d tenants, seed %llu ==\n", cfg.tenants,
              static_cast<unsigned long long>(cfg.seed));
  fleet::Driver driver(cfg);
  const fleet::FleetResult r = driver.run();
  if (print_trace) {
    for (const auto& line : r.verdict_trace) std::printf("%s\n", line.c_str());
  }
  if (print_audit) {
    for (const auto& line : r.audit.lines) std::printf("%s\n", line.c_str());
  }
  std::printf("%s", r.summary().c_str());
  if (!r.ok()) {
    std::printf("FAIL: fleet invariant oracle tripped\n");
    return 1;
  }
  std::printf("OK: %zu tenant lifecycles, all oracles held\n", r.tenants.size());
  return 0;
}
