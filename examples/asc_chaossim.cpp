// asc-chaossim -- lifecycle chaos engine over many concurrent guest Systems.
//
// Drives N tenant lifecycles (install, seeded churn, one fault run, one
// recovery run, teardown) with faults landing at trap-pipeline stage
// boundaries and injected internal inconsistencies exercising the per-pid
// health machine. After every run, invariant oracles audit the kernel's
// bookkeeping: watch-range accounting, fast-path caches, health records,
// audit-log coherence. Exit status is nonzero if any oracle trips; every
// trip line carries the seed/tenant/spec needed to replay it alone.
//
//   asc-chaossim                          32 tenants, seed 1
//   asc-chaossim --tenants 200 --seed 7   bigger storm
//   asc-chaossim --jobs 8                 lifecycles on 8 worker threads
//                                         (verdict trace identical at any
//                                         job count)
//   asc-chaossim --stages enforce,audit   restrict fault strike points
//   asc-chaossim --classes rotation-during-trap,teardown-mid-verify
//   asc-chaossim --trace                  print the per-tenant verdict trace
#include <cstdio>
#include <cstring>
#include <string>

#include "core/asc.h"
#include "fault/chaos.h"
#include "util/executor.h"

using namespace asc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: asc-chaossim [--tenants N] [--seed N] [--jobs N] [--trace]\n"
               "                    [--stages s1,s2,...] [--classes c1,c2,...]\n"
               "                    [--inline]\n"
               "--inline: enable the trap-less Inline tier on every tenant kernel\n"
               "          (widens the class pool with promo-toctou and adds a\n"
               "          promoting getpid-loop guest)\n"
               "stages: trap enforce dispatch audit\nclasses:");
  for (const auto c : fault::extended_mutation_classes()) {
    std::fprintf(stderr, " %s", fault::mutation_class_name(c).c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fault::ChaosConfig cfg;
  bool print_trace = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--tenants") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return usage();
      cfg.tenants = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--jobs") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return usage();
      util::Executor::set_global_jobs(std::atoi(v));
    } else if (a == "--stages") {
      const char* v = next();
      if (v == nullptr) return usage();
      for (const auto& name : split_csv(v)) {
        const auto s = fault::trap_stage_from_name(name);
        if (!s) return usage();
        cfg.stages.push_back(*s);
      }
      if (cfg.stages.empty()) return usage();
    } else if (a == "--classes") {
      const char* v = next();
      if (v == nullptr) return usage();
      for (const auto& name : split_csv(v)) {
        const auto c = fault::mutation_class_from_name(name);
        if (!c) return usage();
        cfg.classes.push_back(*c);
      }
      if (cfg.classes.empty()) return usage();
    } else if (a == "--inline") {
      cfg.inline_tier = true;
    } else if (a == "--trace") {
      print_trace = true;
    } else {
      return usage();
    }
  }

  std::printf("== chaos soak: %d tenants, seed %llu ==\n", cfg.tenants,
              static_cast<unsigned long long>(cfg.seed));
  fault::ChaosEngine engine(cfg);
  const fault::ChaosResult r = engine.run();
  if (print_trace) {
    for (const auto& line : r.verdict_trace) std::printf("%s\n", line.c_str());
  }
  std::printf("%s", r.summary().c_str());
  if (!r.ok()) {
    std::printf("FAIL: kernel lifecycle bookkeeping oracle tripped\n");
    return 1;
  }
  std::printf("OK: %zu lifecycles, all oracles held\n", r.lifecycles.size());
  return 0;
}
