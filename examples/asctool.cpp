// asctool -- the trusted installer as a command-line tool, operating on TXE
// image files on the host filesystem (the deployment workflow of Fig. 2).
//
//   asctool build <name> <out.txe>       write a relocatable guest program
//   asctool inspect <img.txe>            dump header, sections, symbols
//   asctool install <in.txe> <out.txe>   analyze + rewrite (prints policies);
//                                also writes <out.txe>.manifest, the compact
//                                SignManifest the differential Rekeyer needs
//   asctool rekey <in.txe> <out.txe> --key-seed N [--old-key-seed M]
//                                re-sign an installed image under
//                                derived_key(N) without re-analysis: only
//                                the MAC surface recorded in
//                                <in.txe>.manifest is recomputed. The old
//                                key defaults to the install key; pass
//                                --old-key-seed for an already-rekeyed
//                                input. Run the result with
//                                `run --key-seed N`.
//   asctool run [flags] <img.txe> [args...]     execute under enforcement
//     --stats                    print the kernel's tier-lattice counters
//                                (eager / cached / shadowed / inline hits,
//                                promotions, demotions by cause, live-rekey
//                                counters) as one aligned table
//     --key-seed N               verify under derived_key(N) instead of the
//                                default install key (images produced by
//                                `rekey --key-seed N`)
//     --rekey-at M               live-rotate the kernel to a new key after
//                                the M-th syscall via Kernel::rekey (needs
//                                <img.txe>.manifest); --rekey-seed S picks
//                                the new key's seed (default 1)
//     --no-shadow                disable the policy-state shadow; every call
//                                runs the eager §3.2 state-MAC protocol
//     --no-inline                disable the trap-less Inline tier (on by
//                                default); every call traps into the monitor
//     --jobs N                   (any command) worker threads for the
//                                installer's parallel analysis/signing
//                                phases; defaults to the ASC_JOBS
//                                environment variable, else the hardware
//                                concurrency. Output is identical at any
//                                job count; --jobs 1 is the serial path.
//     --monitor MODE             off | asc (default) | daemon | ktable;
//                                selects the SyscallMonitor installed in the
//                                kernel. daemon/ktable train their policy
//                                table with one unmonitored run of the same
//                                command line first.
//     --failure-mode MODE        fail-stop (default) | budgeted:N |
//                                audit-only; graceful-degradation reaction
//                                to an established violation
//     --dispatch MODE            threaded (default; predecoded threaded-code
//                                engine) | switch (reference decode-and-
//                                switch interpreter). Architecturally
//                                byte-identical; only host wall-clock
//                                differs. ASC_DISPATCH=switch flips the
//                                default.
//     --aes MODE                 auto (default; AES-NI when the host has
//                                it) | scratch (the FIPS-197 reference
//                                oracle). Identical MACs either way.
//                                ASC_AES=scratch flips the default.
//
// Demo session:
//   ./example_asctool build gzip /tmp/gzip.txe
//   ./example_asctool install /tmp/gzip.txe /tmp/gzip.auth.txe
//   ./example_asctool run /tmp/gzip.auth.txe /f.txt
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>

#include "core/asc.h"
#include "installer/rekeyer.h"
#include "monitor/ktable.h"
#include "os/tiertable.h"
#include "monitor/training.h"
#include "util/executor.h"

using namespace asc;

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

int cmd_build(const std::string& name, const std::string& out) {
  for (auto& [n, img] : apps::build_all(os::Personality::LinuxSim)) {
    if (n == name) {
      write_file(out, img.serialize());
      std::printf("wrote relocatable %s (%zu bytes)\n", out.c_str(), img.serialize().size());
      return 0;
    }
  }
  std::fprintf(stderr, "unknown program %s; try: ", name.c_str());
  for (auto& [n, img] : apps::build_all(os::Personality::LinuxSim)) {
    std::fprintf(stderr, "%s ", n.c_str());
    (void)img;
  }
  std::fprintf(stderr, "\n");
  return 1;
}

int cmd_inspect(const std::string& path) {
  const binary::Image img = binary::Image::deserialize(read_file(path));
  std::printf("name: %s\nentry: 0x%x\nrelocatable: %d\nauthenticated: %d\nprogram id: %u\n",
              img.name.c_str(), img.entry, img.relocatable, img.authenticated, img.program_id);
  for (const auto& s : img.sections) {
    std::printf("section %-8s vaddr 0x%08x size %u\n", binary::section_name(s.kind).c_str(),
                s.vaddr(), s.size());
  }
  std::printf("%zu symbols, %zu relocations\n", img.symbols.size(), img.relocs.size());
  int shown = 0;
  for (const auto& sym : img.symbols) {
    if (sym.kind == binary::SymbolKind::Function && shown++ < 10) {
      std::printf("  func %-20s 0x%08x (%u bytes)\n", sym.name.c_str(), sym.addr, sym.size);
    }
  }
  return 0;
}

int cmd_install(const std::string& in, const std::string& out) {
  const binary::Image img = binary::Image::deserialize(read_file(in));
  installer::Installer inst(test_key(), os::Personality::LinuxSim);
  auto result = inst.install(img);
  write_file(out, result.image.serialize());
  // The manifest makes the image rekeyable without re-analysis: it records
  // every MAC slot and the exact bytes each MAC covers, key-independently.
  write_file(out + ".manifest", result.manifest.serialize());
  std::printf("installed %s -> %s: %zu authenticated call sites "
              "(+%s.manifest: %llu MACs over %llu surface bytes)\n",
              in.c_str(), out.c_str(), result.policies.size(), out.c_str(),
              static_cast<unsigned long long>(result.manifest.mac_count()),
              static_cast<unsigned long long>(result.manifest.mac_surface_bytes()));
  for (const auto& w : result.warnings) std::printf("REPORT: %s\n", w.c_str());
  for (std::size_t i = 0; i < result.policies.size() && i < 3; ++i) {
    std::printf("%s\n", result.policies[i].to_string().c_str());
  }
  if (result.policies.size() > 3) {
    std::printf("... (%zu more policies)\n", result.policies.size() - 3);
  }
  return 0;
}

int cmd_rekey(const std::string& in, const std::string& out, std::uint64_t key_seed,
              std::optional<std::uint64_t> old_key_seed) {
  const binary::Image img = binary::Image::deserialize(read_file(in));
  const installer::SignManifest man =
      installer::SignManifest::deserialize(read_file(in + ".manifest"));
  const crypto::Key128 old_key =
      old_key_seed.has_value() ? derived_key(*old_key_seed) : test_key();
  installer::RekeyResult r = installer::Rekeyer::rekey(img, man, old_key, derived_key(key_seed));
  write_file(out, r.image.serialize());
  // The manifest is key-independent; copy it so the output is rekeyable too.
  write_file(out + ".manifest", man.serialize());
  std::printf("rekeyed %s -> %s under key seed %llu: %llu MACs recomputed over "
              "%llu surface bytes (no re-analysis)\n",
              in.c_str(), out.c_str(), static_cast<unsigned long long>(key_seed),
              static_cast<unsigned long long>(r.stats.macs_recomputed),
              static_cast<unsigned long long>(r.stats.surface_bytes));
  return 0;
}

/// Configuration of the enforcement + audit layers for `asctool run`,
/// gathered from command-line flags.
struct RunConfig {
  bool stats = false;
  bool shadow = true;
  /// Trap-less Inline tier (os/tiertable.h). On by default for asctool runs
  /// so --stats shows the full lattice; --no-inline pins every call onto the
  /// trapping tiers, mirroring --no-shadow.
  bool inline_tier = true;
  os::Enforcement monitor = os::Enforcement::Asc;
  os::FailureMode failure = os::FailureMode::FailStop;
  std::uint32_t budget = 0;
  vm::DispatchMode dispatch = vm::default_dispatch_mode();
  /// Verification key: derived_key(key_seed) when set (images produced by
  /// `rekey --key-seed N`), else the default install key.
  std::optional<std::uint64_t> key_seed;
  /// Live rotation: after the rekey_at-th syscall, re-sign via the
  /// differential Rekeyer and rotate the kernel to derived_key(rekey_seed)
  /// mid-run (Kernel::rekey). 0 = no rotation.
  std::uint64_t rekey_at = 0;
  std::uint64_t rekey_seed = 1;
};

bool parse_u64_flag(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) return false;
  *out = std::stoull(s);
  return true;
}

bool parse_dispatch_flag(const std::string& s, vm::DispatchMode* out) {
  if (s == "switch") *out = vm::DispatchMode::Switch;
  else if (s == "threaded") *out = vm::DispatchMode::Threaded;
  else return false;
  return true;
}

bool parse_aes_flag(const std::string& s) {
  if (s == "scratch") {
    crypto::Aes128::set_backend_policy(crypto::Aes128::BackendPolicy::ForceScratch);
  } else if (s == "auto") {
    crypto::Aes128::set_backend_policy(crypto::Aes128::BackendPolicy::Auto);
  } else {
    return false;
  }
  return true;
}

bool parse_monitor_flag(const std::string& s, os::Enforcement* out) {
  if (s == "off") *out = os::Enforcement::Off;
  else if (s == "asc") *out = os::Enforcement::Asc;
  else if (s == "daemon") *out = os::Enforcement::Daemon;
  else if (s == "ktable") *out = os::Enforcement::KernelTable;
  else return false;
  return true;
}

bool parse_failure_mode_flag(const std::string& s, os::FailureMode* mode, std::uint32_t* budget) {
  if (s == "fail-stop") {
    *mode = os::FailureMode::FailStop;
  } else if (s == "audit-only") {
    *mode = os::FailureMode::AuditOnly;
  } else if (s.rfind("budgeted:", 0) == 0) {
    const std::string n = s.substr(9);
    if (n.empty() || n.find_first_not_of("0123456789") != std::string::npos) return false;
    *mode = os::FailureMode::Budgeted;
    *budget = static_cast<std::uint32_t>(std::stoul(n));
  } else {
    return false;
  }
  return true;
}

void seed_demo_fs(os::SimFs& fs) {
  const std::string demo = "demo file contents\nsecond line\n";
  auto ino = fs.open("/", "/f.txt", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(demo.begin(), demo.end()), false);
}

int cmd_run(const std::string& path, const std::vector<std::string>& args,
            const RunConfig& cfg) {
  const binary::Image img = binary::Image::deserialize(read_file(path));
  const crypto::Key128 run_key =
      cfg.key_seed.has_value() ? derived_key(*cfg.key_seed) : test_key();
  System sys(os::Personality::LinuxSim, run_key, cfg.monitor);
  sys.machine().set_dispatch(cfg.dispatch);
  sys.kernel().set_policy_shadow(cfg.shadow);
  sys.kernel().set_inline_tier(cfg.inline_tier);
  sys.kernel().set_failure_mode(cfg.failure);
  sys.kernel().set_violation_budget(cfg.budget);
  seed_demo_fs(sys.kernel().fs());

  if (cfg.monitor == os::Enforcement::Daemon || cfg.monitor == os::Enforcement::KernelTable) {
    // Table-driven monitors need a per-program policy in the kernel. Train
    // one with an unmonitored run of the same command line in a scratch
    // system, so the monitored run starts with a clean audit log.
    System trainer(os::Personality::LinuxSim, run_key, os::Enforcement::Off);
    seed_demo_fs(trainer.kernel().fs());
    auto pol = monitor::train_policy(trainer.machine(), img, {{args, ""}});
    sys.kernel().set_monitor_policy(img.name, pol);
    std::printf("[%s monitor: trained policy with %zu allowed syscalls]\n",
                os::enforcement_name(cfg.monitor).c_str(), pol.allowed.size());
  }

  // Live rotation demo: re-sign the image differentially up front, then
  // rotate the kernel to the new key after the rekey_at-th syscall. The
  // hook fires outside the trap (depth 0), so the rotation always applies
  // immediately; counters land in --stats.
  std::optional<installer::RekeyResult> live;
  if (cfg.rekey_at > 0) {
    const installer::SignManifest man =
        installer::SignManifest::deserialize(read_file(path + ".manifest"));
    live = installer::Rekeyer::rekey(img, man, run_key, derived_key(cfg.rekey_seed));
    sys.machine().pre_syscall_hook = [&, calls = std::uint64_t{0}](
                                         os::Process& p, std::uint32_t) mutable {
      if (++calls == cfg.rekey_at) {
        sys.kernel().rekey(p, derived_key(cfg.rekey_seed), live->view);
      }
    };
  }

  auto r = sys.machine().run(img, args);
  std::printf("%s", r.stdout_data.c_str());
  if (r.violation != os::Violation::None) {
    std::printf("[killed by monitor: %s -- %s]\n", os::violation_name(r.violation).c_str(),
                r.violation_detail.c_str());
    return 2;
  }
  // Under budgeted / audit-only failure modes violations may have been
  // tolerated without killing the guest; surface them.
  std::size_t tolerated = 0;
  for (const auto& rec : sys.kernel().audit_log()) {
    if (rec.kind == os::AuditKind::Violation && !rec.killed) ++tolerated;
  }
  if (tolerated > 0) {
    std::printf("[%zu violation%s tolerated under %s]\n", tolerated, tolerated == 1 ? "" : "s",
                os::failure_mode_name(sys.kernel().failure_mode()).c_str());
    for (const auto& line : sys.kernel().event_log()) std::printf("  %s\n", line.c_str());
  }
  std::printf("[exit %d, %llu syscalls, %llu cycles]\n", r.exit_code,
              static_cast<unsigned long long>(r.syscalls),
              static_cast<unsigned long long>(r.cycles));
  if (cfg.stats) {
    // One aligned table for the whole verification lattice: every verified
    // call lands in exactly one tier row, so the hit column sums to the
    // syscall count. Eager and inline have no miss concept (a failed inline
    // probe demotes the site and the call re-enters as a lower tier).
    const os::TierStats ts = sys.kernel().tier_stats();
    auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
    auto rate = [](std::uint64_t hit, std::uint64_t miss) {
      return hit + miss == 0 ? 0.0 : 100.0 * static_cast<double>(hit) /
                                         static_cast<double>(hit + miss);
    };
    std::printf("[kernel tier stats]\n");
    std::printf("  %-10s %10s %10s %9s\n", "tier", "hits", "misses", "hit-rate");
    std::printf("  %-10s %10llu %10s %9s\n", "eager", u(ts.eager), "-", "-");
    std::printf("  %-10s %10llu %10llu %8.1f%%\n", "cached", u(ts.cached),
                u(ts.cache_misses), rate(ts.cached, ts.cache_misses));
    std::printf("  %-10s %10llu %10llu %8.1f%%\n", "shadowed", u(ts.shadowed),
                u(ts.shadow_misses), rate(ts.shadowed, ts.shadow_misses));
    std::printf("  %-10s %10llu %10s %9s\n", "inline", u(ts.inline_hits), "-", "-");
    std::printf("  promotions=%llu demotions=%llu", u(ts.promotions),
                u(ts.demotions_total()));
    for (std::size_t c = 0; c < os::kNumDemotionCauses; ++c) {
      if (ts.demotions[c] == 0) continue;
      std::printf(" %s=%llu",
                  os::demotion_cause_name(static_cast<os::DemotionCause>(c)).c_str(),
                  u(ts.demotions[c]));
    }
    std::printf("\n");
    // Live-rekey counters (Kernel::rekey): rotations applied to the running
    // process, requests parked until a trap boundary, and MAC slots patched
    // (including the policy-state re-MAC). Key-rotation demotions show up
    // in the demotion-by-cause list above.
    const os::RekeyCounters& rc = sys.kernel().rekey_counters();
    std::printf("  rekeys=%llu deferred=%llu macs-applied=%llu\n", u(rc.rekeys),
                u(rc.deferred), u(rc.macs_applied));
    // Execution-engine counters: which dispatch ran, which AES core signed,
    // and (threaded only) what the predecoder did.
    std::printf("[execution engine]\n");
    std::printf("  dispatch=%s aes=%s\n",
                cfg.dispatch == vm::DispatchMode::Threaded ? "threaded" : "switch",
                crypto::Aes128::backend_policy() == crypto::Aes128::BackendPolicy::Auto &&
                        crypto::Aes128::aesni_supported()
                    ? "aesni"
                    : "scratch");
    if (cfg.dispatch == vm::DispatchMode::Threaded) {
      const vm::PredecodeStats& ps = r.predecode;
      std::printf("  blocks=%llu uops=%llu superinstructions=%llu invalidations=%llu "
                  "exec-writes=%llu flushes=%llu\n",
                  u(ps.blocks), u(ps.uops), u(ps.superinstructions), u(ps.invalidations),
                  u(ps.exec_writes), u(ps.flushes));
    }
    // Kernel bookkeeping soundness: at teardown every hooked watch range
    // must have been released, and the health machine must have no residue.
    const auto& w = r.final_watch;
    std::printf("[watch-range accounting]\n");
    std::printf("  registered=%llu released=%llu peak-ranges=%llu live=%llu/%llu refs %s\n",
                u(w.registered), u(w.released), u(w.peak_ranges), u(w.live_ranges),
                u(w.live_refs),
                w.live_ranges == 0 && w.registered == w.released ? "(balanced)"
                                                                : "(LEAKED)");
    const auto& hs = sys.kernel().health_stats();
    if (hs.internal_faults > 0) {
      std::printf("[health machine]\n");
      std::printf("  internal-faults=%llu degradations=%llu quarantines=%llu "
                  "repromotions=%llu recoveries=%llu\n",
                  u(hs.internal_faults), u(hs.degradations), u(hs.quarantines),
                  u(hs.repromotions), u(hs.recoveries));
    }
  }
  return r.completed ? r.exit_code : 3;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // --jobs is accepted by every command (it sizes the process-global
    // executor pool); strip it before dispatch. Without the flag the pool
    // follows ASC_JOBS, else the hardware concurrency.
    std::vector<std::string> av;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--jobs" && i + 1 < argc) {
        const std::string n = argv[++i];
        if (n.empty() || n.find_first_not_of("0123456789") != std::string::npos ||
            std::stoul(n) == 0) {
          std::fprintf(stderr, "asctool: bad --jobs %s (want a positive integer)\n", n.c_str());
          return 1;
        }
        util::Executor::set_global_jobs(static_cast<int>(std::stoul(n)));
      } else {
        av.push_back(a);
      }
    }
    const auto ac = static_cast<int>(av.size());
    const std::string cmd = ac > 0 ? av[0] : "";
    if (cmd == "build" && ac == 3) return cmd_build(av[1], av[2]);
    if (cmd == "inspect" && ac == 2) return cmd_inspect(av[1]);
    if (cmd == "install" && ac == 3) return cmd_install(av[1], av[2]);
    if (cmd == "rekey" && ac >= 3) {
      std::uint64_t key_seed = 1;
      std::optional<std::uint64_t> old_key_seed;
      std::vector<std::string> pos;
      for (int i = 1; i < ac; ++i) {
        const std::string a = av[i];
        std::uint64_t v = 0;
        if (a == "--key-seed" && i + 1 < ac) {
          if (!parse_u64_flag(av[++i], &key_seed)) {
            std::fprintf(stderr, "asctool: bad --key-seed %s (want an integer)\n", av[i].c_str());
            return 1;
          }
        } else if (a == "--old-key-seed" && i + 1 < ac) {
          if (!parse_u64_flag(av[++i], &v)) {
            std::fprintf(stderr, "asctool: bad --old-key-seed %s (want an integer)\n",
                         av[i].c_str());
            return 1;
          }
          old_key_seed = v;
        } else {
          pos.push_back(a);
        }
      }
      if (pos.size() == 2) return cmd_rekey(pos[0], pos[1], key_seed, old_key_seed);
    }
    if (cmd == "run" && ac >= 2) {
      RunConfig cfg;
      std::vector<std::string> args;
      int i = 1;
      for (; i < ac; ++i) {
        const std::string a = av[i];
        if (a == "--stats") {
          cfg.stats = true;
        } else if (a == "--no-shadow") {
          cfg.shadow = false;
        } else if (a == "--no-inline") {
          cfg.inline_tier = false;
        } else if (a == "--monitor" && i + 1 < ac) {
          if (!parse_monitor_flag(av[++i], &cfg.monitor)) {
            std::fprintf(stderr, "asctool: bad --monitor %s (off|asc|daemon|ktable)\n",
                         av[i].c_str());
            return 1;
          }
        } else if (a == "--dispatch" && i + 1 < ac) {
          if (!parse_dispatch_flag(av[++i], &cfg.dispatch)) {
            std::fprintf(stderr, "asctool: bad --dispatch %s (switch|threaded)\n", av[i].c_str());
            return 1;
          }
        } else if (a == "--aes" && i + 1 < ac) {
          if (!parse_aes_flag(av[++i])) {
            std::fprintf(stderr, "asctool: bad --aes %s (scratch|auto)\n", av[i].c_str());
            return 1;
          }
        } else if (a == "--key-seed" && i + 1 < ac) {
          std::uint64_t v = 0;
          if (!parse_u64_flag(av[++i], &v)) {
            std::fprintf(stderr, "asctool: bad --key-seed %s (want an integer)\n", av[i].c_str());
            return 1;
          }
          cfg.key_seed = v;
        } else if (a == "--rekey-at" && i + 1 < ac) {
          if (!parse_u64_flag(av[++i], &cfg.rekey_at) || cfg.rekey_at == 0) {
            std::fprintf(stderr, "asctool: bad --rekey-at %s (want a positive integer)\n",
                         av[i].c_str());
            return 1;
          }
        } else if (a == "--rekey-seed" && i + 1 < ac) {
          if (!parse_u64_flag(av[++i], &cfg.rekey_seed)) {
            std::fprintf(stderr, "asctool: bad --rekey-seed %s (want an integer)\n",
                         av[i].c_str());
            return 1;
          }
        } else if (a == "--failure-mode" && i + 1 < ac) {
          if (!parse_failure_mode_flag(av[++i], &cfg.failure, &cfg.budget)) {
            std::fprintf(stderr,
                         "asctool: bad --failure-mode %s (fail-stop|budgeted:N|audit-only)\n",
                         av[i].c_str());
            return 1;
          }
        } else {
          break;  // first non-flag is the image path
        }
      }
      if (i < ac) {
        const std::string img_path = av[i++];
        for (; i < ac; ++i) args.push_back(av[i]);
        return cmd_run(img_path, args, cfg);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asctool: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: asctool [--jobs N] build <name> <out.txe> | inspect <img.txe> |\n"
               "       install <in.txe> <out.txe> |\n"
               "       rekey <in.txe> <out.txe> --key-seed N [--old-key-seed M] |\n"
               "       run [--stats] [--no-shadow] [--no-inline] [--key-seed N]\n"
               "           [--rekey-at M] [--rekey-seed S]\n"
               "           [--monitor off|asc|daemon|ktable]\n"
               "           [--failure-mode fail-stop|budgeted:N|audit-only]\n"
               "           [--dispatch switch|threaded] [--aes scratch|auto] <img.txe> [args...]\n"
               "       --jobs N: worker threads for the installer's parallel phases\n"
               "                 (default: ASC_JOBS, else hardware concurrency)\n"
               "       rekey re-signs an installed image differentially (no re-analysis)\n"
               "       using <in.txe>.manifest, written by install alongside its output\n");
  return 1;
}
