// asctool -- the trusted installer as a command-line tool, operating on TXE
// image files on the host filesystem (the deployment workflow of Fig. 2).
//
//   asctool build <name> <out.txe>       write a relocatable guest program
//   asctool inspect <img.txe>            dump header, sections, symbols
//   asctool install <in.txe> <out.txe>   analyze + rewrite (prints policies)
//   asctool run [--stats] <img.txe> [args...]   execute under ASC enforcement
//       (--stats also prints the kernel's verified-call cache counters)
//
// Demo session:
//   ./example_asctool build gzip /tmp/gzip.txe
//   ./example_asctool install /tmp/gzip.txe /tmp/gzip.auth.txe
//   ./example_asctool run /tmp/gzip.auth.txe /f.txt
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/asc.h"

using namespace asc;

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

int cmd_build(const std::string& name, const std::string& out) {
  for (auto& [n, img] : apps::build_all(os::Personality::LinuxSim)) {
    if (n == name) {
      write_file(out, img.serialize());
      std::printf("wrote relocatable %s (%zu bytes)\n", out.c_str(), img.serialize().size());
      return 0;
    }
  }
  std::fprintf(stderr, "unknown program %s; try: ", name.c_str());
  for (auto& [n, img] : apps::build_all(os::Personality::LinuxSim)) {
    std::fprintf(stderr, "%s ", n.c_str());
    (void)img;
  }
  std::fprintf(stderr, "\n");
  return 1;
}

int cmd_inspect(const std::string& path) {
  const binary::Image img = binary::Image::deserialize(read_file(path));
  std::printf("name: %s\nentry: 0x%x\nrelocatable: %d\nauthenticated: %d\nprogram id: %u\n",
              img.name.c_str(), img.entry, img.relocatable, img.authenticated, img.program_id);
  for (const auto& s : img.sections) {
    std::printf("section %-8s vaddr 0x%08x size %u\n", binary::section_name(s.kind).c_str(),
                s.vaddr(), s.size());
  }
  std::printf("%zu symbols, %zu relocations\n", img.symbols.size(), img.relocs.size());
  int shown = 0;
  for (const auto& sym : img.symbols) {
    if (sym.kind == binary::SymbolKind::Function && shown++ < 10) {
      std::printf("  func %-20s 0x%08x (%u bytes)\n", sym.name.c_str(), sym.addr, sym.size);
    }
  }
  return 0;
}

int cmd_install(const std::string& in, const std::string& out) {
  const binary::Image img = binary::Image::deserialize(read_file(in));
  installer::Installer inst(test_key(), os::Personality::LinuxSim);
  auto result = inst.install(img);
  write_file(out, result.image.serialize());
  std::printf("installed %s -> %s: %zu authenticated call sites\n", in.c_str(), out.c_str(),
              result.policies.size());
  for (const auto& w : result.warnings) std::printf("REPORT: %s\n", w.c_str());
  for (std::size_t i = 0; i < result.policies.size() && i < 3; ++i) {
    std::printf("%s\n", result.policies[i].to_string().c_str());
  }
  if (result.policies.size() > 3) {
    std::printf("... (%zu more policies)\n", result.policies.size() - 3);
  }
  return 0;
}

int cmd_run(const std::string& path, const std::vector<std::string>& args, bool stats) {
  const binary::Image img = binary::Image::deserialize(read_file(path));
  System sys(os::Personality::LinuxSim);
  // Seed a small demo filesystem.
  auto& fs = sys.kernel().fs();
  const std::string demo = "demo file contents\nsecond line\n";
  auto ino = fs.open("/", "/f.txt", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(demo.begin(), demo.end()), false);
  auto r = sys.machine().run(img, args);
  std::printf("%s", r.stdout_data.c_str());
  if (r.violation != os::Violation::None) {
    std::printf("[killed by monitor: %s -- %s]\n", os::violation_name(r.violation).c_str(),
                r.violation_detail.c_str());
    return 2;
  }
  std::printf("[exit %d, %llu syscalls, %llu cycles]\n", r.exit_code,
              static_cast<unsigned long long>(r.syscalls),
              static_cast<unsigned long long>(r.cycles));
  if (stats) {
    const auto& st = sys.kernel().cache_stats();
    std::printf("[verified-call cache: %llu hits, %llu misses (%.1f%% hit rate), "
                "%llu inserts, %llu evictions, %llu invalidation writes]\n",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses), st.hit_rate() * 100.0,
                static_cast<unsigned long long>(st.inserts),
                static_cast<unsigned long long>(st.evictions),
                static_cast<unsigned long long>(st.invalidation_writes));
  }
  return r.completed ? r.exit_code : 3;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "build" && argc == 4) return cmd_build(argv[2], argv[3]);
    if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (cmd == "install" && argc == 4) return cmd_install(argv[2], argv[3]);
    if (cmd == "run" && argc >= 3) {
      bool stats = false;
      std::vector<std::string> args;
      int img_arg = 2;
      if (std::string(argv[2]) == "--stats" && argc >= 4) {
        stats = true;
        img_arg = 3;
      }
      for (int i = img_arg + 1; i < argc; ++i) args.emplace_back(argv[i]);
      return cmd_run(argv[img_arg], args, stats);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asctool: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: asctool build <name> <out.txe> | inspect <img.txe> |\n"
               "       install <in.txe> <out.txe> | run [--stats] <img.txe> [args...]\n"
               "       (--stats prints verified-call cache hit/miss/eviction counters)\n");
  return 1;
}
