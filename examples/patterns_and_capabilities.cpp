// §5 extensions walkthrough: metapolicies & templates (§5.2), argument
// patterns with proof hints (§5.1), and fd capability tracking (§5.3).
#include <cstdio>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "policy/capability.h"
#include "policy/pattern.h"
#include "tasm/assembler.h"

using namespace asc;
using apps::R0;
using apps::R1;
using apps::R2;
using apps::R3;

int main() {
  // ---- a guest whose open() path is computed at runtime ----
  tasm::Assembler a("tmptool");
  a.func("main");
  a.lea(R1, "name");
  a.call("tmpname");          // "/tmp/t<pid>"
  a.lea(R1, "name");
  a.call("strlen");
  a.subi(R0, 5);              // hint: the '*' consumes strlen - |"/tmp/"|
  a.mov(R1, R0);
  a.call("asc_set_hint1");
  a.lea(R1, "name");
  a.movi(R2, apps::O_WRONLY | apps::O_CREAT);
  a.movi(R3, 0600);
  a.call("sys_open");
  a.mov(R1, R0);
  a.call("sys_close");
  a.movi(R0, 0);
  a.ret();
  a.bss("name", 64);
  apps::emit_libc(a, os::Personality::LinuxSim);
  binary::Image img = a.link();

  System sys(os::Personality::LinuxSim);

  // ---- §5.2: metapolicy demands a pattern for open's path ----
  installer::InstallOptions opts;
  policy::SyscallMeta meta{};
  meta.args[0] = policy::ArgRequirement::MustPattern;
  opts.metapolicy.set(os::SysId::Open, meta);
  auto gp = sys.installer().analyze(img, opts);
  std::printf("metapolicy left %zu template hole(s):\n", gp.holes.size());
  for (const auto& h : gp.holes) {
    std::printf("  %s argument %d requires a pattern\n", os::signature(h.sys).name, h.arg);
  }
  // The administrator fills the template.
  policy::PolicyTemplate t;
  t.policies = std::move(gp.policies);
  t.holes = std::move(gp.holes);
  while (!t.complete()) t.fill_with_pattern(0, "/tmp/*");
  gp.policies = std::move(t.policies);
  gp.holes.clear();
  auto inst = sys.installer().rewrite(img, std::move(gp), opts);
  std::printf("template filled with \"/tmp/*\"; binary rewritten.\n\n");

  // ---- §5.1: the guest proves its matches; the kernel verifies ----
  auto r = sys.machine().run(inst.image);
  std::printf("pattern-guarded run: completed=%d violation=%s\n", r.completed,
              os::violation_name(r.violation).c_str());
  const auto hint = policy::match_and_prove("/tmp/{foo,bar}*baz", "/tmp/foofoobaz");
  std::printf("paper example hint for /tmp/{foo,bar}*baz vs /tmp/foofoobaz: (%u, %u)\n",
              (*hint)[0], (*hint)[1]);

  // ---- §5.3: the authenticated fd set (app-memory capability state) ----
  std::printf("\nauthenticated fd set (online memory checker over app memory):\n");
  crypto::MacKey key(test_key());
  std::vector<std::uint8_t> blob(policy::AuthenticatedFdSet::blob_size(8));
  std::uint64_t nonce = 0;
  policy::AuthenticatedFdSet::init(blob, 8, key, nonce);
  policy::AuthenticatedFdSet::insert(blob, 8, key, nonce, 3);
  policy::AuthenticatedFdSet::insert(blob, 8, key, nonce, 5);
  std::printf("  contains(3) = %d, contains(4) = %d (nonce=%llu)\n",
              policy::AuthenticatedFdSet::contains(blob, 8, key, nonce, 3).value_or(false),
              policy::AuthenticatedFdSet::contains(blob, 8, key, nonce, 4).value_or(false),
              static_cast<unsigned long long>(nonce));
  auto stale = blob;  // attacker snapshots...
  policy::AuthenticatedFdSet::remove(blob, 8, key, nonce, 3);
  blob = stale;  // ...and replays
  std::printf("  replayed stale set verifies: %d (counter nonce catches it)\n",
              policy::AuthenticatedFdSet::verify(blob, 8, key, nonce));
  return 0;
}
