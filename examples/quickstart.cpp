// Quickstart: install a program with authenticated system calls and run it
// under kernel enforcement.
//
//   $ ./example_quickstart
//
// Walks through the paper's Fig. 2 / Fig. 3 flow: build a relocatable guest
// binary, run the trusted installer (static analysis -> policies -> binary
// rewriting), then execute the authenticated binary on the simulated kernel
// with checking enabled.
#include <cstdio>

#include "core/asc.h"

int main() {
  using namespace asc;

  // A machine with the kernel in ASC enforcement mode. Installer and kernel
  // share the MAC key; the application never sees it.
  System sys(os::Personality::LinuxSim);

  // Put a file in the simulated filesystem for the demo program to read.
  auto& fs = sys.kernel().fs();
  const std::string content = "alpha\nbravo\ncharlie\n";
  auto ino = fs.open("/", "/data.txt", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(content.begin(), content.end()), false);

  // Build the guest program (relocatable TXE, like `gcc -static -Wl,-q`).
  binary::Image relocatable = apps::build_tool_cat(os::Personality::LinuxSim);
  std::printf("built %s: %u bytes of text, %zu relocations\n", relocatable.name.c_str(),
              relocatable.find_section(binary::SectionKind::Text)->size(),
              relocatable.relocs.size());

  // Run the trusted installer: static analysis -> per-site policies ->
  // authenticated binary.
  installer::InstallResult inst = sys.install(relocatable);
  std::printf("installer: %zu syscall sites authenticated, %zu stubs inlined at %zu sites\n",
              inst.policies.size(), inst.inline_report.stubs_found,
              inst.inline_report.call_sites_inlined);
  std::printf("\nexample policy for the first open() site:\n%s\n",
              [&] {
                for (const auto& p : inst.policies) {
                  if (p.sys == os::SysId::Open) return p.to_string();
                }
                return std::string("(none)");
              }()
                  .c_str());

  // Run the authenticated binary under enforcement.
  vm::RunResult r = sys.machine().run(inst.image, {"/data.txt"});
  std::printf("run: completed=%d exit=%d violation=%s\n", r.completed, r.exit_code,
              os::violation_name(r.violation).c_str());
  std::printf("stdout:\n%s", r.stdout_data.c_str());
  std::printf("cycles=%llu syscalls=%llu\n", static_cast<unsigned long long>(r.cycles),
              static_cast<unsigned long long>(r.syscalls));

  // And show that a NON-installed binary is stopped immediately.
  vm::RunResult blocked = sys.machine().run(relocatable, {"/data.txt"});
  std::printf("\nunauthenticated copy: completed=%d violation=%s (%s)\n", blocked.completed,
              os::violation_name(blocked.violation).c_str(), blocked.violation_detail.c_str());
  return 0;
}
