// Policy explorer: run the installer's static analysis on a program and
// dump what it found -- the per-site policies (in the paper's §3.1 "Permit
// open from location ..." form), the inlining report, argument-coverage
// statistics (Table 3), and a comparison against a training-derived policy
// (Tables 1/2 in miniature).
//
//   ./example_policy_explorer [bison|calc|screen|tar|gzip] [linux|bsd]
#include <cstdio>
#include <cstring>
#include <set>

#include "analysis/argclass.h"
#include "core/asc.h"
#include "installer/policygen.h"
#include "monitor/systrace.h"
#include "monitor/training.h"

using namespace asc;

int main(int argc, char** argv) {
  const std::string prog = argc > 1 ? argv[1] : "bison";
  const os::Personality pers = (argc > 2 && std::strcmp(argv[2], "bsd") == 0)
                                   ? os::Personality::BsdSim
                                   : os::Personality::LinuxSim;
  binary::Image img = [&] {
    for (auto& [n, i] : apps::build_all(pers)) {
      if (n == prog) return i;
    }
    std::fprintf(stderr, "unknown program %s\n", prog.c_str());
    std::exit(1);
  }();

  std::printf("=== %s on %s ===\n", prog.c_str(), os::personality_name(pers).c_str());
  auto gp = installer::generate_policies(img, pers);

  std::printf("\n-- installer pipeline --\n");
  std::printf("stubs/wrappers inlined: %zu definitions at %zu call sites (%zu removed)\n",
              gp.inline_report.stubs_found, gp.inline_report.call_sites_inlined,
              gp.inline_report.stubs_removed);
  for (const auto& w : gp.warnings) std::printf("REPORT: %s\n", w.c_str());

  const auto cov = analysis::compute_arg_coverage(gp.scan);
  std::printf("\n-- argument coverage (Table 3 row) --\n");
  std::printf("sites=%zu calls=%zu args=%zu output-only=%zu auth=%zu mv=%zu fds=%zu\n",
              cov.sites, cov.calls, cov.args, cov.output_only, cov.auth, cov.multi_value,
              cov.fds);

  std::printf("\n-- system calls permitted by the ASC policy --\n");
  for (const auto& name : analysis::distinct_syscalls(gp.scan)) std::printf("%s ", name.c_str());
  std::printf("\n\n-- first five per-site policies --\n");
  for (std::size_t i = 0; i < gp.policies.size() && i < 5; ++i) {
    std::printf("%s\n", gp.policies[i].to_string().c_str());
  }

  if (pers == os::Personality::LinuxSim && (prog == "bison" || prog == "calc")) {
    std::printf("-- vs a training-derived policy --\n");
    System sys(pers, test_key(), os::Enforcement::Off);
    auto& fs = sys.kernel().fs();
    std::string gram;
    for (int i = 0; i < 20; ++i) gram += "rule: tok\n";
    auto ino = fs.open("/", "/gram.y", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(gram.begin(), gram.end()), false);
    auto trained = monitor::train_policy(
        sys.machine(), img,
        prog == "bison" ? std::vector<monitor::TrainingRun>{{{"/gram.y"}, ""}}
                        : std::vector<monitor::TrainingRun>{{{}, "add 1 2\nmul 3 4\n"}});
    std::set<std::string> trained_names;
    for (auto n : trained.allowed) {
      if (auto id = os::syscall_from_number(pers, n)) {
        trained_names.insert(os::signature(*id).name);
      }
    }
    std::printf("training observed %zu distinct calls; static analysis found %zu\n",
                trained_names.size(), analysis::distinct_syscalls(gp.scan).size());
    std::printf("calls ONLY static analysis finds:");
    for (const auto& n : analysis::distinct_syscalls(gp.scan)) {
      if (trained_names.count(n) == 0) std::printf(" %s", n.c_str());
    }
    std::printf("\n(these are the untrained error/feature paths -- each one a\n"
                " potential false alarm for a training-based monitor)\n");
  }
  return 0;
}
