// asc-faultsim -- deterministic fault-injection campaigns against the ASC
// verification surface.
//
// Runs guest programs once cleanly, then replays them under seeded mutations
// (call-MAC bit flips, descriptor flips, AS header/body corruption,
// predecessor-set and policy-state tampering, cross-process state replay,
// register swaps at trap time, kernel/installer key mismatch) and prints a
// coverage matrix of mutation class x Violation verdict. Exit status is
// nonzero if the fail-stop invariant is broken: any host crash, silent
// bypass, or wrong-verdict run.
//
//   asc-faultsim                       default campaign (cat + vuln_echo)
//   asc-faultsim --seed 7 --runs 16    bigger sweep, different seed
//   asc-faultsim --mode audit-only     permissive kernel: log, don't kill
//   asc-faultsim --mode budgeted --budget 2
//   asc-faultsim --jobs 8              mutated replays on 8 worker threads
//                                      (default: ASC_JOBS, else hardware
//                                      concurrency; verdicts are identical
//                                      at any job count)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "fault/campaign.h"
#include "tasm/assembler.h"
#include "util/executor.h"

using namespace asc;

namespace {

// Minimal filesystem fixture for the default guests (cat and vuln_echo's
// /bin/ls stand-in both read /lines.txt).
void prepare_fs(os::SimFs& fs) {
  const std::string body = "pear\napple\nmango\ncherry\nbanana\n";
  auto ino = fs.open("/", "/lines.txt",
                     os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc, 0644);
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(body.begin(), body.end()), false);
}

std::vector<fault::GuestProgram> default_guests(os::Personality pers) {
  fault::GuestProgram cat;
  cat.name = "cat";
  cat.image = apps::build_tool_cat(pers);
  cat.argv = {"/lines.txt"};
  cat.prepare_fs = prepare_fs;

  fault::GuestProgram vuln;
  vuln.name = "vuln_echo";
  vuln.image = apps::build_vuln_echo(pers);
  vuln.stdin_data = "/lines.txt\n";
  vuln.helpers.emplace_back("/bin/ls", apps::build_tool_cat(pers));
  vuln.prepare_fs = prepare_fs;
  return {std::move(cat), std::move(vuln)};
}

// Tight getpid loop whose sites promote to the Inline tier: the target the
// promo-toctou class needs (it only fires at already-promoted sites).
fault::GuestProgram loop_guest(os::Personality pers) {
  using namespace asc::apps;
  tasm::Assembler a("pidloop");
  a.func("main");
  a.subi(SP, 4);
  a.movi(R11, 64);
  a.store(SP, 0, R11);
  a.label(".loop");
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".done");
  a.call("sys_getpid");
  a.load(R11, SP, 0);
  a.subi(R11, 1);
  a.store(SP, 0, R11);
  a.jmp(".loop");
  a.label(".done");
  a.addi(SP, 4);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, pers);
  fault::GuestProgram g;
  g.name = "pidloop";
  g.image = a.link();
  g.prepare_fs = prepare_fs;
  return g;
}

int usage() {
  std::fprintf(stderr,
               "usage: asc-faultsim [--seed N] [--runs N] [--class NAME] [--jobs N]\n"
               "                    [--mode fail-stop|budgeted|audit-only] [--budget N]\n"
               "                    [--spec CLASS:TRIGGER:0xSEED[:STAGE]]\n"
               "--jobs N: worker threads for the mutated replays (default: ASC_JOBS,\n"
               "          else hardware concurrency); results match --jobs 1 exactly\n"
               "--spec R: replay exactly one reproducer line (repeatable); R is the\n"
               "          [repro ...] token a failing campaign printed\n"
               "classes:");
  for (const auto c : fault::extended_mutation_classes()) {
    std::fprintf(stderr, " %s", fault::mutation_class_name(c).c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fault::CampaignConfig cfg;
  cfg.runs_per_class = 8;
  cfg.cycle_limit = 200'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--runs") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.runs_per_class = std::atoi(v);
    } else if (a == "--budget") {
      const char* v = next();
      if (v == nullptr) return usage();
      cfg.violation_budget = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--mode") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "fail-stop") == 0) {
        cfg.mode = os::FailureMode::FailStop;
      } else if (std::strcmp(v, "budgeted") == 0) {
        cfg.mode = os::FailureMode::Budgeted;
      } else if (std::strcmp(v, "audit-only") == 0) {
        cfg.mode = os::FailureMode::AuditOnly;
      } else {
        return usage();
      }
    } else if (a == "--jobs") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return usage();
      util::Executor::set_global_jobs(std::atoi(v));
    } else if (a == "--spec") {
      const char* v = next();
      if (v == nullptr) return usage();
      const auto spec = fault::parse_spec(v);
      if (!spec) {
        std::fprintf(stderr, "asc-faultsim: bad spec '%s'\n", v);
        return usage();
      }
      cfg.explicit_specs.push_back(*spec);
    } else if (a == "--class") {
      const char* v = next();
      if (v == nullptr) return usage();
      bool found = false;
      for (const auto c : fault::extended_mutation_classes()) {
        if (fault::mutation_class_name(c) == v) {
          cfg.classes.push_back(c);
          found = true;
        }
      }
      if (!found) return usage();
    } else {
      return usage();
    }
  }

  const auto pers = os::Personality::LinuxSim;
  // promo-toctou only fires at sites already promoted to the Inline tier, so
  // when it is in play the campaign kernels get the tier enabled with a low
  // threshold and the guest set gains a loop guest that actually promotes.
  const bool wants_promo =
      std::find(cfg.classes.begin(), cfg.classes.end(),
                fault::MutationClass::PromoToctou) != cfg.classes.end() ||
      std::any_of(cfg.explicit_specs.begin(), cfg.explicit_specs.end(),
                  [](const fault::FaultSpec& s) {
                    return s.cls == fault::MutationClass::PromoToctou;
                  });
  if (wants_promo) {
    cfg.configure_kernel = [](os::Kernel& k) {
      k.set_inline_tier(true);
      k.set_inline_promote_threshold(2);
    };
  }
  std::vector<fault::GuestProgram> guests = default_guests(pers);
  if (wants_promo) guests.push_back(loop_guest(pers));
  fault::Campaign campaign(cfg);
  fault::CampaignResult total;
  for (const auto& guest : guests) {
    std::printf("== %s (seed=%llu, %d runs/class, mode=%s) ==\n", guest.name.c_str(),
                static_cast<unsigned long long>(cfg.seed), cfg.runs_per_class,
                os::failure_mode_name(cfg.mode).c_str());
    const fault::CampaignResult r = campaign.run(guest);
    if (!cfg.explicit_specs.empty()) {
      for (const auto& v : r.verdicts) {
        std::printf("  [%s] %s %s: %s (%s)\n", fault::outcome_name(v.outcome).c_str(),
                    v.program.c_str(), v.repro.c_str(), v.detail.c_str(),
                    os::violation_name(v.violation).c_str());
      }
    }
    std::printf("%s\n", r.summary().c_str());
    total.merge(r);
  }

  std::printf("== combined ==\n%s", total.summary().c_str());
  if (!total.invariant_holds()) {
    std::printf("\nINVARIANT VIOLATIONS:\n");
    for (const auto& v : total.verdicts) {
      if (v.outcome == fault::Outcome::Benign || v.outcome == fault::Outcome::Detected ||
          v.outcome == fault::Outcome::NotApplied) {
        continue;
      }
      std::printf("  [%s] %s: %s (%s)\n    replay: asc-faultsim --spec %s\n",
                  fault::outcome_name(v.outcome).c_str(), v.program.c_str(),
                  v.detail.c_str(), os::violation_name(v.violation).c_str(),
                  v.repro.c_str());
    }
    std::printf("FAIL: fail-stop invariant broken\n");
    return 1;
  }
  std::printf("OK: %d applied mutations, invariant holds\n", total.total_applied());
  return 0;
}
