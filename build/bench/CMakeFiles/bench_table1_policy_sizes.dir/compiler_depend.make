# Empty compiler generated dependencies file for bench_table1_policy_sizes.
# This may be replaced when dependencies are built.
