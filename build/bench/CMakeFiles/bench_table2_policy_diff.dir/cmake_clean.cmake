file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_policy_diff.dir/bench_table2_policy_diff.cpp.o"
  "CMakeFiles/bench_table2_policy_diff.dir/bench_table2_policy_diff.cpp.o.d"
  "bench_table2_policy_diff"
  "bench_table2_policy_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_policy_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
