# Empty dependencies file for bench_table2_policy_diff.
# This may be replaced when dependencies are built.
