# Empty compiler generated dependencies file for bench_table6_macro.
# This may be replaced when dependencies are built.
