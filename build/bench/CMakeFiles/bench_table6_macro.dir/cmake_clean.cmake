file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_macro.dir/bench_table6_macro.cpp.o"
  "CMakeFiles/bench_table6_macro.dir/bench_table6_macro.cpp.o.d"
  "bench_table6_macro"
  "bench_table6_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
