file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_monitors.dir/bench_ablation_monitors.cpp.o"
  "CMakeFiles/bench_ablation_monitors.dir/bench_ablation_monitors.cpp.o.d"
  "bench_ablation_monitors"
  "bench_ablation_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
