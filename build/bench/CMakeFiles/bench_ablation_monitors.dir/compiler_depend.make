# Empty compiler generated dependencies file for bench_ablation_monitors.
# This may be replaced when dependencies are built.
