file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_arg_coverage.dir/bench_table3_arg_coverage.cpp.o"
  "CMakeFiles/bench_table3_arg_coverage.dir/bench_table3_arg_coverage.cpp.o.d"
  "bench_table3_arg_coverage"
  "bench_table3_arg_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_arg_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
