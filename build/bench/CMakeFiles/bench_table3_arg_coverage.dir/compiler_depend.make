# Empty compiler generated dependencies file for bench_table3_arg_coverage.
# This may be replaced when dependencies are built.
