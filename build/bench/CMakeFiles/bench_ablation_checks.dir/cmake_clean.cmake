file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_checks.dir/bench_ablation_checks.cpp.o"
  "CMakeFiles/bench_ablation_checks.dir/bench_ablation_checks.cpp.o.d"
  "bench_ablation_checks"
  "bench_ablation_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
