# Empty compiler generated dependencies file for bench_ablation_checks.
# This may be replaced when dependencies are built.
