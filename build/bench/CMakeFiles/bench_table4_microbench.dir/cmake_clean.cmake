file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_microbench.dir/bench_table4_microbench.cpp.o"
  "CMakeFiles/bench_table4_microbench.dir/bench_table4_microbench.cpp.o.d"
  "bench_table4_microbench"
  "bench_table4_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
