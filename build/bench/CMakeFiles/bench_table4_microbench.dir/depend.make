# Empty dependencies file for bench_table4_microbench.
# This may be replaced when dependencies are built.
