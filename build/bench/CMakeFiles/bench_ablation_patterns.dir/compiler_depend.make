# Empty compiler generated dependencies file for bench_ablation_patterns.
# This may be replaced when dependencies are built.
