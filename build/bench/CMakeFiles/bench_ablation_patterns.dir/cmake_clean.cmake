file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_patterns.dir/bench_ablation_patterns.cpp.o"
  "CMakeFiles/bench_ablation_patterns.dir/bench_ablation_patterns.cpp.o.d"
  "bench_ablation_patterns"
  "bench_ablation_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
