# Empty compiler generated dependencies file for bench_andrew.
# This may be replaced when dependencies are built.
