file(REMOVE_RECURSE
  "CMakeFiles/bench_andrew.dir/bench_andrew.cpp.o"
  "CMakeFiles/bench_andrew.dir/bench_andrew.cpp.o.d"
  "bench_andrew"
  "bench_andrew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_andrew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
