file(REMOVE_RECURSE
  "CMakeFiles/asc_tests.dir/test_analysis.cpp.o"
  "CMakeFiles/asc_tests.dir/test_analysis.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_attacks.cpp.o"
  "CMakeFiles/asc_tests.dir/test_attacks.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_checker_edge.cpp.o"
  "CMakeFiles/asc_tests.dir/test_checker_edge.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_crypto.cpp.o"
  "CMakeFiles/asc_tests.dir/test_crypto.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/asc_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_fs_kernel.cpp.o"
  "CMakeFiles/asc_tests.dir/test_fs_kernel.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_installer_monitor.cpp.o"
  "CMakeFiles/asc_tests.dir/test_installer_monitor.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_integration_apps.cpp.o"
  "CMakeFiles/asc_tests.dir/test_integration_apps.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_isa_binary.cpp.o"
  "CMakeFiles/asc_tests.dir/test_isa_binary.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_policy.cpp.o"
  "CMakeFiles/asc_tests.dir/test_policy.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_property.cpp.o"
  "CMakeFiles/asc_tests.dir/test_property.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_smoke.cpp.o"
  "CMakeFiles/asc_tests.dir/test_smoke.cpp.o.d"
  "CMakeFiles/asc_tests.dir/test_tasm_vm.cpp.o"
  "CMakeFiles/asc_tests.dir/test_tasm_vm.cpp.o.d"
  "asc_tests"
  "asc_tests.pdb"
  "asc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
