# Empty compiler generated dependencies file for asc_tests.
# This may be replaced when dependencies are built.
