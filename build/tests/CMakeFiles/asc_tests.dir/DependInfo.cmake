
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/asc_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_attacks.cpp" "tests/CMakeFiles/asc_tests.dir/test_attacks.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_attacks.cpp.o.d"
  "/root/repo/tests/test_checker_edge.cpp" "tests/CMakeFiles/asc_tests.dir/test_checker_edge.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_checker_edge.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/asc_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/asc_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fs_kernel.cpp" "tests/CMakeFiles/asc_tests.dir/test_fs_kernel.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_fs_kernel.cpp.o.d"
  "/root/repo/tests/test_installer_monitor.cpp" "tests/CMakeFiles/asc_tests.dir/test_installer_monitor.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_installer_monitor.cpp.o.d"
  "/root/repo/tests/test_integration_apps.cpp" "tests/CMakeFiles/asc_tests.dir/test_integration_apps.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_integration_apps.cpp.o.d"
  "/root/repo/tests/test_isa_binary.cpp" "tests/CMakeFiles/asc_tests.dir/test_isa_binary.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_isa_binary.cpp.o.d"
  "/root/repo/tests/test_policy.cpp" "tests/CMakeFiles/asc_tests.dir/test_policy.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_policy.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/asc_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/asc_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_tasm_vm.cpp" "tests/CMakeFiles/asc_tests.dir/test_tasm_vm.cpp.o" "gcc" "tests/CMakeFiles/asc_tests.dir/test_tasm_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/asc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
