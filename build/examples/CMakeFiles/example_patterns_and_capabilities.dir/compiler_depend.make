# Empty compiler generated dependencies file for example_patterns_and_capabilities.
# This may be replaced when dependencies are built.
