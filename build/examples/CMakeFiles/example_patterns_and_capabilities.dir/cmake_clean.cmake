file(REMOVE_RECURSE
  "CMakeFiles/example_patterns_and_capabilities.dir/patterns_and_capabilities.cpp.o"
  "CMakeFiles/example_patterns_and_capabilities.dir/patterns_and_capabilities.cpp.o.d"
  "example_patterns_and_capabilities"
  "example_patterns_and_capabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_patterns_and_capabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
