file(REMOVE_RECURSE
  "CMakeFiles/example_asctool.dir/asctool.cpp.o"
  "CMakeFiles/example_asctool.dir/asctool.cpp.o.d"
  "example_asctool"
  "example_asctool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_asctool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
