# Empty compiler generated dependencies file for example_asctool.
# This may be replaced when dependencies are built.
