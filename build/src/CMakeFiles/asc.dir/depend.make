# Empty dependencies file for asc.
# This may be replaced when dependencies are built.
