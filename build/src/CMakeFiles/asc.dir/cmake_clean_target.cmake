file(REMOVE_RECURSE
  "libasc.a"
)
