
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/argclass.cpp" "src/CMakeFiles/asc.dir/analysis/argclass.cpp.o" "gcc" "src/CMakeFiles/asc.dir/analysis/argclass.cpp.o.d"
  "/root/repo/src/analysis/callgraph.cpp" "src/CMakeFiles/asc.dir/analysis/callgraph.cpp.o" "gcc" "src/CMakeFiles/asc.dir/analysis/callgraph.cpp.o.d"
  "/root/repo/src/analysis/cfg.cpp" "src/CMakeFiles/asc.dir/analysis/cfg.cpp.o" "gcc" "src/CMakeFiles/asc.dir/analysis/cfg.cpp.o.d"
  "/root/repo/src/analysis/dataflow.cpp" "src/CMakeFiles/asc.dir/analysis/dataflow.cpp.o" "gcc" "src/CMakeFiles/asc.dir/analysis/dataflow.cpp.o.d"
  "/root/repo/src/analysis/disassembler.cpp" "src/CMakeFiles/asc.dir/analysis/disassembler.cpp.o" "gcc" "src/CMakeFiles/asc.dir/analysis/disassembler.cpp.o.d"
  "/root/repo/src/analysis/inliner.cpp" "src/CMakeFiles/asc.dir/analysis/inliner.cpp.o" "gcc" "src/CMakeFiles/asc.dir/analysis/inliner.cpp.o.d"
  "/root/repo/src/analysis/syscallgraph.cpp" "src/CMakeFiles/asc.dir/analysis/syscallgraph.cpp.o" "gcc" "src/CMakeFiles/asc.dir/analysis/syscallgraph.cpp.o.d"
  "/root/repo/src/analysis/syscallsites.cpp" "src/CMakeFiles/asc.dir/analysis/syscallsites.cpp.o" "gcc" "src/CMakeFiles/asc.dir/analysis/syscallsites.cpp.o.d"
  "/root/repo/src/apps/apps_cpu.cpp" "src/CMakeFiles/asc.dir/apps/apps_cpu.cpp.o" "gcc" "src/CMakeFiles/asc.dir/apps/apps_cpu.cpp.o.d"
  "/root/repo/src/apps/apps_syscall.cpp" "src/CMakeFiles/asc.dir/apps/apps_syscall.cpp.o" "gcc" "src/CMakeFiles/asc.dir/apps/apps_syscall.cpp.o.d"
  "/root/repo/src/apps/apps_tools.cpp" "src/CMakeFiles/asc.dir/apps/apps_tools.cpp.o" "gcc" "src/CMakeFiles/asc.dir/apps/apps_tools.cpp.o.d"
  "/root/repo/src/apps/libtoy.cpp" "src/CMakeFiles/asc.dir/apps/libtoy.cpp.o" "gcc" "src/CMakeFiles/asc.dir/apps/libtoy.cpp.o.d"
  "/root/repo/src/apps/vuln.cpp" "src/CMakeFiles/asc.dir/apps/vuln.cpp.o" "gcc" "src/CMakeFiles/asc.dir/apps/vuln.cpp.o.d"
  "/root/repo/src/binary/image.cpp" "src/CMakeFiles/asc.dir/binary/image.cpp.o" "gcc" "src/CMakeFiles/asc.dir/binary/image.cpp.o.d"
  "/root/repo/src/core/asc.cpp" "src/CMakeFiles/asc.dir/core/asc.cpp.o" "gcc" "src/CMakeFiles/asc.dir/core/asc.cpp.o.d"
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/asc.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/asc.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/cmac.cpp" "src/CMakeFiles/asc.dir/crypto/cmac.cpp.o" "gcc" "src/CMakeFiles/asc.dir/crypto/cmac.cpp.o.d"
  "/root/repo/src/installer/installer.cpp" "src/CMakeFiles/asc.dir/installer/installer.cpp.o" "gcc" "src/CMakeFiles/asc.dir/installer/installer.cpp.o.d"
  "/root/repo/src/installer/policygen.cpp" "src/CMakeFiles/asc.dir/installer/policygen.cpp.o" "gcc" "src/CMakeFiles/asc.dir/installer/policygen.cpp.o.d"
  "/root/repo/src/installer/rewriter.cpp" "src/CMakeFiles/asc.dir/installer/rewriter.cpp.o" "gcc" "src/CMakeFiles/asc.dir/installer/rewriter.cpp.o.d"
  "/root/repo/src/isa/decode.cpp" "src/CMakeFiles/asc.dir/isa/decode.cpp.o" "gcc" "src/CMakeFiles/asc.dir/isa/decode.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/asc.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/asc.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/encode.cpp" "src/CMakeFiles/asc.dir/isa/encode.cpp.o" "gcc" "src/CMakeFiles/asc.dir/isa/encode.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/CMakeFiles/asc.dir/isa/isa.cpp.o" "gcc" "src/CMakeFiles/asc.dir/isa/isa.cpp.o.d"
  "/root/repo/src/monitor/ktable.cpp" "src/CMakeFiles/asc.dir/monitor/ktable.cpp.o" "gcc" "src/CMakeFiles/asc.dir/monitor/ktable.cpp.o.d"
  "/root/repo/src/monitor/systrace.cpp" "src/CMakeFiles/asc.dir/monitor/systrace.cpp.o" "gcc" "src/CMakeFiles/asc.dir/monitor/systrace.cpp.o.d"
  "/root/repo/src/monitor/training.cpp" "src/CMakeFiles/asc.dir/monitor/training.cpp.o" "gcc" "src/CMakeFiles/asc.dir/monitor/training.cpp.o.d"
  "/root/repo/src/os/checker.cpp" "src/CMakeFiles/asc.dir/os/checker.cpp.o" "gcc" "src/CMakeFiles/asc.dir/os/checker.cpp.o.d"
  "/root/repo/src/os/fs.cpp" "src/CMakeFiles/asc.dir/os/fs.cpp.o" "gcc" "src/CMakeFiles/asc.dir/os/fs.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/CMakeFiles/asc.dir/os/kernel.cpp.o" "gcc" "src/CMakeFiles/asc.dir/os/kernel.cpp.o.d"
  "/root/repo/src/os/process.cpp" "src/CMakeFiles/asc.dir/os/process.cpp.o" "gcc" "src/CMakeFiles/asc.dir/os/process.cpp.o.d"
  "/root/repo/src/os/syscalls.cpp" "src/CMakeFiles/asc.dir/os/syscalls.cpp.o" "gcc" "src/CMakeFiles/asc.dir/os/syscalls.cpp.o.d"
  "/root/repo/src/policy/authstring.cpp" "src/CMakeFiles/asc.dir/policy/authstring.cpp.o" "gcc" "src/CMakeFiles/asc.dir/policy/authstring.cpp.o.d"
  "/root/repo/src/policy/capability.cpp" "src/CMakeFiles/asc.dir/policy/capability.cpp.o" "gcc" "src/CMakeFiles/asc.dir/policy/capability.cpp.o.d"
  "/root/repo/src/policy/descriptor.cpp" "src/CMakeFiles/asc.dir/policy/descriptor.cpp.o" "gcc" "src/CMakeFiles/asc.dir/policy/descriptor.cpp.o.d"
  "/root/repo/src/policy/metapolicy.cpp" "src/CMakeFiles/asc.dir/policy/metapolicy.cpp.o" "gcc" "src/CMakeFiles/asc.dir/policy/metapolicy.cpp.o.d"
  "/root/repo/src/policy/pattern.cpp" "src/CMakeFiles/asc.dir/policy/pattern.cpp.o" "gcc" "src/CMakeFiles/asc.dir/policy/pattern.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/CMakeFiles/asc.dir/policy/policy.cpp.o" "gcc" "src/CMakeFiles/asc.dir/policy/policy.cpp.o.d"
  "/root/repo/src/tasm/assembler.cpp" "src/CMakeFiles/asc.dir/tasm/assembler.cpp.o" "gcc" "src/CMakeFiles/asc.dir/tasm/assembler.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "src/CMakeFiles/asc.dir/util/hex.cpp.o" "gcc" "src/CMakeFiles/asc.dir/util/hex.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/asc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/asc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/asc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/asc.dir/util/stats.cpp.o.d"
  "/root/repo/src/vm/cpu.cpp" "src/CMakeFiles/asc.dir/vm/cpu.cpp.o" "gcc" "src/CMakeFiles/asc.dir/vm/cpu.cpp.o.d"
  "/root/repo/src/vm/machine.cpp" "src/CMakeFiles/asc.dir/vm/machine.cpp.o" "gcc" "src/CMakeFiles/asc.dir/vm/machine.cpp.o.d"
  "/root/repo/src/vm/memory.cpp" "src/CMakeFiles/asc.dir/vm/memory.cpp.o" "gcc" "src/CMakeFiles/asc.dir/vm/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
