// Table 2: per-syscall comparison of the bison policies on BsdSim --
// conservative static analysis (ASC) vs the published-Systrace-style policy
// (training + fsread/fswrite aliases). Like Table 1, the training side
// relies on clearing the kernel trace without touching the audit log
// (os/auditlog.h documents that partial-clearing contract).
//
// Reproduced effects:
//   * many calls only ASC finds (error paths, allocator internals, rare
//     features) -> potential Systrace false alarms,
//   * `__syscall` present in the ASC policy with its first argument
//     constrained (the BSD mmap indirection),
//   * `close` MISSING from the ASC policy because the hand-written stub
//     defeats the disassembler (and is reported),
//   * fs calls the program never makes that Systrace nevertheless permits
//     through fsread/fswrite.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>

#include "core/asc.h"
#include "monitor/systrace.h"
#include "monitor/training.h"

namespace {

using namespace asc;

void run_table() {
  const auto pers = os::Personality::BsdSim;
  auto img = apps::build_bison(pers);

  // ASC policy by static analysis.
  installer::Installer inst(test_key(), pers);
  auto gp = inst.analyze(img);
  std::set<std::string> asc_names;
  for (const auto& p : gp.policies) asc_names.insert(os::signature(p.sys).name);

  // Published Systrace-style policy by training.
  System sys(pers, test_key(), os::Enforcement::Off);
  auto& fs = sys.kernel().fs();
  {
    std::string gram;
    for (int i = 0; i < 25; ++i) gram += "rule: tok\n";
    auto ino = fs.open("/", "/gram.y", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(gram.begin(), gram.end()), false);
  }
  auto trained = monitor::train_policy(sys.machine(), img, {{{"/gram.y"}, ""}});
  auto pub = monitor::make_published_policy(trained, pers);

  // Annotate permitted-by-alias calls like the paper's "(fswrite)" notes.
  auto systrace_cell = [&](const std::string& name) -> std::string {
    if (pub.named.count(name) != 0) return "yes";
    if (pub.permitted.count(name) != 0) {
      const auto id = [&] {
        for (os::SysId s : os::available_syscalls(pers)) {
          if (os::signature(s).name == name) return s;
        }
        return os::SysId::Exit;
      }();
      return os::signature(id).category == os::Category::FsWrite ? "yes (fswrite)"
                                                                 : "yes (fsread)";
    }
    return "NO";
  };

  std::set<std::string> all = asc_names;
  for (const auto& n : pub.permitted) all.insert(n);
  // Also show calls neither permits but the paper discusses (close).
  all.insert("close");

  std::printf("\n=== Table 2: Comparison of policies for bison (BsdSim) ===\n");
  std::printf("%-16s %-6s %s\n", "System call", "ASC", "Systrace");
  std::size_t asc_only = 0;
  std::size_t systrace_only = 0;
  for (const auto& name : all) {
    const bool in_asc = asc_names.count(name) != 0;
    const std::string st = systrace_cell(name);
    if (in_asc && st == "NO") ++asc_only;
    if (!in_asc && st != "NO") ++systrace_only;
    std::printf("%-16s %-6s %s\n", name.c_str(), in_asc ? "yes" : "NO", st.c_str());
  }
  std::printf("\nASC-only calls (possible Systrace false alarms): %zu\n", asc_only);
  std::printf("Systrace-only calls (unneeded but permitted):     %zu\n", systrace_only);
  std::printf("\nInstaller reports for incompletely analyzable code:\n");
  for (const auto& w : gp.warnings) std::printf("  %s\n", w.c_str());
}

void BM_Table2(benchmark::State& state) {
  for (auto _ : state) {
    installer::Installer inst(test_key(), os::Personality::BsdSim);
    auto gp = inst.analyze(apps::build_bison(os::Personality::BsdSim));
    benchmark::DoNotOptimize(gp.policies.size());
  }
}
BENCHMARK(BM_Table2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
