// Tables 5 & 6: macro benchmark suite -- total execution cost of original
// vs authenticated binaries on fixed inputs.
//
// Programs (Table 5): CPU-bound SPECint-2000 stand-ins (gzip-spec, crafty,
// mcf, vpr, twolf), syscall+CPU (gcc, vortex), syscall-intensive (pyramid,
// gzip). Protocol (Table 6): each measurement repeated 4 times; mean and
// standard deviation of MODELED cycles reported (the deterministic analog
// of the paper's `time` measurements -- identical across repetitions here,
// so stddev reflects only workload-state differences).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/asc.h"
#include "util/stats.h"

namespace {

using namespace asc;

struct Bench {
  const char* program;
  const char* type;
  std::vector<std::string> argv;
  double paper_overhead_pct;
};

const Bench kSuite[] = {
    {"gzip-spec", "CPU", {"60"}, 1.41},
    {"crafty", "CPU", {"600000"}, 1.40},
    {"mcf", "CPU", {"1200"}, 0.73},
    {"vpr", "CPU", {"500000"}, 1.16},
    {"twolf", "CPU", {"500000"}, 1.70},
    {"gcc", "syscall&CPU", {"/in.c", "/out.o"}, 1.39},
    {"vortex", "syscall&CPU", {"60000"}, 0.84},
    {"pyramid", "syscall", {"1500"}, 7.92},
    {"gzip", "syscall", {"/big.txt"}, 1.06},
};

binary::Image build(const std::string& name, os::Personality p) {
  for (auto& [n, img] : apps::build_all(p)) {
    if (n == name) return img;
  }
  throw Error("unknown program " + name);
}

void prepare(os::SimFs& fs) {
  auto put = [&](const std::string& path, const std::string& content) {
    auto ino = fs.open("/", path, os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc, 0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(content.begin(), content.end()), false);
  };
  std::string src = "int main() { return 0; }\n";
  for (int i = 0; i < 400; ++i) src += "void f" + std::to_string(i) + "() { /* body */ }\n";
  put("/in.c", src);
  std::string big;
  for (int i = 0; i < 1200; ++i) big += "the quick brown fox jumps over the lazy dog " + std::to_string(i % 7) + "\n";
  put("/big.txt", big);
}

constexpr int kReps = 4;

util::Summary measure(const Bench& b, bool authenticated) {
  std::vector<double> samples;
  for (int rep = 0; rep < kReps; ++rep) {
    System sys(os::Personality::LinuxSim, test_key(),
               authenticated ? os::Enforcement::Asc : os::Enforcement::Off);
    prepare(sys.kernel().fs());
    binary::Image img = build(b.program, os::Personality::LinuxSim);
    if (authenticated) img = sys.install(img).image;
    auto r = sys.machine().run(img, b.argv);
    if (!r.completed) {
      std::fprintf(stderr, "%s failed: %s\n", b.program, r.violation_detail.c_str());
      return {};
    }
    samples.push_back(static_cast<double>(r.cycles));
  }
  return util::summarize(samples);
}

void run_table() {
  std::printf("\n=== Tables 5+6: Benchmark suite & performance overhead ===\n");
  std::printf("%-10s %-12s %14s %14s %9s | %9s\n", "Program", "Type", "Orig(Mcyc)",
              "Auth(Mcyc)", "Ovh(%)", "paper(%)");
  double sum = 0;
  for (const Bench& b : kSuite) {
    const auto orig = measure(b, false);
    const auto auth = measure(b, true);
    const double ovh = orig.mean > 0 ? (auth.mean - orig.mean) / orig.mean * 100.0 : 0;
    sum += ovh;
    std::printf("%-10s %-12s %14.2f %14.2f %8.2f%% | %8.2f%%\n", b.program, b.type,
                orig.mean / 1e6, auth.mean / 1e6, ovh, b.paper_overhead_pct);
  }
  std::printf("mean overhead: %.2f%% (paper range 0.73%%-7.92%%)\n",
              sum / (sizeof(kSuite) / sizeof(kSuite[0])));
}

void BM_Macro(benchmark::State& state) {
  const Bench& b = kSuite[static_cast<std::size_t>(state.range(0))];
  const bool auth = state.range(1) != 0;
  for (auto _ : state) {
    const auto s = measure(b, auth);
    benchmark::DoNotOptimize(s.mean);
    state.counters["Mcycles"] = s.mean / 1e6;
  }
  state.SetLabel(std::string(b.program) + (auth ? "/auth" : "/orig"));
}
BENCHMARK(BM_Macro)->ArgsProduct({{0, 7}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
