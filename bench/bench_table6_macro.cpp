// Tables 5 & 6: macro benchmark suite -- total execution cost of original
// vs authenticated binaries on fixed inputs.
//
// Programs (Table 5): CPU-bound SPECint-2000 stand-ins (gzip-spec, crafty,
// mcf, vpr, twolf), syscall+CPU (gcc, vortex), syscall-intensive (pyramid,
// gzip). Protocol (Table 6): each measurement repeated 4 times; mean and
// standard deviation of MODELED cycles reported (the deterministic analog
// of the paper's `time` measurements -- identical across repetitions here,
// so stddev reflects only workload-state differences). The authenticated
// column runs with the AscMonitor installed in the kernel's enforcement
// layer; the baseline column with the NullMonitor.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/asc.h"
#include "util/stats.h"

namespace {

using namespace asc;

struct Bench {
  const char* program;
  const char* type;
  std::vector<std::string> argv;
  double paper_overhead_pct;
};

// Workload sizes chosen so each program retires enough guest instructions
// for the threaded engine's wall-clock advantage (and any regression in it)
// to dominate setup noise -- tens of millions of modeled cycles per run,
// a realistic-scale stand-in for the paper's full SPEC inputs.
const Bench kSuite[] = {
    {"gzip-spec", "CPU", {"150"}, 1.41},
    {"crafty", "CPU", {"2000000"}, 1.40},
    {"mcf", "CPU", {"3000"}, 0.73},
    {"vpr", "CPU", {"1500000"}, 1.16},
    {"twolf", "CPU", {"1500000"}, 1.70},
    {"gcc", "syscall&CPU", {"/in.c", "/out.o"}, 1.39},
    {"vortex", "syscall&CPU", {"150000"}, 0.84},
    {"pyramid", "syscall", {"2500"}, 7.92},
    {"gzip", "syscall", {"/big.txt"}, 1.06},
};

binary::Image build(const std::string& name, os::Personality p) {
  for (auto& [n, img] : apps::build_all(p)) {
    if (n == name) return img;
  }
  throw Error("unknown program " + name);
}

void prepare(os::SimFs& fs) {
  auto put = [&](const std::string& path, const std::string& content) {
    auto ino = fs.open("/", path, os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc, 0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(content.begin(), content.end()), false);
  };
  std::string src = "int main() { return 0; }\n";
  for (int i = 0; i < 800; ++i) src += "void f" + std::to_string(i) + "() { /* body */ }\n";
  put("/in.c", src);
  std::string big;
  for (int i = 0; i < 4000; ++i) big += "the quick brown fox jumps over the lazy dog " + std::to_string(i % 7) + "\n";
  put("/big.txt", big);
}

constexpr int kReps = 4;

/// Unmonitored baseline, full per-trap verification, verification with the
/// kernel's verified-call cache (os/asccache.h), cache plus the policy-state
/// shadow (os/ascshadow.h), and the full tier lattice with the trap-less
/// Inline tier on top (os/tiertable.h).
enum class Mode { Off, Auth, AuthCached, AuthShadow, AuthInline };

/// When `wall_ns_per_instr` is non-null it receives host wall-clock per
/// retired guest instruction across the reps (informational; modeled cycles
/// are the gated contract). `dispatch` selects the execution engine --
/// byte-identical modeled results either way, only wall-clock differs.
util::Summary measure(const Bench& b, Mode mode, double* wall_ns_per_instr = nullptr,
                      vm::DispatchMode dispatch = vm::default_dispatch_mode()) {
  const bool authenticated = mode != Mode::Off;
  std::vector<double> samples;
  double total_wall_ns = 0;
  double total_instr = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    System sys(os::Personality::LinuxSim, test_key(),
               authenticated ? os::Enforcement::Asc : os::Enforcement::Off);
    sys.machine().set_dispatch(dispatch);
    sys.kernel().set_verified_call_cache(mode == Mode::AuthCached || mode == Mode::AuthShadow ||
                                         mode == Mode::AuthInline);
    sys.kernel().set_policy_shadow(mode == Mode::AuthShadow || mode == Mode::AuthInline);
    sys.kernel().set_inline_tier(mode == Mode::AuthInline);
    prepare(sys.kernel().fs());
    binary::Image img = build(b.program, os::Personality::LinuxSim);
    if (authenticated) img = sys.install(img).image;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = sys.machine().run(img, b.argv);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.completed) {
      std::fprintf(stderr, "%s failed: %s\n", b.program, r.violation_detail.c_str());
      return {};
    }
    total_wall_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    total_instr += static_cast<double>(r.instructions);
    samples.push_back(static_cast<double>(r.cycles));
  }
  if (wall_ns_per_instr != nullptr && total_instr > 0) {
    *wall_ns_per_instr = total_wall_ns / total_instr;
  }
  return util::summarize(samples);
}

void run_table() {
  std::printf("\n=== Tables 5+6: Benchmark suite & performance overhead ===\n");
  std::printf("%-10s %-12s %12s %12s %12s %12s %12s %8s %8s %8s %8s | %8s\n", "Program",
              "Type", "Orig(Mcyc)", "Auth(Mcyc)", "Cache(Mcyc)", "Shdw(Mcyc)", "Inl(Mcyc)",
              "Ovh(%)", "OvhC(%)", "OvhS(%)", "OvhI(%)", "paper(%)");
  FILE* json = std::fopen("BENCH_table6.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"table\": \"table6\",\n"
                       "  \"unit\": \"modeled_megacycles\",\n  \"rows\": [\n");
  }
  double sum = 0;
  double sum_cached = 0;
  double sum_shadow = 0;
  double sum_inline = 0;
  double sum_speedup = 0;
  bool first = true;
  for (const Bench& b : kSuite) {
    // Engine wall-clock comparison rides on the unmonitored runs: the same
    // workload through the threaded engine and the reference interpreter
    // (identical modeled cycles, asserted below).
    double wall_threaded = 0;
    double wall_switch = 0;
    const auto orig = measure(b, Mode::Off, &wall_threaded, vm::DispatchMode::Threaded);
    const auto orig_switch = measure(b, Mode::Off, &wall_switch, vm::DispatchMode::Switch);
    if (orig_switch.mean != orig.mean) {
      std::fprintf(stderr, "%s: dispatch modes disagree on modeled cycles!\n", b.program);
    }
    const auto auth = measure(b, Mode::Auth);
    const auto cached = measure(b, Mode::AuthCached);
    const auto shadowed = measure(b, Mode::AuthShadow);
    const auto inl = measure(b, Mode::AuthInline);
    const double ovh = orig.mean > 0 ? (auth.mean - orig.mean) / orig.mean * 100.0 : 0;
    const double ovh_c = orig.mean > 0 ? (cached.mean - orig.mean) / orig.mean * 100.0 : 0;
    const double ovh_s = orig.mean > 0 ? (shadowed.mean - orig.mean) / orig.mean * 100.0 : 0;
    const double ovh_i = orig.mean > 0 ? (inl.mean - orig.mean) / orig.mean * 100.0 : 0;
    sum += ovh;
    sum_cached += ovh_c;
    sum_shadow += ovh_s;
    sum_inline += ovh_i;
    sum_speedup += wall_threaded > 0 ? wall_switch / wall_threaded : 0;
    std::printf("%-10s %-12s %12.2f %12.2f %12.2f %12.2f %12.2f %7.2f%% %7.2f%% %7.2f%% "
                "%7.2f%% | %7.2f%%\n",
                b.program, b.type, orig.mean / 1e6, auth.mean / 1e6, cached.mean / 1e6,
                shadowed.mean / 1e6, inl.mean / 1e6, ovh, ovh_c, ovh_s, ovh_i,
                b.paper_overhead_pct);
    if (json != nullptr) {
      std::fprintf(json,
                   "%s    {\"name\": \"%s\", \"type\": \"%s\", \"orig\": %.3f, "
                   "\"auth\": %.3f, \"auth_cached\": %.3f, \"auth_shadow\": %.3f, "
                   "\"auth_inline\": %.3f, "
                   "\"overhead_pct\": %.3f, \"overhead_cached_pct\": %.3f, "
                   "\"overhead_shadow_pct\": %.3f, \"overhead_inline_pct\": %.3f, "
                   "\"wall_ns_per_instr\": %.3f, \"wall_ns_per_instr_switch\": %.3f, "
                   "\"dispatch_speedup\": %.2f}",
                   first ? "" : ",\n", b.program, b.type, orig.mean / 1e6, auth.mean / 1e6,
                   cached.mean / 1e6, shadowed.mean / 1e6, inl.mean / 1e6, ovh, ovh_c, ovh_s,
                   ovh_i, wall_threaded, wall_switch,
                   wall_threaded > 0 ? wall_switch / wall_threaded : 0);
      first = false;
    }
  }
  const double n = static_cast<double>(sizeof(kSuite) / sizeof(kSuite[0]));
  if (json != nullptr) {
    std::fprintf(json,
                 "\n  ],\n  \"mean_overhead_pct\": %.3f,\n"
                 "  \"mean_overhead_cached_pct\": %.3f,\n"
                 "  \"mean_overhead_shadow_pct\": %.3f,\n"
                 "  \"mean_overhead_inline_pct\": %.3f\n}\n",
                 sum / n, sum_cached / n, sum_shadow / n, sum_inline / n);
    std::fclose(json);
  }
  std::printf("mean overhead: %.2f%% uncached, %.2f%% with the verified-call cache, "
              "%.2f%% with cache+shadow, %.2f%% with the full tier lattice\n"
              "(paper range 0.73%%-7.92%%; machine-readable copy in BENCH_table6.json)\n"
              "mean threaded-engine wall-clock speedup over the switch interpreter: %.1fx\n"
              "(host-dependent; per-row wall_ns_per_instr columns in the JSON, not gated)\n",
              sum / n, sum_cached / n, sum_shadow / n, sum_inline / n, sum_speedup / n);
}

void BM_Macro(benchmark::State& state) {
  const Bench& b = kSuite[static_cast<std::size_t>(state.range(0))];
  const auto mode = static_cast<Mode>(state.range(1));
  for (auto _ : state) {
    const auto s = measure(b, mode);
    benchmark::DoNotOptimize(s.mean);
    state.counters["Mcycles"] = s.mean / 1e6;
  }
  const char* suffix = mode == Mode::Off      ? "/orig"
                       : mode == Mode::Auth   ? "/auth"
                       : mode == Mode::AuthCached ? "/cached"
                       : mode == Mode::AuthShadow ? "/shadow"
                                                  : "/inline";
  state.SetLabel(std::string(b.program) + suffix);
}
BENCHMARK(BM_Macro)
    ->ArgsProduct({{0, 7}, {0, 1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
