// Ablation: where the per-call checking cost goes.
//
// Decomposes the authenticated-call overhead of Table 4 by switching policy
// features off: control-flow policies (predecessor set + policy-state MACs)
// vs the bare call MAC, and string arguments (AS content MACs) vs numeric
// ones. Run on getpid (no args) and on an open with a constant path (one
// authenticated string). All of the cost decomposed here is enforcement-
// layer work: what AscMonitor::inspect charges per trap (os/sysmonitor.h).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "tasm/assembler.h"

namespace {

using namespace asc;
using apps::R0;
using apps::R1;
using apps::R2;
using apps::R3;
using apps::R11;

binary::Image build_guest(bool with_open, std::uint32_t iters) {
  tasm::Assembler a("ablate");
  a.func("main");
  a.movi(R11, iters);
  a.label(".loop");
  a.cmpi(R11, 0);
  a.jz(".done");
  a.push(R11);
  if (with_open) {
    a.lea(R1, "ab_path");
    a.movi(R2, apps::O_RDONLY);
    a.movi(R3, 0);
    a.call("sys_open");
    a.cmpi(R0, 0);
    a.jlt(".closed");
    a.mov(R1, R0);
    a.call("sys_close");
    a.label(".closed");
  } else {
    a.call("sys_getpid");
  }
  a.pop(R11);
  a.subi(R11, 1);
  a.jmp(".loop");
  a.label(".done");
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("ab_path", "/etc/termcap");
  apps::emit_libc(a, os::Personality::LinuxSim);
  return a.link();
}

constexpr std::uint32_t kIters = 5000;

double per_call(bool with_open, bool enforce, bool control_flow) {
  System sys(os::Personality::LinuxSim, test_key(),
             enforce ? os::Enforcement::Asc : os::Enforcement::Off);
  binary::Image img = build_guest(with_open, kIters);
  binary::Image run_img = img;
  if (enforce) {
    installer::InstallOptions opts;
    opts.control_flow = control_flow;
    run_img = sys.install(img, opts).image;
  }
  auto r = sys.machine().run(run_img);
  if (!r.completed) {
    std::fprintf(stderr, "ablation run failed: %s\n", r.violation_detail.c_str());
    return 0;
  }
  return static_cast<double>(r.cycles) / static_cast<double>(r.syscalls);
}

void run_table() {
  std::printf("\n=== Ablation: per-call checking cost breakdown (cycles/call) ===\n");
  std::printf("%-26s %12s %12s\n", "configuration", "getpid-loop", "open+close");
  const double g0 = per_call(false, false, false);
  const double o0 = per_call(true, false, false);
  std::printf("%-26s %12.0f %12.0f\n", "unmonitored", g0, o0);
  const double g1 = per_call(false, true, false);
  const double o1 = per_call(true, true, false);
  std::printf("%-26s %12.0f %12.0f   (+%0.0f / +%0.0f)\n", "call MAC only (no cflow)", g1, o1,
              g1 - g0, o1 - o0);
  const double g2 = per_call(false, true, true);
  const double o2 = per_call(true, true, true);
  std::printf("%-26s %12.0f %12.0f   (+%0.0f / +%0.0f)\n", "full (cflow + AS strings)", g2, o2,
              g2 - g0, o2 - o0);
  std::printf("(control-flow checking adds pred-set verify + two state MACs;\n"
              " the open row additionally pays one AS content MAC)\n");
}

void BM_CheckBreakdown(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        per_call(state.range(0) != 0, state.range(1) != 0, state.range(2) != 0));
  }
}
BENCHMARK(BM_CheckBreakdown)
    ->ArgsProduct({{0, 1}, {1}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
