// Table 4: per-system-call cost of authentication.
//
// Reproduces the paper's microbenchmark: each system call is executed
// 10,000 times in a guest loop; the cost is measured in MODELED CPU cycles
// (the deterministic analog of the paper's rdtsc readings); the experiment
// is repeated 12 times, the highest and lowest readings are dropped, and
// the remaining 10 averaged. Compared: original binaries on an unmonitored
// kernel (NullMonitor) vs authenticated binaries with the AscMonitor
// installed; the per-call delta is exactly the enforcement layer's charge.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "crypto/cmac.h"
#include "tasm/assembler.h"
#include "util/stats.h"

namespace {

using namespace asc;

// Guest that performs `iters` repetitions of one syscall in a tight loop.
enum class Call { Getpid, Gettimeofday, Read4k, Write4k, Brk };

binary::Image build_loop_guest(os::Personality p, Call call, std::uint32_t iters) {
  using namespace asc::apps;
  tasm::Assembler a("microloop");
  a.func("main");
  a.subi(SP, 4);
  a.movi(R11, iters);
  a.store(SP, 0, R11);
  // Open the data file once for read/write variants.
  if (call == Call::Read4k || call == Call::Write4k) {
    a.lea(R1, "mb_file");
    a.movi(R2, O_RDWR | O_CREAT);
    a.movi(R3, 0644);
    a.call("open_or_die");
    a.lea(R11, "mb_fd");
    a.store(R11, 0, R0);
  }
  a.label(".loop");
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".done");
  switch (call) {
    case Call::Getpid:
      a.call("sys_getpid");
      break;
    case Call::Gettimeofday:
      a.lea(R1, "mb_tv");
      a.movi(R2, 0);
      a.call("sys_gettimeofday");
      break;
    case Call::Read4k:
      // The data file is large enough that every read returns a full 4096
      // bytes; no rewind needed, so the loop measures read() alone.
      a.lea(R11, "mb_fd");
      a.load(R1, R11, 0);
      a.lea(R2, "mb_buf");
      a.movi(R3, 4096);
      a.call("sys_read");
      break;
    case Call::Write4k:
      a.lea(R11, "mb_fd");
      a.load(R1, R11, 0);
      a.lea(R2, "mb_buf");
      a.movi(R3, 4096);
      a.call("sys_write");
      break;
    case Call::Brk:
      a.movi(R1, 0);
      a.call("sys_brk");
      break;
  }
  a.load(R11, SP, 0);
  a.subi(R11, 1);
  a.store(SP, 0, R11);
  a.jmp(".loop");
  a.label(".done");
  a.addi(SP, 4);
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("mb_file", "/tmp/mb.dat");
  a.bss("mb_tv", 8);
  a.bss("mb_buf", 4096);
  a.bss("mb_fd", 4);
  emit_libc(a, p);
  return a.link();
}

struct Row {
  const char* name;
  Call call;
  // Paper-reported values (Pentium cycles) for EXPERIMENTS.md comparison.
  double paper_orig;
  double paper_auth;
};

constexpr Row kRows[] = {
    {"getpid()", Call::Getpid, 1141, 5045},
    {"gettimeofday()", Call::Gettimeofday, 1395, 5703},
    {"read(4096)", Call::Read4k, 7324, 10013},
    {"write(4096)", Call::Write4k, 39479, 40396},
    {"brk()", Call::Brk, 1155, 5083},
};

constexpr std::uint32_t kIters = 10000;
constexpr int kReps = 12;

/// Measurement configurations: unmonitored baseline, full §3.4 verification
/// on every trap (the paper's system), verification with the kernel's
/// verified-call cache enabled (os/asccache.h; on after the first trap per
/// site every iteration takes the fast path), cache plus the policy-state
/// shadow (os/ascshadow.h; the per-call state MACs collapse to a shadow
/// transition, lbMAC materialized lazily), and the full tier lattice with
/// the trap-less Inline tier on top (os/tiertable.h; after the promotion
/// streak each call clears a pre-authorized register/watch probe instead of
/// the enforcement pipeline).
enum class Mode { Off, Auth, AuthCached, AuthShadow, AuthInline };

/// Cycles per syscall for one configuration. Subtracts a calibration run
/// (same loop with no syscall other than exit) so only the per-call cost
/// remains, mirroring the paper's subtraction of rdtsc/loop overhead.
/// When `wall_ns_per_instr` is non-null it receives host wall-clock per
/// retired guest instruction across all reps -- an INFORMATIONAL engine
/// throughput number (host-dependent, never gated; modeled cycles above
/// are the deterministic contract).
double measure(Call call, Mode mode, double* wall_ns_per_instr = nullptr) {
  const auto pers = os::Personality::LinuxSim;
  const bool authenticated = mode != Mode::Off;
  std::vector<double> samples;
  double total_wall_ns = 0;
  double total_instr = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    System sys(pers, test_key(),
               authenticated ? os::Enforcement::Asc : os::Enforcement::Off);
    sys.kernel().set_verified_call_cache(mode == Mode::AuthCached || mode == Mode::AuthShadow ||
                                         mode == Mode::AuthInline);
    sys.kernel().set_policy_shadow(mode == Mode::AuthShadow || mode == Mode::AuthInline);
    sys.kernel().set_inline_tier(mode == Mode::AuthInline);
    // Seed a data file big enough for kIters full-size reads.
    if (call == Call::Read4k) {
      auto& fs = sys.kernel().fs();
      auto ino = fs.open("/", "/tmp/mb.dat", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
      fs.write(static_cast<std::uint32_t>(ino), 0,
               std::vector<std::uint8_t>(4096ull * (kIters + 1), 0x5a), false);
    }

    binary::Image img = build_loop_guest(pers, call, kIters);
    binary::Image run_img = img;
    if (authenticated) run_img = sys.install(img).image;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = sys.machine().run(run_img);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.completed) {
      std::fprintf(stderr, "microbench run failed: %s\n", r.violation_detail.c_str());
      return 0;
    }
    total_wall_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    total_instr += static_cast<double>(r.instructions);
    // Loop-body overhead per iteration (load/cmp/sub/store/jmp + arg
    // setup): measured in instructions, negligible vs the trap; we report
    // total cycles / iterations minus nothing, exactly like the paper's
    // table which includes the (tiny) loop cost as separate rows.
    samples.push_back(static_cast<double>(r.cycles) / kIters);
  }
  if (wall_ns_per_instr != nullptr && total_instr > 0) {
    *wall_ns_per_instr = total_wall_ns / total_instr;
  }
  return util::summarize_trimmed(samples).mean;
}

/// CMAC throughput (AES blocks/second) through the batched path, with the
/// backend the process-wide policy selects. Informational: host-dependent,
/// printed and recorded in the JSON but never gated.
double cmac_blocks_per_sec() {
  const crypto::Cmac cmac(test_key());
  constexpr std::size_t kMsgBytes = 256;  // 16 blocks + the final transform
  constexpr std::size_t kBatch = 64;
  std::vector<std::uint8_t> msg(kMsgBytes);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i * 31 + 7);
  std::vector<std::span<const std::uint8_t>> batch(kBatch, std::span<const std::uint8_t>(msg));
  // Warm up, then time enough batches for a stable reading.
  volatile std::uint8_t sink = cmac.compute_batch(batch)[0][0];
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t blocks = 0;
  constexpr int kRounds = 200;
  for (int i = 0; i < kRounds; ++i) {
    const auto macs = cmac.compute_batch(batch);
    sink = sink ^ macs[static_cast<std::size_t>(i) % kBatch][0];
    blocks += kBatch * (kMsgBytes / 16);
  }
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0 ? static_cast<double>(blocks) / secs : 0;
}

void run_table() {
  std::printf("\n=== Table 4: Effect of Authentication (modeled cycles/call) ===\n");
  std::printf("%-16s %10s %10s %10s %10s %10s %8s %8s %8s %8s %8s | %9s %9s\n", "System Call",
              "Original", "Auth.", "AuthCache", "AuthShdw", "AuthInl", "Ovh(%)", "OvhC(%)",
              "OvhS(%)", "OvhI(%)", "Redu(%)", "paperAuth", "paperOvh%");
  FILE* json = std::fopen("BENCH_table4.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"table\": \"table4\",\n"
                       "  \"unit\": \"modeled_cycles_per_call\",\n  \"rows\": [\n");
  }
  bool first = true;
  for (const Row& row : kRows) {
    double wall_ns_per_instr = 0;
    const double orig = measure(row.call, Mode::Off, &wall_ns_per_instr);
    const double auth = measure(row.call, Mode::Auth);
    const double cached = measure(row.call, Mode::AuthCached);
    const double shadowed = measure(row.call, Mode::AuthShadow);
    const double inl = measure(row.call, Mode::AuthInline);
    const double ovh = orig > 0 ? (auth - orig) / orig * 100.0 : 0;
    const double ovh_c = orig > 0 ? (cached - orig) / orig * 100.0 : 0;
    const double ovh_s = orig > 0 ? (shadowed - orig) / orig * 100.0 : 0;
    const double ovh_i = orig > 0 ? (inl - orig) / orig * 100.0 : 0;
    // The headline number the cache is judged on: how much of the
    // authenticated per-call overhead the fast path removes.
    const double redu = auth - orig > 0 ? (auth - cached) / (auth - orig) * 100.0 : 0;
    const double paper_ovh = (row.paper_auth - row.paper_orig) / row.paper_orig * 100.0;
    std::printf("%-16s %10.0f %10.0f %10.0f %10.0f %10.0f %7.1f%% %7.1f%% %7.1f%% %7.1f%% "
                "%7.1f%% | %9.0f %8.1f%%\n",
                row.name, orig, auth, cached, shadowed, inl, ovh, ovh_c, ovh_s, ovh_i, redu,
                row.paper_auth, paper_ovh);
    if (json != nullptr) {
      std::fprintf(json,
                   "%s    {\"name\": \"%s\", \"orig\": %.1f, \"auth\": %.1f, "
                   "\"auth_cached\": %.1f, \"auth_shadow\": %.1f, \"auth_inline\": %.1f, "
                   "\"overhead_pct\": %.2f, "
                   "\"overhead_cached_pct\": %.2f, \"overhead_shadow_pct\": %.2f, "
                   "\"overhead_inline_pct\": %.2f, "
                   "\"overhead_reduction_pct\": %.2f, \"wall_ns_per_instr\": %.3f}",
                   first ? "" : ",\n", row.name, orig, auth, cached, shadowed, inl, ovh, ovh_c,
                   ovh_s, ovh_i, redu, wall_ns_per_instr);
      first = false;
    }
  }
  // CMAC engine throughput: the selected backend (AES-NI when the host has
  // it) vs the scratch reference oracle. Host wall-clock, informational.
  const auto saved_policy = crypto::Aes128::backend_policy();
  const double cmac_bps = cmac_blocks_per_sec();
  crypto::Aes128::set_backend_policy(crypto::Aes128::BackendPolicy::ForceScratch);
  const double cmac_bps_scratch = cmac_blocks_per_sec();
  crypto::Aes128::set_backend_policy(saved_policy);
  const bool aesni = saved_policy == crypto::Aes128::BackendPolicy::Auto &&
                     crypto::Aes128::aesni_supported();
  std::printf("CMAC throughput: %.1f Mblocks/s (%s), %.1f Mblocks/s (scratch), %.1fx\n",
              cmac_bps / 1e6, aesni ? "aesni" : "scratch", cmac_bps_scratch / 1e6,
              cmac_bps_scratch > 0 ? cmac_bps / cmac_bps_scratch : 0);
  if (json != nullptr) {
    std::fprintf(json,
                 "\n  ],\n  \"aes_backend\": \"%s\",\n"
                 "  \"cmac_blocks_per_sec\": %.0f,\n"
                 "  \"cmac_blocks_per_sec_scratch\": %.0f\n}\n",
                 aesni ? "aesni" : "scratch", cmac_bps, cmac_bps_scratch);
    std::fclose(json);
  }
  std::printf("(each row: %u calls/loop, %d reps, hi/lo dropped, mean of the rest;\n"
              " read row streams a pre-seeded file; write row appends;\n"
              " AuthCache = verified-call cache on; AuthShdw = cache + policy-state shadow;\n"
              " AuthInl = full tier lattice incl. the trap-less Inline tier (eligible\n"
              " side-effect-light calls only; others stay on the Shadowed tier);\n"
              " Redu%% = share of auth overhead the cache removes;\n"
              " machine-readable copy written to BENCH_table4.json)\n",
              kIters, kReps);
}

void BM_Table4(benchmark::State& state) {
  for (auto _ : state) {
    const double v = measure(static_cast<Call>(state.range(0)),
                             static_cast<Mode>(state.range(1)));
    benchmark::DoNotOptimize(v);
    state.counters["cycles_per_call"] = v;
  }
}
BENCHMARK(BM_Table4)
    ->ArgsProduct({{0, 1, 4}, {0, 1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
