// Table 7 companion: fleet-scale multi-tenant kernel throughput.
//
// Runs the fleet::Driver at 1k and 10k tenants (100k with ASC_FLEET_FULL=1
// in the environment -- the nightly soak's full-size row), each at
// jobs = 1, 2, 8 on the work-stealing executor, with the default churn
// cadences (staggered genuine key rotations, monitor swaps, respawn
// storms). The fleet_1k_keys row reruns the 1k fleet with per-tenant keys:
// every tenant rekeys the shared installed templates to its own key via the
// differential installer::Rekeyer before its first run.
//
// Two kinds of columns, deliberately separated (same discipline as the
// Table 5 companion):
//   wall_j*          measured wall seconds. Honest but host-dependent; a
//                    single-core CI runner shows no speedup. INFORMATIONAL.
//   deterministic    the verdict trace AND the aggregated audit digest must
//                    be byte-identical at jobs 1/2/8. GATED.
//   modeled_vsps_j8  verified syscalls per modeled second: total verified
//                    syscalls divided by the LPT makespan of the per-tenant
//                    modeled cycles on 8 workers, at a 1 GHz virtual clock.
//                    Deterministic, host-independent. GATED: must not fall
//                    more than the tolerance below the baseline.
//   per_tenant_bytes retained TenantState shard bytes per tenant after
//                    teardown. Deterministic. GATED: must not grow.
//
// Machine-readable copy in BENCH_table7.json
// (scripts/check_bench_regression.py knows the schema).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.h"
#include "util/executor.h"

namespace {

using namespace asc;

const int kJobs[] = {1, 2, 8};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// LPT makespan of `weights` on `jobs` bins: the modeled wall of an ideal
/// work-stealing schedule.
double lpt_makespan(std::vector<double> weights, int jobs) {
  if (weights.empty()) return 0.0;
  std::sort(weights.begin(), weights.end(), std::greater<>());
  std::vector<double> bins(static_cast<std::size_t>(std::max(1, jobs)), 0.0);
  for (const double w : weights) {
    *std::min_element(bins.begin(), bins.end()) += w;
  }
  return *std::max_element(bins.begin(), bins.end());
}

struct FleetRun {
  double wall = 0;
  fleet::FleetResult result;
};

FleetRun run_fleet(int tenants, int jobs, bool per_tenant_keys) {
  util::Executor ex(jobs);
  fleet::FleetConfig cfg;
  cfg.seed = 1;
  cfg.tenants = tenants;
  cfg.executor = &ex;
  cfg.per_tenant_keys = per_tenant_keys;
  FleetRun fr;
  fr.wall = now_seconds();
  fr.result = fleet::Driver(cfg).run();
  fr.wall = now_seconds() - fr.wall;
  return fr;
}

struct Row {
  std::string name;
  int tenants = 0;
  bool deterministic = true;
  std::size_t trips = 0;
  std::uint64_t syscalls = 0;
  double wall[3] = {0, 0, 0};  // indexed like kJobs
  double modeled_vsps_j8 = 0;  // verified syscalls / modeled second @ 8 jobs
  std::size_t per_tenant_bytes = 0;
};

Row run_row(const std::string& name, int tenants, bool per_tenant_keys = false) {
  Row r;
  r.name = name;
  r.tenants = tenants;
  fleet::FleetResult ref;
  for (int j = 0; j < 3; ++j) {
    FleetRun fr = run_fleet(tenants, kJobs[j], per_tenant_keys);
    r.wall[j] = fr.wall;
    if (j == 0) {
      ref = std::move(fr.result);
    } else if (fr.result.verdict_trace != ref.verdict_trace ||
               fr.result.audit.digest != ref.audit.digest) {
      r.deterministic = false;
    }
  }
  r.trips = ref.trips.size();
  r.syscalls = ref.total_syscalls;
  r.per_tenant_bytes =
      ref.tenants.empty() ? 0 : ref.total_shard_bytes / ref.tenants.size();
  // Modeled throughput: per-tenant modeled cycles, LPT-packed onto 8
  // workers, at a 1 GHz virtual clock. Deterministic and host-independent.
  std::vector<double> weights;
  weights.reserve(ref.tenants.size());
  for (const auto& tv : ref.tenants) {
    weights.push_back(static_cast<double>(tv.cycles > 0 ? tv.cycles : 1));
  }
  const double makespan_cycles = lpt_makespan(std::move(weights), 8);
  const double modeled_seconds = makespan_cycles / 1e9;
  r.modeled_vsps_j8 =
      modeled_seconds > 0 ? static_cast<double>(r.syscalls) / modeled_seconds : 0;
  return r;
}

void run_table() {
  std::printf("\n=== Table 7 companion: fleet-scale multi-tenant throughput ===\n");
  std::vector<Row> rows;
  rows.push_back(run_row("fleet_1k", 1000));
  // Per-tenant keys: the same fleet, but every tenant rekeys the shared
  // templates to its own key (one install, N differential Rekeyer passes).
  rows.push_back(run_row("fleet_1k_keys", 1000, /*per_tenant_keys=*/true));
  rows.push_back(run_row("fleet_10k", 10000));
  const char* full = std::getenv("ASC_FLEET_FULL");
  if (full != nullptr && full[0] != '\0' && full[0] != '0') {
    rows.push_back(run_row("fleet_100k", 100000));
  } else {
    std::printf("(fleet_100k skipped: set ASC_FLEET_FULL=1 for the full-size row)\n");
  }

  std::printf("%-10s %7s %4s %5s %9s %9s %9s %12s %10s\n", "Fleet", "tenants", "det",
              "trips", "wall_j1", "wall_j2", "wall_j8", "model_vsps_8", "bytes/ten");
  FILE* json = std::fopen("BENCH_table7.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"table\": \"table7\",\n"
                 "  \"unit\": \"verified_syscalls_per_modeled_second + bytes\",\n"
                 "  \"host_cpus\": %u,\n  \"rows\": [\n",
                 std::thread::hardware_concurrency());
  }
  bool first = true;
  for (const Row& r : rows) {
    std::printf("%-10s %7d %4s %5zu %8.3fs %8.3fs %8.3fs %12.0f %10zu\n",
                r.name.c_str(), r.tenants, r.deterministic ? "yes" : "NO", r.trips,
                r.wall[0], r.wall[1], r.wall[2], r.modeled_vsps_j8, r.per_tenant_bytes);
    if (json != nullptr) {
      std::fprintf(json,
                   "%s    {\"name\": \"%s\", \"tenants\": %d, \"deterministic\": %s, "
                   "\"trips\": %zu, \"syscalls\": %llu, "
                   "\"wall_j1\": %.4f, \"wall_j2\": %.4f, \"wall_j8\": %.4f, "
                   "\"modeled_vsps_j8\": %.1f, \"per_tenant_bytes\": %zu}",
                   first ? "" : ",\n", r.name.c_str(), r.tenants,
                   r.deterministic ? "true" : "false", r.trips,
                   static_cast<unsigned long long>(r.syscalls), r.wall[0], r.wall[1],
                   r.wall[2], r.modeled_vsps_j8, r.per_tenant_bytes);
      first = false;
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }
  std::printf("(wall columns are host-dependent and informational; determinism,\n"
              " modeled throughput, and per-tenant bytes are gated -- "
              "BENCH_table7.json)\n");
}

void BM_Fleet(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  const int jobs = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const FleetRun fr = run_fleet(tenants, jobs, false);
    benchmark::DoNotOptimize(fr.result.total_syscalls);
  }
  state.SetLabel("tenants=" + std::to_string(tenants) + " jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_Fleet)
    ->Args({1000, 1})
    ->Args({1000, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
