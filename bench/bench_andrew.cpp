// The §4.3 multiprogram benchmark (Andrew-benchmark style).
//
// A series of routine tasks -- directory creation, file creation, copying,
// archiving, compression, permission changes, moves, deletions, sorting --
// executed by spawning the general-purpose tools (mkdir, cp, cat, tar,
// gzip, chmod, mv, rm, sort) on a shared filesystem. The paper reports
// ~12,000 syscalls per iteration and a 0.96% overhead for authenticated
// tool binaries (259.66s -> 262.14s). Spawn-heavy by design: every tool
// invocation nests a child run inside the parent's trap, exercising the
// stacked TrapContexts of the pipeline (see vm/machine.cpp).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/asc.h"
#include "util/stats.h"

namespace {

using namespace asc;

const char* kTools[] = {"mkdir", "cp", "cat", "tar", "gzip", "chmod", "mv", "rm", "sort"};

void seed_files(os::SimFs& fs) {
  auto put = [&](const std::string& path, const std::string& content) {
    auto ino = fs.open("/", path, os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc, 0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(content.begin(), content.end()), false);
  };
  std::string doc;
  for (int i = 0; i < 1600; ++i) {
    doc += "line " + std::to_string((i * 37) % 100) + " of the corpus, padded with prose to a realistic width\n";
  }
  put("/src.txt", doc);  // ~100KB working document
  std::string names;
  for (int i = 0; i < 120; ++i) names += "name" + std::to_string((i * 61) % 997) + "\n";
  put("/names.txt", names);
}

/// One iteration of the task series. Tools are spawned through a driver
/// process so the whole series runs inside the simulation.
std::uint64_t run_iteration(vm::Machine& m, int round) {
  const std::string dir = "/job" + std::to_string(round);
  std::uint64_t cycles = 0;
  std::uint64_t syscalls = 0;
  auto step = [&](const std::string& tool, const std::vector<std::string>& argv,
                  const std::string& stdin_data = "") {
    auto r = m.run_path("/bin/" + tool, argv, stdin_data);
    if (!r.completed) {
      std::fprintf(stderr, "andrew step %s failed: %s\n", tool.c_str(),
                   r.violation_detail.c_str());
    }
    cycles += r.cycles;
    syscalls += r.syscalls;
  };
  step("mkdir", {dir, dir + "/sub"});
  for (int i = 0; i < 6; ++i) {
    step("cp", {"/src.txt", dir + "/f" + std::to_string(i) + ".txt"});
  }
  step("cat", {dir + "/f0.txt", dir + "/f1.txt"});
  step("tar", {"c", dir + "/arch.tar", dir});
  step("gzip", {dir + "/arch.tar"});
  step("chmod", {"384", dir + "/f2.txt"});
  step("mv", {dir + "/f3.txt", dir + "/renamed.txt"});
  step("sort", {"/names.txt"});
  step("gzip", {"-d", dir + "/arch.tarz"});
  step("rm", {dir + "/f4.txt", dir + "/f5.txt", dir + "/arch.tar"});
  (void)syscalls;
  return cycles;
}


struct Result {
  double cycles = 0;
  std::uint64_t syscalls = 0;
};

Result run_suite(bool authenticated, int iterations) {
  System sys(os::Personality::LinuxSim, test_key(),
             authenticated ? os::Enforcement::Asc : os::Enforcement::Off);
  seed_files(sys.kernel().fs());
  for (const char* t : kTools) {
    binary::Image img = [&] {
      for (auto& [n, i] : apps::build_all(os::Personality::LinuxSim)) {
        if (n == t) return i;
      }
      throw Error("missing tool");
    }();
    if (authenticated) {
      sys.install_and_register("/bin/" + std::string(t), img);
    } else {
      sys.machine().register_program("/bin/" + std::string(t), img);
    }
  }
  Result res;
  sys.kernel().set_tracing(true);
  for (int i = 0; i < iterations; ++i) {
    res.cycles += static_cast<double>(run_iteration(sys.machine(), i));
  }
  res.syscalls = sys.kernel().trace().size();
  return res;
}

void run_table() {
  std::printf("\n=== §4.3 multiprogram (Andrew-style) benchmark ===\n");
  constexpr int kIters = 3;
  const Result orig = run_suite(false, kIters);
  const Result auth = run_suite(true, kIters);
  const double ovh = (auth.cycles - orig.cycles) / orig.cycles * 100.0;
  std::printf("iterations: %d, syscalls/iteration: ~%llu\n", kIters,
              static_cast<unsigned long long>(orig.syscalls / kIters));
  std::printf("original:      %12.2f Mcycles\n", orig.cycles / 1e6);
  std::printf("authenticated: %12.2f Mcycles\n", auth.cycles / 1e6);
  std::printf("overhead:      %.2f%%   (paper: 259.66s -> 262.14s = 0.96%%)\n", ovh);
}

void BM_Andrew(benchmark::State& state) {
  const bool auth = state.range(0) != 0;
  for (auto _ : state) {
    const Result r = run_suite(auth, 1);
    benchmark::DoNotOptimize(r.cycles);
    state.counters["Mcycles"] = r.cycles / 1e6;
    state.counters["syscalls"] = static_cast<double>(r.syscalls);
  }
  state.SetLabel(auth ? "authenticated" : "original");
}
BENCHMARK(BM_Andrew)->Arg(0)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
