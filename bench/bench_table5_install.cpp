// Table 5 companion: host-side installer & fault-campaign throughput under
// the work-stealing executor (util/executor.h), at jobs = 1, 2, 8.
//
// Three workloads:
//   install_fleet   -- analyze+rewrite every bundled app (explicit program
//                      ids, one shared pool), the paper's Fig. 2 installer
//                      run over a whole machine image;
//   rekey_fleet     -- re-sign every installed app under a new key via the
//                      differential installer::Rekeyer: O(MAC surface)
//                      instead of O(re-analysis), output byte-identical to
//                      a fresh install under the new key. Its extra
//                      modeled_rekey_speedup column (reinstall cycles /
//                      rekey cycles, priced per-byte from the runtime cost
//                      model -- see the rekey_fleet block) is gated >= 10x;
//   fault_campaign  -- the seeded mutation sweep of fault::Campaign (each
//                      mutated replay is an independent System).
//
// Two kinds of columns, deliberately separated:
//   wall_j*           measured wall seconds. Honest but host-dependent --
//                     a single-core CI runner shows no speedup. These are
//                     INFORMATIONAL; the regression gate ignores them.
//   modeled_speedup_* deterministic: sum(task weights) / LPT makespan over
//                     the per-task weights (install: input .text bytes;
//                     campaign: modeled cycles per mutated run). Captures
//                     the parallelism the task DAG exposes, independent of
//                     the host. GATED, along with `deterministic`: the
//                     jobs=2/8 outputs must be byte-identical to jobs=1.
//
// Machine-readable copy in BENCH_table5.json
// (scripts/check_bench_regression.py knows the schema).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/asc.h"
#include "fault/campaign.h"
#include "installer/rekeyer.h"
#include "os/costmodel.h"
#include "util/executor.h"

namespace {

using namespace asc;

const auto kPers = os::Personality::LinuxSim;
const int kJobs[] = {1, 2, 8};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// sum(weights) / LPT-makespan(weights, jobs): the speedup an ideal
/// work-stealing schedule of these tasks reaches on `jobs` workers.
double modeled_speedup(std::vector<double> weights, int jobs) {
  if (weights.empty() || jobs <= 1) return 1.0;
  std::sort(weights.begin(), weights.end(), std::greater<>());
  std::vector<double> bins(static_cast<std::size_t>(jobs), 0.0);
  for (const double w : weights) {
    *std::min_element(bins.begin(), bins.end()) += w;
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double makespan = *std::max_element(bins.begin(), bins.end());
  return makespan > 0 ? total / makespan : 1.0;
}

void prepare_fs(os::SimFs& fs) {
  const std::string body = "pear\napple\nmango\ncherry\nbanana\n";
  auto ino = fs.open("/", "/lines.txt",
                     os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc, 0644);
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(body.begin(), body.end()), false);
}

struct FleetRun {
  double wall = 0;
  std::vector<std::vector<std::uint8_t>> images;  // serialized, app order
};

/// Install every bundled app on a `jobs`-wide pool. Program ids are
/// explicit (index-derived) so the output cannot depend on install order.
FleetRun install_fleet(int jobs) {
  const auto apps = apps::build_all(kPers);
  util::Executor ex(jobs);
  FleetRun fr;
  fr.wall = now_seconds();
  installer::Installer inst(test_key(), kPers);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    installer::InstallOptions opt;
    opt.program_id = static_cast<std::uint16_t>(i + 1);
    opt.executor = &ex;
    fr.images.push_back(inst.install(apps[i].second, opt).image.serialize());
  }
  fr.wall = now_seconds() - fr.wall;
  return fr;
}

/// Install every app once, keeping images AND manifests (the rekey inputs).
std::vector<installer::InstallResult> install_all_keep_manifests() {
  const auto apps = apps::build_all(kPers);
  installer::Installer inst(test_key(), kPers);
  std::vector<installer::InstallResult> out;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    installer::InstallOptions opt;
    opt.program_id = static_cast<std::uint16_t>(i + 1);
    out.push_back(inst.install(apps[i].second, opt));
  }
  return out;
}

struct RekeyRun {
  double wall = 0;
  std::vector<std::vector<std::uint8_t>> images;  // serialized, app order
  std::size_t surface_bytes = 0;                  // MAC surface actually re-signed
};

/// Re-sign every installed app under a new key on a `jobs`-wide pool.
RekeyRun rekey_fleet(const std::vector<installer::InstallResult>& installed, int jobs) {
  util::Executor ex(jobs);
  const crypto::Key128 nk = derived_key(5);
  RekeyRun rr;
  rr.wall = now_seconds();
  for (const auto& inst : installed) {
    installer::RekeyResult r =
        installer::Rekeyer::rekey(inst.image, inst.manifest, test_key(), nk, &ex);
    rr.surface_bytes += r.stats.surface_bytes;
    rr.images.push_back(r.image.serialize());
  }
  rr.wall = now_seconds() - rr.wall;
  return rr;
}

struct CampaignRun {
  double wall = 0;
  fault::CampaignResult result;
};

CampaignRun run_campaign(int jobs) {
  util::Executor ex(jobs);
  fault::CampaignConfig cfg;
  cfg.seed = 1;
  cfg.runs_per_class = 4;
  cfg.executor = &ex;
  fault::GuestProgram cat;
  cat.name = "cat";
  cat.image = apps::build_tool_cat(kPers);
  cat.argv = {"/lines.txt"};
  cat.prepare_fs = prepare_fs;
  CampaignRun cr;
  cr.wall = now_seconds();
  cr.result = fault::Campaign(cfg).run(cat);
  cr.wall = now_seconds() - cr.wall;
  return cr;
}

struct Row {
  std::string name;
  std::size_t tasks = 0;
  bool deterministic = true;
  double wall[3] = {0, 0, 0};      // indexed like kJobs
  double modeled[3] = {1, 1, 1};
  /// Differential-rekey advantage over a full reinstall: modeled reinstall
  /// cycles / modeled rekey cycles (see the rekey_fleet block for pricing).
  /// 0 = not a rekey row (column omitted from the JSON).
  double rekey_speedup = 0;
};

void run_table() {
  std::printf("\n=== Table 5 companion: parallel install & campaign throughput ===\n");
  std::vector<Row> rows;

  {
    Row r;
    r.name = "install_fleet";
    FleetRun ref;
    for (int j = 0; j < 3; ++j) {
      FleetRun fr = install_fleet(kJobs[j]);
      r.wall[j] = fr.wall;
      if (j == 0) {
        ref = std::move(fr);
      } else if (fr.images != ref.images) {
        r.deterministic = false;
      }
    }
    r.tasks = ref.images.size();
    // Weights: the input .text bytes of each app -- the analysis pipeline's
    // cost scales with code size, and the weight must not depend on jobs.
    std::vector<double> weights;
    for (const auto& [name, img] : apps::build_all(kPers)) {
      const auto* text = img.find_section(binary::SectionKind::Text);
      weights.push_back(text != nullptr ? static_cast<double>(text->size()) : 1.0);
      (void)name;
    }
    for (int j = 0; j < 3; ++j) r.modeled[j] = modeled_speedup(weights, kJobs[j]);
    rows.push_back(std::move(r));
  }

  {
    Row r;
    r.name = "rekey_fleet";
    const std::vector<installer::InstallResult> installed = install_all_keep_manifests();
    RekeyRun ref;
    for (int j = 0; j < 3; ++j) {
      RekeyRun rr = rekey_fleet(installed, kJobs[j]);
      r.wall[j] = rr.wall;
      if (j == 0) {
        ref = std::move(rr);
      } else if (rr.images != ref.images) {
        r.deterministic = false;
      }
    }
    // The differential oracle, checked in the bench too: the rekeyed fleet
    // must be byte-identical to a fresh install of every app under the new
    // key (same explicit program ids).
    {
      installer::Installer fresh(derived_key(5), kPers);
      const auto apps = apps::build_all(kPers);
      for (std::size_t i = 0; i < apps.size(); ++i) {
        installer::InstallOptions opt;
        opt.program_id = static_cast<std::uint16_t>(i + 1);
        if (fresh.install(apps[i].second, opt).image.serialize() != ref.images[i]) {
          r.deterministic = false;
        }
      }
    }
    r.tasks = ref.images.size();
    // Weights: each app's MAC-surface bytes -- what the Rekeyer touches.
    std::vector<double> weights;
    double input_bytes = 0;
    for (const auto& inst : installed) {
      weights.push_back(static_cast<double>(inst.manifest.mac_surface_bytes()));
      const auto* text = inst.image.find_section(binary::SectionKind::Text);
      input_bytes += text != nullptr ? static_cast<double>(text->size()) : 1.0;
    }
    for (int j = 0; j < 3; ++j) r.modeled[j] = modeled_speedup(weights, kJobs[j]);
    // Modeled differential advantage, priced in cycles on both sides so the
    // column is deterministic and host-independent:
    //   reinstall = kAnalysisCyclesPerByte * text  +  cmac * surface (sign)
    //   rekey     = 2 * cmac * surface   (verify old key + sign new key)
    // The CMAC rate is the runtime cost model's own price for the same
    // primitive (CostModel::mac_per_block over a 16-byte block -- the
    // paper's software CMAC). kAnalysisCyclesPerByte prices the installer's
    // decode + CFG + supergraph + policy-derivation + layout passes per
    // .text byte: back-solving this bench's measured walls (install_fleet
    // j1 runs ~50x rekey_fleet j1 on an AES-NI dev host, where real CMAC
    // is ~2.6x faster than the modeled software rate) gives ~1300
    // cycles/byte; rounded DOWN to 1024 so the modeled ratio understates
    // the measured one.
    constexpr double kCmacCyclesPerByte =
        static_cast<double>(os::CostModel{}.mac_per_block) / 16.0;
    constexpr double kAnalysisCyclesPerByte = 1024.0;
    const double surface_bytes = static_cast<double>(ref.surface_bytes);
    const double rekey_cycles = 2.0 * kCmacCyclesPerByte * surface_bytes;
    const double reinstall_cycles =
        kAnalysisCyclesPerByte * input_bytes + kCmacCyclesPerByte * surface_bytes;
    r.rekey_speedup = rekey_cycles > 0 ? reinstall_cycles / rekey_cycles : 0;
    rows.push_back(std::move(r));
  }

  {
    Row r;
    r.name = "fault_campaign";
    CampaignRun ref;
    for (int j = 0; j < 3; ++j) {
      CampaignRun cr = run_campaign(kJobs[j]);
      r.wall[j] = cr.wall;
      if (j == 0) {
        ref = std::move(cr);
      } else if (cr.result.summary() != ref.result.summary() ||
                 cr.result.verdicts.size() != ref.result.verdicts.size()) {
        r.deterministic = false;
      }
    }
    r.tasks = ref.result.verdicts.size();
    // Weights: modeled cycles of each mutated replay (deterministic).
    std::vector<double> weights;
    for (const auto& v : ref.result.verdicts) {
      weights.push_back(static_cast<double>(v.cycles > 0 ? v.cycles : 1));
    }
    for (int j = 0; j < 3; ++j) r.modeled[j] = modeled_speedup(weights, kJobs[j]);
    rows.push_back(std::move(r));
  }

  std::printf("%-16s %6s %6s %9s %9s %9s %9s %9s %9s\n", "Workload", "tasks", "det",
              "wall_j1", "wall_j2", "wall_j8", "model_j2", "model_j8", "rekey_x");
  FILE* json = std::fopen("BENCH_table5.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"table\": \"table5\",\n"
                 "  \"unit\": \"wall_seconds + modeled_speedup\",\n"
                 "  \"host_cpus\": %u,\n  \"rows\": [\n",
                 std::thread::hardware_concurrency());
  }
  bool first = true;
  for (const Row& r : rows) {
    if (r.rekey_speedup > 0) {
      std::printf("%-16s %6zu %6s %8.3fs %8.3fs %8.3fs %8.2fx %8.2fx %8.1fx\n",
                  r.name.c_str(), r.tasks, r.deterministic ? "yes" : "NO", r.wall[0],
                  r.wall[1], r.wall[2], r.modeled[1], r.modeled[2], r.rekey_speedup);
    } else {
      std::printf("%-16s %6zu %6s %8.3fs %8.3fs %8.3fs %8.2fx %8.2fx %9s\n",
                  r.name.c_str(), r.tasks, r.deterministic ? "yes" : "NO", r.wall[0],
                  r.wall[1], r.wall[2], r.modeled[1], r.modeled[2], "-");
    }
    if (json != nullptr) {
      std::fprintf(json,
                   "%s    {\"name\": \"%s\", \"tasks\": %zu, \"deterministic\": %s, "
                   "\"wall_j1\": %.4f, \"wall_j2\": %.4f, \"wall_j8\": %.4f, "
                   "\"modeled_speedup_j2\": %.3f, \"modeled_speedup_j8\": %.3f",
                   first ? "" : ",\n", r.name.c_str(), r.tasks,
                   r.deterministic ? "true" : "false", r.wall[0], r.wall[1], r.wall[2],
                   r.modeled[1], r.modeled[2]);
      if (r.rekey_speedup > 0) {
        std::fprintf(json, ", \"modeled_rekey_speedup\": %.3f", r.rekey_speedup);
      }
      std::fprintf(json, "}");
      first = false;
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }
  std::printf("(wall columns are host-dependent and informational; the determinism and\n"
              " modeled-speedup columns are gated -- BENCH_table5.json)\n");
}

void BM_InstallFleet(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const FleetRun fr = install_fleet(jobs);
    benchmark::DoNotOptimize(fr.images.size());
  }
  state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_InstallFleet)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RekeyFleet(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const std::vector<installer::InstallResult> installed = install_all_keep_manifests();
  for (auto _ : state) {
    const RekeyRun rr = rekey_fleet(installed, jobs);
    benchmark::DoNotOptimize(rr.images.size());
  }
  state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_RekeyFleet)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_FaultCampaign(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const CampaignRun cr = run_campaign(jobs);
    benchmark::DoNotOptimize(cr.result.verdicts.size());
  }
  state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_FaultCampaign)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
