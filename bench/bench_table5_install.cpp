// Table 5 companion: host-side installer & fault-campaign throughput under
// the work-stealing executor (util/executor.h), at jobs = 1, 2, 8.
//
// Two workloads:
//   install_fleet   -- analyze+rewrite every bundled app (explicit program
//                      ids, one shared pool), the paper's Fig. 2 installer
//                      run over a whole machine image;
//   fault_campaign  -- the seeded mutation sweep of fault::Campaign (each
//                      mutated replay is an independent System).
//
// Two kinds of columns, deliberately separated:
//   wall_j*           measured wall seconds. Honest but host-dependent --
//                     a single-core CI runner shows no speedup. These are
//                     INFORMATIONAL; the regression gate ignores them.
//   modeled_speedup_* deterministic: sum(task weights) / LPT makespan over
//                     the per-task weights (install: input .text bytes;
//                     campaign: modeled cycles per mutated run). Captures
//                     the parallelism the task DAG exposes, independent of
//                     the host. GATED, along with `deterministic`: the
//                     jobs=2/8 outputs must be byte-identical to jobs=1.
//
// Machine-readable copy in BENCH_table5.json
// (scripts/check_bench_regression.py knows the schema).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/asc.h"
#include "fault/campaign.h"
#include "util/executor.h"

namespace {

using namespace asc;

const auto kPers = os::Personality::LinuxSim;
const int kJobs[] = {1, 2, 8};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// sum(weights) / LPT-makespan(weights, jobs): the speedup an ideal
/// work-stealing schedule of these tasks reaches on `jobs` workers.
double modeled_speedup(std::vector<double> weights, int jobs) {
  if (weights.empty() || jobs <= 1) return 1.0;
  std::sort(weights.begin(), weights.end(), std::greater<>());
  std::vector<double> bins(static_cast<std::size_t>(jobs), 0.0);
  for (const double w : weights) {
    *std::min_element(bins.begin(), bins.end()) += w;
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double makespan = *std::max_element(bins.begin(), bins.end());
  return makespan > 0 ? total / makespan : 1.0;
}

void prepare_fs(os::SimFs& fs) {
  const std::string body = "pear\napple\nmango\ncherry\nbanana\n";
  auto ino = fs.open("/", "/lines.txt",
                     os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc, 0644);
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(body.begin(), body.end()), false);
}

struct FleetRun {
  double wall = 0;
  std::vector<std::vector<std::uint8_t>> images;  // serialized, app order
};

/// Install every bundled app on a `jobs`-wide pool. Program ids are
/// explicit (index-derived) so the output cannot depend on install order.
FleetRun install_fleet(int jobs) {
  const auto apps = apps::build_all(kPers);
  util::Executor ex(jobs);
  FleetRun fr;
  fr.wall = now_seconds();
  installer::Installer inst(test_key(), kPers);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    installer::InstallOptions opt;
    opt.program_id = static_cast<std::uint16_t>(i + 1);
    opt.executor = &ex;
    fr.images.push_back(inst.install(apps[i].second, opt).image.serialize());
  }
  fr.wall = now_seconds() - fr.wall;
  return fr;
}

struct CampaignRun {
  double wall = 0;
  fault::CampaignResult result;
};

CampaignRun run_campaign(int jobs) {
  util::Executor ex(jobs);
  fault::CampaignConfig cfg;
  cfg.seed = 1;
  cfg.runs_per_class = 4;
  cfg.executor = &ex;
  fault::GuestProgram cat;
  cat.name = "cat";
  cat.image = apps::build_tool_cat(kPers);
  cat.argv = {"/lines.txt"};
  cat.prepare_fs = prepare_fs;
  CampaignRun cr;
  cr.wall = now_seconds();
  cr.result = fault::Campaign(cfg).run(cat);
  cr.wall = now_seconds() - cr.wall;
  return cr;
}

struct Row {
  std::string name;
  std::size_t tasks = 0;
  bool deterministic = true;
  double wall[3] = {0, 0, 0};      // indexed like kJobs
  double modeled[3] = {1, 1, 1};
};

void run_table() {
  std::printf("\n=== Table 5 companion: parallel install & campaign throughput ===\n");
  std::vector<Row> rows;

  {
    Row r;
    r.name = "install_fleet";
    FleetRun ref;
    for (int j = 0; j < 3; ++j) {
      FleetRun fr = install_fleet(kJobs[j]);
      r.wall[j] = fr.wall;
      if (j == 0) {
        ref = std::move(fr);
      } else if (fr.images != ref.images) {
        r.deterministic = false;
      }
    }
    r.tasks = ref.images.size();
    // Weights: the input .text bytes of each app -- the analysis pipeline's
    // cost scales with code size, and the weight must not depend on jobs.
    std::vector<double> weights;
    for (const auto& [name, img] : apps::build_all(kPers)) {
      const auto* text = img.find_section(binary::SectionKind::Text);
      weights.push_back(text != nullptr ? static_cast<double>(text->size()) : 1.0);
      (void)name;
    }
    for (int j = 0; j < 3; ++j) r.modeled[j] = modeled_speedup(weights, kJobs[j]);
    rows.push_back(std::move(r));
  }

  {
    Row r;
    r.name = "fault_campaign";
    CampaignRun ref;
    for (int j = 0; j < 3; ++j) {
      CampaignRun cr = run_campaign(kJobs[j]);
      r.wall[j] = cr.wall;
      if (j == 0) {
        ref = std::move(cr);
      } else if (cr.result.summary() != ref.result.summary() ||
                 cr.result.verdicts.size() != ref.result.verdicts.size()) {
        r.deterministic = false;
      }
    }
    r.tasks = ref.result.verdicts.size();
    // Weights: modeled cycles of each mutated replay (deterministic).
    std::vector<double> weights;
    for (const auto& v : ref.result.verdicts) {
      weights.push_back(static_cast<double>(v.cycles > 0 ? v.cycles : 1));
    }
    for (int j = 0; j < 3; ++j) r.modeled[j] = modeled_speedup(weights, kJobs[j]);
    rows.push_back(std::move(r));
  }

  std::printf("%-16s %6s %6s %9s %9s %9s %9s %9s\n", "Workload", "tasks", "det",
              "wall_j1", "wall_j2", "wall_j8", "model_j2", "model_j8");
  FILE* json = std::fopen("BENCH_table5.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"table\": \"table5\",\n"
                 "  \"unit\": \"wall_seconds + modeled_speedup\",\n"
                 "  \"host_cpus\": %u,\n  \"rows\": [\n",
                 std::thread::hardware_concurrency());
  }
  bool first = true;
  for (const Row& r : rows) {
    std::printf("%-16s %6zu %6s %8.3fs %8.3fs %8.3fs %8.2fx %8.2fx\n", r.name.c_str(),
                r.tasks, r.deterministic ? "yes" : "NO", r.wall[0], r.wall[1], r.wall[2],
                r.modeled[1], r.modeled[2]);
    if (json != nullptr) {
      std::fprintf(json,
                   "%s    {\"name\": \"%s\", \"tasks\": %zu, \"deterministic\": %s, "
                   "\"wall_j1\": %.4f, \"wall_j2\": %.4f, \"wall_j8\": %.4f, "
                   "\"modeled_speedup_j2\": %.3f, \"modeled_speedup_j8\": %.3f}",
                   first ? "" : ",\n", r.name.c_str(), r.tasks,
                   r.deterministic ? "true" : "false", r.wall[0], r.wall[1], r.wall[2],
                   r.modeled[1], r.modeled[2]);
      first = false;
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }
  std::printf("(wall columns are host-dependent and informational; the determinism and\n"
              " modeled-speedup columns are gated -- BENCH_table5.json)\n");
}

void BM_InstallFleet(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const FleetRun fr = install_fleet(jobs);
    benchmark::DoNotOptimize(fr.images.size());
  }
  state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_InstallFleet)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_FaultCampaign(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const CampaignRun cr = run_campaign(jobs);
    benchmark::DoNotOptimize(cr.result.verdicts.size());
  }
  state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_FaultCampaign)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
