// Table 3: argument coverage of the basic approach.
//
// For bison/calc/screen/tar: number of call sites, distinct calls, total
// arguments, output-only arguments (o/p), arguments protectable by the
// basic static analysis (auth), multi-value arguments (mv), and fd
// arguments traceable to fd-returning calls (fds). Pure installer-side
// analysis: measures policy CONTENT, independent of which SyscallMonitor
// later enforces it.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/argclass.h"
#include "core/asc.h"
#include "installer/policygen.h"

namespace {

using namespace asc;

struct Row {
  const char* program;
  // Paper values for side-by-side comparison.
  int p_sites, p_calls, p_args, p_op, p_auth, p_mv, p_fds;
};

constexpr Row kRows[] = {
    {"bison", 158, 31, 321, 31, 90, 2, 69},
    {"calc", 275, 54, 544, 78, 183, 2, 109},
    {"screen", 639, 67, 1164, 133, 363, 7, 297},
    {"tar", 381, 58, 750, 105, 238, 3, 152},
};

binary::Image build(const std::string& name, os::Personality p) {
  if (name == "bison") return apps::build_bison(p);
  if (name == "calc") return apps::build_calc(p);
  if (name == "screen") return apps::build_screen(p);
  return apps::build_tar(p);
}

void run_table() {
  std::printf("\n=== Table 3: Argument coverage (measured | paper) ===\n");
  std::printf("%-8s %6s %6s %6s %5s %6s %4s %5s | %6s %6s %6s %5s %6s %4s %5s\n", "prog",
              "sites", "calls", "args", "o/p", "auth", "mv", "fds", "sites", "calls", "args",
              "o/p", "auth", "mv", "fds");
  double measured_ratio_sum = 0;
  for (const Row& row : kRows) {
    auto gp = installer::generate_policies(build(row.program, os::Personality::LinuxSim),
                                           os::Personality::LinuxSim);
    const auto c = analysis::compute_arg_coverage(gp.scan);
    std::printf("%-8s %6zu %6zu %6zu %5zu %6zu %4zu %5zu | %6d %6d %6d %5d %6d %4d %5d\n",
                row.program, c.sites, c.calls, c.args, c.output_only, c.auth, c.multi_value,
                c.fds, row.p_sites, row.p_calls, row.p_args, row.p_op, row.p_auth, row.p_mv,
                row.p_fds);
    if (c.args > 0) measured_ratio_sum += static_cast<double>(c.auth) / static_cast<double>(c.args);
  }
  std::printf("\nmean auth/args ratio (paper reports 30-40%% protectable): %.1f%%\n",
              measured_ratio_sum / 4 * 100.0);
}

void BM_ArgCoverage(benchmark::State& state) {
  const Row& row = kRows[static_cast<std::size_t>(state.range(0))];
  auto img = build(row.program, os::Personality::LinuxSim);
  for (auto _ : state) {
    auto gp = installer::generate_policies(img, os::Personality::LinuxSim);
    benchmark::DoNotOptimize(analysis::compute_arg_coverage(gp.scan).auth);
  }
  state.SetLabel(row.program);
}
BENCHMARK(BM_ArgCoverage)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
