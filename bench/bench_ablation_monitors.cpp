// Ablation: monitoring architectures compared on identical policy content.
//
// The paper argues ASC beats user-space policy daemons (Systrace/Ostia
// style) on cost and avoids the complexity of fully in-kernel monitors
// (§2.3). This bench runs the same syscall-dense workload (pyramid) under:
//   off          -- no monitoring
//   asc          -- authenticated system calls (full checking)
//   daemon       -- user-space daemon: 2 context switches + lookup per call
//   kernel-table -- in-kernel per-program table lookup per call
//   asc+ktable   -- ChainMonitor stacking ASC checking and the in-kernel
//                   allowlist, showing what composing monitors costs
//
// Each row is one SyscallMonitor implementation installed behind the same
// kernel (os/sysmonitor.h); labels come from SyscallMonitor::name() so the
// table reflects what is actually installed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/asc.h"
#include "monitor/ktable.h"

namespace {

using namespace asc;

struct Config {
  const char* name;
  os::Enforcement mode;
  bool chain_ktable;  // additionally chain the in-kernel allowlist after it
};

constexpr Config kConfigs[] = {
    {"off", os::Enforcement::Off, false},
    {"asc", os::Enforcement::Asc, false},
    {"daemon", os::Enforcement::Daemon, false},
    {"kernel-table", os::Enforcement::KernelTable, false},
    {"asc+ktable", os::Enforcement::Asc, true},
};

double run_once(const Config& cfg, std::uint64_t* syscalls, std::string* label) {
  System sys(os::Personality::LinuxSim, test_key(), cfg.mode);
  binary::Image img = apps::build_pyramid(os::Personality::LinuxSim);
  binary::Image run_img = img;
  // All monitored modes enforce policies derived from the same static
  // analysis, so the comparison isolates the enforcement MECHANISM.
  auto inst = sys.install(img);
  if (cfg.mode == os::Enforcement::Asc) {
    run_img = inst.image;
  }
  if (cfg.mode != os::Enforcement::Off && (cfg.mode != os::Enforcement::Asc || cfg.chain_ktable)) {
    sys.kernel().set_monitor_policy("pyramid", monitor::table_from_asc_policies(inst.policies));
  }
  if (cfg.chain_ktable) {
    auto chain = std::make_unique<os::ChainMonitor>();
    chain->add(os::make_monitor(cfg.mode, sys.kernel()));
    chain->add(os::make_monitor(os::Enforcement::KernelTable, sys.kernel()));
    sys.kernel().install_monitor(std::move(chain));
  }
  if (label != nullptr) *label = sys.kernel().monitor().name();
  auto r = sys.machine().run(run_img, {"500"});
  if (!r.completed) {
    std::fprintf(stderr, "%s run failed: %s\n", cfg.name, r.violation_detail.c_str());
    return 0;
  }
  if (syscalls != nullptr) *syscalls = r.syscalls;
  return static_cast<double>(r.cycles);
}

void run_table() {
  std::printf("\n=== Ablation: enforcement mechanism cost (pyramid, syscall-dense) ===\n");
  std::printf("%-22s %14s %12s %16s\n", "monitor", "Mcycles", "overhead", "extra cyc/call");
  std::uint64_t syscalls = 0;
  const double base = run_once(kConfigs[0], &syscalls, nullptr);
  for (const Config& cfg : kConfigs) {
    std::string label;
    const double c = run_once(cfg, nullptr, &label);
    std::printf("%-22s %14.2f %11.2f%% %16.0f\n", label.c_str(), c / 1e6,
                (c - base) / base * 100.0, (c - base) / static_cast<double>(syscalls));
  }
  std::printf("(per-call: asc ~ one trap-time verification; daemon ~ two context\n"
              " switches + lookup; chain = sum of its links; paper's argument:\n"
              " daemon >> asc > table >> off)\n");
}

void BM_Monitors(benchmark::State& state) {
  const Config& cfg = kConfigs[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(cfg, nullptr, nullptr));
  }
  state.SetLabel(cfg.name);
}
BENCHMARK(BM_Monitors)->DenseRange(0, 4)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
