// Ablation: the §5.1 proof-hint design.
//
// Compares the work of full pattern MATCHING (what the untrusted
// application does, exponential in the worst case for a backtracking
// matcher) with hint VERIFICATION (what the kernel does, one linear scan).
// This is the quantitative argument for moving the matching out of the
// kernel -- the verification side runs inside AscMonitor's checker at
// enforcement time, so its cost is part of the per-trap monitor budget.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <chrono>
#include <optional>
#include <vector>

#include "policy/pattern.h"

namespace {

using namespace asc;

std::string pathological_pattern(int stars) {
  std::string p;
  for (int i = 0; i < stars; ++i) p += "a*";
  p += "b";
  return p;
}

void run_table() {
  std::printf("\n=== Ablation: pattern match vs hint verification ===\n");
  std::printf("%-28s %14s %14s\n", "pattern / argument", "match (ns)", "verify (ns)");
  struct Case {
    std::string name;
    std::string pattern;
    std::string arg;
  };
  std::vector<Case> cases = {
      {"/tmp/* (short)", "/tmp/*", "/tmp/f123"},
      {"{foo,bar}*baz", "/tmp/{foo,bar}*baz", "/tmp/foofoobaz"},
      {"a*a*...b (12 stars, match)", pathological_pattern(12), std::string(24, 'a') + "b"},
      {"a*a*...b (12 stars, MISS)", pathological_pattern(12), std::string(24, 'a')},
  };
  for (const auto& c : cases) {
    const int reps = 200;
    auto t0 = std::chrono::steady_clock::now();
    std::optional<std::vector<std::uint32_t>> hint;
    for (int i = 0; i < reps; ++i) hint = policy::match_and_prove(c.pattern, c.arg);
    auto t1 = std::chrono::steady_clock::now();
    double verify_ns = 0;
    if (hint.has_value()) {
      auto v0 = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) {
        benchmark::DoNotOptimize(policy::verify_match(c.pattern, c.arg, *hint));
      }
      auto v1 = std::chrono::steady_clock::now();
      verify_ns = std::chrono::duration<double, std::nano>(v1 - v0).count() / reps;
    }
    const double match_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() / reps;
    std::printf("%-28s %14.0f %14.0f\n", c.name.c_str(), match_ns, verify_ns);
  }
  std::printf("(the kernel only ever pays the verify column; a mismatch with a\n"
              " pathological pattern would otherwise burn kernel time -- the §3.2\n"
              " denial-of-service concern)\n");
}

void BM_Match(benchmark::State& state) {
  const auto pattern = pathological_pattern(static_cast<int>(state.range(0)));
  const std::string arg = std::string(2 * state.range(0), 'a') + "b";
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::match_and_prove(pattern, arg));
  }
}
BENCHMARK(BM_Match)->DenseRange(2, 12, 5);

void BM_Verify(benchmark::State& state) {
  const auto pattern = pathological_pattern(static_cast<int>(state.range(0)));
  const std::string arg = std::string(2 * state.range(0), 'a') + "b";
  const auto hint = policy::match_and_prove(pattern, arg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::verify_match(pattern, arg, *hint));
  }
}
BENCHMARK(BM_Verify)->DenseRange(2, 12, 5);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
