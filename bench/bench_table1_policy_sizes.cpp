// Table 1: number of distinct system calls in policies.
//
// Columns: ASC policy generated on LinuxSim, ASC policy generated on BsdSim
// (static analysis, both), and the published-Systrace-style policy
// (training + fsread/fswrite generalization) -- for bison, calc and screen.
//
// The training column depends on the trace/audit split of the pipeline:
// train_policy clears the kernel trace between sample runs while the audit
// log (AuditLog::reset is separate) survives. See os/auditlog.h.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "core/asc.h"
#include "monitor/systrace.h"
#include "monitor/training.h"

namespace {

using namespace asc;

void prepare_fs(os::SimFs& fs) {
  auto put = [&](const std::string& path, const std::string& content) {
    auto ino = fs.open("/", path, os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc, 0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(content.begin(), content.end()), false);
  };
  std::string gram;
  for (int i = 0; i < 25; ++i) gram += "rule: tok\n";
  put("/gram.y", gram);
}

std::size_t asc_policy_size(os::Personality pers, const binary::Image& img) {
  installer::Installer inst(test_key(), pers);
  auto gp = inst.analyze(img);
  std::set<std::string> names;
  for (const auto& p : gp.policies) names.insert(os::signature(p.sys).name);
  return names.size();
}

/// Training runs model what a user would exercise while building a profile:
/// the main feature path only.
std::vector<monitor::TrainingRun> training_runs(const std::string& program) {
  if (program == "bison") return {{{"/gram.y"}, ""}, {{"/gram.y", "other.c"}, ""}};
  if (program == "calc") return {{{}, "add 1 2\nmul 3 4\nsub 9 1\n"}, {{}, "div 8 2\n"}};
  return {{{"main"}, ""}};  // screen: one ordinary session
}

struct Row {
  const char* program;
  int paper_linux;
  int paper_bsd;
  int paper_systrace;
};

constexpr Row kRows[] = {
    {"bison", 31, 31, 24},
    {"calc", 54, 51, 24},
    {"screen", 67, 63, 55},
};

binary::Image build(const std::string& name, os::Personality p) {
  if (name == "bison") return apps::build_bison(p);
  if (name == "calc") return apps::build_calc(p);
  return apps::build_screen(p);
}

void run_table() {
  std::printf("\n=== Table 1: Number of system calls in policies ===\n");
  std::printf("%-8s %11s %11s %14s | %8s %8s %10s\n", "Program", "ASC(Linux)", "ASC(Bsd)",
              "Systrace(pub)", "paperLin", "paperBsd", "paperSystr");
  for (const Row& row : kRows) {
    const std::size_t lin = asc_policy_size(os::Personality::LinuxSim,
                                            build(row.program, os::Personality::LinuxSim));
    const std::size_t bsd = asc_policy_size(os::Personality::BsdSim,
                                            build(row.program, os::Personality::BsdSim));
    // Published Systrace policy: trained on BsdSim (as in the paper), then
    // generalized with the fsread/fswrite aliases; the policy "size" counts
    // the names the policy file lists (aliases count as one each).
    System sys(os::Personality::BsdSim, test_key(), os::Enforcement::Off);
    prepare_fs(sys.kernel().fs());
    auto img = build(row.program, os::Personality::BsdSim);
    auto trained = monitor::train_policy(sys.machine(), img, training_runs(row.program));
    auto pub = monitor::make_published_policy(trained, os::Personality::BsdSim);
    std::printf("%-8s %11zu %11zu %14zu | %8d %8d %10d\n", row.program, lin, bsd,
                pub.named.size(), row.paper_linux, row.paper_bsd, row.paper_systrace);
  }
  std::printf("(shape checks: static analysis finds more calls than training;\n"
              " Linux and Bsd policy sets differ for the same program)\n");
}

void BM_PolicyGeneration(benchmark::State& state) {
  const Row& row = kRows[static_cast<std::size_t>(state.range(0))];
  auto img = build(row.program, os::Personality::LinuxSim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(asc_policy_size(os::Personality::LinuxSim, img));
  }
  state.SetLabel(row.program);
}
BENCHMARK(BM_PolicyGeneration)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
