// Integration: every guest program runs under ASC enforcement with behavior
// byte-identical to an unmonitored run -- the paper's conservative-analysis
// guarantee (no false alarms), end to end.
#include <gtest/gtest.h>

#include <map>

#include "workloads.h"

namespace asc {
namespace {

using testing::prepare_fs;
using testing::standard_workloads;
using testing::Workload;

std::map<std::string, binary::Image> images_for(os::Personality p) {
  std::map<std::string, binary::Image> out;
  for (auto& [name, img] : apps::build_all(p)) out[name] = std::move(img);
  return out;
}

class AppIntegration : public ::testing::TestWithParam<Workload> {};

TEST_P(AppIntegration, AuthenticatedRunMatchesOriginal) {
  const Workload& w = GetParam();
  const auto pers = os::Personality::LinuxSim;
  static const auto images = images_for(pers);  // build once for the suite
  const binary::Image& img = images.at(w.program);

  // Baseline run, monitoring off.
  System base(pers, test_key(), os::Enforcement::Off);
  prepare_fs(base.kernel().fs());
  auto r0 = base.machine().run(img, w.argv, w.stdin_data);
  ASSERT_TRUE(r0.completed) << w.program << ": " << r0.violation_detail;

  // Authenticated run under enforcement.
  System sys(pers);
  prepare_fs(sys.kernel().fs());
  auto inst = sys.install(img);
  EXPECT_TRUE(inst.warnings.empty()) << inst.warnings.front();
  auto r1 = sys.machine().run(inst.image, w.argv, w.stdin_data);
  EXPECT_TRUE(r1.completed) << w.program << ": " << os::violation_name(r1.violation) << " -- "
                            << r1.violation_detail;
  EXPECT_EQ(r1.violation, os::Violation::None);
  EXPECT_EQ(r1.exit_code, r0.exit_code) << w.program;
  EXPECT_EQ(r1.stdout_data, r0.stdout_data) << w.program;
  EXPECT_EQ(r1.syscalls, r0.syscalls) << w.program;
  // Authentication costs cycles; it must never be free (every program makes
  // at least the exit syscall).
  EXPECT_GT(r1.cycles, r0.cycles) << w.program;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, AppIntegration,
                         ::testing::ValuesIn(standard_workloads()),
                         [](const ::testing::TestParamInfo<Workload>& info) {
                           std::string n = info.param.program;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(AppIntegrationBsd, PolicyGenerationWorksAndReportsOpaqueClose) {
  // The paper ported only POLICY GENERATION to OpenBSD; runtime checking
  // stayed Linux-only. Mirror that: analyze on BsdSim and check that the
  // undisassemblable close stub is reported.
  const auto pers = os::Personality::BsdSim;
  installer::Installer inst(test_key(), pers);
  auto gp = inst.analyze(apps::build_bison(pers));
  bool close_reported = false;
  for (const auto& wmsg : gp.warnings) {
    if (wmsg.find("sys_close") != std::string::npos) close_reported = true;
  }
  EXPECT_TRUE(close_reported) << "expected a PLTO-style report for the opaque close stub";
  // close must be MISSING from the BSD policy (Table 2, `close` row) ...
  bool has_close = false;
  bool has_indirect = false;
  for (const auto& pol : gp.policies) {
    if (pol.sys == os::SysId::Close) has_close = true;
    if (pol.sys == os::SysId::SyscallIndirect) has_indirect = true;
  }
  EXPECT_FALSE(has_close);
  // ... and mmap only reachable through __syscall with a constrained first
  // argument (Table 2, `__syscall` row).
  if (has_indirect) {
    for (const auto& pol : gp.policies) {
      if (pol.sys != os::SysId::SyscallIndirect) continue;
      ASSERT_GE(pol.arity, 1);
      EXPECT_EQ(pol.args[0].kind, policy::ArgPolicy::Kind::Const);
      EXPECT_EQ(pol.args[0].value, 71u);  // the mmap convention number
    }
  }
}

TEST(AppIntegrationBsd, AppsRunUnmonitoredOnBsd) {
  const auto pers = os::Personality::BsdSim;
  System sys(pers, test_key(), os::Enforcement::Off);
  prepare_fs(sys.kernel().fs());
  auto r = sys.machine().run(apps::build_bison(pers), {"/gram.y"});
  EXPECT_TRUE(r.completed) << r.violation_detail;
  // The opaque close stub must still EXECUTE correctly (the computed jump
  // skips the junk bytes at runtime).
  System sys2(pers, test_key(), os::Enforcement::Off);
  prepare_fs(sys2.kernel().fs());
  auto r2 = sys2.machine().run(apps::build_tool_cat(pers), {"/lines.txt"});
  EXPECT_TRUE(r2.completed) << r2.violation_detail;
  EXPECT_NE(r2.stdout_data.find("apple"), std::string::npos);
}

TEST(AppIntegration, SpawnedChildrenAreCheckedToo) {
  const auto pers = os::Personality::LinuxSim;
  System sys(pers);
  prepare_fs(sys.kernel().fs());
  // Register an authenticated /bin/ls stand-in (cat) and run vuln_echo; its
  // spawn must execute the child under enforcement.
  sys.install_and_register("/bin/ls", apps::build_tool_cat(pers));
  auto inst = sys.install(apps::build_vuln_echo(pers));
  auto r = sys.machine().run(inst.image, {}, "/lines.txt\n");
  EXPECT_TRUE(r.completed) << r.violation_detail;
  EXPECT_NE(r.stdout_data.find("apple"), std::string::npos);  // child output
  bool spawned = false;
  for (const auto& e : sys.kernel().event_log()) {
    if (e.find("SPAWN /bin/ls") != std::string::npos) spawned = true;
  }
  EXPECT_TRUE(spawned);
}

}  // namespace
}  // namespace asc
