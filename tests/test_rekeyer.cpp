// The differential re-keying engine (installer/rekeyer.h): re-signing an
// installed image under a new key by recomputing ONLY the MAC surface named
// in its SignManifest must be indistinguishable from a fresh install under
// that key -- byte for byte -- and the kernel's live-rekey protocol
// (Kernel::rekey) must move a running guest between keys without a single
// trap ever verifying under mixed old/new material.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/libtoy.h"
#include "fault/campaign.h"
#include "installer/rekeyer.h"
#include "util/executor.h"
#include "workloads.h"

namespace asc {
namespace {

using fault::Campaign;
using fault::CampaignConfig;
using fault::CampaignResult;
using fault::GuestProgram;
using fault::MutationClass;

const auto kPers = os::Personality::LinuxSim;

installer::InstallResult install_under(const binary::Image& img, const crypto::Key128& key,
                                       util::Executor* ex = nullptr) {
  installer::Installer inst(key, kPers);
  installer::InstallOptions opt;
  opt.program_id = 7;  // fixed id: the allocator counter must not differ
  opt.executor = ex;
  return inst.install(img, opt);
}

std::vector<std::pair<std::string, binary::Image>> oracle_images() {
  return {
      {"cat", apps::build_tool_cat(kPers)},
      {"sort", apps::build_tool_sort(kPers)},
      {"gzip", apps::build_gzip(kPers)},
      {"vuln_echo", apps::build_vuln_echo(kPers)},
  };
}

// ---- the differential oracle ----
// rekey(install(P, k1), k1 -> k2) == install(P, k2), byte for byte, while
// touching only O(MAC surface) bytes -- never the text, CFG, or policies.
TEST(Rekeyer, RekeyedImageMatchesFreshInstallByteForByte) {
  const crypto::Key128 k1 = test_key();
  const crypto::Key128 k2 = derived_key(42);
  for (const auto& [name, img] : oracle_images()) {
    const installer::InstallResult old_inst = install_under(img, k1);
    const installer::InstallResult new_inst = install_under(img, k2);
    const installer::RekeyResult rk =
        installer::Rekeyer::rekey(old_inst.image, old_inst.manifest, k1, k2);
    EXPECT_EQ(rk.image.serialize(), new_inst.image.serialize())
        << name << ": rekeyed image differs from a fresh install under the new key";
    // The surface actually recomputed is tiny relative to the image.
    EXPECT_EQ(rk.stats.macs_recomputed, old_inst.manifest.mac_count()) << name;
    EXPECT_GT(rk.stats.surface_bytes, 0u) << name;
    const auto& text = old_inst.image.find_section(binary::SectionKind::Text)->bytes;
    EXPECT_LT(rk.stats.surface_bytes, text.size())
        << name << ": MAC surface should be smaller than the text it covers";
  }
}

TEST(Rekeyer, ManifestRoundTripsThroughSerialization) {
  for (const auto& [name, img] : oracle_images()) {
    const installer::InstallResult inst = install_under(img, test_key());
    const std::vector<std::uint8_t> blob = inst.manifest.serialize();
    const installer::SignManifest back = installer::SignManifest::deserialize(blob);
    EXPECT_EQ(back, inst.manifest) << name;
    // And the deserialized copy drives a correct rekey.
    const crypto::Key128 k2 = derived_key(7);
    const installer::RekeyResult a =
        installer::Rekeyer::rekey(inst.image, inst.manifest, test_key(), k2);
    const installer::RekeyResult b =
        installer::Rekeyer::rekey(inst.image, back, test_key(), k2);
    EXPECT_EQ(a.image.serialize(), b.image.serialize()) << name;
  }
}

TEST(Rekeyer, TruncatedManifestIsRejected) {
  const installer::InstallResult inst =
      install_under(apps::build_tool_cat(kPers), test_key());
  std::vector<std::uint8_t> blob = inst.manifest.serialize();
  blob.resize(blob.size() / 2);
  EXPECT_THROW(installer::SignManifest::deserialize(blob), Error);
  blob.clear();
  EXPECT_THROW(installer::SignManifest::deserialize(blob), Error);
}

TEST(Rekeyer, DeterministicAcrossJobCounts) {
  const crypto::Key128 k2 = derived_key(99);
  for (const auto& [name, img] : oracle_images()) {
    const installer::InstallResult inst = install_under(img, test_key());
    util::Executor e1(1);
    const installer::RekeyResult ref =
        installer::Rekeyer::rekey(inst.image, inst.manifest, test_key(), k2, &e1);
    for (const int jobs : {2, 8}) {
      util::Executor ex(jobs);
      const installer::RekeyResult got =
          installer::Rekeyer::rekey(inst.image, inst.manifest, test_key(), k2, &ex);
      EXPECT_EQ(ref.image.serialize(), got.image.serialize())
          << name << " rekey differs at jobs=" << jobs;
      ASSERT_EQ(ref.view.patches.size(), got.view.patches.size()) << name;
      for (std::size_t i = 0; i < ref.view.patches.size(); ++i) {
        EXPECT_EQ(ref.view.patches[i].addr, got.view.patches[i].addr) << name;
        EXPECT_EQ(ref.view.patches[i].bytes, got.view.patches[i].bytes) << name;
      }
    }
  }
}

// Rekeying is verify-then-sign: an image whose MAC surface does not verify
// under the claimed old key must be refused, never silently re-signed (that
// would launder a tampered image into a validly signed one).
TEST(Rekeyer, RefusesAnImageTamperedUnderTheOldKey) {
  installer::InstallResult inst = install_under(apps::build_tool_cat(kPers), test_key());
  ASSERT_FALSE(inst.manifest.calls.empty());
  const std::uint32_t slot = inst.manifest.calls.front().mac_slot;
  binary::Section& asdata = inst.image.section(binary::SectionKind::AsData);
  asdata.bytes.at(slot - asdata.vaddr()) ^= 0x01;
  EXPECT_THROW(
      installer::Rekeyer::rekey(inst.image, inst.manifest, test_key(), derived_key(1)),
      Error);
  // Same refusal when the caller simply presents the wrong old key.
  asdata.bytes.at(slot - asdata.vaddr()) ^= 0x01;  // restore
  EXPECT_THROW(
      installer::Rekeyer::rekey(inst.image, inst.manifest, derived_key(2), derived_key(1)),
      Error);
}

TEST(Rekeyer, RekeyedImageRunsUnderTheNewKeyOnly) {
  const crypto::Key128 k2 = derived_key(5);
  const installer::InstallResult inst =
      install_under(apps::build_tool_cat(kPers), test_key());
  const installer::RekeyResult rk =
      installer::Rekeyer::rekey(inst.image, inst.manifest, test_key(), k2);

  System sys_new(kPers, k2);
  testing::prepare_fs(sys_new.kernel().fs());
  const vm::RunResult ok = sys_new.machine().run(rk.image, {"/lines.txt", "/in.c"});
  EXPECT_TRUE(ok.completed);
  EXPECT_EQ(ok.violation, os::Violation::None) << ok.violation_detail;

  // The old-key kernel must fail-stop on the rekeyed image (and vice versa
  // is already covered by the paper's key-mismatch tests).
  System sys_old(kPers);
  testing::prepare_fs(sys_old.kernel().fs());
  const vm::RunResult bad = sys_old.machine().run(rk.image, {"/lines.txt", "/in.c"});
  EXPECT_FALSE(bad.completed);
  EXPECT_NE(bad.violation, os::Violation::None);
}

// ---- the live-rekey protocol ----
// Kernel::rekey at a quiesced point moves a RUNNING guest to the new key:
// bytes swapped, tiers flushed, policy state re-MAC'd -- and the guest
// completes byte-identically to an undisturbed run.
TEST(Rekeyer, LiveRekeyMidRunIsTransparent) {
  const installer::InstallResult inst =
      install_under(apps::build_tool_cat(kPers), test_key());

  System ref(kPers);
  testing::prepare_fs(ref.kernel().fs());
  const vm::RunResult clean = ref.machine().run(inst.image, {"/lines.txt", "/in.c"});
  ASSERT_TRUE(clean.completed);

  const crypto::Key128 k2 = derived_key(11);
  const installer::RekeyResult rk =
      installer::Rekeyer::rekey(inst.image, inst.manifest, test_key(), k2);

  System sys(kPers);
  testing::prepare_fs(sys.kernel().fs());
  int calls = 0;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (++calls == 3) sys.kernel().rekey(p, k2, rk.view);
  };
  const vm::RunResult r = sys.machine().run(inst.image, {"/lines.txt", "/in.c"});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::None) << r.violation_detail;
  EXPECT_EQ(r.stdout_data, clean.stdout_data);
  EXPECT_EQ(r.exit_code, clean.exit_code);
  EXPECT_EQ(sys.kernel().rekey_counters().rekeys, 1u);
  EXPECT_EQ(sys.kernel().rekey_counters().macs_applied, rk.view.patches.size() + 1);
}

GuestProgram cat_guest() {
  GuestProgram g;
  g.name = "cat";
  g.image = apps::build_tool_cat(kPers);
  g.argv = {"/lines.txt", "/in.c"};
  g.prepare_fs = testing::prepare_fs;
  return g;
}

GuestProgram vuln_echo_guest() {
  GuestProgram g;
  g.name = "vuln_echo";
  g.image = apps::build_vuln_echo(kPers);
  g.stdin_data = "/lines.txt\n";
  g.helpers.emplace_back("/bin/ls", apps::build_tool_cat(kPers));
  g.prepare_fs = testing::prepare_fs;
  return g;
}

// ---- the rekey-toctou campaign ----
// 120 seeded strikes of Kernel::rekey at every TrapStage boundary, across a
// spawning and a non-spawning guest: a request landing mid-trap defers to
// the next trap boundary, so EVERY run must be benign -- no trap may ever
// verify under mixed old/new material, and a coherent rekey is invisible to
// the guest. Zero wrong verdicts, zero silent bypasses, zero host crashes.
TEST(Rekeyer, ToctouCampaignNeverEscapes) {
  CampaignConfig cfg;
  cfg.seed = 20260808;
  cfg.runs_per_class = 60;  // 2 guests x 60 = 120 executions
  cfg.classes = {MutationClass::RekeyToctou};
  cfg.cycle_limit = 200'000'000;
  const CampaignResult r = Campaign(cfg).run_all({cat_guest(), vuln_echo_guest()});

  EXPECT_EQ(static_cast<int>(r.verdicts.size()), 120);
  EXPECT_EQ(r.host_crash, 0) << r.summary();
  EXPECT_EQ(r.silent_bypass, 0) << r.summary();
  EXPECT_EQ(r.wrong_verdict, 0) << r.summary();
  EXPECT_EQ(r.detected, 0) << "a coherent rekey must never trip a verdict\n" << r.summary();
  EXPECT_GE(r.total_applied(), 100) << r.summary();
  EXPECT_TRUE(r.invariant_holds()) << r.summary();
}

}  // namespace
}  // namespace asc
