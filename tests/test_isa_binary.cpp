// TSA encode/decode and TXE image round-trips.
#include <gtest/gtest.h>

#include "binary/image.h"
#include "util/error.h"
#include "isa/decode.h"
#include "isa/disasm.h"
#include "isa/encode.h"
#include "util/rng.h"

namespace asc {
namespace {

using isa::Instr;
using isa::Op;

const Op kAllOps[] = {
    Op::Nop, Op::Halt, Op::Syscall, Op::Movi, Op::Mov, Op::Add, Op::Sub, Op::Mul, Op::Div,
    Op::Mod, Op::And, Op::Or, Op::Xor, Op::Shl, Op::Shr, Op::Addi, Op::Subi, Op::Muli,
    Op::Andi, Op::Ori, Op::Xori, Op::Shli, Op::Shri, Op::Not, Op::Neg, Op::Cmp, Op::Cmpi,
    Op::Load, Op::Store, Op::Loadb, Op::Storeb, Op::Push, Op::Pop, Op::Lea, Op::Call,
    Op::Callr, Op::Ret, Op::Jmp, Op::Jz, Op::Jnz, Op::Jlt, Op::Jle, Op::Jgt, Op::Jge,
    Op::Jmpr};

class IsaRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(IsaRoundTrip, EncodeDecode) {
  util::Rng rng(7 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 20; ++i) {
    Instr ins;
    ins.op = GetParam();
    switch (isa::format_of(ins.op)) {
      case isa::Fmt::None:
        break;
      case isa::Fmt::R:
        ins.rd = static_cast<isa::Reg>(rng.next_below(16));
        break;
      case isa::Fmt::RR:
        ins.rd = static_cast<isa::Reg>(rng.next_below(16));
        ins.rs = static_cast<isa::Reg>(rng.next_below(16));
        break;
      case isa::Fmt::RI:
        ins.rd = static_cast<isa::Reg>(rng.next_below(16));
        ins.imm = static_cast<std::uint32_t>(rng.next_u64());
        break;
      case isa::Fmt::Mem:
        ins.rd = static_cast<isa::Reg>(rng.next_below(16));
        ins.rs = static_cast<isa::Reg>(rng.next_below(16));
        ins.imm = static_cast<std::uint32_t>(rng.next_u64());
        break;
      case isa::Fmt::Addr:
        ins.imm = static_cast<std::uint32_t>(rng.next_u64());
        break;
    }
    const auto bytes = isa::encode_one(ins);
    EXPECT_EQ(bytes.size(), isa::size_of(ins.op));
    const auto dec = isa::decode(bytes, 0);
    EXPECT_EQ(dec.ins, ins) << isa::to_string(ins);
    EXPECT_EQ(dec.size, bytes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, IsaRoundTrip, ::testing::ValuesIn(kAllOps),
                         [](const ::testing::TestParamInfo<Op>& info) {
                           return isa::mnemonic(info.param);
                         });

TEST(IsaDecode, RejectsInvalidOpcode) {
  std::vector<std::uint8_t> bytes{0xff, 0x00};
  EXPECT_THROW(isa::decode(bytes, 0), DecodeError);
  EXPECT_FALSE(isa::try_decode(bytes, 0).has_value());
}

TEST(IsaDecode, RejectsTruncatedInstruction) {
  const auto full = isa::encode_one({Op::Movi, 3, 0, 0x11223344});
  std::vector<std::uint8_t> cut(full.begin(), full.end() - 1);
  EXPECT_THROW(isa::decode(cut, 0), DecodeError);
}

TEST(IsaDecode, RejectsBadRegister) {
  std::vector<std::uint8_t> bytes{static_cast<std::uint8_t>(Op::Push), 16};
  EXPECT_THROW(isa::decode(bytes, 0), DecodeError);
}

TEST(Image, SerializeDeserializeRoundTrip) {
  binary::Image img;
  img.name = "demo";
  img.entry = binary::section_base(binary::SectionKind::Text) + 4;
  img.relocatable = true;
  img.authenticated = false;
  img.program_id = 7;
  img.section(binary::SectionKind::Text).bytes = {1, 2, 3, 4, 5};
  img.section(binary::SectionKind::Rodata).bytes = {'h', 'i', 0};
  auto& bss = img.section(binary::SectionKind::Bss);
  bss.bss_size = 128;
  img.symbols.push_back({"main", img.entry, 5, binary::SymbolKind::Function});
  img.symbols.push_back({"msg", binary::section_base(binary::SectionKind::Rodata), 3,
                         binary::SymbolKind::Object});
  img.relocs.push_back({img.entry + 1});

  const auto file = img.serialize();
  const binary::Image back = binary::Image::deserialize(file);
  EXPECT_EQ(back.name, img.name);
  EXPECT_EQ(back.entry, img.entry);
  EXPECT_EQ(back.relocatable, img.relocatable);
  EXPECT_EQ(back.program_id, img.program_id);
  ASSERT_EQ(back.sections.size(), img.sections.size());
  EXPECT_EQ(back.find_section(binary::SectionKind::Text)->bytes, std::vector<std::uint8_t>({1, 2, 3, 4, 5}));
  EXPECT_EQ(back.find_section(binary::SectionKind::Bss)->bss_size, 128u);
  ASSERT_EQ(back.symbols.size(), 2u);
  EXPECT_EQ(back.symbols[0].name, "main");
  ASSERT_EQ(back.relocs.size(), 1u);
  EXPECT_EQ(back.relocs[0].slot, img.entry + 1);
}

TEST(Image, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> junk{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW(binary::Image::deserialize(junk), DecodeError);
}

TEST(Image, CstringAt) {
  binary::Image img;
  img.section(binary::SectionKind::Rodata).bytes = {'a', 'b', 0, 'c', 'd'};
  const auto base = binary::section_base(binary::SectionKind::Rodata);
  EXPECT_EQ(img.cstring_at(base).value_or("?"), "ab");
  EXPECT_EQ(img.cstring_at(base + 1).value_or("?"), "b");
  EXPECT_FALSE(img.cstring_at(base + 3).has_value());  // unterminated
  EXPECT_FALSE(img.cstring_at(0x1000).has_value());
}

TEST(Image, FunctionAtFindsInnermost) {
  binary::Image img;
  const auto base = binary::section_base(binary::SectionKind::Text);
  img.symbols.push_back({"f", base, 10, binary::SymbolKind::Function});
  img.symbols.push_back({"g", base + 10, 6, binary::SymbolKind::Function});
  EXPECT_EQ(img.function_at(base + 3)->name, "f");
  EXPECT_EQ(img.function_at(base + 12)->name, "g");
  EXPECT_EQ(img.function_at(base + 16), nullptr);
}

}  // namespace
}  // namespace asc
