// Assembler/linker and VM semantics tests: small hand-written programs with
// known outcomes.
#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "tasm/assembler.h"

namespace asc {
namespace {

using apps::R0;
using apps::R1;
using apps::R2;
using apps::R3;
using apps::R11;
using apps::R12;

/// Assemble a main() body and run it unmonitored; returns the RunResult.
vm::RunResult run_program(const std::function<void(tasm::Assembler&)>& body,
                          const std::vector<std::string>& argv = {},
                          const std::string& stdin_data = "") {
  tasm::Assembler a("t");
  body(a);
  apps::emit_libc(a, os::Personality::LinuxSim);
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  return sys.machine().run(a.link(), argv, stdin_data);
}

TEST(Tasm, ExitCodePropagates) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.movi(R0, 42);
    a.ret();
  });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.exit_code, 42);
}

TEST(Tasm, ArithmeticAndFlags) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.movi(R11, 10);
    a.movi(R12, 3);
    a.mov(R0, R11);
    a.mul(R0, R12);   // 30
    a.subi(R0, 5);    // 25
    a.movi(R12, 7);
    a.mod(R0, R12);   // 4
    a.cmpi(R0, 4);
    a.jz(".ok");
    a.movi(R0, 99);
    a.ret();
    a.label(".ok");
    a.ret();
  });
  EXPECT_EQ(r.exit_code, 4);
}

TEST(Tasm, SignedComparisons) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.movi(R11, 0);
    a.subi(R11, 5);  // -5
    a.cmpi(R11, 3);
    a.jlt(".ok");    // signed: -5 < 3
    a.movi(R0, 1);
    a.ret();
    a.label(".ok");
    a.movi(R0, 0);
    a.ret();
  });
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Tasm, StackDiscipline) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.movi(R11, 17);
    a.push(R11);
    a.movi(R11, 0);
    a.pop(R0);
    a.ret();
  });
  EXPECT_EQ(r.exit_code, 17);
}

TEST(Tasm, CallsAndHelpers) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.lea(R1, "msg");
    a.call("strlen");
    a.ret();  // exit code = strlen("hello")
    a.rodata_cstr("msg", "hello");
  });
  EXPECT_EQ(r.exit_code, 5);
}

TEST(Tasm, PrintGoesToStdout) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.lea(R1, "msg");
    a.call("print");
    a.movi(R1, 123);
    a.call("print_num");
    a.movi(R0, 0);
    a.ret();
    a.rodata_cstr("msg", "out:");
  });
  EXPECT_EQ(r.stdout_data, "out:123");
}

TEST(Tasm, DataSectionsAndPointers) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.lea(R11, "ptr");
    a.load(R11, R11, 0);   // follow the data-resident pointer
    a.load(R0, R11, 4);    // second word of the table
    a.ret();
    a.data_words("table", {111, 222, 333});
    a.data_ptr("ptr", "table");
  });
  EXPECT_EQ(r.exit_code, 222);
}

TEST(Tasm, BssIsZeroInitialized) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.lea(R11, "buf");
    a.load(R0, R11, 96);
    a.ret();
    a.bss("buf", 256);
  });
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Tasm, UndefinedSymbolThrows) {
  tasm::Assembler a("bad");
  a.func("main");
  a.lea(R1, "missing");
  a.ret();
  EXPECT_THROW(a.link(), Error);
}

TEST(Tasm, DuplicateFunctionThrows) {
  tasm::Assembler a("bad");
  a.func("main");
  a.ret();
  EXPECT_THROW(a.func("main"), Error);
}

TEST(Tasm, ArgvReachesMain) {
  auto r = run_program(
      [](tasm::Assembler& a) {
        a.func("main");
        // r1=argc, r2=argv; exit code = strlen(argv[1])
        a.cmpi(R1, 2);
        a.jge(".ok");
        a.movi(R0, 77);
        a.ret();
        a.label(".ok");
        a.load(R1, R2, 4);
        a.call("strlen");
        a.ret();
      },
      {"first", "longer-arg"});
  EXPECT_EQ(r.exit_code, 10);
}

TEST(Vm, DivisionByZeroFaults) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.movi(R11, 5);
    a.movi(R12, 0);
    a.div(R11, R12);
    a.movi(R0, 0);
    a.ret();
  });
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation_detail.find("division"), std::string::npos);
}

TEST(Vm, WildMemoryAccessFaults) {
  auto r = run_program([](tasm::Assembler& a) {
    a.func("main");
    a.movi(R11, 0x1000);  // far below the address space
    a.load(R0, R11, 0);
    a.ret();
  });
  EXPECT_FALSE(r.completed);
}

TEST(Vm, CycleLimitStopsRunawayGuest) {
  tasm::Assembler a("spin");
  a.func("main");
  a.label(".forever");
  a.jmp(".forever");
  apps::emit_libc(a, os::Personality::LinuxSim);
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  sys.machine().set_cycle_limit(10000);
  auto r = sys.machine().run(a.link());
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.cycle_limit_hit);
}

TEST(Vm, CyclesAreDeterministic) {
  auto make = [] {
    tasm::Assembler a("det");
    a.func("main");
    a.movi(R11, 100);
    a.label(".loop");
    a.subi(R11, 1);
    a.cmpi(R11, 0);
    a.jnz(".loop");
    a.movi(R0, 0);
    a.ret();
    apps::emit_libc(a, os::Personality::LinuxSim);
    return a.link();
  };
  System s1(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  System s2(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  auto r1 = s1.machine().run(make());
  auto r2 = s2.machine().run(make());
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.instructions, r2.instructions);
}

}  // namespace
}  // namespace asc
