// The chaos soak (`slow` label): >= 200 tenant lifecycles under seeded churn
// with stage-targeted fault injection across every mutation class, replayed
// at executor widths 1/2/8. Acceptance: zero invariant-oracle trips, every
// injected guest tamper fail-stops, and the verdict trace is byte-identical
// at every width. On failure, the failing reproducer lines are written to
// chaos_repro.txt in the test's working directory (uploaded as a CI
// artifact).
#include <gtest/gtest.h>

#include <fstream>

#include "fault/chaos.h"
#include "util/executor.h"

namespace asc {
namespace {

void dump_repro(const fault::ChaosResult& r, const std::string& tag) {
  std::ofstream out("chaos_repro.txt", std::ios::app);
  out << "== " << tag << " ==\n";
  for (const auto& t : r.trips) out << t << "\n";
}

TEST(ChaosSoak, TwoHundredLifecyclesIdenticalAtEveryWidth) {
  fault::ChaosConfig cfg;
  cfg.seed = 20260808;
  cfg.tenants = 200;

  std::vector<fault::ChaosResult> results;
  for (const int jobs : {1, 2, 8}) {
    util::Executor exec(jobs);
    fault::ChaosConfig c = cfg;
    c.executor = &exec;
    results.push_back(fault::ChaosEngine(c).run());
    const fault::ChaosResult& r = results.back();
    if (!r.ok()) dump_repro(r, "jobs=" + std::to_string(jobs));
    EXPECT_TRUE(r.ok()) << "jobs=" << jobs << "\n" << r.summary();
    ASSERT_EQ(r.lifecycles.size(), 200u);
  }

  // Byte-identical verdict traces: jobs=1 is the reference semantics.
  EXPECT_EQ(results[0].verdict_trace, results[1].verdict_trace)
      << "jobs=2 diverged from the serial reference";
  EXPECT_EQ(results[0].verdict_trace, results[2].verdict_trace)
      << "jobs=8 diverged from the serial reference";

  const fault::ChaosResult& r = results[0];
  // The storm must actually have exercised everything it claims to:
  EXPECT_GT(r.clean_plans, 0);
  EXPECT_GT(r.tamper_plans, 0);
  EXPECT_GT(r.internal_plans, 0);
  EXPECT_GT(r.detected, 0) << "no tamper was ever detected";
  // Every detected tamper fail-stopped (a non-killing detection trips the
  // lifecycle oracle, so zero trips already implies this; assert the
  // aggregate too).
  EXPECT_EQ(r.trips.size(), 0u);
  // The health machine went through its full arc somewhere in the storm.
  EXPECT_GT(r.health.internal_faults, 0u);
  EXPECT_GT(r.health.degradations, 0u);
  EXPECT_GT(r.health.quarantines, 0u);
  EXPECT_GT(r.health.repromotions, 0u);
  EXPECT_GT(r.health.recoveries, 0u);
}

TEST(ChaosSoak, StageRestrictedStormHoldsAtEveryBoundary) {
  // One smaller storm per non-Trap stage: faults landing BETWEEN pipeline
  // layers (enforce/dispatch/audit) must uphold the same oracles.
  for (const auto stage :
       {os::TrapStage::Enforce, os::TrapStage::Dispatch, os::TrapStage::Audit}) {
    fault::ChaosConfig cfg;
    cfg.seed = 7;
    cfg.tenants = 24;
    cfg.stages = {stage};
    const fault::ChaosResult r = fault::ChaosEngine(cfg).run();
    if (!r.ok()) dump_repro(r, "stage=" + os::trap_stage_name(stage));
    EXPECT_TRUE(r.ok()) << "stage=" << os::trap_stage_name(stage) << "\n" << r.summary();
  }
}

}  // namespace
}  // namespace asc
