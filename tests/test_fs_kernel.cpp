// Simulated filesystem and kernel syscall handler tests.
#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "os/fs.h"
#include "tasm/assembler.h"

namespace asc::os {
namespace {

std::string text_of(SimFs& fs, const std::string& path) {
  auto ino = fs.open("/", path, SimFs::kRdOnly, 0);
  if (ino < 0) return "<err>";
  std::vector<std::uint8_t> out;
  fs.read(static_cast<std::uint32_t>(ino), 0, 1 << 20, out);
  return std::string(out.begin(), out.end());
}

void put(SimFs& fs, const std::string& path, const std::string& content) {
  auto ino = fs.open("/", path, SimFs::kWrOnly | SimFs::kCreat | SimFs::kTrunc, 0644);
  ASSERT_GE(ino, 0) << path;
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(content.begin(), content.end()), false);
}

TEST(SimFsTest, CreateWriteReadBack) {
  SimFs fs;
  put(fs, "/a.txt", "contents");
  EXPECT_EQ(text_of(fs, "/a.txt"), "contents");
}

TEST(SimFsTest, OpenMissingWithoutCreatFails) {
  SimFs fs;
  EXPECT_EQ(fs.open("/", "/nope", SimFs::kRdOnly, 0), SimFs::kErrNoEnt);
}

TEST(SimFsTest, MkdirRmdirSemantics) {
  SimFs fs;
  EXPECT_EQ(fs.mkdir("/", "/d", 0755), 0);
  EXPECT_EQ(fs.mkdir("/", "/d", 0755), SimFs::kErrExist);
  put(fs, "/d/f", "x");
  EXPECT_EQ(fs.rmdir("/", "/d"), SimFs::kErrNotEmpty);
  EXPECT_EQ(fs.unlink("/", "/d/f"), 0);
  EXPECT_EQ(fs.rmdir("/", "/d"), 0);
  EXPECT_EQ(fs.rmdir("/", "/d"), SimFs::kErrNoEnt);
}

TEST(SimFsTest, RenameMovesAndReplaces) {
  SimFs fs;
  put(fs, "/x", "one");
  put(fs, "/y", "two");
  EXPECT_EQ(fs.rename("/", "/x", "/y"), 0);
  EXPECT_EQ(text_of(fs, "/y"), "one");
  EXPECT_EQ(fs.open("/", "/x", SimFs::kRdOnly, 0), SimFs::kErrNoEnt);
}

TEST(SimFsTest, RelativePathsAndCwd) {
  SimFs fs;
  ASSERT_EQ(fs.mkdir("/", "/home/u", 0755), 0);
  put(fs, "/home/u/f", "deep");
  EXPECT_EQ(text_of(fs, "/home/u/f"), "deep");
  auto ino = fs.open("/home/u", "f", SimFs::kRdOnly, 0);
  EXPECT_GE(ino, 0);
  EXPECT_TRUE(fs.is_dir("/home/u", ".."));
  EXPECT_TRUE(fs.is_dir("/home/u", "../../"));
}

TEST(SimFsTest, SymlinksAreFollowed) {
  SimFs fs;
  put(fs, "/real.txt", "real");
  EXPECT_EQ(fs.symlink("/", "/real.txt", "/link"), 0);
  EXPECT_EQ(text_of(fs, "/link"), "real");
  EXPECT_EQ(fs.readlink("/", "/link").value_or("?"), "/real.txt");
  // stat follows; readlink does not.
  EXPECT_EQ(fs.stat("/", "/link")->kind, NodeKind::File);
}

TEST(SimFsTest, SymlinkLoopsAreBounded) {
  SimFs fs;
  ASSERT_EQ(fs.symlink("/", "/b", "/a"), 0);
  ASSERT_EQ(fs.symlink("/", "/a", "/b"), 0);
  EXPECT_EQ(fs.open("/", "/a", SimFs::kRdOnly, 0), SimFs::kErrLoop);
}

TEST(SimFsTest, NormalizeResolvesDotsAndLinks) {
  SimFs fs;
  ASSERT_EQ(fs.mkdir("/", "/srv", 0755), 0);
  put(fs, "/srv/data", "x");
  ASSERT_EQ(fs.symlink("/", "/srv", "/s"), 0);
  EXPECT_EQ(fs.normalize("/", "/s/./data").value_or("?"), "/srv/data");
  EXPECT_EQ(fs.normalize("/srv", "../srv/data").value_or("?"), "/srv/data");
  // parent_only: final component may be missing.
  EXPECT_EQ(fs.normalize("/", "/s/newfile", true).value_or("?"), "/srv/newfile");
}

TEST(SimFsTest, TruncateAndStat) {
  SimFs fs;
  put(fs, "/t", "0123456789");
  auto st = fs.stat("/", "/t");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->size, 10u);
  auto ino = fs.open("/", "/t", SimFs::kRdWr, 0);
  EXPECT_EQ(fs.truncate(static_cast<std::uint32_t>(ino), 4), 0);
  EXPECT_EQ(text_of(fs, "/t"), "0123");
}

TEST(SimFsTest, ListDir) {
  SimFs fs;
  ASSERT_EQ(fs.mkdir("/", "/d", 0755), 0);
  put(fs, "/d/a", "1");
  put(fs, "/d/b", "2");
  auto names = fs.list_dir("/", "/d");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
}

// ---- kernel handler behavior through small guest programs ----

using apps::R0;
using apps::R1;
using apps::R2;
using apps::R3;
using apps::R11;

vm::RunResult run_guest(System& sys, const std::function<void(tasm::Assembler&)>& body,
                        const std::string& stdin_data = "") {
  tasm::Assembler a("kguest");
  body(a);
  apps::emit_libc(a, os::Personality::LinuxSim);
  return sys.machine().run(a.link(), {}, stdin_data);
}

TEST(KernelTest, LseekSeekEndAndDup) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  put(sys.kernel().fs(), "/f", "abcdef");
  auto r = run_guest(sys, [](tasm::Assembler& a) {
    a.func("main");
    a.lea(R1, "p");
    a.movi(R2, 0);
    a.movi(R3, 0);
    a.call("sys_open");
    a.push(R0);
    a.mov(R1, R0);
    a.movi(R2, 0);
    a.movi(R3, 2);  // SEEK_END
    a.call("sys_lseek");
    a.push(R0);     // size = 6
    a.pop(R11);
    a.pop(R1);
    a.push(R11);
    a.call("sys_dup");
    a.pop(R0);      // exit = size
    a.ret();
    a.rodata_cstr("p", "/f");
  });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.exit_code, 6);
}

TEST(KernelTest, BrkGrowsHeap) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  auto r = run_guest(sys, [](tasm::Assembler& a) {
    a.func("main");
    a.movi(R1, 4096);
    a.call("malloc");
    a.push(R0);
    a.movi(R1, 4096);
    a.call("malloc");
    a.pop(R11);
    a.sub(R0, R11);  // second - first == 4096
    a.ret();
  });
  EXPECT_EQ(r.exit_code, 4096);
}

TEST(KernelTest, StdinReadAndEof) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  auto r = run_guest(
      sys,
      [](tasm::Assembler& a) {
        a.func("main");
        a.movi(R1, 0);
        a.lea(R2, "buf");
        a.movi(R3, 100);
        a.call("sys_read");
        a.push(R0);
        a.movi(R1, 0);
        a.lea(R2, "buf");
        a.movi(R3, 100);
        a.call("sys_read");  // second read: EOF -> 0
        a.pop(R11);
        a.add(R0, R11);
        a.ret();
        a.bss("buf", 128);
      },
      "hello");
  EXPECT_EQ(r.exit_code, 5);
}

TEST(KernelTest, GetdirentriesListsNames) {
  System sys2(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  ASSERT_EQ(sys2.kernel().fs().mkdir("/", "/d", 0755), 0);
  put(sys2.kernel().fs(), "/d/x", "");
  put(sys2.kernel().fs(), "/d/y", "");
  auto r = run_guest(sys2, [](tasm::Assembler& a) {
    a.func("main");
    a.lea(R1, "p");
    a.movi(R2, 0);
    a.movi(R3, 0);
    a.call("sys_open");
    a.mov(R1, R0);
    a.lea(R2, "buf");
    a.movi(R3, 64);
    a.call("sys_getdirentries");
    a.push(R0);
    a.movi(R1, 1);
    a.lea(R2, "buf");
    a.pop(R3);
    a.call("sys_write");
    a.movi(R0, 0);
    a.ret();
    a.rodata_cstr("p", "/d");
    a.bss("buf", 128);
  });
  // Entries are NUL-separated: "x\0y\0".
  EXPECT_EQ(r.stdout_data, std::string("x\0y\0", 4));
}

TEST(KernelTest, UnknownSyscallNumberReturnsEnosysWhenUnmonitored) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  auto r = run_guest(sys, [](tasm::Assembler& a) {
    a.func("main");
    a.movi(R0, 9999);
    a.syscall_();
    a.ret();  // exit code = result of the bogus syscall
  });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.exit_code, -38);
}

TEST(KernelTest, SyscallIndirectReachesMmapOnBsd) {
  System sys(os::Personality::BsdSim, test_key(), os::Enforcement::Off);
  tasm::Assembler a("bsdmmap");
  a.func("main");
  a.movi(R1, 0);
  a.movi(R2, 8192);
  a.movi(R3, 3);
  a.movi(apps::R4, 0x22);
  a.call("sys_mmap");
  a.cmpi(R0, 0);
  a.jgt(".ok");
  a.movi(R0, 1);
  a.ret();
  a.label(".ok");
  a.movi(R0, 0);
  a.ret();
  apps::emit_libc(a, os::Personality::BsdSim);
  auto r = sys.machine().run(a.link());
  EXPECT_TRUE(r.completed) << r.violation_detail;
  EXPECT_EQ(r.exit_code, 0);
}

TEST(KernelTest, VirtualTimeAdvancesWithNanosleep) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  const auto before = sys.kernel().virtual_time_ns();
  auto r = run_guest(sys, [](tasm::Assembler& a) {
    a.func("main");
    a.lea(R1, "ts");
    a.movi(R2, 0);
    a.call("sys_nanosleep");
    a.movi(R0, 0);
    a.ret();
    a.data_words("ts", {2, 500});  // 2s + 500ns
  });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(sys.kernel().virtual_time_ns() - before, 2'000'000'500ull);
}

}  // namespace
}  // namespace asc::os
