// The tiered verification lattice (os/tiertable.h): the Inline tier must buy
// cycles without buying trust. Promotion is earned by N consecutive clean
// Shadowed-tier verifications; demotion is driven by exactly the events that
// already invalidate the cache and the shadow (guest write, key rotation,
// teardown, health demotion, monitor swap); any tamper at a promoted site
// still fail-stops through the full pipeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "isa/isa.h"
#include "os/tiertable.h"
#include "policy/policy.h"
#include "tasm/assembler.h"

namespace asc {
namespace {

using os::DemotionCause;
using os::HealthState;

const auto kPers = os::Personality::LinuxSim;
constexpr std::uint32_t kIters = 2000;

// The paper's Table 4 microbenchmark shape: a tight getpid loop, the
// workload the inline tier exists for.
binary::Image build_pidloop() {
  using namespace asc::apps;
  tasm::Assembler a("pidloop");
  a.func("main");
  a.subi(SP, 4);
  a.movi(R11, kIters);
  a.store(SP, 0, R11);
  a.label(".loop");
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".done");
  a.call("sys_getpid");
  a.load(R11, SP, 0);
  a.subi(R11, 1);
  a.store(SP, 0, R11);
  a.jmp(".loop");
  a.label(".done");
  a.addi(SP, 4);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, kPers);
  return a.link();
}

struct LoopRun {
  vm::RunResult result;
  os::TierStats stats;
};

LoopRun run_pidloop(bool inline_on, std::uint32_t threshold = 4,
                    std::function<void(System&)> prep = {},
                    std::function<void(System&, os::Process&, std::uint32_t)> hook = {}) {
  System sys(kPers, test_key(), os::Enforcement::Asc);
  sys.kernel().set_inline_tier(inline_on);
  sys.kernel().set_inline_promote_threshold(threshold);
  if (prep) prep(sys);
  if (hook) {
    sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t site) {
      hook(sys, p, site);
    };
  }
  const auto inst = sys.install(build_pidloop());
  LoopRun lr;
  lr.result = sys.machine().run(inst.image);
  lr.stats = sys.kernel().tier_stats();
  return lr;
}

// ---- unit surface ----

TEST(TierTableUnit, EligibilityIsSideEffectLight) {
  using os::SysId;
  EXPECT_TRUE(os::inline_eligible(SysId::Getpid));
  EXPECT_TRUE(os::inline_eligible(SysId::Getuid));
  EXPECT_TRUE(os::inline_eligible(SysId::Gettimeofday));
  EXPECT_TRUE(os::inline_eligible(SysId::Time));
  // Umask RETURNS cheaply but mutates kernel state; anything touching fds,
  // the fs, or the memory map stays on the full pipeline forever.
  EXPECT_FALSE(os::inline_eligible(SysId::Umask));
  EXPECT_FALSE(os::inline_eligible(SysId::Open));
  EXPECT_FALSE(os::inline_eligible(SysId::Write));
  EXPECT_FALSE(os::inline_eligible(SysId::Brk));
  EXPECT_FALSE(os::inline_eligible(SysId::Spawn));
}

TEST(TierTableUnit, NamesAndThresholdClamp) {
  EXPECT_EQ(os::tier_name(os::Tier::Inline), "inline");
  EXPECT_EQ(os::tier_name(os::Tier::Eager), "eager");
  EXPECT_EQ(os::demotion_cause_name(DemotionCause::GuestWrite), "guest-write");
  EXPECT_EQ(os::demotion_cause_name(DemotionCause::ProbeMismatch), "probe-mismatch");
  os::TierTable t;
  t.set_inline_threshold(0);
  EXPECT_EQ(t.inline_threshold(), 1u);  // 0 would promote on no evidence
}

// ---- end-to-end: the trap-less tier on a real guest ----

TEST(TierTableRun, GetpidLoopPromotesAndBehaviorIsIdentical) {
  const LoopRun off = run_pidloop(false);
  ASSERT_TRUE(off.result.completed) << off.result.violation_detail;
  EXPECT_EQ(off.stats.inline_hits, 0u);
  EXPECT_EQ(off.stats.promotions, 0u);

  const LoopRun on = run_pidloop(true);
  ASSERT_TRUE(on.result.completed) << on.result.violation_detail;
  EXPECT_EQ(on.stats.promotions, 1u) << "one getpid site, one promotion";
  EXPECT_GT(on.stats.inline_hits, kIters / 2u)
      << "after warm-up virtually every call must be served trap-less";

  // The inline tier may change cycle accounting, nothing else.
  EXPECT_EQ(on.result.exit_code, off.result.exit_code);
  EXPECT_EQ(on.result.stdout_data, off.result.stdout_data);
  EXPECT_EQ(on.result.syscalls, off.result.syscalls);
  EXPECT_LT(on.result.cycles, off.result.cycles)
      << "the probe must charge strictly less than the shadowed pipeline";
}

TEST(TierTableRun, InlineTierIsOffByDefault) {
  System sys(kPers, test_key(), os::Enforcement::Asc);
  EXPECT_FALSE(sys.kernel().inline_tier());
  const auto inst = sys.install(build_pidloop());
  const auto r = sys.machine().run(inst.image);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  EXPECT_EQ(sys.kernel().tier_stats().inline_hits, 0u);
  EXPECT_EQ(sys.kernel().tier_stats().promotions, 0u);
}

// The ISSUE's Table 4 target: getpid overhead at the inline tier within 5%
// of the unauthenticated baseline (from ~25.7% at the shadow tier).
TEST(TierTableRun, InlineOverheadWithinFivePercentOfBaseline) {
  System base_sys(kPers, test_key(), os::Enforcement::Off);
  const auto rb = base_sys.machine().run(build_pidloop());
  ASSERT_TRUE(rb.completed) << rb.violation_detail;

  const LoopRun on = run_pidloop(true);
  ASSERT_TRUE(on.result.completed) << on.result.violation_detail;

  const double base = static_cast<double>(rb.cycles);
  const double auth = static_cast<double>(on.result.cycles);
  const double overhead_pct = (auth - base) / base * 100.0;
  EXPECT_LE(overhead_pct, 5.0) << "inline getpid overhead " << overhead_pct << "%";
}

TEST(TierTableRun, QuarantinedPidNeverHoldsAnInlineSiteAndRepromotionIsEarned) {
  int calls = 0;
  std::size_t sites_at_fault = ~std::size_t{0};
  std::size_t sites_in_quarantine = ~std::size_t{0};
  HealthState state_after_faults = HealthState::Healthy;
  const LoopRun lr = run_pidloop(
      true, /*threshold=*/3,
      [](System& sys) { sys.kernel().set_health_promote_threshold(3); },
      [&](System& sys, os::Process& p, std::uint32_t) {
        ++calls;
        if (calls == 40) {
          EXPECT_GT(sys.kernel().inline_sites(), 0u) << "site never promoted before the fault";
          // Two internal faults: Healthy -> Degraded -> Quarantined. The
          // demotion must revoke every promotion of the pid immediately.
          sys.kernel().report_internal_fault(p, "oracle: planted fault one");
          sys.kernel().report_internal_fault(p, "oracle: planted fault two");
          sites_at_fault = sys.kernel().inline_sites();
          state_after_faults = sys.kernel().health(p.pid);
        }
        if (calls == 41) sites_in_quarantine = sys.kernel().inline_sites();
      });
  ASSERT_TRUE(lr.result.completed) << lr.result.violation_detail;
  EXPECT_EQ(state_after_faults, HealthState::Quarantined);
  EXPECT_EQ(sites_at_fault, 0u) << "a demoted pid held on to an inline site";
  EXPECT_EQ(sites_in_quarantine, 0u) << "a quarantined pid re-acquired an inline site";
  EXPECT_GE(lr.stats.demotions[static_cast<std::size_t>(DemotionCause::HealthDemotion)], 1u);
  // Recovery is earned, not granted: Quarantined -> Degraded -> Healthy via
  // clean-streak re-promotion, then the shadow refills, then the inline
  // streak is re-earned from zero -- so the loop's tail promotes AGAIN.
  EXPECT_GE(lr.stats.promotions, 2u)
      << "site did not re-earn promotion after health recovery";
  EXPECT_GT(lr.stats.inline_hits, 0u);
}

// A benign same-value write into the policy-state record of a promoted site:
// the spine must write back the shadow under the authoritative kernel
// counter BEFORE the write lands, demote the site, and let the eager §3.2
// protocol resume coherently -- so the run completes and the site re-earns
// promotion afterwards.
TEST(TierTableRun, DemotionResyncsGuestStateUnderAuthoritativeCounter) {
  int touched = 0;
  const LoopRun lr = run_pidloop(
      true, /*threshold=*/3, {},
      [&](System& sys, os::Process& p, std::uint32_t site) {
        if (touched > 0 || !sys.kernel().inline_site_promoted(p.pid, site)) return;
        const std::uint32_t lb = p.cpu.regs[isa::kRegStatePtr];
        ASSERT_TRUE(p.mem.in_range(lb, policy::kPolicyStateSize));
        p.mem.w8(lb, p.mem.r8(lb));  // same value; the watch keys on the write
        ++touched;
        EXPECT_FALSE(sys.kernel().inline_site_promoted(p.pid, site))
            << "write into the state record left the promotion alive";
      });
  ASSERT_TRUE(lr.result.completed)
      << "resync failed: " << lr.result.violation_detail;
  EXPECT_EQ(touched, 1);
  EXPECT_GE(lr.stats.demotions[static_cast<std::size_t>(DemotionCause::GuestWrite)], 1u);
  EXPECT_GE(lr.stats.promotions, 2u) << "site did not re-earn promotion after the resync";
}

// Genuine tamper at an already-promoted site (the promo-toctou shape): a bit
// flip in the call MAC demotes the site via the write watch, the next call
// re-enters the full pipeline, and verification fail-stops. Inline execution
// never outlives the tamper.
TEST(TierTableRun, TamperAtPromotedSiteFailStops) {
  int flipped = 0;
  const LoopRun lr = run_pidloop(
      true, /*threshold=*/3, {},
      [&](System& sys, os::Process& p, std::uint32_t site) {
        if (flipped > 0 || !sys.kernel().inline_site_promoted(p.pid, site)) return;
        const std::uint32_t mac_ptr = p.cpu.regs[isa::kRegCallMac];
        ASSERT_TRUE(p.mem.in_range(mac_ptr, 16));
        p.mem.w8(mac_ptr, p.mem.r8(mac_ptr) ^ 0x01);
        ++flipped;
      });
  EXPECT_EQ(flipped, 1);
  EXPECT_FALSE(lr.result.completed) << "tampered call MAC survived at a promoted site";
  EXPECT_EQ(lr.result.violation, os::Violation::BadCallMac);
  EXPECT_GE(lr.stats.demotions[static_cast<std::size_t>(DemotionCause::GuestWrite)], 1u);
}

TEST(TierTableRun, KeyRotationAndMonitorSwapDemote) {
  int rotated = 0;
  int swapped = 0;
  const LoopRun lr = run_pidloop(
      true, /*threshold=*/3, {},
      [&](System& sys, os::Process& p, std::uint32_t site) {
        if (rotated == 0 && sys.kernel().inline_site_promoted(p.pid, site)) {
          // test_key() is deterministic, so this re-installs the same key:
          // verification keeps succeeding, but the rotation itself must
          // revoke every promotion (old-key verifications are void).
          sys.kernel().set_key(test_key());
          ++rotated;
          EXPECT_EQ(sys.kernel().inline_sites(), 0u);
          return;
        }
        if (rotated == 1 && swapped == 0 && sys.kernel().inline_site_promoted(p.pid, site)) {
          sys.kernel().set_enforcement(os::Enforcement::Asc);  // monitor replaced
          ++swapped;
          EXPECT_EQ(sys.kernel().inline_sites(), 0u);
        }
      });
  ASSERT_TRUE(lr.result.completed) << lr.result.violation_detail;
  EXPECT_EQ(rotated, 1);
  EXPECT_EQ(swapped, 1);
  EXPECT_GE(lr.stats.demotions[static_cast<std::size_t>(DemotionCause::KeyRotation)], 1u);
  EXPECT_GE(lr.stats.demotions[static_cast<std::size_t>(DemotionCause::MonitorSwap)], 1u);
  EXPECT_GE(lr.stats.promotions, 3u) << "promotion must be re-earned after each revocation";
}

TEST(TierTableRun, TeardownLeavesNoSitesAndBalancedWatchAccounting) {
  System sys(kPers, test_key(), os::Enforcement::Asc);
  sys.kernel().set_inline_tier(true);
  sys.kernel().set_inline_promote_threshold(3);
  const auto inst = sys.install(build_pidloop());
  const auto r = sys.machine().run(inst.image);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  EXPECT_GT(sys.kernel().tier_stats().inline_hits, 0u);
  EXPECT_EQ(sys.kernel().inline_sites(), 0u) << "teardown must demote every site";
  EXPECT_GE(sys.kernel().tier_stats()
                .demotions[static_cast<std::size_t>(DemotionCause::Teardown)],
            1u);
  // The site's own refcounted watches all returned: the process ended with
  // balanced watch accounting (the chaos oracles assert the same).
  EXPECT_EQ(r.final_watch.live_ranges, 0u);
  EXPECT_EQ(r.final_watch.live_refs, 0u);
  EXPECT_EQ(r.final_watch.registered, r.final_watch.released);
}

TEST(TierTableRun, GatingOffAFastPathDemotesInsteadOfOrphaning) {
  int gated = 0;
  const LoopRun lr = run_pidloop(
      true, /*threshold=*/3, {},
      [&](System& sys, os::Process& p, std::uint32_t site) {
        if (gated > 0 || !sys.kernel().inline_site_promoted(p.pid, site)) return;
        // The probe depends on the shadow nonce; switching the shadow off
        // must revoke the promotion through the same table, not leave an
        // inline site probing a mechanism that no longer exists.
        sys.kernel().set_policy_shadow(false);
        ++gated;
        EXPECT_EQ(sys.kernel().inline_sites(), 0u);
        sys.kernel().set_policy_shadow(true);  // and the tail re-earns it
      });
  ASSERT_TRUE(lr.result.completed) << lr.result.violation_detail;
  EXPECT_EQ(gated, 1);
  EXPECT_GE(lr.stats.demotions[static_cast<std::size_t>(DemotionCause::Disabled)], 1u);
  EXPECT_GE(lr.stats.promotions, 2u);
}

}  // namespace
}  // namespace asc
