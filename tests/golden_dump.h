// Golden-trace dump of the trap pipeline, the oracle for kernel refactors.
//
// `golden_trap_dump()` runs a fixed spawn-heavy workload (screen + vuln_echo,
// each spawning an authenticated child) under every enforcement mode and
// serializes everything the kernel's observable surface produces: guest
// stdout, exit status, violation, cycle/instruction/syscall counts, and the
// full formatted audit log. tests/golden/trap_pipeline.golden was captured
// from the pre-refactor (monolithic-kernel) tree; the golden test asserts the
// staged pipeline reproduces it byte for byte.
#pragma once

#include <string>

#include "monitor/ktable.h"
#include "workloads.h"

namespace asc::testing {

namespace golden_detail {

struct ModeSpec {
  const char* label;
  os::Enforcement mode;
  bool cache;  // verified-call cache (Asc only)
};

inline const ModeSpec* golden_modes(std::size_t* n) {
  static const ModeSpec kModes[] = {
      {"off", os::Enforcement::Off, true},
      {"asc", os::Enforcement::Asc, true},
      {"asc-nocache", os::Enforcement::Asc, false},
      {"daemon", os::Enforcement::Daemon, true},
      {"kernel-table", os::Enforcement::KernelTable, true},
  };
  *n = sizeof(kModes) / sizeof(kModes[0]);
  return kModes;
}

inline void dump_run(std::string& out, const std::string& prog, const vm::RunResult& r) {
  out += "prog " + prog + ": completed=" + std::to_string(r.completed ? 1 : 0) +
         " exit=" + std::to_string(r.exit_code) +
         " violation=" + os::violation_name(r.violation) +
         " cycles=" + std::to_string(r.cycles) +
         " instr=" + std::to_string(r.instructions) +
         " syscalls=" + std::to_string(r.syscalls) + "\n";
  out += "stdout<<<" + r.stdout_data + ">>>\n";
}

/// Extra fixtures screen needs to take its full path (terminal + session
/// dir) instead of the early die() path.
inline void prepare_screen_fs(os::SimFs& fs) {
  (void)fs.mkdir("/", "/tmp", 01777);
  (void)fs.mkdir("/", "/dev", 0755);
  auto ino = fs.open("/", "/dev/tty", os::SimFs::kRdWr | os::SimFs::kCreat, 0666);
  (void)ino;
}

}  // namespace golden_detail

/// The full multi-mode dump (see file comment).
inline std::string golden_trap_dump() {
  std::string out;
  std::size_t n = 0;
  const auto* modes = golden_detail::golden_modes(&n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& spec = modes[i];
    out += "=== mode " + std::string(spec.label) + " ===\n";

    const auto pers = os::Personality::LinuxSim;
    System sys(pers, test_key(), spec.mode);
    sys.kernel().set_verified_call_cache(spec.cache);
    // The golden trace predates the policy-state shadow and pins the eager
    // §3.2 per-call MAC cycles; keep it that way so the file stays stable.
    sys.kernel().set_policy_shadow(false);
    prepare_fs(sys.kernel().fs());
    golden_detail::prepare_screen_fs(sys.kernel().fs());

    // screen spawns /bin/true; vuln_echo spawns /bin/ls on the line read
    // from stdin. Both children are `cat`, sharing one kernel so the audit
    // log interleaves parent and child events.
    binary::Image screen = apps::build_screen(pers);
    binary::Image echo = apps::build_vuln_echo(pers);
    binary::Image child = apps::build_tool_cat(pers);
    if (spec.mode == os::Enforcement::Asc) {
      sys.install_and_register("/bin/true", child);
      sys.install_and_register("/bin/ls", child);
      screen = sys.install(screen).image;
      echo = sys.install(echo).image;
    } else {
      sys.machine().register_program("/bin/true", child);
      sys.machine().register_program("/bin/ls", child);
      if (spec.mode != os::Enforcement::Off) {
        System analysis(pers, test_key(), os::Enforcement::Off);
        sys.kernel().set_monitor_policy(
            "screen", monitor::table_from_asc_policies(analysis.install(screen).policies));
        sys.kernel().set_monitor_policy(
            "vuln_echo", monitor::table_from_asc_policies(analysis.install(echo).policies));
        sys.kernel().set_monitor_policy(
            "cat", monitor::table_from_asc_policies(analysis.install(child).policies));
      }
    }

    auto r1 = sys.machine().run(screen, {"main"});
    golden_detail::dump_run(out, "screen", r1);
    auto r2 = sys.machine().run(echo, {}, "/lines.txt\n");
    golden_detail::dump_run(out, "vuln_echo", r2);

    out += "audit:\n";
    for (const auto& e : sys.kernel().event_log()) out += e + "\n";
  }
  return out;
}

}  // namespace asc::testing
