// AES-128 and AES-CMAC against official test vectors, plus MAC properties
// the ASC design depends on.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "util/hex.h"
#include "util/rng.h"

namespace asc::crypto {
namespace {

Key128 key_of(const std::string& hex) {
  Key128 k{};
  auto v = util::from_hex(hex);
  std::copy(v.begin(), v.end(), k.begin());
  return k;
}

TEST(Aes, Fips197AppendixB) {
  Aes128 aes(key_of("2b7e151628aed2a6abf7158809cf4f3c"));
  Block b{};
  auto pt = util::from_hex("3243f6a8885a308d313198a2e0370734");
  std::copy(pt.begin(), pt.end(), b.begin());
  aes.encrypt_block(b);
  EXPECT_EQ(util::to_hex(b), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes, Fips197AppendixCKeyZeroPattern) {
  // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
  Aes128 aes(key_of("000102030405060708090a0b0c0d0e0f"));
  Block b{};
  auto pt = util::from_hex("00112233445566778899aabbccddeeff");
  std::copy(pt.begin(), pt.end(), b.begin());
  aes.encrypt_block(b);
  EXPECT_EQ(util::to_hex(b), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

struct CmacVector {
  std::size_t len;
  const char* msg_hex;
  const char* mac_hex;
};

// NIST SP 800-38B Appendix D.1 (AES-128).
const CmacVector kVectors[] = {
    {0, "", "bb1d6929e95937287fa37d129b756746"},
    {16, "6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
    {40,
     "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
     "dfa66747de9ae63030ca32611497c827"},
    {64,
     "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc119"
     "1a0a52eff69f2445df4f9b17ad2b417be66c3710",
     "51f0bebf7e3b9d92fc49741779363cfe"},
};

class CmacVectors : public ::testing::TestWithParam<CmacVector> {};

TEST_P(CmacVectors, MatchesNist) {
  Cmac cmac(key_of("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto msg = util::from_hex(GetParam().msg_hex);
  ASSERT_EQ(msg.size(), GetParam().len);
  EXPECT_EQ(util::to_hex(cmac.compute(msg)), GetParam().mac_hex);
}

INSTANTIATE_TEST_SUITE_P(Nist, CmacVectors, ::testing::ValuesIn(kVectors));

TEST(Cmac, SingleBitFlipsChangeTheMac) {
  // The whole security argument rests on MAC sensitivity: flipping any bit
  // of a message must change the MAC. (Not a proof, but a strong smoke
  // check across positions and lengths.)
  Cmac cmac(key_of("000102030405060708090a0b0c0d0e0f"));
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    auto msg = rng.next_bytes(1 + rng.next_below(96));
    const Mac original = cmac.compute(msg);
    const std::size_t byte = rng.next_below(msg.size());
    const int bit = static_cast<int>(rng.next_below(8));
    msg[byte] ^= static_cast<std::uint8_t>(1 << bit);
    EXPECT_FALSE(Cmac::equal(original, cmac.compute(msg)));
  }
}

TEST(Cmac, LengthExtensionDoesNotPreserveMac) {
  Cmac cmac(key_of("000102030405060708090a0b0c0d0e0f"));
  const auto msg = util::bytes_of("authenticated system call");
  auto longer = msg;
  longer.push_back(0);
  EXPECT_FALSE(Cmac::equal(cmac.compute(msg), cmac.compute(longer)));
}

TEST(Cmac, DistinctKeysDistinctMacs) {
  Cmac a(key_of("000102030405060708090a0b0c0d0e0f"));
  Cmac b(key_of("000102030405060708090a0b0c0d0e10"));
  const auto msg = util::bytes_of("policy");
  EXPECT_FALSE(Cmac::equal(a.compute(msg), b.compute(msg)));
}

// The per-key schedule memo must stay bounded by the LIVE keys: nodes whose
// schedule expired are reclaimed (on re-lookup of the same key, and swept
// when a new key is inserted), so rotating through many distinct keys does
// not grow the map without bound.
TEST(Cmac, ScheduleMemoStaysBoundedUnderKeyRotation) {
  const std::size_t before = Cmac::schedule_memo_size();
  for (std::uint8_t round = 0; round < 64; ++round) {
    Key128 k{};
    k[0] = round;
    k[15] = static_cast<std::uint8_t>(round ^ 0x5a);
    Cmac engine(k);  // dies at scope end: its memo node is sweepable
    (void)engine;
  }
  // Each construction sweeps its shard's expired nodes before inserting, so
  // at most one (already-expired) node per memo shard outlives the loop
  // beyond what was there -- bounded by live keys + shard count, never by
  // every key ever seen.
  EXPECT_LE(Cmac::schedule_memo_size(), before + Cmac::kMemoShards);

  // A live engine's node persists and is shared, not duplicated.
  Key128 live{};
  live[7] = 0xaa;
  Cmac a(live);
  const std::size_t with_live = Cmac::schedule_memo_size();
  Cmac b(live);
  EXPECT_EQ(Cmac::schedule_memo_size(), with_live);
}

TEST(MacKey, VerifyRoundTrip) {
  MacKey key(key_of("00112233445566778899aabbccddeeff"));
  const auto msg = util::bytes_of("encoded policy bytes");
  const Mac m = key.mac(msg);
  EXPECT_TRUE(key.verify(msg, m));
  Mac wrong = m;
  wrong[3] ^= 1;
  EXPECT_FALSE(key.verify(msg, wrong));
}

}  // namespace
}  // namespace asc::crypto
