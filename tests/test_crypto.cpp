// AES-128 and AES-CMAC against official test vectors, plus MAC properties
// the ASC design depends on.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "util/hex.h"
#include "util/rng.h"

namespace asc::crypto {
namespace {

Key128 key_of(const std::string& hex) {
  Key128 k{};
  auto v = util::from_hex(hex);
  std::copy(v.begin(), v.end(), k.begin());
  return k;
}

TEST(Aes, Fips197AppendixB) {
  Aes128 aes(key_of("2b7e151628aed2a6abf7158809cf4f3c"));
  Block b{};
  auto pt = util::from_hex("3243f6a8885a308d313198a2e0370734");
  std::copy(pt.begin(), pt.end(), b.begin());
  aes.encrypt_block(b);
  EXPECT_EQ(util::to_hex(b), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes, Fips197AppendixCKeyZeroPattern) {
  // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
  Aes128 aes(key_of("000102030405060708090a0b0c0d0e0f"));
  Block b{};
  auto pt = util::from_hex("00112233445566778899aabbccddeeff");
  std::copy(pt.begin(), pt.end(), b.begin());
  aes.encrypt_block(b);
  EXPECT_EQ(util::to_hex(b), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

struct CmacVector {
  std::size_t len;
  const char* msg_hex;
  const char* mac_hex;
};

// NIST SP 800-38B Appendix D.1 (AES-128).
const CmacVector kVectors[] = {
    {0, "", "bb1d6929e95937287fa37d129b756746"},
    {16, "6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
    {40,
     "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
     "dfa66747de9ae63030ca32611497c827"},
    {64,
     "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc119"
     "1a0a52eff69f2445df4f9b17ad2b417be66c3710",
     "51f0bebf7e3b9d92fc49741779363cfe"},
};

class CmacVectors : public ::testing::TestWithParam<CmacVector> {};

TEST_P(CmacVectors, MatchesNist) {
  Cmac cmac(key_of("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto msg = util::from_hex(GetParam().msg_hex);
  ASSERT_EQ(msg.size(), GetParam().len);
  EXPECT_EQ(util::to_hex(cmac.compute(msg)), GetParam().mac_hex);
}

INSTANTIATE_TEST_SUITE_P(Nist, CmacVectors, ::testing::ValuesIn(kVectors));

TEST(Cmac, SingleBitFlipsChangeTheMac) {
  // The whole security argument rests on MAC sensitivity: flipping any bit
  // of a message must change the MAC. (Not a proof, but a strong smoke
  // check across positions and lengths.)
  Cmac cmac(key_of("000102030405060708090a0b0c0d0e0f"));
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    auto msg = rng.next_bytes(1 + rng.next_below(96));
    const Mac original = cmac.compute(msg);
    const std::size_t byte = rng.next_below(msg.size());
    const int bit = static_cast<int>(rng.next_below(8));
    msg[byte] ^= static_cast<std::uint8_t>(1 << bit);
    EXPECT_FALSE(Cmac::equal(original, cmac.compute(msg)));
  }
}

TEST(Cmac, LengthExtensionDoesNotPreserveMac) {
  Cmac cmac(key_of("000102030405060708090a0b0c0d0e0f"));
  const auto msg = util::bytes_of("authenticated system call");
  auto longer = msg;
  longer.push_back(0);
  EXPECT_FALSE(Cmac::equal(cmac.compute(msg), cmac.compute(longer)));
}

TEST(Cmac, DistinctKeysDistinctMacs) {
  Cmac a(key_of("000102030405060708090a0b0c0d0e0f"));
  Cmac b(key_of("000102030405060708090a0b0c0d0e10"));
  const auto msg = util::bytes_of("policy");
  EXPECT_FALSE(Cmac::equal(a.compute(msg), b.compute(msg)));
}

// The per-key schedule memo must stay bounded by the LIVE keys: nodes whose
// schedule expired are reclaimed (on re-lookup of the same key, and swept
// when a new key is inserted), so rotating through many distinct keys does
// not grow the map without bound.
TEST(Cmac, ScheduleMemoStaysBoundedUnderKeyRotation) {
  const std::size_t before = Cmac::schedule_memo_size();
  for (std::uint8_t round = 0; round < 64; ++round) {
    Key128 k{};
    k[0] = round;
    k[15] = static_cast<std::uint8_t>(round ^ 0x5a);
    Cmac engine(k);  // dies at scope end: its memo node is sweepable
    (void)engine;
  }
  // Each construction sweeps its shard's expired nodes before inserting, so
  // at most one (already-expired) node per memo shard outlives the loop
  // beyond what was there -- bounded by live keys + shard count, never by
  // every key ever seen.
  EXPECT_LE(Cmac::schedule_memo_size(), before + Cmac::kMemoShards);

  // A live engine's node persists and is shared, not duplicated.
  Key128 live{};
  live[7] = 0xaa;
  Cmac a(live);
  const std::size_t with_live = Cmac::schedule_memo_size();
  Cmac b(live);
  EXPECT_EQ(Cmac::schedule_memo_size(), with_live);
}

// Construction cost must stay FLAT as dead keys accumulate: the expired-node
// sweep is amortized (at most kSweepPerInsert probes per construction), not
// a full-shard scan. Pile up hundreds of dead nodes, then check the probe
// counter's per-construction delta never exceeds the budget.
TEST(Cmac, AmortizedSweepKeepsConstructionCostFlat) {
  auto make_key = [](std::uint32_t i) {
    Key128 k{};
    k[0] = static_cast<std::uint8_t>(i);
    k[1] = static_cast<std::uint8_t>(i >> 8);
    k[2] = 0xd5;  // namespace the test's keys away from other tests'
    return k;
  };
  // Phase 1: rotate through many keys, every engine dying immediately.
  for (std::uint32_t i = 0; i < 400; ++i) {
    Cmac engine(make_key(i));
    (void)engine;
  }
  // Phase 2: each further construction probes at most kSweepPerInsert
  // memo nodes, no matter how much garbage phase 1 left behind.
  for (std::uint32_t i = 400; i < 432; ++i) {
    const std::uint64_t before = Cmac::memo_sweep_visited();
    Cmac engine(make_key(i));
    (void)engine;
    const std::uint64_t probes = Cmac::memo_sweep_visited() - before;
    EXPECT_LE(probes, static_cast<std::uint64_t>(Cmac::kSweepPerInsert)) << "construction " << i;
  }
  // A memo hit (live schedule reuse) must not probe at all.
  Cmac live(make_key(9999));
  const std::uint64_t before = Cmac::memo_sweep_visited();
  Cmac again(make_key(9999));
  EXPECT_EQ(Cmac::memo_sweep_visited() - before, 0u);
}

class BackendGuard {
 public:
  explicit BackendGuard(Aes128::BackendPolicy p) : saved_(Aes128::backend_policy()) {
    Aes128::set_backend_policy(p);
  }
  ~BackendGuard() { Aes128::set_backend_policy(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Aes128::BackendPolicy saved_;
};

// The scratch implementation is the reference oracle for the AES-NI
// backend: identical ciphertext for random keys and blocks, through both
// the single-block and the 4-wide interleaved entry points.
TEST(Aes, AesniMatchesScratchOracle) {
  if (!Aes128::aesni_supported()) GTEST_SKIP() << "host has no AES-NI";
  util::Rng rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    Key128 key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
    BackendGuard force(Aes128::BackendPolicy::ForceScratch);
    Aes128 scratch(key);
    ASSERT_EQ(scratch.backend(), Aes128::Backend::Scratch);
    Aes128::set_backend_policy(Aes128::BackendPolicy::Auto);
    Aes128 hw(key);
    ASSERT_EQ(hw.backend(), Aes128::Backend::Aesni);

    std::array<Block, 4> blocks{};
    for (auto& blk : blocks) {
      for (auto& b : blk) b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    for (const auto& blk : blocks) EXPECT_EQ(scratch.encrypt(blk), hw.encrypt(blk));

    std::array<Block, 4> a = blocks;
    std::array<Block, 4> b = blocks;
    scratch.encrypt4(a[0], a[1], a[2], a[3]);
    hw.encrypt4(b[0], b[1], b[2], b[3]);
    EXPECT_EQ(a, b);
  }
}

// encrypt4 must equal four independent encrypt_block calls on EVERY
// backend (the batch CMAC path builds on this).
TEST(Aes, Encrypt4MatchesFourSingles) {
  util::Rng rng(11);
  Key128 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
  Aes128 aes(key);
  for (int trial = 0; trial < 16; ++trial) {
    std::array<Block, 4> blocks{};
    for (auto& blk : blocks) {
      for (auto& b : blk) b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    std::array<Block, 4> batch = blocks;
    aes.encrypt4(batch[0], batch[1], batch[2], batch[3]);
    for (int i = 0; i < 4; ++i) {
      Block single = blocks[static_cast<std::size_t>(i)];
      aes.encrypt_block(single);
      EXPECT_EQ(batch[static_cast<std::size_t>(i)], single);
    }
  }
}

// compute_batch must be byte-identical to per-message compute() for every
// length class (empty, partial, exact multiple, multi-block) and every
// batch size (off-by-one around the 4-lane group boundary), on whichever
// backend the host selects and on the scratch oracle.
TEST(Cmac, BatchMatchesSequentialCompute) {
  const std::vector<std::size_t> lengths = {0, 1, 15, 16, 17, 31, 32, 33, 48, 64, 65, 100, 256};
  util::Rng rng(23);
  std::vector<std::vector<std::uint8_t>> messages;
  for (const std::size_t len : lengths) messages.push_back(rng.next_bytes(len));

  for (const auto policy :
       {Aes128::BackendPolicy::ForceScratch, Aes128::BackendPolicy::Auto}) {
    BackendGuard guard(policy);
    const Cmac cmac(key_of("2b7e151628aed2a6abf7158809cf4f3c"));
    for (std::size_t count = 0; count <= messages.size(); ++count) {
      std::vector<std::span<const std::uint8_t>> spans;
      for (std::size_t i = 0; i < count; ++i) spans.emplace_back(messages[i]);
      const std::vector<Mac> batch = cmac.compute_batch(spans);
      ASSERT_EQ(batch.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(util::to_hex(batch[i]), util::to_hex(cmac.compute(spans[i])))
            << "count " << count << " message " << i;
      }
    }
  }
}

// The batched verifier agrees with verify() per pair, including mixed
// pass/fail batches.
TEST(MacKey, VerifyBatchMatchesVerify) {
  MacKey key(key_of("00112233445566778899aabbccddeeff"));
  util::Rng rng(31);
  std::vector<std::vector<std::uint8_t>> messages;
  std::vector<Mac> expected;
  for (int i = 0; i < 9; ++i) {
    messages.push_back(rng.next_bytes(rng.next_below(80)));
    Mac m = key.mac(messages.back());
    if (i % 3 == 1) m[5] ^= 1;  // corrupt every third expectation
    expected.push_back(m);
  }
  std::vector<std::span<const std::uint8_t>> spans(messages.begin(), messages.end());
  const std::vector<bool> ok = key.verify_batch(spans, expected);
  ASSERT_EQ(ok.size(), messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(ok[i], key.verify(spans[i], expected[i])) << "pair " << i;
    EXPECT_EQ(ok[i], i % 3 != 1) << "pair " << i;
  }
}

TEST(MacKey, VerifyRoundTrip) {
  MacKey key(key_of("00112233445566778899aabbccddeeff"));
  const auto msg = util::bytes_of("encoded policy bytes");
  const Mac m = key.mac(msg);
  EXPECT_TRUE(key.verify(msg, m));
  Mac wrong = m;
  wrong[3] ^= 1;
  EXPECT_FALSE(key.verify(msg, wrong));
}

}  // namespace
}  // namespace asc::crypto
