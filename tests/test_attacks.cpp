// The attack experiments of §4.1 and §5.5, run for real against the
// simulated kernel:
//
//   1. shellcode attack   -- injected code issues its own spawn("/bin/sh");
//                            blocked because the call is unauthenticated.
//   2. mimicry attack     -- injected copy of an authenticated call sequence
//                            taken from the binary; blocked because the call
//                            site (and thus the encoded call) differs.
//   2b. out-of-order jump -- reuse an EXISTING authenticated call in the
//                            binary out of control-flow order; blocked by
//                            the predecessor check.
//   3. non-control-data   -- swap the argument of an existing authenticated
//                            spawn: (a) point the register at "/bin/sh"
//                            (call-MAC failure), (b) overwrite the
//                            authenticated string bytes (string-MAC failure).
//   4. replay attack      -- restore stale lastBlock/lbMAC bytes; the
//                            kernel's counter nonce detects it.
//   5. Frankenstein       -- splice an authenticated call from another
//                            program; succeeds without unique block ids,
//                            blocked with them (§5.5).
#include <gtest/gtest.h>

#include "isa/encode.h"
#include "tasm/assembler.h"
#include "apps/libtoy.h"
#include "util/hex.h"
#include "workloads.h"

namespace asc {
namespace {

using apps::R0;
using apps::R1;

constexpr std::uint32_t kSetupLen = 30;   // movi,movi,lea,lea,lea before SYSCALL
constexpr std::uint32_t kMoviLen = 6;

/// Find the AS body address of a string constant inside the installed
/// image's .asdata (content preceded by the 20-byte {len, MAC} header).
std::uint32_t find_as_body(const binary::Image& img, const std::string& content) {
  const auto* sec = img.find_section(binary::SectionKind::AsData);
  if (sec == nullptr) return 0;
  const auto& b = sec->bytes;
  for (std::size_t i = 20; i + content.size() <= b.size(); ++i) {
    if (std::equal(content.begin(), content.end(), b.begin() + static_cast<std::ptrdiff_t>(i)) &&
        util::get_u32(b, i - 20) == content.size()) {
      return sec->vaddr() + static_cast<std::uint32_t>(i);
    }
  }
  return 0;
}

const policy::SyscallPolicy* find_policy(const installer::InstallResult& inst, os::SysId id) {
  for (const auto& p : inst.policies) {
    if (p.sys == id) return &p;
  }
  return nullptr;
}

std::vector<std::uint8_t> encode_seq(const std::vector<isa::Instr>& seq) {
  std::vector<std::uint8_t> out;
  for (const auto& ins : seq) isa::encode(ins, out);
  return out;
}

struct VulnSetup {
  System sys{os::Personality::LinuxSim};
  installer::InstallResult inst;
  std::uint32_t buf_addr = 0;  // stack address of the vulnerable buffer

  VulnSetup() {
    testing::prepare_fs(sys.kernel().fs());
    sys.install_and_register("/bin/ls", apps::build_tool_cat(os::Personality::LinuxSim));
    inst = sys.install(apps::build_vuln_echo(os::Personality::LinuxSim));

    // Recon run: capture the buffer address at the stdin read. Execution is
    // deterministic, so the address is identical in the attack run.
    const std::uint16_t read_no = *os::syscall_number(os::Personality::LinuxSim, os::SysId::Read);
    sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
      if (p.cpu.regs[0] == read_no && p.cpu.regs[1] == 0 && buf_addr == 0) {
        buf_addr = p.cpu.regs[2];
      }
    };
    auto r = sys.machine().run(inst.image, {}, "legit.txt\n");
    sys.machine().pre_syscall_hook = nullptr;
    EXPECT_TRUE(r.completed);
    EXPECT_NE(buf_addr, 0u);
  }

  /// Overflow payload: 64 bytes of filler, the new return address, then
  /// `extra` (shellcode/data) landing at buf_addr + 68.
  std::string payload(std::uint32_t new_ret, const std::vector<std::uint8_t>& extra) {
    std::string s(64, 'A');
    for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>(new_ret >> (8 * i)));
    s.append(extra.begin(), extra.end());
    return s;
  }

  bool spawned_shell() {
    for (const auto& e : sys.kernel().event_log()) {
      if (e.find("SPAWN /bin/sh") != std::string::npos) return true;
    }
    return false;
  }
};

TEST(Attacks, ShellcodeAttackIsBlockedAsUnauthenticated) {
  VulnSetup v;
  const std::uint32_t code_addr = v.buf_addr + 68;
  // Shellcode: spawn("/bin/sh") -- a brand-new, unauthenticated call.
  const std::uint16_t spawn_no =
      *os::syscall_number(os::Personality::LinuxSim, os::SysId::Spawn);
  std::vector<isa::Instr> code{
      {isa::Op::Movi, 1, 0, 0},  // r1 = &"/bin/sh" (patched below)
      {isa::Op::Movi, 2, 0, 0},
      {isa::Op::Movi, 0, 0, spawn_no},
      {isa::Op::Syscall},
      {isa::Op::Halt},
  };
  auto bytes = encode_seq(code);
  const std::uint32_t sh_addr = code_addr + static_cast<std::uint32_t>(bytes.size());
  code[0].imm = sh_addr;
  bytes = encode_seq(code);
  for (char c : std::string("/bin/sh")) bytes.push_back(static_cast<std::uint8_t>(c));
  bytes.push_back(0);

  auto r = v.sys.machine().run(v.inst.image, {}, v.payload(code_addr, bytes));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac) << r.violation_detail;
  EXPECT_FALSE(v.spawned_shell());
}

TEST(Attacks, MimicryWithCopiedAuthenticatedCallIsBlockedByCallSite) {
  VulnSetup v;
  // Copy the complete authenticated spawn sequence (movi r0 + 5 setup
  // instructions + syscall) out of the binary and run it from the stack.
  // Every extra argument is bit-for-bit authentic -- but the call SITE is
  // now a stack address, so the kernel's encoded call differs.
  const auto* spawn_pol = find_policy(v.inst, os::SysId::Spawn);
  ASSERT_NE(spawn_pol, nullptr);
  const std::uint32_t seq_start = spawn_pol->call_site - kSetupLen - kMoviLen;
  const std::uint32_t seq_len = kSetupLen + kMoviLen + 1;  // + SYSCALL byte
  auto seq = v.inst.image.bytes_at(seq_start, seq_len);
  ASSERT_TRUE(seq.has_value());

  const std::uint32_t code_addr = v.buf_addr + 68;
  std::vector<std::uint8_t> bytes;
  // r1 = authentic AS body ("/bin/ls"), r2 = 0 -- maximally faithful.
  const std::uint32_t ls_body = find_as_body(v.inst.image, "/bin/ls");
  ASSERT_NE(ls_body, 0u);
  isa::encode({isa::Op::Movi, 1, 0, ls_body}, bytes);
  isa::encode({isa::Op::Movi, 2, 0, 0}, bytes);
  bytes.insert(bytes.end(), seq->begin(), seq->end());
  isa::encode({isa::Op::Halt}, bytes);

  auto r = v.sys.machine().run(v.inst.image, {}, v.payload(code_addr, bytes));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac) << r.violation_detail;
}

TEST(Attacks, OutOfOrderReuseIsBlockedByControlFlowPolicy) {
  VulnSetup v;
  // Jump to the EXISTING authenticated config-open inside load_config. The
  // call is authentic at its real site, but load_config's open can never
  // follow the stdin read in the syscall graph -> predecessor violation.
  const auto* open_pol = find_policy(v.inst, os::SysId::Open);
  ASSERT_NE(open_pol, nullptr);
  const std::uint32_t conf_body = find_as_body(v.inst.image, "/etc/vuln.conf");
  ASSERT_NE(conf_body, 0u);

  const std::uint32_t code_addr = v.buf_addr + 68;
  std::vector<std::uint8_t> bytes;
  isa::encode({isa::Op::Movi, 1, 0, conf_body}, bytes);       // authentic path arg
  isa::encode({isa::Op::Movi, 2, 0, 0}, bytes);               // O_RDONLY
  isa::encode({isa::Op::Movi, 3, 0, 0}, bytes);
  isa::encode({isa::Op::Movi, 0, 0, open_pol->sysno}, bytes);
  isa::encode({isa::Op::Jmp, 0, 0, open_pol->call_site - kSetupLen}, bytes);

  auto r = v.sys.machine().run(v.inst.image, {}, v.payload(code_addr, bytes));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadPredecessor) << r.violation_detail;
}

TEST(Attacks, NonControlDataSwappedPointerIsBlocked) {
  VulnSetup v;
  // Reuse the authenticated spawn IN PLACE (jump to its setup) but point r1
  // at a "/bin/sh" string on the stack instead of the authenticated string.
  const auto* spawn_pol = find_policy(v.inst, os::SysId::Spawn);
  ASSERT_NE(spawn_pol, nullptr);

  const std::uint32_t code_addr = v.buf_addr + 68;
  std::vector<isa::Instr> code{
      {isa::Op::Movi, 1, 0, 0},  // r1 = &"/bin/sh" (patched)
      {isa::Op::Movi, 2, 0, 0},
      {isa::Op::Movi, 0, 0, spawn_pol->sysno},
      {isa::Op::Jmp, 0, 0, spawn_pol->call_site - kSetupLen},
  };
  auto bytes = encode_seq(code);
  const std::uint32_t sh_addr = code_addr + static_cast<std::uint32_t>(bytes.size());
  code[0].imm = sh_addr;
  bytes = encode_seq(code);
  for (char c : std::string("/bin/sh")) bytes.push_back(static_cast<std::uint8_t>(c));
  bytes.push_back(0);

  auto r = v.sys.machine().run(v.inst.image, {}, v.payload(code_addr, bytes));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac) << r.violation_detail;
  EXPECT_FALSE(v.spawned_shell());
}

TEST(Attacks, NonControlDataStringOverwriteIsBlockedByStringMac) {
  VulnSetup v;
  // Overwrite the authenticated string CONTENT ("/bin/ls" -> "/bin/sh") in
  // the writable .asdata, keeping address and length identical, then drive
  // the authentic spawn normally. The call MAC passes (it covers only
  // {addr, len, MAC-of-original}); the content check catches the change.
  const auto* spawn_pol = find_policy(v.inst, os::SysId::Spawn);
  ASSERT_NE(spawn_pol, nullptr);
  const std::uint32_t ls_body = find_as_body(v.inst.image, "/bin/ls");
  ASSERT_NE(ls_body, 0u);

  const std::uint32_t code_addr = v.buf_addr + 68;
  std::vector<std::uint8_t> bytes;
  isa::encode({isa::Op::Movi, 11, 0, ls_body}, bytes);
  isa::encode({isa::Op::Movi, 12, 0, 's'}, bytes);
  isa::encode({isa::Op::Storeb, 12, 11, 5}, bytes);  // "/bin/l s" -> "/bin/s h"
  isa::encode({isa::Op::Movi, 12, 0, 'h'}, bytes);
  isa::encode({isa::Op::Storeb, 12, 11, 6}, bytes);
  isa::encode({isa::Op::Movi, 1, 0, ls_body}, bytes);  // authentic pointer
  isa::encode({isa::Op::Movi, 2, 0, 0}, bytes);
  isa::encode({isa::Op::Movi, 0, 0, spawn_pol->sysno}, bytes);
  isa::encode({isa::Op::Jmp, 0, 0, spawn_pol->call_site - kSetupLen}, bytes);

  auto r = v.sys.machine().run(v.inst.image, {}, v.payload(code_addr, bytes));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadStringArg) << r.violation_detail;
  EXPECT_FALSE(v.spawned_shell());
}

TEST(Attacks, ReplayOfPolicyStateIsDetectedByCounter) {
  // Snapshot lastBlock/lbMAC after the first syscall and restore the stale
  // bytes before a later one: the in-kernel counter nonce makes the stale
  // MAC invalid (§3.2's online memory checker).
  System sys(os::Personality::LinuxSim);
  testing::prepare_fs(sys.kernel().fs());
  auto inst = sys.install(apps::build_tool_cat(os::Personality::LinuxSim));

  std::vector<std::uint8_t> snapshot;
  std::uint32_t lb_ptr = 0;
  int count = 0;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    ++count;
    if (count == 2) {
      // After call #1 the state holds {block1, MAC(block1, 1)}.
      lb_ptr = p.cpu.regs[isa::kRegStatePtr];
      snapshot = p.mem.read_bytes(lb_ptr, policy::kPolicyStateSize);
    } else if (count == 5 && !snapshot.empty()) {
      p.mem.write_bytes(lb_ptr, snapshot);  // replay stale state
    }
  };
  auto r = sys.machine().run(inst.image, {"/lines.txt"});
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadPolicyState) << r.violation_detail;
}

TEST(Attacks, TamperedPolicyDescriptorIsDetected) {
  System sys(os::Personality::LinuxSim);
  testing::prepare_fs(sys.kernel().fs());
  auto inst = sys.install(apps::build_tool_cat(os::Personality::LinuxSim));
  int count = 0;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (++count == 3) {
      // Clear the argument-constraint bits, pretending nothing is checked.
      p.cpu.regs[isa::kRegPolicyDescriptor] &= 3u;
    }
  };
  auto r = sys.machine().run(inst.image, {"/lines.txt"});
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

// ---- Frankenstein (§5.5) ----

binary::Image frankenstein_base(const std::string& name, bool with_getuid) {
  tasm::Assembler a(name);
  a.func("main");
  a.call("sys_getpid");
  if (with_getuid) a.call("sys_getuid");
  a.movi(R0, 0);
  a.ret();
  apps::emit_libc(a, os::Personality::LinuxSim);
  return a.link();
}

struct FrankParts {
  std::uint32_t seq_start = 0;            // text address of B's getuid sequence
  std::vector<std::uint8_t> text_bytes;   // the sequence itself
  std::uint32_t asdata_tail_addr = 0;     // B's .asdata beyond A's
  std::vector<std::uint8_t> asdata_tail;
};

/// Run program A, let it execute its authenticated getpid, then splice in
/// program B's authenticated getuid call (text + .asdata tail) and jump to
/// it -- the §5.5 Frankenstein construction.
vm::RunResult run_frankenstein(bool unique_ids, os::Violation* violation_out) {
  System sys(os::Personality::LinuxSim);
  installer::InstallOptions opts;
  opts.unique_block_ids = unique_ids;
  auto inst_a = sys.install(frankenstein_base("progA", false), opts);
  auto inst_b = sys.install(frankenstein_base("progB", true), opts);

  const auto* getuid_pol = find_policy(inst_b, os::SysId::Getuid);
  EXPECT_NE(getuid_pol, nullptr);
  FrankParts parts;
  parts.seq_start = getuid_pol->call_site - kSetupLen - kMoviLen;
  auto seq = inst_b.image.bytes_at(parts.seq_start, kSetupLen + kMoviLen + 1);
  EXPECT_TRUE(seq.has_value());
  parts.text_bytes = *seq;
  // Splice ALL of B's policy blobs except the live policy-state record (the
  // first 20 bytes, which the kernel has been updating for A's calls).
  const auto* as_b = inst_b.image.find_section(binary::SectionKind::AsData);
  parts.asdata_tail_addr = as_b->vaddr() + policy::kPolicyStateSize;
  parts.asdata_tail.assign(as_b->bytes.begin() + policy::kPolicyStateSize, as_b->bytes.end());

  // Hook: after A's getpid retires (call #1 done), redirect to B's spliced
  // getuid sequence. We patch memory on the SECOND syscall's trap... no:
  // patch right before the second syscall instruction would be too late to
  // redirect. Instead patch memory up front and redirect control after the
  // first syscall completes, detected via instruction count.
  bool redirected = false;
  int syscalls_seen = 0;
  auto& machine = sys.machine();
  machine.kernel().set_tracing(true);
  machine.pre_syscall_hook = [&](os::Process&, std::uint32_t) { ++syscalls_seen; };
  machine.pre_instr_hook = [&](os::Process& p) {
    // Splice and redirect only AFTER A's own authenticated getpid retired
    // (the splice must not clobber live code/blobs A still needs).
    if (!redirected && syscalls_seen == 1) {
      p.mem.write_bytes(parts.seq_start, parts.text_bytes);
      p.mem.write_bytes(parts.asdata_tail_addr, parts.asdata_tail);
      redirected = true;
      p.cpu.pc = parts.seq_start;  // jump to B's authenticated getuid
    }
  };
  auto r = machine.run(inst_a.image);
  if (violation_out != nullptr) {
    // The interesting outcome is whether the SPLICED CALL executed; after it
    // the program falls into byte salad, so the final run state is noise.
    *violation_out = r.violation;
    for (const auto& t : machine.kernel().trace()) {
      if (t.id == os::SysId::Getuid && t.ret >= 0) *violation_out = os::Violation::None;
    }
    if (r.violation == os::Violation::BadPredecessor) {
      *violation_out = os::Violation::BadPredecessor;
    }
  }
  return r;
}

TEST(Attacks, FrankensteinSucceedsWithoutUniqueBlockIds) {
  os::Violation v = os::Violation::BadPredecessor;
  auto r = run_frankenstein(/*unique_ids=*/false, &v);
  // B's getuid predecessor set names the local getpid block id, which
  // collides with A's -- the spliced call is ACCEPTED.
  EXPECT_EQ(v, os::Violation::None) << r.violation_detail;
}

TEST(Attacks, FrankensteinBlockedWithUniqueBlockIds) {
  os::Violation v = os::Violation::None;
  auto r = run_frankenstein(/*unique_ids=*/true, &v);
  EXPECT_EQ(v, os::Violation::BadPredecessor) << r.violation_detail;
  EXPECT_FALSE(r.completed);
}

}  // namespace
}  // namespace asc
