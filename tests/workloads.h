// Shared workload definitions for tests and benches: per-program argv/stdin
// and the filesystem fixtures they expect.
#pragma once

#include <string>
#include <vector>

#include "core/asc.h"

namespace asc::testing {

struct Workload {
  std::string program;               // name from apps::build_all
  std::vector<std::string> argv;
  std::string stdin_data;
};

/// Populate a fresh simulated FS with the files the standard workloads use.
inline void prepare_fs(os::SimFs& fs) {
  auto put = [&](const std::string& path, const std::string& content) {
    auto ino = fs.open("/", path, os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc,
                       0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(content.begin(), content.end()), false);
  };
  std::string gram;
  for (int i = 0; i < 40; ++i) gram += "rule" + std::to_string(i) + ": token EOL\n";
  put("/gram.y", gram);
  put("/in.c", "int main() { return 42; }\n// padding\n" + std::string(2000, 'x') + "\n");
  put("/f.txt", "aaaaaabbbbcccccccccddd\nmore text here\n" + std::string(512, 'q'));
  put("/lines.txt", "pear\napple\nmango\ncherry\nbanana\n");
  put("/etc/vuln.conf", "mode=list\n");
  (void)fs.mkdir("/", "/work", 0755);
  put("/work/one.txt", "first file body\n");
  put("/work/two.txt", "second, longer file body with more bytes\n");
  put("/work/three.txt", std::string(300, 'z') + "\n");
}

/// The standard run for each program (kept small so tests are fast; benches
/// scale the numeric arguments up).
inline std::vector<Workload> standard_workloads() {
  return {
      {"bison", {"/gram.y", "/out.tab.c", "-v"}, ""},
      {"calc",
       {},
       "add 3 4\nmul 6 7\nsub 10 2\ndiv 9 3\nmod 17 5\nsave\nload\nperm\nlink\ncd\n"
       "dir\ntime\nbig\nsys\ndupfd\npipe\nnet\nmk\ndel\n"},
      {"screen", {"main"}, ""},
      {"gzip-spec", {"4"}, ""},
      {"crafty", {"20000"}, ""},
      {"mcf", {"40"}, ""},
      {"vpr", {"20000"}, ""},
      {"twolf", {"20000"}, ""},
      {"gcc", {"/in.c", "/out.o"}, ""},
      {"vortex", {"3000"}, ""},
      {"pyramid", {"150"}, ""},
      {"gzip", {"/f.txt"}, ""},
      {"tar", {"c", "/arch.tar", "/work"}, ""},
      {"cat", {"/lines.txt", "/in.c"}, ""},
      {"cp", {"/lines.txt", "/copy.txt"}, ""},
      {"rm", {"/copy.txt", "/absent.txt"}, ""},
      {"mv", {"/lines.txt", "/moved.txt"}, ""},
      {"chmod", {"384", "/in.c"}, ""},
      {"mkdir", {"/newdir", "/newdir2"}, ""},
      {"sort", {"/lines.txt"}, ""},
      {"vuln_echo", {}, "/etc\n"},
  };
}

}  // namespace asc::testing
