// Edge cases of the kernel-side checker (§3.4): hostile pointers, oversized
// lengths, malformed blobs -- the places where a naive checker would crash
// or stall the kernel (the §3.2 denial-of-service concern).
#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "policy/authstring.h"
#include "policy/policy.h"
#include "util/hex.h"
#include "tasm/assembler.h"
#include "workloads.h"

namespace asc {
namespace {

struct Harness {
  System sys{os::Personality::LinuxSim};
  installer::InstallResult inst;

  Harness() {
    testing::prepare_fs(sys.kernel().fs());
    inst = sys.install(apps::build_tool_cat(os::Personality::LinuxSim));
  }

  /// Run with a one-shot register/memory mutation at syscall `n`.
  vm::RunResult run_with(int n, std::function<void(os::Process&)> mutate) {
    int count = 0;
    sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
      if (++count == n) mutate(p);
    };
    return sys.machine().run(inst.image, {"/lines.txt"});
  }
};

TEST(CheckerEdge, NullExtraArgumentsDoNotCrashTheKernel) {
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    for (isa::Reg reg = 6; reg <= 10; ++reg) p.cpu.regs[reg] = 0;
  });
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation, os::Violation::None);
}

TEST(CheckerEdge, PointersJustBelowAddressSpaceAreRejected) {
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    p.cpu.regs[isa::kRegPredSet] = binary::kAddressSpaceBase + 2;  // header underflows
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, PointersAtAddressSpaceEndAreRejected) {
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    p.cpu.regs[isa::kRegCallMac] = binary::kAddressSpaceEnd - 4;  // 16B read overflows
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, OversizedAsLengthIsRejectedNotScanned) {
  // An attacker rewrites an AS length field to a huge value: the kernel
  // must refuse rather than MAC megabytes of memory (denial of service).
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    const std::uint32_t body = p.cpu.regs[isa::kRegPredSet];
    p.mem.w32(body - 20, 0x7fffffff);
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, TruncatedPredSetBlobIsRejected) {
  // Shrink the claimed length: the header no longer matches the call MAC.
  Harness h;
  auto r = h.run_with(3, [](os::Process& p) {
    const std::uint32_t body = p.cpu.regs[isa::kRegPredSet];
    p.mem.w32(body - 20, 4);
  });
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation, os::Violation::None);
}

TEST(CheckerEdge, SwappingTwoAuthenticStringsIsCaught) {
  // Both strings have valid MACs; using one where the policy names the
  // other must fail, because the encoded call binds the ADDRESS.
  System sys(os::Personality::LinuxSim);
  testing::prepare_fs(sys.kernel().fs());
  auto inst = sys.install(apps::build_vuln_echo(os::Personality::LinuxSim));
  // Find the two AS bodies: "/etc/vuln.conf" (config open) and "/bin/ls".
  const auto* sec = inst.image.find_section(binary::SectionKind::AsData);
  auto body_of = [&](const std::string& s) -> std::uint32_t {
    for (std::size_t i = 20; i + s.size() <= sec->bytes.size(); ++i) {
      if (std::equal(s.begin(), s.end(), sec->bytes.begin() + static_cast<std::ptrdiff_t>(i)) &&
          util::get_u32(sec->bytes, i - 20) == s.size()) {
        return sec->vaddr() + static_cast<std::uint32_t>(i);
      }
    }
    return 0;
  };
  const std::uint32_t conf = body_of("/etc/vuln.conf");
  ASSERT_NE(conf, 0u);
  const std::uint16_t spawn_no =
      *os::syscall_number(os::Personality::LinuxSim, os::SysId::Spawn);
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (p.cpu.regs[0] == spawn_no) p.cpu.regs[1] = conf;  // authentic, wrong string
  };
  auto r = sys.machine().run(inst.image, {}, "x\n");
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, BlockIdFromAnotherSiteOfSameProgramIsCaught) {
  // Claiming a different (valid!) block id of the same program changes the
  // encoded call -> call MAC mismatch. The id cannot be mixed and matched.
  Harness h;
  std::uint32_t first_block = 0;
  auto r = h.run_with(2, [&](os::Process& p) {
    first_block = p.cpu.regs[isa::kRegBlockId];
    p.cpu.regs[isa::kRegBlockId] = first_block ^ 1;
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, CheckingCostIsChargedToTheProcess) {
  // The checker must account its own cycles (MAC work) to the calling
  // process -- this is what every performance table measures.
  System off(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  System on(os::Personality::LinuxSim);
  testing::prepare_fs(off.kernel().fs());
  testing::prepare_fs(on.kernel().fs());
  auto img = apps::build_tool_cat(os::Personality::LinuxSim);
  auto r0 = off.machine().run(img, {"/lines.txt"});
  auto r1 = on.machine().run(on.install(img).image, {"/lines.txt"});
  ASSERT_TRUE(r0.completed);
  ASSERT_TRUE(r1.completed);
  const double per_call =
      static_cast<double>(r1.cycles - r0.cycles) / static_cast<double>(r1.syscalls);
  EXPECT_GT(per_call, 2000.0) << "checking cannot be nearly free";
  EXPECT_LT(per_call, 20000.0) << "checking cost out of calibrated range";
}

TEST(CheckerEdge, AsBodyPointerBelowHeaderSizeIsRejected) {
  // A body pointer smaller than the 20-byte header cannot have a header in
  // front of it; the subtraction must not underflow into a bogus address.
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    p.cpu.regs[isa::kRegPredSet] = policy::kAsHeaderSize - 4;
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
  EXPECT_NE(r.violation_detail.find("unreadable"), std::string::npos);
}

TEST(CheckerEdge, AsLengthAtMaximumIsScannedNotRejected) {
  // len == kAsMaxLength is the last ACCEPTED length: the header passes the
  // plausibility check and the forgery is caught by the call MAC instead.
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    const std::uint32_t body = p.cpu.regs[isa::kRegPredSet];
    p.mem.w32(body - policy::kAsHeaderSize, policy::kAsMaxLength);
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
  EXPECT_NE(r.violation_detail.find("call MAC mismatch"), std::string::npos);
}

TEST(CheckerEdge, AsLengthJustOverMaximumIsRejectedUpFront) {
  // len == kAsMaxLength + 1 must be refused before any MAC work (§3.2
  // denial-of-service guard), yielding the "unreadable header" path.
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    const std::uint32_t body = p.cpu.regs[isa::kRegPredSet];
    p.mem.w32(body - policy::kAsHeaderSize, policy::kAsMaxLength + 1);
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
  EXPECT_NE(r.violation_detail.find("unreadable"), std::string::npos);
}

TEST(CheckerEdge, AsHeaderStraddlingEndOfMemoryIsRejected) {
  // Body pointer just past the end: the implied header starts inside the
  // address space but runs off it. Reading it must not fault the host.
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    p.cpu.regs[isa::kRegPredSet] = binary::kAddressSpaceEnd + 4;
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, AsBodyPointerFarAboveEndOfMemoryIsRejected) {
  // Regression test for an in_range() underflow: for pointers far above the
  // end, (end - addr) wrapped and the bounds check incorrectly passed.
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    p.cpu.regs[isa::kRegPredSet] = 0xfffffff0u;
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, PolicyStateReplayedFromAnotherProcessIsCaught) {
  // Capture the {lastBlock, lbMAC} record from one process's address space
  // and graft it into a fresh process at a different point in its syscall
  // history. The MAC is authentic, but its counter nonce belongs to the
  // donor -- the online memory checker must refuse it (§3.4 anti-replay).
  std::vector<std::uint8_t> donor;
  {
    Harness a;
    // Harvest eager-protocol bytes: with the shadow on, the donor's guest
    // record lags (lazy write-back) and would coincide with the victim's own
    // stale record, making the graft a no-op instead of a replay.
    a.sys.kernel().set_policy_shadow(false);
    int count = 0;
    a.sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
      if (++count == 3 && p.mem.in_range(p.cpu.regs[isa::kRegStatePtr],
                                         policy::kPolicyStateSize)) {
        donor = p.mem.read_bytes(p.cpu.regs[isa::kRegStatePtr], policy::kPolicyStateSize);
      }
    };
    auto r = a.sys.machine().run(a.inst.image, {"/lines.txt"});
    ASSERT_TRUE(r.completed);
    ASSERT_EQ(donor.size(), policy::kPolicyStateSize);
  }
  Harness b;
  auto r = b.run_with(2, [&](os::Process& p) {
    p.mem.write_bytes(p.cpu.regs[isa::kRegStatePtr], donor);
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadPolicyState);
  EXPECT_NE(r.violation_detail.find("replayed"), std::string::npos);
}

TEST(CheckerEdge, EnforcementRequiresAKey) {
  os::Kernel kernel(os::Personality::LinuxSim);
  kernel.set_enforcement(os::Enforcement::Asc);
  os::Process p;
  p.cpu.regs[0] = 20;  // getpid
  EXPECT_THROW(kernel.on_syscall(p, 0x8048000), Error);
}

}  // namespace
}  // namespace asc
