// Edge cases of the kernel-side checker (§3.4): hostile pointers, oversized
// lengths, malformed blobs -- the places where a naive checker would crash
// or stall the kernel (the §3.2 denial-of-service concern).
#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "util/hex.h"
#include "tasm/assembler.h"
#include "workloads.h"

namespace asc {
namespace {

struct Harness {
  System sys{os::Personality::LinuxSim};
  installer::InstallResult inst;

  Harness() {
    testing::prepare_fs(sys.kernel().fs());
    inst = sys.install(apps::build_tool_cat(os::Personality::LinuxSim));
  }

  /// Run with a one-shot register/memory mutation at syscall `n`.
  vm::RunResult run_with(int n, std::function<void(os::Process&)> mutate) {
    int count = 0;
    sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
      if (++count == n) mutate(p);
    };
    return sys.machine().run(inst.image, {"/lines.txt"});
  }
};

TEST(CheckerEdge, NullExtraArgumentsDoNotCrashTheKernel) {
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    for (isa::Reg reg = 6; reg <= 10; ++reg) p.cpu.regs[reg] = 0;
  });
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation, os::Violation::None);
}

TEST(CheckerEdge, PointersJustBelowAddressSpaceAreRejected) {
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    p.cpu.regs[isa::kRegPredSet] = binary::kAddressSpaceBase + 2;  // header underflows
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, PointersAtAddressSpaceEndAreRejected) {
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    p.cpu.regs[isa::kRegCallMac] = binary::kAddressSpaceEnd - 4;  // 16B read overflows
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, OversizedAsLengthIsRejectedNotScanned) {
  // An attacker rewrites an AS length field to a huge value: the kernel
  // must refuse rather than MAC megabytes of memory (denial of service).
  Harness h;
  auto r = h.run_with(2, [](os::Process& p) {
    const std::uint32_t body = p.cpu.regs[isa::kRegPredSet];
    p.mem.w32(body - 20, 0x7fffffff);
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, TruncatedPredSetBlobIsRejected) {
  // Shrink the claimed length: the header no longer matches the call MAC.
  Harness h;
  auto r = h.run_with(3, [](os::Process& p) {
    const std::uint32_t body = p.cpu.regs[isa::kRegPredSet];
    p.mem.w32(body - 20, 4);
  });
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation, os::Violation::None);
}

TEST(CheckerEdge, SwappingTwoAuthenticStringsIsCaught) {
  // Both strings have valid MACs; using one where the policy names the
  // other must fail, because the encoded call binds the ADDRESS.
  System sys(os::Personality::LinuxSim);
  testing::prepare_fs(sys.kernel().fs());
  auto inst = sys.install(apps::build_vuln_echo(os::Personality::LinuxSim));
  // Find the two AS bodies: "/etc/vuln.conf" (config open) and "/bin/ls".
  const auto* sec = inst.image.find_section(binary::SectionKind::AsData);
  auto body_of = [&](const std::string& s) -> std::uint32_t {
    for (std::size_t i = 20; i + s.size() <= sec->bytes.size(); ++i) {
      if (std::equal(s.begin(), s.end(), sec->bytes.begin() + static_cast<std::ptrdiff_t>(i)) &&
          util::get_u32(sec->bytes, i - 20) == s.size()) {
        return sec->vaddr() + static_cast<std::uint32_t>(i);
      }
    }
    return 0;
  };
  const std::uint32_t conf = body_of("/etc/vuln.conf");
  ASSERT_NE(conf, 0u);
  const std::uint16_t spawn_no =
      *os::syscall_number(os::Personality::LinuxSim, os::SysId::Spawn);
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (p.cpu.regs[0] == spawn_no) p.cpu.regs[1] = conf;  // authentic, wrong string
  };
  auto r = sys.machine().run(inst.image, {}, "x\n");
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, BlockIdFromAnotherSiteOfSameProgramIsCaught) {
  // Claiming a different (valid!) block id of the same program changes the
  // encoded call -> call MAC mismatch. The id cannot be mixed and matched.
  Harness h;
  std::uint32_t first_block = 0;
  auto r = h.run_with(2, [&](os::Process& p) {
    first_block = p.cpu.regs[isa::kRegBlockId];
    p.cpu.regs[isa::kRegBlockId] = first_block ^ 1;
  });
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

TEST(CheckerEdge, CheckingCostIsChargedToTheProcess) {
  // The checker must account its own cycles (MAC work) to the calling
  // process -- this is what every performance table measures.
  System off(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  System on(os::Personality::LinuxSim);
  testing::prepare_fs(off.kernel().fs());
  testing::prepare_fs(on.kernel().fs());
  auto img = apps::build_tool_cat(os::Personality::LinuxSim);
  auto r0 = off.machine().run(img, {"/lines.txt"});
  auto r1 = on.machine().run(on.install(img).image, {"/lines.txt"});
  ASSERT_TRUE(r0.completed);
  ASSERT_TRUE(r1.completed);
  const double per_call =
      static_cast<double>(r1.cycles - r0.cycles) / static_cast<double>(r1.syscalls);
  EXPECT_GT(per_call, 2000.0) << "checking cannot be nearly free";
  EXPECT_LT(per_call, 20000.0) << "checking cost out of calibrated range";
}

TEST(CheckerEdge, EnforcementRequiresAKey) {
  os::Kernel kernel(os::Personality::LinuxSim);
  kernel.set_enforcement(os::Enforcement::Asc);
  os::Process p;
  p.cpu.regs[0] = 20;  // getpid
  EXPECT_THROW(kernel.on_syscall(p, 0x8048000), Error);
}

}  // namespace
}  // namespace asc
