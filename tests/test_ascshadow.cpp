// The policy-state shadow (os/ascshadow.h): the control-flow fast path must
// skip the per-call state MACs without weakening the §3.2 online memory
// checker. Entries exist only after a full slow-path verification; any guest
// write into the watched record writes the trusted bytes back FIRST and
// drops the entry; key rotation, teardown, and runtime disabling all flush;
// one process's shadow can never serve another.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "fault/campaign.h"
#include "isa/isa.h"
#include "os/ascshadow.h"
#include "policy/policy.h"
#include "tasm/assembler.h"
#include "util/executor.h"
#include "workloads.h"

namespace asc {
namespace {

using os::AscShadow;

const auto kPers = os::Personality::LinuxSim;
constexpr std::uint32_t kStateSize = policy::kPolicyStateSize;

// Recording harness for the pure shadow semantics: logs every hook call in
// order, so tests can assert not just *that* write-back happens but that it
// happens after the range is unwatched (the re-entrancy guarantee).
struct HookLog {
  enum class Kind { Watch, Unwatch, WriteBack };
  struct Event {
    Kind kind;
    std::uint32_t addr;  // state_ptr for WriteBack
    std::uint32_t len;   // last_block for WriteBack
  };
  std::vector<Event> events;

  void wire(AscShadow& shadow, int pid) {
    shadow.set_hooks(
        pid, [this](std::uint32_t a, std::uint32_t l) { events.push_back({Kind::Watch, a, l}); },
        [this](std::uint32_t a, std::uint32_t l) { events.push_back({Kind::Unwatch, a, l}); },
        [this](const AscShadow::Entry& e) {
          events.push_back({Kind::WriteBack, e.state_ptr, e.last_block});
        });
  }
  int count(Kind k) const {
    int n = 0;
    for (const auto& e : events) n += e.kind == k ? 1 : 0;
    return n;
  }
};

// ---- pure shadow semantics ----

TEST(AscShadowUnit, FindRequiresTheExactStatePointer) {
  AscShadow shadow;
  EXPECT_EQ(shadow.find(1, 0x1000), nullptr);  // cold: miss
  shadow.install(1, 0x1000, 7, 3);
  AscShadow::Entry* e = shadow.find(1, 0x1000);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->last_block, 7u);
  EXPECT_EQ(e->counter, 3u);
  EXPECT_FALSE(e->dirty);
  // A repointed lbPtr must never be served by the old record.
  EXPECT_EQ(shadow.find(1, 0x2000), nullptr);
  EXPECT_EQ(shadow.stats().hits, 1u);
  EXPECT_EQ(shadow.stats().misses, 2u);
  EXPECT_EQ(shadow.stats().installs, 1u);
}

TEST(AscShadowUnit, EntriesArePidIsolated) {
  AscShadow shadow;
  shadow.install(1, 0x1000, 7, 3);
  // Identical state pointer, different process: serving pid 1's verified
  // control-flow state to pid 2 would let pid 2 ride on pid 1's history.
  EXPECT_EQ(shadow.find(2, 0x1000), nullptr);
  shadow.invalidate_write(2, 0x1000, kStateSize);  // pid 2's address space
  EXPECT_NE(shadow.find(1, 0x1000), nullptr);
  EXPECT_EQ(shadow.stats().invalidations, 0u);
}

TEST(AscShadowUnit, InvalidationUnwatchesBeforeWritingBackDirtyEntries) {
  AscShadow shadow;
  HookLog log;
  log.wire(shadow, 1);
  shadow.install(1, 0x1000, 7, 3);
  ASSERT_EQ(log.count(HookLog::Kind::Watch), 1);
  EXPECT_EQ(log.events.back().addr, 0x1000u);
  EXPECT_EQ(log.events.back().len, kStateSize);

  // Hits advance the shadow only; the guest record is now stale (dirty).
  AscShadow::Entry* e = shadow.find(1, 0x1000);
  ASSERT_NE(e, nullptr);
  e->last_block = 9;
  e->counter = 4;
  e->dirty = true;

  shadow.invalidate_write(1, 0x1000 + kStateSize - 1, 1);  // last byte overlaps
  EXPECT_FALSE(shadow.has(1));
  EXPECT_EQ(shadow.stats().invalidations, 1u);
  EXPECT_EQ(shadow.stats().write_backs, 1u);
  // Ordering: the range is unwatched BEFORE the write-back runs, so the
  // write-back's own guest stores cannot re-enter the invalidation path.
  ASSERT_EQ(log.events.size(), 3u);
  EXPECT_EQ(log.events[1].kind, HookLog::Kind::Unwatch);
  EXPECT_EQ(log.events[2].kind, HookLog::Kind::WriteBack);
  EXPECT_EQ(log.events[2].addr, 0x1000u);
  EXPECT_EQ(log.events[2].len, 9u);  // the ADVANCED last_block, not the installed one
}

TEST(AscShadowUnit, CleanEntriesDropWithoutWriteBack) {
  AscShadow shadow;
  HookLog log;
  log.wire(shadow, 1);
  shadow.install(1, 0x1000, 7, 3);  // dirty = false: shadow and guest agree
  shadow.invalidate_write(1, 0x1000, 4);
  EXPECT_FALSE(shadow.has(1));
  EXPECT_EQ(shadow.stats().write_backs, 0u) << "clean record owes no CMAC";
  EXPECT_EQ(log.count(HookLog::Kind::Unwatch), 1);
}

TEST(AscShadowUnit, NonOverlappingWritesAreIgnored) {
  AscShadow shadow;
  shadow.install(1, 0x1000, 7, 3);
  shadow.invalidate_write(1, 0x1000 - 4, 4);          // ends exactly at the record
  shadow.invalidate_write(1, 0x1000 + kStateSize, 8);  // starts exactly past it
  EXPECT_TRUE(shadow.has(1));
  EXPECT_EQ(shadow.stats().invalidations, 0u);
}

TEST(AscShadowUnit, InstallReplacesThePriorEntryThroughTheFullDropPath) {
  AscShadow shadow;
  HookLog log;
  log.wire(shadow, 1);
  shadow.install(1, 0x1000, 7, 3);
  AscShadow::Entry* e = shadow.find(1, 0x1000);
  ASSERT_NE(e, nullptr);
  e->dirty = true;
  // Repointed lbPtr: the old record must be unwatched and written back, or
  // the guest keeps a stale un-MACed record plus a leaked watch range.
  shadow.install(1, 0x2000, 8, 4);
  EXPECT_EQ(shadow.size(), 1u);
  EXPECT_EQ(shadow.find(1, 0x1000), nullptr);
  EXPECT_NE(shadow.find(1, 0x2000), nullptr);
  EXPECT_EQ(log.count(HookLog::Kind::Unwatch), 1);
  EXPECT_EQ(log.count(HookLog::Kind::WriteBack), 1);
  EXPECT_EQ(log.count(HookLog::Kind::Watch), 2);
}

TEST(AscShadowUnit, FlushAllWritesBackAndKeepsHooks) {
  AscShadow shadow;
  HookLog log1, log2;
  log1.wire(shadow, 1);
  log2.wire(shadow, 2);
  shadow.install(1, 0x1000, 7, 3);
  shadow.install(2, 0x3000, 9, 5);
  shadow.find(1, 0x1000)->dirty = true;

  shadow.flush_all();  // key rotation / runtime disable
  EXPECT_EQ(shadow.size(), 0u);
  EXPECT_EQ(log1.count(HookLog::Kind::WriteBack), 1);
  EXPECT_EQ(log2.count(HookLog::Kind::WriteBack), 0);  // pid 2 was clean
  EXPECT_EQ(log1.count(HookLog::Kind::Unwatch), 1);
  EXPECT_EQ(log2.count(HookLog::Kind::Unwatch), 1);
  // The processes are still alive: hooks survive so re-verification can
  // re-install without re-wiring.
  EXPECT_TRUE(shadow.has_hooks(1));
  EXPECT_TRUE(shadow.has_hooks(2));
}

TEST(AscShadowUnit, FlushPidDropsEntryAndHooks) {
  AscShadow shadow;
  HookLog log;
  log.wire(shadow, 1);
  shadow.install(1, 0x1000, 7, 3);
  shadow.find(1, 0x1000)->dirty = true;
  shadow.flush_pid(1);  // teardown: the Memory reference dies with the pid
  EXPECT_FALSE(shadow.has(1));
  EXPECT_FALSE(shadow.has_hooks(1));
  EXPECT_EQ(log.count(HookLog::Kind::WriteBack), 1);
  EXPECT_EQ(log.count(HookLog::Kind::Unwatch), 1);
  shadow.flush_pid(1);  // idempotent on an absent pid
  EXPECT_EQ(shadow.stats().invalidations, 1u);
}

// ---- end-to-end: the fast path on real guests ----

vm::RunResult run_cat(System& sys) {
  testing::prepare_fs(sys.kernel().fs());
  const auto inst = sys.install(apps::build_tool_cat(kPers));
  return sys.machine().run(inst.image, {"/lines.txt", "/in.c"});
}

TEST(AscShadowRun, RepeatedCallsHitAndBehaviorIsIdentical) {
  System shadowed(kPers);
  const auto rs = run_cat(shadowed);
  ASSERT_TRUE(rs.completed) << rs.violation_detail;
  const auto& st = shadowed.kernel().shadow_stats();
  EXPECT_GT(st.hits, 0u) << "cat's loop repeats control-flow checks; they must hit";
  EXPECT_GT(st.installs, 0u);
  EXPECT_GT(st.hit_rate(), 0.0);
  // Teardown flushed the pid: no entry survives the run.
  EXPECT_EQ(shadowed.kernel().shadow().size(), 0u);
  EXPECT_GE(st.write_backs, 1u) << "the dirty record owes a write-back at teardown";

  System eager(kPers);
  eager.kernel().set_policy_shadow(false);
  const auto re = run_cat(eager);
  ASSERT_TRUE(re.completed) << re.violation_detail;

  // The shadow may change cycle accounting, nothing else.
  EXPECT_EQ(rs.exit_code, re.exit_code);
  EXPECT_EQ(rs.stdout_data, re.stdout_data);
  EXPECT_EQ(rs.stderr_data, re.stderr_data);
  EXPECT_EQ(rs.syscalls, re.syscalls);
  EXPECT_LT(rs.cycles, re.cycles) << "shadow hits must charge less than two CMACs";
  EXPECT_EQ(eager.kernel().shadow_stats().hits, 0u);
  EXPECT_EQ(eager.kernel().shadow_stats().misses, 0u);
}

TEST(AscShadowRun, GuestRecordLagsUntilAWriteForcesWriteBack) {
  System sys(kPers);
  int calls = 0;
  bool saw_dirty = false;
  std::size_t watches_before = 0;
  std::size_t watches_after = 0;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (++calls != 8) return;
    const std::uint32_t lb = p.cpu.regs[isa::kRegStatePtr];
    if (!p.mem.in_range(lb, kStateSize)) return;
    const auto* e = sys.kernel().shadow().peek(p.pid);
    ASSERT_NE(e, nullptr) << "seven verified calls in, the pid must be shadowed";
    saw_dirty = e->dirty;
    const std::uint32_t trusted_block = e->last_block;
    // Same-value touch: the write watch fires BEFORE the byte changes, so
    // the trusted record is materialized first and the (stale) byte lands
    // on top of it.
    watches_before = p.mem.watch_count();
    p.mem.w8(lb, p.mem.r8(lb));
    watches_after = p.mem.watch_count();
    // Repair the one touched byte with the kernel's trusted lastBlock: the
    // record is now exactly what the eager protocol would have left, so the
    // slow path re-verifies it and the run completes.
    p.mem.w32(lb, trusted_block);
    EXPECT_FALSE(sys.kernel().shadow().has(p.pid)) << "the write must drop the entry";
  };
  const auto r = run_cat(sys);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  EXPECT_TRUE(saw_dirty) << "hits alone must leave the guest record stale";
  EXPECT_LT(watches_after, watches_before) << "the dropped entry must return its range";
  EXPECT_GE(sys.kernel().shadow_stats().write_backs, 1u);
  EXPECT_GE(sys.kernel().shadow_stats().invalidations, 1u);
}

TEST(AscShadowRun, KeyRotationFlushesTheShadowMidRun) {
  System sys(kPers);
  int calls = 0;
  bool rotated = false;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (++calls != 8 || !sys.kernel().shadow().has(p.pid)) return;
    const std::size_t watches = p.mem.watch_count();
    // Rotation writes dirty records back under the OLD key before the new
    // key lands; rotating to the same key keeps the guest images valid, so
    // the run must continue -- through the slow path, record re-verified.
    sys.kernel().set_key(test_key());
    rotated = true;
    EXPECT_EQ(sys.kernel().shadow().size(), 0u);
    EXPECT_LT(p.mem.watch_count(), watches) << "flushed entries must unwatch";
    EXPECT_EQ(sys.kernel().call_cache().size(), 0u) << "rotation clears the cache too";
  };
  const auto r = run_cat(sys);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  EXPECT_TRUE(rotated);
  EXPECT_GE(sys.kernel().shadow_stats().write_backs, 1u);
}

TEST(AscShadowRun, DisablingMidRunResumesTheEagerProtocolCoherently) {
  System sys(kPers);
  int calls = 0;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (++calls != 8 || !sys.kernel().policy_shadow()) return;
    (void)p;
    sys.kernel().set_policy_shadow(false);
    EXPECT_EQ(sys.kernel().shadow().size(), 0u);
  };
  const auto r = run_cat(sys);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  const auto& st = sys.kernel().shadow_stats();
  EXPECT_GT(st.hits, 0u) << "the fast path ran before the switch";
  EXPECT_GE(st.write_backs, 1u) << "disabling must materialize the dirty record";
}

// The paper's Table 4 getpid shape: with the verified-call cache AND the
// shadow, the residual per-call work is a cache byte-compare plus a shadow
// transition -- no CMAC at all -- so the authenticated overhead must land
// well under the ISSUE's 60% bar (the cached-only checker sits at ~114%).
TEST(AscShadowRun, GetpidOverheadDropsUnderSixtyPercent) {
  constexpr std::uint32_t kIters = 2000;
  auto build_loop = [&]() {
    using namespace asc::apps;
    tasm::Assembler a("pidloop");
    a.func("main");
    a.subi(SP, 4);
    a.movi(R11, kIters);
    a.store(SP, 0, R11);
    a.label(".loop");
    a.load(R11, SP, 0);
    a.cmpi(R11, 0);
    a.jz(".done");
    a.call("sys_getpid");
    a.load(R11, SP, 0);
    a.subi(R11, 1);
    a.store(SP, 0, R11);
    a.jmp(".loop");
    a.label(".done");
    a.addi(SP, 4);
    a.movi(R0, 0);
    a.ret();
    emit_libc(a, kPers);
    return a.link();
  };

  auto cycles = [&](os::Enforcement mode, bool shadow_on) -> double {
    System sys(kPers, test_key(), mode);
    sys.kernel().set_policy_shadow(shadow_on);
    binary::Image img = build_loop();
    if (mode == os::Enforcement::Asc) img = sys.install(img).image;
    const auto r = sys.machine().run(img);
    EXPECT_TRUE(r.completed) << r.violation_detail;
    return static_cast<double>(r.cycles);
  };

  const double base = cycles(os::Enforcement::Off, false);
  const double auth_cached = cycles(os::Enforcement::Asc, false);
  const double auth_shadow = cycles(os::Enforcement::Asc, true);
  ASSERT_GT(base, 0.0);
  const double pct_cached = (auth_cached - base) / base * 100.0;
  const double pct_shadow = (auth_shadow - base) / base * 100.0;
  EXPECT_LT(pct_shadow, 60.0) << "cached-only " << pct_cached << "%, with shadow "
                              << pct_shadow << "%";
  EXPECT_LT(pct_shadow, pct_cached) << "the shadow must strictly improve on the cache";
}

// ---- parallel campaign determinism with shadows on ----
// Mutated campaign executions run with the shadow at its default (on); the
// verdict stream -- including modeled cycles, which now contain lazy
// write-back charges -- must be byte-identical at any job count.
TEST(AscShadowRun, CampaignVerdictsAreIdenticalAcrossJobCounts) {
  fault::GuestProgram g;
  g.name = "cat";
  g.image = apps::build_tool_cat(kPers);
  g.argv = {"/lines.txt", "/in.c"};
  g.prepare_fs = testing::prepare_fs;

  auto run_with_jobs = [&](int jobs) {
    util::Executor ex(jobs);
    fault::CampaignConfig cfg;
    cfg.seed = 31337;
    cfg.runs_per_class = 4;
    cfg.classes = {fault::MutationClass::PolicyStateCorrupt, fault::MutationClass::CrossReplay,
                   fault::MutationClass::ShadowToctou};
    cfg.cycle_limit = 200'000'000;
    cfg.executor = &ex;
    return fault::Campaign(cfg).run(g);
  };

  const fault::CampaignResult r1 = run_with_jobs(1);
  const fault::CampaignResult r2 = run_with_jobs(2);
  const fault::CampaignResult r8 = run_with_jobs(8);
  EXPECT_GT(r1.detected, 0);
  for (const fault::CampaignResult* other : {&r2, &r8}) {
    ASSERT_EQ(r1.verdicts.size(), other->verdicts.size());
    for (std::size_t i = 0; i < r1.verdicts.size(); ++i) {
      const auto& a = r1.verdicts[i];
      const auto& b = other->verdicts[i];
      EXPECT_EQ(a.spec.trigger_call, b.spec.trigger_call);
      EXPECT_EQ(a.spec.seed, b.spec.seed);
      EXPECT_EQ(a.outcome, b.outcome);
      EXPECT_EQ(a.violation, b.violation);
      EXPECT_EQ(a.mutation, b.mutation);
      EXPECT_EQ(a.cycles, b.cycles) << "write-back cycle charges diverged at " << i;
      EXPECT_EQ(a.detail, b.detail);
    }
  }
}

}  // namespace
}  // namespace asc
