// Differential tests for the execution engines: the predecoded threaded-code
// engine (vm/engine.cpp) must be byte-identical to the reference
// decode-and-switch interpreter (vm/cpu.cpp) in every architecturally
// visible way -- final registers-derived results, stdout, modeled cycles,
// instruction/syscall counts, violations, cycle-limit behavior -- across
// superinstruction fusion on/off and across AES backends (scratch oracle vs
// AES-NI when the host has it).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "tasm/assembler.h"
#include "util/error.h"
#include "vm/cpu.h"

namespace asc {
namespace {

using apps::R0;
using apps::R1;
using apps::R2;
using apps::R3;
using apps::R4;
using apps::R5;
using apps::R11;
using apps::R12;
using apps::R13;
using apps::R14;

/// Restores the process-wide AES backend policy on scope exit.
class BackendPolicyGuard {
 public:
  explicit BackendPolicyGuard(crypto::Aes128::BackendPolicy policy)
      : saved_(crypto::Aes128::backend_policy()) {
    crypto::Aes128::set_backend_policy(policy);
  }
  ~BackendPolicyGuard() { crypto::Aes128::set_backend_policy(saved_); }
  BackendPolicyGuard(const BackendPolicyGuard&) = delete;
  BackendPolicyGuard& operator=(const BackendPolicyGuard&) = delete;

 private:
  crypto::Aes128::BackendPolicy saved_;
};

/// The architecturally visible outcome of a run; everything here must match
/// across dispatch modes and AES backends.
struct Outcome {
  bool completed = false;
  int exit_code = 0;
  os::Violation violation = os::Violation::None;
  std::string violation_detail;
  std::string stdout_data;
  std::string stderr_data;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t syscalls = 0;
  bool cycle_limit_hit = false;

  bool operator==(const Outcome&) const = default;
};

Outcome outcome_of(const vm::RunResult& r) {
  return Outcome{r.completed,    r.exit_code, r.violation,     r.violation_detail,
                 r.stdout_data,  r.stderr_data, r.cycles,      r.instructions,
                 r.syscalls,     r.cycle_limit_hit};
}

struct EngineConfig {
  const char* name;
  vm::DispatchMode dispatch;
  bool fuse;
  crypto::Aes128::BackendPolicy aes;
};

std::vector<EngineConfig> engine_configs() {
  using crypto::Aes128;
  std::vector<EngineConfig> cfgs = {
      {"switch/scratch", vm::DispatchMode::Switch, true, Aes128::BackendPolicy::ForceScratch},
      {"threaded+fuse/scratch", vm::DispatchMode::Threaded, true,
       Aes128::BackendPolicy::ForceScratch},
      {"threaded-nofuse/scratch", vm::DispatchMode::Threaded, false,
       Aes128::BackendPolicy::ForceScratch},
  };
  if (Aes128::aesni_supported()) {
    cfgs.push_back({"switch/aesni", vm::DispatchMode::Switch, true, Aes128::BackendPolicy::Auto});
    cfgs.push_back(
        {"threaded+fuse/aesni", vm::DispatchMode::Threaded, true, Aes128::BackendPolicy::Auto});
  }
  return cfgs;
}

/// Generate a seeded random-but-terminating guest program. The body is a
/// bounded loop of straight-line segments with forward conditional branches,
/// balanced push/pop pairs, loads/stores into a scratch buffer, helper
/// calls, and deliberately adjacent fusible pairs (cmp+jcc, load+addi,
/// push+call). The epilogue folds every live register and a few buffer
/// words into a checksum and prints it, so any divergence in any register,
/// flag, or memory byte shows up in stdout and the exit code.
binary::Image random_program(std::uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&](std::uint32_t bound) { return static_cast<std::uint32_t>(rng() % bound); };
  const std::vector<isa::Reg> pool = {R0, R1, R2, R3, R11, R12, R13, R14};
  auto reg = [&] { return pool[pick(static_cast<std::uint32_t>(pool.size()))]; };

  tasm::Assembler a("diff");

  a.func("mix");  // r0 = hash-mix of r1 (clobbers r0 only)
  a.mov(R0, R1);
  a.muli(R0, 2654435761u);
  a.xori(R0, 0x9e3779b9u);
  a.ret();

  a.func("main");
  a.lea(R4, "buf");
  a.movi(R5, 2 + pick(4));  // outer loop trip count
  for (const isa::Reg r : pool) a.movi(r, rng());

  int label_id = 0;
  a.label(".loop");
  const int segments = 3 + static_cast<int>(pick(4));
  for (int seg = 0; seg < segments; ++seg) {
    const int ops = 4 + static_cast<int>(pick(9));
    for (int i = 0; i < ops; ++i) {
      const isa::Reg rd = reg();
      const isa::Reg rs = reg();
      switch (pick(16)) {
        case 0: a.movi(rd, rng()); break;
        case 1: a.mov(rd, rs); break;
        case 2: a.add(rd, rs); break;
        case 3: a.sub(rd, rs); break;
        case 4: a.mul(rd, rs); break;
        case 5: a.xor_(rd, rs); break;
        case 6: a.and_(rd, rs); break;
        case 7: a.or_(rd, rs); break;
        case 8: a.addi(rd, rng()); break;
        case 9: a.xori(rd, rng()); break;
        case 10: a.shli(rd, pick(32)); break;
        case 11: a.shri(rd, pick(32)); break;
        case 12: a.not_(rd); break;
        case 13: a.neg(rd); break;
        case 14:  // guarded signed division: divisor forced into 1..255
          a.andi(rs, 0xff);
          a.ori(rs, 1);
          if (pick(2) == 0) {
            a.div(rd, rs);
          } else {
            a.mod(rd, rs);
          }
          break;
        case 15:  // memory traffic against the scratch buffer
          if (pick(2) == 0) {
            a.store(R4, 4 * pick(64), rd);
          } else {
            a.load(rd, R4, 4 * pick(64));
          }
          break;
      }
    }
    // Deliberately fusible adjacencies, one flavor per segment.
    const isa::Reg rf = reg();
    switch (seg % 3) {
      case 0:  // load+addi (LoadAddi) then load+cmpi (LoadCmpi)
        a.load(rf, R4, 4 * pick(64));
        a.addi(rf, rng());
        a.load(rf, R4, 4 * pick(64));
        a.cmpi(rf, rng());
        break;
      case 1:  // push+call (PushCall), result folded, stack rebalanced
        a.mov(R1, rf);
        a.push(R11);
        a.call("mix");
        a.pop(R11);
        a.xor_(R11, R0);
        a.cmp(R11, R12);
        break;
      default:  // storeb/loadb byte traffic then cmp
        a.storeb(R4, pick(256), rf);
        a.loadb(rf, R4, pick(256));
        a.cmp(rf, R13);
        break;
    }
    // Forward conditional branch over a tail of the segment (cmp+jcc fuses).
    const std::string skip = ".skip" + std::to_string(label_id++);
    switch (pick(6)) {
      case 0: a.jz(skip); break;
      case 1: a.jnz(skip); break;
      case 2: a.jlt(skip); break;
      case 3: a.jle(skip); break;
      case 4: a.jgt(skip); break;
      default: a.jge(skip); break;
    }
    a.addi(reg(), rng());
    a.xor_(reg(), reg());
    a.label(skip);
  }
  a.subi(R5, 1);
  a.cmpi(R5, 0);
  a.jnz(".loop");

  // Epilogue: fold every pool register and a few buffer words into r11,
  // print the checksum, and exit with its low bits.
  a.mov(R11, R0);
  for (const isa::Reg r : {R1, R2, R3, R12, R13, R14}) a.xor_(R11, r);
  for (int i = 0; i < 4; ++i) {
    a.load(R2, R4, 4 * pick(64));
    a.xor_(R11, R2);
  }
  a.mov(R1, R11);
  a.call("print_num");
  a.mov(R0, R11);
  a.andi(R0, 127);
  a.ret();

  a.bss("buf", 1024);
  apps::emit_libc(a, os::Personality::LinuxSim);
  return a.link();
}

/// Run an image under one engine configuration, monitored (Asc enforcement)
/// so every syscall exercises the checker's batched MAC verification.
vm::RunResult run_monitored(const binary::Image& image, const EngineConfig& cfg) {
  BackendPolicyGuard aes(cfg.aes);
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Asc);
  sys.machine().set_dispatch(cfg.dispatch);
  sys.machine().set_superinstructions(cfg.fuse);
  const auto inst = sys.install(image);
  return sys.machine().run(inst.image);
}

/// Run an image unmonitored under one engine configuration.
vm::RunResult run_plain(const binary::Image& image, const EngineConfig& cfg,
                        std::uint64_t cycle_limit = 0) {
  BackendPolicyGuard aes(cfg.aes);
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  sys.machine().set_dispatch(cfg.dispatch);
  sys.machine().set_superinstructions(cfg.fuse);
  if (cycle_limit != 0) sys.machine().set_cycle_limit(cycle_limit);
  return sys.machine().run(image);
}

TEST(EngineDifferential, RandomProgramsAgreeAcrossEnginesAndBackends) {
  const auto cfgs = engine_configs();
  for (std::uint32_t seed = 1; seed <= 16; ++seed) {
    const binary::Image image = random_program(seed);
    const vm::RunResult ref = run_monitored(image, cfgs[0]);
    const Outcome want = outcome_of(ref);
    // The random programs must actually run and do syscalls, or the test
    // proves nothing.
    ASSERT_GT(ref.instructions, 100u) << "seed " << seed;
    ASSERT_GT(ref.syscalls, 0u) << "seed " << seed;
    for (std::size_t c = 1; c < cfgs.size(); ++c) {
      const vm::RunResult got = run_monitored(image, cfgs[c]);
      EXPECT_EQ(outcome_of(got), want) << "seed " << seed << " config " << cfgs[c].name;
      if (cfgs[c].dispatch == vm::DispatchMode::Threaded) {
        EXPECT_GT(got.predecode.blocks, 0u) << "seed " << seed << " config " << cfgs[c].name;
        if (cfgs[c].fuse) {
          EXPECT_GT(got.predecode.superinstructions, 0u)
              << "seed " << seed << " config " << cfgs[c].name;
        } else {
          EXPECT_EQ(got.predecode.superinstructions, 0u)
              << "seed " << seed << " config " << cfgs[c].name;
        }
      }
    }
  }
}

TEST(EngineDifferential, CycleLimitStopsAtIdenticalPoints) {
  // A tight fused loop (cmpi+jnz) plus a syscall-bearing epilogue; sweeping
  // the cycle limit across small values walks the stop point through every
  // engine path: block entry, fused second half, and syscall re-lookup.
  tasm::Assembler a("limit");
  a.func("main");
  a.movi(R11, 1000000);
  a.label(".spin");
  a.subi(R11, 1);
  a.cmpi(R11, 0);
  a.jnz(".spin");
  a.movi(R0, 0);
  a.ret();
  apps::emit_libc(a, os::Personality::LinuxSim);
  const binary::Image image = a.link();

  const auto cfgs = engine_configs();
  for (std::uint64_t limit = 1; limit <= 64; ++limit) {
    const Outcome want = outcome_of(run_plain(image, cfgs[0], limit));
    for (std::size_t c = 1; c < cfgs.size(); ++c) {
      EXPECT_EQ(outcome_of(run_plain(image, cfgs[c], limit)), want)
          << "limit " << limit << " config " << cfgs[c].name;
    }
  }
}

TEST(EngineDifferential, HaltExitCodeMatchesReference) {
  tasm::Assembler a("halt");
  a.func("main");
  a.movi(R11, 7);
  a.halt();
  apps::emit_libc(a, os::Personality::LinuxSim);
  const binary::Image image = a.link();

  const auto cfgs = engine_configs();
  const Outcome want = outcome_of(run_plain(image, cfgs[0]));
  EXPECT_EQ(want.exit_code, vm::Cpu::kHaltExitCode);
  EXPECT_EQ(want.exit_code, 134);  // 128 + SIGABRT, the documented convention
  for (std::size_t c = 1; c < cfgs.size(); ++c) {
    EXPECT_EQ(outcome_of(run_plain(image, cfgs[c])), want) << cfgs[c].name;
  }
}

TEST(EngineDifferential, GuestFaultsMatchReference) {
  // Divide by zero, mid-program: the faulting pc and all counters must
  // agree, and the fault must surface as the same violation_detail.
  tasm::Assembler a("fault");
  a.func("main");
  a.movi(R11, 5);
  a.movi(R12, 0);
  a.div(R11, R12);
  a.ret();
  apps::emit_libc(a, os::Personality::LinuxSim);
  const binary::Image image = a.link();

  const auto cfgs = engine_configs();
  const Outcome want = outcome_of(run_plain(image, cfgs[0]));
  EXPECT_FALSE(want.completed);
  EXPECT_NE(want.violation_detail.find("division by zero"), std::string::npos);
  for (std::size_t c = 1; c < cfgs.size(); ++c) {
    EXPECT_EQ(outcome_of(run_plain(image, cfgs[c])), want) << cfgs[c].name;
  }
}

TEST(EngineDifferential, OutOfRangeJumpFaultsIdentically) {
  tasm::Assembler a("oor");
  a.func("main");
  a.movi(R11, 0x7ff0000);
  a.jmpr(R11);
  a.ret();
  apps::emit_libc(a, os::Personality::LinuxSim);
  const binary::Image image = a.link();

  const auto cfgs = engine_configs();
  const Outcome want = outcome_of(run_plain(image, cfgs[0]));
  EXPECT_FALSE(want.completed);
  EXPECT_NE(want.violation_detail.find("pc out of range"), std::string::npos);
  for (std::size_t c = 1; c < cfgs.size(); ++c) {
    EXPECT_EQ(outcome_of(run_plain(image, cfgs[c])), want) << cfgs[c].name;
  }
}

TEST(EngineDifferential, UndecodableBytesThrowInBothEngines) {
  // Jumping into a byte stream with an invalid opcode raises DecodeError in
  // the reference interpreter (NOT a GuestFault -- it escapes run()); the
  // threaded engine's Slow micro-op must reproduce that exactly.
  tasm::Assembler a("junk");
  a.func("main");
  a.lea(R11, "garbage");
  a.jmpr(R11);
  a.ret();
  a.data_bytes("garbage", {0xff, 0xff, 0xff, 0xff});
  apps::emit_libc(a, os::Personality::LinuxSim);
  const binary::Image image = a.link();

  for (const auto& cfg : engine_configs()) {
    EXPECT_THROW((void)run_plain(image, cfg), DecodeError) << cfg.name;
  }
}

// ---------------------------------------------------------------------------
// Self-modifying code: the predecode cache must observe writes into the
// executed region (via the Memory exec-watch spine) and rebuild, with
// results byte-identical to the reference interpreter, which re-decodes
// every step and so is trivially correct under self-modification.

binary::Image self_modifying_program() {
  // "fn" in the writable data section: movi r0, 42; ret -- RI encoding is
  // [op][rd][imm32 LE] (isa/decode.cpp), so the immediate's low byte is at
  // fn+2. main calls it, patches the immediate in a loop, and accumulates
  // the returned values; the sum proves every patched version executed.
  tasm::Assembler a("smc");
  a.func("main");
  a.lea(R4, "fn");
  a.callr(R4);       // r0 = 42 (pristine)
  a.mov(R11, R0);    // accumulator
  a.movi(R12, 1);    // patch value, 1..5
  a.label(".again");
  a.storeb(R4, 2, R12);  // fn immediate low byte = r12
  a.callr(R4);           // r0 = r12
  a.add(R11, R0);
  a.addi(R12, 1);
  a.cmpi(R12, 6);
  a.jlt(".again");
  a.mov(R0, R11);  // 42 + 1+2+3+4+5 = 57
  a.ret();
  a.data_bytes("fn", {0x10, 0x00, 42, 0x00, 0x00, 0x00, 0x52});
  apps::emit_libc(a, os::Personality::LinuxSim);
  return a.link();
}

TEST(EngineDifferential, SelfModifyingCodeInvalidatesPredecode) {
  const binary::Image image = self_modifying_program();
  const auto cfgs = engine_configs();
  const vm::RunResult ref = run_plain(image, cfgs[0]);
  const Outcome want = outcome_of(ref);
  EXPECT_TRUE(want.completed);
  EXPECT_EQ(want.exit_code, 57);
  for (std::size_t c = 1; c < cfgs.size(); ++c) {
    const vm::RunResult got = run_plain(image, cfgs[c]);
    EXPECT_EQ(outcome_of(got), want) << cfgs[c].name;
    if (cfgs[c].dispatch == vm::DispatchMode::Threaded) {
      // Each of the five patches after the first execution must have
      // knocked out the predecoded block for "fn".
      EXPECT_GE(got.predecode.invalidations, 5u) << cfgs[c].name;
      EXPECT_GT(got.predecode.exec_writes, 0u) << cfgs[c].name;
    }
  }
}

TEST(EngineDifferential, SelfModifyingCodeUnderEnforcement) {
  // The same program, installed and monitored: predecode invalidation must
  // compose with the checker/tier machinery without perturbing modeled
  // cycles or demote behavior.
  const binary::Image image = self_modifying_program();
  const auto cfgs = engine_configs();
  const Outcome want = outcome_of(run_monitored(image, cfgs[0]));
  for (std::size_t c = 1; c < cfgs.size(); ++c) {
    EXPECT_EQ(outcome_of(run_monitored(image, cfgs[c])), want) << cfgs[c].name;
  }
}

}  // namespace
}  // namespace asc
