// The fault-injection campaign (src/fault/): seeded mutations of the ASC
// verification surface must never crash the host, never silently bypass the
// policy, and always map to the Violation class the §3.4 checking order
// predicts -- under fail-stop, budgeted, and audit-only enforcement alike.
#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "fault/campaign.h"
#include "tasm/assembler.h"
#include "workloads.h"

namespace asc {
namespace {

using fault::Campaign;
using fault::CampaignConfig;
using fault::CampaignResult;
using fault::GuestProgram;
using fault::MutationClass;
using fault::Outcome;

const auto kPers = os::Personality::LinuxSim;

GuestProgram cat_guest() {
  GuestProgram g;
  g.name = "cat";
  g.image = apps::build_tool_cat(kPers);
  g.argv = {"/lines.txt", "/in.c"};
  g.prepare_fs = testing::prepare_fs;
  return g;
}

GuestProgram vuln_echo_guest() {
  GuestProgram g;
  g.name = "vuln_echo";
  g.image = apps::build_vuln_echo(kPers);
  g.stdin_data = "/lines.txt\n";
  g.helpers.emplace_back("/bin/ls", apps::build_tool_cat(kPers));
  g.prepare_fs = testing::prepare_fs;
  return g;
}

crypto::Key128 wrong_key() {
  crypto::Key128 k = test_key();
  k[0] ^= 0x01;
  return k;
}

// ---- the tentpole invariant, at scale ----
// >= 500 mutated executions across every mutation class, two guest programs
// (one of them spawning a child, so faults land in child processes too).
TEST(FaultCampaign, InvariantHoldsAcrossFiveHundredMutations) {
  CampaignConfig cfg;
  cfg.seed = 20260806;
  cfg.runs_per_class = 28;  // 2 programs x 11 classes x 28 = 616 executions
  cfg.cycle_limit = 200'000'000;
  Campaign campaign(cfg);
  const CampaignResult r = campaign.run_all({cat_guest(), vuln_echo_guest()});

  EXPECT_GE(static_cast<int>(r.verdicts.size()), 500);
  EXPECT_GE(static_cast<int>(r.matrix.size()), 6) << "mutation-class coverage too narrow";
  EXPECT_EQ(r.host_crash, 0) << r.summary();
  EXPECT_EQ(r.silent_bypass, 0) << r.summary();
  EXPECT_EQ(r.wrong_verdict, 0) << r.summary();
  EXPECT_GE(r.total_applied(), 450) << r.summary();
  EXPECT_TRUE(r.invariant_holds());

  // Every class that applied at all was detected, and only with Violation
  // verdicts from its expected set.
  for (const auto& [cls, row] : r.matrix) {
    int applied = 0;
    for (const auto& [v, n] : row) {
      applied += n;
      if (v == os::Violation::None) continue;  // benign replays
      const auto& exp = fault::expected_violations(cls);
      EXPECT_NE(std::find(exp.begin(), exp.end(), v), exp.end())
          << fault::mutation_class_name(cls) << " yielded unexpected verdict "
          << os::violation_name(v);
    }
    EXPECT_GT(applied, 0) << fault::mutation_class_name(cls) << " never applied";
  }
}

// ---- the verified-call cache under attack ----
// TOCTOU against the MAC-verification fast path: corrupt the call MAC or the
// predecessor-set bytes at a call site the checker has ALREADY verified once
// (so a cache entry exists). A cache that trusted its entry without
// re-comparing the trap's actual bytes (or without write-watch eviction)
// would accept the corrupted call -- a silent bypass. Every applied mutation
// must instead fail-stop with the verdict full verification yields.
TEST(FaultCampaign, CacheToctouMutationsFailStop) {
  CampaignConfig cfg;
  cfg.seed = 987654;
  cfg.runs_per_class = 40;
  cfg.classes = {MutationClass::CacheToctou};
  cfg.cycle_limit = 200'000'000;
  const CampaignResult r = Campaign(cfg).run_all({cat_guest(), vuln_echo_guest()});

  EXPECT_TRUE(r.invariant_holds()) << r.summary();
  EXPECT_EQ(r.host_crash, 0) << r.summary();
  EXPECT_EQ(r.silent_bypass, 0) << r.summary();
  EXPECT_GT(r.detected, 0) << "no TOCTOU mutation ever landed:\n" << r.summary();
  // Bit-flips in live MAC/pred-set bytes are never no-ops: each applied
  // mutation must surface as a verdict, not blend into a benign run.
  EXPECT_EQ(r.benign, 0) << r.summary();
}

// ---- the policy-state shadow under attack ----
// TOCTOU against the control-flow fast path: once a pid's {lastBlock, lbMAC}
// record is shadowed in the kernel, the guest copy lags behind (lazy
// write-back). The mutation strikes inside the invalidation window: a guest
// write into the watched range must FIRST write back the trusted record,
// and only then land -- after which the slow path re-verifies. Both attack
// shapes (bit-flip of the materialized record, replay of the stale
// pre-write-back record carrying an old nonce) must fail-stop with
// BadPolicyState. 2 programs x 60 = 120 mutated executions.
TEST(FaultCampaign, ShadowToctouMutationsFailStop) {
  CampaignConfig cfg;
  cfg.seed = 424242;
  cfg.runs_per_class = 60;
  cfg.classes = {MutationClass::ShadowToctou};
  cfg.cycle_limit = 200'000'000;
  const CampaignResult r = Campaign(cfg).run_all({cat_guest(), vuln_echo_guest()});

  EXPECT_TRUE(r.invariant_holds()) << r.summary();
  EXPECT_EQ(r.host_crash, 0) << r.summary();
  EXPECT_EQ(r.silent_bypass, 0) << r.summary();
  EXPECT_EQ(r.wrong_verdict, 0) << r.summary();
  EXPECT_GE(r.detected, 100) << "shadow TOCTOU coverage too thin:\n" << r.summary();
  // The touch-then-tamper sequence guarantees divergence from the trusted
  // record: no applied mutation may blend into a benign run.
  EXPECT_EQ(r.benign, 0) << r.summary();
}

// ---- the Inline tier under attack ----
// TOCTOU against the promotion window of the tier lattice: the mutation
// strikes ONLY at a (pid, site) already promoted to trap-less execution,
// flipping either the call MAC or the policy-state record the probe's
// snapshot trusts. The site's own write watch must demote it BEFORE the
// tamper lands, so the next call re-enters the full pipeline and fail-stops
// with the structure's verdict -- inline execution may never outlive a
// tamper. 2 loop guests x 60 = 120 mutated executions.

GuestProgram loop_guest(const std::string& name, const char* wrapper) {
  using namespace asc::apps;
  tasm::Assembler a(name);
  a.func("main");
  a.subi(SP, 4);
  a.movi(R11, 64);
  a.store(SP, 0, R11);
  a.label(".loop");
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".done");
  a.call(wrapper);
  a.load(R11, SP, 0);
  a.subi(R11, 1);
  a.store(SP, 0, R11);
  a.jmp(".loop");
  a.label(".done");
  a.addi(SP, 4);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, kPers);
  GuestProgram g;
  g.name = name;
  g.image = a.link();
  return g;
}

TEST(FaultCampaign, PromoToctouMutationsFailStop) {
  CampaignConfig cfg;
  cfg.seed = 80808;
  cfg.runs_per_class = 60;
  cfg.classes = {MutationClass::PromoToctou};
  cfg.cycle_limit = 200'000'000;
  // Inline tier on with a low promotion threshold, so sites promote early
  // and most triggers land inside the trap-less window. The clean run pins
  // the shadow off, so its behavior snapshots see no promotion at all.
  cfg.configure_kernel = [](os::Kernel& k) {
    k.set_inline_tier(true);
    k.set_inline_promote_threshold(2);
  };
  const CampaignResult r = Campaign(cfg).run_all(
      {loop_guest("pidloop", "sys_getpid"), loop_guest("uidloop", "sys_getuid")});

  EXPECT_EQ(static_cast<int>(r.verdicts.size()), 120);
  EXPECT_TRUE(r.invariant_holds()) << r.summary();
  EXPECT_EQ(r.host_crash, 0) << r.summary();
  EXPECT_EQ(r.silent_bypass, 0) << r.summary();
  EXPECT_EQ(r.wrong_verdict, 0) << r.summary();
  EXPECT_GE(r.detected, 100) << "promo-toctou coverage too thin:\n" << r.summary();
  // The strike point guarantees a promoted site and the flip guarantees
  // divergence from the verified bytes: nothing may blend into benign.
  EXPECT_EQ(r.benign, 0) << r.summary();
  // Both attack shapes surfaced: the MAC flip as BadCallMac, the state
  // record flip as BadPolicyState.
  const auto& row = r.matrix.at(MutationClass::PromoToctou);
  EXPECT_GT(row.count(os::Violation::BadCallMac), 0u) << r.summary();
  EXPECT_GT(row.count(os::Violation::BadPolicyState), 0u) << r.summary();
}

TEST(FaultCampaign, IsDeterministicUnderASeed) {
  CampaignConfig cfg;
  cfg.seed = 77;
  cfg.runs_per_class = 3;
  cfg.cycle_limit = 200'000'000;
  const CampaignResult a = Campaign(cfg).run(cat_guest());
  const CampaignResult b = Campaign(cfg).run(cat_guest());
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].spec.trigger_call, b.verdicts[i].spec.trigger_call);
    EXPECT_EQ(a.verdicts[i].spec.seed, b.verdicts[i].spec.seed);
    EXPECT_EQ(a.verdicts[i].outcome, b.verdicts[i].outcome);
    EXPECT_EQ(a.verdicts[i].violation, b.verdicts[i].violation);
    EXPECT_EQ(a.verdicts[i].mutation, b.verdicts[i].mutation);
  }
}

// ---- graceful degradation: audit-only equivalence ----
// The same seeded mutations must yield the same FIRST verdict whether the
// kernel kills (fail-stop) or only records (audit-only); in audit-only mode
// the guest is never terminated by the monitor.
TEST(FaultCampaign, AuditOnlyYieldsSameVerdictsWithoutKilling) {
  CampaignConfig strict;
  strict.seed = 42;
  strict.runs_per_class = 4;
  strict.cycle_limit = 200'000'000;
  CampaignConfig permissive = strict;
  permissive.mode = os::FailureMode::AuditOnly;

  const CampaignResult rs = Campaign(strict).run(vuln_echo_guest());
  const CampaignResult rp = Campaign(permissive).run(vuln_echo_guest());
  EXPECT_TRUE(rs.invariant_holds()) << rs.summary();
  EXPECT_TRUE(rp.invariant_holds()) << rp.summary();

  ASSERT_EQ(rs.verdicts.size(), rp.verdicts.size());
  int compared = 0;
  for (std::size_t i = 0; i < rs.verdicts.size(); ++i) {
    const auto& s = rs.verdicts[i];
    const auto& p = rp.verdicts[i];
    ASSERT_EQ(s.spec.seed, p.spec.seed);  // same mutation on both sides
    if (s.outcome != Outcome::Detected) continue;
    ++compared;
    EXPECT_EQ(p.outcome, Outcome::Detected);
    EXPECT_EQ(p.violation, s.violation)
        << fault::mutation_class_name(s.spec.cls) << " verdict changed in audit-only mode";
    EXPECT_TRUE(s.guest_killed);
    EXPECT_FALSE(p.guest_killed) << "audit-only mode must never kill";
  }
  EXPECT_GT(compared, 0);
}

// ---- graceful degradation: kernel-level semantics ----

TEST(GracefulDegradation, AuditOnlyKernelRecordsButGuestCompletes) {
  // A kernel booted with the wrong key rejects every authenticated call;
  // in audit-only mode it must log each verdict yet let the guest run to
  // completion with its normal output.
  System clean(kPers);
  testing::prepare_fs(clean.kernel().fs());
  const auto inst = clean.install(apps::build_tool_cat(kPers));
  const auto r0 = clean.machine().run(inst.image, {"/lines.txt"});
  ASSERT_TRUE(r0.completed);

  System sys(kPers);
  testing::prepare_fs(sys.kernel().fs());
  sys.kernel().set_key(wrong_key());
  sys.kernel().set_failure_mode(os::FailureMode::AuditOnly);
  const auto r = sys.machine().run(inst.image, {"/lines.txt"});
  EXPECT_TRUE(r.completed) << r.violation_detail;
  EXPECT_EQ(r.exit_code, r0.exit_code);
  EXPECT_EQ(r.stdout_data, r0.stdout_data);

  int violations = 0;
  for (const auto& rec : sys.kernel().audit_log()) {
    if (rec.kind != os::AuditKind::Violation) continue;
    ++violations;
    EXPECT_FALSE(rec.killed);
    EXPECT_EQ(rec.violation, os::Violation::BadCallMac);
  }
  EXPECT_GT(violations, 2) << "every call should have been flagged";
}

TEST(GracefulDegradation, BudgetedKernelKillsAfterBudgetExceeded) {
  System sys(kPers);
  testing::prepare_fs(sys.kernel().fs());
  const auto inst = sys.install(apps::build_tool_cat(kPers));
  sys.kernel().set_key(wrong_key());
  sys.kernel().set_failure_mode(os::FailureMode::Budgeted);
  sys.kernel().set_violation_budget(2);
  const auto r = sys.machine().run(inst.image, {"/lines.txt"});
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);

  // Exactly budget+1 verdicts: two tolerated, the third kills.
  std::vector<bool> killed;
  for (const auto& rec : sys.kernel().audit_log()) {
    if (rec.kind == os::AuditKind::Violation) killed.push_back(rec.killed);
  }
  ASSERT_EQ(killed.size(), 3u);
  EXPECT_FALSE(killed[0]);
  EXPECT_FALSE(killed[1]);
  EXPECT_TRUE(killed[2]);
}

TEST(GracefulDegradation, ZeroBudgetMatchesFailStop) {
  auto run_mode = [&](os::FailureMode mode) {
    System sys(kPers);
    testing::prepare_fs(sys.kernel().fs());
    const auto inst = sys.install(apps::build_tool_cat(kPers));
    sys.kernel().set_key(wrong_key());
    sys.kernel().set_failure_mode(mode);
    return sys.machine().run(inst.image, {"/lines.txt"});
  };
  const auto strict = run_mode(os::FailureMode::FailStop);
  const auto budgeted = run_mode(os::FailureMode::Budgeted);  // budget = 0
  EXPECT_FALSE(strict.completed);
  EXPECT_FALSE(budgeted.completed);
  EXPECT_EQ(strict.violation, budgeted.violation);
  EXPECT_EQ(strict.violation_detail, budgeted.violation_detail);
}

// ---- structured audit records ----

TEST(AuditLog, RecordsCarryFullTrapContext) {
  System sys(kPers);
  testing::prepare_fs(sys.kernel().fs());
  sys.install_and_register("/bin/ls", apps::build_tool_cat(kPers));
  const auto inst = sys.install(apps::build_vuln_echo(kPers));
  const auto r = sys.machine().run(inst.image, {}, "/lines.txt\n");
  ASSERT_TRUE(r.completed) << r.violation_detail;

  const os::VerdictRecord* spawn = nullptr;
  for (const auto& rec : sys.kernel().audit_log()) {
    if (rec.kind == os::AuditKind::Spawn) spawn = &rec;
  }
  ASSERT_NE(spawn, nullptr);
  EXPECT_GT(spawn->pid, 0);
  EXPECT_FALSE(spawn->prog.empty());
  EXPECT_NE(spawn->call_site, 0u);
  EXPECT_EQ(spawn->sysno, *os::syscall_number(kPers, os::SysId::Spawn));
  EXPECT_EQ(spawn->violation, os::Violation::None);
  EXPECT_GT(spawn->vtime_ns, 0u);
  EXPECT_NE(spawn->detail.find("/bin/ls"), std::string::npos);

  // The legacy formatted view still carries the historical prefixes.
  bool legacy = false;
  for (const auto& e : sys.kernel().event_log()) {
    if (e.find("SPAWN /bin/ls") != std::string::npos) legacy = true;
  }
  EXPECT_TRUE(legacy);
}

TEST(AuditLog, ViolationRecordMatchesProcessVerdict) {
  System sys(kPers);
  testing::prepare_fs(sys.kernel().fs());
  const auto inst = sys.install(apps::build_tool_cat(kPers));
  sys.kernel().set_key(wrong_key());
  const auto r = sys.machine().run(inst.image, {"/lines.txt"});
  ASSERT_FALSE(r.completed);

  ASSERT_FALSE(sys.kernel().audit_log().empty());
  const auto& rec = sys.kernel().audit_log().front();
  EXPECT_EQ(rec.kind, os::AuditKind::Violation);
  EXPECT_EQ(rec.violation, r.violation);
  EXPECT_EQ(rec.detail, r.violation_detail);
  EXPECT_TRUE(rec.killed);
  EXPECT_GT(rec.pid, 0);
  EXPECT_NE(rec.call_site, 0u);
  EXPECT_NE(rec.to_string().find("ALERT"), std::string::npos);
  EXPECT_NE(rec.to_string().find(os::violation_name(rec.violation)),
            std::string::npos);
}

}  // namespace
}  // namespace asc
