// The per-pid health machine (os/health.h) and the chaos-engine surface
// (src/fault/chaos.h): internal inconsistencies must degrade a pid onto
// slower-but-sound verification paths -- never fail-stop it, never touch its
// violation budget -- and re-promotion must be earned with exponential
// backoff. Fixture names carry "ChaosEngine" so CI can select the suite.
#include <gtest/gtest.h>

#include "fault/campaign.h"
#include "fault/chaos.h"
#include "workloads.h"

namespace asc {
namespace {

using fault::FaultSpec;
using fault::GuestProgram;
using fault::MutationClass;
using fault::Outcome;
using os::HealthState;

const auto kPers = os::Personality::LinuxSim;

GuestProgram cat_guest() {
  GuestProgram g;
  g.name = "cat";
  g.image = apps::build_tool_cat(kPers);
  g.argv = {"/lines.txt", "/in.c"};
  g.prepare_fs = testing::prepare_fs;
  return g;
}

/// Clean reference behavior of cat_guest() under default enforcement.
vm::RunResult clean_reference() {
  const GuestProgram g = cat_guest();
  System sys(kPers);
  g.prepare_fs(sys.kernel().fs());
  return sys.machine().run(sys.install(g.image).image, g.argv, g.stdin_data);
}

int count_kind(System& sys, os::AuditKind kind) {
  int n = 0;
  for (const auto& rec : sys.kernel().audit_log()) {
    if (rec.kind == kind) ++n;
  }
  return n;
}

// Driver: run cat once with a per-call hook; the hook sees the kernel
// BEFORE each trap is verified, giving a deterministic cycle model of the
// health machine (call index = time).
struct HookedRun {
  System sys{kPers};
  GuestProgram guest = cat_guest();
  binary::Image installed;
  int calls = 0;

  HookedRun() {
    guest.prepare_fs(sys.kernel().fs());
    installed = sys.install(guest.image).image;
  }

  vm::RunResult run(const std::function<void(os::Process&, int)>& at_call) {
    sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
      at_call(p, ++calls);
    };
    return sys.machine().run(installed, guest.argv, guest.stdin_data);
  }
};

// ---- the degradation lattice, one transition at a time ----

TEST(ChaosEngineHealth, InternalFaultDegradesThenRecoveryIsEarned) {
  const vm::RunResult ref = clean_reference();
  HookedRun h;
  h.sys.kernel().set_health_promote_threshold(2);
  std::map<int, HealthState> seen;
  const vm::RunResult r = h.run([&](os::Process& p, int call) {
    seen[call] = h.sys.kernel().health(p.pid);
    if (call == 2) h.sys.kernel().report_internal_fault(p, "test fault");
  });

  ASSERT_GT(h.calls, 5) << "guest too short to observe recovery";
  // The fault lands before call 2's verification: Degraded by call 3, and
  // two clean verifications (calls 2, 3) earn Healthy back by call 4.
  EXPECT_EQ(seen[1], HealthState::Healthy);
  EXPECT_EQ(seen[3], HealthState::Degraded);
  EXPECT_EQ(seen[4], HealthState::Healthy);

  // The guest never noticed: identical behavior, no Violation verdict.
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.stdout_data, ref.stdout_data);
  EXPECT_EQ(r.exit_code, ref.exit_code);
  EXPECT_EQ(count_kind(h.sys, os::AuditKind::Violation), 0);
  EXPECT_EQ(count_kind(h.sys, os::AuditKind::InternalFault), 1);

  const auto& hs = h.sys.kernel().health_stats();
  EXPECT_EQ(hs.internal_faults, 1u);
  EXPECT_EQ(hs.degradations, 1u);
  EXPECT_EQ(hs.quarantines, 0u);
  EXPECT_EQ(hs.recoveries, 1u);
  // end_process erased the pid's record.
  EXPECT_EQ(h.sys.kernel().tracked_health(), 0u);
}

TEST(ChaosEngineHealth, ShadowNonceDesyncCaughtBySelfCheck) {
  const vm::RunResult ref = clean_reference();
  HookedRun h;
  h.sys.kernel().set_health_promote_threshold(100);  // stay Degraded
  bool injected = false;
  const vm::RunResult r = h.run([&](os::Process& p, int call) {
    if (call >= 3 && !injected && h.sys.kernel().shadow().has(p.pid)) {
      ++p.asc_counter;  // desync the kernel's own nonce copy
      injected = true;
    }
  });

  ASSERT_TRUE(injected) << "shadow never installed; nothing was tested";
  // The per-trap self-check must catch the desync, quarantine the fast
  // paths (resynced under the authoritative counter), and keep the guest
  // running clean -- this is a monitor-side defect, not guest tamper.
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.stdout_data, ref.stdout_data);
  EXPECT_EQ(count_kind(h.sys, os::AuditKind::Violation), 0);
  const auto& hs = h.sys.kernel().health_stats();
  EXPECT_EQ(hs.internal_faults, 1u);
  EXPECT_EQ(hs.degradations, 1u);
}

TEST(ChaosEngineHealth, RepeatedFaultsQuarantineWithExponentialBackoff) {
  HookedRun h;
  h.sys.kernel().set_health_promote_threshold(2);
  h.sys.kernel().set_health_backoff_cap(4);
  struct Snap {
    HealthState state;
    std::uint32_t promote_after;
    std::uint32_t quarantines;
  };
  std::map<int, Snap> snaps;
  const vm::RunResult r = h.run([&](os::Process& p, int call) {
    if (call >= 2 && call <= 5) {
      h.sys.kernel().report_internal_fault(p, "repeated fault");
      const os::HealthRecord* rec = h.sys.kernel().health_record(p.pid);
      ASSERT_NE(rec, nullptr);
      snaps[call] = {rec->state, rec->promote_after, rec->quarantines};
    }
  });
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(snaps.size(), 4u);

  // Healthy -> Degraded -> Quarantined, then each re-entry doubles the
  // promotion streak until the cap: 2, 4, 4(capped).
  EXPECT_EQ(snaps[2].state, HealthState::Degraded);
  EXPECT_EQ(snaps[3].state, HealthState::Quarantined);
  EXPECT_EQ(snaps[3].promote_after, 2u);
  EXPECT_EQ(snaps[3].quarantines, 1u);
  EXPECT_EQ(snaps[4].promote_after, 4u);
  EXPECT_EQ(snaps[4].quarantines, 2u);
  EXPECT_EQ(snaps[5].promote_after, 4u) << "backoff must cap";
  EXPECT_EQ(snaps[5].quarantines, 3u);

  const auto& hs = h.sys.kernel().health_stats();
  EXPECT_EQ(hs.internal_faults, 4u);
  EXPECT_EQ(hs.quarantines, 3u);
}

TEST(ChaosEngineHealth, QuarantineEvictsEveryFastPath) {
  HookedRun h;
  h.sys.kernel().set_health_promote_threshold(100);  // no re-promotion
  bool checked = false;
  const vm::RunResult r = h.run([&](os::Process& p, int call) {
    if (call == 4 || call == 5) {
      h.sys.kernel().report_internal_fault(p, "fault");
    }
    if (call == 6) {
      EXPECT_EQ(h.sys.kernel().health(p.pid), HealthState::Quarantined);
      EXPECT_FALSE(h.sys.kernel().fast_path_cache_allowed(p.pid));
      EXPECT_FALSE(h.sys.kernel().fast_path_shadow_allowed(p.pid));
      EXPECT_FALSE(h.sys.kernel().shadow().has(p.pid));
      EXPECT_EQ(h.sys.kernel().call_cache().size(p.pid), 0u);
      checked = true;
    }
  });
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(checked) << "guest too short";
}

TEST(ChaosEngineHealth, QuarantinedPidRepromotesAfterCleanEagerStreak) {
  HookedRun h;
  h.sys.kernel().set_health_promote_threshold(1);
  std::map<int, HealthState> seen;
  const vm::RunResult r = h.run([&](os::Process& p, int call) {
    seen[call] = h.sys.kernel().health(p.pid);
    if (call == 2) {
      // Back-to-back faults with no verification in between: straight
      // through Degraded into Quarantined.
      h.sys.kernel().report_internal_fault(p, "fault");
      h.sys.kernel().report_internal_fault(p, "fault");
      EXPECT_EQ(h.sys.kernel().health(p.pid), HealthState::Quarantined);
    }
  });
  ASSERT_TRUE(r.completed);
  ASSERT_GT(h.calls, 4);
  // Call 2's own eager verification is clean, which with promote_after == 1
  // re-promotes to Degraded; call 3's clean verification earns Healthy.
  EXPECT_EQ(seen[3], HealthState::Degraded);
  EXPECT_EQ(seen[4], HealthState::Healthy);
  const auto& hs = h.sys.kernel().health_stats();
  EXPECT_EQ(hs.repromotions, 1u);
  EXPECT_EQ(hs.recoveries, 1u);
}

// ---- FailureMode x health-state interaction (satellite) ----

TEST(ChaosEngineHealth, BudgetedModeNeverChargesInternalFaults) {
  // A budget of 1 would kill on the second Violation. Three internal faults
  // plus every quarantine-triggered eager re-verification must charge
  // NOTHING against it.
  const vm::RunResult ref = clean_reference();
  HookedRun h;
  h.sys.kernel().set_failure_mode(os::FailureMode::Budgeted);
  h.sys.kernel().set_violation_budget(1);
  h.sys.kernel().set_health_promote_threshold(1);
  const vm::RunResult r = h.run([&](os::Process& p, int call) {
    if (call == 2) {
      h.sys.kernel().report_internal_fault(p, "fault");
      h.sys.kernel().report_internal_fault(p, "fault");  // -> Quarantined
    }
    if (call == 4) h.sys.kernel().report_internal_fault(p, "fault");
  });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.stdout_data, ref.stdout_data);
  EXPECT_EQ(r.exit_code, ref.exit_code);
  EXPECT_EQ(count_kind(h.sys, os::AuditKind::Violation), 0);
  EXPECT_EQ(count_kind(h.sys, os::AuditKind::InternalFault), 3);
}

TEST(ChaosEngineHealth, AuditOnlyModeStillRecordsTransitions) {
  HookedRun h;
  h.sys.kernel().set_failure_mode(os::FailureMode::AuditOnly);
  h.sys.kernel().set_health_promote_threshold(100);
  const vm::RunResult r = h.run([&](os::Process& p, int call) {
    if (call == 2 || call == 3) h.sys.kernel().report_internal_fault(p, "fault");
  });
  ASSERT_TRUE(r.completed);
  bool saw_degraded = false;
  bool saw_quarantined = false;
  for (const auto& rec : h.sys.kernel().audit_log()) {
    if (rec.kind != os::AuditKind::Health) continue;
    saw_degraded |= rec.detail.find("healthy -> degraded") != std::string::npos;
    saw_quarantined |= rec.detail.find("degraded -> quarantined") != std::string::npos;
  }
  EXPECT_TRUE(saw_degraded) << "AuditOnly must still record Healthy -> Degraded";
  EXPECT_TRUE(saw_quarantined) << "AuditOnly must still record Degraded -> Quarantined";
}

// ---- reproducer spec grammar (satellite) ----

TEST(ChaosEngineSpec, ReprRoundTripsForEveryClassAndStage) {
  for (const auto cls : fault::all_mutation_classes()) {
    for (const auto stage : fault::all_trap_stages()) {
      if (!fault::stage_allowed(cls, stage)) continue;
      FaultSpec spec;
      spec.cls = cls;
      spec.trigger_call = 7;
      spec.seed = 0xdeadbeefcafeULL;
      spec.stage = stage;
      const auto back = fault::parse_spec(fault::spec_repr(spec));
      ASSERT_TRUE(back.has_value()) << fault::spec_repr(spec);
      EXPECT_EQ(back->cls, spec.cls);
      EXPECT_EQ(back->trigger_call, spec.trigger_call);
      EXPECT_EQ(back->seed, spec.seed);
      EXPECT_EQ(back->stage, spec.stage);
    }
  }
}

TEST(ChaosEngineSpec, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(fault::parse_spec("").has_value());
  EXPECT_FALSE(fault::parse_spec("garbage").has_value());
  EXPECT_FALSE(fault::parse_spec("call-mac-flip:1").has_value());
  EXPECT_FALSE(fault::parse_spec("call-mac-flip:0:0x1").has_value());
  EXPECT_FALSE(fault::parse_spec("no-such-class:1:0x1").has_value());
  EXPECT_FALSE(fault::parse_spec("call-mac-flip:1:0x1:bogus-stage").has_value());
  // Three-part form defaults to the classic Trap strike point.
  const auto spec = fault::parse_spec("call-mac-flip:3:0x2a");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->stage, os::TrapStage::Trap);
}

TEST(ChaosEngineSpec, StageEligibilityMatchesThreatModel) {
  // Register/TOCTOU/environmental classes are only coherent at trap entry.
  EXPECT_FALSE(fault::stage_allowed(MutationClass::RegisterSwap, os::TrapStage::Dispatch));
  EXPECT_FALSE(fault::stage_allowed(MutationClass::KeyMismatch, os::TrapStage::Audit));
  // AS-body flips between verify and dispatch are a single-trap double-fetch
  // TOCTOU outside the ASC threat model.
  EXPECT_FALSE(fault::stage_allowed(MutationClass::AsBodyCorrupt, os::TrapStage::Enforce));
  EXPECT_TRUE(fault::stage_allowed(MutationClass::AsBodyCorrupt, os::TrapStage::Audit));
  // Lifecycle classes strike at any boundary.
  for (const auto s : fault::all_trap_stages()) {
    EXPECT_TRUE(fault::stage_allowed(MutationClass::TeardownMidVerify, s));
    EXPECT_TRUE(fault::stage_allowed(MutationClass::RotationDuringTrap, s));
  }
}

// ---- lifecycle mutation classes through the campaign ----

TEST(ChaosEngineLifecycle, LifecycleClassesMeetExpectations) {
  fault::CampaignConfig cfg;
  cfg.seed = 20260808;
  cfg.runs_per_class = 6;
  cfg.classes = {MutationClass::RotationDuringTrap, MutationClass::TeardownMidVerify,
                 MutationClass::DoubleInvalidation};
  cfg.cycle_limit = 200'000'000;
  fault::Campaign campaign(cfg);
  const fault::CampaignResult r = campaign.run(cat_guest());

  EXPECT_TRUE(r.invariant_holds()) << r.summary();
  int rotation_detected = 0;
  for (const auto& v : r.verdicts) {
    if (v.spec.cls == MutationClass::RotationDuringTrap) {
      // A mid-trap rotation stales every signed byte: the next verified
      // call fail-stops with BadCallMac (Benign only when the rotation
      // landed after the guest's last verification).
      EXPECT_TRUE(v.outcome == Outcome::Detected || v.outcome == Outcome::Benign)
          << v.repro << ": " << v.detail;
      if (v.outcome == Outcome::Detected) {
        ++rotation_detected;
        EXPECT_EQ(v.violation, os::Violation::BadCallMac) << v.repro;
        EXPECT_TRUE(v.guest_killed) << v.repro;
      }
    } else {
      // Teardown storms and double invalidation are idempotent bookkeeping:
      // eager verification resumes coherently, behavior never diverges.
      EXPECT_EQ(v.outcome, Outcome::Benign) << v.repro << ": " << v.detail;
    }
  }
  EXPECT_GT(rotation_detected, 0);
}

TEST(ChaosEngineLifecycle, ExplicitSpecsReplayVerdictsExactly) {
  fault::CampaignConfig cfg;
  cfg.seed = 99;
  cfg.runs_per_class = 4;
  cfg.classes = {MutationClass::CallMacFlip, MutationClass::PolicyStateCorrupt};
  cfg.cycle_limit = 200'000'000;
  const fault::CampaignResult first = fault::Campaign(cfg).run(cat_guest());
  ASSERT_FALSE(first.verdicts.empty());

  fault::CampaignConfig replay_cfg = cfg;
  for (const auto& v : first.verdicts) {
    const auto spec = fault::parse_spec(v.repro);
    ASSERT_TRUE(spec.has_value()) << v.repro;
    replay_cfg.explicit_specs.push_back(*spec);
  }
  const fault::CampaignResult replay = fault::Campaign(replay_cfg).run(cat_guest());

  ASSERT_EQ(replay.verdicts.size(), first.verdicts.size());
  for (std::size_t i = 0; i < first.verdicts.size(); ++i) {
    EXPECT_EQ(replay.verdicts[i].outcome, first.verdicts[i].outcome)
        << first.verdicts[i].repro;
    EXPECT_EQ(replay.verdicts[i].violation, first.verdicts[i].violation)
        << first.verdicts[i].repro;
    EXPECT_EQ(replay.verdicts[i].repro, first.verdicts[i].repro);
  }
}

// ---- the chaos engine end to end (small; the 200-tenant storm is the
// `slow`-labeled soak in test_chaos_soak.cpp) ----

TEST(ChaosEngineRun, SmallStormIsSoundAndDeterministic) {
  fault::ChaosConfig cfg;
  cfg.seed = 424242;
  cfg.tenants = 10;
  const fault::ChaosResult a = fault::ChaosEngine(cfg).run();
  const fault::ChaosResult b = fault::ChaosEngine(cfg).run();

  EXPECT_TRUE(a.ok()) << a.summary();
  ASSERT_EQ(a.lifecycles.size(), 10u);
  EXPECT_EQ(a.clean_plans + a.tamper_plans + a.internal_plans, 10);
  EXPECT_EQ(a.verdict_trace, b.verdict_trace) << "chaos run is not deterministic";
  // Internal plans must have driven the health machine without a single
  // violation verdict (their lifecycles would have tripped otherwise).
  if (a.internal_plans > 0) EXPECT_GT(a.health.internal_faults, 0u);
}

TEST(ChaosEngineRun, InlineTierStormIsSoundAndStreamsStayLegacyCompatible) {
  // With the Inline tier on, every tenant kernel promotes eligible sites,
  // the Tamper pool includes promo-toctou, and the pool gains the pidloop
  // guest -- and the run must still be sound: the post-run oracles assert
  // zero inline sites survive between runs, so teardown demotion works
  // under churn.
  fault::ChaosConfig cfg;
  cfg.seed = 424242;
  cfg.tenants = 16;
  cfg.inline_tier = true;
  const fault::ChaosResult a = fault::ChaosEngine(cfg).run();
  const fault::ChaosResult b = fault::ChaosEngine(cfg).run();
  EXPECT_TRUE(a.ok()) << a.summary();
  ASSERT_EQ(a.lifecycles.size(), 16u);
  EXPECT_EQ(a.verdict_trace, b.verdict_trace) << "inline chaos run is not deterministic";

  // The flag is additive: the legacy config's verdict trace is bit-for-bit
  // what it was before the tier existed (same seed, inline off).
  fault::ChaosConfig legacy;
  legacy.seed = 424242;
  legacy.tenants = 10;
  const fault::ChaosResult off = fault::ChaosEngine(legacy).run();
  EXPECT_TRUE(off.ok()) << off.summary();
  for (const auto& lc : off.lifecycles) {
    EXPECT_EQ(lc.plan_repr.find("promo-toctou"), std::string::npos)
        << "legacy stream drew promo-toctou: " << lc.plan_repr;
  }
}

TEST(ChaosEngineRun, WatchStatsBalanceAcrossLifecycles) {
  // Direct probe of the satellite: a full run's final_watch must balance.
  const GuestProgram g = cat_guest();
  System sys(kPers);
  g.prepare_fs(sys.kernel().fs());
  const vm::RunResult r = sys.machine().run(sys.install(g.image).image, g.argv, "");
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.final_watch.live_ranges, 0u);
  EXPECT_EQ(r.final_watch.live_refs, 0u);
  EXPECT_EQ(r.final_watch.registered, r.final_watch.released);
  EXPECT_GT(r.final_watch.registered, 0u) << "shadow/cache never watched anything";
  EXPECT_GE(r.final_watch.peak_ranges, 1u);
}

}  // namespace
}  // namespace asc
