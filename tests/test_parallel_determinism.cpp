// The parallel execution engine's determinism contract (the whole point of
// util/executor.h): the installer emits byte-identical images, identical
// warnings, and identical policies at any job count, and a parallel fault
// campaign reproduces the serial verdict sequence exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/asc.h"
#include "fault/campaign.h"
#include "util/executor.h"
#include "workloads.h"

namespace asc {
namespace {

const auto kPers = os::Personality::LinuxSim;

installer::InstallResult install_with_jobs(const binary::Image& img, int jobs) {
  util::Executor ex(jobs);
  installer::Installer inst(test_key(), kPers);
  installer::InstallOptions opt;
  opt.program_id = 7;  // fixed id: the counter must not enter the comparison
  opt.executor = &ex;
  return inst.install(img, opt);
}

TEST(ParallelDeterminism, InstallIsByteIdenticalAcrossJobCounts) {
  for (const std::string name : {"gzip", "bison", "vuln_echo", "tar"}) {
    binary::Image img;
    for (auto& [n, i] : apps::build_all(kPers)) {
      if (n == name) img = i;
    }
    ASSERT_FALSE(img.name.empty()) << name;

    const installer::InstallResult ref = install_with_jobs(img, 1);
    for (const int jobs : {2, 8}) {
      const installer::InstallResult got = install_with_jobs(img, jobs);
      EXPECT_EQ(ref.image.serialize(), got.image.serialize())
          << name << " image differs at jobs=" << jobs;
      EXPECT_EQ(ref.warnings, got.warnings) << name << " warnings differ at jobs=" << jobs;
      ASSERT_EQ(ref.policies.size(), got.policies.size()) << name;
      for (std::size_t i = 0; i < ref.policies.size(); ++i) {
        EXPECT_EQ(ref.policies[i].to_string(), got.policies[i].to_string())
            << name << " policy " << i << " differs at jobs=" << jobs;
      }
    }
  }
}

TEST(ParallelDeterminism, AnalyzeWarningsKeepSerialOrder) {
  // Warnings are produced per function during the parallel site scan; the
  // merge must keep the function-order interleaving of the serial pass.
  binary::Image img = apps::build_bison(kPers);
  util::Executor e1(1);
  util::Executor e8(8);
  installer::Installer inst(test_key(), kPers);
  installer::InstallOptions o1;
  o1.executor = &e1;
  installer::InstallOptions o8;
  o8.executor = &e8;
  const auto a = inst.analyze(img, o1);
  const auto b = inst.analyze(img, o8);
  EXPECT_EQ(a.warnings, b.warnings);
  ASSERT_EQ(a.policies.size(), b.policies.size());
  ASSERT_EQ(a.scan.sites.size(), b.scan.sites.size());
  for (std::size_t i = 0; i < a.scan.sites.size(); ++i) {
    EXPECT_EQ(a.scan.sites[i].func, b.scan.sites[i].func);
    EXPECT_EQ(a.scan.sites[i].instr, b.scan.sites[i].instr);
    EXPECT_EQ(a.scan.sites[i].block, b.scan.sites[i].block);
  }
}

fault::GuestProgram cat_guest() {
  fault::GuestProgram g;
  g.name = "cat";
  g.image = apps::build_tool_cat(kPers);
  g.argv = {"/lines.txt", "/in.c"};
  g.prepare_fs = testing::prepare_fs;
  return g;
}

TEST(ParallelDeterminism, CampaignReproducesSerialVerdictsAtAnyJobCount) {
  auto run_with_jobs = [&](int jobs) {
    util::Executor ex(jobs);
    fault::CampaignConfig cfg;
    cfg.seed = 42;
    cfg.runs_per_class = 3;
    cfg.classes = {fault::MutationClass::CallMacFlip, fault::MutationClass::DescriptorFlip,
                   fault::MutationClass::PolicyStateCorrupt, fault::MutationClass::CrossReplay};
    cfg.executor = &ex;
    return fault::Campaign(cfg).run(cat_guest());
  };

  const fault::CampaignResult serial = run_with_jobs(1);
  const fault::CampaignResult parallel = run_with_jobs(8);

  EXPECT_EQ(serial.benign, parallel.benign);
  EXPECT_EQ(serial.detected, parallel.detected);
  EXPECT_EQ(serial.wrong_verdict, parallel.wrong_verdict);
  EXPECT_EQ(serial.silent_bypass, parallel.silent_bypass);
  EXPECT_EQ(serial.host_crash, parallel.host_crash);
  EXPECT_EQ(serial.not_applied, parallel.not_applied);
  EXPECT_EQ(serial.matrix, parallel.matrix);
  EXPECT_EQ(serial.summary(), parallel.summary());

  // Not just the tallies: the verdict SEQUENCE matches run for run.
  ASSERT_EQ(serial.verdicts.size(), parallel.verdicts.size());
  for (std::size_t i = 0; i < serial.verdicts.size(); ++i) {
    const fault::RunVerdict& a = serial.verdicts[i];
    const fault::RunVerdict& b = parallel.verdicts[i];
    EXPECT_EQ(a.spec.cls, b.spec.cls) << "run " << i;
    EXPECT_EQ(a.spec.trigger_call, b.spec.trigger_call) << "run " << i;
    EXPECT_EQ(a.spec.seed, b.spec.seed) << "run " << i;
    EXPECT_EQ(a.outcome, b.outcome) << "run " << i;
    EXPECT_EQ(a.violation, b.violation) << "run " << i;
    EXPECT_EQ(a.mutation, b.mutation) << "run " << i;
    EXPECT_EQ(a.detail, b.detail) << "run " << i;
  }
}

}  // namespace
}  // namespace asc
