// Policy model tests: descriptor bits, encoded policy/call layout,
// predecessor-set blob codec, authenticated strings, policy state,
// patterns (§5.1), metapolicies (§5.2), the authenticated fd set (§5.3).
#include <gtest/gtest.h>

#include "core/asc.h"
#include "policy/authstring.h"
#include "policy/capability.h"
#include "policy/descriptor.h"
#include "policy/metapolicy.h"
#include "policy/pattern.h"
#include "policy/policy.h"
#include "util/hex.h"
#include "util/rng.h"

namespace asc::policy {
namespace {

TEST(DescriptorTest, BitLayout) {
  Descriptor d;
  EXPECT_EQ(d.bits(), 0u);
  d.set_site();
  d.set_control_flow();
  d.set_arg_constrained(1);
  d.set_arg_authenticated_string(0);
  d.set_arg_pattern(2);
  EXPECT_TRUE(d.site_constrained());
  EXPECT_TRUE(d.control_flow_constrained());
  EXPECT_TRUE(d.arg_constrained(1));
  EXPECT_FALSE(d.arg_constrained(2));
  EXPECT_TRUE(d.arg_constrained(0));  // AS implies constrained
  EXPECT_TRUE(d.arg_is_authenticated_string(0));
  EXPECT_FALSE(d.arg_is_authenticated_string(1));
  EXPECT_TRUE(d.arg_has_pattern(2));
  EXPECT_THROW(d.arg_constrained(5), Error);
}

TEST(EncodedPolicy, LayoutIsDeterministicAndDescriptorSensitive) {
  EncodedPolicyInputs in;
  in.sysno = 5;
  Descriptor d;
  d.set_site();
  d.set_control_flow();
  d.set_arg_constrained(1);
  in.descriptor = d;
  in.call_site = 0x08048123;
  in.block_id = 0x00010004;
  in.arity = 3;
  in.const_values[1] = 0x42;
  in.pred_set = AsRef{0x08448020, 12, {}};
  in.lb_ptr = 0x08448000;
  const auto e1 = encode_policy(in);
  // u16 + u32 + u32 + u32 + u32 + (u32+u32+16) + u32 = 46 bytes
  EXPECT_EQ(e1.size(), 46u);
  auto in2 = in;
  in2.const_values[1] = 0x43;
  EXPECT_NE(encode_policy(in2), e1);
  auto in3 = in;
  in3.call_site += 1;
  EXPECT_NE(encode_policy(in3), e1);
  // Without the site bit, the call site vanishes from the encoding.
  auto in4 = in;
  Descriptor d4;
  d4.set_control_flow();
  d4.set_arg_constrained(1);
  in4.descriptor = d4;
  EXPECT_EQ(encode_policy(in4).size(), e1.size() - 4);
}

TEST(PredSetBlob, RoundTripsWithCapsAndPatterns) {
  const std::vector<std::uint32_t> preds{0, 0x10004, 0x10009};
  const std::vector<std::uint32_t> caps{0x10002};
  const std::vector<PatternRef> pats{{0, 0x08448100}, {1, 0x08448200}};
  const auto blob = encode_pred_set(preds, caps, pats);
  std::vector<std::uint32_t> p2, c2;
  std::vector<PatternRef> t2;
  ASSERT_TRUE(decode_pred_set(blob, p2, c2, t2));
  EXPECT_EQ(p2, preds);
  EXPECT_EQ(c2, caps);
  EXPECT_EQ(t2, pats);
}

TEST(PredSetBlob, RejectsTruncatedOrOversized) {
  const auto blob = encode_pred_set({1, 2, 3}, {}, {});
  std::vector<std::uint32_t> p, c;
  std::vector<PatternRef> t;
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::vector<std::uint8_t> trunc(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_pred_set(trunc, p, c, t)) << "cut=" << cut;
  }
  auto extra = blob;
  extra.push_back(0);
  EXPECT_FALSE(decode_pred_set(extra, p, c, t));
}

TEST(AuthString, LayoutAndVerification) {
  crypto::MacKey key(test_key());
  const auto content = util::bytes_of("/dev/console");
  const auto blob = build_authenticated_string(key, content);
  ASSERT_EQ(blob.size(), kAsHeaderSize + content.size());
  EXPECT_EQ(util::get_u32(blob, 0), content.size());
  crypto::Mac mac{};
  std::copy(blob.begin() + 4, blob.begin() + 20, mac.begin());
  EXPECT_TRUE(key.verify(content, mac));
}

TEST(AuthString, RejectsOversizedContent) {
  crypto::MacKey key(test_key());
  std::vector<std::uint8_t> big(kAsMaxLength + 1, 'x');
  EXPECT_THROW(build_authenticated_string(key, big), Error);
}

TEST(PolicyState, CounterActsAsNonce) {
  const auto a = encode_policy_state(7, 1);
  const auto b = encode_policy_state(7, 2);
  EXPECT_NE(a, b);
}

TEST(BlockIds, FrankensteinComposition) {
  EXPECT_EQ(make_block_id(3, 9, true), (3u << 16) | 9u);
  EXPECT_EQ(make_block_id(3, 9, false), 9u);
  EXPECT_EQ(make_block_id(3, kStartBlockLocal, true), 3u << 16);
}

// ---- §5.1 patterns ----

struct PatternCase {
  const char* pattern;
  const char* arg;
  bool matches;
};

const PatternCase kPatternCases[] = {
    {"/tmp/*", "/tmp/foo123", true},
    {"/tmp/*", "/etc/passwd", false},
    {"/tmp/*", "/tmp/", true},
    {"*", "", true},
    {"?at", "cat", true},
    {"?at", "at", false},
    {"/tmp/{foo,bar}*baz", "/tmp/foofoobaz", true},   // the paper's example
    {"/tmp/{foo,bar}*baz", "/tmp/barbaz", true},
    {"/tmp/{foo,bar}*baz", "/tmp/quxbaz", false},
    {"a*b*c", "abc", true},
    {"a*b*c", "axxbyyc", true},
    {"a*b*c", "ac", false},
    {"{a,ab}b", "abb", true},
    {"{ab,a}b", "ab", true},  // needs backtracking to the second choice
    {"literal", "literal", true},
    {"literal", "literally", false},
};

class PatternMatch : public ::testing::TestWithParam<PatternCase> {};

TEST_P(PatternMatch, ProofRoundTrip) {
  const auto& c = GetParam();
  const auto hint = match_and_prove(c.pattern, c.arg);
  EXPECT_EQ(hint.has_value(), c.matches) << c.pattern << " vs " << c.arg;
  if (hint.has_value()) {
    EXPECT_TRUE(verify_match(c.pattern, c.arg, *hint))
        << "honest hint must verify: " << c.pattern << " vs " << c.arg;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, PatternMatch, ::testing::ValuesIn(kPatternCases));

TEST(Pattern, PaperExampleHint) {
  // §5.1: pattern "/tmp/{foo,bar}*baz", argument "/tmp/foofoobaz",
  // hint (0, 3): choice 0 ("foo"), star consumes 3 chars.
  const auto hint = match_and_prove("/tmp/{foo,bar}*baz", "/tmp/foofoobaz");
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, (std::vector<std::uint32_t>{0, 3}));
}

TEST(Pattern, WrongHintFailsEvenIfArgumentMatches) {
  // "If the argument does not match the pattern or the hint is incorrect,
  // the check will fail."
  EXPECT_TRUE(verify_match("/tmp/*", "/tmp/abc", {3}));
  EXPECT_FALSE(verify_match("/tmp/*", "/tmp/abc", {2}));
  EXPECT_FALSE(verify_match("/tmp/*", "/tmp/abc", {4}));
  EXPECT_FALSE(verify_match("/tmp/*", "/tmp/abc", {}));
  EXPECT_FALSE(verify_match("/tmp/*", "/tmp/abc", {3, 0}));  // trailing junk
}

TEST(Pattern, FuzzedHintsNeverVerifyNonMatches) {
  util::Rng rng(99);
  const std::string pattern = "/tmp/{log,run}-*.dat";
  for (int i = 0; i < 300; ++i) {
    std::string arg = "/";
    const std::size_t len = rng.next_below(20);
    for (std::size_t j = 0; j < len; ++j) {
      arg.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    std::vector<std::uint32_t> hint;
    for (std::size_t j = 0; j < rng.next_below(4); ++j) {
      hint.push_back(static_cast<std::uint32_t>(rng.next_below(24)));
    }
    if (verify_match(pattern, arg, hint)) {
      // The verifier accepted: the argument must genuinely match.
      EXPECT_TRUE(match_and_prove(pattern, arg).has_value()) << arg;
    }
  }
}

TEST(Pattern, MalformedPatternsThrowOnValidate) {
  EXPECT_THROW(validate_pattern("/tmp/{unclosed"), Error);
  EXPECT_THROW(validate_pattern("{a,{b}}"), Error);
  EXPECT_THROW(validate_pattern("}oops"), Error);
  EXPECT_NO_THROW(validate_pattern("/tmp/{a,b}*?"));
}

TEST(Pattern, VerifyCostIsLinear) {
  // Pathological pattern for a backtracking matcher; the verifier with an
  // honest hint does linear work regardless.
  std::string pattern;
  for (int i = 0; i < 10; ++i) pattern += "a*";
  pattern += "b";
  std::string arg(40, 'a');
  arg.push_back('b');
  const auto hint = match_and_prove(pattern, arg);
  ASSERT_TRUE(hint.has_value());
  EXPECT_TRUE(verify_match(pattern, arg, *hint));
  EXPECT_LE(verify_cost(pattern, arg), pattern.size() + arg.size());
}

// ---- §5.2 metapolicies & templates ----

TEST(MetapolicyTest, FindsHolesForUnconstrainedRequiredArgs) {
  std::vector<SyscallPolicy> pols(1);
  pols[0].sys = os::SysId::Open;
  pols[0].arity = 3;
  pols[0].args[0].kind = ArgPolicy::Kind::Unconstrained;
  const auto holes = find_holes(pols, Metapolicy::strict_paths());
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0].arg, 0);
  EXPECT_EQ(holes[0].sys, os::SysId::Open);
}

TEST(MetapolicyTest, SatisfiedPolicyHasNoHoles) {
  std::vector<SyscallPolicy> pols(1);
  pols[0].sys = os::SysId::Open;
  pols[0].arity = 3;
  pols[0].args[0].kind = ArgPolicy::Kind::String;
  pols[0].args[0].str = "/etc/motd";
  EXPECT_TRUE(find_holes(pols, Metapolicy::strict_paths()).empty());
}

TEST(MetapolicyTest, FillingHolesProducesCompletePolicy) {
  PolicyTemplate t;
  t.policies.resize(1);
  t.policies[0].sys = os::SysId::Open;
  t.policies[0].arity = 3;
  t.holes = find_holes(t.policies, Metapolicy::strict_paths());
  ASSERT_FALSE(t.complete());
  t.fill_with_pattern(0, "/tmp/*");
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.policies[0].args[0].kind, ArgPolicy::Kind::Pattern);
  EXPECT_EQ(t.policies[0].args[0].str, "/tmp/*");
}

TEST(MetapolicyTest, PatternRequirementRejectsConstFill) {
  PolicyTemplate t;
  t.policies.resize(1);
  t.policies[0].sys = os::SysId::Open;
  t.policies[0].arity = 3;
  Metapolicy m;
  SyscallMeta meta{};
  meta.args[0] = ArgRequirement::MustPattern;
  m.set(os::SysId::Open, meta);
  t.holes = find_holes(t.policies, m);
  ASSERT_EQ(t.holes.size(), 1u);
  EXPECT_THROW(t.fill_with_const(0, 7), Error);
  t.fill_with_pattern(0, "/tmp/*");
  EXPECT_TRUE(t.complete());
}

// ---- §5.3 authenticated fd set ----

TEST(AuthFdSet, InsertRemoveContains) {
  crypto::MacKey key(test_key());
  const std::size_t cap = 8;
  std::vector<std::uint8_t> blob(AuthenticatedFdSet::blob_size(cap));
  std::uint64_t counter = 0;
  AuthenticatedFdSet::init(blob, cap, key, counter);
  EXPECT_TRUE(AuthenticatedFdSet::verify(blob, cap, key, counter));
  EXPECT_EQ(AuthenticatedFdSet::contains(blob, cap, key, counter, 4).value_or(true), false);
  EXPECT_TRUE(AuthenticatedFdSet::insert(blob, cap, key, counter, 4));
  EXPECT_TRUE(AuthenticatedFdSet::insert(blob, cap, key, counter, 5));
  EXPECT_EQ(counter, 2u);
  EXPECT_EQ(AuthenticatedFdSet::contains(blob, cap, key, counter, 4).value_or(false), true);
  EXPECT_TRUE(AuthenticatedFdSet::remove(blob, cap, key, counter, 4));
  EXPECT_EQ(AuthenticatedFdSet::contains(blob, cap, key, counter, 4).value_or(true), false);
  EXPECT_FALSE(AuthenticatedFdSet::remove(blob, cap, key, counter, 99));
}

TEST(AuthFdSet, TamperingIsDetected) {
  crypto::MacKey key(test_key());
  const std::size_t cap = 4;
  std::vector<std::uint8_t> blob(AuthenticatedFdSet::blob_size(cap));
  std::uint64_t counter = 0;
  AuthenticatedFdSet::init(blob, cap, key, counter);
  ASSERT_TRUE(AuthenticatedFdSet::insert(blob, cap, key, counter, 3));
  // Direct slot edit without re-MAC:
  auto evil = blob;
  util::set_u32(evil, 4, 9);
  EXPECT_FALSE(AuthenticatedFdSet::verify(evil, cap, key, counter));
  EXPECT_FALSE(AuthenticatedFdSet::insert(evil, cap, key, counter, 5));
}

TEST(AuthFdSet, ReplayOfOldBlobIsDetected) {
  crypto::MacKey key(test_key());
  const std::size_t cap = 4;
  std::vector<std::uint8_t> blob(AuthenticatedFdSet::blob_size(cap));
  std::uint64_t counter = 0;
  AuthenticatedFdSet::init(blob, cap, key, counter);
  ASSERT_TRUE(AuthenticatedFdSet::insert(blob, cap, key, counter, 3));
  const auto snapshot = blob;  // valid at counter 1
  ASSERT_TRUE(AuthenticatedFdSet::remove(blob, cap, key, counter, 3));  // counter 2
  blob = snapshot;  // attacker restores the old memory
  EXPECT_FALSE(AuthenticatedFdSet::verify(blob, cap, key, counter));
}

TEST(AuthFdSet, FullSetRejectsInsert) {
  crypto::MacKey key(test_key());
  const std::size_t cap = 2;
  std::vector<std::uint8_t> blob(AuthenticatedFdSet::blob_size(cap));
  std::uint64_t counter = 0;
  AuthenticatedFdSet::init(blob, cap, key, counter);
  EXPECT_TRUE(AuthenticatedFdSet::insert(blob, cap, key, counter, 1));
  EXPECT_TRUE(AuthenticatedFdSet::insert(blob, cap, key, counter, 2));
  EXPECT_FALSE(AuthenticatedFdSet::insert(blob, cap, key, counter, 3));
}

}  // namespace
}  // namespace asc::policy
