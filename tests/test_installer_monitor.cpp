// Installer output properties and the training/Systrace baseline monitors
// (the machinery behind Tables 1 and 2).
#include <gtest/gtest.h>

#include <set>

#include "monitor/ktable.h"
#include "monitor/systrace.h"
#include "monitor/training.h"
#include "workloads.h"

namespace asc {
namespace {

using testing::prepare_fs;

TEST(InstallerTest, OutputIsNonRelocatableAndAuthenticated) {
  System sys(os::Personality::LinuxSim);
  auto inst = sys.install(apps::build_tool_cat(os::Personality::LinuxSim));
  EXPECT_TRUE(inst.image.authenticated);
  EXPECT_FALSE(inst.image.relocatable);
  EXPECT_TRUE(inst.image.relocs.empty());
  EXPECT_NE(inst.image.program_id, 0);
  EXPECT_NE(inst.image.find_section(binary::SectionKind::AsData), nullptr);
}

TEST(InstallerTest, RefusesNonRelocatableInput) {
  System sys(os::Personality::LinuxSim);
  auto img = apps::build_tool_cat(os::Personality::LinuxSim);
  img.relocatable = false;
  EXPECT_THROW(sys.install(img), Error);
}

TEST(InstallerTest, ProgramIdsAreUniquePerInstaller) {
  System sys(os::Personality::LinuxSim);
  auto a = sys.install(apps::build_tool_rm(os::Personality::LinuxSim));
  auto b = sys.install(apps::build_tool_mv(os::Personality::LinuxSim));
  EXPECT_NE(a.image.program_id, b.image.program_id);
}

TEST(InstallerTest, EveryPolicyHasSiteAndPredecessors) {
  System sys(os::Personality::LinuxSim);
  auto inst = sys.install(apps::build_bison(os::Personality::LinuxSim));
  ASSERT_FALSE(inst.policies.empty());
  std::set<std::uint32_t> sites;
  for (const auto& p : inst.policies) {
    EXPECT_NE(p.call_site, 0u);
    EXPECT_TRUE(sites.insert(p.call_site).second) << "call sites must be distinct";
    EXPECT_TRUE(p.control_flow);
    EXPECT_FALSE(p.predecessors.empty()) << os::signature(p.sys).name;
    // Composed block ids carry the program id in the upper half (§5.5).
    EXPECT_EQ(p.block_id >> 16, inst.image.program_id);
  }
}

TEST(InstallerTest, StringArgumentsBecomeAuthenticatedStrings) {
  System sys(os::Personality::LinuxSim);
  auto inst = sys.install(apps::build_vuln_echo(os::Personality::LinuxSim));
  const policy::SyscallPolicy* spawn = nullptr;
  for (const auto& p : inst.policies) {
    if (p.sys == os::SysId::Spawn) spawn = &p;
  }
  ASSERT_NE(spawn, nullptr);
  EXPECT_EQ(spawn->args[0].kind, policy::ArgPolicy::Kind::String);
  EXPECT_EQ(spawn->args[0].str, "/bin/ls");
  // The descriptor must carry the AS bit so the kernel knows to check it.
  EXPECT_TRUE(spawn->descriptor().arg_is_authenticated_string(0));
}

TEST(InstallerTest, MetapolicyHolesBlockRewrite) {
  System sys(os::Personality::LinuxSim);
  installer::InstallOptions opts;
  opts.metapolicy = policy::Metapolicy::strict_paths();
  // cat opens argv-derived paths: no value derivable -> hole -> install fails.
  EXPECT_THROW(sys.install(apps::build_tool_cat(os::Personality::LinuxSim), opts), Error);
}

TEST(InstallerTest, CrossPersonalityPoliciesDisagree) {
  // Policies are OS-specific (Table 1's first two columns): both the
  // syscall numbers AND the syscall sets differ.
  installer::Installer lin(test_key(), os::Personality::LinuxSim);
  installer::Installer bsd(test_key(), os::Personality::BsdSim);
  auto gl = lin.analyze(apps::build_bison(os::Personality::LinuxSim));
  auto gb = bsd.analyze(apps::build_bison(os::Personality::BsdSim));
  std::set<std::string> lset, bset;
  for (const auto& p : gl.policies) lset.insert(os::signature(p.sys).name);
  for (const auto& p : gb.policies) bset.insert(os::signature(p.sys).name);
  EXPECT_NE(lset, bset);
  EXPECT_TRUE(lset.count("time") == 1);     // Linux libc uses time(2)
  EXPECT_TRUE(bset.count("time") == 0);     // BSD libc emulates via gettimeofday
  EXPECT_TRUE(bset.count("close") == 0);    // opaque stub on BSD
  EXPECT_TRUE(lset.count("close") == 1);
}

// ---- training / Systrace baselines ----

TEST(Training, PolicyContainsExactlyObservedCalls) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  prepare_fs(sys.kernel().fs());
  auto img = apps::build_calc(os::Personality::LinuxSim);
  // Train on arithmetic only.
  auto pol = monitor::train_policy(sys.machine(), img,
                                   {{{}, "add 1 2\nmul 3 4\n"}});
  const auto read_no = *os::syscall_number(os::Personality::LinuxSim, os::SysId::Read);
  const auto socket_no = *os::syscall_number(os::Personality::LinuxSim, os::SysId::Socket);
  EXPECT_EQ(pol.allowed.count(read_no), 1u);
  EXPECT_EQ(pol.allowed.count(socket_no), 0u) << "net path was never exercised";
}

TEST(Training, UntrainedFeatureCausesFalseAlarm) {
  // The paper's core point about training: a legitimate run that exercises
  // an untrained feature gets the process killed (false alarm) -- which the
  // static-analysis ASC policies never do.
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  prepare_fs(sys.kernel().fs());
  auto img = apps::build_calc(os::Personality::LinuxSim);
  auto pol = monitor::train_policy(sys.machine(), img, {{{}, "add 1 2\n"}});
  sys.kernel().set_monitor_policy("calc", pol);
  sys.kernel().set_enforcement(os::Enforcement::Daemon);
  // Legit arithmetic still passes...
  auto ok = sys.machine().run(img, {}, "add 5 6\n");
  EXPECT_TRUE(ok.completed) << ok.violation_detail;
  // ...but the (legitimate!) net feature is killed.
  auto killed = sys.machine().run(img, {}, "net\n");
  EXPECT_FALSE(killed.completed);
  EXPECT_EQ(killed.violation, os::Violation::MonitorDenied);
}

TEST(Training, AscPolicyHasNoFalseAlarmOnSameFeature) {
  System sys(os::Personality::LinuxSim);
  prepare_fs(sys.kernel().fs());
  auto inst = sys.install(apps::build_calc(os::Personality::LinuxSim));
  auto r = sys.machine().run(inst.image, {}, "net\n");
  EXPECT_TRUE(r.completed) << r.violation_detail;
}

TEST(Systrace, PublishedPolicyUsesAliases) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  prepare_fs(sys.kernel().fs());
  auto img = apps::build_bison(os::Personality::LinuxSim);
  auto trained = monitor::train_policy(sys.machine(), img, {{{"/gram.y"}, ""}});
  auto pub = monitor::make_published_policy(trained, os::Personality::LinuxSim);
  // bison stats its input -> fsread alias appears; the alias then PERMITS
  // calls bison never makes (Table 2's mkdir/readlink/rmdir/unlink rows).
  EXPECT_TRUE(pub.runtime.allow_fsread);
  EXPECT_TRUE(pub.runtime.allow_fswrite);
  EXPECT_EQ(pub.named.count("fsread"), 1u);
  EXPECT_EQ(pub.permitted.count("readlink"), 1u);
  EXPECT_EQ(pub.permitted.count("rmdir"), 1u);
  // And the alias hides the individually-trained fs calls from the named
  // list, shrinking the "policy size" the way published policies do.
  EXPECT_EQ(pub.named.count("stat"), 0u);
}

TEST(Systrace, TrainedPolicyMissesErrorPathCalls) {
  // Compare sets: static analysis (ASC) vs training (Systrace stand-in).
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  prepare_fs(sys.kernel().fs());
  auto img = apps::build_bison(os::Personality::LinuxSim);
  auto trained = monitor::train_policy(sys.machine(), img, {{{"/gram.y"}, ""}});
  auto pub = monitor::make_published_policy(trained, os::Personality::LinuxSim);

  installer::Installer inst(test_key(), os::Personality::LinuxSim);
  auto gp = inst.analyze(img);
  std::set<std::string> asc_names;
  for (const auto& p : gp.policies) asc_names.insert(os::signature(p.sys).name);

  // ASC finds the socket/sendto error path and the verbose-mode calls that
  // training cannot see.
  EXPECT_EQ(asc_names.count("socket"), 1u);
  EXPECT_EQ(asc_names.count("sendto"), 1u);
  EXPECT_EQ(asc_names.count("kill"), 1u);
  EXPECT_EQ(pub.permitted.count("socket"), 0u);
  EXPECT_EQ(pub.permitted.count("sendto"), 0u);
  // And the ASC set strictly contains more calls than training observed.
  std::set<std::string> trained_names;
  for (auto n : trained.allowed) {
    if (auto id = os::syscall_from_number(os::Personality::LinuxSim, n)) {
      trained_names.insert(os::signature(*id).name);
    }
  }
  for (const auto& n : trained_names) {
    EXPECT_EQ(asc_names.count(n), 1u) << "conservative analysis must cover " << n;
  }
  EXPECT_GT(asc_names.size(), trained_names.size());
}

TEST(KernelTableMonitor, EnforcesSameSetCheaply) {
  System sys(os::Personality::LinuxSim);
  prepare_fs(sys.kernel().fs());
  auto img = apps::build_tool_cat(os::Personality::LinuxSim);
  auto inst = sys.install(img);
  auto table = monitor::table_from_asc_policies(inst.policies);
  sys.kernel().set_monitor_policy("cat", table);
  sys.kernel().set_enforcement(os::Enforcement::KernelTable);
  auto r = sys.machine().run(img, {"/lines.txt"});
  EXPECT_TRUE(r.completed) << r.violation_detail;
  // A program with no policy in the table is denied on its first call.
  auto r2 = sys.machine().run(apps::build_tool_rm(os::Personality::LinuxSim), {"/x"});
  EXPECT_FALSE(r2.completed);
  EXPECT_EQ(r2.violation, os::Violation::MonitorDenied);
}

}  // namespace
}  // namespace asc
