// Property-based tests.
//
// 1. NO FALSE ALARMS: for randomly generated guest programs, the installed
//    binary behaves identically under enforcement (the conservative-
//    analysis guarantee, fuzzed over program shapes).
// 2. NO MISSED TAMPERING: random corruption of the extra-argument registers
//    or of the policy blobs at a random system call is always detected.
#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "tasm/assembler.h"
#include "util/rng.h"
#include "workloads.h"

namespace asc {
namespace {

using apps::R0;
using apps::R1;
using apps::R2;
using apps::R3;
using apps::R11;
using apps::R12;

/// Generate a random guest: a chain of "segments", each doing some register
/// arithmetic, an optional loop, and a randomly chosen safe system call.
binary::Image random_program(std::uint64_t seed) {
  util::Rng rng(seed);
  tasm::Assembler a("fuzz" + std::to_string(seed));
  a.func("main");
  const int segments = static_cast<int>(rng.next_in(2, 8));
  for (int s = 0; s < segments; ++s) {
    const std::string lbl = ".seg" + std::to_string(s);
    // Arithmetic noise.
    a.movi(R11, static_cast<std::uint32_t>(rng.next_u64() & 0xffff));
    a.movi(R12, static_cast<std::uint32_t>(rng.next_in(1, 9)));
    switch (rng.next_below(4)) {
      case 0: a.add(R11, R12); break;
      case 1: a.mul(R11, R12); break;
      case 2: a.xor_(R11, R12); break;
      default: a.mod(R11, R12); break;
    }
    // Optional small loop.
    if (rng.chance(1, 2)) {
      a.movi(R12, static_cast<std::uint32_t>(rng.next_in(1, 5)));
      a.label(lbl);
      a.subi(R12, 1);
      a.cmpi(R12, 0);
      a.jnz(lbl);
    }
    // Optional branch over the syscall (exercises multi-predecessor sets).
    const bool branch = rng.chance(1, 3);
    const std::string skip = ".skip" + std::to_string(s);
    if (branch) {
      a.cmpi(R11, static_cast<std::uint32_t>(rng.next_below(2) * 0xffffffffull));
      a.jz(skip);
    }
    switch (rng.next_below(7)) {
      case 0:
        a.call("sys_getpid");
        break;
      case 1:
        a.call("sys_getuid");
        break;
      case 2:
        a.movi(R1, static_cast<std::uint32_t>(rng.next_below(0777)));
        a.call("sys_umask");
        break;
      case 3:
        a.movi(R1, 0);
        a.call("sys_time");
        break;
      case 4:
        a.lea(R1, "fz_msg");
        a.call("print");
        break;
      case 5: {
        a.lea(R1, "fz_path");
        a.movi(R2, apps::O_RDONLY);
        a.movi(R3, 0);
        a.call("sys_open");
        a.cmpi(R0, 0);
        a.jlt(skip + "o");
        a.mov(R1, R0);
        a.call("sys_close");
        a.label(skip + "o");
        break;
      }
      default:
        a.lea(R1, "fz_path");
        a.lea(R2, "fz_stat");
        a.call("sys_stat");
        break;
    }
    if (branch) a.label(skip);
  }
  a.movi(R0, static_cast<std::uint32_t>(rng.next_below(64)));
  a.ret();
  a.rodata_cstr("fz_msg", "segment\n");
  a.rodata_cstr("fz_path", "/fuzz.txt");
  a.bss("fz_stat", 16);
  apps::emit_libc(a, os::Personality::LinuxSim);
  return a.link();
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, NoFalseAlarms) {
  const auto img = random_program(GetParam());

  System base(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  base.kernel().fs().open("/", "/fuzz.txt", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  auto r0 = base.machine().run(img);
  ASSERT_TRUE(r0.completed) << r0.violation_detail;

  System sys(os::Personality::LinuxSim);
  sys.kernel().fs().open("/", "/fuzz.txt", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  auto inst = sys.install(img);
  auto r1 = sys.machine().run(inst.image);
  EXPECT_TRUE(r1.completed) << os::violation_name(r1.violation) << ": " << r1.violation_detail;
  EXPECT_EQ(r1.violation, os::Violation::None);
  EXPECT_EQ(r1.exit_code, r0.exit_code);
  EXPECT_EQ(r1.stdout_data, r0.stdout_data);
  EXPECT_EQ(r1.syscalls, r0.syscalls);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 33));

class RandomTampering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTampering, AlwaysDetected) {
  util::Rng rng(GetParam() * 7919);
  const auto img = apps::build_tool_cat(os::Personality::LinuxSim);

  System sys(os::Personality::LinuxSim);
  testing::prepare_fs(sys.kernel().fs());
  auto inst = sys.install(img);

  // Pick a random syscall occurrence and a random tampering action.
  const int target = static_cast<int>(rng.next_in(1, 6));
  const int action = static_cast<int>(rng.next_below(6));
  int count = 0;
  bool tampered = false;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (++count != target) return;
    tampered = true;
    auto& regs = p.cpu.regs;
    switch (action) {
      case 0:  // flip a bit in the policy descriptor
        regs[isa::kRegPolicyDescriptor] ^= 1u << rng.next_below(18);
        break;
      case 1:  // change the claimed block id
        regs[isa::kRegBlockId] += static_cast<std::uint32_t>(rng.next_in(1, 1000));
        break;
      case 2:  // repoint the predecessor set
        regs[isa::kRegPredSet] += 4 * static_cast<std::uint32_t>(rng.next_in(1, 8));
        break;
      case 3:  // repoint the policy state
        regs[isa::kRegStatePtr] += 4;
        break;
      case 4:  // flip a bit of the call MAC in memory
      {
        const std::uint32_t mac_ptr = regs[isa::kRegCallMac];
        const std::uint32_t off = static_cast<std::uint32_t>(rng.next_below(16));
        p.mem.w8(mac_ptr + off,
                 static_cast<std::uint8_t>(p.mem.r8(mac_ptr + off) ^
                                           (1u << rng.next_below(8))));
        break;
      }
      default:  // corrupt a byte of the predecessor-set content
      {
        const std::uint32_t body = regs[isa::kRegPredSet];
        const std::uint32_t len = p.mem.r32(body - 20);
        const std::uint32_t off = static_cast<std::uint32_t>(rng.next_below(len));
        p.mem.w8(body + off, static_cast<std::uint8_t>(p.mem.r8(body + off) ^ 0x40));
        break;
      }
    }
  };
  auto r = sys.machine().run(inst.image, {"/lines.txt"});
  ASSERT_TRUE(tampered) << "cat must make at least " << target << " syscalls";
  EXPECT_FALSE(r.completed) << "tampering action " << action << " went undetected";
  EXPECT_NE(r.violation, os::Violation::None);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTampering,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Determinism, InstallationIsReproducible) {
  // Same input + same key => byte-identical authenticated binary. Security
  // audits depend on this.
  System s1(os::Personality::LinuxSim);
  System s2(os::Personality::LinuxSim);
  auto a = s1.install(apps::build_gzip(os::Personality::LinuxSim));
  auto b = s2.install(apps::build_gzip(os::Personality::LinuxSim));
  EXPECT_EQ(a.image.serialize(), b.image.serialize());
}

TEST(Determinism, DifferentKeysDifferentMacs) {
  crypto::Key128 other = test_key();
  other[0] ^= 0xff;
  System s1(os::Personality::LinuxSim, test_key());
  System s2(os::Personality::LinuxSim, other);
  auto a = s1.install(apps::build_tool_rm(os::Personality::LinuxSim));
  auto b = s2.install(apps::build_tool_rm(os::Personality::LinuxSim));
  EXPECT_NE(a.image.serialize(), b.image.serialize());
  // A binary installed under one key must not run under another kernel key.
  auto r = s2.machine().run(a.image, {"/x"});
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadCallMac);
}

}  // namespace
}  // namespace asc
