// The verified-call cache (os/asccache.h): the MAC-verification fast path
// must buy cycles without buying trust. Hits require byte-identical static
// material; entries die on guest writes into their backing ranges, on key
// rotation, and on process teardown; one process's verified entry can never
// serve another.
#include <gtest/gtest.h>

#include <set>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "isa/isa.h"
#include "os/asccache.h"
#include "tasm/assembler.h"
#include "vm/memory.h"
#include "workloads.h"

namespace asc {
namespace {

using os::AscCache;

const auto kPers = os::Personality::LinuxSim;

using Bytes = std::vector<std::uint8_t>;

AscCache::Entry entry_with(Bytes material,
                           std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges = {}) {
  AscCache::Entry e;
  e.material = std::move(material);
  e.ranges = std::move(ranges);
  return e;
}

// ---- pure cache semantics ----

TEST(AscCacheUnit, LookupRequiresByteIdenticalMaterial) {
  AscCache cache;
  const AscCache::Key k{1, 0x100, 0xab, 7};
  EXPECT_EQ(cache.lookup(k, Bytes{42}), nullptr);  // cold
  cache.insert(k, entry_with({42}));
  EXPECT_NE(cache.lookup(k, Bytes{42}), nullptr);
  // Same site, different bytes behind it: must be a miss, never a stale hit.
  EXPECT_EQ(cache.lookup(k, Bytes{43}), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

// The hit check is an exact comparison of the verified bytes, not a hash: a
// guest that engineers same-length material with a colliding digest (FNV-1a
// and friends are invertible) must still miss. Any pair of distinct
// equal-length byte strings stands in for such a collision here.
TEST(AscCacheUnit, SameLengthDifferentBytesNeverHit) {
  AscCache cache;
  const AscCache::Key k{1, 0x100, 0xab, 7};
  const Bytes verified{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77};
  cache.insert(k, entry_with(verified));
  for (std::size_t byte = 0; byte < verified.size(); ++byte) {
    Bytes forged = verified;
    forged[byte] ^= 0x01;
    EXPECT_EQ(cache.lookup(k, forged), nullptr)
        << "byte " << byte << " differs but the cache served a hit";
  }
  // Prefix/extension of the verified bytes must miss too.
  EXPECT_EQ(cache.lookup(k, Bytes(verified.begin(), verified.end() - 1)), nullptr);
  Bytes extended = verified;
  extended.push_back(0x00);
  EXPECT_EQ(cache.lookup(k, extended), nullptr);
  EXPECT_NE(cache.lookup(k, verified), nullptr);
}

TEST(AscCacheUnit, EntriesArePidIsolated) {
  AscCache cache;
  const AscCache::Key pid_a{1, 0x100, 0xab, 7};
  AscCache::Key pid_b = pid_a;
  pid_b.pid = 2;
  cache.insert(pid_a, entry_with({42}));
  // Identical site/descriptor/block and identical material -- but a
  // different process. Serving A's verification to B would let B ride on
  // A's policy.
  EXPECT_EQ(cache.lookup(pid_b, Bytes{42}), nullptr);
  EXPECT_NE(cache.lookup(pid_a, Bytes{42}), nullptr);
  EXPECT_EQ(cache.size(1), 1u);
  EXPECT_EQ(cache.size(2), 0u);
}

TEST(AscCacheUnit, InvalidateWriteEvictsOnlyOverlappingEntries) {
  AscCache cache;
  const AscCache::Key k1{1, 0x100, 0xab, 7};
  const AscCache::Key k2{1, 0x200, 0xab, 8};
  cache.insert(k1, entry_with({1}, {{0x1000, 16}}));
  cache.insert(k2, entry_with({2}, {{0x2000, 16}}));
  cache.invalidate_write(1, 0x1008, 4);  // inside k1's range only
  EXPECT_EQ(cache.lookup(k1, Bytes{1}), nullptr);
  EXPECT_NE(cache.lookup(k2, Bytes{2}), nullptr);
  // A write in another pid's address space touches nothing of pid 1.
  cache.invalidate_write(2, 0x2000, 16);
  EXPECT_NE(cache.lookup(k2, Bytes{2}), nullptr);
  // invalidation_writes counts watched writes delivered to the cache (both
  // calls above); evictions counts entries actually dropped (only k1).
  EXPECT_EQ(cache.stats().invalidation_writes, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(AscCacheUnit, EvictPidAndClear) {
  AscCache cache;
  cache.insert({1, 0x100, 0, 0}, entry_with({1}));
  cache.insert({1, 0x200, 0, 0}, entry_with({2}));
  cache.insert({2, 0x100, 0, 0}, entry_with({3}));
  cache.evict_pid(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.size(2), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 3u);
}

// Every path that drops an entry must return its watch ranges through the
// per-pid unwatch hook; otherwise the process's Memory accumulates stale
// ranges (and O(n) invalidation scans) for its whole lifetime.
TEST(AscCacheUnit, EveryEvictionPathUnwatchesItsRanges) {
  AscCache cache;
  std::multiset<std::pair<std::uint32_t, std::uint32_t>> watched;
  cache.set_range_hooks(
      1, [&](std::uint32_t a, std::uint32_t l) { watched.insert({a, l}); },
      [&](std::uint32_t a, std::uint32_t l) {
        const auto it = watched.find({a, l});
        ASSERT_NE(it, watched.end()) << "unwatch of a range never watched";
        watched.erase(it);
      });

  // insert registers; invalidate_write eviction unregisters.
  cache.insert({1, 0x100, 0, 0}, entry_with({1}, {{0x1000, 16}, {0x1100, 32}}));
  EXPECT_EQ(watched.size(), 2u);
  cache.invalidate_write(1, 0x1000, 1);
  EXPECT_EQ(watched.size(), 0u);

  // Replacement on insert unregisters the stale entry's ranges.
  cache.insert({1, 0x100, 0, 0}, entry_with({1}, {{0x1000, 16}}));
  cache.insert({1, 0x100, 0, 0}, entry_with({2}, {{0x2000, 16}}));
  EXPECT_EQ(watched.size(), 1u);
  EXPECT_EQ(watched.count({0x2000, 16}), 1u);

  // clear() unregisters everything.
  cache.clear();
  EXPECT_EQ(watched.size(), 0u);

  // Capacity eviction unregisters the victim's ranges.
  AscCache tiny(2);
  std::size_t tiny_watched = 0;
  tiny.set_range_hooks(
      1, [&](std::uint32_t, std::uint32_t) { ++tiny_watched; },
      [&](std::uint32_t, std::uint32_t) { --tiny_watched; });
  tiny.insert({1, 0x100, 0, 0}, entry_with({1}, {{0x1000, 16}}));
  tiny.insert({1, 0x200, 0, 0}, entry_with({2}, {{0x2000, 16}}));
  tiny.insert({1, 0x300, 0, 0}, entry_with({3}, {{0x3000, 16}}));
  EXPECT_EQ(tiny.size(), 2u);
  EXPECT_EQ(tiny_watched, 2u);

  // evict_pid unregisters, then drops the hooks entirely.
  tiny.evict_pid(1);
  EXPECT_EQ(tiny_watched, 0u);
}

// At capacity the victim is the least-hit entry (ties broken by a rotating
// cursor), not blindly the lowest (pid, site) key -- a full cache must not
// permanently zero out one process's low-address sites.
TEST(AscCacheUnit, CapacityEvictionPrefersColdEntriesOverLowKeys) {
  AscCache cache(4);
  for (std::uint32_t site = 1; site <= 4; ++site) {
    cache.insert({1, site, 0, 0}, entry_with({static_cast<std::uint8_t>(site)}));
  }
  // Heat up the three lowest keys; site 4 stays cold.
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t site = 1; site <= 3; ++site) {
      EXPECT_NE(cache.lookup({1, site, 0, 0}, Bytes{static_cast<std::uint8_t>(site)}), nullptr);
    }
  }
  cache.insert({2, 0x500, 0, 0}, entry_with({5}));
  EXPECT_EQ(cache.size(), 4u);
  // The cold entry went; the hot low-key entries survived.
  EXPECT_EQ(cache.lookup({1, 4, 0, 0}, Bytes{4}), nullptr);
  for (std::uint32_t site = 1; site <= 3; ++site) {
    EXPECT_NE(cache.lookup({1, site, 0, 0}, Bytes{static_cast<std::uint8_t>(site)}), nullptr)
        << "hot site " << site << " was victimized while a cold entry existed";
  }
}

// vm::Memory watch ranges are refcounted: nested watch/unwatch of the same
// range keeps it firing until the last registration is gone, and a removed
// range stops firing (and shrinks the envelope) instead of lingering.
TEST(AscCacheUnit, MemoryWatchRefcounting) {
  vm::Memory mem;
  const std::uint32_t addr = binary::kAddressSpaceBase + 0x100;
  int fires = 0;
  mem.set_write_watch([&](std::uint32_t, std::uint32_t) { ++fires; });

  mem.watch(addr, 16);
  mem.watch(addr, 16);  // second registration of the identical range
  EXPECT_EQ(mem.watch_count(), 1u);
  mem.w8(addr, 1);
  EXPECT_EQ(fires, 1);

  mem.unwatch(addr, 16);  // one registration remains
  EXPECT_EQ(mem.watch_count(), 1u);
  mem.w8(addr, 2);
  EXPECT_EQ(fires, 2);

  mem.unwatch(addr, 16);  // last registration gone: range stops firing
  EXPECT_EQ(mem.watch_count(), 0u);
  mem.w8(addr, 3);
  EXPECT_EQ(fires, 2);

  // Unwatching a range that was never watched is a harmless no-op.
  mem.unwatch(addr + 0x100, 4);
  EXPECT_EQ(mem.watch_count(), 0u);
}

// ---- end-to-end: the fast path on real guests ----

vm::RunResult run_cat(System& sys) {
  testing::prepare_fs(sys.kernel().fs());
  const auto inst = sys.install(apps::build_tool_cat(kPers));
  return sys.machine().run(inst.image, {"/lines.txt", "/in.c"});
}

TEST(AscCacheRun, RepeatedSitesHitAndBehaviorIsIdentical) {
  System cached(kPers);
  const auto rc = run_cat(cached);
  ASSERT_TRUE(rc.completed) << rc.violation_detail;
  const auto& st = cached.kernel().cache_stats();
  EXPECT_GT(st.hits, 0u) << "cat's read/write loop repeats sites; they must hit";
  EXPECT_GT(st.misses, 0u) << "first visit of each site is a miss";
  EXPECT_GT(st.hit_rate(), 0.0);

  System uncached(kPers);
  uncached.kernel().set_verified_call_cache(false);
  const auto ru = run_cat(uncached);
  ASSERT_TRUE(ru.completed) << ru.violation_detail;

  // The cache may change cycle accounting, nothing else.
  EXPECT_EQ(rc.exit_code, ru.exit_code);
  EXPECT_EQ(rc.stdout_data, ru.stdout_data);
  EXPECT_EQ(rc.stderr_data, ru.stderr_data);
  EXPECT_EQ(rc.syscalls, ru.syscalls);
  EXPECT_LT(rc.cycles, ru.cycles) << "hits must charge strictly less than full verification";
  EXPECT_EQ(uncached.kernel().cache_stats().hits, 0u);
  EXPECT_EQ(uncached.kernel().cache_stats().misses, 0u);
}

// A tight getpid loop (the paper's Table 4 microbenchmark shape): after the
// first trap every call is a hit, so the authenticated per-call overhead
// must drop by at least 30% vs the uncached checker (the PR's acceptance
// bar; in practice the reduction is larger).
TEST(AscCacheRun, CachedOverheadAtLeastThirtyPercentLower) {
  constexpr std::uint32_t kIters = 2000;
  auto build_loop = [&]() {
    using namespace asc::apps;
    tasm::Assembler a("pidloop");
    a.func("main");
    a.subi(SP, 4);
    a.movi(R11, kIters);
    a.store(SP, 0, R11);
    a.label(".loop");
    a.load(R11, SP, 0);
    a.cmpi(R11, 0);
    a.jz(".done");
    a.call("sys_getpid");
    a.load(R11, SP, 0);
    a.subi(R11, 1);
    a.store(SP, 0, R11);
    a.jmp(".loop");
    a.label(".done");
    a.addi(SP, 4);
    a.movi(R0, 0);
    a.ret();
    emit_libc(a, kPers);
    return a.link();
  };

  auto cycles = [&](os::Enforcement mode, bool cache_on) -> double {
    System sys(kPers, test_key(), mode);
    sys.kernel().set_verified_call_cache(cache_on);
    binary::Image img = build_loop();
    if (mode == os::Enforcement::Asc) img = sys.install(img).image;
    const auto r = sys.machine().run(img);
    EXPECT_TRUE(r.completed) << r.violation_detail;
    return static_cast<double>(r.cycles);
  };

  const double base = cycles(os::Enforcement::Off, false);
  const double auth = cycles(os::Enforcement::Asc, false);
  const double auth_cached = cycles(os::Enforcement::Asc, true);
  const double ovh = (auth - base) / kIters;
  const double ovh_cached = (auth_cached - base) / kIters;
  ASSERT_GT(ovh, 0.0);
  const double reduction = (ovh - ovh_cached) / ovh;
  EXPECT_GE(reduction, 0.30) << "per-call overhead: uncached " << ovh << " cycles, cached "
                             << ovh_cached << " cycles";
}

TEST(AscCacheRun, GuestWriteIntoCachedRangeEvicts) {
  System sys(kPers);
  // At the 6th trap, rewrite one byte of the presented call MAC with its own
  // value. The bytes do not change, but the write watch must still fire and
  // evict -- eviction is keyed on the write, not on the value -- and the
  // subsequent full re-verification succeeds, so the run completes.
  int calls = 0;
  std::size_t watches_before = 0;
  std::size_t watches_after = 0;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (++calls != 6) return;
    const std::uint32_t mac_ptr = p.cpu.regs[isa::kRegCallMac];
    if (p.mem.in_range(mac_ptr, 16)) {
      watches_before = p.mem.watch_count();
      p.mem.w8(mac_ptr, p.mem.r8(mac_ptr));
      watches_after = p.mem.watch_count();
    }
  };
  const auto r = run_cat(sys);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  const auto& st = sys.kernel().cache_stats();
  EXPECT_GE(st.invalidation_writes, 1u) << "watched write did not reach the cache";
  EXPECT_GE(st.evictions, 1u);
  // The evicted entry returned its ranges: the Memory watch set shrank
  // rather than accumulating stale ranges for the life of the process.
  EXPECT_LT(watches_after, watches_before);
}

TEST(AscCacheRun, KeyRotationClearsTheCache) {
  System sys(kPers);
  sys.kernel().call_cache().insert({1, 0x100, 0xab, 7}, entry_with({42}));
  ASSERT_EQ(sys.kernel().call_cache().size(), 1u);
  sys.kernel().set_key(test_key());  // rotation: old verifications are void
  EXPECT_EQ(sys.kernel().call_cache().size(), 0u);
}

TEST(AscCacheRun, ProcessTeardownEvictsItsEntries) {
  System sys(kPers);
  std::size_t live_during_run = 0;
  int calls = 0;
  sys.machine().pre_syscall_hook = [&](os::Process&, std::uint32_t) {
    if (++calls == 8) live_during_run = sys.kernel().call_cache().size();
  };
  const auto r = run_cat(sys);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  EXPECT_GT(live_during_run, 0u) << "cache never populated while the process ran";
  EXPECT_EQ(sys.kernel().call_cache().size(), 0u)
      << "teardown must drop every entry of the dead pid";
}

}  // namespace
}  // namespace asc
