// The verified-call cache (os/asccache.h): the MAC-verification fast path
// must buy cycles without buying trust. Hits require byte-identical static
// material; entries die on guest writes into their backing ranges, on key
// rotation, and on process teardown; one process's verified entry can never
// serve another.
#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "isa/isa.h"
#include "os/asccache.h"
#include "tasm/assembler.h"
#include "workloads.h"

namespace asc {
namespace {

using os::AscCache;

const auto kPers = os::Personality::LinuxSim;

AscCache::Entry entry_with(std::uint64_t digest,
                           std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges = {}) {
  AscCache::Entry e;
  e.digest = digest;
  e.ranges = std::move(ranges);
  return e;
}

// ---- pure cache semantics ----

TEST(AscCacheUnit, LookupRequiresMatchingDigest) {
  AscCache cache;
  const AscCache::Key k{1, 0x100, 0xab, 7};
  EXPECT_EQ(cache.lookup(k, 42), nullptr);  // cold
  cache.insert(k, entry_with(42));
  EXPECT_NE(cache.lookup(k, 42), nullptr);
  // Same site, different bytes behind it: must be a miss, never a stale hit.
  EXPECT_EQ(cache.lookup(k, 43), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(AscCacheUnit, EntriesArePidIsolated) {
  AscCache cache;
  const AscCache::Key pid_a{1, 0x100, 0xab, 7};
  AscCache::Key pid_b = pid_a;
  pid_b.pid = 2;
  cache.insert(pid_a, entry_with(42));
  // Identical site/descriptor/block and identical digest -- but a different
  // process. Serving A's verification to B would let B ride on A's policy.
  EXPECT_EQ(cache.lookup(pid_b, 42), nullptr);
  EXPECT_NE(cache.lookup(pid_a, 42), nullptr);
  EXPECT_EQ(cache.size(1), 1u);
  EXPECT_EQ(cache.size(2), 0u);
}

TEST(AscCacheUnit, InvalidateWriteEvictsOnlyOverlappingEntries) {
  AscCache cache;
  const AscCache::Key k1{1, 0x100, 0xab, 7};
  const AscCache::Key k2{1, 0x200, 0xab, 8};
  cache.insert(k1, entry_with(1, {{0x1000, 16}}));
  cache.insert(k2, entry_with(2, {{0x2000, 16}}));
  cache.invalidate_write(1, 0x1008, 4);  // inside k1's range only
  EXPECT_EQ(cache.lookup(k1, 1), nullptr);
  EXPECT_NE(cache.lookup(k2, 2), nullptr);
  // A write in another pid's address space touches nothing of pid 1.
  cache.invalidate_write(2, 0x2000, 16);
  EXPECT_NE(cache.lookup(k2, 2), nullptr);
  // invalidation_writes counts watched writes delivered to the cache (both
  // calls above); evictions counts entries actually dropped (only k1).
  EXPECT_EQ(cache.stats().invalidation_writes, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(AscCacheUnit, EvictPidAndClear) {
  AscCache cache;
  cache.insert({1, 0x100, 0, 0}, entry_with(1));
  cache.insert({1, 0x200, 0, 0}, entry_with(2));
  cache.insert({2, 0x100, 0, 0}, entry_with(3));
  cache.evict_pid(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.size(2), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 3u);
}

// ---- end-to-end: the fast path on real guests ----

vm::RunResult run_cat(System& sys) {
  testing::prepare_fs(sys.kernel().fs());
  const auto inst = sys.install(apps::build_tool_cat(kPers));
  return sys.machine().run(inst.image, {"/lines.txt", "/in.c"});
}

TEST(AscCacheRun, RepeatedSitesHitAndBehaviorIsIdentical) {
  System cached(kPers);
  const auto rc = run_cat(cached);
  ASSERT_TRUE(rc.completed) << rc.violation_detail;
  const auto& st = cached.kernel().cache_stats();
  EXPECT_GT(st.hits, 0u) << "cat's read/write loop repeats sites; they must hit";
  EXPECT_GT(st.misses, 0u) << "first visit of each site is a miss";
  EXPECT_GT(st.hit_rate(), 0.0);

  System uncached(kPers);
  uncached.kernel().set_verified_call_cache(false);
  const auto ru = run_cat(uncached);
  ASSERT_TRUE(ru.completed) << ru.violation_detail;

  // The cache may change cycle accounting, nothing else.
  EXPECT_EQ(rc.exit_code, ru.exit_code);
  EXPECT_EQ(rc.stdout_data, ru.stdout_data);
  EXPECT_EQ(rc.stderr_data, ru.stderr_data);
  EXPECT_EQ(rc.syscalls, ru.syscalls);
  EXPECT_LT(rc.cycles, ru.cycles) << "hits must charge strictly less than full verification";
  EXPECT_EQ(uncached.kernel().cache_stats().hits, 0u);
  EXPECT_EQ(uncached.kernel().cache_stats().misses, 0u);
}

// A tight getpid loop (the paper's Table 4 microbenchmark shape): after the
// first trap every call is a hit, so the authenticated per-call overhead
// must drop by at least 30% vs the uncached checker (the PR's acceptance
// bar; in practice the reduction is larger).
TEST(AscCacheRun, CachedOverheadAtLeastThirtyPercentLower) {
  constexpr std::uint32_t kIters = 2000;
  auto build_loop = [&]() {
    using namespace asc::apps;
    tasm::Assembler a("pidloop");
    a.func("main");
    a.subi(SP, 4);
    a.movi(R11, kIters);
    a.store(SP, 0, R11);
    a.label(".loop");
    a.load(R11, SP, 0);
    a.cmpi(R11, 0);
    a.jz(".done");
    a.call("sys_getpid");
    a.load(R11, SP, 0);
    a.subi(R11, 1);
    a.store(SP, 0, R11);
    a.jmp(".loop");
    a.label(".done");
    a.addi(SP, 4);
    a.movi(R0, 0);
    a.ret();
    emit_libc(a, kPers);
    return a.link();
  };

  auto cycles = [&](os::Enforcement mode, bool cache_on) -> double {
    System sys(kPers, test_key(), mode);
    sys.kernel().set_verified_call_cache(cache_on);
    binary::Image img = build_loop();
    if (mode == os::Enforcement::Asc) img = sys.install(img).image;
    const auto r = sys.machine().run(img);
    EXPECT_TRUE(r.completed) << r.violation_detail;
    return static_cast<double>(r.cycles);
  };

  const double base = cycles(os::Enforcement::Off, false);
  const double auth = cycles(os::Enforcement::Asc, false);
  const double auth_cached = cycles(os::Enforcement::Asc, true);
  const double ovh = (auth - base) / kIters;
  const double ovh_cached = (auth_cached - base) / kIters;
  ASSERT_GT(ovh, 0.0);
  const double reduction = (ovh - ovh_cached) / ovh;
  EXPECT_GE(reduction, 0.30) << "per-call overhead: uncached " << ovh << " cycles, cached "
                             << ovh_cached << " cycles";
}

TEST(AscCacheRun, GuestWriteIntoCachedRangeEvicts) {
  System sys(kPers);
  // At the 6th trap, rewrite one byte of the presented call MAC with its own
  // value. The bytes do not change, but the write watch must still fire and
  // evict -- eviction is keyed on the write, not on the value -- and the
  // subsequent full re-verification succeeds, so the run completes.
  int calls = 0;
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (++calls != 6) return;
    const std::uint32_t mac_ptr = p.cpu.regs[isa::kRegCallMac];
    if (p.mem.in_range(mac_ptr, 16)) p.mem.w8(mac_ptr, p.mem.r8(mac_ptr));
  };
  const auto r = run_cat(sys);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  const auto& st = sys.kernel().cache_stats();
  EXPECT_GE(st.invalidation_writes, 1u) << "watched write did not reach the cache";
  EXPECT_GE(st.evictions, 1u);
}

TEST(AscCacheRun, KeyRotationClearsTheCache) {
  System sys(kPers);
  sys.kernel().call_cache().insert({1, 0x100, 0xab, 7}, entry_with(42));
  ASSERT_EQ(sys.kernel().call_cache().size(), 1u);
  sys.kernel().set_key(test_key());  // rotation: old verifications are void
  EXPECT_EQ(sys.kernel().call_cache().size(), 0u);
}

TEST(AscCacheRun, ProcessTeardownEvictsItsEntries) {
  System sys(kPers);
  std::size_t live_during_run = 0;
  int calls = 0;
  sys.machine().pre_syscall_hook = [&](os::Process&, std::uint32_t) {
    if (++calls == 8) live_during_run = sys.kernel().call_cache().size();
  };
  const auto r = run_cat(sys);
  ASSERT_TRUE(r.completed) << r.violation_detail;
  EXPECT_GT(live_during_run, 0u) << "cache never populated while the process ran";
  EXPECT_EQ(sys.kernel().call_cache().size(), 0u)
      << "teardown must drop every entry of the dead pid";
}

}  // namespace
}  // namespace asc
