// Tests for the staged trap pipeline: the golden-trace oracle (the refactor
// must reproduce the monolithic kernel byte for byte), the nested-spawn
// trap-context regression, Budgeted failure-mode boundaries, and the
// SyscallMonitor interface (names, factory, ChainMonitor composition).
#include <fstream>

#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "golden_dump.h"
#include "monitor/ktable.h"
#include "tasm/assembler.h"

#ifndef ASC_TESTS_DIR
#define ASC_TESTS_DIR "."
#endif

namespace asc {
namespace {

using testing::prepare_fs;

// ---------------------------------------------------------------------------
// Golden trace: the pipeline vs. the pre-refactor monolithic kernel.
// ---------------------------------------------------------------------------

TEST(TrapPipelineGolden, MatchesPreRefactorKernelByteForByte) {
  std::ifstream in(std::string(ASC_TESTS_DIR) + "/golden/trap_pipeline.golden",
                   std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file; regenerate with golden_trap_dump()";
  const std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  const std::string now = testing::golden_trap_dump();
  // Guest stdout, exit status, violation, cycle/instruction/syscall counts,
  // and the full audit log, under all five mode configurations.
  EXPECT_EQ(golden, now);
}

// ---------------------------------------------------------------------------
// Nested spawn: post-spawn audit records must cite the parent's trap.
// ---------------------------------------------------------------------------

// A guest that spawns a child and THEN produces auditable events (a socket
// send and a signal). With per-call kernel-global trap state (the old
// cur_sysno_/cur_site_ fields) the child's traps -- its last one is exit()
// -- could leak into records the parent emits afterwards; with stacked
// TrapContexts that is impossible by construction.
binary::Image build_spawn_then_net(os::Personality pers) {
  tasm::Assembler a("spawnnet");
  using namespace apps;
  a.func("main");
  a.lea(R1, "sp_child");
  a.movi(R2, 0);
  a.call("sys_spawn");
  a.movi(R1, 2);
  a.movi(R2, 1);
  a.movi(R3, 0);
  a.call("sys_socket");
  a.mov(R1, R0);
  a.lea(R2, "sp_msg");
  a.movi(R3, 8);
  a.movi(R4, 0);
  a.movi(R5, 0);
  a.call("sys_sendto");
  a.movi(R1, 1);
  a.movi(R2, 15);
  a.call("sys_kill");
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("sp_child", "/bin/child");
  a.rodata_cstr("sp_msg", "netmsg!\n");
  emit_libc(a, pers);
  return a.link();
}

TEST(TrapPipelineSpawn, PostSpawnRecordsCiteTheParentsTrap) {
  const auto pers = os::Personality::LinuxSim;
  System sys(pers);
  prepare_fs(sys.kernel().fs());
  sys.install_and_register("/bin/child", apps::build_tool_cat(pers));
  auto inst = sys.install(build_spawn_then_net(pers));
  auto r = sys.machine().run(inst.image);
  ASSERT_TRUE(r.completed) << r.violation_detail;

  const auto& log = sys.kernel().audit_log();
  ASSERT_EQ(log.size(), 3u);  // SPAWN, NET, SIGNAL; the child (cat) is silent

  const auto num = [&](os::SysId id) { return *os::syscall_number(pers, id); };
  EXPECT_EQ(log[0].kind, os::AuditKind::Spawn);
  EXPECT_EQ(log[0].pid, 1);
  EXPECT_EQ(log[0].sysno, num(os::SysId::Spawn));
  EXPECT_EQ(log[0].detail, "/bin/child");

  // The records emitted AFTER the child ran to completion inside the
  // parent's Spawn trap: they must cite the parent's sendto/kill traps, not
  // the child's last trap (exit) or the enclosing spawn site.
  EXPECT_EQ(log[1].kind, os::AuditKind::Net);
  EXPECT_EQ(log[1].pid, 1);
  EXPECT_EQ(log[1].sysno, num(os::SysId::Sendto));
  EXPECT_NE(log[1].sysno, num(os::SysId::Exit));
  EXPECT_NE(log[1].call_site, log[0].call_site);

  EXPECT_EQ(log[2].kind, os::AuditKind::Signal);
  EXPECT_EQ(log[2].pid, 1);
  EXPECT_EQ(log[2].sysno, num(os::SysId::Kill));
  EXPECT_NE(log[2].call_site, log[0].call_site);
  EXPECT_NE(log[2].call_site, log[1].call_site);
}

// ---------------------------------------------------------------------------
// Budgeted failure-mode boundaries.
// ---------------------------------------------------------------------------

// A guest issuing `n` benign getpid() calls before exiting. Run RAW (not
// installed) under ASC enforcement, every trap is an unauthenticated call
// -- a deterministic violation generator.
binary::Image build_getpid_loop(os::Personality pers, int n) {
  tasm::Assembler a("viol");
  using namespace apps;
  a.func("main");
  for (int i = 0; i < n; ++i) a.call("sys_getpid");
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, pers);
  return a.link();
}

struct BudgetRun {
  vm::RunResult result;
  std::vector<os::VerdictRecord> log;
};

BudgetRun run_with_mode(os::FailureMode mode, std::uint32_t budget) {
  const auto pers = os::Personality::LinuxSim;
  System sys(pers);  // Asc enforcement, raw image below => violations
  sys.kernel().set_failure_mode(mode);
  sys.kernel().set_violation_budget(budget);
  BudgetRun out;
  out.result = sys.machine().run(build_getpid_loop(pers, 5));
  out.log = sys.kernel().audit_log();
  return out;
}

TEST(TrapPipelineBudget, BudgetNToleratesExactlyNAndKillsOnNPlusOne) {
  for (std::uint32_t budget : {1u, 2u, 4u}) {
    const BudgetRun r = run_with_mode(os::FailureMode::Budgeted, budget);
    EXPECT_FALSE(r.result.completed);
    EXPECT_EQ(r.result.violation, os::Violation::BadCallMac);
    // N tolerated records, then the (N+1)-th kills.
    ASSERT_EQ(r.log.size(), budget + 1) << "budget " << budget;
    for (std::uint32_t i = 0; i < budget; ++i) {
      EXPECT_FALSE(r.log[i].killed) << "budget " << budget << " record " << i;
    }
    EXPECT_TRUE(r.log.back().killed) << "budget " << budget;
  }
}

TEST(TrapPipelineBudget, BudgetZeroIsBitIdenticalToFailStop) {
  const BudgetRun stop = run_with_mode(os::FailureMode::FailStop, 0);
  const BudgetRun zero = run_with_mode(os::FailureMode::Budgeted, 0);

  // RunResult, field by field.
  EXPECT_EQ(stop.result.completed, zero.result.completed);
  EXPECT_EQ(stop.result.exit_code, zero.result.exit_code);
  EXPECT_EQ(stop.result.violation, zero.result.violation);
  EXPECT_EQ(stop.result.violation_detail, zero.result.violation_detail);
  EXPECT_EQ(stop.result.stdout_data, zero.result.stdout_data);
  EXPECT_EQ(stop.result.cycles, zero.result.cycles);
  EXPECT_EQ(stop.result.instructions, zero.result.instructions);
  EXPECT_EQ(stop.result.syscalls, zero.result.syscalls);

  // Audit log, record by record (including the formatted rendering).
  ASSERT_EQ(stop.log.size(), zero.log.size());
  for (std::size_t i = 0; i < stop.log.size(); ++i) {
    EXPECT_EQ(stop.log[i].to_string(), zero.log[i].to_string());
    EXPECT_EQ(stop.log[i].kind, zero.log[i].kind);
    EXPECT_EQ(stop.log[i].killed, zero.log[i].killed);
    EXPECT_EQ(stop.log[i].vtime_ns, zero.log[i].vtime_ns);
  }
}

TEST(TrapPipelineBudget, AuditOnlyRecordsEveryViolationAndNeverKills) {
  const BudgetRun r = run_with_mode(os::FailureMode::AuditOnly, 0);
  EXPECT_TRUE(r.result.completed);
  EXPECT_EQ(r.result.violation, os::Violation::None);
  // 5 getpid() calls + the final exit(), each an unauthenticated call.
  ASSERT_EQ(r.log.size(), 6u);
  for (const auto& rec : r.log) {
    EXPECT_FALSE(rec.killed);
    EXPECT_EQ(rec.violation, os::Violation::BadCallMac);
  }
}

// ---------------------------------------------------------------------------
// The SyscallMonitor interface.
// ---------------------------------------------------------------------------

TEST(TrapPipelineMonitors, FactoryAndKernelAgreeOnNames) {
  System sys(os::Personality::LinuxSim);
  auto& k = sys.kernel();
  for (auto e : {os::Enforcement::Off, os::Enforcement::Asc, os::Enforcement::Daemon,
                 os::Enforcement::KernelTable}) {
    k.set_enforcement(e);
    EXPECT_EQ(k.monitor().name(), os::enforcement_name(e));
    EXPECT_EQ(k.enforcement(), e);
    EXPECT_EQ(os::make_monitor(e, k)->name(), os::enforcement_name(e));
  }
}

TEST(TrapPipelineMonitors, ChainComposesAscWithKernelTable) {
  const auto pers = os::Personality::LinuxSim;

  // Baseline: ASC alone accepts the installed program.
  System asc_only(pers);
  prepare_fs(asc_only.kernel().fs());
  auto inst = asc_only.install(apps::build_tool_cat(pers));
  auto r0 = asc_only.machine().run(inst.image, {"/lines.txt"});
  ASSERT_TRUE(r0.completed) << r0.violation_detail;

  // Chain ASC + an in-kernel allowlist with the same policy content: both
  // links pass, output identical, and the table lookup is charged on top.
  System chained(pers);
  prepare_fs(chained.kernel().fs());
  auto& k = chained.kernel();
  k.set_monitor_policy("cat", monitor::table_from_asc_policies(inst.policies));
  auto chain = std::make_unique<os::ChainMonitor>();
  chain->add(os::make_monitor(os::Enforcement::Asc, k));
  chain->add(os::make_monitor(os::Enforcement::KernelTable, k));
  EXPECT_EQ(chain->name(), "chain(asc+kernel-table)");
  k.install_monitor(std::move(chain));

  auto inst2 = chained.install(apps::build_tool_cat(pers));
  auto r1 = chained.machine().run(inst2.image, {"/lines.txt"});
  ASSERT_TRUE(r1.completed) << r1.violation_detail;
  EXPECT_EQ(r0.stdout_data, r1.stdout_data);
  EXPECT_EQ(r1.cycles, r0.cycles + r1.syscalls * chained.kernel().cost().ktable_lookup);

  // Same chain, but no table policy loaded: the second link denies even
  // though the ASC link passes -- composition is first-violation-wins.
  System denied(pers);
  prepare_fs(denied.kernel().fs());
  auto& kd = denied.kernel();
  auto chain2 = std::make_unique<os::ChainMonitor>();
  chain2->add(os::make_monitor(os::Enforcement::Asc, kd));
  chain2->add(os::make_monitor(os::Enforcement::KernelTable, kd));
  kd.install_monitor(std::move(chain2));
  auto inst3 = denied.install(apps::build_tool_cat(pers));
  auto r2 = denied.machine().run(inst3.image, {"/lines.txt"});
  EXPECT_FALSE(r2.completed);
  EXPECT_EQ(r2.violation, os::Violation::MonitorDenied);
  EXPECT_NE(r2.violation_detail.find("no policy loaded"), std::string::npos);
}

TEST(TrapPipelineMonitors, EmptyChainAllowsEverything) {
  const auto pers = os::Personality::LinuxSim;
  System sys(pers);
  prepare_fs(sys.kernel().fs());
  sys.kernel().install_monitor(std::make_unique<os::ChainMonitor>());
  EXPECT_EQ(sys.kernel().monitor().name(), "chain()");
  // A raw, unauthenticated image runs: the empty chain enforces nothing.
  auto r = sys.machine().run(apps::build_tool_cat(pers), {"/lines.txt"});
  EXPECT_TRUE(r.completed) << r.violation_detail;
  EXPECT_TRUE(sys.kernel().audit_log().empty());
}

// ---------------------------------------------------------------------------
// The audit layer: one coherent reset.
// ---------------------------------------------------------------------------

TEST(TrapPipelineAudit, ResetClearsBothViewsAndLeavesTheTraceAlone) {
  const auto pers = os::Personality::LinuxSim;
  System sys(pers);
  prepare_fs(sys.kernel().fs());
  sys.kernel().set_tracing(true);
  auto inst = sys.install(build_spawn_then_net(pers));
  sys.machine().register_program("/bin/child", apps::build_tool_cat(pers));
  (void)sys.machine().run(inst.image);

  auto& k = sys.kernel();
  ASSERT_FALSE(k.audit_log().empty());
  // The two views can never diverge in length.
  EXPECT_EQ(k.audit_log().size(), k.event_log().size());
  const std::size_t traced = k.trace().size();
  ASSERT_GT(traced, 0u);

  // clear_events() == AuditLog::reset(): both audit views go, the trace
  // stays (training clears the trace separately between sample runs).
  k.clear_events();
  EXPECT_TRUE(k.audit_log().empty());
  EXPECT_TRUE(k.event_log().empty());
  EXPECT_EQ(k.trace().size(), traced);

  k.clear_trace();
  EXPECT_TRUE(k.trace().empty());
}

TEST(TrapPipelineAudit, AuditLogUnitAppendAndReset) {
  os::AuditLog log;
  os::VerdictRecord rec;
  rec.kind = os::AuditKind::Net;
  rec.pid = 7;
  rec.detail = "send 1 bytes";
  log.append(rec);
  ASSERT_EQ(log.records().size(), 1u);
  ASSERT_EQ(log.formatted().size(), 1u);
  EXPECT_EQ(log.formatted()[0], log.records()[0].to_string());
  log.reset();
  EXPECT_TRUE(log.records().empty());
  EXPECT_TRUE(log.formatted().empty());
}

}  // namespace
}  // namespace asc
