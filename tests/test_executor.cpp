// Unit tests for the work-stealing executor (util/executor.h): full index
// coverage, result ordering, the exact-serial jobs=1 path, exception
// propagation, inline nesting, and the ASC_JOBS / set_global_jobs controls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/executor.h"

namespace asc::util {
namespace {

TEST(Executor, RunsEveryIndexExactlyOnce) {
  Executor ex(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  ex.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Executor, ZeroAndSingleElementBatches) {
  Executor ex(4);
  int calls = 0;
  ex.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n==1 runs inline on the caller, even with a pool.
  std::thread::id ran_on;
  ex.parallel_for(1, [&](std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(Executor, ParallelMapPreservesIndexOrder) {
  Executor ex(8);
  const std::vector<int> out =
      ex.parallel_map<int>(1000, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(Executor, JobsOneIsTheExactSerialPath) {
  Executor ex(1);
  EXPECT_EQ(ex.jobs(), 1);
  // Runs on the calling thread, in ascending index order.
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  bool all_on_caller = true;
  ex.parallel_for(64, [&](std::size_t i) {
    order.push_back(i);
    all_on_caller = all_on_caller && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(all_on_caller);
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, WorkersActuallyParticipate) {
  // With a pool and enough chunky tasks, at least one index should run off
  // the calling thread. Blocking the caller inside the first task it picks
  // up forces the pool to take some of the rest.
  Executor ex(4);
  if (std::thread::hardware_concurrency() < 2) GTEST_SKIP() << "single-core host";
  std::mutex mu;
  std::set<std::thread::id> threads;
  ex.parallel_for(256, [&](std::size_t) {
    const std::lock_guard<std::mutex> lock(mu);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_GE(threads.size(), 1u);  // >=2 on a real multicore box
}

TEST(Executor, PropagatesTheFirstException) {
  Executor ex(4);
  EXPECT_THROW(ex.parallel_for(500,
                               [](std::size_t i) {
                                 if (i % 7 == 3) throw Error("injected failure");
                               }),
               Error);
  // The pool survives a throwing batch and runs the next one.
  std::atomic<int> n{0};
  ex.parallel_for(100, [&](std::size_t) { n.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(n.load(), 100);
}

TEST(Executor, NestedParallelForRunsInlineWithoutDeadlock) {
  Executor ex(4);
  std::atomic<int> total{0};
  ex.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(Executor::in_parallel_region());
    // A nested region must not wait on the (occupied) pool; it runs inline.
    ex.parallel_for(8, [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 64);
  EXPECT_FALSE(Executor::in_parallel_region());
}

TEST(Executor, DefaultJobsHonorsAscJobsEnv) {
  ::setenv("ASC_JOBS", "3", 1);
  EXPECT_EQ(Executor::default_jobs(), 3);
  ::setenv("ASC_JOBS", "not-a-number", 1);
  EXPECT_GE(Executor::default_jobs(), 1);  // falls back to hardware concurrency
  ::unsetenv("ASC_JOBS");
  EXPECT_GE(Executor::default_jobs(), 1);
}

TEST(Executor, SetGlobalJobsResizesTheSharedPool) {
  Executor::set_global_jobs(2);
  EXPECT_EQ(Executor::global().jobs(), 2);
  std::atomic<int> n{0};
  Executor::global().parallel_for(64, [&](std::size_t) {
    n.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(n.load(), 64);
  Executor::set_global_jobs(0);  // back to the default for other tests
  EXPECT_GE(Executor::global().jobs(), 1);
}

TEST(Executor, ManyRoundsReuseTheSamePool) {
  Executor ex(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    ex.parallel_for(37, [&](std::size_t) { n.fetch_add(1, std::memory_order_relaxed); });
    ASSERT_EQ(n.load(), 37);
  }
}

}  // namespace
}  // namespace asc::util
