// Fleet driver and aggregated audit pipeline: determinism, tenant isolation,
// and churn bookkeeping. These suites are in the TSan CI leg (they fan
// tenant lifecycles out over the executor and hammer the sharded CMAC
// schedule memo from many workers at once).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "crypto/cmac.h"
#include "fleet/fleet.h"
#include "util/executor.h"
#include "util/hex.h"

namespace asc {
namespace {

fleet::FleetResult run_fleet(fleet::FleetConfig cfg, int jobs) {
  util::Executor exec(jobs);
  cfg.executor = &exec;
  return fleet::Driver(cfg).run();
}

// ---- the aggregated audit pipeline in isolation ----

os::VerdictRecord rec(int pid, const std::string& detail) {
  os::VerdictRecord r;
  r.kind = os::AuditKind::Spawn;
  r.pid = pid;
  r.prog = "unit";
  r.detail = detail;
  return r;
}

TEST(FleetAuditPipeline, MergesInAscendingTenantOrderRegardlessOfStreamOrder) {
  fleet::AuditPipeline a(5);
  fleet::AuditPipeline b(5);
  // Stream the same slots in opposite orders (as racing workers would).
  a.stream(4, "g4", {rec(1, "four")});
  a.stream(0, "g0", {rec(1, "zero-a"), rec(2, "zero-b")});
  a.stream(2, "g2", {rec(1, "two")});
  b.stream(2, "g2", {rec(1, "two")});
  b.stream(0, "g0", {rec(1, "zero-a"), rec(2, "zero-b")});
  b.stream(4, "g4", {rec(1, "four")});

  const auto ma = a.merge();
  const auto mb = b.merge();
  EXPECT_EQ(ma.lines, mb.lines);
  EXPECT_EQ(ma.digest, mb.digest);
  ASSERT_EQ(ma.records.size(), 4u);
  EXPECT_EQ(ma.tenants_with_records, 3u);
  // Tenant order, then log order within a tenant.
  EXPECT_EQ(ma.records[0].detail, "zero-a");
  EXPECT_EQ(ma.records[1].detail, "zero-b");
  EXPECT_EQ(ma.records[2].detail, "two");
  EXPECT_EQ(ma.records[3].detail, "four");
  ASSERT_EQ(ma.lines.size(), 4u);
  EXPECT_EQ(ma.lines[0].rfind("[t00000 g0] ", 0), 0u) << ma.lines[0];
  EXPECT_EQ(ma.lines[3].rfind("[t00004 g4] ", 0), 0u) << ma.lines[3];
}

TEST(FleetAuditPipeline, DigestChangesWhenAnyRecordChanges) {
  fleet::AuditPipeline a(2);
  fleet::AuditPipeline b(2);
  a.stream(0, "g", {rec(1, "same")});
  b.stream(0, "g", {rec(1, "tampered")});
  EXPECT_NE(a.merge().digest, b.merge().digest);
}

// ---- fleet determinism across executor widths ----

TEST(FleetDriver, ByteIdenticalAtJobs128) {
  fleet::FleetConfig cfg;
  cfg.seed = 42;
  cfg.tenants = 48;
  cfg.tamper_tenants = {5, 23};

  std::vector<fleet::FleetResult> results;
  for (const int jobs : {1, 2, 8}) {
    results.push_back(run_fleet(cfg, jobs));
    const fleet::FleetResult& r = results.back();
    EXPECT_TRUE(r.ok()) << "jobs=" << jobs << "\n" << r.summary();
    ASSERT_EQ(r.tenants.size(), 48u);
  }
  // jobs=1 is the executor's exact serial reference; wider runs must agree
  // byte for byte on both determinism surfaces: the per-tenant verdict
  // trace and the aggregated audit stream.
  EXPECT_EQ(results[0].verdict_trace, results[1].verdict_trace);
  EXPECT_EQ(results[0].verdict_trace, results[2].verdict_trace);
  EXPECT_EQ(results[0].audit.lines, results[1].audit.lines);
  EXPECT_EQ(results[0].audit.lines, results[2].audit.lines);
  EXPECT_EQ(results[0].audit.digest, results[1].audit.digest);
  EXPECT_EQ(results[0].audit.digest, results[2].audit.digest);
}

// ---- per-tenant keys ----
// Every tenant rekeys the shared installed template to its own derived key
// (one install, N Rekeyer passes): lifecycles must stay clean -- including
// the genuine mid-run rotations and respawn churn -- and the determinism
// surfaces must stay byte-identical at any executor width.
TEST(FleetDriver, PerTenantKeysAreByteDeterministicAtJobs128) {
  fleet::FleetConfig cfg;
  cfg.seed = 42;
  cfg.tenants = 48;
  cfg.tamper_tenants = {5, 23};
  cfg.per_tenant_keys = true;

  std::vector<fleet::FleetResult> results;
  for (const int jobs : {1, 2, 8}) {
    results.push_back(run_fleet(cfg, jobs));
    const fleet::FleetResult& r = results.back();
    EXPECT_TRUE(r.ok()) << "jobs=" << jobs << "\n" << r.summary();
    ASSERT_EQ(r.tenants.size(), 48u);
    EXPECT_EQ(r.tampered, 2);
    EXPECT_EQ(r.tamper_detected, 2);
    EXPECT_GT(r.rotations, 0);
  }
  EXPECT_EQ(results[0].verdict_trace, results[1].verdict_trace);
  EXPECT_EQ(results[0].verdict_trace, results[2].verdict_trace);
  EXPECT_EQ(results[0].audit.lines, results[1].audit.lines);
  EXPECT_EQ(results[0].audit.digest, results[1].audit.digest);
  EXPECT_EQ(results[0].audit.digest, results[2].audit.digest);
}

// ---- tenant isolation ----

TEST(FleetDriver, TamperInOneTenantNeverPerturbsTheOthers) {
  fleet::FleetConfig clean_cfg;
  clean_cfg.seed = 7;
  clean_cfg.tenants = 24;
  fleet::FleetConfig tampered_cfg = clean_cfg;
  tampered_cfg.tamper_tenants = {3};

  const fleet::FleetResult rc = run_fleet(clean_cfg, 4);
  const fleet::FleetResult rt = run_fleet(tampered_cfg, 4);
  EXPECT_TRUE(rc.ok()) << rc.summary();
  EXPECT_TRUE(rt.ok()) << rt.summary();

  // The tampered tenant fail-stopped with a verdict...
  EXPECT_TRUE(rt.tenants[3].tampered);
  EXPECT_NE(rt.tenants[3].violation, os::Violation::None);
  EXPECT_EQ(rt.tamper_detected, 1);
  EXPECT_NE(rc.verdict_trace[3], rt.verdict_trace[3]);

  // ...and every OTHER tenant's verdict line is byte-identical to the run
  // where no tamper existed anywhere: shards are disjoint, and substreams
  // are keyed by (seed, tenant), so nothing leaks across tenants.
  for (int t = 0; t < 24; ++t) {
    if (t == 3) continue;
    EXPECT_EQ(rc.verdict_trace[static_cast<std::size_t>(t)],
              rt.verdict_trace[static_cast<std::size_t>(t)])
        << "tenant " << t << " was perturbed by tenant 3's tamper";
  }
  // Same for the aggregated audit stream, minus tenant 3's lines.
  auto without_t3 = [](const std::vector<std::string>& lines) {
    std::vector<std::string> out;
    for (const auto& l : lines) {
      if (l.rfind("[t00003 ", 0) != 0) out.push_back(l);
    }
    return out;
  };
  EXPECT_EQ(without_t3(rc.audit.lines), without_t3(rt.audit.lines));
}

// ---- churn leaves every shard's accounting balanced ----

TEST(FleetDriver, HeavyChurnKeepsShardBookkeepingBalanced) {
  fleet::FleetConfig cfg;
  cfg.seed = 11;
  cfg.tenants = 30;
  cfg.rotate_every = 2;   // half the fleet rotates its key mid-run
  cfg.swap_every = 2;     // half the fleet swaps its monitor between runs
  cfg.respawn_every = 1;  // EVERY tenant tears down and respawns

  const fleet::FleetResult r = run_fleet(cfg, 4);
  // Zero oracle trips = every run's watch accounting balanced and every
  // shard's cache/shadow/health maps were empty after teardown.
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.respawns, 30);
  EXPECT_EQ(r.swaps, 15);
  // rotate cadence 2 minus the tenants whose lifecycle skipped rotation:
  // none are tampered here, so exactly the cadence.
  EXPECT_EQ(r.rotations, 15);
  for (const auto& tv : r.tenants) {
    EXPECT_EQ(tv.runs, 2) << "tenant " << tv.tenant;
    EXPECT_GT(tv.shard_bytes, 0u);
    EXPECT_GT(tv.syscalls, 0u);
  }
  EXPECT_GT(r.total_syscalls, 0u);
  EXPECT_GT(r.total_cycles, 0u);
}

// ---- the Inline tier at fleet scale: respawn churn must tear tier state
// all the way down (the fleet.cpp oracle trips on any surviving site) ----

TEST(FleetDriver, InlineTierStateIsTornDownBetweenTenantRespawns) {
  fleet::FleetConfig cfg;
  cfg.seed = 13;
  cfg.tenants = 24;
  cfg.respawn_every = 1;  // EVERY tenant runs twice on the same kernel
  cfg.inline_tier = true;

  const fleet::FleetResult r = run_fleet(cfg, 4);
  // Zero trips = after every run (including the first of each respawn pair)
  // the tenant kernel held zero inline sites AND the watch accounting
  // balanced -- the inline tier's own write-watches were all released.
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.respawns, 24);
  for (const auto& tv : r.tenants) {
    EXPECT_EQ(tv.runs, 2) << "tenant " << tv.tenant;
  }
  // The pidloop guest joined the pool and at least one tenant drew it (24
  // tenants over a 5-guest pool): the run exercised actual promotion.
  const bool saw_pidloop =
      std::any_of(r.tenants.begin(), r.tenants.end(),
                  [](const fleet::TenantVerdict& tv) { return tv.guest == "pidloop"; });
  EXPECT_TRUE(saw_pidloop) << "no tenant drew the promoting guest";

  // Determinism holds with the tier on.
  const fleet::FleetResult r2 = run_fleet(cfg, 1);
  EXPECT_EQ(r.verdict_trace, r2.verdict_trace);
  EXPECT_EQ(r.audit.digest, r2.audit.digest);
}

// ---- the sharded CMAC schedule memo under concurrent construction ----

// Regression test for the fleet's only cross-tenant shared state: many
// workers constructing Cmac engines at once (per-lifecycle System setup +
// staggered rotations) must be race-free -- the TSan CI leg runs this suite
// -- and engines sharing a key must agree on every MAC.
TEST(FleetCmacMemo, ConcurrentConstructionAndRotationIsCoherent) {
  const auto msg = util::bytes_of("fleet tenant payload");
  std::atomic<int> mismatches{0};
  util::Executor exec(8);
  exec.parallel_for(256, [&](std::size_t i) {
    crypto::Key128 k{};
    // 32 distinct keys, each hit by ~8 concurrent constructions, spread
    // across the memo's shards.
    k[0] = static_cast<std::uint8_t>(i % 32);
    k[15] = static_cast<std::uint8_t>((i % 32) ^ 0xa5);
    const crypto::Cmac a(k);
    const crypto::Cmac b(k);  // second engine shares the memoized schedule
    if (!crypto::Cmac::equal(a.compute(msg), b.compute(msg))) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  // All 256 engines died at scope end; the memo stays bounded (at most one
  // expired node per shard survives the per-construction sweep).
  std::size_t retained = crypto::Cmac::schedule_memo_size();
  EXPECT_LE(retained, 32u + crypto::Cmac::kMemoShards);
}

}  // namespace
}  // namespace asc
