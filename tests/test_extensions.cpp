// End-to-end tests for the §5 extensions: argument patterns with proof
// hints, capability tracking, and filename normalization.
#include <gtest/gtest.h>

#include "apps/libtoy.h"
#include "util/hex.h"
#include "monitor/training.h"
#include "tasm/assembler.h"
#include "workloads.h"

namespace asc {
namespace {

using apps::R0;
using apps::R1;
using apps::R2;
using apps::R3;
using apps::R11;
using apps::R12;

// A program whose open() path is computed at runtime (tmpname), so static
// analysis cannot pin it; the administrator fills the metapolicy hole with
// the pattern "/tmp/*". The guest computes the match hint itself
// (strlen(name) - strlen("/tmp/")) -- the §5.1 proof-carrying flow.
binary::Image build_pattern_guest(bool evil) {
  tasm::Assembler a(evil ? "evilwriter" : "tmpwriter");
  a.func("main");
  a.subi(isa::kSp, 4);
  if (evil) {
    // Build "/etc/evil" at runtime so the analysis sees Unknown.
    a.lea(R1, "name_buf");
    a.lea(R2, "evil_src");
    a.call("strcpy");
  } else {
    a.lea(R1, "name_buf");
    a.call("tmpname");
  }
  // hint = strlen(name) - 5  (the single '*' consumes everything after
  // "/tmp/"; for the evil name this hint is simply wrong, as any hint is)
  a.lea(R1, "name_buf");
  a.call("strlen");
  a.subi(R0, 5);
  a.mov(R1, R0);
  a.call("asc_set_hint1");
  a.lea(R1, "name_buf");
  a.movi(R2, apps::O_WRONLY | apps::O_CREAT);
  a.movi(R3, 0600);
  a.call("sys_open");
  a.cmpi(R0, 0);
  a.jlt(".skip");
  a.mov(R1, R0);
  a.lea(R2, "payload");
  a.movi(R3, 5);
  a.call("sys_write");
  a.label(".skip");
  a.addi(isa::kSp, 4);
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("evil_src", "/etc/evil");
  a.rodata_cstr("payload", "data\n");
  a.bss("name_buf", 64);
  apps::emit_libc(a, os::Personality::LinuxSim);
  return a.link();
}

installer::InstallResult install_with_tmp_pattern(System& sys, const binary::Image& img) {
  installer::InstallOptions opts;
  policy::SyscallMeta meta{};
  meta.args[0] = policy::ArgRequirement::MustPattern;
  opts.metapolicy.set(os::SysId::Open, meta);
  auto gp = sys.installer().analyze(img, opts);
  // Fill every open-path hole with the pattern.
  policy::PolicyTemplate t;
  t.policies = std::move(gp.policies);
  t.holes = std::move(gp.holes);
  while (!t.complete()) t.fill_with_pattern(0, "/tmp/*");
  gp.policies = std::move(t.policies);
  gp.holes.clear();
  return sys.installer().rewrite(img, std::move(gp), opts);
}

TEST(Patterns, TmpFileWriterPassesWithHonestHint) {
  System sys(os::Personality::LinuxSim);
  auto inst = install_with_tmp_pattern(sys, build_pattern_guest(false));
  auto r = sys.machine().run(inst.image);
  EXPECT_TRUE(r.completed) << os::violation_name(r.violation) << " " << r.violation_detail;
  EXPECT_EQ(r.violation, os::Violation::None);
}

TEST(Patterns, NonTmpPathIsKilledByPatternPolicy) {
  System sys(os::Personality::LinuxSim);
  auto inst = install_with_tmp_pattern(sys, build_pattern_guest(true));
  auto r = sys.machine().run(inst.image);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadPattern) << r.violation_detail;
}

TEST(Patterns, LyingHintIsKilledEvenForMatchingPath) {
  System sys(os::Personality::LinuxSim);
  auto inst = install_with_tmp_pattern(sys, build_pattern_guest(false));
  // Corrupt the hint right before the open (simulating a compromised app
  // presenting a bogus proof for a matching argument).
  const auto open_no = *os::syscall_number(os::Personality::LinuxSim, os::SysId::Open);
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (p.cpu.regs[0] == open_no) {
      const std::uint32_t hint_ptr = p.cpu.regs[isa::kRegHintPtr];
      p.mem.w32(hint_ptr + 4, p.mem.r32(hint_ptr + 4) + 1);
    }
  };
  auto r = sys.machine().run(inst.image);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadPattern);
}

TEST(Patterns, TamperedPatternTextIsKilled) {
  System sys(os::Personality::LinuxSim);
  auto inst = install_with_tmp_pattern(sys, build_pattern_guest(false));
  // Overwrite the pattern's AS content ("/tmp/*" -> "/etc/*").
  bool patched = false;
  sys.machine().pre_instr_hook = [&](os::Process& p) {
    if (patched) return;
    patched = true;
    const auto* as = inst.image.find_section(binary::SectionKind::AsData);
    const std::string pat = "/tmp/*";
    for (std::size_t i = 20; i + pat.size() <= as->bytes.size(); ++i) {
      if (std::equal(pat.begin(), pat.end(), as->bytes.begin() + static_cast<std::ptrdiff_t>(i)) &&
          util::get_u32(as->bytes, i - 20) == pat.size()) {
        const std::uint32_t body = as->vaddr() + static_cast<std::uint32_t>(i);
        p.mem.write_bytes(body, util::bytes_of("/etc/*"));
        return;
      }
    }
  };
  auto r = sys.machine().run(inst.image);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.violation, os::Violation::BadPattern) << r.violation_detail;
}

// ---- §5.3 capability tracking ----

binary::Image build_two_file_reader() {
  tasm::Assembler a("tfr");
  a.func("main");
  // The open/read stubs are inlined, so no call boundary clobbers r11/r12
  // and the dataflow can trace the fd from the open's r0 to the read's r1.
  a.lea(R1, "pa");
  a.movi(R2, 0);
  a.movi(R3, 0);
  a.call("sys_open");
  a.mov(R11, R0);  // fd A
  // A branch between the opens puts them in DIFFERENT basic blocks, so the
  // two fds have distinct origin block ids (capability provenance is
  // block-granular, like everything else in the ASC design).
  a.cmpi(R0, 0);
  a.jge(".second");
  a.label(".second");
  a.lea(R1, "pb");
  a.movi(R2, 0);
  a.movi(R3, 0);
  a.call("sys_open");
  a.mov(R12, R0);  // fd B
  // read from fd A -- analysis traces the fd to the FIRST open site.
  a.mov(R1, R11);
  a.lea(R2, "buf");
  a.movi(R3, 8);
  a.call("sys_read");
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("pa", "/fileA");
  a.rodata_cstr("pb", "/fileB");
  a.bss("buf", 16);
  apps::emit_libc(a, os::Personality::LinuxSim);
  return a.link();
}

TEST(Capability, FdProvenanceEnforced) {
  System sys(os::Personality::LinuxSim);
  auto& fs = sys.kernel().fs();
  for (const char* p : {"/fileA", "/fileB"}) {
    fs.open("/", p, os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  }
  installer::InstallOptions opts;
  opts.capability_tracking = true;
  auto inst = sys.install(build_two_file_reader(), opts);
  sys.kernel().set_capability_checking(true);

  // The read's policy must carry the open site as the allowed fd source.
  const policy::SyscallPolicy* read_pol = nullptr;
  for (const auto& p : inst.policies) {
    if (p.sys == os::SysId::Read) read_pol = &p;
  }
  ASSERT_NE(read_pol, nullptr);
  ASSERT_EQ(read_pol->fd_sources.size(), 1u);

  // Legitimate run passes.
  auto r = sys.machine().run(inst.image);
  EXPECT_TRUE(r.completed) << r.violation_detail;

  // Compromised run: swap in the OTHER open's fd at the read.
  const auto read_no = *os::syscall_number(os::Personality::LinuxSim, os::SysId::Read);
  sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
    if (p.cpu.regs[0] == read_no && p.cpu.regs[1] != 0) {
      p.cpu.regs[1] += 1;  // fd B was allocated right after fd A
    }
  };
  auto r2 = sys.machine().run(inst.image);
  EXPECT_FALSE(r2.completed);
  EXPECT_EQ(r2.violation, os::Violation::BadCapability) << r2.violation_detail;
}

// ---- §5.4 filename normalization ----

TEST(Normalization, SymlinkSwapIsCaughtWhenNormalizing) {
  // Baseline-monitor policy permits open("/tmp/foo"). The attacker replaces
  // /tmp/foo with a symlink to /etc/passwd. Without normalization the
  // monitor is fooled; with normalization (§5.4) the open is denied.
  auto img = apps::build_tool_cat(os::Personality::LinuxSim);
  for (bool normalize : {false, true}) {
    System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
    auto& fs = sys.kernel().fs();
    fs.open("/", "/etc/passwd", os::SimFs::kWrOnly | os::SimFs::kCreat, 0600);
    fs.open("/", "/tmp/foo", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
    // Train on the benign state.
    auto pol = monitor::train_policy(sys.machine(), img, {{{"/tmp/foo"}, ""}});
    // Attack: swap the file for a symlink.
    ASSERT_EQ(fs.unlink("/", "/tmp/foo"), 0);
    ASSERT_EQ(fs.symlink("/", "/etc/passwd", "/tmp/foo"), 0);
    sys.kernel().set_monitor_policy("cat", pol);
    sys.kernel().set_normalize_paths(normalize);
    sys.kernel().set_enforcement(os::Enforcement::Daemon);
    auto r = sys.machine().run(img, {"/tmp/foo"});
    if (normalize) {
      EXPECT_FALSE(r.completed) << "normalizing monitor must catch the symlink swap";
      EXPECT_EQ(r.violation, os::Violation::MonitorDenied);
    } else {
      EXPECT_TRUE(r.completed) << "non-normalizing monitor is fooled (the attack works)";
    }
  }
}

TEST(Normalization, KernelNormalizeResolvesDotsAndLinks) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  auto& fs = sys.kernel().fs();
  ASSERT_EQ(fs.mkdir("/", "/var", 0755), 0);
  ASSERT_EQ(fs.mkdir("/", "/var/log", 0755), 0);
  fs.open("/", "/var/log/app.log", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  ASSERT_EQ(fs.symlink("/", "/var/log", "/logs"), 0);
  EXPECT_EQ(fs.normalize("/", "/logs/../log/app.log").value_or("?"), "/var/log/app.log");
  EXPECT_EQ(fs.normalize("/logs", "app.log").value_or("?"), "/var/log/app.log");
}

}  // namespace
}  // namespace asc
