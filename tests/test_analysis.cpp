// Static analysis pipeline tests on hand-built programs with known
// structure: disassembly/symbolization, CFG, call graph, stub inlining,
// reaching definitions / value tracing, syscall graph.
#include <gtest/gtest.h>

#include "analysis/argclass.h"
#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/disassembler.h"
#include "analysis/inliner.h"
#include "analysis/syscallgraph.h"
#include "analysis/syscallsites.h"
#include "apps/libtoy.h"
#include "installer/policygen.h"
#include "tasm/assembler.h"

namespace asc::analysis {
namespace {

using apps::R0;
using apps::R1;
using apps::R2;
using apps::R3;
using apps::R11;

TEST(Disassembler, RequiresRelocatableImage) {
  tasm::Assembler a("t");
  a.func("_start");
  a.ret();
  auto img = a.link("_start");
  img.relocatable = false;
  EXPECT_THROW(disassemble(img), Error);
}

TEST(Disassembler, SymbolizesBranchesCallsAndData) {
  tasm::Assembler a("t");
  a.func("_start");
  a.lea(R1, "msg");      // DataAddr
  a.call("callee");      // FuncEntry
  a.label(".here");
  a.cmpi(R0, 0);
  a.jnz(".here");        // CodeLocal
  a.ret();
  a.func("callee");
  a.ret();
  a.rodata_cstr("msg", "m");
  auto ir = disassemble(a.link("_start"));
  const IrFunction* start = ir.find("_start");
  ASSERT_NE(start, nullptr);
  EXPECT_FALSE(start->opaque);
  EXPECT_EQ(start->instrs[0].ref, RefKind::DataAddr);
  EXPECT_EQ(start->instrs[1].ref, RefKind::FuncEntry);
  EXPECT_EQ(ir.funcs[start->instrs[1].ref_index].name, "callee");
  EXPECT_EQ(start->instrs[3].ref, RefKind::CodeLocal);
  EXPECT_EQ(start->instrs[3].ref_index, 2u);  // the cmpi at ".here"
}

TEST(Disassembler, MarksUndecodableFunctionOpaque) {
  tasm::Assembler a("t");
  a.func("_start");
  a.ret();
  a.func("weird");
  a.raw({0xfe, 0xdc});
  a.ret();
  auto ir = disassemble(a.link("_start"));
  const IrFunction* w = ir.find("weird");
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->opaque);
  EXPECT_NE(w->opaque_reason.find("undecodable"), std::string::npos);
}

TEST(Disassembler, MarksComputedJumpOpaque) {
  tasm::Assembler a("t");
  a.func("_start");
  a.ret();
  a.func("computed");
  a.lea(R11, ".x");
  a.jmpr(R11);
  a.label(".x");
  a.ret();
  auto ir = disassemble(a.link("_start"));
  EXPECT_TRUE(ir.find("computed")->opaque);
}

TEST(Disassembler, DetectsAddressTakenFunctions) {
  tasm::Assembler a("t");
  a.func("_start");
  a.lea(R11, "target");
  a.callr(R11);
  a.ret();
  a.func("target");
  a.ret();
  a.func("not_taken");
  a.ret();
  auto ir = disassemble(a.link("_start"));
  EXPECT_TRUE(ir.find("target")->address_taken);
  EXPECT_FALSE(ir.find("not_taken")->address_taken);
}

TEST(Disassembler, DetectsDataResidentCodePointers) {
  tasm::Assembler a("t");
  a.func("_start");
  a.ret();
  a.func("pointee");
  a.ret();
  a.data_ptr("fnptr", "pointee");
  auto ir = disassemble(a.link("_start"));
  EXPECT_TRUE(ir.find("pointee")->address_taken);
  ASSERT_EQ(ir.data_code_ptrs.size(), 1u);
  EXPECT_EQ(ir.funcs[ir.data_code_ptrs[0].second].name, "pointee");
}

TEST(Cfg, SplitsBlocksAtBranchesAndCalls) {
  tasm::Assembler a("t");
  a.func("_start");
  a.movi(R11, 3);        // block 1
  a.label(".loop");
  a.subi(R11, 1);        // block 2 (branch target)
  a.cmpi(R11, 0);
  a.jnz(".loop");
  a.call("leaf");        // block 3 ends in call
  a.ret();               // block 4
  a.func("leaf");
  a.ret();
  auto ir = disassemble(a.link("_start"));
  auto cfg = build_cfg(ir);
  const FunctionCfg& fc = cfg.functions[0];
  ASSERT_EQ(fc.block_ids.size(), 4u);
  const BasicBlock& loop_block = cfg.block(fc.block_ids[1]);
  // loop block: succs = itself + fallthrough
  EXPECT_EQ(loop_block.succs.size(), 2u);
  const BasicBlock& call_block = cfg.block(fc.block_ids[2]);
  EXPECT_TRUE(call_block.ends_in_call);
  EXPECT_EQ(ir.funcs[call_block.call_target].name, "leaf");
  EXPECT_TRUE(cfg.block(fc.block_ids[3]).ends_in_ret);
}

TEST(Inliner, InlinesStubsPerCallSite) {
  tasm::Assembler a("t");
  a.func("main");
  a.call("sys_getpid");
  a.call("sys_getpid");
  a.movi(R0, 0);
  a.ret();
  apps::emit_libc(a, os::Personality::LinuxSim);  // defines stubs and _start
  auto img = a.link();
  auto ir = disassemble(img);
  const auto report = inline_syscall_stubs(ir);
  EXPECT_GE(report.stubs_found, 2u);
  // main now contains both getpid SYSCALLs directly, one per call site.
  const IrFunction* main_fn = ir.find("main");
  int syscalls = 0;
  for (const auto& i : main_fn->instrs) {
    if (i.ins.op == isa::Op::Syscall) ++syscalls;
  }
  EXPECT_EQ(syscalls, 2);
}

TEST(Dataflow, TracesConstantsAndStrings) {
  tasm::Assembler a("t");
  a.func("_start");
  a.lea(R1, "path");     // string constant
  a.movi(R2, 0);         // immediate
  a.mov(R3, R2);         // copy chain
  a.movi(R0, 5);         // open
  a.syscall_();
  a.ret();
  a.rodata_cstr("path", "/etc/passwd");
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  const ReachingDefs rd(ir, cfg, 0);
  const std::size_t sys_idx = 4;
  const auto v1 = trace_value(ir, img, cfg, rd, 0, sys_idx, 1);
  EXPECT_EQ(v1.kind, AbstractValue::Kind::StrAddr);
  const auto v2 = trace_value(ir, img, cfg, rd, 0, sys_idx, 2);
  EXPECT_EQ(v2.kind, AbstractValue::Kind::Const);
  EXPECT_EQ(v2.value, 0u);
  const auto v3 = trace_value(ir, img, cfg, rd, 0, sys_idx, 3);
  EXPECT_EQ(v3.kind, AbstractValue::Kind::Const) << "copy chains must be followed";
}

TEST(Dataflow, MultiplePathsYieldMultiValue) {
  tasm::Assembler a("t");
  a.func("_start");
  a.cmpi(R11, 0);
  a.jz(".b");
  a.movi(R1, 10);
  a.jmp(".join");
  a.label(".b");
  a.movi(R1, 20);
  a.label(".join");
  a.movi(R0, 45);  // brk
  a.syscall_();
  a.ret();
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  const ReachingDefs rd(ir, cfg, 0);
  // the syscall is instruction index 6
  const auto v = trace_value(ir, img, cfg, rd, 0, 6, 1);
  ASSERT_EQ(v.kind, AbstractValue::Kind::Multi);
  EXPECT_EQ(v.values.size(), 2u);
}

TEST(Dataflow, CallClobbersArgumentRegisters) {
  tasm::Assembler a("t");
  a.func("_start");
  a.movi(R1, 7);
  a.call("noise");
  a.movi(R0, 45);
  a.syscall_();
  a.ret();
  a.func("noise");
  a.ret();
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  const ReachingDefs rd(ir, cfg, 0);
  const auto v = trace_value(ir, img, cfg, rd, 0, 3, 1);
  EXPECT_EQ(v.kind, AbstractValue::Kind::Unknown)
      << "a value that crossed a call must be conservative";
}

TEST(Dataflow, FdTracedToOpen) {
  tasm::Assembler a("t");
  a.func("_start");
  a.lea(R1, "p");
  a.movi(R2, 0);
  a.movi(R3, 0);
  a.movi(R0, 5);  // open
  a.syscall_();
  a.mov(R1, R0);  // fd
  a.movi(R0, 6);  // close
  a.syscall_();
  a.ret();
  a.rodata_cstr("p", "/f");
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  auto scan = find_syscall_sites(ir, img, cfg, os::Personality::LinuxSim);
  ASSERT_EQ(scan.sites.size(), 2u);
  const auto& close_site = scan.sites[1];
  EXPECT_EQ(close_site.id, os::SysId::Close);
  EXPECT_EQ(close_site.args[0].kind, ArgClass::Kind::FdArg);
  ASSERT_EQ(close_site.args[0].fd_origin_blocks.size(), 1u);
  EXPECT_EQ(close_site.args[0].fd_origin_blocks[0], scan.sites[0].block);
}

TEST(SyscallGraphTest, SequentialPredecessors) {
  tasm::Assembler a("t");
  a.func("_start");
  a.movi(R0, 20);  // getpid
  a.syscall_();
  a.movi(R0, 24);  // getuid
  a.syscall_();
  a.ret();
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  auto cg = build_callgraph(ir, cfg);
  auto scan = find_syscall_sites(ir, img, cfg, os::Personality::LinuxSim);
  auto graph = build_syscall_graph(ir, cfg, cg, scan.sites);
  ASSERT_EQ(graph.predecessors.size(), 2u);
  EXPECT_EQ(graph.predecessors[0], std::vector<std::uint32_t>{policy::kStartBlockLocal});
  EXPECT_EQ(graph.predecessors[1], std::vector<std::uint32_t>{scan.sites[0].block});
}

TEST(SyscallGraphTest, BranchMergesPredecessors) {
  tasm::Assembler a("t");
  a.func("_start");
  a.cmpi(R11, 0);
  a.jz(".else");
  a.movi(R0, 20);  // getpid
  a.syscall_();
  a.jmp(".join");
  a.label(".else");
  a.movi(R0, 24);  // getuid
  a.syscall_();
  a.label(".join");
  a.movi(R0, 60);  // umask
  a.syscall_();
  a.ret();
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  auto cg = build_callgraph(ir, cfg);
  auto scan = find_syscall_sites(ir, img, cfg, os::Personality::LinuxSim);
  auto graph = build_syscall_graph(ir, cfg, cg, scan.sites);
  ASSERT_EQ(scan.sites.size(), 3u);
  EXPECT_EQ(graph.predecessors[2].size(), 2u) << "umask must accept both branch predecessors";
}

TEST(SyscallGraphTest, InterproceduralFlowThroughCallee) {
  tasm::Assembler a("t");
  a.func("_start");
  a.movi(R0, 20);  // getpid
  a.syscall_();
  a.call("quiet");     // no syscalls inside
  a.movi(R0, 24);  // getuid
  a.syscall_();
  a.ret();
  a.func("quiet");
  a.movi(R11, 1);
  a.ret();
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  auto cg = build_callgraph(ir, cfg);
  auto scan = find_syscall_sites(ir, img, cfg, os::Personality::LinuxSim);
  auto graph = build_syscall_graph(ir, cfg, cg, scan.sites);
  // getuid's predecessor is getpid, THROUGH the call to quiet().
  EXPECT_EQ(graph.predecessors[1], std::vector<std::uint32_t>{scan.sites[0].block});
}

TEST(SyscallGraphTest, CalleeSyscallShadowsEarlierOnes) {
  tasm::Assembler a("t");
  a.func("_start");
  a.movi(R0, 20);  // getpid
  a.syscall_();
  a.call("noisy");
  a.movi(R0, 24);  // getuid
  a.syscall_();
  a.ret();
  a.func("noisy");
  a.movi(R0, 60);  // umask
  a.syscall_();
  a.ret();
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  auto cg = build_callgraph(ir, cfg);
  auto scan = find_syscall_sites(ir, img, cfg, os::Personality::LinuxSim);
  auto graph = build_syscall_graph(ir, cfg, cg, scan.sites);
  // sites: getpid, getuid, umask (scan order by function)
  const auto& getuid_preds = graph.predecessors[1];
  ASSERT_EQ(getuid_preds.size(), 1u);
  EXPECT_EQ(getuid_preds[0], scan.sites[2].block) << "the callee's umask is the predecessor";
}

TEST(ArgCoverage, CountsMatchHandConstructedProgram) {
  tasm::Assembler a("t");
  a.func("_start");
  a.lea(R1, "p");   // String
  a.movi(R2, 0);    // Const
  a.movi(R3, 0);    // Const
  a.movi(R0, 5);    // open(path, flags, mode): 3 args
  a.syscall_();
  a.mov(R1, R0);
  a.lea(R2, "buf");
  a.movi(R3, 16);
  a.movi(R0, 3);    // read(fd, buf, n)
  a.syscall_();
  a.ret();
  a.rodata_cstr("p", "/f");
  a.bss("buf", 16);
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  auto scan = find_syscall_sites(ir, img, cfg, os::Personality::LinuxSim);
  const auto cov = compute_arg_coverage(scan);
  EXPECT_EQ(cov.sites, 2u);
  EXPECT_EQ(cov.calls, 2u);
  EXPECT_EQ(cov.args, 6u);
  EXPECT_EQ(cov.output_only, 1u);  // read's buffer
  // open: 3 protected (string + 2 consts); read: buf addr is a Const (bss
  // address) and n is Const; fd is FdArg.
  EXPECT_EQ(cov.auth, 5u);
  EXPECT_EQ(cov.fds, 1u);
}

TEST(Policygen, WarnsOnNonConstantSyscallNumber) {
  tasm::Assembler a("t");
  a.func("_start");
  a.mov(R0, R11);  // syscall number from a register: not analyzable
  a.syscall_();
  a.ret();
  auto img = a.link("_start");
  auto ir = disassemble(img);
  auto cfg = build_cfg(ir);
  auto scan = find_syscall_sites(ir, img, cfg, os::Personality::LinuxSim);
  EXPECT_TRUE(scan.sites.empty());
  ASSERT_FALSE(scan.warnings.empty());
  EXPECT_NE(scan.warnings[0].find("non-constant"), std::string::npos);
}

TEST(Policygen, UnreachableFunctionsContributeNoPolicies) {
  tasm::Assembler a("t");
  a.func("main");
  a.movi(R0, 0);
  a.ret();
  a.func("dead_code");
  a.call("sys_socket");  // never called by anyone
  a.ret();
  apps::emit_libc(a, os::Personality::LinuxSim);
  auto gp = installer::generate_policies(a.link(), os::Personality::LinuxSim);
  for (const auto& p : gp.policies) {
    EXPECT_NE(p.sys, os::SysId::Socket) << "unreachable socket must be pruned";
  }
}

}  // namespace
}  // namespace asc::analysis
