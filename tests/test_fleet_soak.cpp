// The fleet soak (`slow` label): hundreds of tenant lifecycles by default,
// 10k+ in the nightly (ASC_FLEET_SOAK_TENANTS), replayed at executor widths
// 1/2/8. Acceptance: zero invariant-oracle trips, every injected tamper
// fail-stops inside its own shard, and both determinism surfaces (verdict
// trace, aggregated audit stream) are byte-identical at every width. On
// failure, the reproducer lines are written to fleet_repro.txt in the
// test's working directory (uploaded as a CI artifact).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "util/executor.h"

namespace asc {
namespace {

int soak_tenants() {
  const char* env = std::getenv("ASC_FLEET_SOAK_TENANTS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 300;
}

void dump_repro(const fleet::FleetResult& r, const std::string& tag) {
  std::ofstream out("fleet_repro.txt", std::ios::app);
  out << "== " << tag << " ==\n";
  for (const auto& t : r.trips) out << t << "\n";
}

TEST(FleetSoak, StormIsByteIdenticalAtEveryWidthWithZeroTrips) {
  fleet::FleetConfig cfg;
  cfg.seed = 20260808;
  cfg.tenants = soak_tenants();
  // Tamper a sparse deterministic subset; everyone else must be untouched.
  for (int t = 13; t < cfg.tenants; t += 41) cfg.tamper_tenants.push_back(t);

  std::vector<fleet::FleetResult> results;
  for (const int jobs : {1, 2, 8}) {
    util::Executor exec(jobs);
    fleet::FleetConfig c = cfg;
    c.executor = &exec;
    results.push_back(fleet::Driver(c).run());
    const fleet::FleetResult& r = results.back();
    if (!r.ok()) dump_repro(r, "jobs=" + std::to_string(jobs));
    EXPECT_TRUE(r.ok()) << "jobs=" << jobs << "\n" << r.summary();
    ASSERT_EQ(r.tenants.size(), static_cast<std::size_t>(cfg.tenants));
  }

  EXPECT_EQ(results[0].verdict_trace, results[1].verdict_trace)
      << "jobs=2 diverged from the serial reference";
  EXPECT_EQ(results[0].verdict_trace, results[2].verdict_trace)
      << "jobs=8 diverged from the serial reference";
  EXPECT_EQ(results[0].audit.digest, results[1].audit.digest);
  EXPECT_EQ(results[0].audit.digest, results[2].audit.digest);
  EXPECT_EQ(results[0].audit.lines, results[2].audit.lines);

  const fleet::FleetResult& r = results[0];
  // The storm actually exercised what it claims to.
  EXPECT_GT(r.rotations, 0);
  EXPECT_GT(r.swaps, 0);
  EXPECT_GT(r.respawns, 0);
  EXPECT_EQ(r.tampered, static_cast<int>(cfg.tamper_tenants.size()));
  EXPECT_EQ(r.tamper_detected, r.tampered) << "a tamper escaped detection";
  EXPECT_GT(r.audit.records.size(), 0u);
  EXPECT_GT(r.total_shard_bytes, 0u);
}

}  // namespace
}  // namespace asc
