// End-to-end smoke tests: build guest programs, run them, install them,
// run the authenticated versions, and check the paper's core functional
// claim -- authenticated binaries behave identically and raise no false
// alarms.
#include <gtest/gtest.h>

#include "core/asc.h"

namespace asc {
namespace {

TEST(Smoke, CatRunsUnmonitored) {
  System sys(os::Personality::LinuxSim, test_key(), os::Enforcement::Off);
  auto& fs = sys.kernel().fs();
  auto ino = fs.open("/", "/hello.txt", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  ASSERT_GE(ino, 0);
  const std::string content = "hello, world\n";
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(content.begin(), content.end()), false);

  auto img = apps::build_tool_cat(os::Personality::LinuxSim);
  auto r = sys.machine().run(img, {"/hello.txt"});
  EXPECT_TRUE(r.completed) << r.violation_detail;
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.stdout_data, content);
}

TEST(Smoke, CatRunsAuthenticated) {
  System sys(os::Personality::LinuxSim);
  auto& fs = sys.kernel().fs();
  auto ino = fs.open("/", "/hello.txt", os::SimFs::kWrOnly | os::SimFs::kCreat, 0644);
  ASSERT_GE(ino, 0);
  const std::string content = "hello, world\n";
  fs.write(static_cast<std::uint32_t>(ino), 0,
           std::vector<std::uint8_t>(content.begin(), content.end()), false);

  auto inst = sys.install(apps::build_tool_cat(os::Personality::LinuxSim));
  EXPECT_TRUE(inst.image.authenticated);
  EXPECT_FALSE(inst.policies.empty());
  auto r = sys.machine().run(inst.image, {"/hello.txt"});
  EXPECT_TRUE(r.completed) << r.violation_detail;
  EXPECT_EQ(r.violation, os::Violation::None) << r.violation_detail;
  EXPECT_EQ(r.stdout_data, content);
}

TEST(Smoke, UnauthenticatedBinaryIsBlockedUnderAsc) {
  System sys(os::Personality::LinuxSim);  // enforcement on
  auto img = apps::build_tool_cat(os::Personality::LinuxSim);  // NOT installed
  auto r = sys.machine().run(img, {"/hello.txt"});
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation, os::Violation::None);
}

}  // namespace
}  // namespace asc
