#include "fault/campaign.h"

#include <algorithm>
#include <cstdio>

#include "core/asc.h"
#include "installer/rekeyer.h"
#include "isa/isa.h"
#include "policy/descriptor.h"
#include "policy/policy.h"
#include "util/error.h"
#include "util/executor.h"
#include "util/rng.h"

namespace asc::fault {

std::string outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Benign: return "benign";
    case Outcome::Detected: return "detected";
    case Outcome::WrongVerdict: return "wrong-verdict";
    case Outcome::SilentBypass: return "silent-bypass";
    case Outcome::HostCrash: return "host-crash";
    case Outcome::NotApplied: return "not-applied";
  }
  return "?";
}

void CampaignResult::merge(const CampaignResult& other) {
  verdicts.insert(verdicts.end(), other.verdicts.begin(), other.verdicts.end());
  benign += other.benign;
  detected += other.detected;
  wrong_verdict += other.wrong_verdict;
  silent_bypass += other.silent_bypass;
  host_crash += other.host_crash;
  not_applied += other.not_applied;
  for (const auto& [cls, row] : other.matrix) {
    for (const auto& [v, n] : row) matrix[cls][v] += n;
  }
}

std::string CampaignResult::summary() const {
  // Column set: every Violation observed anywhere in the matrix.
  std::vector<os::Violation> cols;
  for (const auto& [cls, row] : matrix) {
    for (const auto& [v, n] : row) {
      if (std::find(cols.begin(), cols.end(), v) == cols.end()) cols.push_back(v);
    }
  }
  std::sort(cols.begin(), cols.end());

  char buf[160];
  std::string out = "mutation class x Violation coverage matrix\n";
  std::snprintf(buf, sizeof buf, "%-22s", "");
  out += buf;
  for (const auto v : cols) {
    std::snprintf(buf, sizeof buf, " %16s", os::violation_name(v).c_str());
    out += buf;
  }
  out += "\n";
  for (const auto& [cls, row] : matrix) {
    std::snprintf(buf, sizeof buf, "%-22s", mutation_class_name(cls).c_str());
    out += buf;
    for (const auto v : cols) {
      const auto it = row.find(v);
      std::snprintf(buf, sizeof buf, " %16d", it == row.end() ? 0 : it->second);
      out += buf;
    }
    out += "\n";
  }
  std::snprintf(buf, sizeof buf,
                "applied=%d detected=%d benign=%d wrong=%d bypass=%d crash=%d skipped=%d\n",
                total_applied(), detected, benign, wrong_verdict, silent_bypass, host_crash,
                not_applied);
  out += buf;
  return out;
}

namespace {

crypto::Key128 mismatched_key() {
  crypto::Key128 k = test_key();
  for (auto& b : k) b = static_cast<std::uint8_t>(b ^ 0x5a);
  return k;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The clean run's observable behavior, the equivalence baseline.
struct CleanRun {
  bool completed = false;
  int exit_code = 0;
  std::string out;
  std::string err;
  int n_calls = 0;
};

}  // namespace

CampaignResult Campaign::run(const GuestProgram& prog) {
  CampaignResult result;

  // Install the program (and spawn helpers) once. The images embed MACs
  // under the shared test key; every run below gets a fresh kernel.
  System inst_sys(cfg_.personality);
  const installer::InstallResult inst = inst_sys.install(prog.image);
  std::vector<std::pair<std::string, binary::Image>> helpers;
  std::vector<installer::SignManifest> helper_manifests;
  for (const auto& [path, img] : prog.helpers) {
    installer::InstallResult hi = inst_sys.install(img);
    helpers.emplace_back(path, std::move(hi.image));
    helper_manifests.push_back(std::move(hi.manifest));
  }

  auto fresh = [&](const crypto::Key128& kernel_key) {
    auto sys = std::make_unique<System>(cfg_.personality, test_key(), os::Enforcement::Asc);
    sys->kernel().set_key(kernel_key);
    sys->kernel().set_failure_mode(cfg_.mode);
    sys->kernel().set_violation_budget(cfg_.violation_budget);
    if (prog.prepare_fs) prog.prepare_fs(sys->kernel().fs());
    for (const auto& [path, img] : helpers) sys->machine().register_program(path, img);
    if (cfg_.cycle_limit != 0) sys->machine().set_cycle_limit(cfg_.cycle_limit);
    if (cfg_.configure_kernel) cfg_.configure_kernel(sys->kernel());
    return sys;
  };

  // ---- clean reference run ----
  // Also harvests per-call policy-state snapshots: the CrossReplay donor
  // bytes come from this run's process, i.e. a different address space than
  // the mutated runs they are injected into.
  CleanRun clean;
  std::map<int, std::vector<std::uint8_t>> state_snapshots;
  {
    auto sys = fresh(test_key());
    // Harvest with the policy-state shadow off: under lazy write-back the
    // guest record lags the kernel's shadow, so every snapshot would hold
    // the same stale bytes -- useless as distinct-nonce replay donors. The
    // eager protocol materializes {lastBlock, MAC(lastBlock, counter)} at
    // every call, which is what a real attacker scraping a victim address
    // space would capture. Mutated runs keep the shadow at its default.
    sys->kernel().set_policy_shadow(false);
    int calls = 0;
    sys->machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
      ++calls;
      const auto& regs = p.cpu.regs;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (policy::Descriptor(regs[isa::kRegPolicyDescriptor]).control_flow_constrained() &&
          p.mem.in_range(lb, policy::kPolicyStateSize)) {
        state_snapshots[calls] = p.mem.read_bytes(lb, policy::kPolicyStateSize);
      }
    };
    const vm::RunResult r = sys->machine().run(inst.image, prog.argv, prog.stdin_data);
    if (!r.completed || r.violation != os::Violation::None) {
      throw Error("fault campaign: clean run of " + prog.name +
                  " failed: " + r.violation_detail);
    }
    clean = {r.completed, r.exit_code, r.stdout_data, r.stderr_data, calls};
  }
  if (clean.n_calls == 0) {
    throw Error("fault campaign: " + prog.name + " makes no system calls");
  }

  // ---- RekeyToctou payload ----
  // One coherent {new key, re-signed view, re-signed helpers} triple serves
  // every run of the class: the manifests are key-independent, so a single
  // Rekeyer pass per image yields everything the strike swaps in.
  // Computed only when the campaign actually draws the class (it is opt-in).
  struct RekeyPayload {
    crypto::Key128 key{};
    os::RekeyView view;
    std::vector<std::pair<std::string, binary::Image>> programs;
  };
  std::optional<RekeyPayload> rekey_payload;
  {
    const bool wants_rekey =
        std::any_of(cfg_.classes.begin(), cfg_.classes.end(),
                    [](MutationClass c) { return c == MutationClass::RekeyToctou; }) ||
        std::any_of(cfg_.explicit_specs.begin(), cfg_.explicit_specs.end(),
                    [](const FaultSpec& s) { return s.cls == MutationClass::RekeyToctou; });
    if (wants_rekey) {
      crypto::Key128 nk = test_key();
      for (auto& b : nk) b = static_cast<std::uint8_t>(b ^ 0xa5);
      installer::RekeyResult rr =
          installer::Rekeyer::rekey(inst.image, inst.manifest, test_key(), nk);
      RekeyPayload pay;
      pay.key = nk;
      pay.view = std::move(rr.view);
      for (std::size_t h = 0; h < helpers.size(); ++h) {
        pay.programs.emplace_back(
            helpers[h].first,
            installer::Rekeyer::rekey(helpers[h].second, helper_manifests[h], test_key(), nk)
                .image);
      }
      rekey_payload = std::move(pay);
    }
  }

  // ---- one mutated execution ----
  auto execute = [&](const FaultSpec& spec) -> RunVerdict {
    RunVerdict v;
    v.program = prog.name;
    v.spec = spec;
    v.repro = spec_repr(spec);
    auto sys =
        fresh(spec.cls == MutationClass::KeyMismatch ? mismatched_key() : test_key());
    FaultInjector inj(spec);
    if (spec.cls == MutationClass::RotationDuringTrap) {
      // Rotate to a genuinely different key: every MAC the guest carries
      // goes stale at the strike point.
      inj.set_rotation_key(mismatched_key());
    }
    if (spec.cls == MutationClass::RekeyToctou && rekey_payload.has_value()) {
      inj.set_rekey(rekey_payload->key, rekey_payload->view, rekey_payload->programs);
    }
    if (spec.cls == MutationClass::CrossReplay) {
      // Donor from a different call index: its counter nonce (or foreign
      // lastBlock) cannot match what the kernel expects at the trigger.
      std::vector<int> keys;
      for (const auto& [call, bytes] : state_snapshots) {
        if (call != spec.trigger_call) keys.push_back(call);
      }
      if (!keys.empty()) {
        inj.set_replay_state(state_snapshots.at(keys[spec.seed % keys.size()]));
      }
    }
    inj.arm(sys->machine());
    vm::RunResult r;
    try {
      r = sys->machine().run(inst.image, prog.argv, prog.stdin_data);
    } catch (const std::exception& e) {
      v.outcome = Outcome::HostCrash;
      v.detail = std::string(e.what()) + " [repro " + prog.name + " " + v.repro + "]";
      return v;
    } catch (...) {
      v.outcome = Outcome::HostCrash;
      v.detail = "non-standard exception escaped the simulator [repro " + prog.name + " " +
                 v.repro + "]";
      return v;
    }
    v.mutation = inj.description();
    v.cycles = r.cycles;
    const os::VerdictRecord* first = nullptr;
    for (const auto& rec : sys->kernel().audit_log()) {
      if (rec.kind != os::AuditKind::Violation) continue;
      if (first == nullptr) first = &rec;
      ++v.violations_audited;
      if (rec.killed) v.guest_killed = true;
    }
    if (first != nullptr) {
      v.violation = first->violation;
      v.detail = first->detail;
      const auto& exp = expected_violations(spec.cls);
      v.outcome = std::find(exp.begin(), exp.end(), first->violation) != exp.end()
                      ? Outcome::Detected
                      : Outcome::WrongVerdict;
    } else if (!inj.applied()) {
      v.outcome = Outcome::NotApplied;
    } else {
      const bool same = r.completed == clean.completed && r.exit_code == clean.exit_code &&
                        r.stdout_data == clean.out && r.stderr_data == clean.err;
      v.outcome = same ? Outcome::Benign : Outcome::SilentBypass;
      if (!same) v.detail = "behavior diverged without an audited verdict: " + v.mutation;
    }
    // Fault-campaign DX: any unexpected verdict carries its own single-line
    // reproducer, so one failing run out of thousands can be replayed alone.
    if (v.outcome == Outcome::WrongVerdict || v.outcome == Outcome::SilentBypass) {
      v.detail += " [repro " + prog.name + " " + v.repro + "]";
    }
    return v;
  };

  auto record = [&](RunVerdict v) {
    switch (v.outcome) {
      case Outcome::Benign:
        ++result.benign;
        ++result.matrix[v.spec.cls][os::Violation::None];
        break;
      case Outcome::Detected:
        ++result.detected;
        ++result.matrix[v.spec.cls][v.violation];
        break;
      case Outcome::WrongVerdict:
        ++result.wrong_verdict;
        ++result.matrix[v.spec.cls][v.violation];
        break;
      case Outcome::SilentBypass:
        ++result.silent_bypass;
        break;
      case Outcome::HostCrash:
        ++result.host_crash;
        break;
      case Outcome::NotApplied:
        ++result.not_applied;
        break;
    }
    result.verdicts.push_back(std::move(v));
  };

  // ---- the seeded mutation sweep ----
  // The spec list is drawn serially (the seeded RNG sequence IS the
  // campaign's identity); the mutated executions fan out over the pool,
  // each on its own System. Verdicts land in spec order, so the tallies,
  // the coverage matrix, and the verdict list match the serial sweep.
  const auto classes = cfg_.classes.empty() ? all_mutation_classes() : cfg_.classes;
  const auto stage_pool = cfg_.stages.empty() ? all_trap_stages() : cfg_.stages;
  const util::Rng root(cfg_.seed);
  const std::uint64_t tag = fnv1a(prog.name);
  std::vector<FaultSpec> specs;
  const bool replaying = !cfg_.explicit_specs.empty();
  if (replaying) {
    specs = cfg_.explicit_specs;
  } else {
    specs.reserve(classes.size() * static_cast<std::size_t>(cfg_.runs_per_class));
    for (const auto cls : classes) {
      util::Rng rng = root.derive(tag ^ (static_cast<std::uint64_t>(cls) << 32));
      // The stage comes from a SEPARATE substream: trigger/seed sequences of
      // every pre-existing class stay byte-identical to older campaigns.
      util::Rng stage_rng =
          root.derive(tag ^ (static_cast<std::uint64_t>(cls) << 32) ^ 0x57a6e5u);
      // Per-class pool: only the boundaries this class may strike at (e.g.
      // AsBodyCorrupt excludes Enforce -- see fault::stage_allowed).
      std::vector<os::TrapStage> pool;
      for (const auto s : stage_pool) {
        if (stage_allowed(cls, s)) pool.push_back(s);
      }
      if (pool.empty()) pool.push_back(os::TrapStage::Trap);
      for (int i = 0; i < cfg_.runs_per_class; ++i) {
        FaultSpec spec;
        spec.cls = cls;
        spec.trigger_call =
            1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(clean.n_calls)));
        spec.seed = rng.next_u64();
        if (stage_targetable(cls)) {
          spec.stage = pool[stage_rng.next_below(pool.size())];
        }
        specs.push_back(spec);
      }
    }
  }

  std::vector<RunVerdict> verdicts =
      util::resolve_executor(cfg_.executor)
          .parallel_map<RunVerdict>(specs.size(), [&](std::size_t k) {
            FaultSpec spec = specs[k];
            RunVerdict v = execute(spec);
            if (!replaying && v.outcome == Outcome::NotApplied && spec.trigger_call > 1) {
              // The class had no target at or after the trigger (e.g. the
              // last AS argument already went by); retry from the first call.
              // Replayed explicit specs are exempt: a reproducer must run
              // exactly the spec it names.
              spec.trigger_call = 1;
              v = execute(spec);
            }
            return v;
          });
  for (RunVerdict& v : verdicts) record(std::move(v));
  return result;
}

CampaignResult Campaign::run_all(const std::vector<GuestProgram>& progs) {
  CampaignResult total;
  for (const auto& prog : progs) total.merge(run(prog));
  return total;
}

}  // namespace asc::fault
