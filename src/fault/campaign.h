// Systematic fault-injection campaigns over guest programs.
//
// A Campaign runs a guest program once cleanly (recording its behavior and
// syscall count), then replays it many times under seeded FaultInjector
// mutations, and classifies every mutated run against the enforcement
// invariant:
//
//   every mutated run either behaves identically to the clean run (the
//   mutation was never consumed by the checker) or yields a verdict whose
//   Violation class is expected for the mutation class -- with zero host
//   crashes and zero silent bypasses (accepted runs whose behavior
//   diverges from the clean run without any audited verdict).
//
// Campaigns honor the kernel failure mode, so the same seeded mutation set
// can be replayed under fail-stop, budgeted, and audit-only enforcement and
// the verdicts compared (graceful-degradation equivalence).
//
// Detection evidence comes from the audit layer of the trap pipeline: a run
// counts as Detected only if the AscMonitor's verdict reached the AuditLog
// as a Violation record (os/auditlog.h). Failure modes are an AuditLog
// setting, which is why replaying the same mutations under a different mode
// changes only kill decisions, never the audited violation classes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "binary/image.h"
#include "fault/fault.h"
#include "os/auditlog.h"
#include "os/fs.h"
#include "os/kernel.h"

namespace asc::util {
class Executor;
}

namespace asc::fault {

/// A guest program plus everything a run of it needs.
struct GuestProgram {
  std::string name;
  binary::Image image;  // pre-installation image
  std::vector<std::string> argv;
  std::string stdin_data;
  /// Programs registered (installed) for spawn, as {path, image}.
  std::vector<std::pair<std::string, binary::Image>> helpers;
  /// Per-run filesystem fixture.
  std::function<void(os::SimFs&)> prepare_fs;
};

struct CampaignConfig {
  std::uint64_t seed = 1;
  int runs_per_class = 8;
  std::vector<MutationClass> classes;  // empty = all classes
  /// Stage pool drawn from for stage-targetable classes (empty = all four
  /// TrapStage boundaries). Non-targetable classes always strike at Trap.
  std::vector<os::TrapStage> stages;
  /// Replay exactly these specs instead of drawing from the seeded RNG
  /// (the reproducer path: paste a RunVerdict::repro through parse_spec).
  /// No NotApplied retry -- a reproduced run must match the original.
  std::vector<FaultSpec> explicit_specs;
  os::Personality personality = os::Personality::LinuxSim;
  os::FailureMode mode = os::FailureMode::FailStop;
  std::uint32_t violation_budget = 0;
  std::uint64_t cycle_limit = 0;  // 0 = machine default
  /// Pool the mutated executions fan out over, each on its own System
  /// (nullptr = the process-global pool). The fault-spec list is drawn
  /// serially from the seeded RNG and verdicts are recorded in spec order,
  /// so tallies, matrix, and verdict order are identical at any job count.
  util::Executor* executor = nullptr;
  /// Applied to every freshly built kernel (clean AND mutated runs) before
  /// any execution -- e.g. enabling the inline tier with a low promotion
  /// threshold for the promo-toctou class. Null leaves every run on the
  /// stock configuration, so legacy campaigns stay byte-identical.
  std::function<void(os::Kernel&)> configure_kernel;
};

enum class Outcome : std::uint8_t {
  Benign,        // behaved identically to the clean run
  Detected,      // audited verdict with an expected Violation class
  WrongVerdict,  // audited verdict, but an unexpected Violation class
  SilentBypass,  // accepted, yet behavior diverged with no verdict at all
  HostCrash,     // an exception escaped the simulator
  NotApplied,    // the mutation never found an applicable target
};

std::string outcome_name(Outcome o);

/// Classification of one mutated execution.
struct RunVerdict {
  std::string program;
  FaultSpec spec;
  std::string mutation;  // injector description (empty when never applied)
  Outcome outcome = Outcome::NotApplied;
  os::Violation violation = os::Violation::None;  // first audited violation
  bool guest_killed = false;
  int violations_audited = 0;
  /// Modeled machine cycles the mutated run consumed (0 on host crash).
  /// Deterministic, so it doubles as the task weight when modeling parallel
  /// campaign schedules (bench/bench_table5_install.cpp).
  std::uint64_t cycles = 0;
  std::string detail;
  /// Single-line reproducer (spec_repr of the spec as executed, after any
  /// NotApplied retry). On an unexpected verdict, feed it back through
  /// CampaignConfig::explicit_specs or `asc-faultsim --spec` to replay.
  std::string repro;
};

struct CampaignResult {
  std::vector<RunVerdict> verdicts;
  int benign = 0;
  int detected = 0;
  int wrong_verdict = 0;
  int silent_bypass = 0;
  int host_crash = 0;
  int not_applied = 0;
  /// Coverage matrix: mutation class -> Violation observed -> count
  /// (Benign runs are counted under Violation::None).
  std::map<MutationClass, std::map<os::Violation, int>> matrix;

  /// Mutated executions whose fault actually landed.
  int total_applied() const { return benign + detected + wrong_verdict + silent_bypass; }
  /// The enforcement invariant: no crash, no bypass, no wrong verdict.
  bool invariant_holds() const {
    return wrong_verdict == 0 && silent_bypass == 0 && host_crash == 0;
  }
  void merge(const CampaignResult& other);
  /// Printable coverage matrix plus outcome counts.
  std::string summary() const;
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config) : cfg_(std::move(config)) {}

  const CampaignConfig& config() const { return cfg_; }

  /// Run the full seeded campaign against one program.
  CampaignResult run(const GuestProgram& prog);

  /// Run against several programs and merge the results.
  CampaignResult run_all(const std::vector<GuestProgram>& progs);

 private:
  CampaignConfig cfg_;
};

}  // namespace asc::fault
