// Lifecycle chaos engine: seeded churn over many concurrent guest Systems.
//
// The fault Campaign (campaign.h) proves the §3.4 invariant one mutated
// execution at a time. The chaos engine stresses the part a per-run campaign
// cannot: the KERNEL'S OWN lifecycle bookkeeping under churn -- spawn/exec/
// teardown storms, staggered key rotations, monitor swaps, and fast-path
// invalidation -- with faults landing not just before the trap but at every
// TrapStage boundary of the pipeline (FaultSpec::stage), plus the lifecycle
// mutation classes (rotation-during-trap, teardown-mid-verify,
// double-invalidation) and injected INTERNAL inconsistencies that exercise
// the per-pid health machine (os/health.h).
//
// Every tenant is one guest lifecycle on its own System: a fault run under a
// seeded plan, then a recovery run that must behave byte-identically to the
// clean reference. After every run, invariant oracles audit the kernel's
// bookkeeping:
//
//   * watch-range accounting balances (zero live ranges/refs at teardown,
//     registrations == releases -- vm::Memory::WatchStats);
//   * the verified-call cache, the policy-state shadow, and the health map
//     reference only live pids (all empty between runs);
//   * the audit log is coherent (every InternalFault record is followed by
//     a Health transition for the same pid; violation records are complete);
//   * injected guest tamper still fail-stops with an expected Violation
//     class, while injected internal faults NEVER surface as violations --
//     the guest survives on the degraded path and the kernel self-heals.
//
// Determinism: the per-tenant plan is drawn from a substream derived from
// (seed, tenant), every lifecycle runs on its own System, and verdicts land
// in tenant order -- so the verdict trace is byte-identical at any executor
// width (the soak test asserts jobs 1/2/8 agree).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "fault/fault.h"
#include "os/health.h"

namespace asc::util {
class Executor;
}

namespace asc::fault {

/// What a tenant's seeded plan does to its lifecycle.
enum class ChaosPlan : std::uint8_t {
  Clean,     // churn only: rotations, monitor swaps, shadow toggles
  Tamper,    // one stage-targeted FaultSpec (guest tamper or lifecycle class)
  Internal,  // injected internal inconsistencies driving the health machine
};

std::string chaos_plan_name(ChaosPlan p);

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Guest lifecycles to drive (each = one System: install, fault run,
  /// recovery run, teardown).
  int tenants = 32;
  /// Mutation classes the Tamper plans draw from (empty = all classes).
  std::vector<MutationClass> classes;
  /// TrapStage pool for stage-targetable classes (empty = all boundaries).
  std::vector<os::TrapStage> stages;
  os::Personality personality = os::Personality::LinuxSim;
  std::uint64_t cycle_limit = 200'000'000;
  /// Health-machine knobs for every tenant kernel: a small threshold keeps
  /// the full Quarantined -> Degraded -> Healthy recovery visible within one
  /// guest run of a few dozen syscalls.
  std::uint32_t promote_threshold = 2;
  std::uint32_t backoff_cap = 64;
  /// Guest pool (empty = default_chaos_guests()).
  std::vector<GuestProgram> guests;
  /// Executor the lifecycles fan out over (nullptr = process-global pool).
  util::Executor* executor = nullptr;
  /// Enable the trap-less Inline tier (os/tiertable.h) on every tenant
  /// kernel, with a low promotion threshold so sites promote within a run.
  /// Widens the default Tamper class pool with promo-toctou and adds a
  /// getpid-loop guest to the default pool (the workload that actually
  /// promotes). Off by default: legacy chaos streams stay byte-identical.
  bool inline_tier = false;
};

/// One tenant lifecycle, classified.
struct LifecycleVerdict {
  int tenant = 0;
  std::string guest;
  ChaosPlan plan = ChaosPlan::Clean;
  /// Reproducer token: spec_repr for Tamper, "bump@N+report@M" for
  /// Internal, "-" for Clean. Together with the engine seed and the tenant
  /// index this replays the lifecycle exactly.
  std::string plan_repr = "-";
  Outcome fault_outcome = Outcome::Benign;
  os::Violation violation = os::Violation::None;
  /// Health-machine transition counters of this tenant's kernel (fresh per
  /// lifecycle, so these ARE the lifecycle's deltas).
  os::HealthStats health;
  int runs = 0;
  /// Invariant-oracle failures (empty = lifecycle sound). Each entry is a
  /// self-contained reproducer line: seed, tenant, plan.
  std::vector<std::string> trips;
  /// One-line digest, byte-identical across executor widths.
  std::string trace_line;
};

struct ChaosResult {
  std::vector<LifecycleVerdict> lifecycles;
  int clean_plans = 0;
  int tamper_plans = 0;
  int internal_plans = 0;
  int detected = 0;     // tamper runs that fail-stopped with an expected class
  int benign = 0;       // tamper runs whose mutation was never consumed
  int not_applied = 0;  // tamper specs that found no target
  /// Aggregated health-machine counters across all tenant kernels.
  os::HealthStats health;
  /// Flattened oracle trips from every lifecycle (empty = chaos soak sound).
  std::vector<std::string> trips;
  /// One line per tenant, in tenant order; the determinism surface the soak
  /// compares across jobs=1/2/8.
  std::vector<std::string> verdict_trace;

  bool ok() const { return trips.empty(); }
  std::string summary() const;
};

/// Mixed default guest pool: file tools, a compression kernel, a calculator,
/// and a spawning guest (vuln_echo + helper) so teardown storms include
/// nested child processes. Self-contained filesystem fixture per run.
std::vector<GuestProgram> default_chaos_guests(os::Personality p);

class ChaosEngine {
 public:
  explicit ChaosEngine(ChaosConfig cfg) : cfg_(std::move(cfg)) {}

  const ChaosConfig& config() const { return cfg_; }

  /// Drive all tenant lifecycles and aggregate. Deterministic for a fixed
  /// (seed, tenants, classes, stages, guests) at any executor width.
  ChaosResult run();

 private:
  ChaosConfig cfg_;
};

}  // namespace asc::fault
