#include "fault/chaos.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "installer/rekeyer.h"
#include "isa/isa.h"
#include "policy/descriptor.h"
#include "policy/policy.h"
#include "util/error.h"
#include "util/executor.h"
#include "util/rng.h"

namespace asc::fault {

std::string chaos_plan_name(ChaosPlan p) {
  switch (p) {
    case ChaosPlan::Clean: return "clean";
    case ChaosPlan::Tamper: return "tamper";
    case ChaosPlan::Internal: return "internal";
  }
  return "?";
}

namespace {

crypto::Key128 chaos_mismatched_key() {
  crypto::Key128 k = test_key();
  for (auto& b : k) b = static_cast<std::uint8_t>(b ^ 0x3c);
  return k;
}

/// Rotation-churn target: a genuinely different key the tenant rekeys its
/// template to before the fault run.
crypto::Key128 chaos_rotation_key() { return derived_key(0xC4A00001ULL); }

/// RekeyToctou payload key: where a coherent mid-run Kernel::rekey lands.
crypto::Key128 chaos_rekey_key() { return derived_key(0xC4A00002ULL); }

void chaos_fs(os::SimFs& fs) {
  auto put = [&](const std::string& path, const std::string& content) {
    auto ino = fs.open("/", path, os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc,
                       0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(content.begin(), content.end()), false);
  };
  put("/f.txt", "aaaaaabbbbcccccccccddd\nmore text here\n" + std::string(512, 'q'));
  put("/lines.txt", "pear\napple\nmango\ncherry\nbanana\n");
  put("/in.c", "int main() { return 42; }\n" + std::string(600, 'x') + "\n");
  put("/etc/vuln.conf", "mode=list\n");
}

/// The clean reference: behavior baseline, syscall count, and the per-call
/// policy-state snapshots CrossReplay donors come from.
struct CleanRef {
  bool completed = false;
  int exit_code = 0;
  std::string out;
  std::string err;
  int n_calls = 0;
  std::map<int, std::vector<std::uint8_t>> snapshots;
};

/// One guest, installed once under test_key(). The key-independent
/// SignManifest kept with each image lets rotation churn and RekeyToctou
/// payloads rekey the ONE template (installer::Rekeyer, O(MAC surface))
/// instead of re-installing.
struct InstalledHelper {
  std::string path;
  binary::Image image;
  installer::SignManifest manifest;
};
struct GuestArtifacts {
  const GuestProgram* prog = nullptr;
  binary::Image installed;
  installer::SignManifest manifest;
  std::vector<InstalledHelper> helpers;
  CleanRef clean;
};

/// Tight getpid loop: the only default guest whose sites actually promote to
/// the Inline tier, so promo-toctou tampers land inside the trap-less
/// window. Joined to the pool only when ChaosConfig::inline_tier is set.
GuestProgram inline_loop_guest(os::Personality p) {
  using namespace asc::apps;
  tasm::Assembler a("pidloop");
  a.func("main");
  a.subi(SP, 4);
  a.movi(R11, 48);
  a.store(SP, 0, R11);
  a.label(".loop");
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".done");
  a.call("sys_getpid");
  a.load(R11, SP, 0);
  a.subi(R11, 1);
  a.store(SP, 0, R11);
  a.jmp(".loop");
  a.label(".done");
  a.addi(SP, 4);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, p);
  GuestProgram g;
  g.name = "pidloop";
  g.image = a.link();
  g.prepare_fs = chaos_fs;
  return g;
}

}  // namespace

std::vector<GuestProgram> default_chaos_guests(os::Personality p) {
  // Rerun-idempotent guests only: every run starts from a re-prepared
  // filesystem, so a lifecycle's recovery run must reproduce the clean
  // reference byte-for-byte (rm/mv-style destructive tools would diverge on
  // their own leftovers). vuln_echo spawns a child, so teardown storms
  // include nested processes.
  std::vector<GuestProgram> out;
  {
    GuestProgram g;
    g.name = "cat";
    g.image = apps::build_tool_cat(p);
    g.argv = {"/lines.txt", "/in.c"};
    g.prepare_fs = chaos_fs;
    out.push_back(std::move(g));
  }
  {
    GuestProgram g;
    g.name = "sort";
    g.image = apps::build_tool_sort(p);
    g.argv = {"/lines.txt"};
    g.prepare_fs = chaos_fs;
    out.push_back(std::move(g));
  }
  {
    GuestProgram g;
    g.name = "cp";
    g.image = apps::build_tool_cp(p);
    g.argv = {"/lines.txt", "/chaos-copy.txt"};
    g.prepare_fs = chaos_fs;
    out.push_back(std::move(g));
  }
  {
    GuestProgram g;
    g.name = "gzip";
    g.image = apps::build_gzip(p);
    g.argv = {"/f.txt"};
    g.prepare_fs = chaos_fs;
    out.push_back(std::move(g));
  }
  {
    GuestProgram g;
    g.name = "vuln_echo";
    g.image = apps::build_vuln_echo(p);
    g.stdin_data = "/lines.txt\n";
    g.helpers.emplace_back("/bin/ls", apps::build_tool_cat(p));
    g.prepare_fs = chaos_fs;
    out.push_back(std::move(g));
  }
  return out;
}

std::string ChaosResult::summary() const {
  char buf[240];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "chaos: %zu lifecycles (clean=%d tamper=%d internal=%d) "
                "detected=%d benign=%d not-applied=%d\n",
                lifecycles.size(), clean_plans, tamper_plans, internal_plans, detected,
                benign, not_applied);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "health: internal-faults=%llu degradations=%llu quarantines=%llu "
                "repromotions=%llu recoveries=%llu\n",
                static_cast<unsigned long long>(health.internal_faults),
                static_cast<unsigned long long>(health.degradations),
                static_cast<unsigned long long>(health.quarantines),
                static_cast<unsigned long long>(health.repromotions),
                static_cast<unsigned long long>(health.recoveries));
  out += buf;
  std::snprintf(buf, sizeof buf, "oracle trips: %zu\n", trips.size());
  out += buf;
  for (const auto& t : trips) out += "  " + t + "\n";
  return out;
}

ChaosResult ChaosEngine::run() {
  std::vector<GuestProgram> pool =
      cfg_.guests.empty() ? default_chaos_guests(cfg_.personality) : cfg_.guests;
  if (cfg_.inline_tier && cfg_.guests.empty()) {
    pool.push_back(inline_loop_guest(cfg_.personality));
  }
  if (pool.empty()) throw Error("chaos: empty guest pool");

  // ---- install every guest once, harvest clean references serially ----
  std::vector<GuestArtifacts> arts(pool.size());
  for (std::size_t g = 0; g < pool.size(); ++g) {
    GuestArtifacts& art = arts[g];
    art.prog = &pool[g];
    System inst_sys(cfg_.personality);
    installer::InstallResult gi = inst_sys.install(pool[g].image);
    art.installed = std::move(gi.image);
    art.manifest = std::move(gi.manifest);
    for (const auto& [path, img] : pool[g].helpers) {
      installer::InstallResult hi = inst_sys.install(img);
      art.helpers.push_back(
          InstalledHelper{path, std::move(hi.image), std::move(hi.manifest)});
    }
    // Reference run with the shadow off: the eager protocol materializes a
    // distinct {lastBlock, MAC} record at every call, which is what the
    // CrossReplay donor snapshots need (under lazy write-back every snapshot
    // would hold the same stale bytes).
    System sys(cfg_.personality);
    sys.kernel().set_policy_shadow(false);
    if (pool[g].prepare_fs) pool[g].prepare_fs(sys.kernel().fs());
    for (const auto& h : art.helpers) sys.machine().register_program(h.path, h.image);
    sys.machine().set_cycle_limit(cfg_.cycle_limit);
    int calls = 0;
    sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
      ++calls;
      const auto& regs = p.cpu.regs;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (policy::Descriptor(regs[isa::kRegPolicyDescriptor]).control_flow_constrained() &&
          p.mem.in_range(lb, policy::kPolicyStateSize)) {
        art.clean.snapshots[calls] = p.mem.read_bytes(lb, policy::kPolicyStateSize);
      }
    };
    const vm::RunResult r =
        sys.machine().run(art.installed, pool[g].argv, pool[g].stdin_data);
    if (!r.completed || r.violation != os::Violation::None) {
      throw Error("chaos: clean reference run of " + pool[g].name +
                  " failed: " + r.violation_detail);
    }
    art.clean.completed = r.completed;
    art.clean.exit_code = r.exit_code;
    art.clean.out = r.stdout_data;
    art.clean.err = r.stderr_data;
    art.clean.n_calls = calls;
    if (calls == 0) throw Error("chaos: " + pool[g].name + " makes no system calls");
  }

  // With the inline tier on, the default Tamper pool widens to the extended
  // class list (promo-toctou included); the legacy default stays byte-stable.
  const auto classes = !cfg_.classes.empty()
                           ? cfg_.classes
                           : (cfg_.inline_tier ? extended_mutation_classes()
                                               : all_mutation_classes());
  const auto stage_pool = cfg_.stages.empty() ? all_trap_stages() : cfg_.stages;
  const util::Rng root(cfg_.seed);

  // ---- one tenant lifecycle ----
  auto lifecycle = [&](int tenant) -> LifecycleVerdict {
    LifecycleVerdict lc;
    lc.tenant = tenant;
    util::Rng rng = root.derive(0xC4A05EEDULL ^ static_cast<std::uint64_t>(tenant));
    const GuestArtifacts& art = arts[rng.next_below(arts.size())];
    lc.guest = art.prog->name;

    const std::uint64_t roll = rng.next_below(100);
    lc.plan = roll < 30 ? ChaosPlan::Clean : roll < 70 ? ChaosPlan::Tamper
                                                       : ChaosPlan::Internal;
    // Churn decisions (drawn unconditionally so plan choice never shifts
    // the stream consumed by later draws).
    const bool rotate_churn = rng.chance(2, 5);
    const bool monitor_swap = rng.chance(3, 10);
    const bool shadow_toggle = rng.chance(3, 10);
    const std::uint64_t mode_roll = rng.next_below(3);
    // Guest tamper must fail-stop (the acceptance criterion), so Tamper
    // plans pin FailStop; the permissive modes exercise the health machine
    // and churn paths instead.
    const os::FailureMode mode =
        lc.plan == ChaosPlan::Tamper
            ? os::FailureMode::FailStop
            : (mode_roll == 0 ? os::FailureMode::FailStop
                              : mode_roll == 1 ? os::FailureMode::Budgeted
                                               : os::FailureMode::AuditOnly);

    System sys(cfg_.personality);
    sys.kernel().set_failure_mode(mode);
    if (mode == os::FailureMode::Budgeted) sys.kernel().set_violation_budget(2);
    sys.kernel().set_health_promote_threshold(cfg_.promote_threshold);
    sys.kernel().set_health_backoff_cap(cfg_.backoff_cap);
    if (cfg_.inline_tier) {
      sys.kernel().set_inline_tier(true);
      sys.kernel().set_inline_promote_threshold(2);
    }
    for (const auto& h : art.helpers) sys.machine().register_program(h.path, h.image);
    sys.machine().set_cycle_limit(cfg_.cycle_limit);

    // The CURRENT template: rotation churn swaps in a rekeyed image, and
    // the recovery run resets back to the test_key() original.
    const binary::Image* run_image = &art.installed;
    crypto::Key128 cur_key = test_key();
    std::optional<installer::RekeyResult> rotated;
    std::vector<std::pair<std::string, binary::Image>> rotated_helpers;

    auto trip = [&](const std::string& what) {
      lc.trips.push_back("tenant " + std::to_string(tenant) + " (" + lc.guest + ", " +
                         chaos_plan_name(lc.plan) + " " + lc.plan_repr +
                         ", seed=" + std::to_string(cfg_.seed) + "): " + what);
    };

    // Every run starts from a re-prepared filesystem so reruns are
    // comparable against the clean reference.
    auto run_once = [&](vm::RunResult& r) -> bool {
      if (art.prog->prepare_fs) art.prog->prepare_fs(sys.kernel().fs());
      try {
        r = sys.machine().run(*run_image, art.prog->argv, art.prog->stdin_data);
      } catch (const std::exception& e) {
        trip(std::string("host crash: ") + e.what());
        return false;
      } catch (...) {
        trip("host crash: non-standard exception");
        return false;
      }
      return true;
    };

    // The invariant oracles, audited after EVERY run: between runs no
    // process is alive, so every pid-keyed structure must be empty and the
    // main process's watch accounting must balance.
    auto audit_bookkeeping = [&](const vm::RunResult& r, const char* where) {
      const auto& w = r.final_watch;
      if (w.live_ranges != 0 || w.live_refs != 0) {
        trip(std::string(where) + ": teardown leaked " + std::to_string(w.live_ranges) +
             " watch ranges / " + std::to_string(w.live_refs) + " refs");
      }
      if (w.registered != w.released) {
        trip(std::string(where) + ": watch accounting unbalanced (registered=" +
             std::to_string(w.registered) + " released=" + std::to_string(w.released) + ")");
      }
      if (sys.kernel().shadow().size() != 0) {
        trip(std::string(where) + ": shadow entries for dead pids");
      }
      if (sys.kernel().call_cache().size() != 0) {
        trip(std::string(where) + ": cache entries for dead pids");
      }
      if (sys.kernel().tracked_health() != 0) {
        trip(std::string(where) + ": health records for dead pids");
      }
      if (sys.kernel().inline_sites() != 0) {
        trip(std::string(where) + ": inline sites for dead pids");
      }
    };

    auto behaves_like_clean = [&](const vm::RunResult& r) {
      return r.completed == art.clean.completed && r.exit_code == art.clean.exit_code &&
             r.stdout_data == art.clean.out && r.stderr_data == art.clean.err;
    };

    auto violations_since = [&](std::size_t mark) {
      std::vector<const os::VerdictRecord*> out;
      const auto& recs = sys.kernel().audit_log();
      for (std::size_t i = mark; i < recs.size(); ++i) {
        if (recs[i].kind == os::AuditKind::Violation) out.push_back(&recs[i]);
      }
      return out;
    };

    // ---- churn before the fault run ----
    // Rotation churn is a GENUINE rotation: the tenant rekeys its template
    // to a fresh key (O(MAC surface) via the Rekeyer) and the kernel moves
    // to that key -- flushing the shard's fast paths exactly as set_key
    // always did, but every subsequent trap now verifies new material.
    if (rotate_churn) {
      rotated = installer::Rekeyer::rekey(art.installed, art.manifest, test_key(),
                                          chaos_rotation_key());
      for (const auto& h : art.helpers) {
        rotated_helpers.emplace_back(
            h.path,
            installer::Rekeyer::rekey(h.image, h.manifest, test_key(), chaos_rotation_key())
                .image);
      }
      for (const auto& [path, img] : rotated_helpers) {
        sys.machine().register_program(path, img);
      }
      sys.kernel().set_key(chaos_rotation_key());
      run_image = &rotated->image;
      cur_key = chaos_rotation_key();
    }
    if (monitor_swap) sys.kernel().set_enforcement(os::Enforcement::Asc);  // fresh monitor
    if (shadow_toggle) {
      sys.kernel().set_policy_shadow(false);  // flushes every live record
      sys.kernel().set_policy_shadow(true);
    }

    // ---- the fault run ----
    std::size_t audit_mark = sys.kernel().audit_log().size();
    vm::RunResult fr;

    if (lc.plan == ChaosPlan::Tamper) {
      FaultSpec spec;
      spec.cls = classes[rng.next_below(classes.size())];
      spec.trigger_call =
          1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(art.clean.n_calls)));
      spec.seed = rng.next_u64();
      std::vector<os::TrapStage> allowed;
      for (const auto s : stage_pool) {
        if (stage_allowed(spec.cls, s)) allowed.push_back(s);
      }
      if (allowed.empty()) allowed.push_back(os::TrapStage::Trap);
      if (stage_targetable(spec.cls)) {
        spec.stage = allowed[rng.next_below(allowed.size())];
      }
      const std::uint64_t donor_pick = rng.next_u64();  // drawn unconditionally

      auto attempt = [&](const FaultSpec& s) -> Outcome {
        FaultInjector inj(s);
        if (s.cls == MutationClass::RotationDuringTrap) {
          inj.set_rotation_key(chaos_mismatched_key());
        }
        std::optional<installer::RekeyResult> rekey_rk;
        if (s.cls == MutationClass::RekeyToctou) {
          // Coherent payload for the CURRENT template/key: the strike must
          // be benign, so the view (and any spawn helpers) have to match
          // what actually runs under the new key.
          rekey_rk = installer::Rekeyer::rekey(*run_image, art.manifest, cur_key,
                                               chaos_rekey_key());
          std::vector<std::pair<std::string, binary::Image>> rekeyed_helpers;
          for (std::size_t h = 0; h < art.helpers.size(); ++h) {
            const binary::Image& base =
                rotated_helpers.empty() ? art.helpers[h].image : rotated_helpers[h].second;
            rekeyed_helpers.emplace_back(
                art.helpers[h].path,
                installer::Rekeyer::rekey(base, art.helpers[h].manifest, cur_key,
                                          chaos_rekey_key())
                    .image);
          }
          inj.set_rekey(chaos_rekey_key(), rekey_rk->view, std::move(rekeyed_helpers));
        }
        if (s.cls == MutationClass::KeyMismatch) {
          sys.kernel().set_key(chaos_mismatched_key());
        }
        if (s.cls == MutationClass::CrossReplay) {
          std::vector<int> donors;
          for (const auto& [call, bytes] : art.clean.snapshots) {
            if (call != s.trigger_call) donors.push_back(call);
          }
          if (!donors.empty()) {
            inj.set_replay_state(art.clean.snapshots.at(donors[donor_pick % donors.size()]));
          }
        }
        inj.arm(sys.machine());
        audit_mark = sys.kernel().audit_log().size();
        if (!run_once(fr)) return Outcome::HostCrash;
        audit_bookkeeping(fr, "fault run");
        const auto viols = violations_since(audit_mark);
        if (!viols.empty()) {
          const os::VerdictRecord* first = viols.front();
          lc.violation = first->violation;
          const auto& exp = expected_violations(s.cls);
          if (std::find(exp.begin(), exp.end(), first->violation) == exp.end()) {
            trip("wrong verdict " + os::violation_name(first->violation) + " [repro " +
                 lc.guest + " " + spec_repr(s) + "]");
            return Outcome::WrongVerdict;
          }
          if (!first->killed) {
            trip("tamper detected but did not fail-stop [repro " + lc.guest + " " +
                 spec_repr(s) + "]");
          }
          return Outcome::Detected;
        }
        if (!inj.applied()) return Outcome::NotApplied;
        if (!behaves_like_clean(fr)) {
          trip("silent bypass: behavior diverged without a verdict [repro " + lc.guest +
               " " + spec_repr(s) + "]");
          return Outcome::SilentBypass;
        }
        return Outcome::Benign;
      };

      lc.plan_repr = spec_repr(spec);
      lc.fault_outcome = attempt(spec);
      ++lc.runs;
      if (lc.fault_outcome == Outcome::NotApplied && spec.trigger_call > 1) {
        FaultSpec retry = spec;
        retry.trigger_call = 1;
        lc.plan_repr = spec_repr(retry);
        lc.fault_outcome = attempt(retry);
        ++lc.runs;
      }
    } else if (lc.plan == ChaosPlan::Internal) {
      // Injected internal inconsistencies: a shadow-nonce desync the kernel's
      // per-trap self-check must catch, plus two oracle-style reports that
      // push the pid through Degraded into Quarantined (and deepen once).
      const int bump_at = 2 + static_cast<int>(rng.next_below(3));
      const int report_at = bump_at + 2 + static_cast<int>(rng.next_below(3));
      int injected = 0;
      int calls = 0;
      lc.plan_repr = "bump@" + std::to_string(bump_at) + "+report@" +
                     std::to_string(report_at) + ",@" + std::to_string(report_at + 1);
      sys.machine().pre_syscall_hook = [&](os::Process& p, std::uint32_t) {
        ++calls;
        if (calls == bump_at && sys.kernel().shadow().has(p.pid)) {
          // Desynchronize the kernel's own nonce copy; the next trap's
          // self-check must flag it and resync under the bumped counter.
          ++p.asc_counter;
          ++injected;
        }
        if (calls == report_at || calls == report_at + 1) {
          sys.kernel().report_internal_fault(p, "chaos: oracle-reported inconsistency");
          ++injected;
        }
      };
      if (!run_once(fr)) return lc;
      ++lc.runs;
      audit_bookkeeping(fr, "internal run");
      if (!violations_since(audit_mark).empty()) {
        trip("internal fault escalated to a Violation verdict (must never touch the "
             "violation budget)");
      }
      if (!behaves_like_clean(fr)) {
        trip("internal fault changed guest behavior (quarantine must be transparent)");
      }
      const auto& hs = sys.kernel().health_stats();
      if (hs.internal_faults != static_cast<std::uint64_t>(injected)) {
        trip("health machine counted " + std::to_string(hs.internal_faults) +
             " internal faults, injected " + std::to_string(injected));
      }
      if (injected >= 2 && hs.quarantines == 0 && hs.degradations != 0) {
        // Two faults on one pid must reach Quarantined (unless the second
        // landed on a different process of a spawning guest).
        const bool spawning = !art.helpers.empty();
        if (!spawning) trip("repeated internal faults never quarantined the pid");
      }
      sys.machine().pre_syscall_hook = nullptr;
    } else {
      if (!run_once(fr)) return lc;
      ++lc.runs;
      audit_bookkeeping(fr, "clean run");
      if (!violations_since(audit_mark).empty()) {
        trip("clean churn run yielded a Violation verdict");
      }
      if (!behaves_like_clean(fr)) trip("clean churn run diverged from the reference");
    }

    // ---- the recovery run ----
    // Whatever the fault did -- kill, rotation, rekey, teardown, quarantine
    // -- the SAME kernel must run the guest again, byte-identically to the
    // clean reference. Hooks are cleared, the key restored, and the run
    // template reset to the test_key() original first (KeyMismatch /
    // RotationDuringTrap / RekeyToctou / rotation churn leave a foreign key
    // or a rekeyed template installed; set_key is the documented rotation
    // path and flushes coherently). A still-pending Kernel::rekey request
    // is fine: it lands at the recovery run's first trap boundary, verifies
    // the fresh guest under the restored key, and moves it coherently.
    sys.machine().pre_syscall_hook = nullptr;
    sys.kernel().set_stage_hook({});
    sys.kernel().set_key(test_key());
    run_image = &art.installed;
    for (const auto& h : art.helpers) sys.machine().register_program(h.path, h.image);
    audit_mark = sys.kernel().audit_log().size();
    vm::RunResult rr;
    if (run_once(rr)) {
      ++lc.runs;
      audit_bookkeeping(rr, "recovery run");
      if (!violations_since(audit_mark).empty()) {
        trip("recovery run yielded a Violation verdict");
      }
      if (!behaves_like_clean(rr)) trip("recovery run diverged from the clean reference");
    }

    // ---- audit-log coherence oracle ----
    {
      const auto& recs = sys.kernel().audit_log();
      for (std::size_t i = 0; i < recs.size(); ++i) {
        if (recs[i].kind == os::AuditKind::InternalFault) {
          bool followed = false;
          for (std::size_t j = i + 1; j < recs.size() && !followed; ++j) {
            followed = recs[j].kind == os::AuditKind::Health && recs[j].pid == recs[i].pid;
          }
          if (!followed) {
            trip("InternalFault record without a matching Health transition (pid " +
                 std::to_string(recs[i].pid) + ")");
          }
        }
        if (recs[i].kind == os::AuditKind::Violation && recs[i].prog.empty()) {
          trip("Violation record missing its program name");
        }
      }
    }

    lc.health = sys.kernel().health_stats();
    char line[240];
    std::snprintf(line, sizeof line,
                  "#%03d %-9s plan=%-8s mode=%s repr=%s outcome=%s v=%s "
                  "hf=%llu d/q=%llu/%llu rp/rc=%llu/%llu runs=%d trips=%zu",
                  tenant, lc.guest.c_str(), chaos_plan_name(lc.plan).c_str(),
                  os::failure_mode_name(mode).c_str(), lc.plan_repr.c_str(),
                  outcome_name(lc.fault_outcome).c_str(),
                  os::violation_name(lc.violation).c_str(),
                  static_cast<unsigned long long>(lc.health.internal_faults),
                  static_cast<unsigned long long>(lc.health.degradations),
                  static_cast<unsigned long long>(lc.health.quarantines),
                  static_cast<unsigned long long>(lc.health.repromotions),
                  static_cast<unsigned long long>(lc.health.recoveries), lc.runs,
                  lc.trips.size());
    lc.trace_line = line;
    return lc;
  };

  // ---- fan the lifecycles out; aggregate in tenant order ----
  std::vector<LifecycleVerdict> lcs =
      util::resolve_executor(cfg_.executor)
          .parallel_map<LifecycleVerdict>(static_cast<std::size_t>(cfg_.tenants),
                                          [&](std::size_t t) {
                                            return lifecycle(static_cast<int>(t));
                                          });

  ChaosResult result;
  for (LifecycleVerdict& lc : lcs) {
    switch (lc.plan) {
      case ChaosPlan::Clean: ++result.clean_plans; break;
      case ChaosPlan::Tamper: ++result.tamper_plans; break;
      case ChaosPlan::Internal: ++result.internal_plans; break;
    }
    if (lc.plan == ChaosPlan::Tamper) {
      if (lc.fault_outcome == Outcome::Detected) ++result.detected;
      if (lc.fault_outcome == Outcome::Benign) ++result.benign;
      if (lc.fault_outcome == Outcome::NotApplied) ++result.not_applied;
    }
    result.health.internal_faults += lc.health.internal_faults;
    result.health.degradations += lc.health.degradations;
    result.health.quarantines += lc.health.quarantines;
    result.health.repromotions += lc.health.repromotions;
    result.health.recoveries += lc.health.recoveries;
    result.trips.insert(result.trips.end(), lc.trips.begin(), lc.trips.end());
    result.verdict_trace.push_back(lc.trace_line);
    result.lifecycles.push_back(std::move(lc));
  }
  return result;
}

}  // namespace asc::fault
