#include "fault/fault.h"

#include <cstdio>

#include "isa/isa.h"
#include "policy/authstring.h"
#include "policy/descriptor.h"
#include "policy/policy.h"

namespace asc::fault {

std::string mutation_class_name(MutationClass c) {
  switch (c) {
    case MutationClass::CallMacFlip: return "call-mac-flip";
    case MutationClass::DescriptorFlip: return "descriptor-flip";
    case MutationClass::AsHeaderCorrupt: return "as-header-corrupt";
    case MutationClass::AsBodyCorrupt: return "as-body-corrupt";
    case MutationClass::PredSetCorrupt: return "pred-set-corrupt";
    case MutationClass::PolicyStateCorrupt: return "policy-state-corrupt";
    case MutationClass::CrossReplay: return "cross-replay";
    case MutationClass::RegisterSwap: return "register-swap";
    case MutationClass::KeyMismatch: return "key-mismatch";
    case MutationClass::CacheToctou: return "cache-toctou";
    case MutationClass::ShadowToctou: return "shadow-toctou";
    case MutationClass::kCount: break;
  }
  return "?";
}

std::vector<MutationClass> all_mutation_classes() {
  std::vector<MutationClass> out;
  for (std::size_t i = 0; i < kNumMutationClasses; ++i) {
    out.push_back(static_cast<MutationClass>(i));
  }
  return out;
}

const std::vector<os::Violation>& expected_violations(MutationClass c) {
  // Every entry below is derived from the §3.4 checking order: the call MAC
  // binds sysno, descriptor, site, block id, AS {addr, len, MAC} headers,
  // constant argument values, and the policy-state pointer -- so mutating
  // any of those must surface as BadCallMac before later steps run. Content
  // bytes behind an intact header fail the step-2/step-3 content MACs; the
  // policy-state record fails the step-3.1 memory checker.
  static const std::vector<os::Violation> call_mac{os::Violation::BadCallMac};
  static const std::vector<os::Violation> string_arg{os::Violation::BadStringArg};
  static const std::vector<os::Violation> policy_state{os::Violation::BadPolicyState};
  // A replayed state whose counter mismatches fails the memory checker; one
  // captured at the same nonce but a different program/site carries a
  // lastBlock outside the predecessor set.
  static const std::vector<os::Violation> replay{os::Violation::BadPolicyState,
                                                 os::Violation::BadPredecessor};
  // CacheToctou corrupts either the call MAC or the pred-set body at a site
  // already verified once; the verified-call cache must miss (byte-compare
  // mismatch and/or write-watch eviction) and the full re-verification then
  // fails at the corresponding step.
  static const std::vector<os::Violation> toctou{os::Violation::BadCallMac,
                                                 os::Violation::BadStringArg};
  switch (c) {
    case MutationClass::AsBodyCorrupt:
    case MutationClass::PredSetCorrupt:
      return string_arg;
    case MutationClass::CacheToctou:
      return toctou;
    case MutationClass::PolicyStateCorrupt:
    // ShadowToctou tampers with the policy-state record around the shadow's
    // write-back window; both the bit-flip and the stale-record replay fail
    // the step-3.1 memory checker (MAC/counter mismatch).
    case MutationClass::ShadowToctou:
      return policy_state;
    case MutationClass::CrossReplay:
      return replay;
    default:
      return call_mac;
  }
}

namespace {

std::uint32_t nonzero32(std::uint64_t seed) {
  const auto v = static_cast<std::uint32_t>(seed >> 7);
  return v == 0 ? 0xdeadbeefu : v;
}

}  // namespace

void FaultInjector::arm(vm::Machine& machine) {
  personality_ = machine.kernel().personality();
  machine.pre_syscall_hook = [this](os::Process& p, std::uint32_t call_site) {
    ++calls_seen_;
    if (!applied_ && calls_seen_ >= spec_.trigger_call && try_apply(p, call_site)) {
      applied_ = true;
      applied_at_ = calls_seen_;
    }
    // Count after try_apply so "visited" means a strictly earlier trap.
    ++site_visits_[call_site];
  };
}

bool FaultInjector::try_apply(os::Process& p, std::uint32_t call_site) {
  auto& regs = p.cpu.regs;
  const policy::Descriptor des(regs[isa::kRegPolicyDescriptor]);
  const auto maybe_id =
      os::syscall_from_number(personality_, static_cast<std::uint16_t>(regs[0]));
  const int arity = maybe_id.has_value() ? os::signature(*maybe_id).arity : 0;
  const std::uint64_t seed = spec_.seed;
  char buf[160];

  auto flip_bit = [&](std::uint32_t base, std::uint32_t nbytes, const char* what,
                      std::uint32_t first = 0) {
    const auto byte = first + static_cast<std::uint32_t>(seed % (nbytes - first));
    const int bit = static_cast<int>((seed / nbytes) % 8);
    p.mem.w8(base + byte,
             static_cast<std::uint8_t>(p.mem.r8(base + byte) ^ (1u << bit)));
    std::snprintf(buf, sizeof buf, "%s: flip bit %d of byte %u at call %d (site 0x%x)", what,
                  bit, byte, calls_seen_, call_site);
    description_ = buf;
  };

  /// Validated AS body length behind `body`, or 0 when the header is not
  /// plausible (the injector only corrupts genuinely live structures).
  auto as_len = [&](std::uint32_t body) -> std::uint32_t {
    if (body < policy::kAsHeaderSize ||
        !p.mem.in_range(body - policy::kAsHeaderSize, policy::kAsHeaderSize)) {
      return 0;
    }
    const std::uint32_t len = p.mem.r32(body - policy::kAsHeaderSize);
    if (len == 0 || len > policy::kAsMaxLength || !p.mem.in_range(body, len)) return 0;
    return len;
  };

  std::vector<int> as_args;
  for (int i = 0; i < arity; ++i) {
    if (des.arg_is_authenticated_string(i)) as_args.push_back(i);
  }

  switch (spec_.cls) {
    case MutationClass::CallMacFlip: {
      const std::uint32_t mac_ptr = regs[isa::kRegCallMac];
      if (!p.mem.in_range(mac_ptr, 16)) return false;
      flip_bit(mac_ptr, 16, "call-mac");
      return true;
    }

    case MutationClass::DescriptorFlip: {
      const int bit = static_cast<int>(seed % 32);
      regs[isa::kRegPolicyDescriptor] ^= 1u << bit;
      std::snprintf(buf, sizeof buf, "descriptor: flip bit %d at call %d (site 0x%x)", bit,
                    calls_seen_, call_site);
      description_ = buf;
      return true;
    }

    case MutationClass::AsHeaderCorrupt: {
      std::vector<std::uint32_t> headers;
      for (int i : as_args) {
        const std::uint32_t body = regs[1 + static_cast<std::size_t>(i)];
        if (body >= policy::kAsHeaderSize &&
            p.mem.in_range(body - policy::kAsHeaderSize, policy::kAsHeaderSize)) {
          headers.push_back(body - policy::kAsHeaderSize);
        }
      }
      if (des.control_flow_constrained()) {
        const std::uint32_t body = regs[isa::kRegPredSet];
        if (body >= policy::kAsHeaderSize &&
            p.mem.in_range(body - policy::kAsHeaderSize, policy::kAsHeaderSize)) {
          headers.push_back(body - policy::kAsHeaderSize);
        }
      }
      if (headers.empty()) return false;
      flip_bit(headers[(seed >> 32) % headers.size()], policy::kAsHeaderSize, "as-header");
      return true;
    }

    case MutationClass::AsBodyCorrupt: {
      std::vector<std::pair<std::uint32_t, std::uint32_t>> bodies;  // {addr, len}
      for (int i : as_args) {
        const std::uint32_t body = regs[1 + static_cast<std::size_t>(i)];
        if (const std::uint32_t len = as_len(body); len > 0) bodies.emplace_back(body, len);
      }
      if (bodies.empty()) return false;
      const auto& [addr, len] = bodies[(seed >> 32) % bodies.size()];
      flip_bit(addr, len, "as-body");
      return true;
    }

    case MutationClass::PredSetCorrupt: {
      if (!des.control_flow_constrained()) return false;
      const std::uint32_t body = regs[isa::kRegPredSet];
      const std::uint32_t len = as_len(body);
      if (len == 0) return false;
      flip_bit(body, len, "pred-set");
      return true;
    }

    case MutationClass::PolicyStateCorrupt: {
      if (!des.control_flow_constrained()) return false;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (!p.mem.in_range(lb, policy::kPolicyStateSize)) return false;
      // Materialize any lazily shadowed record first: the same-value touch
      // write fires the write watch, so a live shadow entry writes back its
      // trusted bytes before the flip lands. Then flip past byte 0 -- a flip
      // computed from the stale pre-write-back bytes could otherwise land
      // exactly on the trusted value and turn the fault into a no-op (and
      // byte 0 itself keeps the stale value the touch rewrote).
      p.mem.w8(lb, p.mem.r8(lb));
      flip_bit(lb, policy::kPolicyStateSize, "policy-state", 1);
      return true;
    }

    case MutationClass::CrossReplay: {
      if (!des.control_flow_constrained()) return false;
      if (replay_state_.size() != policy::kPolicyStateSize) return false;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (!p.mem.in_range(lb, policy::kPolicyStateSize)) return false;
      p.mem.write_bytes(lb, replay_state_);
      std::snprintf(buf, sizeof buf,
                    "cross-replay: foreign policy state at call %d (site 0x%x)", calls_seen_,
                    call_site);
      description_ = buf;
      return true;
    }

    case MutationClass::RegisterSwap: {
      // Only registers the checker actually consumes: mutating a register
      // the policy leaves unconstrained is permitted by construction and
      // would not be a verification-surface fault.
      std::vector<isa::Reg> targets{isa::kRegBlockId, isa::kRegCallMac};
      if (des.control_flow_constrained()) {
        targets.push_back(isa::kRegPredSet);
        targets.push_back(isa::kRegStatePtr);
      }
      for (int i = 0; i < arity; ++i) {
        if (des.arg_constrained(i)) targets.push_back(static_cast<isa::Reg>(1 + i));
      }
      const isa::Reg r = targets[(seed >> 32) % targets.size()];
      regs[r] ^= nonzero32(seed);
      std::snprintf(buf, sizeof buf, "register-swap: r%d ^= 0x%x at call %d (site 0x%x)", r,
                    nonzero32(seed), calls_seen_, call_site);
      description_ = buf;
      return true;
    }

    case MutationClass::KeyMismatch: {
      // Environmental fault: the campaign boots the kernel with a key that
      // differs from the installer's. Nothing to mutate at trap time.
      description_ = "kernel/installer key mismatch";
      return true;
    }

    case MutationClass::CacheToctou: {
      // Time-of-check-to-time-of-use against the verified-call cache: wait
      // for a trap at a site the checker has already verified (so a cache
      // entry exists), then corrupt the bytes the fast path would be tempted
      // to trust without re-MACing. Detection requires the cache to compare
      // the trap's actual bytes against the verified material (or be evicted
      // by the write watch) and fall back to full verification.
      if (site_visits_[call_site] < 1) return false;
      std::vector<std::pair<std::uint32_t, std::uint32_t>> targets;  // {addr, len}
      const std::uint32_t mac_ptr = regs[isa::kRegCallMac];
      if (p.mem.in_range(mac_ptr, 16)) targets.emplace_back(mac_ptr, 16);
      if (des.control_flow_constrained()) {
        const std::uint32_t body = regs[isa::kRegPredSet];
        if (const std::uint32_t len = as_len(body); len > 0) targets.emplace_back(body, len);
      }
      if (targets.empty()) return false;
      const auto& [addr, len] = targets[(seed >> 32) % targets.size()];
      flip_bit(addr, len, "cache-toctou");
      return true;
    }

    case MutationClass::ShadowToctou: {
      // Time-of-check-to-time-of-use against the policy-state shadow: wait
      // until the pid's state has been verified at least once (so a shadow
      // entry exists and the guest record may lag behind it), then strike
      // inside the invalidation window. The touch write below fires the
      // write watch, which must write back the trusted record BEFORE the
      // tampering lands -- any ordering bug here silently accepts the fault.
      if (site_visits_[call_site] < 1) return false;
      if (!des.control_flow_constrained()) return false;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (!p.mem.in_range(lb, policy::kPolicyStateSize)) return false;
      const auto stale = p.mem.read_bytes(lb, policy::kPolicyStateSize);
      // Same-value touch: forces write-back of a live (dirty) shadow entry
      // and drops it, exactly as any guest write into the watched range.
      p.mem.w8(lb, p.mem.r8(lb));
      const auto trusted = p.mem.read_bytes(lb, policy::kPolicyStateSize);
      if (seed % 2 == 0 && stale != trusted) {
        // Replay the stale pre-write-back record: authentic bytes carrying
        // an earlier nonce. The slow path must refuse it (counter replay).
        p.mem.write_bytes(lb, stale);
        std::snprintf(buf, sizeof buf,
                      "shadow-toctou: stale-record replay at call %d (site 0x%x)",
                      calls_seen_, call_site);
        description_ = buf;
        return true;
      }
      // Flip past byte 0: the touch rewrote byte 0 with its stale value, so
      // only bytes 1.. are guaranteed to hold the materialized trusted
      // record a flip is guaranteed to diverge from.
      flip_bit(lb, policy::kPolicyStateSize, "shadow-toctou", 1);
      return true;
    }

    case MutationClass::kCount:
      break;
  }
  return false;
}

}  // namespace asc::fault
