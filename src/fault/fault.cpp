#include "fault/fault.h"

#include <cstdio>

#include "isa/isa.h"
#include "policy/authstring.h"
#include "policy/descriptor.h"
#include "policy/policy.h"

namespace asc::fault {

std::string mutation_class_name(MutationClass c) {
  switch (c) {
    case MutationClass::CallMacFlip: return "call-mac-flip";
    case MutationClass::DescriptorFlip: return "descriptor-flip";
    case MutationClass::AsHeaderCorrupt: return "as-header-corrupt";
    case MutationClass::AsBodyCorrupt: return "as-body-corrupt";
    case MutationClass::PredSetCorrupt: return "pred-set-corrupt";
    case MutationClass::PolicyStateCorrupt: return "policy-state-corrupt";
    case MutationClass::CrossReplay: return "cross-replay";
    case MutationClass::RegisterSwap: return "register-swap";
    case MutationClass::KeyMismatch: return "key-mismatch";
    case MutationClass::CacheToctou: return "cache-toctou";
    case MutationClass::ShadowToctou: return "shadow-toctou";
    case MutationClass::RotationDuringTrap: return "rotation-during-trap";
    case MutationClass::TeardownMidVerify: return "teardown-mid-verify";
    case MutationClass::DoubleInvalidation: return "double-invalidation";
    case MutationClass::PromoToctou: return "promo-toctou";
    case MutationClass::RekeyToctou: return "rekey-toctou";
    case MutationClass::kCount: break;
  }
  return "?";
}

std::vector<MutationClass> all_mutation_classes() {
  std::vector<MutationClass> out;
  for (std::size_t i = 0; i < kNumMutationClasses; ++i) {
    const auto c = static_cast<MutationClass>(i);
    if (c != MutationClass::PromoToctou && c != MutationClass::RekeyToctou) out.push_back(c);
  }
  return out;
}

std::vector<MutationClass> extended_mutation_classes() {
  std::vector<MutationClass> out;
  for (std::size_t i = 0; i < kNumMutationClasses; ++i) {
    out.push_back(static_cast<MutationClass>(i));
  }
  return out;
}

std::optional<MutationClass> mutation_class_from_name(const std::string& name) {
  for (const auto c : extended_mutation_classes()) {
    if (mutation_class_name(c) == name) return c;
  }
  return std::nullopt;
}

bool lifecycle_class(MutationClass c) {
  return c == MutationClass::RotationDuringTrap || c == MutationClass::TeardownMidVerify ||
         c == MutationClass::DoubleInvalidation || c == MutationClass::RekeyToctou;
}

bool stage_targetable(MutationClass c) {
  switch (c) {
    // Memory-resident targets: the corrupted bytes stay addressable for the
    // rest of the trap and beyond, so a strike at any boundary is coherent
    // (at post-Enforce stages it poisons the NEXT verification).
    case MutationClass::CallMacFlip:
    case MutationClass::AsHeaderCorrupt:
    case MutationClass::AsBodyCorrupt:
    case MutationClass::PredSetCorrupt:
    case MutationClass::PolicyStateCorrupt:
    case MutationClass::CrossReplay:
    // Lifecycle strikes act on the kernel and are meaningful at every
    // boundary (rotation-during-dispatch, teardown-mid-verify, ...).
    case MutationClass::RotationDuringTrap:
    case MutationClass::TeardownMidVerify:
    case MutationClass::DoubleInvalidation:
    case MutationClass::RekeyToctou:
      return true;
    default:
      return false;
  }
}

bool stage_allowed(MutationClass c, os::TrapStage s) {
  if (!stage_targetable(c)) return s == os::TrapStage::Trap;
  if (c == MutationClass::AsBodyCorrupt && s == os::TrapStage::Enforce) return false;
  return true;
}

std::vector<os::TrapStage> all_trap_stages() {
  return {os::TrapStage::Trap, os::TrapStage::Enforce, os::TrapStage::Dispatch,
          os::TrapStage::Audit};
}

std::optional<os::TrapStage> trap_stage_from_name(const std::string& name) {
  for (const auto s : all_trap_stages()) {
    if (os::trap_stage_name(s) == name) return s;
  }
  return std::nullopt;
}

std::string spec_repr(const FaultSpec& spec) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s:%d:0x%llx:%s", mutation_class_name(spec.cls).c_str(),
                spec.trigger_call, static_cast<unsigned long long>(spec.seed),
                os::trap_stage_name(spec.stage).c_str());
  return buf;
}

std::optional<FaultSpec> parse_spec(const std::string& repr) {
  // "<class>:<trigger>:0x<seed>[:<stage>]" (stage defaults to trap).
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = repr.find(':', start);
    parts.push_back(repr.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4) return std::nullopt;
  FaultSpec spec;
  const auto cls = mutation_class_from_name(parts[0]);
  if (!cls.has_value()) return std::nullopt;
  spec.cls = *cls;
  try {
    spec.trigger_call = std::stoi(parts[1]);
    spec.seed = std::stoull(parts[2], nullptr, 0);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (spec.trigger_call < 1) return std::nullopt;
  if (parts.size() == 4) {
    const auto stage = trap_stage_from_name(parts[3]);
    if (!stage.has_value()) return std::nullopt;
    spec.stage = *stage;
  }
  return spec;
}

const std::vector<os::Violation>& expected_violations(MutationClass c) {
  // Every entry below is derived from the §3.4 checking order: the call MAC
  // binds sysno, descriptor, site, block id, AS {addr, len, MAC} headers,
  // constant argument values, and the policy-state pointer -- so mutating
  // any of those must surface as BadCallMac before later steps run. Content
  // bytes behind an intact header fail the step-2/step-3 content MACs; the
  // policy-state record fails the step-3.1 memory checker.
  static const std::vector<os::Violation> call_mac{os::Violation::BadCallMac};
  static const std::vector<os::Violation> string_arg{os::Violation::BadStringArg};
  static const std::vector<os::Violation> policy_state{os::Violation::BadPolicyState};
  // A replayed state whose counter mismatches fails the memory checker; one
  // captured at the same nonce but a different program/site carries a
  // lastBlock outside the predecessor set.
  static const std::vector<os::Violation> replay{os::Violation::BadPolicyState,
                                                 os::Violation::BadPredecessor};
  // CacheToctou corrupts either the call MAC or the pred-set body at a site
  // already verified once; the verified-call cache must miss (byte-compare
  // mismatch and/or write-watch eviction) and the full re-verification then
  // fails at the corresponding step.
  static const std::vector<os::Violation> toctou{os::Violation::BadCallMac,
                                                 os::Violation::BadStringArg};
  // A mid-trap key rotation stales every signed byte of the guest at once;
  // the next verified call fails its call MAC first (set_key cleared the
  // cache, so no fast path can mask it). A rotation at the LAST trap of a
  // run is consumed by nobody and stays benign.
  static const std::vector<os::Violation> rotation{os::Violation::BadCallMac};
  // Teardown and double invalidation must be pure lifecycle churn: eager
  // verification resumes over coherently materialized records, so ANY
  // audited violation is a wrong verdict.
  static const std::vector<os::Violation> benign{};
  // PromoToctou strikes only at a site already promoted to the Inline tier;
  // the write watch demotes it, so the flip is detected by the full pipeline
  // at whichever structure it hit (call MAC or policy-state record).
  static const std::vector<os::Violation> promo{os::Violation::BadCallMac,
                                                os::Violation::BadPolicyState};
  switch (c) {
    case MutationClass::AsBodyCorrupt:
    case MutationClass::PredSetCorrupt:
      return string_arg;
    case MutationClass::PromoToctou:
      return promo;
    case MutationClass::CacheToctou:
      return toctou;
    case MutationClass::PolicyStateCorrupt:
    // ShadowToctou tampers with the policy-state record around the shadow's
    // write-back window; both the bit-flip and the stale-record replay fail
    // the step-3.1 memory checker (MAC/counter mismatch).
    case MutationClass::ShadowToctou:
      return policy_state;
    case MutationClass::CrossReplay:
      return replay;
    case MutationClass::RotationDuringTrap:
      return rotation;
    case MutationClass::TeardownMidVerify:
    case MutationClass::DoubleInvalidation:
    // A COHERENT rekey (new key + matching re-signed bytes) at any boundary
    // must also be pure lifecycle churn: a mid-trap request defers to the
    // next trap boundary, so every trap verifies under wholly-old or
    // wholly-new material and no verdict may ever surface.
    case MutationClass::RekeyToctou:
      return benign;
    default:
      return call_mac;
  }
}

namespace {

std::uint32_t nonzero32(std::uint64_t seed) {
  const auto v = static_cast<std::uint32_t>(seed >> 7);
  return v == 0 ? 0xdeadbeefu : v;
}

}  // namespace

bool FaultInjector::needs_stage_hook() const {
  return lifecycle_class(spec_.cls) || spec_.stage != os::TrapStage::Trap;
}

void FaultInjector::arm(vm::Machine& machine) {
  machine_ = &machine;
  personality_ = machine.kernel().personality();
  const bool staged = needs_stage_hook();
  machine.pre_syscall_hook = [this, staged](os::Process& p, std::uint32_t call_site) {
    if (rekey_swap_pending_ && machine_->kernel().trap_depth() == 0) {
      // The deferred rekey lands inside the upcoming trap; swap the helper
      // registrations now so any spawn after the key swap hands the kernel
      // a child signed under the new key.
      for (const auto& [path, img] : rekey_programs_) machine_->register_program(path, img);
      rekey_swap_pending_ = false;
    }
    ++calls_seen_;
    // Trap-stage byte/register mutations keep striking from this hook (the
    // pre-trap strike point every legacy campaign stream was drawn for);
    // staged specs strike from the kernel's stage hook below instead.
    if (!staged && !applied_ && calls_seen_ >= spec_.trigger_call &&
        try_apply(p, call_site, static_cast<std::uint16_t>(p.cpu.regs[0]))) {
      applied_ = true;
      applied_at_ = calls_seen_;
    }
    // Count after try_apply so "visited" means a strictly earlier trap.
    ++site_visits_[call_site];
  };
  if (staged) {
    machine.kernel().set_stage_hook(
        [this](os::Process& p, os::TrapContext& ctx, os::TrapStage stage) {
          if (stage != spec_.stage || applied_ || calls_seen_ < spec_.trigger_call) return;
          // regs[0] holds the syscall's return value from Dispatch on; the
          // trapping identity must come from the captured context.
          const bool ok = lifecycle_class(spec_.cls)
                              ? apply_lifecycle(p, ctx.call_site)
                              : try_apply(p, ctx.call_site, ctx.sysno);
          if (ok) {
            applied_ = true;
            applied_at_ = calls_seen_;
          }
        });
  } else {
    machine.kernel().set_stage_hook({});
  }
}

bool FaultInjector::apply_lifecycle(os::Process& p, std::uint32_t call_site) {
  if (machine_ == nullptr) return false;
  os::Kernel& kernel = machine_->kernel();
  char buf[160];
  const std::string stage = os::trap_stage_name(spec_.stage);
  switch (spec_.cls) {
    case MutationClass::RotationDuringTrap: {
      if (!rotation_key_.has_value()) return false;
      // Mid-trap rotation: flushes the shadow under the old key, clears the
      // cache, and re-keys. Every MAC the guest carries is now stale.
      kernel.set_key(*rotation_key_);
      std::snprintf(buf, sizeof buf,
                    "rotation-during-trap: key rotated at %s of call %d (site 0x%x)",
                    stage.c_str(), calls_seen_, call_site);
      description_ = buf;
      return true;
    }
    case MutationClass::TeardownMidVerify: {
      // Full teardown while the pid's own trap is still in flight; the
      // machine's normal teardown will call end_process a second time.
      kernel.end_process(p.pid);
      std::snprintf(buf, sizeof buf,
                    "teardown-mid-verify: end_process(%d) at %s of call %d (site 0x%x)",
                    p.pid, stage.c_str(), calls_seen_, call_site);
      description_ = buf;
      return true;
    }
    case MutationClass::DoubleInvalidation: {
      // Double-free-shaped churn: both invalidations must be idempotent
      // (write back at most once, never unwatch an already-released range).
      kernel.shadow().flush_pid(p.pid);
      kernel.shadow().flush_pid(p.pid);
      kernel.call_cache().evict_pid(p.pid);
      kernel.call_cache().evict_pid(p.pid);
      std::snprintf(buf, sizeof buf,
                    "double-invalidation: pid %d evicted twice at %s of call %d (site 0x%x)",
                    p.pid, stage.c_str(), calls_seen_, call_site);
      description_ = buf;
      return true;
    }
    case MutationClass::RekeyToctou: {
      if (!rekey_key_.has_value() || !rekey_view_.has_value()) return false;
      // Coherent live rekey mid-trap: the kernel must defer the swap to the
      // next trap boundary (the in-flight trap completes wholly under the
      // old material), then every later trap verifies wholly under the new
      // key. Any verdict -- or any divergence from the clean run -- means
      // the quiesce protocol leaked mixed material.
      const bool now = kernel.rekey(p, *rekey_key_, *rekey_view_);
      if (now) {
        for (const auto& [path, img] : rekey_programs_) {
          machine_->register_program(path, img);
        }
      } else {
        rekey_swap_pending_ = !rekey_programs_.empty();
      }
      std::snprintf(buf, sizeof buf,
                    "rekey-toctou: live rekey %s at %s of call %d (site 0x%x)",
                    now ? "applied" : "deferred", stage.c_str(), calls_seen_, call_site);
      description_ = buf;
      return true;
    }
    default:
      return false;
  }
}

bool FaultInjector::try_apply(os::Process& p, std::uint32_t call_site, std::uint16_t sysno) {
  auto& regs = p.cpu.regs;
  const policy::Descriptor des(regs[isa::kRegPolicyDescriptor]);
  const auto maybe_id = os::syscall_from_number(personality_, sysno);
  const int arity = maybe_id.has_value() ? os::signature(*maybe_id).arity : 0;
  const std::uint64_t seed = spec_.seed;
  char buf[160];

  auto flip_bit = [&](std::uint32_t base, std::uint32_t nbytes, const char* what,
                      std::uint32_t first = 0) {
    const auto byte = first + static_cast<std::uint32_t>(seed % (nbytes - first));
    const int bit = static_cast<int>((seed / nbytes) % 8);
    p.mem.w8(base + byte,
             static_cast<std::uint8_t>(p.mem.r8(base + byte) ^ (1u << bit)));
    std::snprintf(buf, sizeof buf, "%s: flip bit %d of byte %u at call %d (site 0x%x)", what,
                  bit, byte, calls_seen_, call_site);
    description_ = buf;
  };

  /// Validated AS body length behind `body`, or 0 when the header is not
  /// plausible (the injector only corrupts genuinely live structures).
  auto as_len = [&](std::uint32_t body) -> std::uint32_t {
    if (body < policy::kAsHeaderSize ||
        !p.mem.in_range(body - policy::kAsHeaderSize, policy::kAsHeaderSize)) {
      return 0;
    }
    const std::uint32_t len = p.mem.r32(body - policy::kAsHeaderSize);
    if (len == 0 || len > policy::kAsMaxLength || !p.mem.in_range(body, len)) return 0;
    return len;
  };

  std::vector<int> as_args;
  for (int i = 0; i < arity; ++i) {
    if (des.arg_is_authenticated_string(i)) as_args.push_back(i);
  }

  switch (spec_.cls) {
    case MutationClass::CallMacFlip: {
      const std::uint32_t mac_ptr = regs[isa::kRegCallMac];
      if (!p.mem.in_range(mac_ptr, 16)) return false;
      flip_bit(mac_ptr, 16, "call-mac");
      return true;
    }

    case MutationClass::DescriptorFlip: {
      const int bit = static_cast<int>(seed % 32);
      regs[isa::kRegPolicyDescriptor] ^= 1u << bit;
      std::snprintf(buf, sizeof buf, "descriptor: flip bit %d at call %d (site 0x%x)", bit,
                    calls_seen_, call_site);
      description_ = buf;
      return true;
    }

    case MutationClass::AsHeaderCorrupt: {
      std::vector<std::uint32_t> headers;
      for (int i : as_args) {
        const std::uint32_t body = regs[1 + static_cast<std::size_t>(i)];
        if (body >= policy::kAsHeaderSize &&
            p.mem.in_range(body - policy::kAsHeaderSize, policy::kAsHeaderSize)) {
          headers.push_back(body - policy::kAsHeaderSize);
        }
      }
      if (des.control_flow_constrained()) {
        const std::uint32_t body = regs[isa::kRegPredSet];
        if (body >= policy::kAsHeaderSize &&
            p.mem.in_range(body - policy::kAsHeaderSize, policy::kAsHeaderSize)) {
          headers.push_back(body - policy::kAsHeaderSize);
        }
      }
      if (headers.empty()) return false;
      flip_bit(headers[(seed >> 32) % headers.size()], policy::kAsHeaderSize, "as-header");
      return true;
    }

    case MutationClass::AsBodyCorrupt: {
      std::vector<std::pair<std::uint32_t, std::uint32_t>> bodies;  // {addr, len}
      for (int i : as_args) {
        const std::uint32_t body = regs[1 + static_cast<std::size_t>(i)];
        if (const std::uint32_t len = as_len(body); len > 0) bodies.emplace_back(body, len);
      }
      if (bodies.empty()) return false;
      const auto& [addr, len] = bodies[(seed >> 32) % bodies.size()];
      flip_bit(addr, len, "as-body");
      return true;
    }

    case MutationClass::PredSetCorrupt: {
      if (!des.control_flow_constrained()) return false;
      const std::uint32_t body = regs[isa::kRegPredSet];
      const std::uint32_t len = as_len(body);
      if (len == 0) return false;
      flip_bit(body, len, "pred-set");
      return true;
    }

    case MutationClass::PolicyStateCorrupt: {
      if (!des.control_flow_constrained()) return false;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (!p.mem.in_range(lb, policy::kPolicyStateSize)) return false;
      // Materialize any lazily shadowed record first: the same-value touch
      // write fires the write watch, so a live shadow entry writes back its
      // trusted bytes before the flip lands. Then flip past byte 0 -- a flip
      // computed from the stale pre-write-back bytes could otherwise land
      // exactly on the trusted value and turn the fault into a no-op (and
      // byte 0 itself keeps the stale value the touch rewrote).
      p.mem.w8(lb, p.mem.r8(lb));
      flip_bit(lb, policy::kPolicyStateSize, "policy-state", 1);
      return true;
    }

    case MutationClass::CrossReplay: {
      if (!des.control_flow_constrained()) return false;
      if (replay_state_.size() != policy::kPolicyStateSize) return false;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (!p.mem.in_range(lb, policy::kPolicyStateSize)) return false;
      p.mem.write_bytes(lb, replay_state_);
      std::snprintf(buf, sizeof buf,
                    "cross-replay: foreign policy state at call %d (site 0x%x)", calls_seen_,
                    call_site);
      description_ = buf;
      return true;
    }

    case MutationClass::RegisterSwap: {
      // Only registers the checker actually consumes: mutating a register
      // the policy leaves unconstrained is permitted by construction and
      // would not be a verification-surface fault.
      std::vector<isa::Reg> targets{isa::kRegBlockId, isa::kRegCallMac};
      if (des.control_flow_constrained()) {
        targets.push_back(isa::kRegPredSet);
        targets.push_back(isa::kRegStatePtr);
      }
      for (int i = 0; i < arity; ++i) {
        if (des.arg_constrained(i)) targets.push_back(static_cast<isa::Reg>(1 + i));
      }
      const isa::Reg r = targets[(seed >> 32) % targets.size()];
      regs[r] ^= nonzero32(seed);
      std::snprintf(buf, sizeof buf, "register-swap: r%d ^= 0x%x at call %d (site 0x%x)", r,
                    nonzero32(seed), calls_seen_, call_site);
      description_ = buf;
      return true;
    }

    case MutationClass::KeyMismatch: {
      // Environmental fault: the campaign boots the kernel with a key that
      // differs from the installer's. Nothing to mutate at trap time.
      description_ = "kernel/installer key mismatch";
      return true;
    }

    case MutationClass::CacheToctou: {
      // Time-of-check-to-time-of-use against the verified-call cache: wait
      // for a trap at a site the checker has already verified (so a cache
      // entry exists), then corrupt the bytes the fast path would be tempted
      // to trust without re-MACing. Detection requires the cache to compare
      // the trap's actual bytes against the verified material (or be evicted
      // by the write watch) and fall back to full verification.
      if (site_visits_[call_site] < 1) return false;
      std::vector<std::pair<std::uint32_t, std::uint32_t>> targets;  // {addr, len}
      const std::uint32_t mac_ptr = regs[isa::kRegCallMac];
      if (p.mem.in_range(mac_ptr, 16)) targets.emplace_back(mac_ptr, 16);
      if (des.control_flow_constrained()) {
        const std::uint32_t body = regs[isa::kRegPredSet];
        if (const std::uint32_t len = as_len(body); len > 0) targets.emplace_back(body, len);
      }
      if (targets.empty()) return false;
      const auto& [addr, len] = targets[(seed >> 32) % targets.size()];
      flip_bit(addr, len, "cache-toctou");
      return true;
    }

    case MutationClass::ShadowToctou: {
      // Time-of-check-to-time-of-use against the policy-state shadow: wait
      // until the pid's state has been verified at least once (so a shadow
      // entry exists and the guest record may lag behind it), then strike
      // inside the invalidation window. The touch write below fires the
      // write watch, which must write back the trusted record BEFORE the
      // tampering lands -- any ordering bug here silently accepts the fault.
      if (site_visits_[call_site] < 1) return false;
      if (!des.control_flow_constrained()) return false;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (!p.mem.in_range(lb, policy::kPolicyStateSize)) return false;
      const auto stale = p.mem.read_bytes(lb, policy::kPolicyStateSize);
      // Same-value touch: forces write-back of a live (dirty) shadow entry
      // and drops it, exactly as any guest write into the watched range.
      p.mem.w8(lb, p.mem.r8(lb));
      const auto trusted = p.mem.read_bytes(lb, policy::kPolicyStateSize);
      if (seed % 2 == 0 && stale != trusted) {
        // Replay the stale pre-write-back record: authentic bytes carrying
        // an earlier nonce. The slow path must refuse it (counter replay).
        p.mem.write_bytes(lb, stale);
        std::snprintf(buf, sizeof buf,
                      "shadow-toctou: stale-record replay at call %d (site 0x%x)",
                      calls_seen_, call_site);
        description_ = buf;
        return true;
      }
      // Flip past byte 0: the touch rewrote byte 0 with its stale value, so
      // only bytes 1.. are guaranteed to hold the materialized trusted
      // record a flip is guaranteed to diverge from.
      flip_bit(lb, policy::kPolicyStateSize, "shadow-toctou", 1);
      return true;
    }

    case MutationClass::PromoToctou: {
      // Time-of-check-to-time-of-use against the Inline tier: strike ONLY at
      // a (pid, site) the lattice has already promoted to trap-less
      // execution -- the exact window where a naive implementation would
      // skip verification outright. The site's own write watch must demote
      // it BEFORE the tamper lands, so the very next call at the site
      // re-enters the full pipeline and fail-stops there.
      if (machine_ == nullptr ||
          !machine_->kernel().inline_site_promoted(p.pid, call_site)) {
        return false;
      }
      if (seed % 2 == 0) {
        const std::uint32_t mac_ptr = regs[isa::kRegCallMac];
        if (!p.mem.in_range(mac_ptr, 16)) return false;
        flip_bit(mac_ptr, 16, "promo-toctou(call-mac)");
        return true;
      }
      if (!des.control_flow_constrained()) return false;
      const std::uint32_t lb = regs[isa::kRegStatePtr];
      if (!p.mem.in_range(lb, policy::kPolicyStateSize)) return false;
      // Same discipline as ShadowToctou: the touch write materializes the
      // shadowed record (and demotes the site), then the flip past byte 0
      // diverges from the trusted bytes for certain.
      p.mem.w8(lb, p.mem.r8(lb));
      flip_bit(lb, policy::kPolicyStateSize, "promo-toctou(policy-state)", 1);
      return true;
    }

    case MutationClass::RotationDuringTrap:
    case MutationClass::TeardownMidVerify:
    case MutationClass::DoubleInvalidation:
    case MutationClass::RekeyToctou:
      // Lifecycle classes strike via apply_lifecycle from the stage hook.
      break;

    case MutationClass::kCount:
      break;
  }
  return false;
}

}  // namespace asc::fault
