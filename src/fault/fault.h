// Deterministic fault injection against the ASC verification surface.
//
// The paper's security argument (§3.4) is fail-stop: any tampering with a
// rewritten call -- its MAC, policy descriptor, authenticated strings, or
// the lastBlock/lbMAC memory-checker state -- must be detected by the
// kernel, never silently accepted and never able to crash the monitor. A
// FaultInjector turns that claim into something testable: armed on a
// vm::Machine, it waits for the n-th system call trap and applies one
// seeded mutation from a fixed class to the trap state, exactly where a
// real attacker (or a corrupted .asdata page) would strike.
//
// Every class maps to an expected set of Violation verdicts; the Campaign
// (campaign.h) runs mutations at scale and checks the invariant that each
// mutated run either behaves identically to a clean run or fail-stops with
// a verdict from that set.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "os/process.h"
#include "os/syscalls.h"
#include "vm/machine.h"

namespace asc::fault {

/// What part of the verification surface a mutation targets.
enum class MutationClass : std::uint8_t {
  CallMacFlip,         // bit-flip in the 16-byte call MAC
  DescriptorFlip,      // bit-flip in the policy-descriptor register (r6)
  AsHeaderCorrupt,     // bit-flip in an AS {len, MAC} header (argument or pred set)
  AsBodyCorrupt,       // bit-flip in authenticated-string content bytes
  PredSetCorrupt,      // bit-flip in the predecessor-set body
  PolicyStateCorrupt,  // bit-flip in the {lastBlock, lbMAC} record
  CrossReplay,         // replay policy state captured from another process
  RegisterSwap,        // corrupt a policy-operand register at trap time
  KeyMismatch,         // kernel key differs from the installer key
  CacheToctou,         // corrupt MAC/pred-set at a call site verified before
                       // (attacks the verified-call cache fast path)
  ShadowToctou,        // force write-back of a shadowed {lastBlock, lbMAC}
                       // record, then tamper with the materialized bytes or
                       // replay the stale pre-write-back record (attacks the
                       // policy-state shadow fast path)
  kCount,
};

inline constexpr std::size_t kNumMutationClasses =
    static_cast<std::size_t>(MutationClass::kCount);

std::string mutation_class_name(MutationClass c);
std::vector<MutationClass> all_mutation_classes();

/// The Violation verdicts a detection of this class may legitimately yield.
const std::vector<os::Violation>& expected_violations(MutationClass c);

/// One fully determined mutation: the class, the first syscall trap at which
/// it becomes eligible (1-based, counted across all processes of a run), and
/// a seed selecting the byte/bit/register within the class.
struct FaultSpec {
  MutationClass cls = MutationClass::CallMacFlip;
  int trigger_call = 1;
  std::uint64_t seed = 0;
};

/// Applies one FaultSpec to a machine run. Arm() installs a pre-syscall
/// hook; from trigger_call on, the first trap where the class is applicable
/// (e.g. AsBodyCorrupt needs an authenticated-string argument) is mutated,
/// once. The injector must outlive every run of the armed machine.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  /// Install on `machine` (replaces its pre_syscall_hook).
  void arm(vm::Machine& machine);

  /// CrossReplay payload: a policy-state blob (kPolicyStateSize bytes)
  /// captured from another process's address space.
  void set_replay_state(std::vector<std::uint8_t> state) { replay_state_ = std::move(state); }

  const FaultSpec& spec() const { return spec_; }
  bool applied() const { return applied_; }
  int applied_at_call() const { return applied_at_; }
  int calls_seen() const { return calls_seen_; }
  /// Human-readable description of the mutation actually performed.
  const std::string& description() const { return description_; }

 private:
  bool try_apply(os::Process& p, std::uint32_t call_site);

  FaultSpec spec_;
  os::Personality personality_ = os::Personality::LinuxSim;
  std::vector<std::uint8_t> replay_state_;
  bool applied_ = false;
  int applied_at_ = 0;
  int calls_seen_ = 0;
  // Traps seen per call site so far, *excluding* the current one. CacheToctou
  // only fires at a site the checker has already verified once -- the moment
  // a naive verified-call cache would skip re-verification.
  std::map<std::uint32_t, int> site_visits_;
  std::string description_;
};

}  // namespace asc::fault
