// Deterministic fault injection against the ASC verification surface.
//
// The paper's security argument (§3.4) is fail-stop: any tampering with a
// rewritten call -- its MAC, policy descriptor, authenticated strings, or
// the lastBlock/lbMAC memory-checker state -- must be detected by the
// kernel, never silently accepted and never able to crash the monitor. A
// FaultInjector turns that claim into something testable: armed on a
// vm::Machine, it waits for the n-th system call trap and applies one
// seeded mutation from a fixed class to the trap state, exactly where a
// real attacker (or a corrupted .asdata page) would strike.
//
// Every class maps to an expected set of Violation verdicts; the Campaign
// (campaign.h) runs mutations at scale and checks the invariant that each
// mutated run either behaves identically to a clean run or fail-stops with
// a verdict from that set.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "binary/image.h"
#include "crypto/aes.h"
#include "os/process.h"
#include "os/rekey.h"
#include "os/syscalls.h"
#include "os/trapcontext.h"
#include "vm/machine.h"

namespace asc::fault {

/// What part of the verification surface a mutation targets.
enum class MutationClass : std::uint8_t {
  CallMacFlip,         // bit-flip in the 16-byte call MAC
  DescriptorFlip,      // bit-flip in the policy-descriptor register (r6)
  AsHeaderCorrupt,     // bit-flip in an AS {len, MAC} header (argument or pred set)
  AsBodyCorrupt,       // bit-flip in authenticated-string content bytes
  PredSetCorrupt,      // bit-flip in the predecessor-set body
  PolicyStateCorrupt,  // bit-flip in the {lastBlock, lbMAC} record
  CrossReplay,         // replay policy state captured from another process
  RegisterSwap,        // corrupt a policy-operand register at trap time
  KeyMismatch,         // kernel key differs from the installer key
  CacheToctou,         // corrupt MAC/pred-set at a call site verified before
                       // (attacks the verified-call cache fast path)
  ShadowToctou,        // force write-back of a shadowed {lastBlock, lbMAC}
                       // record, then tamper with the materialized bytes or
                       // replay the stale pre-write-back record (attacks the
                       // policy-state shadow fast path)
  RotationDuringTrap,  // rotate the kernel key at a trap-stage boundary,
                       // mid-trap (lifecycle: every signed byte goes stale)
  TeardownMidVerify,   // fire Kernel::end_process at a trap-stage boundary
                       // while the pid's trap is in flight (lifecycle: must
                       // be benign -- teardown is idempotent and eager
                       // verification resumes coherently)
  DoubleInvalidation,  // evict the pid's shadow entry and cache entries
                       // TWICE back-to-back (lifecycle: double-free-shaped
                       // bookkeeping bug; must be benign)
  PromoToctou,         // tamper with the call bytes or the policy-state
                       // record of a (pid, site) ALREADY promoted to the
                       // trap-less Inline tier (attacks the tier lattice's
                       // promotion window: the write watch must demote the
                       // site before the tamper lands, so the next call
                       // re-enters the full pipeline and fail-stops)
  RekeyToctou,         // fire Kernel::rekey (a COHERENT new-key + re-signed
                       // view pair from the Rekeyer) at a trap-stage
                       // boundary (lifecycle: must be benign -- a mid-trap
                       // request defers to the next trap boundary, so no
                       // trap ever verifies under mixed old/new material;
                       // contrast RotationDuringTrap, whose new key arrives
                       // WITHOUT re-signed bytes and must fail-stop)
  kCount,
};

inline constexpr std::size_t kNumMutationClasses =
    static_cast<std::size_t>(MutationClass::kCount);

std::string mutation_class_name(MutationClass c);
/// The default campaign/chaos pool: every class that applies to a stock
/// kernel. PromoToctou is excluded -- it needs the inline tier enabled and a
/// promoted site -- and RekeyToctou too (it needs a Rekeyer-produced
/// new-key + view payload), so campaigns opt in via `classes` -- which also
/// keeps the per-class RNG substreams of every legacy campaign byte-stable.
std::vector<MutationClass> all_mutation_classes();
/// Every class including the opt-in ones (CLI listings, name parsing).
std::vector<MutationClass> extended_mutation_classes();
/// Inverse of mutation_class_name (nullopt for an unknown name).
std::optional<MutationClass> mutation_class_from_name(const std::string& name);

/// The Violation verdicts a detection of this class may legitimately yield.
const std::vector<os::Violation>& expected_violations(MutationClass c);

/// Lifecycle classes act on the KERNEL (key rotation, teardown, double
/// invalidation) instead of mutating guest-visible verification bytes.
bool lifecycle_class(MutationClass c);
/// Classes whose strike point may be any TrapStage boundary: the
/// memory-resident targets (their bytes stay addressable across the whole
/// trap) and the lifecycle classes. Register, TOCTOU, and environmental
/// classes are Trap-only -- their targets are only coherent at trap entry.
bool stage_targetable(MutationClass c);
/// Whether a spec of class `c` may strike at `s`. Trap-only classes accept
/// only Trap. AsBodyCorrupt additionally excludes Enforce: the simulator's
/// dispatch layer re-reads argument bytes from guest memory, so a flip
/// landing between inspect and dispatch is a single-trap double-fetch TOCTOU
/// outside the ASC threat model (the real kernel dispatches on the bytes it
/// verified) -- it would diverge behavior with no verdict by construction.
bool stage_allowed(MutationClass c, os::TrapStage s);
std::vector<os::TrapStage> all_trap_stages();
/// Inverse of os::trap_stage_name (nullopt for an unknown name).
std::optional<os::TrapStage> trap_stage_from_name(const std::string& name);

/// One fully determined mutation: the class, the first syscall trap at which
/// it becomes eligible (1-based, counted across all processes of a run), a
/// seed selecting the byte/bit/register within the class, and the trap-stage
/// boundary at which the strike lands (Trap = the classic pre-enforcement
/// injection; later stages strike between the pipeline's layers).
struct FaultSpec {
  MutationClass cls = MutationClass::CallMacFlip;
  int trigger_call = 1;
  std::uint64_t seed = 0;
  os::TrapStage stage = os::TrapStage::Trap;
};

/// Single-line reproducer: "<class>:<trigger>:0x<seed>:<stage>". Paste it
/// back through parse_spec (or `asc-faultsim --spec`) to replay one run.
std::string spec_repr(const FaultSpec& spec);
std::optional<FaultSpec> parse_spec(const std::string& repr);

/// Applies one FaultSpec to a machine run. Arm() installs a pre-syscall
/// hook; from trigger_call on, the first trap where the class is applicable
/// (e.g. AsBodyCorrupt needs an authenticated-string argument) is mutated,
/// once. The injector must outlive every run of the armed machine.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  /// Install on `machine` (replaces its pre_syscall_hook).
  void arm(vm::Machine& machine);

  /// CrossReplay payload: a policy-state blob (kPolicyStateSize bytes)
  /// captured from another process's address space.
  void set_replay_state(std::vector<std::uint8_t> state) { replay_state_ = std::move(state); }

  /// RotationDuringTrap payload: the key the kernel rotates to mid-trap.
  /// The class is NotApplied until one is provided.
  void set_rotation_key(const crypto::Key128& key) { rotation_key_ = key; }

  /// RekeyToctou payload: a coherent {new key, re-signed view} pair from
  /// Rekeyer::rekey over the image under test. The class is NotApplied
  /// until both are provided. `programs` are re-signed spawn helpers,
  /// re-registered on the machine the moment the rekey APPLIES (not when it
  /// is requested): a child spawned after the key swap must carry MACs
  /// under the key the kernel holds by then.
  void set_rekey(const crypto::Key128& key, os::RekeyView view,
                 std::vector<std::pair<std::string, binary::Image>> programs = {}) {
    rekey_key_ = key;
    rekey_view_ = std::move(view);
    rekey_programs_ = std::move(programs);
  }

  /// True when this spec strikes from the kernel's stage hook (a lifecycle
  /// class, or any class at a non-Trap stage). arm() then claims the
  /// machine's kernel stage hook in addition to the pre-syscall hook.
  bool needs_stage_hook() const;

  const FaultSpec& spec() const { return spec_; }
  bool applied() const { return applied_; }
  int applied_at_call() const { return applied_at_; }
  int calls_seen() const { return calls_seen_; }
  /// Human-readable description of the mutation actually performed.
  const std::string& description() const { return description_; }

 private:
  bool try_apply(os::Process& p, std::uint32_t call_site, std::uint16_t sysno);
  /// The lifecycle strikes (rotation / teardown / double invalidation);
  /// they act on machine_->kernel() rather than guest memory.
  bool apply_lifecycle(os::Process& p, std::uint32_t call_site);

  FaultSpec spec_;
  vm::Machine* machine_ = nullptr;
  os::Personality personality_ = os::Personality::LinuxSim;
  std::vector<std::uint8_t> replay_state_;
  std::optional<crypto::Key128> rotation_key_;
  std::optional<crypto::Key128> rekey_key_;
  std::optional<os::RekeyView> rekey_view_;
  std::vector<std::pair<std::string, binary::Image>> rekey_programs_;
  /// A deferred rekey left helper registrations un-swapped; swap them at
  /// the next quiesced (depth-0) trap, right before the pending rekey lands.
  bool rekey_swap_pending_ = false;
  bool applied_ = false;
  int applied_at_ = 0;
  int calls_seen_ = 0;
  // Traps seen per call site so far, *excluding* the current one. CacheToctou
  // only fires at a site the checker has already verified once -- the moment
  // a naive verified-call cache would skip re-verification.
  std::map<std::uint32_t, int> site_visits_;
  std::string description_;
};

}  // namespace asc::fault
