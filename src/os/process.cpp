#include "os/process.h"

namespace asc::os {

std::string violation_name(Violation v) {
  switch (v) {
    case Violation::None: return "none";
    case Violation::UnknownSyscall: return "unknown-syscall";
    case Violation::BadCallMac: return "bad-call-mac";
    case Violation::BadStringArg: return "bad-string-arg";
    case Violation::BadPolicyState: return "bad-policy-state";
    case Violation::BadPredecessor: return "bad-predecessor";
    case Violation::BadCapability: return "bad-capability";
    case Violation::BadPattern: return "bad-pattern";
    case Violation::MonitorDenied: return "monitor-denied";
    case Violation::GuestFaulted: return "guest-faulted";
  }
  return "?";
}

Process::Process() {
  fds.resize(3);
  fds[0].kind = FdEntry::Kind::Stdin;
  fds[1].kind = FdEntry::Kind::Stdout;
  fds[2].kind = FdEntry::Kind::Stderr;
}

std::int32_t Process::alloc_fd() {
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].kind == FdEntry::Kind::Closed) return static_cast<std::int32_t>(i);
  }
  if (fds.size() >= 256) return -1;
  fds.push_back(FdEntry{});
  return static_cast<std::int32_t>(fds.size() - 1);
}

FdEntry* Process::fd(std::uint32_t n) {
  if (n >= fds.size()) return nullptr;
  if (fds[n].kind == FdEntry::Kind::Closed) return nullptr;
  return &fds[n];
}

}  // namespace asc::os
