// The guest-visible footprint of a key rotation.
//
// A RekeyView is what the installer-side Rekeyer hands the kernel so a live
// process can be moved to a new key between traps: the exact MAC slots the
// re-signing touched (call MACs at their .asdata slots, AS content MACs at
// body-16) and where the policy-state record lives. The patches deliberately
// EXCLUDE the policy-state MAC -- a live process's {lastBlock, counter} has
// evolved past the install-time seed, so the kernel re-MACs the current state
// itself under the new key at swap time (see Kernel::rekey).
//
// This header lives in os/ (not installer/) because the kernel consumes it;
// os/ must not depend on the installer layer.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace asc::os {

/// One 16-byte MAC slot rewritten by a rekey, at an absolute virtual address.
struct RekeyPatch {
  std::uint32_t addr = 0;
  std::array<std::uint8_t, 16> bytes{};
};

/// Everything the kernel needs to swap a live process onto re-signed
/// material: the MAC-slot patches plus the policy-state record address.
struct RekeyView {
  std::vector<RekeyPatch> patches;
  std::uint32_t state_addr = 0;
};

}  // namespace asc::os
