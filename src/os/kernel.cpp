// Trap layer of the staged pipeline (see os/kernel.h): context capture,
// the enforcement/audit hand-off, and configuration. The dispatch layer
// (syscall handlers) lives in os/dispatch.cpp.
#include "os/kernel.h"

#include "policy/policy.h"
#include "util/error.h"

namespace asc::os {

namespace {

/// Tracks on_syscall nesting (spawn re-enters the trap pipeline); the
/// live-rekey protocol applies swaps only at depth 0.
struct TrapDepthGuard {
  explicit TrapDepthGuard(int& d) : depth(d) { ++depth; }
  ~TrapDepthGuard() { --depth; }
  TrapDepthGuard(const TrapDepthGuard&) = delete;
  TrapDepthGuard& operator=(const TrapDepthGuard&) = delete;
  int& depth;  // NOLINT(misc-non-private-member-variables-in-classes)
};

}  // namespace

Kernel::Kernel(Personality personality, CostModel cost)
    : personality_(personality), cost_(cost), monitor_(std::make_unique<NullMonitor>()) {}

void Kernel::set_enforcement(Enforcement e) {
  // Any monitor swap revokes every inline promotion: the new monitor has
  // inspected none of the promoted sites' traps.
  tenant_.tiers.on_monitor_swap();
  enforcement_ = e;
  monitor_ = make_monitor(e, *this);
  asc_monitor_ = (e == Enforcement::Asc);
}

void Kernel::install_monitor(std::unique_ptr<SyscallMonitor> monitor) {
  if (monitor == nullptr) throw Error("kernel: install_monitor(nullptr)");
  tenant_.tiers.on_monitor_swap();
  monitor_ = std::move(monitor);
  // A custom monitor (even a chain containing AscMonitor) must see every
  // trap, so the trap-less probe stands down until set_enforcement(Asc).
  asc_monitor_ = false;
}

void Kernel::set_key(const crypto::Key128& key) {
  // Rotation order matters: the lattice demotes every inline site and
  // writes dirty shadowed records back under the OLD key first (the
  // write-back hooks read the tenant's key through the reference the
  // checker captured), leaving guest memory exactly as the eager protocol
  // would have -- then no prior verification survives.
  tenant_.tiers.on_key_rotation();
  tenant_.key.emplace(key);
  // (Charging note: the AES-CMAC subkey derivation -- cost_.mac_subkey_setup
  // -- is paid here, once per key, which is what lets mac_cost() omit it on
  // the per-call hot path.)
}

void Kernel::set_policy_shadow(bool on) {
  // Turning the fast path off mid-run materializes every live record, so
  // the next trap's slow path verifies a fresh, coherent guest record. The
  // inline tier rides on the shadow, so its sites demote too.
  tenant_.tiers.set_shadow_enabled(on);
}

void Kernel::set_monitor_policy(const std::string& program, MonitorPolicy policy) {
  monitor_policies_[program] = std::move(policy);
}

const MonitorPolicy* Kernel::find_monitor_policy(const std::string& program) const {
  auto it = monitor_policies_.find(program);
  return it == monitor_policies_.end() ? nullptr : &it->second;
}

void Kernel::log_event(Process& p, const TrapContext& ctx, AuditKind kind, std::string detail) {
  tenant_.audit.event(p, ctx, kind, std::move(detail), now_ns(p));
}

TrapContext Kernel::capture_trap(Process& p, std::uint32_t call_site) {
  TrapContext ctx;
  ctx.charge(p, cost_.trap);
  ++p.syscall_count;
  const auto& regs = p.cpu.regs;
  ctx.pid = p.pid;
  ctx.call_site = call_site;
  ctx.sysno = static_cast<std::uint16_t>(regs[0]);
  ctx.args = {regs[1], regs[2], regs[3], regs[4], regs[5]};
  ctx.id = syscall_from_number(personality_, ctx.sysno);
  ctx.effective_sysno = ctx.sysno;
  ctx.effective_args = ctx.args;
  if (ctx.id.has_value()) ctx.effective_id = *ctx.id;
  return ctx;
}

bool Kernel::resolve_indirect(TrapContext& ctx) {
  if (ctx.effective_id != SysId::SyscallIndirect) return true;
  const auto& a = ctx.effective_args;
  const std::uint16_t real = static_cast<std::uint16_t>(a[0]);
  const auto real_id = syscall_from_number(personality_, real);
  // On BsdSim, mmap has no direct number; __syscall names it by the
  // OS-independent convention number 71 (historic BSD mmap).
  SysId resolved;
  if (real == 71) {
    resolved = SysId::Mmap;
  } else if (real_id.has_value()) {
    resolved = *real_id;
  } else {
    return false;
  }
  ctx.effective_id = resolved;
  ctx.effective_sysno = real;
  ctx.effective_args = {a[1], a[2], a[3], a[4], 0};
  return true;
}

bool Kernel::rekey(Process& p, const crypto::Key128& new_key, const RekeyView& view) {
  if (trap_depth_ > 0) {
    // Mid-trap: the in-flight verification must complete wholly under the
    // old material. Park the request; the next whole trap applies it at
    // entry, before any probe or MAC check runs.
    pending_rekey_ = PendingRekey{new_key, view};
    ++rekey_counters_.deferred;
    return false;
  }
  return apply_rekey(p, new_key, view);
}

bool Kernel::apply_rekey(Process& p, const crypto::Key128& new_key, const RekeyView& view) {
  if (!p.mem.in_range(view.state_addr, policy::kPolicyStateSize)) return false;

  // (1) Establish the trusted {lastBlock} before anything is flushed. A
  // live shadow entry IS the trusted copy; otherwise the guest record must
  // verify under the old key and the authoritative per-process nonce -- a
  // record that does not is tampered, and re-MACing it under the new key
  // would launder the tamper, so the swap is refused (the old key stays and
  // the next eager check fail-stops).
  std::uint32_t last_block = 0;
  if (const AscShadow::Entry* sh = tenant_.tiers.shadow().peek(p.pid); sh != nullptr) {
    last_block = sh->last_block;
  } else {
    last_block = p.mem.r32(view.state_addr);
    if (tenant_.key) {
      crypto::Mac guest_mac{};
      p.mem.read_bytes(view.state_addr + 4, 16, guest_mac.data());
      const auto msg = policy::encode_policy_state(last_block, p.asc_counter);
      p.cycles += cost_.mac_cost(msg.size());
      if (!tenant_.key->verify(msg, guest_mac)) return false;
    }
  }

  // (2) The existing rotation spine: demote every inline site and write
  // dirty shadowed records back under the OLD key, then install the new one
  // (see set_key for the ordering contract).
  set_key(new_key);

  // (3) Swap the re-signed MAC bytes into guest memory. The slots are MAC
  // fields (AS headers and call-MAC slots), which no watch range guards --
  // watches cover message CONTENT -- so these stores cannot re-enter the
  // invalidation path; and the lattice was floored in (2) anyway.
  for (const RekeyPatch& patch : view.patches) {
    if (!p.mem.in_range(patch.addr, 16)) return false;
    p.mem.write_bytes(patch.addr, patch.bytes);
  }

  // (4) Re-MAC the CURRENT policy state under the new key. The view
  // deliberately carries no state MAC (the install-time seed is stale for a
  // live process); this is the same re-materialization evict_fast_paths
  // performs, under the new key.
  const auto msg = policy::encode_policy_state(last_block, p.asc_counter);
  p.cycles += cost_.mac_cost(msg.size());
  p.mem.w32(view.state_addr, last_block);
  p.mem.write_bytes(view.state_addr + 4, tenant_.key->mac(msg));

  ++rekey_counters_.rekeys;
  rekey_counters_.macs_applied += view.patches.size() + 1;
  return true;
}

void Kernel::on_syscall(Process& p, std::uint32_t call_site) {
  // ---- (-1) parked rekey: land it at the trap boundary ----
  // A rotation requested mid-trap waits here so the requesting trap
  // completed wholly under the old material; this trap (and every later
  // one) verifies wholly under the new. Applied before the inline probe --
  // the probe's pre-authorization was earned under the old key and must not
  // outlive it.
  if (trap_depth_ == 0 && pending_rekey_.has_value()) {
    const PendingRekey req = std::move(*pending_rekey_);
    pending_rekey_.reset();
    apply_rekey(p, req.key, req.view);
  }
  const TrapDepthGuard depth_guard(trap_depth_);

  // ---- (0) Inline tier: the trap-less pre-authorized path ----
  // A promoted (pid, site) whose live registers and shadowed control-flow
  // state still match its verified snapshot skips the whole
  // enforce->audit pipeline: just the trap cost, the pre-authorized probe,
  // and the handler. Any mismatch demoted the site inside try_inline and we
  // fall through to the full pipeline, which re-verifies every MAC --
  // tamper fail-stops there, never here.
  if (asc_monitor_ && tenant_.tiers.inline_enabled()) {
    if (const TierTable::InlineSite* site = tenant_.tiers.try_inline(p, call_site)) {
      TrapContext ctx;
      ctx.charge(p, cost_.trap + cost_.inline_hit_cost());
      ++p.syscall_count;
      const auto& regs = p.cpu.regs;
      ctx.pid = p.pid;
      ctx.call_site = call_site;
      ctx.sysno = site->sysno;
      ctx.args = {regs[1], regs[2], regs[3], regs[4], regs[5]};
      ctx.id = site->id;
      ctx.effective_id = site->id;
      ctx.effective_sysno = site->sysno;
      ctx.effective_args = ctx.args;
      std::int64_t ret;
      try {
        ret = dispatch(p, ctx);
      } catch (const GuestFault&) {
        ret = SimFs::kErrInval;
      }
      ctx.charge(p, cost_.handler_base_cost(ctx.effective_id));
      if (p.running) p.cpu.regs[0] = static_cast<std::uint32_t>(ret);
      if (tracing_) {
        TraceEntry t;
        t.id = ctx.effective_id;
        t.sysno = ctx.effective_sysno;
        t.call_site = ctx.call_site;
        t.args = ctx.effective_args;
        t.ret = ret;
        trace_.push_back(std::move(t));
      }
      return;
    }
  }

  // ---- (1) trap layer: capture this call's context ----
  TrapContext ctx = capture_trap(p, call_site);
  if (stage_hook_) stage_hook_(p, ctx, TrapStage::Trap);

  // ---- (2) enforcement layer ----
  // A violation verdict goes to the audit layer, which applies the failure
  // mode; only a kill ends the trap here. A tolerated violation (audit-only
  // / within the violation budget) falls through to normal dispatch.
  MonitorVerdict verdict = monitor_->inspect(p, ctx);
  if (stage_hook_) stage_hook_(p, ctx, TrapStage::Enforce);
  if (!verdict.allowed()) {
    ctx.verdict = verdict.violation;
    ctx.verdict_detail = verdict.detail;
    if (tenant_.audit.deny(p, ctx, verdict.violation, verdict.detail, now_ns(p))) return;
  }

  auto& regs = p.cpu.regs;
  if (!ctx.id.has_value() || !resolve_indirect(ctx)) {
    regs[0] = static_cast<std::uint32_t>(-38);  // -ENOSYS
    return;
  }

  // ---- (3) dispatch layer ----
  std::int64_t ret;
  try {
    ret = dispatch(p, ctx);
  } catch (const GuestFault& f) {
    // A syscall argument pointed outside the address space.
    ret = SimFs::kErrInval;
    (void)f;
  }

  ctx.charge(p, cost_.handler_base_cost(ctx.effective_id));
  if (p.running) regs[0] = static_cast<std::uint32_t>(ret);
  if (stage_hook_) stage_hook_(p, ctx, TrapStage::Dispatch);

  // Trace exit() too: training-based policies must learn it or they kill
  // every process at termination.
  if (tracing_) {
    TraceEntry t;
    t.id = ctx.effective_id;
    t.sysno = ctx.effective_sysno;
    t.call_site = ctx.call_site;
    t.args = ctx.effective_args;
    t.ret = ret;
    const auto& sig = signature(ctx.effective_id);
    if (sig.arity > 0 && sig.args[0] == ArgKind::PathIn) {
      try {
        ctx.path = read_path(p, ctx.effective_args[0]);
        t.path = ctx.path;
      } catch (const GuestFault&) {
      }
    }
    trace_.push_back(std::move(t));
  }

  // ---- (4) audit layer boundary ----
  // A killed trap never reaches here (the deny path returned above), so the
  // Dispatch/Audit stages fire only for traps the guest survived.
  if (stage_hook_) stage_hook_(p, ctx, TrapStage::Audit);
}

// ---- per-pid health machine (see os/health.h) ----

HealthState Kernel::health(int pid) const {
  const auto it = tenant_.tiers.health().find(pid);
  return it == tenant_.tiers.health().end() ? HealthState::Healthy : it->second.state;
}

const HealthRecord* Kernel::health_record(int pid) const {
  const auto it = tenant_.tiers.health().find(pid);
  return it == tenant_.tiers.health().end() ? nullptr : &it->second;
}

void Kernel::report_internal_fault(Process& p, const std::string& detail) {
  internal_fault(p, nullptr, detail);
}

void Kernel::health_self_check(Process& p, const TrapContext& ctx) {
  // Already fully eager: nothing fast-path-resident left to distrust, and
  // re-reporting the same inconsistency every trap would mask recovery.
  if (health(p.pid) == HealthState::Quarantined) return;

  // Shadow coherence: the kernel copy's nonce must equal the process's
  // authoritative counter (the checker updates both in lockstep), and the
  // shadowed record must still lie inside the address space.
  if (const AscShadow::Entry* sh = tenant_.tiers.shadow().peek(p.pid); sh != nullptr) {
    if (sh->counter != p.asc_counter) {
      internal_fault(p, &ctx,
                     "shadow nonce " + std::to_string(sh->counter) +
                         " != process counter " + std::to_string(p.asc_counter));
      return;
    }
    if (!p.mem.in_range(sh->state_ptr, policy::kPolicyStateSize)) {
      internal_fault(p, &ctx, "shadowed policy state out of address space");
      return;
    }
  }

  // Cache/watch pairing: live entries without range hooks can never be
  // evicted by a guest write -- their trusted bytes are unguarded.
  if (tenant_.tiers.cache().size(p.pid) > 0 && !tenant_.tiers.cache().has_range_hooks(p.pid)) {
    internal_fault(p, &ctx, "verified-call cache entries without range hooks");
  }
}

void Kernel::note_verification(Process& p, const TrapContext& ctx, bool clean, bool eager) {
  // A violation verdict resets the pid's inline-promotion streaks: the
  // Inline tier is re-earned with consecutive CLEAN verifications only.
  if (!clean) tenant_.tiers.note_unclean(p.pid);
  const auto it = tenant_.tiers.health().find(p.pid);
  if (it == tenant_.tiers.health().end()) return;  // untracked == Healthy: nothing to earn
  HealthRecord& h = it->second;
  if (h.state == HealthState::Healthy) return;
  if (!clean) {
    // A genuine violation verdict interrupts the probation streak; the
    // audit layer separately applies the failure mode to the guest.
    h.clean_streak = 0;
    return;
  }
  if (h.state == HealthState::Quarantined) {
    if (!eager) return;  // only fully eager verifications count toward parole
    ++h.clean_streak;
    if (h.clean_streak >= h.promote_after) {
      h.state = HealthState::Degraded;
      h.clean_streak = 0;
      ++tenant_.tiers.health_stats().repromotions;
      health_event(p, &ctx, AuditKind::Health,
                   "quarantined -> degraded after " + std::to_string(h.promote_after) +
                       " clean eager verifications");
    }
    return;
  }
  // Degraded: the cache may serve hits, but the control-flow check is eager.
  ++h.clean_streak;
  if (h.clean_streak >= tenant_.tiers.promote_threshold) {
    h.state = HealthState::Healthy;
    h.clean_streak = 0;
    ++tenant_.tiers.health_stats().recoveries;
    health_event(p, &ctx, AuditKind::Health,
                 "degraded -> healthy after " + std::to_string(tenant_.tiers.promote_threshold) +
                     " clean verifications");
  }
}

void Kernel::internal_fault(Process& p, const TrapContext* ctx, const std::string& detail) {
  HealthRecord& h = tenant_.tiers.health()[p.pid];
  ++h.internal_faults;
  ++tenant_.tiers.health_stats().internal_faults;
  health_event(p, ctx, AuditKind::InternalFault, detail);

  // The suspect state must go regardless of the resulting level: even a
  // Healthy->Degraded demotion means the existing fast-path entries were
  // built by bookkeeping that just failed a self-check.
  evict_fast_paths(p);
  h.clean_streak = 0;

  const HealthState before = h.state;
  switch (before) {
    case HealthState::Healthy:
      h.state = HealthState::Degraded;
      ++tenant_.tiers.health_stats().degradations;
      break;
    case HealthState::Degraded:
      h.state = HealthState::Quarantined;
      enter_quarantine(h);
      break;
    case HealthState::Quarantined:
      // Already at the bottom of the lattice: deepen the backoff so the
      // parole gets longer, but there is nowhere further to demote.
      enter_quarantine(h);
      break;
  }
  health_event(p, ctx, AuditKind::Health,
               health_state_name(before) + " -> " + health_state_name(h.state) + ": " +
                   detail);
}

void Kernel::enter_quarantine(HealthRecord& h) {
  ++h.quarantines;
  ++tenant_.tiers.health_stats().quarantines;
  // Exponential backoff: K, 2K, 4K, ... clean eager verifications required,
  // capped so a long-lived flapping pid can still eventually re-promote.
  std::uint64_t k = tenant_.tiers.promote_threshold;
  for (std::uint32_t i = 1; i < h.quarantines && k < tenant_.tiers.backoff_cap; ++i) k *= 2;
  h.promote_after = static_cast<std::uint32_t>(
      k > tenant_.tiers.backoff_cap ? tenant_.tiers.backoff_cap : k);
}

void Kernel::evict_fast_paths(Process& p) {
  // Health demotion floors the whole lattice for this pid: inline sites go
  // first (their watches unregister while the address space is live), then
  // the shadow and cache below.
  tenant_.tiers.demote_pid(p.pid, DemotionCause::HealthDemotion);
  // A live shadow entry holds the ONLY trusted {lastBlock, counter}: the
  // guest record went stale the moment the entry was installed. Write-back
  // under the entry's own counter is exactly the state we no longer trust,
  // so re-materialize under the kernel's authoritative per-process nonce
  // instead -- the next trap's eager 3.1 check then verifies a coherent
  // record. take_pid() has already unwatched the range, so these stores do
  // not re-enter the invalidation path.
  if (const auto e = tenant_.tiers.shadow().take_pid(p.pid)) {
    if (tenant_.key && p.mem.in_range(e->state_ptr, policy::kPolicyStateSize)) {
      const auto msg = policy::encode_policy_state(e->last_block, p.asc_counter);
      p.cycles += cost_.mac_cost(msg.size());
      p.mem.w32(e->state_ptr, e->last_block);
      p.mem.write_bytes(e->state_ptr + 4, tenant_.key->mac(msg));
    }
  }
  tenant_.tiers.cache().evict_pid(p.pid);
}

void Kernel::health_event(Process& p, const TrapContext* ctx, AuditKind kind,
                          std::string detail) {
  if (ctx != nullptr) {
    tenant_.audit.event(p, *ctx, kind, std::move(detail), now_ns(p));
    return;
  }
  // Oracle reports arrive outside any trap: synthesize a context-free record.
  VerdictRecord rec;
  rec.kind = kind;
  rec.pid = p.pid;
  rec.prog = p.name;
  rec.detail = std::move(detail);
  rec.vtime_ns = now_ns(p);
  tenant_.audit.append(std::move(rec));
}

}  // namespace asc::os
