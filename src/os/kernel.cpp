// Trap layer of the staged pipeline (see os/kernel.h): context capture,
// the enforcement/audit hand-off, and configuration. The dispatch layer
// (syscall handlers) lives in os/dispatch.cpp.
#include "os/kernel.h"

#include "util/error.h"

namespace asc::os {

Kernel::Kernel(Personality personality, CostModel cost)
    : personality_(personality), cost_(cost), monitor_(std::make_unique<NullMonitor>()) {}

void Kernel::set_enforcement(Enforcement e) {
  enforcement_ = e;
  monitor_ = make_monitor(e, *this);
}

void Kernel::install_monitor(std::unique_ptr<SyscallMonitor> monitor) {
  if (monitor == nullptr) throw Error("kernel: install_monitor(nullptr)");
  monitor_ = std::move(monitor);
}

void Kernel::set_key(const crypto::Key128& key) {
  // Rotation order matters: dirty shadowed records must be written back
  // under the OLD key first (the write-back hooks read key_ through the
  // reference the checker captured), leaving guest memory exactly as the
  // eager protocol would have -- then no prior verification survives.
  call_shadow_.flush_all();
  key_.emplace(key);
  // Key rotation invalidates every cached verification: no prior MAC match
  // says anything under the new key. (Charging note: the AES-CMAC subkey
  // derivation -- cost_.mac_subkey_setup -- is paid here, once per key,
  // which is what lets mac_cost() omit it on the per-call hot path.)
  call_cache_.clear();
}

void Kernel::set_policy_shadow(bool on) {
  // Turning the fast path off mid-run materializes every live record, so
  // the next trap's slow path verifies a fresh, coherent guest record.
  if (!on) call_shadow_.flush_all();
  shadow_enabled_ = on;
}

void Kernel::set_monitor_policy(const std::string& program, MonitorPolicy policy) {
  monitor_policies_[program] = std::move(policy);
}

const MonitorPolicy* Kernel::find_monitor_policy(const std::string& program) const {
  auto it = monitor_policies_.find(program);
  return it == monitor_policies_.end() ? nullptr : &it->second;
}

void Kernel::log_event(Process& p, const TrapContext& ctx, AuditKind kind, std::string detail) {
  audit_.event(p, ctx, kind, std::move(detail), now_ns(p));
}

TrapContext Kernel::capture_trap(Process& p, std::uint32_t call_site) {
  TrapContext ctx;
  ctx.charge(p, cost_.trap);
  ++p.syscall_count;
  const auto& regs = p.cpu.regs;
  ctx.pid = p.pid;
  ctx.call_site = call_site;
  ctx.sysno = static_cast<std::uint16_t>(regs[0]);
  ctx.args = {regs[1], regs[2], regs[3], regs[4], regs[5]};
  ctx.id = syscall_from_number(personality_, ctx.sysno);
  ctx.effective_sysno = ctx.sysno;
  ctx.effective_args = ctx.args;
  if (ctx.id.has_value()) ctx.effective_id = *ctx.id;
  return ctx;
}

bool Kernel::resolve_indirect(TrapContext& ctx) {
  if (ctx.effective_id != SysId::SyscallIndirect) return true;
  const auto& a = ctx.effective_args;
  const std::uint16_t real = static_cast<std::uint16_t>(a[0]);
  const auto real_id = syscall_from_number(personality_, real);
  // On BsdSim, mmap has no direct number; __syscall names it by the
  // OS-independent convention number 71 (historic BSD mmap).
  SysId resolved;
  if (real == 71) {
    resolved = SysId::Mmap;
  } else if (real_id.has_value()) {
    resolved = *real_id;
  } else {
    return false;
  }
  ctx.effective_id = resolved;
  ctx.effective_sysno = real;
  ctx.effective_args = {a[1], a[2], a[3], a[4], 0};
  return true;
}

void Kernel::on_syscall(Process& p, std::uint32_t call_site) {
  // ---- (1) trap layer: capture this call's context ----
  TrapContext ctx = capture_trap(p, call_site);

  // ---- (2) enforcement layer ----
  // A violation verdict goes to the audit layer, which applies the failure
  // mode; only a kill ends the trap here. A tolerated violation (audit-only
  // / within the violation budget) falls through to normal dispatch.
  MonitorVerdict verdict = monitor_->inspect(p, ctx);
  if (!verdict.allowed()) {
    ctx.verdict = verdict.violation;
    ctx.verdict_detail = verdict.detail;
    if (audit_.deny(p, ctx, verdict.violation, verdict.detail, now_ns(p))) return;
  }

  auto& regs = p.cpu.regs;
  if (!ctx.id.has_value() || !resolve_indirect(ctx)) {
    regs[0] = static_cast<std::uint32_t>(-38);  // -ENOSYS
    return;
  }

  // ---- (3) dispatch layer ----
  std::int64_t ret;
  try {
    ret = dispatch(p, ctx);
  } catch (const GuestFault& f) {
    // A syscall argument pointed outside the address space.
    ret = SimFs::kErrInval;
    (void)f;
  }

  ctx.charge(p, cost_.handler_base_cost(ctx.effective_id));
  if (p.running) regs[0] = static_cast<std::uint32_t>(ret);

  // Trace exit() too: training-based policies must learn it or they kill
  // every process at termination.
  if (tracing_) {
    TraceEntry t;
    t.id = ctx.effective_id;
    t.sysno = ctx.effective_sysno;
    t.call_site = ctx.call_site;
    t.args = ctx.effective_args;
    t.ret = ret;
    const auto& sig = signature(ctx.effective_id);
    if (sig.arity > 0 && sig.args[0] == ArgKind::PathIn) {
      try {
        ctx.path = read_path(p, ctx.effective_args[0]);
        t.path = ctx.path;
      } catch (const GuestFault&) {
      }
    }
    trace_.push_back(std::move(t));
  }
}

}  // namespace asc::os
