#include "os/asccache.h"

#include <algorithm>

namespace asc::os {

void AscCache::set_range_hooks(int pid, RangeHook watch, RangeHook unwatch) {
  hooks_[pid] = Hooks{std::move(watch), std::move(unwatch)};
}

void AscCache::drop_range_hooks(int pid) { hooks_.erase(pid); }

void AscCache::unwatch_ranges(const Key& key, const Entry& entry) {
  const auto it = hooks_.find(key.pid);
  if (it == hooks_.end() || !it->second.unwatch) return;
  for (const auto& [addr, len] : entry.ranges) it->second.unwatch(addr, len);
}

std::map<AscCache::Key, AscCache::Entry>::iterator AscCache::evict(
    std::map<Key, Entry>::iterator it) {
  unwatch_ranges(it->first, it->second);
  ++stats_.evictions;
  return entries_.erase(it);
}

const AscCache::Entry* AscCache::lookup(const Key& key,
                                        std::span<const std::uint8_t> material) {
  const auto it = entries_.find(key);
  // A hit demands exact byte equality with the verified material. A digest
  // here would make the fast path only as strong as the digest's collision
  // resistance; the bytes are small and bounded, so compare them outright.
  if (it == entries_.end() || it->second.material.size() != material.size() ||
      !std::equal(material.begin(), material.end(), it->second.material.begin())) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  ++it->second.hits;
  return &it->second;
}

void AscCache::insert(const Key& key, Entry entry) {
  if (const auto it = entries_.find(key); it != entries_.end()) {
    // Replacement: the stale entry's ranges leave the watch set with it.
    unwatch_ranges(key, it->second);
    entries_.erase(it);
  } else if (entries_.size() >= capacity_) {
    // Capacity backstop: evict the least-hit entry, rotating the tie-break
    // start through the key space so a full cache degrades every process's
    // sites evenhandedly instead of victimizing the lowest keys forever.
    auto victim = entries_.end();
    auto it = entries_.upper_bound(rr_cursor_);
    if (it == entries_.end()) it = entries_.begin();
    for (std::size_t n = entries_.size(); n > 0; --n) {
      if (victim == entries_.end() || it->second.hits < victim->second.hits) victim = it;
      if (++it == entries_.end()) it = entries_.begin();
    }
    rr_cursor_ = victim->first;
    evict(victim);
  }
  const auto [it, inserted] = entries_.emplace(key, std::move(entry));
  (void)inserted;
  if (const auto h = hooks_.find(key.pid); h != hooks_.end() && h->second.watch) {
    for (const auto& [addr, len] : it->second.ranges) h->second.watch(addr, len);
  }
  ++stats_.inserts;
}

void AscCache::invalidate_write(int pid, std::uint32_t addr, std::uint32_t len) {
  ++stats_.invalidation_writes;
  auto it = entries_.lower_bound(Key{pid, 0, 0, 0});
  while (it != entries_.end() && it->first.pid == pid) {
    bool overlap = false;
    for (const auto& [base, n] : it->second.ranges) {
      if (addr < base + n && base < addr + len) {
        overlap = true;
        break;
      }
    }
    if (overlap) {
      it = evict(it);
    } else {
      ++it;
    }
  }
}

void AscCache::evict_pid(int pid) {
  auto it = entries_.lower_bound(Key{pid, 0, 0, 0});
  while (it != entries_.end() && it->first.pid == pid) {
    it = evict(it);
  }
  // The process is gone; its Memory (which the hooks capture) goes with it.
  drop_range_hooks(pid);
}

void AscCache::clear() {
  for (const auto& [key, entry] : entries_) {
    unwatch_ranges(key, entry);
    ++stats_.evictions;
  }
  entries_.clear();
}

std::size_t AscCache::size(int pid) const {
  std::size_t n = 0;
  for (auto it = entries_.lower_bound(Key{pid, 0, 0, 0});
       it != entries_.end() && it->first.pid == pid; ++it) {
    ++n;
  }
  return n;
}

std::size_t AscCache::approx_bytes() const {
  std::size_t n = 0;
  for (const auto& [key, e] : entries_) {
    n += sizeof(key) + sizeof(e);
    n += e.material.size();
    n += e.preds.size() * sizeof(std::uint32_t);
    n += e.fd_sources.size() * sizeof(std::uint32_t);
    n += e.patterns.size() * sizeof(policy::PatternRef);
    n += e.ranges.size() * sizeof(std::pair<std::uint32_t, std::uint32_t>);
  }
  return n;
}

}  // namespace asc::os
