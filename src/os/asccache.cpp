#include "os/asccache.h"

namespace asc::os {

std::uint64_t fnv1a64(std::uint64_t h, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

const AscCache::Entry* AscCache::lookup(const Key& key, std::uint64_t digest) {
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.digest != digest) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  ++it->second.hits;
  return &it->second;
}

void AscCache::insert(const Key& key, Entry entry) {
  if (entries_.find(key) == entries_.end() && entries_.size() >= capacity_) {
    // Capacity backstop: drop the first entry in key order. Entries are tiny
    // and capacity is generous, so this path is for runaway site counts only.
    entries_.erase(entries_.begin());
    ++stats_.evictions;
  }
  entries_[key] = std::move(entry);
  ++stats_.inserts;
}

void AscCache::invalidate_write(int pid, std::uint32_t addr, std::uint32_t len) {
  ++stats_.invalidation_writes;
  auto it = entries_.lower_bound(Key{pid, 0, 0, 0});
  while (it != entries_.end() && it->first.pid == pid) {
    bool overlap = false;
    for (const auto& [base, n] : it->second.ranges) {
      if (addr < base + n && base < addr + len) {
        overlap = true;
        break;
      }
    }
    if (overlap) {
      it = entries_.erase(it);
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
}

void AscCache::evict_pid(int pid) {
  auto it = entries_.lower_bound(Key{pid, 0, 0, 0});
  while (it != entries_.end() && it->first.pid == pid) {
    it = entries_.erase(it);
    ++stats_.evictions;
  }
}

void AscCache::clear() {
  stats_.evictions += entries_.size();
  entries_.clear();
}

std::size_t AscCache::size(int pid) const {
  std::size_t n = 0;
  for (auto it = entries_.lower_bound(Key{pid, 0, 0, 0});
       it != entries_.end() && it->first.pid == pid; ++it) {
    ++n;
  }
  return n;
}

}  // namespace asc::os
