// The enforcement layer of the trap pipeline: SyscallMonitor, the pluggable
// monitor interface, and the four built-in implementations the benches
// compare (§4.2), extracted from what used to be inline branches of the
// kernel's trap handler:
//
//   NullMonitor        -- no monitoring (the paper's "original" baseline)
//   AscMonitor         -- authenticated system calls (§3.4 checking; the
//                         paper's contribution), wrapping the checker and
//                         the verified-call cache. Every call is checked;
//                         unauthenticated calls are blocked.
//   DaemonMonitor      -- user-space policy daemon baseline (Systrace/Ostia
//                         style): each call costs two extra context switches
//                         plus a policy lookup in the daemon.
//   KernelTableMonitor -- fully in-kernel policy table baseline.
//
// ChainMonitor composes monitors into a pipeline (first violation wins), so
// enforcement policies stack -- e.g. ASC checking plus an extra in-kernel
// allowlist as separate links. Monitors are strategy objects over
// kernel-owned configuration (key, policies, cost model): they hold a
// Kernel reference and read it at inspect time, so configuration order does
// not matter.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "os/process.h"
#include "os/syscalls.h"
#include "os/trapcontext.h"

namespace asc::os {

class Kernel;

/// The classic enforcement-mode selector; maps 1:1 onto the built-in
/// monitors via make_monitor().
enum class Enforcement : std::uint8_t { Off, Asc, Daemon, KernelTable };

std::string enforcement_name(Enforcement e);

/// Policy format used by the two baseline monitors (Daemon / KernelTable):
/// a set of permitted syscall numbers, optionally with path patterns, plus
/// Systrace-style fsread/fswrite aliases.
struct MonitorPolicy {
  std::set<std::uint16_t> allowed;
  std::map<std::uint16_t, std::vector<std::string>> path_patterns;  // empty vec = any path
  bool allow_fsread = false;   // permit every Category::FsRead call
  bool allow_fswrite = false;  // permit every Category::FsWrite call
};

/// What a monitor concluded about one trap.
struct MonitorVerdict {
  Violation violation = Violation::None;
  std::string detail;

  bool allowed() const { return violation == Violation::None; }
};

/// One enforcement monitor: inspects a captured trap before dispatch and
/// returns a verdict. Implementations charge their modeled enforcement cost
/// through the context (so audit timestamps and Table 4/6 cycle counts see
/// it) and must not mutate guest-visible state.
class SyscallMonitor {
 public:
  virtual ~SyscallMonitor() = default;
  virtual std::string name() const = 0;
  virtual MonitorVerdict inspect(Process& p, TrapContext& ctx) = 0;
};

/// No monitoring; allows everything and charges nothing.
class NullMonitor final : public SyscallMonitor {
 public:
  std::string name() const override { return "off"; }
  MonitorVerdict inspect(Process& p, TrapContext& ctx) override;
};

/// Authenticated system calls (§3.4): reconstructs the encoded call, checks
/// the call MAC, string-argument MACs, control-flow policy state, and the
/// §5.1/§5.3 extensions, via the kernel checker and its verified-call
/// cache. Requires the MAC key to be installed.
class AscMonitor final : public SyscallMonitor {
 public:
  explicit AscMonitor(Kernel& kernel) : kernel_(kernel) {}
  std::string name() const override { return "asc"; }
  MonitorVerdict inspect(Process& p, TrapContext& ctx) override;

 private:
  Kernel& kernel_;
};

/// Shared implementation of the two policy-table baselines: per-program
/// syscall allowlist with optional path patterns (and Systrace aliases).
/// Subclasses fix the per-call cost of where the table lives.
class PolicyTableMonitor : public SyscallMonitor {
 public:
  explicit PolicyTableMonitor(Kernel& kernel) : kernel_(kernel) {}
  MonitorVerdict inspect(Process& p, TrapContext& ctx) override;

 protected:
  /// Modeled cost of consulting the policy, charged on every trap.
  virtual std::uint64_t lookup_cycles() const = 0;

  Kernel& kernel_;

 private:
  bool allows(Process& p, const TrapContext& ctx, std::string* why) const;
};

/// User-space policy daemon baseline: two context switches (to the daemon
/// and back) plus the daemon's policy lookup; this is the architecture ASC
/// avoids (§2.3).
class DaemonMonitor final : public PolicyTableMonitor {
 public:
  using PolicyTableMonitor::PolicyTableMonitor;
  std::string name() const override { return "daemon"; }

 protected:
  std::uint64_t lookup_cycles() const override;
};

/// Fully in-kernel policy table baseline: a table lookup per trap.
class KernelTableMonitor final : public PolicyTableMonitor {
 public:
  using PolicyTableMonitor::PolicyTableMonitor;
  std::string name() const override { return "kernel-table"; }

 protected:
  std::uint64_t lookup_cycles() const override;
};

/// Monitor combinator: runs each link in order; the first violation wins
/// and later links do not run (their cost is not charged). An empty chain
/// allows everything.
class ChainMonitor final : public SyscallMonitor {
 public:
  ChainMonitor() = default;
  explicit ChainMonitor(std::vector<std::unique_ptr<SyscallMonitor>> links)
      : links_(std::move(links)) {}
  void add(std::unique_ptr<SyscallMonitor> link) { links_.push_back(std::move(link)); }
  std::size_t size() const { return links_.size(); }
  std::string name() const override;
  MonitorVerdict inspect(Process& p, TrapContext& ctx) override;

 private:
  std::vector<std::unique_ptr<SyscallMonitor>> links_;
};

/// The built-in monitor for an enforcement mode, bound to `kernel`'s
/// configuration (key, policies, cost model, cache).
std::unique_ptr<SyscallMonitor> make_monitor(Enforcement e, Kernel& kernel);

}  // namespace asc::os
