#include "os/tiertable.h"

#include <algorithm>

#include "isa/isa.h"

namespace asc::os {

namespace {

bool overlaps(std::uint32_t a1, std::uint32_t l1, std::uint32_t a2,
              std::uint32_t l2) {
  const std::uint64_t e1 = static_cast<std::uint64_t>(a1) + l1;
  const std::uint64_t e2 = static_cast<std::uint64_t>(a2) + l2;
  return a1 < e2 && a2 < e1;
}

}  // namespace

std::string tier_name(Tier t) {
  switch (t) {
    case Tier::Inline: return "inline";
    case Tier::Shadowed: return "shadowed";
    case Tier::Cached: return "cached";
    case Tier::Eager: return "eager";
  }
  return "?";
}

std::string demotion_cause_name(DemotionCause c) {
  switch (c) {
    case DemotionCause::GuestWrite: return "guest-write";
    case DemotionCause::KeyRotation: return "key-rotation";
    case DemotionCause::Teardown: return "teardown";
    case DemotionCause::HealthDemotion: return "health";
    case DemotionCause::MonitorSwap: return "monitor-swap";
    case DemotionCause::ProbeMismatch: return "probe-mismatch";
    case DemotionCause::Disabled: return "disabled";
    case DemotionCause::kCount: break;
  }
  return "?";
}

bool inline_eligible(SysId id) {
  switch (id) {
    case SysId::Getpid:
    case SysId::Getuid:
    case SysId::Sysconf:
    case SysId::Time:
    case SysId::Gettimeofday:
      return true;
    default:
      return false;
  }
}

void TierTable::set_cache_enabled(bool on) {
  if (!on) demote_all(DemotionCause::Disabled);
  cache_enabled_ = on;
}

void TierTable::set_shadow_enabled(bool on) {
  // The inline probe advances control-flow state through the shadow, so the
  // Inline tier cannot outlive the Shadowed one.
  if (!on) {
    demote_all(DemotionCause::Disabled);
    shadow_.flush_all();
  }
  shadow_enabled_ = on;
}

void TierTable::set_inline_enabled(bool on) {
  if (!on) demote_all(DemotionCause::Disabled);
  inline_enabled_ = on;
}

const TierTable::InlineSite* TierTable::try_inline(Process& p,
                                                   std::uint32_t call_site) {
  if (!inline_enabled_) return nullptr;
  auto it = inline_sites_.find({p.pid, call_site});
  if (it == inline_sites_.end()) return nullptr;
  // A pid below Healthy must never serve from the Inline tier. Health
  // demotion already drops its sites; this gate is belt-and-braces against
  // any ordering where a record survives the transition.
  if (auto h = health_.find(p.pid);
      h != health_.end() && h->second.state != HealthState::Healthy) {
    demote(it, DemotionCause::HealthDemotion);
    return nullptr;
  }
  InlineSite& s = it->second;
  const auto& regs = p.cpu.regs;
  bool match = regs[0] == s.sysno &&
               regs[isa::kRegPolicyDescriptor] == s.descriptor &&
               regs[isa::kRegBlockId] == s.block_id &&
               regs[isa::kRegPredSet] == s.pred_body &&
               regs[isa::kRegStatePtr] == s.state_ptr &&
               regs[isa::kRegCallMac] == s.mac_ptr;
  for (const auto& [idx, val] : s.const_args)
    match = match && regs[idx] == val;
  AscShadow::Entry* sh =
      (match && shadow_enabled_) ? shadow_.peek_mut(p.pid) : nullptr;
  match = match && sh != nullptr && sh->state_ptr == s.state_ptr &&
          sh->counter == p.asc_counter &&
          std::find(s.preds.begin(), s.preds.end(), sh->last_block) !=
              s.preds.end();
  if (!match) {
    // Anything diverging from the promoted snapshot falls back to the full
    // pipeline, which re-verifies every MAC: tamper fail-stops there.
    demote(it, DemotionCause::ProbeMismatch);
    return nullptr;
  }
  // Advance the control-flow state exactly as a Shadowed-tier hit would.
  ++p.asc_counter;
  sh->last_block = s.block_id;
  sh->counter = p.asc_counter;
  sh->dirty = true;
  ++s.hits;
  ++inline_hits_;
  return &s;
}

void TierTable::note_clean_site(Process& p, std::uint32_t call_site,
                                InlineCandidate cand) {
  if (!inline_enabled_ || !inline_eligible(cand.id)) return;
  const SiteKey key{p.pid, call_site};
  if (inline_sites_.count(key)) return;
  // Promotion is reserved for Healthy pids; anything below re-earns its
  // streak only after the health machine re-promotes the pid.
  if (auto h = health_.find(p.pid);
      h != health_.end() && h->second.state != HealthState::Healthy)
    return;
  std::uint32_t& streak = streaks_[key];
  if (++streak < inline_threshold_) return;

  InlineSite site;
  site.sysno = cand.sysno;
  site.id = cand.id;
  site.descriptor = cand.descriptor;
  site.block_id = cand.block_id;
  site.pred_body = cand.pred_body;
  site.state_ptr = cand.state_ptr;
  site.mac_ptr = cand.mac_ptr;
  site.const_args = std::move(cand.const_args);
  site.preds = std::move(cand.preds);
  site.ranges = std::move(cand.ranges);

  // The site holds its OWN refcounted watches on every trusted byte range:
  // cache capacity eviction may unwatch the cache entry's ranges at any
  // time, and the inline tier must not depend on another tier's refs.
  auto [hit, inserted] = hooks_.try_emplace(p.pid);
  if (inserted) {
    hit->second.watch = [&mem = p.mem](std::uint32_t a, std::uint32_t l) {
      mem.watch(a, l);
    };
    hit->second.unwatch = [&mem = p.mem](std::uint32_t a, std::uint32_t l) {
      mem.unwatch(a, l);
    };
  }
  for (const auto& [addr, len] : site.ranges) hit->second.watch(addr, len);
  ensure_write_watch(p);
  inline_sites_.emplace(key, std::move(site));
  streaks_.erase(key);
  ++promotions_;
}

void TierTable::note_unclean(int pid) {
  for (auto it = streaks_.begin(); it != streaks_.end();) {
    if (it->first.first == pid)
      it = streaks_.erase(it);
    else
      ++it;
  }
}

std::map<TierTable::SiteKey, TierTable::InlineSite>::iterator
TierTable::demote(std::map<SiteKey, InlineSite>::iterator it,
                  DemotionCause cause) {
  const int pid = it->first.first;
  if (auto h = hooks_.find(pid); h != hooks_.end() && h->second.unwatch)
    for (const auto& [addr, len] : it->second.ranges)
      h->second.unwatch(addr, len);
  ++demotions_[static_cast<std::size_t>(cause)];
  streaks_.erase(it->first);  // re-promotion is re-earned from zero
  return inline_sites_.erase(it);
}

void TierTable::demote_site(int pid, std::uint32_t call_site,
                            DemotionCause cause) {
  if (auto it = inline_sites_.find({pid, call_site}); it != inline_sites_.end())
    demote(it, cause);
}

void TierTable::demote_pid(int pid, DemotionCause cause) {
  auto it = inline_sites_.lower_bound({pid, 0});
  while (it != inline_sites_.end() && it->first.first == pid)
    it = demote(it, cause);
  note_unclean(pid);
  if (cause == DemotionCause::Teardown) hooks_.erase(pid);
}

void TierTable::demote_all(DemotionCause cause) {
  auto it = inline_sites_.begin();
  while (it != inline_sites_.end()) it = demote(it, cause);
  streaks_.clear();
}

void TierTable::ensure_write_watch(Process& p) {
  if (p.mem.has_write_watch()) return;
  // ONE callback per process, dispatched through the table: the shadow's
  // lazy write-back must land before the cache eviction scan or the inline
  // demotion observe the final bytes, hence the order. Dispatch is
  // unconditional -- gating decides what each tier SERVES, never what it
  // hears about, so enabling a fast path later can't leave it deaf to
  // writes that predate the flip.
  p.mem.set_write_watch([this, pid = p.pid](std::uint32_t addr,
                                            std::uint32_t len) {
    shadow_.invalidate_write(pid, addr, len);
    cache_.invalidate_write(pid, addr, len);
    inline_invalidate_write(pid, addr, len);
  });
}

void TierTable::inline_invalidate_write(int pid, std::uint32_t addr,
                                        std::uint32_t len) {
  auto it = inline_sites_.lower_bound({pid, 0});
  while (it != inline_sites_.end() && it->first.first == pid) {
    bool hit = false;
    for (const auto& [raddr, rlen] : it->second.ranges)
      if (overlaps(raddr, rlen, addr, len)) {
        hit = true;
        break;
      }
    if (hit)
      it = demote(it, DemotionCause::GuestWrite);
    else
      ++it;
  }
}

void TierTable::end_process(int pid) {
  demote_pid(pid, DemotionCause::Teardown);
  shadow_.flush_pid(pid);
  cache_.evict_pid(pid);
  health_.erase(pid);
}

void TierTable::on_key_rotation() {
  demote_all(DemotionCause::KeyRotation);
  // Still under the OLD key here: dirty shadow records write back under the
  // key that verified them, then nothing survives the rotation.
  shadow_.flush_all();
  cache_.clear();
}

std::size_t TierTable::inline_sites(int pid) const {
  std::size_t n = 0;
  for (auto it = inline_sites_.lower_bound({pid, 0});
       it != inline_sites_.end() && it->first.first == pid; ++it)
    ++n;
  return n;
}

const TierTable::InlineSite* TierTable::peek_inline(
    int pid, std::uint32_t call_site) const {
  auto it = inline_sites_.find({pid, call_site});
  return it == inline_sites_.end() ? nullptr : &it->second;
}

TierStats TierTable::stats() const {
  TierStats s;
  s.eager = eager_;
  s.cached = cache_.stats().hits;
  s.shadowed = shadow_.stats().hits;
  s.inline_hits = inline_hits_;
  s.cache_misses = cache_.stats().misses;
  s.shadow_misses = shadow_.stats().misses;
  s.promotions = promotions_;
  s.demotions = demotions_;
  return s;
}

void TierTable::reset_stats() {
  eager_ = 0;
  inline_hits_ = 0;
  promotions_ = 0;
  demotions_.fill(0);
}

std::size_t TierTable::approx_bytes() const {
  std::size_t n = cache_.approx_bytes() +
                  shadow_.size() * (sizeof(int) + sizeof(AscShadow::Entry)) +
                  health_.size() * (sizeof(int) + sizeof(HealthRecord));
  for (const auto& [key, site] : inline_sites_) {
    n += sizeof(key) + sizeof(site);
    n += site.const_args.size() * sizeof(site.const_args[0]);
    n += site.preds.size() * sizeof(std::uint32_t);
    n += site.ranges.size() * sizeof(site.ranges[0]);
  }
  n += streaks_.size() * (sizeof(SiteKey) + sizeof(std::uint32_t));
  return n;
}

}  // namespace asc::os
