// Per-process health states: self-healing quarantine of the fast paths.
//
// The paper's security argument is fail-stop on guest tamper, but the kernel
// now carries mutable trust-critical bookkeeping of its OWN (the verified-
// call cache, the policy-state shadow, their watch ranges). A detected
// inconsistency in that bookkeeping is not evidence of guest tampering -- it
// is evidence the monitor's fast-path state can no longer be trusted. Fail-
// stopping the guest for a monitor-side defect would punish the wrong party;
// trusting the suspect state would be unsound. The health machine takes the
// third road: degrade that pid to a slower-but-sound verification path.
//
// The degradation lattice (fast to slow, each level strictly more eager):
//
//   Healthy     -> verified-call cache + policy-state shadow (both fast paths)
//   Degraded    -> verified-call cache only; every control-flow check runs
//                  the eager 3.1-3.5 protocol against guest memory
//   Quarantined -> full eager verification, every MAC on every call
//   (fail-stop) -> reserved for GENUINE guest tamper, at any health level
//
// Transitions: an internal fault (shadow/cache self-check mismatch, or an
// external invariant oracle reporting through Kernel::report_internal_fault)
// demotes one level and evicts the pid's fast-path state. Re-promotion is
// earned: K consecutive clean eager verifications lift Quarantined back to
// Degraded, and another promote-threshold clean verifications lift Degraded
// to Healthy. Each re-entry into Quarantined doubles K (exponential backoff,
// capped), so a flapping pid converges to eager verification instead of
// oscillating. All transitions are audited (AuditKind::Health); the faults
// themselves are AuditKind::InternalFault and never touch the process's
// violation budget -- only the enforcement layer's verdicts do that.
#pragma once

#include <cstdint>
#include <string>

namespace asc::os {

enum class HealthState : std::uint8_t {
  Healthy,      // all fast paths enabled
  Degraded,     // policy-state shadow gated off
  Quarantined,  // all fast paths gated off: full eager verification
};

inline std::string health_state_name(HealthState s) {
  switch (s) {
    case HealthState::Healthy: return "healthy";
    case HealthState::Degraded: return "degraded";
    case HealthState::Quarantined: return "quarantined";
  }
  return "?";
}

/// One pid's health. Kept by the kernel for the life of the process (erased
/// at end_process); `quarantines` survives re-promotion so backoff deepens
/// across repeated quarantine entries.
struct HealthRecord {
  HealthState state = HealthState::Healthy;
  std::uint32_t clean_streak = 0;     // consecutive clean verifications
  std::uint32_t promote_after = 0;    // streak needed to leave Quarantined
  std::uint32_t quarantines = 0;      // times Quarantined was entered
  std::uint64_t internal_faults = 0;  // internal inconsistencies observed
};

/// Kernel-wide counters across all pids (inspection/stats surface; a pid's
/// record dies with it, these do not).
struct HealthStats {
  std::uint64_t internal_faults = 0;  // all internal faults, any state
  std::uint64_t degradations = 0;     // Healthy -> Degraded transitions
  std::uint64_t quarantines = 0;      // entries into Quarantined
  std::uint64_t repromotions = 0;     // Quarantined -> Degraded (earned)
  std::uint64_t recoveries = 0;       // Degraded -> Healthy (earned)
};

}  // namespace asc::os
