// In-memory simulated filesystem.
//
// Provides the substrate for the syscall-intensive benchmarks (Table 5/6, the
// Andrew-style multiprogram benchmark) and for the filename-normalization
// extension (§5.4): directories, regular files, symbolic links, permissions,
// and full path resolution with symlink following and `.`/`..` handling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace asc::os {

enum class NodeKind : std::uint8_t { Dir, File, Symlink };

struct StatInfo {
  NodeKind kind = NodeKind::File;
  std::uint32_t size = 0;
  std::uint32_t mode = 0644;
  std::uint32_t inode = 0;
};

class SimFs {
 public:
  SimFs();

  // All paths may be relative; `cwd` must be absolute. Errors are returned
  // as negative errno-style codes (see kErr* below); successes >= 0.

  /// Create/open checks. Returns inode id (>=0) or error.
  /// flags: kRdOnly/kWrOnly/kRdWr | kCreat | kTrunc | kAppend.
  std::int64_t open(const std::string& cwd, const std::string& path, std::uint32_t flags,
                    std::uint32_t mode);

  std::int64_t read(std::uint32_t inode, std::uint32_t offset, std::uint32_t n,
                    std::vector<std::uint8_t>& out);
  std::int64_t write(std::uint32_t inode, std::uint32_t offset,
                     const std::vector<std::uint8_t>& bytes, bool append);
  std::int64_t truncate(std::uint32_t inode, std::uint32_t len);
  std::optional<StatInfo> stat_inode(std::uint32_t inode) const;

  std::int64_t mkdir(const std::string& cwd, const std::string& path, std::uint32_t mode);
  std::int64_t rmdir(const std::string& cwd, const std::string& path);
  std::int64_t unlink(const std::string& cwd, const std::string& path);
  std::int64_t rename(const std::string& cwd, const std::string& from, const std::string& to);
  std::int64_t symlink(const std::string& cwd, const std::string& target, const std::string& linkpath);
  std::int64_t chmod(const std::string& cwd, const std::string& path, std::uint32_t mode);
  std::int64_t access(const std::string& cwd, const std::string& path);
  std::optional<StatInfo> stat(const std::string& cwd, const std::string& path) const;
  std::optional<std::string> readlink(const std::string& cwd, const std::string& path) const;
  std::optional<std::vector<std::string>> list_dir(const std::string& cwd, const std::string& path) const;

  /// True if `path` resolves to an existing directory (used by chdir).
  bool is_dir(const std::string& cwd, const std::string& path) const;

  /// Canonical absolute path of a live inode (directory fds use this).
  std::optional<std::string> path_of_inode(std::uint32_t inode) const;

  /// Resolve to a normalized absolute path with all symlinks followed
  /// (the §5.4 "normalized file name"). nullopt when resolution fails.
  /// When `parent_only` is set, the final component is not required to exist
  /// (and a final-component symlink is NOT followed) -- open(O_CREAT),
  /// unlink, etc. use this.
  std::optional<std::string> normalize(const std::string& cwd, const std::string& path,
                                       bool parent_only = false) const;

  // errno-style codes
  static constexpr std::int64_t kErrNoEnt = -2;
  static constexpr std::int64_t kErrIsDir = -21;
  static constexpr std::int64_t kErrNotDir = -20;
  static constexpr std::int64_t kErrExist = -17;
  static constexpr std::int64_t kErrNotEmpty = -39;
  static constexpr std::int64_t kErrLoop = -40;
  static constexpr std::int64_t kErrInval = -22;
  static constexpr std::int64_t kErrBadf = -9;

  // open() flags
  static constexpr std::uint32_t kRdOnly = 0;
  static constexpr std::uint32_t kWrOnly = 1;
  static constexpr std::uint32_t kRdWr = 2;
  static constexpr std::uint32_t kAccMask = 3;
  static constexpr std::uint32_t kCreat = 0x40;
  static constexpr std::uint32_t kTrunc = 0x200;
  static constexpr std::uint32_t kAppend = 0x400;

 private:
  struct Node {
    NodeKind kind = NodeKind::File;
    std::uint32_t mode = 0644;
    std::uint32_t inode = 0;
    std::vector<std::uint8_t> content;          // File
    std::string target;                         // Symlink
    std::map<std::string, std::uint32_t> entries;  // Dir: name -> inode
  };

  Node* node(std::uint32_t inode);
  const Node* node(std::uint32_t inode) const;

  /// Walk `path` from `cwd`. Returns inode of the result, or error. With
  /// `parent_only`, returns the inode of the parent directory and stores the
  /// final component name in `*leaf` (final symlinks not followed).
  std::int64_t walk(const std::string& cwd, const std::string& path, bool parent_only,
                    std::string* leaf, int depth = 0) const;

  std::uint32_t new_node(NodeKind kind, std::uint32_t mode);

  std::map<std::uint32_t, Node> nodes_;
  std::uint32_t next_inode_ = 1;
};

/// Split a path into components, dropping empty ones ("a//b" == "a/b").
std::vector<std::string> split_path(const std::string& path);

}  // namespace asc::os
