// TrapContext -- the first-class value threaded through the staged trap
// pipeline (trap -> enforce -> dispatch -> audit).
//
// One TrapContext is captured per trap and lives on the trap handler's
// stack, so nested traps (a Spawn syscall running a child to completion in
// the middle of the parent's trap) each get their own context by
// construction: nothing about the in-flight call is kernel-global state.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "os/process.h"
#include "os/syscalls.h"

namespace asc::os {

/// The four stage boundaries of the trap pipeline, in execution order. The
/// kernel's stage hook (Kernel::set_stage_hook) fires at each boundary with
/// the in-flight context -- the seams where lifecycle chaos (key rotation,
/// teardown, double invalidation) can be injected mid-trap. A killed trap
/// ends at Enforce; Dispatch and Audit fire only for calls that proceed.
enum class TrapStage : std::uint8_t {
  Trap,      // context captured, before the monitor inspects
  Enforce,   // monitor verdict in hand, before the failure mode applies
  Dispatch,  // syscall handler returned, result in r0
  Audit,     // trap complete (trace recorded), about to return to the guest
};

inline std::string trap_stage_name(TrapStage s) {
  switch (s) {
    case TrapStage::Trap: return "trap";
    case TrapStage::Enforce: return "enforce";
    case TrapStage::Dispatch: return "dispatch";
    case TrapStage::Audit: return "audit";
  }
  return "?";
}

struct TrapContext {
  // ---- captured by the trap layer ----
  int pid = 0;
  std::uint16_t sysno = 0;    // raw trapping number; what audit records cite
  std::uint32_t call_site = 0;  // address of the trapping SYSCALL instruction
  std::array<std::uint32_t, kMaxSyscallArgs> args{};  // r1..r5 at trap time
  std::optional<SysId> id;    // resolved identity; nullopt = unknown number

  // ---- filled by the dispatch layer ----
  // Identity/arguments after __syscall indirection (BsdSim's route to mmap):
  // equal to the raw capture for direct calls, shifted one slot for indirect
  // ones. The trace records these; audit records keep the raw view above.
  SysId effective_id = SysId::Exit;
  std::uint16_t effective_sysno = 0;
  std::array<std::uint32_t, kMaxSyscallArgs> effective_args{};

  /// Resolved first PathIn argument, filled when a layer reads it (tracing,
  /// baseline-monitor path policies).
  std::string path;

  // ---- verdict of the enforcement layer ----
  Violation verdict = Violation::None;
  std::string verdict_detail;

  /// Modeled cycles charged against the process during this trap.
  std::uint64_t charged = 0;

  /// Charge modeled cycles for work done on behalf of this trap.
  void charge(Process& p, std::uint64_t cycles) {
    p.cycles += cycles;
    charged += cycles;
  }
};

}  // namespace asc::os
