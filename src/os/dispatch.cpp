// Dispatch layer of the staged trap pipeline (see os/kernel.h): the syscall
// handlers. Identity and arguments come from the TrapContext captured by the
// trap layer -- handlers never read kernel-global trap state, so nested
// traps (Spawn running a child mid-call) are safe by construction.
#include <algorithm>

#include "os/kernel.h"

namespace asc::os {

std::string Kernel::read_path(Process& p, std::uint32_t addr) {
  return p.mem.read_cstr(addr, 4096);
}

std::int64_t Kernel::sys_open(Process& p, const TrapContext& ctx) {
  const auto& a = ctx.effective_args;
  const std::string path = read_path(p, a[0]);
  const std::int64_t ino = fs_.open(p.cwd, path, a[1], a[2] & ~p.umask);
  if (ino < 0) return ino;
  const std::int32_t fd = p.alloc_fd();
  if (fd < 0) return SimFs::kErrBadf;
  FdEntry& e = p.fds[static_cast<std::size_t>(fd)];
  e.kind = FdEntry::Kind::File;
  e.inode = static_cast<std::uint32_t>(ino);
  e.offset = 0;
  e.flags = a[1];
  e.origin_block = p.cpu.regs[isa::kRegBlockId];
  return fd;
}

std::int64_t Kernel::sys_read(Process& p, TrapContext& ctx,
                              const std::array<std::uint32_t, kMaxSyscallArgs>& a) {
  FdEntry* e = p.fd(a[0]);
  if (e == nullptr) return SimFs::kErrBadf;
  const std::uint32_t n = a[2];
  std::vector<std::uint8_t> buf;
  std::int64_t got = 0;
  switch (e->kind) {
    case FdEntry::Kind::Stdin: {
      const std::size_t avail = p.stdin_data.size() - p.stdin_pos;
      const std::size_t take = std::min<std::size_t>(n, avail);
      buf.assign(p.stdin_data.begin() + static_cast<std::ptrdiff_t>(p.stdin_pos),
                 p.stdin_data.begin() + static_cast<std::ptrdiff_t>(p.stdin_pos + take));
      p.stdin_pos += take;
      got = static_cast<std::int64_t>(take);
      break;
    }
    case FdEntry::Kind::File: {
      got = fs_.read(e->inode, e->offset, n, buf);
      if (got > 0) e->offset += static_cast<std::uint32_t>(got);
      break;
    }
    case FdEntry::Kind::Socket:
    case FdEntry::Kind::Pipe:
      got = 0;  // nothing to receive in the simulation
      break;
    default:
      return SimFs::kErrBadf;
  }
  if (got > 0) p.mem.write_bytes(a[1], buf);
  ctx.charge(p, static_cast<std::uint64_t>(static_cast<double>(std::max<std::int64_t>(got, 0)) *
                                           cost_.read_per_byte));
  return got;
}

std::int64_t Kernel::sys_write(Process& p, TrapContext& ctx,
                               const std::array<std::uint32_t, kMaxSyscallArgs>& a) {
  FdEntry* e = p.fd(a[0]);
  if (e == nullptr) return SimFs::kErrBadf;
  const std::uint32_t n = a[2];
  const std::vector<std::uint8_t> buf = p.mem.read_bytes(a[1], n);
  std::int64_t wrote = 0;
  switch (e->kind) {
    case FdEntry::Kind::Stdout:
      p.stdout_data.append(buf.begin(), buf.end());
      wrote = n;
      break;
    case FdEntry::Kind::Stderr:
      p.stderr_data.append(buf.begin(), buf.end());
      wrote = n;
      break;
    case FdEntry::Kind::File: {
      wrote = fs_.write(e->inode, e->offset, buf, (e->flags & SimFs::kAppend) != 0);
      if (wrote > 0) e->offset += static_cast<std::uint32_t>(wrote);
      break;
    }
    case FdEntry::Kind::Socket:
      log_event(p, ctx, AuditKind::Net, "send " + std::to_string(n) + " bytes");
      wrote = n;
      break;
    case FdEntry::Kind::Pipe:
      wrote = n;
      break;
    default:
      return SimFs::kErrBadf;
  }
  ctx.charge(p,
             static_cast<std::uint64_t>(static_cast<double>(std::max<std::int64_t>(wrote, 0)) *
                                        cost_.write_per_byte));
  return wrote;
}

std::int64_t Kernel::dispatch(Process& p, TrapContext& ctx) {
  const SysId id = ctx.effective_id;
  const auto& a = ctx.effective_args;
  switch (id) {
    case SysId::Exit:
      p.running = false;
      p.exit_code = static_cast<std::int32_t>(a[0]);
      return 0;
    case SysId::Read:
      return sys_read(p, ctx, a);
    case SysId::Write:
      return sys_write(p, ctx, a);
    case SysId::Open:
      return sys_open(p, ctx);
    case SysId::Close: {
      FdEntry* e = p.fd(a[0]);
      if (e == nullptr) return SimFs::kErrBadf;
      e->kind = FdEntry::Kind::Closed;
      return 0;
    }
    case SysId::Unlink:
      return fs_.unlink(p.cwd, read_path(p, a[0]));
    case SysId::Rename:
      return fs_.rename(p.cwd, read_path(p, a[0]), read_path(p, a[1]));
    case SysId::Mkdir:
      return fs_.mkdir(p.cwd, read_path(p, a[0]), a[1]);
    case SysId::Rmdir:
      return fs_.rmdir(p.cwd, read_path(p, a[0]));
    case SysId::Chdir: {
      const std::string path = read_path(p, a[0]);
      if (!fs_.is_dir(p.cwd, path)) return SimFs::kErrNotDir;
      if (auto norm = fs_.normalize(p.cwd, path)) {
        p.cwd = *norm;
        return 0;
      }
      return SimFs::kErrNoEnt;
    }
    case SysId::Getcwd: {
      const std::string& cwd = p.cwd;
      if (cwd.size() + 1 > a[1]) return SimFs::kErrInval;
      std::vector<std::uint8_t> bytes(cwd.begin(), cwd.end());
      bytes.push_back(0);
      p.mem.write_bytes(a[0], bytes);
      return static_cast<std::int64_t>(cwd.size());
    }
    case SysId::Stat: {
      const auto st = fs_.stat(p.cwd, read_path(p, a[0]));
      if (!st.has_value()) return SimFs::kErrNoEnt;
      p.mem.w32(a[1], static_cast<std::uint32_t>(st->kind));
      p.mem.w32(a[1] + 4, st->size);
      p.mem.w32(a[1] + 8, st->mode);
      p.mem.w32(a[1] + 12, st->inode);
      return 0;
    }
    case SysId::Fstat:
    case SysId::Fstatfs: {
      FdEntry* e = p.fd(a[0]);
      if (e == nullptr) return SimFs::kErrBadf;
      StatInfo st{};
      if (e->kind == FdEntry::Kind::File) {
        const auto s = fs_.stat_inode(e->inode);
        if (s.has_value()) st = *s;
      }
      p.mem.w32(a[1], static_cast<std::uint32_t>(st.kind));
      p.mem.w32(a[1] + 4, st.size);
      p.mem.w32(a[1] + 8, st.mode);
      p.mem.w32(a[1] + 12, st.inode);
      return 0;
    }
    case SysId::Lseek: {
      FdEntry* e = p.fd(a[0]);
      if (e == nullptr || e->kind != FdEntry::Kind::File) return SimFs::kErrBadf;
      const auto st = fs_.stat_inode(e->inode);
      const std::int32_t off = static_cast<std::int32_t>(a[1]);
      std::int64_t base = 0;
      switch (a[2]) {
        case 0: base = 0; break;                              // SEEK_SET
        case 1: base = e->offset; break;                      // SEEK_CUR
        case 2: base = st.has_value() ? st->size : 0; break;  // SEEK_END
        default: return SimFs::kErrInval;
      }
      const std::int64_t pos = base + off;
      if (pos < 0) return SimFs::kErrInval;
      e->offset = static_cast<std::uint32_t>(pos);
      return pos;
    }
    case SysId::Dup: {
      FdEntry* e = p.fd(a[0]);
      if (e == nullptr) return SimFs::kErrBadf;
      const FdEntry copy = *e;  // copy before alloc_fd may reallocate
      const std::int32_t nfd = p.alloc_fd();
      if (nfd < 0) return SimFs::kErrBadf;
      p.fds[static_cast<std::size_t>(nfd)] = copy;
      return nfd;
    }
    case SysId::Brk: {
      const std::uint32_t want = a[0];
      if (want == 0) return p.brk_end;
      if (want < binary::kHeapBase || want >= p.mmap_cursor) return SimFs::kErrInval;
      p.brk_end = want;
      return p.brk_end;
    }
    case SysId::Getpid:
      return p.pid;
    case SysId::Getuid:
      return 1000;
    case SysId::Gettimeofday: {
      const std::uint64_t ns = vtime_ns_ + p.cycles;  // 1 cycle ~ 1 ns
      if (a[0] != 0) {
        p.mem.w32(a[0], static_cast<std::uint32_t>(ns / 1'000'000'000));
        p.mem.w32(a[0] + 4, static_cast<std::uint32_t>(ns % 1'000'000'000 / 1000));
      }
      return 0;
    }
    case SysId::Time: {
      const std::uint32_t secs =
          static_cast<std::uint32_t>((vtime_ns_ + p.cycles) / 1'000'000'000);
      if (a[0] != 0) p.mem.w32(a[0], secs);
      return secs;
    }
    case SysId::Nanosleep: {
      if (a[0] != 0) {
        const std::uint32_t sec = p.mem.r32(a[0]);
        const std::uint32_t nsec = p.mem.r32(a[0] + 4);
        vtime_ns_ += static_cast<std::uint64_t>(sec) * 1'000'000'000 + nsec;
      }
      return 0;
    }
    case SysId::Kill:
      log_event(p, ctx, AuditKind::Signal,
                "pid=" + std::to_string(a[0]) + " sig=" + std::to_string(a[1]));
      return 0;
    case SysId::Sigaction:
      return 0;
    case SysId::Socket: {
      const std::int32_t fd = p.alloc_fd();
      if (fd < 0) return SimFs::kErrBadf;
      FdEntry& e = p.fds[static_cast<std::size_t>(fd)];
      e.kind = FdEntry::Kind::Socket;
      e.origin_block = p.cpu.regs[isa::kRegBlockId];
      return fd;
    }
    case SysId::Connect:
      return p.fd(a[0]) != nullptr ? 0 : SimFs::kErrBadf;
    case SysId::Sendto: {
      FdEntry* e = p.fd(a[0]);
      if (e == nullptr || e->kind != FdEntry::Kind::Socket) return SimFs::kErrBadf;
      log_event(p, ctx, AuditKind::Net, "sendto " + std::to_string(a[2]) + " bytes");
      ctx.charge(p, static_cast<std::uint64_t>(static_cast<double>(a[2]) * cost_.write_per_byte));
      return a[2];
    }
    case SysId::Recvfrom:
      return p.fd(a[0]) != nullptr ? 0 : SimFs::kErrBadf;
    case SysId::Fcntl:
      return p.fd(a[0]) != nullptr ? 0 : SimFs::kErrBadf;
    case SysId::Readlink: {
      const auto target = fs_.readlink(p.cwd, read_path(p, a[0]));
      if (!target.has_value()) return SimFs::kErrNoEnt;
      const std::uint32_t n =
          std::min<std::uint32_t>(a[2], static_cast<std::uint32_t>(target->size()));
      p.mem.write_bytes(a[1], std::vector<std::uint8_t>(target->begin(), target->begin() + n));
      return n;
    }
    case SysId::Symlink:
      return fs_.symlink(p.cwd, read_path(p, a[0]), read_path(p, a[1]));
    case SysId::Chmod:
      return fs_.chmod(p.cwd, read_path(p, a[0]), a[1]);
    case SysId::Access:
      return fs_.access(p.cwd, read_path(p, a[0]));
    case SysId::Ftruncate: {
      FdEntry* e = p.fd(a[0]);
      if (e == nullptr || e->kind != FdEntry::Kind::File) return SimFs::kErrBadf;
      return fs_.truncate(e->inode, a[1]);
    }
    case SysId::Getdirentries: {
      FdEntry* e = p.fd(a[0]);
      if (e == nullptr || e->kind != FdEntry::Kind::File) return SimFs::kErrBadf;
      // Directory fds: inode refers to a dir. List names NUL-separated.
      const auto st = fs_.stat_inode(e->inode);
      if (!st.has_value() || st->kind != NodeKind::Dir) return SimFs::kErrNotDir;
      std::vector<std::string> names;
      if (auto dpath = fs_.path_of_inode(e->inode)) {
        if (auto lst = fs_.list_dir("/", *dpath)) names = *lst;
      }
      std::vector<std::uint8_t> out;
      for (const auto& nme : names) {
        for (char c : nme) out.push_back(static_cast<std::uint8_t>(c));
        out.push_back(0);
      }
      if (e->offset >= out.size()) return 0;
      const std::uint32_t take =
          std::min<std::uint32_t>(a[2], static_cast<std::uint32_t>(out.size()) - e->offset);
      p.mem.write_bytes(a[1], std::span<const std::uint8_t>(out.data() + e->offset, take));
      e->offset += take;
      return take;
    }
    case SysId::Uname: {
      const std::string s = personality_ == Personality::LinuxSim ? "LinuxSim 2.4-asc"
                                                                  : "BsdSim 3.4-asc";
      std::vector<std::uint8_t> bytes(s.begin(), s.end());
      bytes.push_back(0);
      p.mem.write_bytes(a[0], bytes);
      return 0;
    }
    case SysId::Sysconf:
      switch (a[0]) {
        case 1: return 4096;  // page size
        case 2: return 256;   // open max
        default: return SimFs::kErrInval;
      }
    case SysId::Madvise:
      return 0;
    case SysId::Mmap: {
      const std::uint32_t len = (a[1] + 4095u) & ~4095u;
      if (len == 0 || len > p.mmap_cursor - p.brk_end) return SimFs::kErrInval;
      p.mmap_cursor -= len;
      return p.mmap_cursor;
    }
    case SysId::Munmap:
      return 0;
    case SysId::Writev: {
      // iov = array of {ptr, len}; cnt = a[2]
      std::int64_t total = 0;
      for (std::uint32_t i = 0; i < a[2]; ++i) {
        const std::uint32_t ptr = p.mem.r32(a[1] + 8 * i);
        const std::uint32_t len = p.mem.r32(a[1] + 8 * i + 4);
        const std::int64_t w = sys_write(p, ctx, {a[0], ptr, len, 0, 0});
        if (w < 0) return w;
        total += w;
      }
      return total;
    }
    case SysId::Umask: {
      const std::uint32_t old = p.umask;
      p.umask = a[0] & 0777;
      return old;
    }
    case SysId::Ioctl:
      return p.fd(a[0]) != nullptr ? 0 : SimFs::kErrBadf;
    case SysId::Spawn: {
      const std::string path = read_path(p, a[0]);
      // a[1], when nonzero, points to a block of NUL-terminated argument
      // strings ending with an empty string.
      std::vector<std::string> argv;
      if (a[1] != 0) {
        std::uint32_t cursor = a[1];
        for (int guard = 0; guard < 64; ++guard) {
          const std::string s = p.mem.read_cstr(cursor, 4096);
          if (s.empty()) break;
          argv.push_back(s);
          cursor += static_cast<std::uint32_t>(s.size()) + 1;
        }
      }
      std::string joined = path;
      for (const auto& s : argv) joined += " " + s;
      log_event(p, ctx, AuditKind::Spawn, joined);
      if (!spawn_) return SimFs::kErrNoEnt;
      // Re-enters the pipeline for every child trap; the child's contexts
      // stack below this one, leaving `ctx` untouched.
      return spawn_(p, path, argv);
    }
    case SysId::Pipe: {
      const std::int32_t r = p.alloc_fd();
      if (r < 0) return SimFs::kErrBadf;
      p.fds[static_cast<std::size_t>(r)].kind = FdEntry::Kind::Pipe;
      const std::int32_t w = p.alloc_fd();
      if (w < 0) return SimFs::kErrBadf;
      p.fds[static_cast<std::size_t>(w)].kind = FdEntry::Kind::Pipe;
      p.mem.w32(a[0], static_cast<std::uint32_t>(r));
      p.mem.w32(a[0] + 4, static_cast<std::uint32_t>(w));
      return 0;
    }
    case SysId::SyscallIndirect:
      return SimFs::kErrInval;  // resolved by the trap layer before dispatch
    case SysId::kCount:
      break;
  }
  return SimFs::kErrInval;
}

}  // namespace asc::os
