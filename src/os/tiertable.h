// The tiered verification lattice: one table unifying every per-(pid, site)
// fast-path mechanism of the kernel.
//
// Before this table the kernel grew three parallel per-(pid, site)
// mechanisms, each with its own eviction paths and write-watch wiring: the
// verified-call cache (os/asccache.h), the policy-state shadow
// (os/ascshadow.h), and the per-pid health quarantine (os/health.h). The
// TierTable folds them into ONE promotion/demotion lattice over four tiers,
// fast to slow:
//
//   Inline    -> pre-authorized trap-less check: the whole
//                trap->enforce->dispatch->audit pipeline is skipped for a
//                site that earned promotion (see below)
//   Shadowed  -> verified-call cache + policy-state shadow (both fast paths)
//   Cached    -> verified-call cache only (eager §3.2 control-flow protocol)
//   Eager     -> full verification, every MAC on every call
//
// A (pid, site) starts Eager, climbs as the cache and shadow warm up, and --
// when the inline tier is enabled -- earns Inline after N consecutive clean
// Shadowed verifications of a side-effect-light syscall
// (getpid/gettimeofday-class: no authenticated-string arguments, no
// patterns, no fd capabilities, a control-flow-constrained descriptor). The
// per-pid health machine is the demotion half of the same lattice: an
// internal fault demotes every site of the pid one tier floor down
// (Healthy = all tiers, Degraded = at most Cached, Quarantined = Eager).
//
// One invalidation spine. All three mechanisms are invalidated by the SAME
// event set, so the table installs exactly ONE vm::Memory write-watch
// callback per process and dispatches it to every tier: the shadow first
// (its lazy write-back must land before anything else scans the final
// bytes), then the cache, then the inline sites. The previous design
// installed the callback with the cache/shadow pointers frozen at the first
// verification -- a fast path enabled later could be left without
// invalidation; the spine dispatches through the table itself, so gating
// changes can never orphan a mechanism.
//
// Why inline execution cannot outlive a tamper (the trust argument, in
// full in DESIGN.md): a promoted site snapshots every input the full
// pipeline would verify -- the policy operand registers, constrained
// argument values, the decoded predecessor set, and the guest byte ranges
// backing the call MAC, the predecessor-set blob, and the policy-state
// record. The byte ranges are registered with the site's OWN refcounted
// write watches, so any guest write into them demotes the site BEFORE the
// write lands; the probe additionally requires the kernel-resident shadow
// nonce to equal the process's authoritative counter and the shadow's
// lastBlock to be in the snapshotted predecessor set. Key rotation,
// teardown/exec, health demotion, monitor swap, and fast-path gate-off all
// demote through the same table methods the cache and shadow already use.
// Any probe mismatch demotes and falls back to the full pipeline, which
// re-verifies everything -- so the inline tier can buy cycles, never
// soundness.
//
// "Trap-less" means the enforcement pipeline is bypassed; the modeled trap
// cost is still charged (the simulated CPU has no trampoline to patch), so
// the Table 4 inline column reports the honest residual overhead of the
// pre-authorized check itself.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "os/asccache.h"
#include "os/ascshadow.h"
#include "os/health.h"
#include "os/process.h"
#include "os/syscalls.h"

namespace asc::os {

/// The verification tiers, fastest first (display/ordering surface; a site's
/// effective tier is derived from which mechanisms currently hold it).
enum class Tier : std::uint8_t { Inline, Shadowed, Cached, Eager };

std::string tier_name(Tier t);

/// Why an inline site (or a whole pid / the whole table) was demoted. The
/// spine guarantees these are the ONLY events that can revoke a promotion.
enum class DemotionCause : std::uint8_t {
  GuestWrite,      // guest wrote into the call bytes or the state record
  KeyRotation,     // Kernel::set_key: no prior verification survives
  Teardown,        // process teardown / exec (Kernel::end_process)
  HealthDemotion,  // per-pid health machine left Healthy
  MonitorSwap,     // enforcement monitor replaced mid-run
  ProbeMismatch,   // inline probe saw registers/shadow diverge from snapshot
  Disabled,        // a fast-path gate was switched off at runtime
  kCount,
};

inline constexpr std::size_t kNumDemotionCauses =
    static_cast<std::size_t>(DemotionCause::kCount);

std::string demotion_cause_name(DemotionCause c);

/// The aligned per-tier counters `asctool run --stats` renders: one row per
/// tier plus the promotion/demotion flow between them.
struct TierStats {
  std::uint64_t eager = 0;     // completed full verifications (no fast path)
  std::uint64_t cached = 0;    // verified-call cache hits
  std::uint64_t shadowed = 0;  // policy-state shadow hits
  std::uint64_t inline_hits = 0;  // trap-less pre-authorized executions
  std::uint64_t cache_misses = 0;
  std::uint64_t shadow_misses = 0;
  std::uint64_t promotions = 0;  // sites that earned the Inline tier
  std::array<std::uint64_t, kNumDemotionCauses> demotions{};

  std::uint64_t demotions_total() const {
    std::uint64_t n = 0;
    for (const auto d : demotions) n += d;
    return n;
  }
};

/// One kernel's tier lattice: owns the verified-call cache, the policy-state
/// shadow, the per-pid health map, and the inline-site table, plus the ONE
/// write-watch spine that invalidates all of them. os::TenantState holds
/// exactly one TierTable per tenant.
class TierTable {
 public:
  /// Everything the inline probe re-checks against live trap state. The
  /// snapshot is taken at promotion time from a fully verified Shadowed-tier
  /// trap; `ranges` are the guest byte ranges backing the trusted inputs,
  /// registered as this site's own refcounted write watches.
  struct InlineSite {
    std::uint16_t sysno = 0;
    SysId id = SysId::Getpid;
    std::uint32_t descriptor = 0;
    std::uint32_t block_id = 0;
    std::uint32_t pred_body = 0;
    std::uint32_t state_ptr = 0;
    std::uint32_t mac_ptr = 0;
    /// {argument register index (1-based), expected value} for every
    /// descriptor-constrained argument.
    std::vector<std::pair<std::uint8_t, std::uint32_t>> const_args;
    std::vector<std::uint32_t> preds;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;  // {addr, len}
    std::uint64_t hits = 0;
  };

  using SiteKey = std::pair<int, std::uint32_t>;  // {pid, call_site}

  /// Promotion evidence the checker hands over after a fully clean
  /// Shadowed-tier verification of an inline-eligible call.
  struct InlineCandidate {
    std::uint16_t sysno = 0;
    SysId id = SysId::Getpid;
    std::uint32_t descriptor = 0;
    std::uint32_t block_id = 0;
    std::uint32_t pred_body = 0;
    std::uint32_t state_ptr = 0;
    std::uint32_t mac_ptr = 0;
    std::vector<std::pair<std::uint8_t, std::uint32_t>> const_args;
    std::vector<std::uint32_t> preds;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  };

  // ---- the Cached tier ----
  AscCache& cache() { return cache_; }
  const AscCache& cache() const { return cache_; }
  void set_cache_enabled(bool on);
  bool cache_enabled() const { return cache_enabled_; }

  // ---- the Shadowed tier ----
  AscShadow& shadow() { return shadow_; }
  const AscShadow& shadow() const { return shadow_; }
  void set_shadow_enabled(bool on);
  bool shadow_enabled() const { return shadow_enabled_; }

  // ---- the health half of the lattice (per-pid demotion floor) ----
  std::map<int, HealthRecord>& health() { return health_; }
  const std::map<int, HealthRecord>& health() const { return health_; }
  HealthStats& health_stats() { return health_stats_; }
  const HealthStats& health_stats() const { return health_stats_; }
  std::uint32_t promote_threshold = 8;
  std::uint32_t backoff_cap = 1024;

  // ---- the Inline tier ----
  /// Gate for the trap-less tier. Off by default: with the gate off the
  /// kernel's behavior (verdicts, cycles, audit stream) is byte-identical to
  /// the pre-lattice tree -- the golden oracle pins this.
  void set_inline_enabled(bool on);
  bool inline_enabled() const { return inline_enabled_; }
  /// Consecutive clean Shadowed-tier verifications a site must earn before
  /// promotion (N of the ROADMAP item).
  void set_inline_threshold(std::uint32_t n) { inline_threshold_ = n == 0 ? 1 : n; }
  std::uint32_t inline_threshold() const { return inline_threshold_; }

  /// The trap-less probe. Non-null iff (pid, call_site) holds a promoted
  /// site AND every snapshot input matches the live trap state AND the
  /// shadow nonce equals the process's authoritative counter AND the
  /// shadow's lastBlock is an allowed predecessor -- in which case the
  /// shadow is advanced exactly as a Shadowed-tier hit would advance it and
  /// the caller may dispatch without the enforcement pipeline. Any mismatch
  /// demotes the site (ProbeMismatch) and returns nullptr: the full
  /// pipeline re-verifies, so genuine tamper fail-stops there.
  const InlineSite* try_inline(Process& p, std::uint32_t call_site);

  /// The checker's promotion note: a fully clean cache-hit + shadow-hit
  /// verification of an inline-eligible call at (p.pid, call_site). Counts
  /// the site's clean streak and promotes at the threshold (Healthy pids
  /// only -- a Quarantined or Degraded pid can never hold an Inline site).
  void note_clean_site(Process& p, std::uint32_t call_site, InlineCandidate cand);
  /// A verification of the pid ended in a violation verdict: every inline
  /// streak of the pid resets (promotion is re-earned from zero).
  void note_unclean(int pid);

  /// Demotion entry points -- the SAME event set that invalidates the cache
  /// and the shadow, which is the whole trust argument.
  void demote_site(int pid, std::uint32_t call_site, DemotionCause cause);
  void demote_pid(int pid, DemotionCause cause);
  void demote_all(DemotionCause cause);

  // ---- the unified write-watch spine ----
  /// Install the ONE per-process write-watch callback (idempotent). Fires
  /// BEFORE the bytes change and dispatches shadow -> cache -> inline, so a
  /// dirty shadow record is materialized before the cache eviction scan and
  /// the inline demotion see the final bytes.
  void ensure_write_watch(Process& p);

  /// Unified teardown/exec path (Kernel::end_process): demote the pid's
  /// inline sites (their Memory is still alive here), write back and drop
  /// its shadowed state, evict its cached verifications, erase its health
  /// record. Idempotent.
  void end_process(int pid);
  /// Unified key-rotation path (Kernel::set_key), under the OLD key: demote
  /// every inline site, flush every shadowed record (lazy write-backs land
  /// under the key that shadowed them), clear the cache.
  void on_key_rotation();
  /// Unified monitor-swap path (set_enforcement / install_monitor): the new
  /// monitor has not authorized anything, so every promotion is revoked.
  void on_monitor_swap() { demote_all(DemotionCause::MonitorSwap); }

  std::size_t inline_sites() const { return inline_sites_.size(); }
  std::size_t inline_sites(int pid) const;
  bool inline_site_promoted(int pid, std::uint32_t call_site) const {
    return inline_sites_.count({pid, call_site}) != 0;
  }
  const InlineSite* peek_inline(int pid, std::uint32_t call_site) const;

  /// Completed full verification (neither fast path served it) -- the Eager
  /// row of the stats table. Counted by the checker.
  void count_eager() { ++eager_; }

  /// Aligned per-tier snapshot combining the sub-path counters with the
  /// lattice's own promotion/demotion flow.
  TierStats stats() const;
  void reset_stats();

  /// Retained bytes across every tier (fleet capacity planning; counts the
  /// dynamic containers, not allocator overhead).
  std::size_t approx_bytes() const;

 private:
  struct Hooks {
    std::function<void(std::uint32_t, std::uint32_t)> watch;
    std::function<void(std::uint32_t, std::uint32_t)> unwatch;
  };

  /// Spine leg three: demote every inline site of `pid` whose watched
  /// ranges overlap the write.
  void inline_invalidate_write(int pid, std::uint32_t addr, std::uint32_t len);
  /// Drop one site: unwatch its ranges, count the demotion, reset its
  /// streak so re-promotion is re-earned.
  std::map<SiteKey, InlineSite>::iterator demote(
      std::map<SiteKey, InlineSite>::iterator it, DemotionCause cause);

  AscCache cache_;
  bool cache_enabled_ = true;
  AscShadow shadow_;
  bool shadow_enabled_ = true;
  std::map<int, HealthRecord> health_;
  HealthStats health_stats_;

  bool inline_enabled_ = false;
  std::uint32_t inline_threshold_ = 8;
  std::map<SiteKey, InlineSite> inline_sites_;
  std::map<SiteKey, std::uint32_t> streaks_;  // consecutive clean Shadowed hits
  std::map<int, Hooks> hooks_;                // per-pid inline range hooks

  std::uint64_t eager_ = 0;
  std::uint64_t inline_hits_ = 0;
  std::uint64_t promotions_ = 0;
  std::array<std::uint64_t, kNumDemotionCauses> demotions_{};
};

/// Side-effect-light syscalls the inline tier may pre-authorize: dispatch
/// reads kernel state (or the virtual clock) and at most writes through an
/// argument pointer the full pipeline would not have constrained either.
/// Anything that mutates kernel bookkeeping (fds, memory map, filesystem,
/// signals, spawn) stays on the full pipeline forever.
bool inline_eligible(SysId id);

}  // namespace asc::os
