#include "os/auditlog.h"

#include <cstdio>

namespace asc::os {

std::string failure_mode_name(FailureMode m) {
  switch (m) {
    case FailureMode::FailStop: return "fail-stop";
    case FailureMode::Budgeted: return "budgeted";
    case FailureMode::AuditOnly: return "audit-only";
  }
  return "?";
}

std::string VerdictRecord::to_string() const {
  char site[16];
  std::snprintf(site, sizeof site, "0x%x", call_site);
  const std::string ctx = " (pid=" + std::to_string(pid) + " sysno=" + std::to_string(sysno) +
                          " site=" + site + ")";
  switch (kind) {
    case AuditKind::Violation:
      return "ALERT pid=" + std::to_string(pid) + " prog=" + prog + " " +
             violation_name(violation) + ": " + detail + " (sysno=" + std::to_string(sysno) +
             " site=" + site + (killed ? " killed" : " permitted") + ")";
    case AuditKind::Net:
      return "NET " + detail + ctx;
    case AuditKind::Signal:
      return "SIGNAL " + detail + ctx;
    case AuditKind::Spawn:
      return "SPAWN " + detail + ctx;
    case AuditKind::InternalFault:
      return "INTERNAL " + detail + ctx;
    case AuditKind::Health:
      return "HEALTH " + detail + ctx;
  }
  return "?";
}

void AuditLog::append(VerdictRecord rec) {
  formatted_.push_back(rec.to_string());
  records_.push_back(std::move(rec));
}

void AuditLog::reset() {
  records_.clear();
  formatted_.clear();
}

std::size_t AuditLog::approx_bytes() const {
  std::size_t n = 0;
  for (const auto& r : records_) n += sizeof(r) + r.prog.size() + r.detail.size();
  for (const auto& f : formatted_) n += sizeof(f) + f.size();
  return n;
}

bool AuditLog::deny(Process& p, const TrapContext& ctx, Violation v, const std::string& detail,
                    std::uint64_t now_ns) {
  ++p.violation_count;
  const bool kill =
      failure_mode_ == FailureMode::FailStop ||
      (failure_mode_ == FailureMode::Budgeted && p.violation_count > violation_budget_);
  VerdictRecord rec;
  rec.kind = AuditKind::Violation;
  rec.pid = p.pid;
  rec.prog = p.name;
  rec.sysno = ctx.sysno;
  rec.call_site = ctx.call_site;
  rec.violation = v;
  rec.killed = kill;
  rec.detail = detail;
  rec.vtime_ns = now_ns;
  append(std::move(rec));
  if (kill) {
    p.running = false;
    p.violation = v;
    p.violation_detail = detail;
    p.exit_code = -1;
  }
  return kill;
}

void AuditLog::event(const Process& p, const TrapContext& ctx, AuditKind kind,
                     std::string detail, std::uint64_t now_ns) {
  VerdictRecord rec;
  rec.kind = kind;
  rec.pid = p.pid;
  rec.prog = p.name;
  rec.sysno = ctx.sysno;
  rec.call_site = ctx.call_site;
  rec.detail = std::move(detail);
  rec.vtime_ns = now_ns;
  append(std::move(rec));
}

}  // namespace asc::os
