#include "os/fs.h"

#include <algorithm>

#include "util/error.h"

namespace asc::os {

namespace {
constexpr int kMaxSymlinkDepth = 8;
}

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

SimFs::SimFs() {
  Node root;
  root.kind = NodeKind::Dir;
  root.mode = 0755;
  root.inode = next_inode_;
  nodes_[next_inode_] = root;
  ++next_inode_;
  // Conventional top-level directories used by guest programs.
  (void)mkdir("/", "/tmp", 0777);
  (void)mkdir("/", "/etc", 0755);
  (void)mkdir("/", "/dev", 0755);
  (void)mkdir("/", "/home", 0755);
  // /dev/console and /dev/tty behave as ordinary writable files here.
  (void)open("/", "/dev/console", kWrOnly | kCreat, 0600);
  (void)open("/", "/dev/tty", kRdWr | kCreat, 0600);
  (void)open("/", "/etc/termcap", kWrOnly | kCreat, 0644);
}

SimFs::Node* SimFs::node(std::uint32_t inode) {
  auto it = nodes_.find(inode);
  return it == nodes_.end() ? nullptr : &it->second;
}

const SimFs::Node* SimFs::node(std::uint32_t inode) const {
  auto it = nodes_.find(inode);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::uint32_t SimFs::new_node(NodeKind kind, std::uint32_t mode) {
  Node n;
  n.kind = kind;
  n.mode = mode;
  n.inode = next_inode_;
  nodes_[next_inode_] = std::move(n);
  return next_inode_++;
}

std::int64_t SimFs::walk(const std::string& cwd, const std::string& path, bool parent_only,
                         std::string* leaf, int depth) const {
  if (depth > kMaxSymlinkDepth) return kErrLoop;
  std::vector<std::string> parts;
  if (!path.empty() && path[0] == '/') {
    parts = split_path(path);
  } else {
    parts = split_path(cwd);
    auto rel = split_path(path);
    parts.insert(parts.end(), rel.begin(), rel.end());
  }

  std::uint32_t cur = 1;  // root inode
  std::vector<std::uint32_t> dir_stack{1};
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string& comp = parts[i];
    const bool last = i + 1 == parts.size();
    const Node* d = node(cur);
    if (d == nullptr || d->kind != NodeKind::Dir) return kErrNotDir;
    if (comp == ".") continue;
    if (comp == "..") {
      if (dir_stack.size() > 1) {
        dir_stack.pop_back();
        cur = dir_stack.back();
      }
      continue;
    }
    auto it = d->entries.find(comp);
    if (it == d->entries.end()) {
      if (parent_only && last) {
        if (leaf != nullptr) *leaf = comp;
        return cur;
      }
      return kErrNoEnt;
    }
    const Node* child = node(it->second);
    if (child == nullptr) return kErrNoEnt;
    if (child->kind == NodeKind::Symlink) {
      if (last && parent_only) {
        if (leaf != nullptr) *leaf = comp;
        return cur;
      }
      // Re-resolve: target relative to the directory containing the link.
      std::string dir_path = "/";
      // Reconstruct the path of `cur` by joining the consumed components.
      // (We track it explicitly for simplicity.)
      {
        std::string acc;
        std::vector<std::string> consumed(parts.begin(), parts.begin() + static_cast<std::ptrdiff_t>(i));
        // Remove "."/".." effects by replaying them.
        std::vector<std::string> norm;
        for (const auto& c : consumed) {
          if (c == ".") continue;
          if (c == "..") {
            if (!norm.empty()) norm.pop_back();
            continue;
          }
          norm.push_back(c);
        }
        for (const auto& c : norm) acc += "/" + c;
        dir_path = acc.empty() ? "/" : acc;
      }
      std::string rest;
      for (std::size_t j = i + 1; j < parts.size(); ++j) rest += "/" + parts[j];
      std::string next = child->target;
      if (!rest.empty()) {
        if (!next.empty() && next.back() == '/') next.pop_back();
        next += rest;
      }
      return walk(dir_path, next, parent_only, leaf, depth + 1);
    }
    if (last) {
      if (parent_only) {
        if (leaf != nullptr) *leaf = comp;
        return cur;
      }
      return child->inode;
    }
    cur = child->inode;
    dir_stack.push_back(cur);
  }
  if (parent_only) {
    // Path named an existing directory itself; treat as invalid for
    // parent-only operations like open(O_CREAT) on "".
    return kErrInval;
  }
  return cur;
}

std::int64_t SimFs::open(const std::string& cwd, const std::string& path, std::uint32_t flags,
                         std::uint32_t mode) {
  std::string leaf;
  const std::int64_t parent = walk(cwd, path, /*parent_only=*/true, &leaf);
  if (parent < 0) return parent;
  Node* dir = node(static_cast<std::uint32_t>(parent));
  if (dir == nullptr || dir->kind != NodeKind::Dir) return kErrNotDir;

  auto it = dir->entries.find(leaf);
  if (it == dir->entries.end()) {
    if ((flags & kCreat) == 0) return kErrNoEnt;
    const std::uint32_t ino = new_node(NodeKind::File, mode == 0 ? 0644 : mode);
    dir->entries[leaf] = ino;
    return ino;
  }
  // Existing entry: follow a final symlink via a full walk.
  const std::int64_t resolved = walk(cwd, path, /*parent_only=*/false, nullptr);
  if (resolved < 0) return resolved;
  Node* n = node(static_cast<std::uint32_t>(resolved));
  if (n == nullptr) return kErrNoEnt;
  if (n->kind == NodeKind::Dir) {
    if ((flags & kAccMask) != kRdOnly) return kErrIsDir;
    return n->inode;
  }
  if ((flags & kTrunc) != 0) n->content.clear();
  return n->inode;
}

std::int64_t SimFs::read(std::uint32_t inode, std::uint32_t offset, std::uint32_t n,
                         std::vector<std::uint8_t>& out) {
  const Node* f = node(inode);
  if (f == nullptr || f->kind != NodeKind::File) return kErrBadf;
  if (offset >= f->content.size()) {
    out.clear();
    return 0;
  }
  const std::uint32_t avail = static_cast<std::uint32_t>(f->content.size()) - offset;
  const std::uint32_t take = std::min(n, avail);
  out.assign(f->content.begin() + offset, f->content.begin() + offset + take);
  return take;
}

std::int64_t SimFs::write(std::uint32_t inode, std::uint32_t offset,
                          const std::vector<std::uint8_t>& bytes, bool append) {
  Node* f = node(inode);
  if (f == nullptr || f->kind != NodeKind::File) return kErrBadf;
  std::uint32_t pos = append ? static_cast<std::uint32_t>(f->content.size()) : offset;
  if (pos + bytes.size() > f->content.size()) f->content.resize(pos + bytes.size(), 0);
  std::copy(bytes.begin(), bytes.end(), f->content.begin() + pos);
  return static_cast<std::int64_t>(bytes.size());
}

std::int64_t SimFs::truncate(std::uint32_t inode, std::uint32_t len) {
  Node* f = node(inode);
  if (f == nullptr || f->kind != NodeKind::File) return kErrBadf;
  f->content.resize(len, 0);
  return 0;
}

std::optional<StatInfo> SimFs::stat_inode(std::uint32_t inode) const {
  const Node* n = node(inode);
  if (n == nullptr) return std::nullopt;
  StatInfo s;
  s.kind = n->kind;
  s.mode = n->mode;
  s.inode = n->inode;
  s.size = n->kind == NodeKind::File ? static_cast<std::uint32_t>(n->content.size())
                                     : static_cast<std::uint32_t>(n->entries.size());
  return s;
}

std::int64_t SimFs::mkdir(const std::string& cwd, const std::string& path, std::uint32_t mode) {
  std::string leaf;
  const std::int64_t parent = walk(cwd, path, true, &leaf);
  if (parent < 0) return parent;
  Node* dir = node(static_cast<std::uint32_t>(parent));
  if (dir == nullptr || dir->kind != NodeKind::Dir) return kErrNotDir;
  if (dir->entries.count(leaf) != 0) return kErrExist;
  dir->entries[leaf] = new_node(NodeKind::Dir, mode == 0 ? 0755 : mode);
  return 0;
}

std::int64_t SimFs::rmdir(const std::string& cwd, const std::string& path) {
  std::string leaf;
  const std::int64_t parent = walk(cwd, path, true, &leaf);
  if (parent < 0) return parent;
  Node* dir = node(static_cast<std::uint32_t>(parent));
  auto it = dir->entries.find(leaf);
  if (it == dir->entries.end()) return kErrNoEnt;
  Node* child = node(it->second);
  if (child == nullptr || child->kind != NodeKind::Dir) return kErrNotDir;
  if (!child->entries.empty()) return kErrNotEmpty;
  nodes_.erase(it->second);
  dir->entries.erase(it);
  return 0;
}

std::int64_t SimFs::unlink(const std::string& cwd, const std::string& path) {
  std::string leaf;
  const std::int64_t parent = walk(cwd, path, true, &leaf);
  if (parent < 0) return parent;
  Node* dir = node(static_cast<std::uint32_t>(parent));
  auto it = dir->entries.find(leaf);
  if (it == dir->entries.end()) return kErrNoEnt;
  Node* child = node(it->second);
  if (child != nullptr && child->kind == NodeKind::Dir) return kErrIsDir;
  nodes_.erase(it->second);
  dir->entries.erase(it);
  return 0;
}

std::int64_t SimFs::rename(const std::string& cwd, const std::string& from, const std::string& to) {
  std::string from_leaf;
  const std::int64_t from_parent = walk(cwd, from, true, &from_leaf);
  if (from_parent < 0) return from_parent;
  Node* fdir = node(static_cast<std::uint32_t>(from_parent));
  auto fit = fdir->entries.find(from_leaf);
  if (fit == fdir->entries.end()) return kErrNoEnt;
  const std::uint32_t ino = fit->second;

  std::string to_leaf;
  const std::int64_t to_parent = walk(cwd, to, true, &to_leaf);
  if (to_parent < 0) return to_parent;
  Node* tdir = node(static_cast<std::uint32_t>(to_parent));
  if (tdir == nullptr || tdir->kind != NodeKind::Dir) return kErrNotDir;

  // Re-find the source entry: the destination walk may not invalidate it in
  // this implementation, but be defensive about same-map iterator reuse.
  fdir = node(static_cast<std::uint32_t>(from_parent));
  fdir->entries.erase(from_leaf);
  auto old = tdir->entries.find(to_leaf);
  if (old != tdir->entries.end()) nodes_.erase(old->second);
  tdir->entries[to_leaf] = ino;
  return 0;
}

std::int64_t SimFs::symlink(const std::string& cwd, const std::string& target,
                            const std::string& linkpath) {
  std::string leaf;
  const std::int64_t parent = walk(cwd, linkpath, true, &leaf);
  if (parent < 0) return parent;
  Node* dir = node(static_cast<std::uint32_t>(parent));
  if (dir->entries.count(leaf) != 0) return kErrExist;
  const std::uint32_t ino = new_node(NodeKind::Symlink, 0777);
  node(ino)->target = target;
  dir->entries[leaf] = ino;
  return 0;
}

std::int64_t SimFs::chmod(const std::string& cwd, const std::string& path, std::uint32_t mode) {
  const std::int64_t ino = walk(cwd, path, false, nullptr);
  if (ino < 0) return ino;
  node(static_cast<std::uint32_t>(ino))->mode = mode;
  return 0;
}

std::int64_t SimFs::access(const std::string& cwd, const std::string& path) {
  const std::int64_t ino = walk(cwd, path, false, nullptr);
  return ino < 0 ? ino : 0;
}

std::optional<StatInfo> SimFs::stat(const std::string& cwd, const std::string& path) const {
  const std::int64_t ino = walk(cwd, path, false, nullptr);
  if (ino < 0) return std::nullopt;
  return stat_inode(static_cast<std::uint32_t>(ino));
}

std::optional<std::string> SimFs::readlink(const std::string& cwd, const std::string& path) const {
  std::string leaf;
  const std::int64_t parent = walk(cwd, path, true, &leaf);
  if (parent < 0) return std::nullopt;
  const Node* dir = node(static_cast<std::uint32_t>(parent));
  auto it = dir->entries.find(leaf);
  if (it == dir->entries.end()) return std::nullopt;
  const Node* n = node(it->second);
  if (n == nullptr || n->kind != NodeKind::Symlink) return std::nullopt;
  return n->target;
}

std::optional<std::vector<std::string>> SimFs::list_dir(const std::string& cwd,
                                                        const std::string& path) const {
  const std::int64_t ino = walk(cwd, path, false, nullptr);
  if (ino < 0) return std::nullopt;
  const Node* d = node(static_cast<std::uint32_t>(ino));
  if (d == nullptr || d->kind != NodeKind::Dir) return std::nullopt;
  std::vector<std::string> names;
  names.reserve(d->entries.size());
  for (const auto& [name, _] : d->entries) names.push_back(name);
  return names;
}

bool SimFs::is_dir(const std::string& cwd, const std::string& path) const {
  const std::int64_t ino = walk(cwd, path, false, nullptr);
  if (ino < 0) return false;
  const Node* n = node(static_cast<std::uint32_t>(ino));
  return n != nullptr && n->kind == NodeKind::Dir;
}

std::optional<std::string> SimFs::path_of_inode(std::uint32_t inode) const {
  std::vector<std::pair<std::uint32_t, std::string>> frontier{{1u, ""}};
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const auto [cur, cur_path] = frontier[i];
    if (cur == inode) return cur_path.empty() ? "/" : cur_path;
    const Node* d = node(cur);
    if (d == nullptr || d->kind != NodeKind::Dir) continue;
    for (const auto& [name, child] : d->entries) {
      frontier.emplace_back(child, cur_path + "/" + name);
    }
  }
  return std::nullopt;
}

std::optional<std::string> SimFs::normalize(const std::string& cwd, const std::string& path,
                                            bool parent_only) const {
  // Resolve to an inode, then reconstruct a canonical absolute path by
  // searching for that inode from the root. For a simulation-scale FS a
  // breadth-first inode search is fine and keeps `walk` authoritative.
  std::string leaf;
  const std::int64_t ino = walk(cwd, path, parent_only, parent_only ? &leaf : nullptr);
  if (ino < 0) return std::nullopt;

  // BFS from root to find the canonical path of `ino`.
  std::vector<std::pair<std::uint32_t, std::string>> frontier{{1u, ""}};
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const auto [cur, cur_path] = frontier[i];
    if (cur == static_cast<std::uint32_t>(ino)) {
      std::string base = cur_path.empty() ? "/" : cur_path;
      if (!parent_only) return base;
      if (base == "/") return "/" + leaf;
      return base + "/" + leaf;
    }
    const Node* d = node(cur);
    if (d == nullptr || d->kind != NodeKind::Dir) continue;
    for (const auto& [name, child] : d->entries) {
      frontier.emplace_back(child, cur_path + "/" + name);
    }
  }
  return std::nullopt;
}

}  // namespace asc::os
