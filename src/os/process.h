// Simulated process: CPU state, address space, file descriptors, and the
// per-process monitoring state (the ASC nonce counter of §3.2).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "binary/image.h"
#include "isa/isa.h"
#include "vm/memory.h"
#include "vm/predecode.h"

namespace asc::os {

struct CpuState {
  std::array<std::uint32_t, isa::kNumRegs> regs{};
  std::uint32_t pc = 0;
  bool zf = false;  // last compare: equal
  bool nf = false;  // last compare: signed less-than
};

struct FdEntry {
  enum class Kind : std::uint8_t { Closed, Stdin, Stdout, Stderr, File, Socket, Pipe };
  Kind kind = Kind::Closed;
  std::uint32_t inode = 0;   // File
  std::uint32_t offset = 0;  // File
  std::uint32_t flags = 0;   // open() flags
  // Which call site (composed block id) produced this descriptor -- the
  // kernel-side record backing capability-tracking policies (§5.3).
  std::uint32_t origin_block = 0;
};

/// Why a process was terminated by the monitor.
enum class Violation : std::uint8_t {
  None,
  UnknownSyscall,    // number not in the personality's table
  BadCallMac,        // encoded call does not match the call MAC (§3.4 step 1)
  BadStringArg,      // authenticated string content MAC mismatch (step 2)
  BadPolicyState,    // lastBlock/lbMAC tampered or replayed (step 3.1)
  BadPredecessor,    // control-flow policy violated (step 3.2)
  BadCapability,     // fd not from an allowed source site (§5.3)
  BadPattern,        // pattern match proof failed (§5.1)
  MonitorDenied,     // baseline monitor (daemon / kernel table) denied
  GuestFaulted,      // memory fault etc. while the kernel examined the call
};

std::string violation_name(Violation v);

struct Process {
  int pid = 1;
  std::string name;
  std::string cwd = "/";
  std::vector<FdEntry> fds;
  std::uint32_t brk_end = binary::kHeapBase;
  std::uint32_t mmap_cursor = binary::kStackTop - (1u << 20);  // mmap area below stack guard
  std::uint32_t umask = 022;

  // ASC monitoring state. The nonce is the kernel-trusted half of the §3.2
  // online memory checker; when the policy-state shadow (os/ascshadow.h) is
  // live for this pid, the shadow entry mirrors it and the {lastBlock,
  // lbMAC} record in this process's memory lags behind until write-back.
  std::uint64_t asc_counter = 0;  // kernel-side nonce for the memory checker
  std::uint16_t program_id = 0;
  bool authenticated_image = false;
  // Violations audited against this process (drives Budgeted failure mode).
  std::uint32_t violation_count = 0;

  CpuState cpu;
  vm::Memory mem;
  // Predecoded-code mirror of `mem` for the threaded engine (vm/engine.cpp);
  // unused (empty) when the Machine runs the switch interpreter.
  vm::PredecodeCache predecode;

  // Run status.
  bool running = true;
  int exit_code = 0;
  Violation violation = Violation::None;
  std::string violation_detail;

  // Standard streams.
  std::vector<std::uint8_t> stdin_data;
  std::size_t stdin_pos = 0;
  std::string stdout_data;
  std::string stderr_data;

  // Accounting.
  std::uint64_t cycles = 0;
  std::uint64_t syscall_count = 0;
  std::uint64_t instr_count = 0;

  Process();

  /// Allocate the lowest free descriptor slot.
  std::int32_t alloc_fd();
  /// Valid live descriptor or nullptr.
  FdEntry* fd(std::uint32_t n);
};

}  // namespace asc::os
