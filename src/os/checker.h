// Kernel-side verification of authenticated system calls (§3.4).
//
// On every trap in Asc mode the kernel receives the regular arguments
// (r0..r5) plus the five extra arguments the installer compiled in:
//
//   r6  polDes   -- policy descriptor
//   r7  blockID  -- composed basic-block id of this call
//   r8  predSet  -- pointer to the predecessor-set authenticated string body
//   r9  lbPtr    -- pointer to {u32 lastBlock, 16B lbMAC} in app memory
//   r10 callMAC  -- pointer to the 16-byte call MAC
//   r11 hintPtr  -- (only when the policy has pattern args) pointer to the
//                   application-computed match hint
//
// Checking performs, in order:
//   1. reconstruct the *encoded call* from the actual trap state and verify
//      callMAC against it,
//   2. verify the content MAC of every authenticated string argument (and of
//      the predecessor set),
//   3. verify and update the control-flow policy state
//      (lastBlock/lbMAC/counter -- the online memory checker),
//   4. (§5.3 extension) verify fd capability provenance,
//   5. (§5.1 extension) verify pattern matches using the supplied hints.
//
// Any failure yields a Violation; the kernel then terminates the process,
// logs the call, and alerts the administrator (fail-stop).
#pragma once

#include <cstdint>
#include <string>

#include "crypto/cmac.h"
#include "os/costmodel.h"
#include "os/process.h"
#include "os/syscalls.h"
#include "os/tiertable.h"

namespace asc::os {

struct CheckResult {
  Violation violation = Violation::None;
  std::string detail;
  std::uint64_t cycles = 0;  // modeled cost of the checking work
  bool cache_hit = false;    // static MACs served from the verified-call cache
  bool shadow_hit = false;   // policy state served by the kernel-resident shadow
};

/// `tiers`, when non-null, routes the verification through the tier lattice
/// (os/tiertable.h): `use_cache` gates the verified-call fast path
/// (static-input AES-CMAC verifications are skipped when the site's bytes
/// are identical to a previously verified trap, see os/asccache.h) and
/// `use_shadow` the policy-state fast path (step 3's verify-MAC/re-MAC pair
/// over {lastBlock, lbMAC} is replaced by the kernel-resident shadow while
/// the guest record stays unwritten, see os/ascshadow.h; the slow path
/// installs the shadow after a full step-3.1 verification). The caller owns
/// the gates so the per-pid health floor stays a kernel decision. A fully
/// clean cache-hit + shadow-hit verification of an inline-eligible call is
/// additionally reported to the lattice as promotion evidence for the
/// trap-less Inline tier. Steps 4 (capabilities) and 5 (patterns) always
/// run. `id` is the resolved identity of `sysno` (inline eligibility).
CheckResult check_authenticated_call(Process& p, std::uint32_t call_site, std::uint16_t sysno,
                                     SysId id, const SyscallSig& sig,
                                     const crypto::MacKey& key, const CostModel& cost,
                                     bool capability_checking, TierTable* tiers = nullptr,
                                     bool use_cache = true, bool use_shadow = true);

}  // namespace asc::os
