// System call inventory for the simulated OS.
//
// The kernel supports two *personalities* -- LinuxSim and BsdSim -- standing
// in for the paper's Linux prototype and its OpenBSD policy-generation port.
// A personality fixes (a) which system calls exist and (b) their numbers.
// Differences between the two reproduce the effects in Tables 1 and 2:
//
//   * numbers differ, so a policy generated for one OS is meaningless on the
//     other ("policies for one operating system cannot simply be used on
//     another"),
//   * BsdSim reaches `mmap` only through a generic indirect system call
//     (`__syscall`), mirroring OpenBSD,
//   * BsdSim has `fstatfs`; LinuxSim has `time` (libc-level differences make
//     the per-program syscall sets differ across personalities).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace asc::os {

/// OS-independent system call identity.
enum class SysId : std::uint8_t {
  Exit, Read, Write, Open, Close, Unlink, Rename, Mkdir, Rmdir, Chdir,
  Getcwd, Stat, Fstat, Fstatfs, Lseek, Dup, Brk, Getpid, Getuid,
  Gettimeofday, Time, Nanosleep, Kill, Sigaction, Socket, Connect, Sendto,
  Recvfrom, Fcntl, Readlink, Symlink, Chmod, Access, Ftruncate,
  Getdirentries, Uname, Sysconf, Madvise, Mmap, Munmap, Writev, Umask,
  Ioctl, Spawn, Pipe, SyscallIndirect,
  kCount,
};

inline constexpr std::size_t kNumSysIds = static_cast<std::size_t>(SysId::kCount);
inline constexpr int kMaxSyscallArgs = 5;

/// Role of each argument; drives the Table 3 classification (output-only
/// arguments, file descriptors) and the kernel handlers.
enum class ArgKind : std::uint8_t {
  Int,     // plain integer
  Fd,      // file descriptor (candidate for capability tracking, §5.3)
  PathIn,  // NUL-terminated path string read by the kernel
  StrIn,   // NUL-terminated non-path string read by the kernel
  BufIn,   // input buffer pointer (length in another argument)
  BufOut,  // output buffer pointer -- output-only
  OutPtr,  // output struct pointer -- output-only
};

/// Coarse category used by the Systrace stand-in's fsread/fswrite aliases.
enum class Category : std::uint8_t { Other, FsRead, FsWrite, Net, Proc, Mem, Time };

struct SyscallSig {
  SysId id;
  const char* name;
  int arity;
  std::array<ArgKind, kMaxSyscallArgs> args;
  bool returns_fd;
  Category category;
};

/// Signature for a syscall; never null for valid ids.
const SyscallSig& signature(SysId id);

/// True if the argument kind is output-only (the kernel writes through it).
bool is_output_arg(ArgKind kind);

enum class Personality : std::uint8_t { LinuxSim, BsdSim };

std::string personality_name(Personality p);

/// Syscall number for `id` under personality `p`; nullopt if the call does
/// not exist there (e.g. Time on BsdSim, Fstatfs on LinuxSim,
/// SyscallIndirect on LinuxSim).
std::optional<std::uint16_t> syscall_number(Personality p, SysId id);

/// Reverse mapping; nullopt for unknown numbers.
std::optional<SysId> syscall_from_number(Personality p, std::uint16_t number);

/// All syscalls available under a personality.
std::vector<SysId> available_syscalls(Personality p);

}  // namespace asc::os
