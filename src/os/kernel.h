// The simulated kernel: syscall dispatch, the software trap handler, and the
// enforcement hook.
//
// This is the component the paper implements by adding 248 lines to the Linux
// trap handler plus a crypto library. Our trap handler supports four
// enforcement modes so the benches can compare monitoring architectures:
//
//   Off         -- no monitoring (the paper's "original" baseline)
//   Asc         -- authenticated system calls (§3.4 checking; the paper's
//                  contribution). Every call is checked; unauthenticated
//                  calls are blocked.
//   Daemon      -- user-space policy daemon baseline (Systrace/Ostia style):
//                  each call costs two extra context switches plus a policy
//                  lookup in the daemon.
//   KernelTable -- fully in-kernel policy table baseline.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/cmac.h"
#include "os/asccache.h"
#include "os/costmodel.h"
#include "os/fs.h"
#include "os/process.h"
#include "os/syscalls.h"

namespace asc::os {

enum class Enforcement : std::uint8_t { Off, Asc, Daemon, KernelTable };

std::string enforcement_name(Enforcement e);

/// How the kernel reacts once a violation has been established (graceful
/// degradation). The paper prescribes fail-stop ("terminate the process,
/// log the call, alert the administrator", §3.4); the other modes support
/// staged rollout: audit a new policy in production before enforcing it.
enum class FailureMode : std::uint8_t {
  FailStop,   // kill on the first violation (paper-faithful)
  Budgeted,   // tolerate up to the violation budget, then kill
  AuditOnly,  // record every verdict, never kill (permissive)
};

std::string failure_mode_name(FailureMode m);

/// What a structured audit record describes.
enum class AuditKind : std::uint8_t {
  Violation,  // the monitor established a policy violation
  Net,        // outbound network traffic
  Signal,     // signal sent to another process
  Spawn,      // program execution request
};

/// One structured entry of the kernel's security/audit log. Every event
/// carries the process, program, trapping call, and virtual timestamp; for
/// violations, the Violation class and whether the verdict killed the guest.
struct VerdictRecord {
  AuditKind kind = AuditKind::Violation;
  int pid = 0;
  std::string prog;
  std::uint16_t sysno = 0;
  std::uint32_t call_site = 0;
  Violation violation = Violation::None;
  bool killed = false;  // did this verdict terminate the process?
  std::string detail;
  std::uint64_t vtime_ns = 0;

  /// Legacy one-line view ("ALERT pid=... prog=... ...", "SPAWN ...").
  std::string to_string() const;
};

/// One observed system call (used by training-based policy generation and by
/// tests that assert on guest behavior).
struct TraceEntry {
  SysId id = SysId::Exit;
  std::uint16_t sysno = 0;
  std::uint32_t call_site = 0;
  std::array<std::uint32_t, kMaxSyscallArgs> args{};
  std::string path;  // resolved first PathIn argument, if any
  std::int64_t ret = 0;
};

/// Policy format used by the two baseline monitors (Daemon / KernelTable):
/// a set of permitted syscall numbers, optionally with path patterns, plus
/// Systrace-style fsread/fswrite aliases.
struct MonitorPolicy {
  std::set<std::uint16_t> allowed;
  std::map<std::uint16_t, std::vector<std::string>> path_patterns;  // empty vec = any path
  bool allow_fsread = false;   // permit every Category::FsRead call
  bool allow_fswrite = false;  // permit every Category::FsWrite call
};

class Kernel {
 public:
  explicit Kernel(Personality personality, CostModel cost = {});

  Personality personality() const { return personality_; }
  const CostModel& cost() const { return cost_; }
  CostModel& mutable_cost() { return cost_; }

  SimFs& fs() { return fs_; }
  const SimFs& fs() const { return fs_; }

  // ---- enforcement configuration ----
  void set_enforcement(Enforcement e) { enforcement_ = e; }
  Enforcement enforcement() const { return enforcement_; }
  /// Install the MAC key (required for Asc mode). In the real system only
  /// the installer and the kernel ever hold this key.
  void set_key(const crypto::Key128& key);
  const crypto::MacKey* key() const { return key_ ? &*key_ : nullptr; }
  /// Policy for the baseline monitors, per program name.
  void set_monitor_policy(const std::string& program, MonitorPolicy policy);
  /// Enable kernel-side fd capability checking (§5.3).
  void set_capability_checking(bool on) { capability_checking_ = on; }
  bool capability_checking() const { return capability_checking_; }

  // ---- verified-call cache ----
  /// The MAC-verification fast path (os/asccache.h), on by default. When
  /// disabled, every trap performs the full §3.4 verification (the paper's
  /// uncached behavior; benchmarks compare both).
  void set_verified_call_cache(bool on) { cache_enabled_ = on; }
  bool verified_call_cache() const { return cache_enabled_; }
  AscCache& call_cache() { return call_cache_; }
  const AscCache& call_cache() const { return call_cache_; }
  /// Hit/miss/eviction counters of the fast path (stats audit surface).
  const AscCacheStats& cache_stats() const { return call_cache_.stats(); }
  /// Process teardown/exec hook: drop every cached verification of `pid` so
  /// recycled pids or re-execed images can never inherit stale trust.
  void end_process(int pid) { call_cache_.evict_pid(pid); }
  /// Normalize path arguments before checking baseline-monitor path
  /// policies (§5.4).
  void set_normalize_paths(bool on) { normalize_paths_ = on; }

  // ---- graceful degradation ----
  /// Reaction to an established violation (default: paper-faithful
  /// fail-stop). Budgeted mode kills only when a process exceeds the
  /// violation budget; AuditOnly never kills.
  void set_failure_mode(FailureMode m) { failure_mode_ = m; }
  FailureMode failure_mode() const { return failure_mode_; }
  /// Violations tolerated per process in Budgeted mode before the kill
  /// (0 = kill on the first violation, same as FailStop).
  void set_violation_budget(std::uint32_t n) { violation_budget_ = n; }
  std::uint32_t violation_budget() const { return violation_budget_; }

  // ---- tracing & logging ----
  void set_tracing(bool on) { tracing_ = on; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }
  /// Structured security/audit log: violation verdicts ("alert the
  /// administrator"), spawn events, network sends, signals.
  const std::vector<VerdictRecord>& audit_log() const { return audit_log_; }
  /// Append a record to the audit log (and its formatted view).
  void audit(VerdictRecord rec);
  /// Legacy formatted view of the audit log, one line per record.
  const std::vector<std::string>& event_log() const { return events_; }
  void clear_events() {
    events_.clear();
    audit_log_.clear();
  }

  /// Virtual wall clock (ns); advanced by nanosleep and by retired cycles.
  std::uint64_t virtual_time_ns() const { return vtime_ns_; }
  void advance_time(std::uint64_t ns) { vtime_ns_ += ns; }

  /// Hook used by the Spawn syscall: run another program to completion and
  /// return its exit status (or a negative error). Installed by vm::Machine.
  using SpawnHandler = std::function<std::int64_t(Process& parent, const std::string& path,
                                                  const std::vector<std::string>& argv)>;
  void set_spawn_handler(SpawnHandler h) { spawn_ = std::move(h); }

  /// The software trap handler. Entered by the VM on a SYSCALL instruction;
  /// `call_site` is the address of the trapping instruction (derived from
  /// the interrupt return address in the real system). Performs enforcement
  /// then dispatch; on violation, terminates the process (fail-stop).
  void on_syscall(Process& p, std::uint32_t call_site);

 private:
  void charge(Process& p, std::uint64_t cycles) { p.cycles += cycles; }
  /// Record the verdict and apply the failure mode. Returns true when the
  /// process was killed (caller must stop); false when the violation was
  /// tolerated and the call should proceed (audit-only / within budget).
  bool deny(Process& p, Violation v, const std::string& detail);
  /// Audit a non-violation event (net/signal/spawn) with full trap context.
  void log_event(Process& p, AuditKind kind, std::string detail);
  std::int64_t dispatch(Process& p, SysId id, std::array<std::uint32_t, 5> args,
                        std::uint32_t call_site);
  bool monitor_allows(Process& p, std::uint16_t sysno, SysId id,
                      const std::array<std::uint32_t, 5>& args, std::string* why);
  std::string read_path(Process& p, std::uint32_t addr);

  // Individual handlers (args already shifted for __syscall indirection).
  std::int64_t sys_open(Process& p, const std::array<std::uint32_t, 5>& a, std::uint32_t site);
  std::int64_t sys_read(Process& p, const std::array<std::uint32_t, 5>& a);
  std::int64_t sys_write(Process& p, const std::array<std::uint32_t, 5>& a);

  Personality personality_;
  CostModel cost_;
  SimFs fs_;
  Enforcement enforcement_ = Enforcement::Off;
  std::optional<crypto::MacKey> key_;
  AscCache call_cache_;
  bool cache_enabled_ = true;
  std::map<std::string, MonitorPolicy> monitor_policies_;
  bool capability_checking_ = false;
  bool normalize_paths_ = false;
  FailureMode failure_mode_ = FailureMode::FailStop;
  std::uint32_t violation_budget_ = 0;
  bool tracing_ = false;
  std::vector<TraceEntry> trace_;
  std::vector<VerdictRecord> audit_log_;
  std::vector<std::string> events_;
  // Trap context of the call currently being handled, so audit records
  // emitted from dispatch handlers carry the call site and number.
  std::uint16_t cur_sysno_ = 0;
  std::uint32_t cur_site_ = 0;
  std::uint64_t vtime_ns_ = 1'000'000'000;  // arbitrary epoch
  SpawnHandler spawn_;
};

}  // namespace asc::os
