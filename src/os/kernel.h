// The simulated kernel, structured as a staged trap pipeline:
//
//   (1) trap layer      -- os/kernel.cpp: captures a TrapContext from the
//                          trapping process (sysno, call site, raw args) and
//                          threads it through the stages below. One context
//                          per trap, on the handler's stack, so nested traps
//                          (Spawn) cannot clobber each other.
//   (2) enforcement     -- os/sysmonitor.h: a pluggable SyscallMonitor
//                          inspects the context and returns a verdict
//                          (AscMonitor / DaemonMonitor / KernelTableMonitor /
//                          NullMonitor, composable via ChainMonitor).
//   (3) dispatch        -- os/dispatch.cpp: the syscall handlers, reading
//                          identity and arguments from the context.
//   (4) audit           -- os/auditlog.h: the AuditLog records verdicts and
//                          security events and applies the failure mode
//                          (fail-stop / budgeted / audit-only).
//
// This is the component the paper implements by adding 248 lines to the
// Linux trap handler plus a crypto library; the four enforcement modes let
// the benches compare monitoring architectures (§4.2).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/cmac.h"
#include "os/asccache.h"
#include "os/ascshadow.h"
#include "os/auditlog.h"
#include "os/costmodel.h"
#include "os/fs.h"
#include "os/health.h"
#include "os/process.h"
#include "os/rekey.h"
#include "os/syscalls.h"
#include "os/sysmonitor.h"
#include "os/tenant.h"
#include "os/trapcontext.h"

namespace asc::os {

/// One observed system call (used by training-based policy generation and by
/// tests that assert on guest behavior).
struct TraceEntry {
  SysId id = SysId::Exit;
  std::uint16_t sysno = 0;
  std::uint32_t call_site = 0;
  std::array<std::uint32_t, kMaxSyscallArgs> args{};
  std::string path;  // resolved first PathIn argument, if any
  std::int64_t ret = 0;
};

/// Counters of the live-rekey protocol (`asctool run --stats` surface).
struct RekeyCounters {
  std::uint64_t rekeys = 0;        // rotations applied to a live process
  std::uint64_t deferred = 0;      // requests parked until a trap boundary
  std::uint64_t macs_applied = 0;  // MAC slots patched + state re-MACs
};

class Kernel {
 public:
  explicit Kernel(Personality personality, CostModel cost = {});
  // Installed monitors hold a reference to this kernel.
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Personality personality() const { return personality_; }
  const CostModel& cost() const { return cost_; }
  CostModel& mutable_cost() { return cost_; }

  SimFs& fs() { return fs_; }
  const SimFs& fs() const { return fs_; }

  // ---- enforcement layer configuration ----
  /// Select one of the built-in monitors by mode (see os/sysmonitor.h).
  void set_enforcement(Enforcement e);
  Enforcement enforcement() const { return enforcement_; }
  /// Install a custom monitor (e.g. a ChainMonitor composing several); the
  /// enforcement() getter keeps reporting the last set_enforcement() mode.
  void install_monitor(std::unique_ptr<SyscallMonitor> monitor);
  SyscallMonitor& monitor() { return *monitor_; }
  const SyscallMonitor& monitor() const { return *monitor_; }
  /// Install the MAC key (required for the ASC monitor). In the real system
  /// only the installer and the kernel ever hold this key.
  void set_key(const crypto::Key128& key);
  const crypto::MacKey* key() const { return tenant_.key ? &*tenant_.key : nullptr; }
  /// Policy for the baseline monitors, per program name.
  void set_monitor_policy(const std::string& program, MonitorPolicy policy);
  /// The installed policy for a program, or nullptr.
  const MonitorPolicy* find_monitor_policy(const std::string& program) const;
  /// Enable kernel-side fd capability checking (§5.3).
  void set_capability_checking(bool on) { capability_checking_ = on; }
  bool capability_checking() const { return capability_checking_; }
  /// Normalize path arguments before checking baseline-monitor path
  /// policies (§5.4).
  void set_normalize_paths(bool on) { normalize_paths_ = on; }
  bool normalize_paths() const { return normalize_paths_; }

  // ---- verified-call cache (the Cached tier of the lattice) ----
  /// The MAC-verification fast path (os/asccache.h), on by default. When
  /// disabled, every trap performs the full §3.4 verification (the paper's
  /// uncached behavior; benchmarks compare both). Gating a fast path off
  /// demotes every promoted inline site (see os/tiertable.h).
  void set_verified_call_cache(bool on) { tenant_.tiers.set_cache_enabled(on); }
  bool verified_call_cache() const { return tenant_.tiers.cache_enabled(); }
  AscCache& call_cache() { return tenant_.tiers.cache(); }
  const AscCache& call_cache() const { return tenant_.tiers.cache(); }
  /// Hit/miss/eviction counters of the fast path (stats audit surface).
  const AscCacheStats& cache_stats() const { return tenant_.tiers.cache().stats(); }

  // ---- policy-state shadow (the Shadowed tier of the lattice) ----
  /// The control-flow fast path (os/ascshadow.h), on by default: the kernel
  /// keeps the trusted {lastBlock, counter} copy and skips both per-call
  /// state MACs while the guest record stays unwritten. Disabling flushes
  /// (writes back) every live record first, so the eager §3.2 protocol
  /// resumes coherently mid-run.
  void set_policy_shadow(bool on);
  bool policy_shadow() const { return tenant_.tiers.shadow_enabled(); }
  AscShadow& shadow() { return tenant_.tiers.shadow(); }
  const AscShadow& shadow() const { return tenant_.tiers.shadow(); }
  /// Hit/invalidation/write-back counters of the shadow, beside cache_stats.
  const AscShadowStats& shadow_stats() const { return tenant_.tiers.shadow().stats(); }

  // ---- the Inline tier (trap-less pre-authorized fast path) ----
  /// Off by default: with the gate off the kernel is byte-identical to the
  /// pre-lattice trap pipeline (golden oracle). When on, a (pid, site) that
  /// earns N consecutive clean Shadowed-tier verifications of a
  /// side-effect-light syscall is promoted: the trap skips the
  /// enforce->audit pipeline behind a pre-authorized register/shadow probe,
  /// demoted by exactly the events that invalidate the cache and shadow
  /// (guest write, key rotation, teardown, health demotion, monitor swap).
  void set_inline_tier(bool on) { tenant_.tiers.set_inline_enabled(on); }
  bool inline_tier() const { return tenant_.tiers.inline_enabled(); }
  /// N: clean Shadowed verifications a site re-earns after every demotion.
  void set_inline_promote_threshold(std::uint32_t n) {
    tenant_.tiers.set_inline_threshold(n);
  }
  std::uint32_t inline_promote_threshold() const {
    return tenant_.tiers.inline_threshold();
  }
  /// The whole lattice (inspection + fault-injection surface).
  TierTable& tier_table() { return tenant_.tiers; }
  const TierTable& tier_table() const { return tenant_.tiers; }
  /// Aligned per-tier counters (eager/cached/shadowed/inline hits,
  /// promotions, demotions by cause) -- the `asctool run --stats` table.
  TierStats tier_stats() const { return tenant_.tiers.stats(); }
  bool inline_site_promoted(int pid, std::uint32_t call_site) const {
    return tenant_.tiers.inline_site_promoted(pid, call_site);
  }
  std::size_t inline_sites() const { return tenant_.tiers.inline_sites(); }

  // ---- the tenant shard ----
  /// The whole per-tenant slice of this kernel's state (os/tenant.h): key,
  /// tier lattice, audit. One kernel == one tenant; the fleet layer holds
  /// many kernels and therefore many disjoint shards.
  TenantState& tenant_state() { return tenant_; }
  const TenantState& tenant_state() const { return tenant_; }

  /// Process teardown/exec hook: one lattice-wide demotion (os/tiertable.h)
  /// -- demote the pid's inline sites (its Memory is still alive here),
  /// write back and drop its shadowed policy state, drop every cached
  /// verification, erase its health record -- so recycled pids or re-execed
  /// images can never inherit stale trust. Idempotent: a second call for
  /// the same pid is a no-op, which the teardown-mid-verify chaos class
  /// relies on.
  void end_process(int pid) { tenant_.tiers.end_process(pid); }

  // ---- per-pid health (self-healing fast-path quarantine) ----
  // See os/health.h for the state machine and the degradation lattice.
  /// Current state of `pid` (Healthy when untracked).
  HealthState health(int pid) const;
  /// The pid's full record, or nullptr when untracked (inspection surface).
  const HealthRecord* health_record(int pid) const;
  /// Kernel-wide transition counters (survive process teardown).
  const HealthStats& health_stats() const { return tenant_.tiers.health_stats(); }
  /// Pids with a live health record (must be zero after all processes end).
  std::size_t tracked_health() const { return tenant_.tiers.health().size(); }
  /// Clean eager verifications required to leave Quarantined (K; doubles on
  /// every re-entry, capped by the backoff cap). Also the Degraded->Healthy
  /// probation length.
  void set_health_promote_threshold(std::uint32_t k) {
    tenant_.tiers.promote_threshold = k == 0 ? 1 : k;
  }
  std::uint32_t health_promote_threshold() const {
    return tenant_.tiers.promote_threshold;
  }
  void set_health_backoff_cap(std::uint32_t cap) {
    tenant_.tiers.backoff_cap = cap == 0 ? 1 : cap;
  }
  std::uint32_t health_backoff_cap() const { return tenant_.tiers.backoff_cap; }
  /// Fast-path gates the enforcement layer consults per trap: the cache
  /// survives until Quarantined, the shadow only while Healthy.
  bool fast_path_cache_allowed(int pid) const {
    return health(pid) != HealthState::Quarantined;
  }
  bool fast_path_shadow_allowed(int pid) const {
    return health(pid) == HealthState::Healthy;
  }
  /// An EXTERNAL invariant oracle (chaos engine, tests) detected an
  /// inconsistency in this pid's kernel bookkeeping: demote its health and
  /// quarantine its fast paths. Never counts toward the violation budget --
  /// this is the monitor's defect, not the guest's.
  void report_internal_fault(Process& p, const std::string& detail);
  /// Cheap per-trap self-checks of the fast-path bookkeeping (shadow nonce
  /// coherence, cache/range-hook pairing), run by the ASC monitor before it
  /// gates the fast paths. Charges no modeled cycles and emits no records on
  /// clean runs. Demotes on a mismatch.
  void health_self_check(Process& p, const TrapContext& ctx);
  /// Outcome of one ASC verification of `pid` (clean = no violation, eager =
  /// served by neither fast path); drives streak counting and the earned
  /// re-promotions. Charges no modeled cycles.
  void note_verification(Process& p, const TrapContext& ctx, bool clean, bool eager);

  // ---- live key rotation (differential rekey; installer/rekeyer.h) ----
  /// Move a live process onto `new_key` using the re-signed MAC bytes in
  /// `view` (produced by Rekeyer::rekey over the same installed image). With
  /// no trap in flight the swap is applied immediately; requested mid-trap
  /// (e.g. from a stage hook) it is PARKED and applied at the next trap's
  /// entry, before any verification begins -- so every trap verifies under
  /// wholly-old or wholly-new material, never a mix (the rekey-toctou fault
  /// class pins this). The swap: establish the trusted {lastBlock, counter}
  /// (shadow copy if live, else the guest record verified under the OLD
  /// key), run the set_key() rotation spine (inline demotions + shadow
  /// write-backs under the old key), patch the view's MAC slots, then re-MAC
  /// the CURRENT state under the new key. A guest record that fails the
  /// old-key check refuses the swap (the old key stays; the tampered record
  /// fail-stops at the next eager check). Returns true if applied, false if
  /// deferred or refused.
  bool rekey(Process& p, const crypto::Key128& new_key, const RekeyView& view);
  const RekeyCounters& rekey_counters() const { return rekey_counters_; }
  /// Depth of in-flight traps (0 = quiesced). A rekey requested at depth 0
  /// applies immediately; deeper requests defer to the next trap boundary.
  /// Pre-syscall hooks run OUTSIDE the trap, so a hook observing depth 0 is
  /// at exactly the point where a pending rekey will land next.
  int trap_depth() const { return trap_depth_; }

  /// Stage hook: fires at every TrapStage boundary of on_syscall with the
  /// in-flight context (chaos/fault injection surface; pass {} to clear).
  /// The monitor is never on the stack when the hook runs, so hooks may
  /// rotate keys, tear down the process, or invalidate fast-path entries.
  using StageHook = std::function<void(Process&, TrapContext&, TrapStage)>;
  void set_stage_hook(StageHook h) { stage_hook_ = std::move(h); }

  // ---- audit layer (graceful degradation + the security log) ----
  AuditLog& audit_log_component() { return tenant_.audit; }
  const AuditLog& audit_log_component() const { return tenant_.audit; }
  /// Reaction to an established violation (default: paper-faithful
  /// fail-stop). Budgeted mode kills only when a process exceeds the
  /// violation budget; AuditOnly never kills.
  void set_failure_mode(FailureMode m) { tenant_.audit.set_failure_mode(m); }
  FailureMode failure_mode() const { return tenant_.audit.failure_mode(); }
  /// Violations tolerated per process in Budgeted mode before the kill
  /// (0 = kill on the first violation, same as FailStop).
  void set_violation_budget(std::uint32_t n) { tenant_.audit.set_violation_budget(n); }
  std::uint32_t violation_budget() const { return tenant_.audit.violation_budget(); }
  /// Structured security/audit log: violation verdicts ("alert the
  /// administrator"), spawn events, network sends, signals.
  const std::vector<VerdictRecord>& audit_log() const { return tenant_.audit.records(); }
  /// Append a record to the audit log (and its formatted view).
  void audit(VerdictRecord rec) { tenant_.audit.append(std::move(rec)); }
  /// Legacy formatted view of the audit log, one line per record.
  const std::vector<std::string>& event_log() const { return tenant_.audit.formatted(); }
  /// Clear the audit layer -- both the structured log and the formatted
  /// view, which can never diverge. The trace (below) is a separate,
  /// training-oriented surface and is deliberately not touched: see
  /// os/auditlog.h.
  void clear_events() { tenant_.audit.reset(); }

  // ---- tracing (training telemetry; not part of the audit layer) ----
  void set_tracing(bool on) { tracing_ = on; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  /// Virtual wall clock (ns); advanced by nanosleep and by retired cycles.
  std::uint64_t virtual_time_ns() const { return vtime_ns_; }
  void advance_time(std::uint64_t ns) { vtime_ns_ += ns; }

  /// Hook used by the Spawn syscall: run another program to completion and
  /// return its exit status (or a negative error). Installed by vm::Machine.
  /// Re-enters the trap pipeline for every child syscall; each nested trap
  /// gets its own stacked TrapContext.
  using SpawnHandler = std::function<std::int64_t(Process& parent, const std::string& path,
                                                  const std::vector<std::string>& argv)>;
  void set_spawn_handler(SpawnHandler h) { spawn_ = std::move(h); }

  /// The software trap handler. Entered by the VM on a SYSCALL instruction;
  /// `call_site` is the address of the trapping instruction (derived from
  /// the interrupt return address in the real system). Runs the pipeline:
  /// capture, enforce, dispatch, audit.
  void on_syscall(Process& p, std::uint32_t call_site);

 private:
  /// (1) trap layer: capture the context and charge the trap cost.
  TrapContext capture_trap(Process& p, std::uint32_t call_site);
  /// Resolve __syscall indirection (BsdSim's route to mmap) into the
  /// context's effective identity. False = unresolvable (ENOSYS).
  bool resolve_indirect(TrapContext& ctx);
  /// Current virtual timestamp for audit records of `p`.
  std::uint64_t now_ns(const Process& p) const { return vtime_ns_ + p.cycles; }
  /// Audit a non-violation event (net/signal/spawn) with full trap context.
  void log_event(Process& p, const TrapContext& ctx, AuditKind kind, std::string detail);

  // ---- health machine internals (see os/health.h) ----
  /// Record an internal inconsistency: audit it, evict the pid's fast
  /// paths, and demote one level. `ctx` may be null (oracle reports arrive
  /// outside any trap).
  void internal_fault(Process& p, const TrapContext* ctx, const std::string& detail);
  /// Drop the pid's cache and shadow state; a live shadow entry is
  /// re-materialized into guest memory under the authoritative kernel-side
  /// nonce so eager verification resumes coherently.
  void evict_fast_paths(Process& p);
  /// Enter (or deepen) quarantine: doubles the promote threshold per entry.
  void enter_quarantine(HealthRecord& h);
  /// Append an InternalFault/Health record (synthesizes a context-free
  /// record when ctx is null).
  void health_event(Process& p, const TrapContext* ctx, AuditKind kind,
                    std::string detail);

  // ---- dispatch layer (os/dispatch.cpp) ----
  std::int64_t dispatch(Process& p, TrapContext& ctx);
  std::string read_path(Process& p, std::uint32_t addr);
  std::int64_t sys_open(Process& p, const TrapContext& ctx);
  std::int64_t sys_read(Process& p, TrapContext& ctx,
                        const std::array<std::uint32_t, kMaxSyscallArgs>& a);
  std::int64_t sys_write(Process& p, TrapContext& ctx,
                         const std::array<std::uint32_t, kMaxSyscallArgs>& a);

  Personality personality_;
  CostModel cost_;
  SimFs fs_;
  Enforcement enforcement_ = Enforcement::Off;
  std::unique_ptr<SyscallMonitor> monitor_;
  /// True iff the active monitor is the built-in ASC pipeline -- the only
  /// monitor whose verifications can promote a site, so the only one the
  /// inline probe may stand in for. Custom monitors (install_monitor)
  /// conservatively clear it.
  bool asc_monitor_ = false;
  /// The per-tenant shard: key, tier lattice, audit (os/tenant.h).
  TenantState tenant_;
  std::map<std::string, MonitorPolicy> monitor_policies_;
  bool capability_checking_ = false;
  bool normalize_paths_ = false;
  bool tracing_ = false;
  std::vector<TraceEntry> trace_;
  std::uint64_t vtime_ns_ = 1'000'000'000;  // arbitrary epoch
  SpawnHandler spawn_;
  StageHook stage_hook_;

  // ---- live-rekey machinery ----
  /// Perform the swap now (trap boundary established by the caller).
  bool apply_rekey(Process& p, const crypto::Key128& new_key, const RekeyView& view);
  struct PendingRekey {
    crypto::Key128 key{};
    RekeyView view;
  };
  /// A rotation requested mid-trap, applied at the next depth-0 trap entry.
  std::optional<PendingRekey> pending_rekey_;
  RekeyCounters rekey_counters_;
  /// Nesting depth of on_syscall (spawn nests child traps inside the
  /// parent's); rekeys apply only at depth 0, i.e. between whole traps.
  int trap_depth_ = 0;
};

}  // namespace asc::os
