// Kernel-resident policy-state shadow: the control-flow fast path.
//
// The §3.2 online memory checker keeps {lastBlock, lbMAC} in UNTRUSTED
// application memory, so the §3.4 checker must verify the record's MAC and
// re-MAC the updated record on every single call -- two AES-CMAC operations
// (2 x mac_cost(12) cycles) that survive even a verified-call cache hit and
// dominate the residual per-call overhead of cheap syscalls (see
// BENCH_table4.json). The shadow removes them: the kernel keeps its own
// trusted per-process copy of {state_ptr, lastBlock, counter}. While the
// guest has not written the watched {lastBlock, lbMAC} region, the checker
// consults and updates only the shadow (no MAC at all, just
// cost.shadow_hit_cost()); the lbMAC in guest memory is materialized
// LAZILY -- written back (one CMAC under the current key) only when the
// shadow is invalidated.
//
// Why this is exactly as strong as the online memory checker:
//   * the shadow lives in kernel memory; the guest cannot address it. Its
//     {lastBlock, counter} is updated only by the checker itself, with the
//     same transition the eager protocol MACs into guest memory -- so a
//     shadow hit proves precisely what a verify-MAC over an untampered
//     guest record would prove;
//   * a shadow entry exists only after the slow path fully verified the
//     guest record once (the install point), and only while no guest write
//     touched the watched region -- vm::Memory write-watch hooks fire
//     BEFORE the bytes change, so the trusted record is written back first
//     and the tampering write lands on top of it;
//   * after any invalidation the next call takes the existing slow path
//     over whatever bytes the guest left behind, so a tampered or replayed
//     record is caught exactly where the eager checker would catch it.
//
// Invalidation table (every path drops the entry and unwatches its range):
//   guest write into the record   -> write back (if dirty), then slow path
//   key rotation                  -> write back under the OLD key first
//   process teardown / exec       -> write back, drop hooks with the pid
//   shadow disabled at runtime    -> write back, so the eager protocol
//                                    resumes coherently
//   cold start / repointed lbPtr  -> no entry, slow path verifies
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

namespace asc::os {

struct AscShadowStats {
  std::uint64_t hits = 0;           // control-flow checks served by the shadow
  std::uint64_t misses = 0;         // checks that fell back to the slow path
  std::uint64_t installs = 0;       // entries created after a full verification
  std::uint64_t invalidations = 0;  // entries dropped (write/rotation/teardown)
  std::uint64_t write_backs = 0;    // lazy lbMAC materializations (one CMAC each)

  double hit_rate() const {
    const std::uint64_t probes = hits + misses;
    return probes == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(probes);
  }
};

class AscShadow {
 public:
  /// The kernel's trusted copy of one process's control-flow state. `dirty`
  /// means the guest record is stale (hits advanced the shadow only) and a
  /// write-back is owed on invalidation.
  struct Entry {
    std::uint32_t state_ptr = 0;
    std::uint32_t last_block = 0;
    std::uint64_t counter = 0;
    bool dirty = false;
  };

  /// (Un)registers the entry's {lastBlock, lbMAC} range with the process's
  /// Memory write watch.
  using RangeHook = std::function<void(std::uint32_t addr, std::uint32_t len)>;
  /// Materialize `e` into guest memory: write lastBlock and a fresh lbMAC
  /// over encode_policy_state(e.last_block, e.counter) under the current
  /// key, charging one mac_cost to the process. Invoked AFTER the entry's
  /// range is unwatched, so its own stores cannot re-enter the shadow.
  using WriteBackFn = std::function<void(const Entry& e)>;

  /// Wire `pid` to its address space. Installed by the checker at the first
  /// full verification, dropped at process teardown (flush_pid) -- the
  /// hooks' captured Process/Memory references stay valid in between.
  void set_hooks(int pid, RangeHook watch, RangeHook unwatch, WriteBackFn write_back);
  bool has_hooks(int pid) const { return hooks_.count(pid) != 0; }
  void drop_hooks(int pid) { hooks_.erase(pid); }

  /// The live entry for `pid` iff it shadows exactly `state_ptr`, else
  /// nullptr. Counts a hit or a miss either way.
  Entry* find(int pid, std::uint32_t state_ptr);

  /// Install after a slow-path verification left guest memory holding the
  /// freshly MACed {last_block, counter} record at `state_ptr` (dirty =
  /// false: shadow and guest agree). Watches the record's range. Replaces
  /// (flushing) any prior entry of the pid, e.g. a repointed lbPtr.
  void install(int pid, std::uint32_t state_ptr, std::uint32_t last_block,
               std::uint64_t counter);

  /// A guest write of [addr, addr+len) is about to land in `pid`: if it
  /// overlaps the shadowed record, unwatch, write back (if dirty), and drop
  /// the entry -- the write then lands on top of the materialized trusted
  /// bytes and the next call re-verifies via the slow path.
  void invalidate_write(int pid, std::uint32_t addr, std::uint32_t len);

  /// Process teardown / exec: write back, drop the entry and the hooks.
  void flush_pid(int pid);

  /// Health quarantine: unwatch and drop the pid's entry WITHOUT the normal
  /// write-back, returning it (nullopt when none was live). After an
  /// internal inconsistency the entry's {last_block, counter} pair can no
  /// longer be written back wholesale -- the kernel re-materializes the
  /// guest record itself, under its authoritative per-process nonce (see
  /// Kernel::evict_fast_paths). Hooks stay: the process is still alive and
  /// a later re-promotion may install a fresh entry.
  std::optional<Entry> take_pid(int pid);

  /// Key rotation or disabling the fast path: write every dirty record back
  /// (the caller must still hold the OLD key) and drop all entries. Hooks
  /// stay -- their processes are still alive.
  void flush_all();

  std::size_t size() const { return entries_.size(); }
  bool has(int pid) const { return entries_.count(pid) != 0; }
  /// The entry for `pid` regardless of state_ptr (inspection; no stats).
  const Entry* peek(int pid) const;
  /// Mutable no-stats access for the inline tier's pre-authorized probe,
  /// which advances {last_block, counter} exactly like a hit but must not
  /// perturb the hit/miss counters the stats table reports per tier.
  Entry* peek_mut(int pid);

  const AscShadowStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Hooks {
    RangeHook watch;
    RangeHook unwatch;
    WriteBackFn write_back;
  };

  /// Unwatch, write back (when owed), and erase one entry.
  void drop_entry(std::map<int, Entry>::iterator it);

  std::map<int, Entry> entries_;  // at most one live record per process
  std::map<int, Hooks> hooks_;
  AscShadowStats stats_;
};

}  // namespace asc::os
