// Deterministic cycle cost model.
//
// The paper measures CPU cycles with the Pentium `rdtsc` instruction
// (Table 4) and wall-clock seconds with `time` (Table 6). Our substrate is an
// interpreter, so we charge *modeled* cycles instead: each TSA instruction,
// each kernel trap, each byte copied by read/write, and each AES block MACed
// by the checker has a fixed cost. The constants below are calibrated so the
// unauthenticated micro costs land near the paper's Table 4 column 2 (e.g.
// getpid ~1.1k cycles, write(4096) ~39k cycles) and the authentication delta
// lands near the paper's ~4k cycles/call. Relative shapes -- which is what a
// simulation can legitimately reproduce -- then follow.
#pragma once

#include <cstdint>

#include "isa/isa.h"
#include "os/syscalls.h"

namespace asc::os {

struct CostModel {
  // ---- CPU (charged by the VM per retired instruction) ----
  std::uint64_t alu = 1;
  std::uint64_t mul = 3;
  std::uint64_t div = 12;
  std::uint64_t mem = 2;
  std::uint64_t stack = 2;
  std::uint64_t branch = 1;
  std::uint64_t call_ret = 3;

  // ---- kernel trap ----
  // Round-trip user->kernel->user cost (mode switch, register save/restore,
  // dispatch). Table 4's getpid(), the cheapest call, is 1141 cycles on the
  // paper's hardware; ~1100 of that is this fixed cost.
  std::uint64_t trap = 1100;

  // Base handler cost per syscall (added to trap).
  std::uint64_t handler_simple = 40;     // getpid, getuid, umask...
  std::uint64_t handler_time = 290;      // gettimeofday (paper: 1395 total)
  std::uint64_t handler_brk = 55;        // brk (paper: 1155 total)
  std::uint64_t handler_fs_meta = 900;   // open/stat/unlink/... path walks
  std::uint64_t handler_fd = 250;        // close/dup/lseek/fcntl
  std::uint64_t handler_io_base = 160;   // read/write fixed part

  // Per-byte copy costs. read(4096) = 7324 total in Table 4
  // => (7324-1100-160)/4096 ~ 1.48 cyc/B; write(4096) = 39479 total
  // => (39479-1100-160)/4096 ~ 9.33 cyc/B (buffer-cache write dominates).
  double read_per_byte = 1.48;
  double write_per_byte = 9.33;

  // ---- checker (authenticated system calls) ----
  // AES-CMAC: per-message setup + per-16-byte-block cost. A typical
  // authenticated call computes 3-4 MACs over short inputs; the paper
  // reports ~4,000 cycles of total checking overhead per call. The K1/K2
  // subkey derivation (an extra AES operation plus two shifted XORs) is
  // hoisted to once-per-key -- crypto/cmac.cpp shares one schedule per
  // distinct key -- so it is charged at key install (`mac_subkey_setup`),
  // not per message; per-message setup is correspondingly below the seed's
  // 360-cycle figure.
  std::uint64_t mac_setup = 220;
  std::uint64_t mac_subkey_setup = 140;  // once per key install, off the hot path
  std::uint64_t mac_per_block = 310;
  // Argument marshalling, AS header reads, predecessor-set membership scan,
  // policy-state update bookkeeping.
  std::uint64_t check_fixed = 420;
  std::uint64_t check_per_as_arg = 90;

  // ---- verified-call cache (hot-path fast path) ----
  // A hit replaces the AES-CMAC verifications over immutable per-site bytes
  // (encoded call, call MAC, pred-set blob, static AS contents) with a table
  // lookup plus an exact byte comparison against those same bytes as seen at
  // the last full verification. The online memory checker
  // (lastBlock/lbMAC/counter) is still charged in full on every call -- it
  // is per-call nonce state and is never cached.
  std::uint64_t cache_hit_fixed = 150;
  std::uint64_t cache_cmp_per_block = 18;

  // ---- policy-state shadow (kernel-resident control-flow state) ----
  // A shadow hit replaces the §3.2 verify-MAC + re-MAC pair over the
  // {lastBlock, counter} record -- 2 x mac_cost(12) = 1060 cycles, the floor
  // under every cached call with control flow -- with one kernel map lookup
  // and an in-place update of the trusted copy. The deferred re-MAC is
  // charged as a full mac_cost at write-back time instead (os/ascshadow.h).
  std::uint64_t shadow_hit_fixed = 40;

  // ---- inline tier (trap-less pre-authorized fast path) ----
  // A promoted (pid, site) skips the whole enforce->audit pipeline behind a
  // register/shadow snapshot compare: no monitor dispatch, no checker entry,
  // no audit hand-off. What remains per call is the probe itself -- a map
  // lookup plus a handful of register equality tests. The trap cost is
  // STILL charged (the simulated CPU has no trampoline to patch over the
  // SYSCALL instruction), so the Table 4 `auth_inline` column reports the
  // honest residual overhead of the probe, not a free lunch.
  std::uint64_t inline_hit_fixed = 25;

  // ---- baseline monitors (ablations) ----
  // User-space policy daemon (Systrace/Ostia style): two extra context
  // switches plus a policy table lookup in the daemon.
  std::uint64_t context_switch = 3200;
  std::uint64_t daemon_lookup = 700;
  // Fully in-kernel table monitor: hash lookup + argument compare.
  std::uint64_t ktable_lookup = 380;

  std::uint64_t instr_cost(isa::Op op) const {
    using isa::Op;
    switch (op) {
      case Op::Mul:
      case Op::Muli:
        return mul;
      case Op::Div:
      case Op::Mod:
        return div;
      case Op::Load:
      case Op::Store:
      case Op::Loadb:
      case Op::Storeb:
        return mem;
      case Op::Push:
      case Op::Pop:
        return stack;
      case Op::Call:
      case Op::Callr:
      case Op::Ret:
        return call_ret;
      case Op::Jmp:
      case Op::Jmpr:
      case Op::Jz:
      case Op::Jnz:
      case Op::Jlt:
      case Op::Jle:
      case Op::Jgt:
      case Op::Jge:
        return branch;
      default:
        return alu;
    }
  }

  std::uint64_t mac_cost(std::size_t message_len) const {
    const std::uint64_t blocks = message_len == 0 ? 1 : (message_len + 15) / 16;
    return mac_setup + mac_per_block * blocks;
  }

  /// Modeled cost of a verified-call cache hit that compared `material_len`
  /// bytes (lookup + byte compare; replaces `check_fixed` and every
  /// static-input mac_cost of the miss path).
  std::uint64_t cache_hit_cost(std::size_t material_len) const {
    const std::uint64_t blocks = material_len == 0 ? 1 : (material_len + 15) / 16;
    return cache_hit_fixed + cache_cmp_per_block * blocks;
  }

  /// Modeled cost of a policy-state shadow hit (replaces both state
  /// mac_costs of the §3.2 online memory checker on the hit path).
  std::uint64_t shadow_hit_cost() const { return shadow_hit_fixed; }

  /// Modeled cost of an inline-tier hit: the pre-authorized probe standing
  /// in for the entire enforcement pipeline (charged on top of `trap`).
  std::uint64_t inline_hit_cost() const { return inline_hit_fixed; }

  std::uint64_t handler_base_cost(SysId id) const {
    switch (id) {
      case SysId::Getpid:
      case SysId::Getuid:
      case SysId::Umask:
      case SysId::Sysconf:
      case SysId::Madvise:
      case SysId::Kill:
      case SysId::Sigaction:
      case SysId::Uname:
        return handler_simple;
      case SysId::Gettimeofday:
      case SysId::Time:
      case SysId::Nanosleep:
        return handler_time;
      case SysId::Brk:
      case SysId::Mmap:
      case SysId::Munmap:
        return handler_brk;
      case SysId::Open:
      case SysId::Stat:
      case SysId::Unlink:
      case SysId::Rename:
      case SysId::Mkdir:
      case SysId::Rmdir:
      case SysId::Chdir:
      case SysId::Chmod:
      case SysId::Access:
      case SysId::Readlink:
      case SysId::Symlink:
      case SysId::Spawn:
        return handler_fs_meta;
      case SysId::Close:
      case SysId::Dup:
      case SysId::Lseek:
      case SysId::Fcntl:
      case SysId::Fstat:
      case SysId::Fstatfs:
      case SysId::Ftruncate:
      case SysId::Ioctl:
      case SysId::Getcwd:
      case SysId::Getdirentries:
      case SysId::Pipe:
        return handler_fd;
      case SysId::Read:
      case SysId::Write:
      case SysId::Writev:
      case SysId::Sendto:
      case SysId::Recvfrom:
      case SysId::Socket:
      case SysId::Connect:
        return handler_io_base;
      default:
        return handler_simple;
    }
  }
};

}  // namespace asc::os
