// The audit layer of the trap pipeline: the structured security/audit log,
// its legacy formatted view, and the failure-mode decision (graceful
// degradation) applied once the enforcement layer has established a
// violation.
//
// The two views (structured records and formatted lines) are appended and
// cleared together -- reset() is the only way to clear either, so they can
// never diverge. The kernel's instruction-level trace (Kernel::trace()) is
// deliberately NOT part of this component: training-based policy generation
// (monitor/training.cpp) clears the trace between sample runs while audit
// events must survive, and the Table 1/2 benches rely on that partial
// clearing (a training pass must not erase the security log).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "os/process.h"
#include "os/trapcontext.h"

namespace asc::os {

/// How the kernel reacts once a violation has been established (graceful
/// degradation). The paper prescribes fail-stop ("terminate the process,
/// log the call, alert the administrator", §3.4); the other modes support
/// staged rollout: audit a new policy in production before enforcing it.
enum class FailureMode : std::uint8_t {
  FailStop,   // kill on the first violation (paper-faithful)
  Budgeted,   // tolerate up to the violation budget, then kill
  AuditOnly,  // record every verdict, never kill (permissive)
};

std::string failure_mode_name(FailureMode m);

/// What a structured audit record describes.
enum class AuditKind : std::uint8_t {
  Violation,      // the monitor established a policy violation
  Net,            // outbound network traffic
  Signal,         // signal sent to another process
  Spawn,          // program execution request
  InternalFault,  // the kernel's OWN bookkeeping failed a self-check -- not
                  // guest tamper; never counts against the violation budget
  Health,         // a per-pid health-state transition (see os/health.h)
};

/// One structured entry of the kernel's security/audit log. Every event
/// carries the process, program, trapping call, and virtual timestamp; for
/// violations, the Violation class and whether the verdict killed the guest.
struct VerdictRecord {
  AuditKind kind = AuditKind::Violation;
  int pid = 0;
  std::string prog;
  std::uint16_t sysno = 0;
  std::uint32_t call_site = 0;
  Violation violation = Violation::None;
  bool killed = false;  // did this verdict terminate the process?
  std::string detail;
  std::uint64_t vtime_ns = 0;

  /// Legacy one-line view ("ALERT pid=... prog=... ...", "SPAWN ...").
  std::string to_string() const;
};

class AuditLog {
 public:
  // ---- graceful degradation configuration ----
  void set_failure_mode(FailureMode m) { failure_mode_ = m; }
  FailureMode failure_mode() const { return failure_mode_; }
  /// Violations tolerated per process in Budgeted mode before the kill
  /// (0 = kill on the first violation, same as FailStop).
  void set_violation_budget(std::uint32_t n) { violation_budget_ = n; }
  std::uint32_t violation_budget() const { return violation_budget_; }

  // ---- the two views ----
  const std::vector<VerdictRecord>& records() const { return records_; }
  const std::vector<std::string>& formatted() const { return formatted_; }
  /// Approximate retained bytes of both views (fleet capacity planning).
  std::size_t approx_bytes() const;
  /// Append a record to both views.
  void append(VerdictRecord rec);
  /// Clear both views. The single clearing operation of the audit layer.
  void reset();

  /// Record a violation verdict and apply the failure mode: increments the
  /// process's violation count, decides life or death (kill on FailStop, on
  /// budget exhaustion in Budgeted, never in AuditOnly), and appends the
  /// record. On a kill, marks the process dead with the violation. Returns
  /// true when the process was killed (the trap must end); false when the
  /// violation was tolerated and the call should proceed.
  bool deny(Process& p, const TrapContext& ctx, Violation v, const std::string& detail,
            std::uint64_t now_ns);

  /// Audit a non-violation security event (net/signal/spawn) with the trap
  /// context of the call that produced it.
  void event(const Process& p, const TrapContext& ctx, AuditKind kind, std::string detail,
             std::uint64_t now_ns);

 private:
  FailureMode failure_mode_ = FailureMode::FailStop;
  std::uint32_t violation_budget_ = 0;
  std::vector<VerdictRecord> records_;
  std::vector<std::string> formatted_;
};

}  // namespace asc::os
