// The per-tenant shard of kernel enforcement state.
//
// Everything the kernel tracks on behalf of ONE tenant's guest processes
// lives here, in a single value type with no hidden global state behind it:
// the MAC key, the tiered verification lattice (os/tiertable.h -- the
// verified-call cache, the policy-state shadow, the per-pid health map, and
// the trap-less inline tier, behind ONE promotion/demotion lattice and one
// write-watch invalidation spine), and the structured audit log. os::Kernel
// owns exactly one TenantState and delegates to it, so the single-tenant
// API is unchanged -- but a fleet of kernels is now, by construction, a
// fleet of disjoint shards: thousands of tenants can verify system calls
// concurrently with no shared mutable state at all beyond the process-wide
// CMAC schedule memo, which is itself sharded and per-shard locked
// (crypto/cmac.h). fleet::Driver builds on exactly this property.
//
// Sharding rationale (why these three and nothing else): each member is
// keyed by pid or by the tenant's key, never by anything another tenant can
// name. The pieces of Kernel that stay outside -- personality, cost model,
// the simulated filesystem, the monitor, trace/tracing, the virtual clock --
// are configuration or simulation plumbing, not enforcement state; sharing
// or cloning them is a policy decision the embedder makes per System.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/cmac.h"
#include "os/auditlog.h"
#include "os/tiertable.h"

namespace asc::os {

struct TenantState {
  /// The tenant's MAC key (installer/kernel shared secret). Distinct tenants
  /// hold distinct MacKey instances even under equal key bytes, so rotation
  /// in one tenant can never invalidate another tenant's verifications.
  std::optional<crypto::MacKey> key;

  /// The tiered verification lattice: Eager -> Cached -> Shadowed -> Inline
  /// per (pid, site), with the per-pid health machine as its demotion floor
  /// and one write-watch spine invalidating every tier (os/tiertable.h).
  TierTable tiers;

  /// Structured security/audit log; the fleet's aggregated audit pipeline
  /// drains records() per tenant and merges them in tenant order.
  AuditLog audit;

  /// Approximate retained bytes of this shard (capacity-planning surface for
  /// the Table 7 fleet bench: deterministic, counts the dynamic containers,
  /// not allocator overhead).
  std::size_t approx_bytes() const {
    return sizeof(TenantState) + tiers.approx_bytes() + audit.approx_bytes();
  }
};

}  // namespace asc::os
