// The per-tenant shard of kernel enforcement state.
//
// Everything the kernel tracks on behalf of ONE tenant's guest processes
// lives here, in a single value type with no hidden global state behind it:
// the MAC key, the verified-call cache and its enable flag, the policy-state
// shadow and its enable flag, the per-pid health map with its kernel-wide
// counters and promotion knobs, and the structured audit log. os::Kernel
// owns exactly one TenantState and delegates to it, so the single-tenant
// API is unchanged -- but a fleet of kernels is now, by construction, a
// fleet of disjoint shards: thousands of tenants can verify system calls
// concurrently with no shared mutable state at all beyond the process-wide
// CMAC schedule memo, which is itself sharded and per-shard locked
// (crypto/cmac.h). fleet::Driver builds on exactly this property.
//
// Sharding rationale (why these five and nothing else): each member is
// keyed by pid or by the tenant's key, never by anything another tenant can
// name. The pieces of Kernel that stay outside -- personality, cost model,
// the simulated filesystem, the monitor, trace/tracing, the virtual clock --
// are configuration or simulation plumbing, not enforcement state; sharing
// or cloning them is a policy decision the embedder makes per System.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "crypto/cmac.h"
#include "os/asccache.h"
#include "os/ascshadow.h"
#include "os/auditlog.h"
#include "os/health.h"

namespace asc::os {

struct TenantState {
  /// The tenant's MAC key (installer/kernel shared secret). Distinct tenants
  /// hold distinct MacKey instances even under equal key bytes, so rotation
  /// in one tenant can never invalidate another tenant's verifications.
  std::optional<crypto::MacKey> key;

  /// MAC-verification fast path (os/asccache.h) and its gate.
  AscCache cache;
  bool cache_enabled = true;

  /// Control-flow fast path (os/ascshadow.h) and its gate.
  AscShadow shadow;
  bool shadow_enabled = true;

  /// Structured security/audit log; the fleet's aggregated audit pipeline
  /// drains records() per tenant and merges them in tenant order.
  AuditLog audit;

  /// Per-pid health lattice (os/health.h) plus tenant-wide counters.
  std::map<int, HealthRecord> health;
  HealthStats health_stats;
  std::uint32_t promote_threshold = 8;
  std::uint32_t backoff_cap = 1024;

  /// Approximate retained bytes of this shard (capacity-planning surface for
  /// the Table 7 fleet bench: deterministic, counts the dynamic containers,
  /// not allocator overhead).
  std::size_t approx_bytes() const {
    std::size_t n = sizeof(TenantState);
    n += cache.approx_bytes();
    n += shadow.size() * (sizeof(int) + sizeof(AscShadow::Entry));
    n += audit.approx_bytes();
    n += health.size() * (sizeof(int) + sizeof(HealthRecord));
    return n;
  }
};

}  // namespace asc::os
