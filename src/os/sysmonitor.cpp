#include "os/sysmonitor.h"

#include "os/checker.h"
#include "os/kernel.h"
#include "policy/pattern.h"
#include "util/error.h"

namespace asc::os {

std::string enforcement_name(Enforcement e) {
  switch (e) {
    case Enforcement::Off: return "off";
    case Enforcement::Asc: return "asc";
    case Enforcement::Daemon: return "daemon";
    case Enforcement::KernelTable: return "kernel-table";
  }
  return "?";
}

namespace {

MonitorVerdict unknown_syscall(const TrapContext& ctx) {
  return {Violation::UnknownSyscall, "syscall number " + std::to_string(ctx.sysno)};
}

}  // namespace

MonitorVerdict NullMonitor::inspect(Process& p, TrapContext& ctx) {
  (void)p;
  (void)ctx;
  return {};
}

MonitorVerdict AscMonitor::inspect(Process& p, TrapContext& ctx) {
  if (kernel_.key() == nullptr) throw Error("kernel: Asc enforcement without a key");
  if (!ctx.id.has_value()) return unknown_syscall(ctx);
  // Self-check the fast-path bookkeeping BEFORE gating on it: a detected
  // inconsistency demotes the pid's health and evicts the suspect state, so
  // the gates below already reflect the demotion for this very trap.
  kernel_.health_self_check(p, ctx);
  const CheckResult r = check_authenticated_call(
      p, ctx.call_site, ctx.sysno, *ctx.id, signature(*ctx.id), *kernel_.key(),
      kernel_.cost(), kernel_.capability_checking(), &kernel_.tier_table(),
      /*use_cache=*/kernel_.fast_path_cache_allowed(p.pid),
      /*use_shadow=*/kernel_.fast_path_shadow_allowed(p.pid));
  ctx.charge(p, r.cycles);
  kernel_.note_verification(p, ctx, r.violation == Violation::None,
                            !r.cache_hit && !r.shadow_hit);
  return {r.violation, r.detail};
}

MonitorVerdict PolicyTableMonitor::inspect(Process& p, TrapContext& ctx) {
  // The lookup is charged before the unknown-number check: the monitor must
  // consult its table to learn the number is unknown.
  ctx.charge(p, lookup_cycles());
  if (!ctx.id.has_value()) return unknown_syscall(ctx);
  std::string why;
  if (!allows(p, ctx, &why)) return {Violation::MonitorDenied, std::move(why)};
  return {};
}

bool PolicyTableMonitor::allows(Process& p, const TrapContext& ctx, std::string* why) const {
  const MonitorPolicy* pol = kernel_.find_monitor_policy(p.name);
  if (pol == nullptr) {
    *why = "no policy loaded for program";
    return false;
  }
  const auto& sig = signature(*ctx.id);
  const bool allowed_by_alias = (pol->allow_fsread && sig.category == Category::FsRead) ||
                                (pol->allow_fswrite && sig.category == Category::FsWrite);
  if (pol->allowed.count(ctx.sysno) == 0 && !allowed_by_alias) {
    *why = std::string("syscall ") + sig.name + " not permitted by policy";
    return false;
  }
  // Path constraints (if any were trained for this syscall).
  auto pit = pol->path_patterns.find(ctx.sysno);
  if (pit != pol->path_patterns.end() && !pit->second.empty() && sig.arity > 0 &&
      sig.args[0] == ArgKind::PathIn) {
    std::string path;
    try {
      path = p.mem.read_cstr(ctx.args[0], 4096);
    } catch (const GuestFault&) {
      *why = "unreadable path argument";
      return false;
    }
    if (kernel_.normalize_paths()) {
      // Full resolution first (follows a final symlink -- the §5.4 attack);
      // fall back to parent-only for files that do not exist yet (O_CREAT).
      const SimFs& fs = kernel_.fs();
      if (auto norm = fs.normalize(p.cwd, path)) {
        path = *norm;
      } else if (auto parent = fs.normalize(p.cwd, path, /*parent_only=*/true)) {
        path = *parent;
      }
    }
    for (const auto& pat : pit->second) {
      if (policy::match_and_prove(pat, path).has_value()) return true;
    }
    *why = std::string(sig.name) + "(" + path + ") does not match any permitted path";
    return false;
  }
  return true;
}

std::uint64_t DaemonMonitor::lookup_cycles() const {
  const CostModel& cost = kernel_.cost();
  return 2 * cost.context_switch + cost.daemon_lookup;
}

std::uint64_t KernelTableMonitor::lookup_cycles() const {
  return kernel_.cost().ktable_lookup;
}

std::string ChainMonitor::name() const {
  std::string n = "chain(";
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i > 0) n += "+";
    n += links_[i]->name();
  }
  return n + ")";
}

MonitorVerdict ChainMonitor::inspect(Process& p, TrapContext& ctx) {
  for (const auto& link : links_) {
    MonitorVerdict v = link->inspect(p, ctx);
    if (!v.allowed()) return v;
  }
  return {};
}

std::unique_ptr<SyscallMonitor> make_monitor(Enforcement e, Kernel& kernel) {
  switch (e) {
    case Enforcement::Off: return std::make_unique<NullMonitor>();
    case Enforcement::Asc: return std::make_unique<AscMonitor>(kernel);
    case Enforcement::Daemon: return std::make_unique<DaemonMonitor>(kernel);
    case Enforcement::KernelTable: return std::make_unique<KernelTableMonitor>(kernel);
  }
  return std::make_unique<NullMonitor>();
}

}  // namespace asc::os
