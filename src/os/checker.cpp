#include "os/checker.h"

#include <algorithm>

#include "policy/authstring.h"
#include "policy/pattern.h"
#include "policy/policy.h"
#include "util/error.h"
#include "util/hex.h"

namespace asc::os {

namespace {

using policy::AsRef;
using policy::Descriptor;

/// Read the 20-byte AS header {len, MAC} that precedes an AS body pointer.
/// Returns false when the pointer is implausible (out of range, oversized
/// length) -- the denial-of-service guard of §3.2.
bool read_as_header(const vm::Memory& mem, std::uint32_t body_addr, AsRef& out) {
  if (body_addr < policy::kAsHeaderSize) return false;
  const std::uint32_t hdr = body_addr - policy::kAsHeaderSize;
  if (!mem.in_range(hdr, policy::kAsHeaderSize)) return false;
  out.addr = body_addr;
  out.len = mem.r32(hdr);
  if (out.len > policy::kAsMaxLength) return false;
  if (!mem.in_range(body_addr, out.len)) return false;
  mem.read_bytes(hdr + 4, 16, out.mac.data());
  return true;
}

crypto::Mac read_mac(const vm::Memory& mem, std::uint32_t addr) {
  crypto::Mac m{};
  mem.read_bytes(addr, 16, m.data());
  return m;
}

}  // namespace

CheckResult check_authenticated_call(Process& p, std::uint32_t call_site, std::uint16_t sysno,
                                     SysId id, const SyscallSig& sig,
                                     const crypto::MacKey& key, const CostModel& cost,
                                     bool capability_checking, TierTable* tiers,
                                     bool use_cache, bool use_shadow) {
  // The lattice's write-watch invalidation spine (os/tiertable.h) replaced
  // the checker-local callback: every fast path shares ONE per-process
  // watch, so the gating below decides only what each tier SERVES.
  AscCache* cache =
      (tiers != nullptr && use_cache && tiers->cache_enabled()) ? &tiers->cache() : nullptr;
  AscShadow* shadow =
      (tiers != nullptr && use_shadow && tiers->shadow_enabled()) ? &tiers->shadow() : nullptr;
  CheckResult res;
  res.cycles = cost.check_fixed;
  auto fail = [&](Violation v, std::string detail) {
    res.violation = v;
    res.detail = std::move(detail);
    return res;
  };

  const auto& regs = p.cpu.regs;
  const Descriptor des(regs[isa::kRegPolicyDescriptor]);
  const std::uint32_t block_id = regs[isa::kRegBlockId];
  const std::uint32_t pred_body = regs[isa::kRegPredSet];
  const std::uint32_t lb_ptr = regs[isa::kRegStatePtr];
  const std::uint32_t mac_ptr = regs[isa::kRegCallMac];

  try {
    // ---- step 1: reconstruct the encoded call and verify the call MAC ----
    policy::EncodedPolicyInputs in;
    in.sysno = sysno;
    in.descriptor = des;
    in.call_site = call_site;
    in.block_id = block_id;
    in.arity = sig.arity;
    for (int i = 0; i < sig.arity; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (des.arg_is_authenticated_string(i)) {
        AsRef as;
        if (!read_as_header(p.mem, regs[1 + idx], as)) {
          return fail(Violation::BadCallMac, "unreadable AS header for argument " +
                                                 std::to_string(i));
        }
        in.as_args[idx] = as;
        res.cycles += cost.check_per_as_arg;
      } else if (des.arg_constrained(i)) {
        in.const_values[idx] = regs[1 + idx];
      }
    }
    AsRef pred_as;
    if (des.control_flow_constrained()) {
      if (!read_as_header(p.mem, pred_body, pred_as)) {
        return fail(Violation::BadCallMac, "unreadable predecessor-set header");
      }
      in.pred_set = pred_as;
      in.lb_ptr = lb_ptr;
    }
    const auto encoded = policy::encode_policy(in);
    if (!p.mem.in_range(mac_ptr, 16)) {
      return fail(Violation::BadCallMac, "call MAC pointer out of range");
    }
    const crypto::Mac claimed = read_mac(p.mem, mac_ptr);

    // Gather the static byte material up front: the cache comparison (hit
    // path) and the content MACs (miss path) consume the same bytes. Every
    // range was validated by read_as_header, so these reads cannot fault.
    std::array<std::vector<std::uint8_t>, os::kMaxSyscallArgs> as_contents;
    for (int i = 0; i < sig.arity; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!des.arg_is_authenticated_string(i)) continue;
      as_contents[idx] = p.mem.read_bytes(in.as_args[idx].addr, in.as_args[idx].len);
    }
    std::vector<std::uint8_t> pred_blob;
    if (des.control_flow_constrained()) {
      pred_blob = p.mem.read_bytes(pred_as.addr, pred_as.len);
    }

    // ---- verified-call cache probe ----
    // The material is the exact concatenated inputs of the AES-CMAC
    // verifications the hit path skips; a hit requires byte equality with a
    // previously fully verified trap of the same site. Length prefixes keep
    // the concatenation injective (bytes cannot migrate between fields).
    std::vector<std::uint32_t> preds;
    std::vector<std::uint32_t> fd_sources;
    std::vector<policy::PatternRef> patterns;
    const AscCache::Key ckey{p.pid, call_site, des.bits(), block_id};
    std::vector<std::uint8_t> material;
    const AscCache::Entry* cache_entry = nullptr;  // the entry a hit reused
    if (cache != nullptr) {
      auto append = [&material](std::span<const std::uint8_t> bytes) {
        const auto n = static_cast<std::uint32_t>(bytes.size());
        for (int s = 0; s < 32; s += 8) {
          material.push_back(static_cast<std::uint8_t>(n >> s));
        }
        material.insert(material.end(), bytes.begin(), bytes.end());
      };
      append(encoded);
      append(claimed);
      for (int i = 0; i < sig.arity; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (!des.arg_is_authenticated_string(i)) continue;
        append(as_contents[idx]);
      }
      append(pred_blob);
      if (const AscCache::Entry* e = cache->lookup(ckey, material)) {
        // Hit: static trust established earlier; reuse the decoded pred set
        // and charge the reduced cost. Everything from step 3.1 on (the
        // online memory checker, capabilities, patterns) still runs below.
        res.cache_hit = true;
        res.cycles -= cost.check_fixed;
        res.cycles += cost.cache_hit_cost(material.size());
        preds = e->preds;
        fd_sources = e->fd_sources;
        patterns = e->patterns;
        cache_entry = e;
      }
    }

    if (!res.cache_hit) {
      // ---- steps 1 (cont.), 2, 3: verify every static MAC of the trap ----
      // All the inputs are already in hand, so the call MAC, the AS content
      // MACs, and the pred-set MAC go through ONE batched CMAC pass
      // (4-lane interleaved AES, crypto/cmac.h). Modeled cycles and the
      // fail-fast order below are charged/walked exactly as the sequential
      // verifies were: a batch computes extra MACs only on a failing trap,
      // where the process is being terminated anyway.
      std::vector<std::span<const std::uint8_t>> msgs;
      std::vector<crypto::Mac> expected;
      msgs.emplace_back(encoded);
      expected.push_back(claimed);
      for (int i = 0; i < sig.arity; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (!des.arg_is_authenticated_string(i)) continue;
        msgs.emplace_back(as_contents[idx]);
        expected.push_back(in.as_args[idx].mac);
      }
      if (des.control_flow_constrained()) {
        msgs.emplace_back(pred_blob);
        expected.push_back(pred_as.mac);
      }
      const std::vector<bool> ok = key.verify_batch(msgs, expected);

      // ---- step 1 (cont.): the call MAC ----
      std::size_t v = 0;
      res.cycles += cost.mac_cost(encoded.size());
      if (!ok[v++]) {
        return fail(Violation::BadCallMac,
                    std::string("call MAC mismatch for ") + sig.name + " at site 0x" +
                        util::to_hex(std::vector<std::uint8_t>{
                            static_cast<std::uint8_t>(call_site >> 24),
                            static_cast<std::uint8_t>(call_site >> 16),
                            static_cast<std::uint8_t>(call_site >> 8),
                            static_cast<std::uint8_t>(call_site)}));
      }

      // ---- step 2: authenticated string contents ----
      for (int i = 0; i < sig.arity; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (!des.arg_is_authenticated_string(i)) continue;
        res.cycles += cost.mac_cost(as_contents[idx].size());
        if (!ok[v++]) {
          return fail(Violation::BadStringArg,
                      std::string("string argument ") + std::to_string(i) + " of " + sig.name +
                          " was modified");
        }
      }

      // ---- step 3: predecessor-set content ----
      if (des.control_flow_constrained()) {
        res.cycles += cost.mac_cost(pred_blob.size());
        if (!ok[v++]) {
          return fail(Violation::BadStringArg, "predecessor set was modified");
        }
        if (!policy::decode_pred_set(pred_blob, preds, fd_sources, patterns)) {
          return fail(Violation::BadStringArg, "malformed predecessor set");
        }
      }

      // Every static input verified under the key: remember this site. The
      // entry's watch ranges make any guest write into the trusted bytes
      // evict it before the write lands.
      if (cache != nullptr) {
        AscCache::Entry entry;
        entry.material = std::move(material);
        entry.control_flow = des.control_flow_constrained();
        entry.preds = preds;
        entry.fd_sources = fd_sources;
        entry.patterns = patterns;
        entry.ranges.emplace_back(mac_ptr, 16u);
        for (int i = 0; i < sig.arity; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          if (!des.arg_is_authenticated_string(i)) continue;
          const AsRef& as = in.as_args[idx];
          entry.ranges.emplace_back(as.addr - policy::kAsHeaderSize,
                                    as.len + policy::kAsHeaderSize);
        }
        if (des.control_flow_constrained()) {
          entry.ranges.emplace_back(pred_as.addr - policy::kAsHeaderSize,
                                    pred_as.len + policy::kAsHeaderSize);
        }
        tiers->ensure_write_watch(p);
        if (!cache->has_range_hooks(p.pid)) {
          // Range hooks let the cache return an evicted entry's watch ranges
          // to this Memory; dropped again at teardown (Kernel::end_process),
          // so the captured reference never outlives the process.
          cache->set_range_hooks(
              p.pid,
              [&mem = p.mem](std::uint32_t addr, std::uint32_t len) { mem.watch(addr, len); },
              [&mem = p.mem](std::uint32_t addr, std::uint32_t len) { mem.unwatch(addr, len); });
        }
        cache->insert(ckey, std::move(entry));
      }
    }

    if (des.control_flow_constrained()) {
      AscShadow::Entry* sh = shadow == nullptr ? nullptr : shadow->find(p.pid, lb_ptr);
      if (sh != nullptr) {
        // Shadow fast path: the kernel's own {lastBlock, counter} copy is
        // trusted by construction (installed after a full 3.1 verification,
        // invalidated before any guest write lands), so both state MACs are
        // skipped; the lbMAC in guest memory stays stale until write-back.
        res.shadow_hit = true;
        res.cycles += cost.shadow_hit_cost();

        // 3.2: lastBlock must be an allowed predecessor.
        if (std::find(preds.begin(), preds.end(), sh->last_block) == preds.end()) {
          return fail(Violation::BadPredecessor,
                      std::string(sig.name) + ": previous syscall block " +
                          std::to_string(sh->last_block) + " not in predecessor set");
        }

        // 3.3-3.5 collapse to an update of the trusted copy.
        ++p.asc_counter;
        sh->last_block = block_id;
        sh->counter = p.asc_counter;
        sh->dirty = true;
      } else {
        // 3.1: verify the policy state (online memory checker).
        if (!p.mem.in_range(lb_ptr, policy::kPolicyStateSize)) {
          return fail(Violation::BadPolicyState, "policy state pointer out of range");
        }
        const std::uint32_t last_block = p.mem.r32(lb_ptr);
        const crypto::Mac lb_mac = read_mac(p.mem, lb_ptr + 4);
        const auto state_msg = policy::encode_policy_state(last_block, p.asc_counter);
        res.cycles += cost.mac_cost(state_msg.size());
        if (!key.verify(state_msg, lb_mac)) {
          return fail(Violation::BadPolicyState, "lastBlock/lbMAC tampered or replayed");
        }

        // 3.2: lastBlock must be an allowed predecessor.
        if (std::find(preds.begin(), preds.end(), last_block) == preds.end()) {
          return fail(Violation::BadPredecessor,
                      std::string(sig.name) + ": previous syscall block " +
                          std::to_string(last_block) + " not in predecessor set");
        }

        // 3.3-3.5: increment the nonce, update lastBlock, re-MAC.
        ++p.asc_counter;
        p.mem.w32(lb_ptr, block_id);
        const auto new_msg = policy::encode_policy_state(block_id, p.asc_counter);
        res.cycles += cost.mac_cost(new_msg.size());
        const crypto::Mac new_mac = key.mac(new_msg);
        p.mem.write_bytes(lb_ptr + 4, new_mac);

        // The record in guest memory is fully verified and fresh: shadow it.
        // From the next trap on, 3.1-3.5 run against the kernel copy and the
        // guest record goes stale until an invalidation writes it back.
        if (shadow != nullptr) {
          tiers->ensure_write_watch(p);
          if (!shadow->has_hooks(p.pid)) {
            shadow->set_hooks(
                p.pid,
                [&mem = p.mem](std::uint32_t addr, std::uint32_t len) { mem.watch(addr, len); },
                [&mem = p.mem](std::uint32_t addr, std::uint32_t len) {
                  mem.unwatch(addr, len);
                },
                // Lazy write-back: one CMAC under the kernel's current key
                // (Kernel::set_key flushes BEFORE rotating, so a dirty record
                // is always materialized under the key that shadowed it).
                [&p, &key, &cost](const AscShadow::Entry& e) {
                  const auto msg = policy::encode_policy_state(e.last_block, e.counter);
                  p.cycles += cost.mac_cost(msg.size());
                  p.mem.w32(e.state_ptr, e.last_block);
                  p.mem.write_bytes(e.state_ptr + 4, key.mac(msg));
                });
          }
          shadow->install(p.pid, lb_ptr, block_id, p.asc_counter);
        }
      }
    }

    // ---- step 4 (§5.3): fd capability provenance ----
    if (capability_checking && !fd_sources.empty()) {
      for (int i = 0; i < sig.arity; ++i) {
        if (sig.args[static_cast<std::size_t>(i)] != ArgKind::Fd) continue;
        const std::uint32_t fdnum = regs[1 + static_cast<std::size_t>(i)];
        const FdEntry* e = p.fd(fdnum);
        if (e == nullptr) {
          return fail(Violation::BadCapability, "fd argument not a live descriptor");
        }
        if (std::find(fd_sources.begin(), fd_sources.end(), e->origin_block) ==
            fd_sources.end()) {
          return fail(Violation::BadCapability,
                      "fd " + std::to_string(fdnum) + " originated at block " +
                          std::to_string(e->origin_block) + ", not an allowed source");
        }
        break;  // the capability set applies to the first fd argument
      }
    }

    // ---- step 5 (§5.1): pattern arguments with proof hints ----
    if (!patterns.empty()) {
      std::uint32_t hint_ptr = regs[isa::kRegHintPtr];
      for (const auto& pr : patterns) {
        if (pr.arg_index >= static_cast<std::uint32_t>(sig.arity)) {
          return fail(Violation::BadPattern, "pattern references nonexistent argument");
        }
        // Verify the pattern AS itself.
        AsRef pat_as;
        if (!read_as_header(p.mem, pr.pattern_addr, pat_as)) {
          return fail(Violation::BadPattern, "unreadable pattern");
        }
        const auto pat_bytes = p.mem.read_bytes(pat_as.addr, pat_as.len);
        res.cycles += cost.mac_cost(pat_bytes.size());
        if (!key.verify(pat_bytes, pat_as.mac)) {
          return fail(Violation::BadPattern, "pattern was modified");
        }
        const std::string pattern(pat_bytes.begin(), pat_bytes.end());
        // Read the actual argument string (bounded).
        const std::string actual =
            p.mem.read_cstr(regs[1 + static_cast<std::size_t>(pr.arg_index)], 4096);
        // Read this argument's hint block: {u32 n, n x u32}.
        if (!p.mem.in_range(hint_ptr, 4)) {
          return fail(Violation::BadPattern, "hint pointer out of range");
        }
        const std::uint32_t nwords = p.mem.r32(hint_ptr);
        if (nwords > 256 || !p.mem.in_range(hint_ptr + 4, nwords * 4)) {
          return fail(Violation::BadPattern, "oversized hint");
        }
        std::vector<std::uint32_t> hint(nwords);
        for (std::uint32_t w = 0; w < nwords; ++w) hint[w] = p.mem.r32(hint_ptr + 4 + 4 * w);
        hint_ptr += 4 + 4 * nwords;
        res.cycles += 2 * policy::verify_cost(pattern, actual);
        if (!policy::verify_match(pattern, actual, hint)) {
          return fail(Violation::BadPattern, std::string(sig.name) + "(" + actual +
                                                 ") fails pattern \"" + pattern + "\"");
        }
      }
    }

    // ---- lattice bookkeeping: a fully clean verification completed ----
    if (tiers != nullptr) {
      if (!res.cache_hit && !res.shadow_hit) tiers->count_eager();
      // Promotion evidence for the trap-less Inline tier: both fast paths
      // served an eligible side-effect-light call whose every verified
      // input the probe can re-check from registers and the shadow. Sites
      // with authenticated-string, capability, or pattern obligations never
      // qualify -- those checks must run on every call.
      if (res.cache_hit && res.shadow_hit && tiers->inline_enabled() &&
          inline_eligible(id) && patterns.empty() && fd_sources.empty() &&
          cache_entry != nullptr) {
        bool plain_args = true;
        for (int i = 0; i < sig.arity; ++i) {
          plain_args = plain_args && !des.arg_is_authenticated_string(i);
        }
        if (plain_args) {
          TierTable::InlineCandidate cand;
          cand.sysno = sysno;
          cand.id = id;
          cand.descriptor = des.bits();
          cand.block_id = block_id;
          cand.pred_body = pred_body;
          cand.state_ptr = lb_ptr;
          cand.mac_ptr = mac_ptr;
          for (int i = 0; i < sig.arity; ++i) {
            if (des.arg_constrained(i)) {
              cand.const_args.emplace_back(static_cast<std::uint8_t>(1 + i),
                                           regs[1 + static_cast<std::size_t>(i)]);
            }
          }
          cand.preds = preds;
          cand.ranges = cache_entry->ranges;
          cand.ranges.emplace_back(lb_ptr, policy::kPolicyStateSize);
          tiers->note_clean_site(p, call_site, std::move(cand));
        }
      }
    }
  } catch (const GuestFault& f) {
    return fail(Violation::GuestFaulted, f.what());
  }

  return res;
}

}  // namespace asc::os
