#include "os/syscalls.h"

#include <map>

#include "util/error.h"

namespace asc::os {

namespace {

using A = ArgKind;
constexpr std::array<ArgKind, 5> kNoArgs{A::Int, A::Int, A::Int, A::Int, A::Int};

constexpr SyscallSig kSigs[] = {
    // id, name, arity, args, returns_fd, category
    {SysId::Exit, "exit", 1, {A::Int, A::Int, A::Int, A::Int, A::Int}, false, Category::Proc},
    {SysId::Read, "read", 3, {A::Fd, A::BufOut, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Write, "write", 3, {A::Fd, A::BufIn, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Open, "open", 3, {A::PathIn, A::Int, A::Int, A::Int, A::Int}, true, Category::Other},
    {SysId::Close, "close", 1, {A::Fd, A::Int, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Unlink, "unlink", 1, {A::PathIn, A::Int, A::Int, A::Int, A::Int}, false, Category::FsWrite},
    {SysId::Rename, "rename", 2, {A::PathIn, A::PathIn, A::Int, A::Int, A::Int}, false, Category::FsWrite},
    {SysId::Mkdir, "mkdir", 2, {A::PathIn, A::Int, A::Int, A::Int, A::Int}, false, Category::FsWrite},
    {SysId::Rmdir, "rmdir", 1, {A::PathIn, A::Int, A::Int, A::Int, A::Int}, false, Category::FsWrite},
    {SysId::Chdir, "chdir", 1, {A::PathIn, A::Int, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Getcwd, "getcwd", 2, {A::BufOut, A::Int, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Stat, "stat", 2, {A::PathIn, A::OutPtr, A::Int, A::Int, A::Int}, false, Category::FsRead},
    {SysId::Fstat, "fstat", 2, {A::Fd, A::OutPtr, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Fstatfs, "fstatfs", 2, {A::Fd, A::OutPtr, A::Int, A::Int, A::Int}, false, Category::FsRead},
    {SysId::Lseek, "lseek", 3, {A::Fd, A::Int, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Dup, "dup", 1, {A::Fd, A::Int, A::Int, A::Int, A::Int}, true, Category::Other},
    {SysId::Brk, "brk", 1, {A::Int, A::Int, A::Int, A::Int, A::Int}, false, Category::Mem},
    {SysId::Getpid, "getpid", 0, kNoArgs, false, Category::Proc},
    {SysId::Getuid, "getuid", 0, kNoArgs, false, Category::Proc},
    {SysId::Gettimeofday, "gettimeofday", 2, {A::OutPtr, A::OutPtr, A::Int, A::Int, A::Int}, false, Category::Time},
    {SysId::Time, "time", 1, {A::OutPtr, A::Int, A::Int, A::Int, A::Int}, false, Category::Time},
    {SysId::Nanosleep, "nanosleep", 2, {A::OutPtr, A::OutPtr, A::Int, A::Int, A::Int}, false, Category::Time},
    {SysId::Kill, "kill", 2, {A::Int, A::Int, A::Int, A::Int, A::Int}, false, Category::Proc},
    {SysId::Sigaction, "sigaction", 3, {A::Int, A::OutPtr, A::OutPtr, A::Int, A::Int}, false, Category::Proc},
    {SysId::Socket, "socket", 3, {A::Int, A::Int, A::Int, A::Int, A::Int}, true, Category::Net},
    {SysId::Connect, "connect", 3, {A::Fd, A::BufIn, A::Int, A::Int, A::Int}, false, Category::Net},
    {SysId::Sendto, "sendto", 5, {A::Fd, A::BufIn, A::Int, A::Int, A::BufIn}, false, Category::Net},
    {SysId::Recvfrom, "recvfrom", 5, {A::Fd, A::BufOut, A::Int, A::Int, A::OutPtr}, false, Category::Net},
    {SysId::Fcntl, "fcntl", 3, {A::Fd, A::Int, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Readlink, "readlink", 3, {A::PathIn, A::BufOut, A::Int, A::Int, A::Int}, false, Category::FsRead},
    {SysId::Symlink, "symlink", 2, {A::PathIn, A::PathIn, A::Int, A::Int, A::Int}, false, Category::FsWrite},
    {SysId::Chmod, "chmod", 2, {A::PathIn, A::Int, A::Int, A::Int, A::Int}, false, Category::FsWrite},
    {SysId::Access, "access", 2, {A::PathIn, A::Int, A::Int, A::Int, A::Int}, false, Category::FsRead},
    {SysId::Ftruncate, "ftruncate", 2, {A::Fd, A::Int, A::Int, A::Int, A::Int}, false, Category::FsWrite},
    {SysId::Getdirentries, "getdirentries", 3, {A::Fd, A::BufOut, A::Int, A::Int, A::Int}, false, Category::FsRead},
    {SysId::Uname, "uname", 1, {A::OutPtr, A::Int, A::Int, A::Int, A::Int}, false, Category::Proc},
    {SysId::Sysconf, "sysconf", 1, {A::Int, A::Int, A::Int, A::Int, A::Int}, false, Category::Proc},
    {SysId::Madvise, "madvise", 3, {A::Int, A::Int, A::Int, A::Int, A::Int}, false, Category::Mem},
    {SysId::Mmap, "mmap", 5, {A::Int, A::Int, A::Int, A::Int, A::Fd}, false, Category::Mem},
    {SysId::Munmap, "munmap", 2, {A::Int, A::Int, A::Int, A::Int, A::Int}, false, Category::Mem},
    {SysId::Writev, "writev", 3, {A::Fd, A::BufIn, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Umask, "umask", 1, {A::Int, A::Int, A::Int, A::Int, A::Int}, false, Category::Proc},
    {SysId::Ioctl, "ioctl", 3, {A::Fd, A::Int, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::Spawn, "spawn", 2, {A::PathIn, A::Int, A::Int, A::Int, A::Int}, false, Category::Proc},
    {SysId::Pipe, "pipe", 1, {A::OutPtr, A::Int, A::Int, A::Int, A::Int}, false, Category::Other},
    {SysId::SyscallIndirect, "__syscall", 5, {A::Int, A::Int, A::Int, A::Int, A::Int}, false, Category::Other},
};

static_assert(sizeof(kSigs) / sizeof(kSigs[0]) == kNumSysIds,
              "signature table must cover every SysId");

struct NumberEntry {
  SysId id;
  std::uint16_t linux_num;  // 0 = absent on LinuxSim
  std::uint16_t bsd_num;    // 0 = absent on BsdSim
};

// Numbers loosely follow the real Linux i386 and OpenBSD 3.x tables so the
// cross-OS mismatch is realistic. 0 marks "not available on this OS":
//   * `time` and plain `mmap` are LinuxSim-only (BsdSim reaches mmap through
//     __syscall, like OpenBSD),
//   * `fstatfs` and `__syscall` are BsdSim-only.
constexpr NumberEntry kNumbers[] = {
    {SysId::Exit, 1, 1},
    {SysId::Read, 3, 3},
    {SysId::Write, 4, 4},
    {SysId::Open, 5, 5},
    {SysId::Close, 6, 6},
    {SysId::Unlink, 10, 10},
    {SysId::Chdir, 12, 12},
    {SysId::Time, 13, 0},
    {SysId::Chmod, 15, 15},
    {SysId::Lseek, 19, 199},
    {SysId::Getpid, 20, 20},
    {SysId::Getuid, 24, 24},
    {SysId::Access, 33, 33},
    {SysId::Kill, 37, 122},
    {SysId::Rename, 38, 128},
    {SysId::Mkdir, 39, 136},
    {SysId::Rmdir, 40, 137},
    {SysId::Dup, 41, 41},
    {SysId::Pipe, 42, 263},
    {SysId::Brk, 45, 17},
    {SysId::Ioctl, 54, 54},
    {SysId::Fcntl, 55, 92},
    {SysId::Umask, 60, 60},
    {SysId::Sigaction, 67, 46},
    {SysId::Gettimeofday, 78, 116},
    {SysId::Symlink, 83, 57},
    {SysId::Readlink, 85, 58},
    {SysId::Mmap, 90, 0},
    {SysId::Munmap, 91, 73},
    {SysId::Ftruncate, 93, 201},
    {SysId::Fstatfs, 0, 64},
    {SysId::Stat, 106, 38},
    {SysId::Fstat, 108, 62},
    {SysId::Uname, 122, 164},
    {SysId::Getdirentries, 141, 196},
    {SysId::Writev, 146, 121},
    {SysId::Nanosleep, 162, 240},
    {SysId::Getcwd, 183, 304},
    {SysId::Madvise, 219, 75},
    {SysId::Socket, 281, 97},
    {SysId::Connect, 283, 98},
    {SysId::Sendto, 289, 133},
    {SysId::Recvfrom, 292, 29},
    {SysId::Sysconf, 310, 202},
    {SysId::Spawn, 11, 59},  // plays the role of execve
    {SysId::SyscallIndirect, 0, 198},
};

static_assert(sizeof(kNumbers) / sizeof(kNumbers[0]) == kNumSysIds,
              "number table must cover every SysId");

}  // namespace

const SyscallSig& signature(SysId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= kNumSysIds) throw Error("signature: bad SysId");
  for (const auto& s : kSigs) {
    if (s.id == id) return s;
  }
  throw Error("signature: missing entry");
}

bool is_output_arg(ArgKind kind) {
  return kind == ArgKind::BufOut || kind == ArgKind::OutPtr;
}

std::string personality_name(Personality p) {
  return p == Personality::LinuxSim ? "LinuxSim" : "BsdSim";
}

std::optional<std::uint16_t> syscall_number(Personality p, SysId id) {
  for (const auto& e : kNumbers) {
    if (e.id != id) continue;
    const std::uint16_t n = p == Personality::LinuxSim ? e.linux_num : e.bsd_num;
    if (n == 0) return std::nullopt;
    return n;
  }
  return std::nullopt;
}

std::optional<SysId> syscall_from_number(Personality p, std::uint16_t number) {
  if (number == 0) return std::nullopt;
  for (const auto& e : kNumbers) {
    const std::uint16_t n = p == Personality::LinuxSim ? e.linux_num : e.bsd_num;
    if (n == number) return e.id;
  }
  return std::nullopt;
}

std::vector<SysId> available_syscalls(Personality p) {
  std::vector<SysId> out;
  for (const auto& e : kNumbers) {
    const std::uint16_t n = p == Personality::LinuxSim ? e.linux_num : e.bsd_num;
    if (n != 0) out.push_back(e.id);
  }
  return out;
}

}  // namespace asc::os
