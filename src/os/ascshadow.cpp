#include "os/ascshadow.h"

#include "policy/policy.h"

namespace asc::os {

void AscShadow::set_hooks(int pid, RangeHook watch, RangeHook unwatch,
                          WriteBackFn write_back) {
  hooks_[pid] = Hooks{std::move(watch), std::move(unwatch), std::move(write_back)};
}

AscShadow::Entry* AscShadow::find(int pid, std::uint32_t state_ptr) {
  const auto it = entries_.find(pid);
  if (it == entries_.end() || it->second.state_ptr != state_ptr) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

const AscShadow::Entry* AscShadow::peek(int pid) const {
  const auto it = entries_.find(pid);
  return it == entries_.end() ? nullptr : &it->second;
}

AscShadow::Entry* AscShadow::peek_mut(int pid) {
  const auto it = entries_.find(pid);
  return it == entries_.end() ? nullptr : &it->second;
}

void AscShadow::drop_entry(std::map<int, Entry>::iterator it) {
  // Take the entry out of the map FIRST: the write-back stores into guest
  // memory, and any watch callback that fires during them must find the
  // shadow already coherent (re-entrant invalidate_write becomes a no-op).
  const Entry e = it->second;
  const int pid = it->first;
  entries_.erase(it);
  ++stats_.invalidations;
  const auto h = hooks_.find(pid);
  if (h == hooks_.end()) return;
  // Unwatch BEFORE writing back, so the materializing stores do not trip
  // the record's own watch range.
  if (h->second.unwatch) h->second.unwatch(e.state_ptr, policy::kPolicyStateSize);
  if (e.dirty && h->second.write_back) {
    ++stats_.write_backs;
    h->second.write_back(e);
  }
}

void AscShadow::install(int pid, std::uint32_t state_ptr, std::uint32_t last_block,
                        std::uint64_t counter) {
  if (const auto it = entries_.find(pid); it != entries_.end()) {
    drop_entry(it);  // repointed lbPtr: flush the old record first
  }
  entries_[pid] = Entry{state_ptr, last_block, counter, /*dirty=*/false};
  ++stats_.installs;
  if (const auto h = hooks_.find(pid); h != hooks_.end() && h->second.watch) {
    h->second.watch(state_ptr, policy::kPolicyStateSize);
  }
}

void AscShadow::invalidate_write(int pid, std::uint32_t addr, std::uint32_t len) {
  const auto it = entries_.find(pid);
  if (it == entries_.end()) return;
  const Entry& e = it->second;
  if (addr >= e.state_ptr + policy::kPolicyStateSize || e.state_ptr >= addr + len) {
    return;  // the write does not touch the shadowed record
  }
  drop_entry(it);
}

std::optional<AscShadow::Entry> AscShadow::take_pid(int pid) {
  const auto it = entries_.find(pid);
  if (it == entries_.end()) return std::nullopt;
  const Entry e = it->second;
  entries_.erase(it);
  ++stats_.invalidations;
  // Unwatch like any other drop path -- but deliberately no write_back: the
  // caller owns re-materializing the guest record from trusted state.
  if (const auto h = hooks_.find(pid); h != hooks_.end() && h->second.unwatch) {
    h->second.unwatch(e.state_ptr, policy::kPolicyStateSize);
  }
  return e;
}

void AscShadow::flush_pid(int pid) {
  if (const auto it = entries_.find(pid); it != entries_.end()) drop_entry(it);
  drop_hooks(pid);
}

void AscShadow::flush_all() {
  while (!entries_.empty()) drop_entry(entries_.begin());
}

}  // namespace asc::os
