// Per-process verified-call cache: the MAC-verification fast path.
//
// For a given call site, everything the §3.4 checker authenticates with
// AES-CMAC over *static* bytes is immutable between policy installs: the
// encoded call (sysno, descriptor, site, block id, constant argument values,
// AS headers, lbPtr), the 16-byte call MAC, the predecessor-set blob, and
// the contents of constant authenticated-string arguments. Re-running the
// cipher over those bytes on every trap is pure hot-path waste. The cache
// remembers, per (pid, call_site, descriptor, blockID), the exact bytes of
// those inputs as seen at the last FULL verification; when a later trap at
// the same site presents byte-identical material (an exact memcmp, not a
// hash -- a guest must not be able to engineer a collision), the checker
// skips the call-MAC, AS-content, and pred-set AES-CMAC verifications (and
// the pred-set decode, whose result is cached too) and charges the reduced
// CostModel hit cost.
//
// What is NEVER cached: the control-flow policy state. lastBlock/lbMAC and
// the per-process counter form the §3.2 online memory checker -- per-call
// nonce state -- and are verified and re-MACed on every single call, hit or
// miss. Capability (§5.3) and pattern (§5.1) checks also always run: they
// depend on live fd tables and dynamic argument strings.
//
// The cache may buy cycles, never soundness. Invalidation invariants:
//   * guest writes into any byte range backing an entry (call MAC, AS
//     header/body, pred-set header/body) evict it -- vm::Memory write-watch
//     hooks fire before the bytes change;
//   * key rotation (Kernel::set_key) clears the whole cache;
//   * process teardown evicts every entry of that pid, so a recycled pid or
//     a re-exec can never inherit stale trust;
//   * a lookup whose material differs in any byte is a miss (full
//     re-verification), so even a missed invalidation cannot skip checking
//     of changed bytes.
//
// Watch-range hygiene: entries register their backing ranges with the
// process's Memory through per-pid range hooks (set_range_hooks). Every
// path that drops an entry -- guest-write invalidation, pid teardown, key
// rotation, capacity eviction, replacement on insert -- unregisters its
// ranges again, so the Memory watch set stays in lockstep with live entries
// instead of growing monotonically over a long-running process.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "policy/policy.h"

namespace asc::os {

struct AscCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       // probes that fell back to full verification
  std::uint64_t inserts = 0;      // entries populated after a full verification
  std::uint64_t evictions = 0;    // entries dropped (write/rotation/teardown/capacity)
  std::uint64_t invalidation_writes = 0;  // guest writes that hit a watched range

  double hit_rate() const {
    const std::uint64_t probes = hits + misses;
    return probes == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(probes);
  }
};

class AscCache {
 public:
  /// Cache key: the process plus everything that names one rewritten call
  /// site's policy identity. pid is part of the key, so one process's
  /// verified entry can never serve another (cross-process isolation).
  struct Key {
    int pid = 0;
    std::uint32_t call_site = 0;
    std::uint32_t descriptor = 0;
    std::uint32_t block_id = 0;

    auto operator<=>(const Key&) const = default;
  };

  /// One verified call site. `material` is the concatenation of the encoded
  /// call bytes, the claimed call MAC, the pred-set blob, and every static
  /// AS content -- the exact inputs of the skipped AES-CMAC verifications,
  /// each bounded by kAsMaxLength. A hit requires byte equality with the
  /// trap's material; no digest stands in for the bytes. `ranges` are the
  /// guest byte ranges backing those inputs (registered as write-watch
  /// ranges); a write into any of them evicts the entry.
  struct Entry {
    std::vector<std::uint8_t> material;
    bool control_flow = false;
    std::vector<std::uint32_t> preds;
    std::vector<std::uint32_t> fd_sources;
    std::vector<policy::PatternRef> patterns;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;  // {addr, len}
    std::uint64_t hits = 0;
  };

  /// (Un)registers one write-watch range with a process's Memory.
  using RangeHook = std::function<void(std::uint32_t addr, std::uint32_t len)>;

  explicit AscCache(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Wire `pid`'s entries to its address space: `watch` registers a backing
  /// range when an entry is inserted, `unwatch` unregisters it when the
  /// entry is dropped (any eviction path). The hooks must stay valid until
  /// drop_range_hooks(pid) -- the kernel installs them at the first
  /// verification and drops them at process teardown, bracketing the
  /// process's lifetime.
  void set_range_hooks(int pid, RangeHook watch, RangeHook unwatch);
  bool has_range_hooks(int pid) const { return hooks_.count(pid) != 0; }
  void drop_range_hooks(int pid);

  /// The entry for `key` iff its recorded bytes equal `material`, else
  /// nullptr. Counts a hit or a miss either way.
  const Entry* lookup(const Key& key, std::span<const std::uint8_t> material);

  /// Populate after a full verification (replaces any stale entry).
  void insert(const Key& key, Entry entry);

  /// A write of [addr, addr+len) landed in process `pid`: evict every entry
  /// of that pid whose backing ranges overlap the write.
  void invalidate_write(int pid, std::uint32_t addr, std::uint32_t len);

  /// Process teardown / exec: drop everything this pid ever verified (and
  /// its range hooks).
  void evict_pid(int pid);

  /// Key rotation: no prior verification is valid under the new key.
  void clear();

  std::size_t size() const { return entries_.size(); }
  std::size_t size(int pid) const;
  /// Approximate retained bytes across all entries (material, pred/range
  /// vectors, map nodes) -- deterministic capacity-planning surface for the
  /// per-tenant memory column of the fleet bench, not allocator-exact.
  std::size_t approx_bytes() const;

  const AscCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Hooks {
    RangeHook watch;
    RangeHook unwatch;
  };

  /// Unregister the entry's backing ranges with its pid's Memory (no-op
  /// when no hooks are installed, e.g. in unit tests).
  void unwatch_ranges(const Key& key, const Entry& entry);
  /// Drop one entry (unwatching its ranges) and count the eviction.
  std::map<Key, Entry>::iterator evict(std::map<Key, Entry>::iterator it);

  std::map<Key, Entry> entries_;
  std::map<int, Hooks> hooks_;
  std::size_t capacity_;
  /// Capacity-eviction tie-break cursor: victims rotate through the key
  /// space instead of always landing on the lowest (pid, site) key.
  Key rr_cursor_{};
  AscCacheStats stats_;
};

}  // namespace asc::os
