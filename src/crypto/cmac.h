// AES-CMAC (OMAC1) message authentication code, NIST SP 800-38B.
//
// The paper's prototype uses "AES-CBC-OMAC" (Iwata & Kurosawa's OMAC), which
// produces a 128-bit code; OMAC1 was standardized as CMAC. Every MAC in the
// ASC design -- call MACs, authenticated-string MACs, and the policy-state
// MAC over {lastBlock, counter} -- is an AES-CMAC under the single
// installer/kernel key.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "crypto/aes.h"

namespace asc::crypto {

/// A 128-bit message authentication code.
using Mac = Block;

/// CMAC engine bound to a key. The AES round keys and the two CMAC subkeys
/// K1/K2 are derived once per distinct key and shared by every engine bound
/// to it (the experiments construct hundreds of installer/kernel pairs
/// against the same key; re-deriving per engine was pure setup waste).
///
/// Thread safety, designed for fleet-scale multi-tenant use: the schedule
/// memo is SHARDED kMemoShards ways by a hash of the key bytes, each shard
/// guarded by its own mutex, so thousands of tenant kernels constructing
/// engines concurrently (staggered key rotations, per-lifecycle System
/// setup) contend only when their keys land in the same shard -- and only
/// during construction. A derived Schedule is immutable, and compute() only
/// reads it, so concurrent compute()/mac() calls on engines sharing a key
/// are lock-free; the parallel signing phases of the rewriter and the fleet
/// driver's tenant lifecycles rely on this.
class Cmac {
 public:
  explicit Cmac(const Key128& key);

  /// MAC over an arbitrary-length message (including the empty message).
  Mac compute(std::span<const std::uint8_t> message) const;

  /// MACs over several independent messages, processed in lockstep groups
  /// of four CBC chains through Aes128::encrypt4 -- under the AES-NI
  /// backend the four aesenc dependency chains overlap, which is where the
  /// checker's multi-MAC trap verification gets its throughput. Results
  /// are byte-identical to calling compute() per message on any backend.
  std::vector<Mac> compute_batch(std::span<const std::span<const std::uint8_t>> messages) const;

  /// Constant-time-ish comparison (not strictly required in a simulation,
  /// but cheap to do right).
  static bool equal(const Mac& a, const Mac& b);

  /// Number of memoized key schedules currently tracked across all shards
  /// (live or awaiting the sweep). Test hook: the memo must stay bounded by
  /// the live keys.
  static std::size_t schedule_memo_size();

  /// Total expired-node-sweep probe count across all constructions (test
  /// hook: proves construction visits O(kSweepPerInsert) nodes, not the
  /// whole shard, as dead keys accumulate).
  static std::uint64_t memo_sweep_visited();

  /// Memo shard count (fixed; test/inspection surface).
  static constexpr std::size_t kMemoShards = 16;

  /// Expired-node sweep budget per construction (amortized: each insert
  /// advances a per-shard cursor by at most this many nodes, so a shard is
  /// fully swept every size/kSweepPerInsert constructions while each one
  /// stays O(1)).
  static constexpr int kSweepPerInsert = 4;

 private:
  struct Schedule;   // {Aes128, K1, K2}, immutable once derived
  struct MemoShard;  // {mutex, map<Key128, weak_ptr<Schedule>>}
  static MemoShard& shard_for(const Key128& key);
  static std::array<MemoShard, kMemoShards>& shards();
  std::shared_ptr<const Schedule> sched_;
};

/// The key shared by the trusted installer and the (simulated) kernel.
/// Wrapping it in a distinct type keeps raw key bytes from leaking through
/// interfaces that should only see MAC capability.
class MacKey {
 public:
  explicit MacKey(const Key128& key) : cmac_(key) {}

  Mac mac(std::span<const std::uint8_t> message) const { return cmac_.compute(message); }
  bool verify(std::span<const std::uint8_t> message, const Mac& expected) const {
    return Cmac::equal(cmac_.compute(message), expected);
  }
  /// MAC several independent messages through the batched CMAC core (4-lane
  /// AES-NI lockstep); macs[i] covers messages[i]. Byte-identical to mac()
  /// per message on any backend.
  std::vector<Mac> mac_batch(std::span<const std::span<const std::uint8_t>> messages) const {
    return cmac_.compute_batch(messages);
  }
  /// Verify several {message, expected} pairs through the batched CMAC
  /// core; ok[i] is the verdict for pair i. Equivalent to verify() per
  /// pair -- callers that must preserve a fail-fast order walk the results
  /// in their own order (extra MACs computed on a failing batch are wasted
  /// wall-clock on a path that terminates the process anyway).
  std::vector<bool> verify_batch(std::span<const std::span<const std::uint8_t>> messages,
                                 std::span<const Mac> expected) const {
    const std::vector<Mac> macs = cmac_.compute_batch(messages);
    std::vector<bool> ok(macs.size());
    for (std::size_t i = 0; i < macs.size(); ++i) ok[i] = Cmac::equal(macs[i], expected[i]);
    return ok;
  }

 private:
  Cmac cmac_;
};

}  // namespace asc::crypto
