// AES-CMAC (OMAC1) message authentication code, NIST SP 800-38B.
//
// The paper's prototype uses "AES-CBC-OMAC" (Iwata & Kurosawa's OMAC), which
// produces a 128-bit code; OMAC1 was standardized as CMAC. Every MAC in the
// ASC design -- call MACs, authenticated-string MACs, and the policy-state
// MAC over {lastBlock, counter} -- is an AES-CMAC under the single
// installer/kernel key.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.h"

namespace asc::crypto {

/// A 128-bit message authentication code.
using Mac = Block;

/// CMAC engine bound to a key. Construction derives the two subkeys K1/K2.
class Cmac {
 public:
  explicit Cmac(const Key128& key);

  /// MAC over an arbitrary-length message (including the empty message).
  Mac compute(std::span<const std::uint8_t> message) const;

  /// Constant-time-ish comparison (not strictly required in a simulation,
  /// but cheap to do right).
  static bool equal(const Mac& a, const Mac& b);

 private:
  Aes128 aes_;
  Block k1_{};
  Block k2_{};
};

/// The key shared by the trusted installer and the (simulated) kernel.
/// Wrapping it in a distinct type keeps raw key bytes from leaking through
/// interfaces that should only see MAC capability.
class MacKey {
 public:
  explicit MacKey(const Key128& key) : cmac_(key) {}

  Mac mac(std::span<const std::uint8_t> message) const { return cmac_.compute(message); }
  bool verify(std::span<const std::uint8_t> message, const Mac& expected) const {
    return Cmac::equal(cmac_.compute(message), expected);
  }

 private:
  Cmac cmac_;
};

}  // namespace asc::crypto
