// Hardware AES-128 encryption via the x86 AES-NI instructions.
//
// Free functions over the FIPS-197 round-key byte layout that Aes128
// already stores (round_keys_ is 11 x 16 bytes, directly loadable with
// unaligned 128-bit loads), so the hardware path and the scratch path share
// one key schedule. Compiled with a per-function target("aes") attribute --
// no global -maes -- and selected at runtime via CPUID, so the same binary
// runs on hosts without the extension. On non-x86 builds `supported()` is
// false and the encrypt functions are never called.
//
// Oracle contract: byte-identical output to Aes128's scratch
// implementation for every key/block (asserted by the crypto tests); the
// scratch code remains the reference.
#pragma once

#include <cstdint>

namespace asc::crypto::aesni {

/// True when the host CPU executes AES-NI (cached CPUID probe).
bool supported();

/// Encrypt one 16-byte block in place with the 176-byte expanded key.
void encrypt_block(const std::uint8_t* round_keys, std::uint8_t* block);

/// Encrypt four independent 16-byte blocks in place, round-interleaved so
/// the four aesenc dependency chains overlap (the CMAC batch path's core).
void encrypt4(const std::uint8_t* round_keys, std::uint8_t* b0, std::uint8_t* b1,
              std::uint8_t* b2, std::uint8_t* b3);

}  // namespace asc::crypto::aesni
