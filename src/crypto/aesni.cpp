#include "crypto/aesni.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define ASC_HAVE_AESNI 1
#include <cpuid.h>
#include <wmmintrin.h>
#else
#define ASC_HAVE_AESNI 0
#endif

namespace asc::crypto::aesni {

#if ASC_HAVE_AESNI

bool supported() {
  static const bool ok = [] {
    unsigned eax = 0;
    unsigned ebx = 0;
    unsigned ecx = 0;
    unsigned edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
    return (ecx & bit_AES) != 0;
  }();
  return ok;
}

namespace {

__attribute__((target("aes,sse2"))) inline __m128i load(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

}  // namespace

__attribute__((target("aes,sse2"))) void encrypt_block(const std::uint8_t* round_keys,
                                                       std::uint8_t* block) {
  __m128i b = load(block);
  b = _mm_xor_si128(b, load(round_keys));
  for (int r = 1; r <= 9; ++r) b = _mm_aesenc_si128(b, load(round_keys + 16 * r));
  b = _mm_aesenclast_si128(b, load(round_keys + 160));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), b);
}

__attribute__((target("aes,sse2"))) void encrypt4(const std::uint8_t* round_keys,
                                                  std::uint8_t* b0, std::uint8_t* b1,
                                                  std::uint8_t* b2, std::uint8_t* b3) {
  const __m128i k0 = load(round_keys);
  __m128i x0 = _mm_xor_si128(load(b0), k0);
  __m128i x1 = _mm_xor_si128(load(b1), k0);
  __m128i x2 = _mm_xor_si128(load(b2), k0);
  __m128i x3 = _mm_xor_si128(load(b3), k0);
  for (int r = 1; r <= 9; ++r) {
    const __m128i k = load(round_keys + 16 * r);
    x0 = _mm_aesenc_si128(x0, k);
    x1 = _mm_aesenc_si128(x1, k);
    x2 = _mm_aesenc_si128(x2, k);
    x3 = _mm_aesenc_si128(x3, k);
  }
  const __m128i kl = load(round_keys + 160);
  x0 = _mm_aesenclast_si128(x0, kl);
  x1 = _mm_aesenclast_si128(x1, kl);
  x2 = _mm_aesenclast_si128(x2, kl);
  x3 = _mm_aesenclast_si128(x3, kl);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(b0), x0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(b1), x1);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(b2), x2);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(b3), x3);
}

#else  // !ASC_HAVE_AESNI

bool supported() { return false; }

// Never reached: Aes128 only routes here when supported() is true.
void encrypt_block(const std::uint8_t*, std::uint8_t*) {}
void encrypt4(const std::uint8_t*, std::uint8_t*, std::uint8_t*, std::uint8_t*, std::uint8_t*) {}

#endif  // ASC_HAVE_AESNI

}  // namespace asc::crypto::aesni
