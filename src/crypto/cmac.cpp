#include "crypto/cmac.h"

namespace asc::crypto {

namespace {

// Left-shift a 128-bit value by one bit (big-endian byte order, as SP 800-38B
// treats blocks).
Block shift_left(const Block& in) {
  Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    std::uint8_t b = in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((b << 1) | carry);
    carry = static_cast<std::uint8_t>(b >> 7);
  }
  return out;
}

Block derive_subkey(const Block& in) {
  Block out = shift_left(in);
  if (in[0] & 0x80) out[15] ^= 0x87;  // Rb for 128-bit blocks
  return out;
}

void xor_into(Block& dst, const Block& src) {
  for (int i = 0; i < 16; ++i) dst[static_cast<std::size_t>(i)] ^= src[static_cast<std::size_t>(i)];
}

}  // namespace

Cmac::Cmac(const Key128& key) : aes_(key) {
  Block l{};
  aes_.encrypt_block(l);
  k1_ = derive_subkey(l);
  k2_ = derive_subkey(k1_);
}

Mac Cmac::compute(std::span<const std::uint8_t> message) const {
  const std::size_t n = message.size();
  // Number of blocks; the empty message is treated as one (padded) block.
  const std::size_t nblocks = n == 0 ? 1 : (n + 15) / 16;
  const bool last_complete = n != 0 && n % 16 == 0;

  Block x{};  // running CBC value, starts at zero
  for (std::size_t i = 0; i + 1 < nblocks; ++i) {
    Block m{};
    for (std::size_t j = 0; j < 16; ++j) m[j] = message[16 * i + j];
    xor_into(x, m);
    aes_.encrypt_block(x);
  }

  Block last{};
  if (last_complete) {
    for (std::size_t j = 0; j < 16; ++j) last[j] = message[16 * (nblocks - 1) + j];
    xor_into(last, k1_);
  } else {
    const std::size_t rem = n - 16 * (nblocks - 1);
    for (std::size_t j = 0; j < rem; ++j) last[j] = message[16 * (nblocks - 1) + j];
    last[rem] = 0x80;
    xor_into(last, k2_);
  }
  xor_into(x, last);
  aes_.encrypt_block(x);
  return x;
}

bool Cmac::equal(const Mac& a, const Mac& b) {
  std::uint8_t diff = 0;
  for (int i = 0; i < 16; ++i) diff |= static_cast<std::uint8_t>(a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)]);
  return diff == 0;
}

}  // namespace asc::crypto
