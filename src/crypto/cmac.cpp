#include "crypto/cmac.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <mutex>

namespace asc::crypto {

/// Derived key material: AES round keys plus the CMAC subkeys K1/K2.
/// Immutable after construction, shared by every Cmac bound to the key.
struct Cmac::Schedule {
  explicit Schedule(const Key128& key) : aes(key) {}
  Aes128 aes;
  Block k1{};
  Block k2{};
};

namespace {

// Left-shift a 128-bit value by one bit (big-endian byte order, as SP 800-38B
// treats blocks).
Block shift_left(const Block& in) {
  Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    std::uint8_t b = in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((b << 1) | carry);
    carry = static_cast<std::uint8_t>(b >> 7);
  }
  return out;
}

Block derive_subkey(const Block& in) {
  Block out = shift_left(in);
  if (in[0] & 0x80) out[15] ^= 0x87;  // Rb for 128-bit blocks
  return out;
}

void xor_into(Block& dst, const Block& src) {
  for (int i = 0; i < 16; ++i) dst[static_cast<std::size_t>(i)] ^= src[static_cast<std::size_t>(i)];
}

// Sweep-probe counter across all shards (test hook; see memo_sweep_visited).
std::atomic<std::uint64_t> g_sweep_visited{0};

}  // namespace

/// One shard of the schedule memo. Sharding by key hash keeps concurrent
/// multi-tenant engine construction contention-light: tenants with distinct
/// keys almost always lock distinct shards.
struct Cmac::MemoShard {
  std::mutex mu;
  std::map<Key128, std::weak_ptr<const Schedule>> map;
  // Where the amortized expired-node sweep resumes (all-zero key = start).
  Key128 sweep_cursor{};
};

std::array<Cmac::MemoShard, Cmac::kMemoShards>& Cmac::shards() {
  static std::array<MemoShard, kMemoShards> shards;
  return shards;
}

Cmac::MemoShard& Cmac::shard_for(const Key128& key) {
  // FNV-1a over the key bytes; any cheap spread works, the shard choice is
  // invisible to callers.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : key) h = (h ^ b) * 1099511628211ull;
  return shards()[h % kMemoShards];
}

Cmac::Cmac(const Key128& key) {
  // Once-per-key subkey derivation: memoize the schedule so repeated engine
  // construction under the same key (installer + kernel, many experiment
  // iterations) pays the AES key expansion and K1/K2 derivation only once.
  MemoShard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& memo = shard.map;
  if (auto it = memo.find(key); it != memo.end()) {
    if (auto live = it->second.lock()) {
      sched_ = std::move(live);
      return;
    }
    memo.erase(it);
  }
  // Amortized expired-node sweep before inserting: advance a per-shard
  // cursor by at most kSweepPerInsert nodes, erasing the dead ones. A
  // workload rotating through many distinct keys adds at most one dead
  // node per construction and each construction retires up to four, so the
  // shard stays bounded by the LIVE keys while construction cost stays
  // flat no matter how many dead keys accumulate (previously this was a
  // full O(shard) scan on every construction).
  if (!memo.empty()) {
    auto it = memo.lower_bound(shard.sweep_cursor);
    for (int v = 0; v < kSweepPerInsert && !memo.empty(); ++v) {
      if (it == memo.end()) it = memo.begin();
      g_sweep_visited.fetch_add(1, std::memory_order_relaxed);
      it = it->second.expired() ? memo.erase(it) : std::next(it);
    }
    shard.sweep_cursor = it == memo.end() ? Key128{} : it->first;
  }
  auto sched = std::make_shared<Schedule>(key);
  Block l{};
  sched->aes.encrypt_block(l);
  sched->k1 = derive_subkey(l);
  sched->k2 = derive_subkey(sched->k1);
  memo[key] = sched;
  sched_ = std::move(sched);
}

std::size_t Cmac::schedule_memo_size() {
  std::size_t n = 0;
  for (auto& shard : shards()) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

std::uint64_t Cmac::memo_sweep_visited() {
  return g_sweep_visited.load(std::memory_order_relaxed);
}

Mac Cmac::compute(std::span<const std::uint8_t> message) const {
  const Schedule& s = *sched_;
  const std::size_t n = message.size();
  // Number of blocks; the empty message is treated as one (padded) block.
  const std::size_t nblocks = n == 0 ? 1 : (n + 15) / 16;
  const bool last_complete = n != 0 && n % 16 == 0;

  Block x{};  // running CBC value, starts at zero
  for (std::size_t i = 0; i + 1 < nblocks; ++i) {
    Block m{};
    for (std::size_t j = 0; j < 16; ++j) m[j] = message[16 * i + j];
    xor_into(x, m);
    s.aes.encrypt_block(x);
  }

  Block last{};
  if (last_complete) {
    for (std::size_t j = 0; j < 16; ++j) last[j] = message[16 * (nblocks - 1) + j];
    xor_into(last, s.k1);
  } else {
    const std::size_t rem = n - 16 * (nblocks - 1);
    for (std::size_t j = 0; j < rem; ++j) last[j] = message[16 * (nblocks - 1) + j];
    last[rem] = 0x80;
    xor_into(last, s.k2);
  }
  xor_into(x, last);
  s.aes.encrypt_block(x);
  return x;
}

std::vector<Mac> Cmac::compute_batch(
    std::span<const std::span<const std::uint8_t>> messages) const {
  const Schedule& s = *sched_;
  const std::size_t count = messages.size();
  std::vector<Mac> out(count);

  // Per-lane shape, derived exactly as compute() does: block count (empty
  // message = one padded block) and the prepared final block (complete
  // last block XOR K1, or 0x80-padded partial XOR K2).
  struct Lane {
    std::span<const std::uint8_t> msg;
    std::size_t nblocks = 0;
    Block last{};
    Block x{};  // running CBC value
    std::size_t out_index = 0;
  };

  std::array<Lane, 4> lanes;
  for (std::size_t base = 0; base < count; base += 4) {
    const std::size_t group = std::min<std::size_t>(4, count - base);
    std::size_t rounds = 0;
    for (std::size_t l = 0; l < group; ++l) {
      Lane& lane = lanes[l];
      lane.msg = messages[base + l];
      lane.out_index = base + l;
      const std::size_t n = lane.msg.size();
      lane.nblocks = n == 0 ? 1 : (n + 15) / 16;
      lane.x = Block{};
      lane.last = Block{};
      if (n != 0 && n % 16 == 0) {
        for (std::size_t j = 0; j < 16; ++j) lane.last[j] = lane.msg[16 * (lane.nblocks - 1) + j];
        xor_into(lane.last, s.k1);
      } else {
        const std::size_t rem = n - 16 * (lane.nblocks - 1);
        for (std::size_t j = 0; j < rem; ++j) lane.last[j] = lane.msg[16 * (lane.nblocks - 1) + j];
        lane.last[rem] = 0x80;
        xor_into(lane.last, s.k2);
      }
      rounds = std::max(rounds, lane.nblocks);
    }

    // Lockstep CBC: each round XORs the next message block into every lane
    // still running, then encrypts all four lanes through one interleaved
    // encrypt4 (finished/absent lanes carry a dummy). Per lane this is the
    // exact chain compute() performs, so results are byte-identical.
    Block dummy{};
    for (std::size_t r = 0; r < rounds; ++r) {
      std::array<Block*, 4> slot{&dummy, &dummy, &dummy, &dummy};
      for (std::size_t l = 0; l < group; ++l) {
        Lane& lane = lanes[l];
        if (r >= lane.nblocks) continue;
        if (r + 1 == lane.nblocks) {
          xor_into(lane.x, lane.last);
        } else {
          Block m{};
          for (std::size_t j = 0; j < 16; ++j) m[j] = lane.msg[16 * r + j];
          xor_into(lane.x, m);
        }
        slot[l] = &lane.x;
      }
      s.aes.encrypt4(*slot[0], *slot[1], *slot[2], *slot[3]);
    }
    for (std::size_t l = 0; l < group; ++l) out[lanes[l].out_index] = lanes[l].x;
  }
  return out;
}

bool Cmac::equal(const Mac& a, const Mac& b) {
  std::uint8_t diff = 0;
  for (int i = 0; i < 16; ++i) diff |= static_cast<std::uint8_t>(a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)]);
  return diff == 0;
}

}  // namespace asc::crypto
