#include "crypto/cmac.h"

#include <array>
#include <map>
#include <mutex>

namespace asc::crypto {

/// Derived key material: AES round keys plus the CMAC subkeys K1/K2.
/// Immutable after construction, shared by every Cmac bound to the key.
struct Cmac::Schedule {
  explicit Schedule(const Key128& key) : aes(key) {}
  Aes128 aes;
  Block k1{};
  Block k2{};
};

namespace {

// Left-shift a 128-bit value by one bit (big-endian byte order, as SP 800-38B
// treats blocks).
Block shift_left(const Block& in) {
  Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    std::uint8_t b = in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((b << 1) | carry);
    carry = static_cast<std::uint8_t>(b >> 7);
  }
  return out;
}

Block derive_subkey(const Block& in) {
  Block out = shift_left(in);
  if (in[0] & 0x80) out[15] ^= 0x87;  // Rb for 128-bit blocks
  return out;
}

void xor_into(Block& dst, const Block& src) {
  for (int i = 0; i < 16; ++i) dst[static_cast<std::size_t>(i)] ^= src[static_cast<std::size_t>(i)];
}

}  // namespace

/// One shard of the schedule memo. Sharding by key hash keeps concurrent
/// multi-tenant engine construction contention-light: tenants with distinct
/// keys almost always lock distinct shards.
struct Cmac::MemoShard {
  std::mutex mu;
  std::map<Key128, std::weak_ptr<const Schedule>> map;
};

std::array<Cmac::MemoShard, Cmac::kMemoShards>& Cmac::shards() {
  static std::array<MemoShard, kMemoShards> shards;
  return shards;
}

Cmac::MemoShard& Cmac::shard_for(const Key128& key) {
  // FNV-1a over the key bytes; any cheap spread works, the shard choice is
  // invisible to callers.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : key) h = (h ^ b) * 1099511628211ull;
  return shards()[h % kMemoShards];
}

Cmac::Cmac(const Key128& key) {
  // Once-per-key subkey derivation: memoize the schedule so repeated engine
  // construction under the same key (installer + kernel, many experiment
  // iterations) pays the AES key expansion and K1/K2 derivation only once.
  MemoShard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& memo = shard.map;
  if (auto it = memo.find(key); it != memo.end()) {
    if (auto live = it->second.lock()) {
      sched_ = std::move(live);
      return;
    }
    memo.erase(it);
  }
  // Sweep nodes whose schedule died before inserting a new one: a workload
  // rotating through many distinct keys then keeps the shard bounded by the
  // number of LIVE keys, not by every key ever seen.
  for (auto it = memo.begin(); it != memo.end();) {
    it = it->second.expired() ? memo.erase(it) : std::next(it);
  }
  auto sched = std::make_shared<Schedule>(key);
  Block l{};
  sched->aes.encrypt_block(l);
  sched->k1 = derive_subkey(l);
  sched->k2 = derive_subkey(sched->k1);
  memo[key] = sched;
  sched_ = std::move(sched);
}

std::size_t Cmac::schedule_memo_size() {
  std::size_t n = 0;
  for (auto& shard : shards()) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

Mac Cmac::compute(std::span<const std::uint8_t> message) const {
  const Schedule& s = *sched_;
  const std::size_t n = message.size();
  // Number of blocks; the empty message is treated as one (padded) block.
  const std::size_t nblocks = n == 0 ? 1 : (n + 15) / 16;
  const bool last_complete = n != 0 && n % 16 == 0;

  Block x{};  // running CBC value, starts at zero
  for (std::size_t i = 0; i + 1 < nblocks; ++i) {
    Block m{};
    for (std::size_t j = 0; j < 16; ++j) m[j] = message[16 * i + j];
    xor_into(x, m);
    s.aes.encrypt_block(x);
  }

  Block last{};
  if (last_complete) {
    for (std::size_t j = 0; j < 16; ++j) last[j] = message[16 * (nblocks - 1) + j];
    xor_into(last, s.k1);
  } else {
    const std::size_t rem = n - 16 * (nblocks - 1);
    for (std::size_t j = 0; j < rem; ++j) last[j] = message[16 * (nblocks - 1) + j];
    last[rem] = 0x80;
    xor_into(last, s.k2);
  }
  xor_into(x, last);
  s.aes.encrypt_block(x);
  return x;
}

bool Cmac::equal(const Mac& a, const Mac& b) {
  std::uint8_t diff = 0;
  for (int i = 0; i < 16; ++i) diff |= static_cast<std::uint8_t>(a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)]);
  return diff == 0;
}

}  // namespace asc::crypto
