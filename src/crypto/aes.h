// AES-128 block cipher, implemented from scratch per FIPS-197.
//
// The original ASC prototype linked Brian Gladman's AES library (~3,000 lines)
// into the kernel to compute AES-CBC-OMAC message authentication codes. We
// reproduce that dependency with a compact, table-free-at-source
// implementation: the S-box and round constants are derived algebraically at
// first use (multiplicative inverse in GF(2^8) + affine map), which avoids
// transcription errors and keeps the code auditable.
//
// The scratch implementation favors clarity over speed and remains the
// REFERENCE ORACLE: MAC computation cost in the experiments is accounted by
// the deterministic cycle model (see os/costmodel.h), never by host
// wall-clock. For wall-clock (fault campaigns, macro benches) an AES-NI
// backend (crypto/aesni.h) is selected per engine at construction via
// runtime CPUID -- byte-identical output, asserted against the scratch
// oracle by the crypto tests. ASC_AES=scratch in the environment (or
// set_backend_policy) forces the scratch path everywhere.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace asc::crypto {

/// A 128-bit AES key.
using Key128 = std::array<std::uint8_t, 16>;

/// A 128-bit block.
using Block = std::array<std::uint8_t, 16>;

/// AES-128 with a fixed key schedule, usable for repeated block encryption.
class Aes128 {
 public:
  /// Which encryption core an engine instance uses.
  enum class Backend : std::uint8_t { Scratch, Aesni };
  /// Process-wide selection rule applied at engine construction.
  enum class BackendPolicy : std::uint8_t { Auto, ForceScratch };

  explicit Aes128(const Key128& key);

  /// Encrypt one 16-byte block in place.
  void encrypt_block(Block& block) const;

  /// Encrypt `in` into `out` (may alias).
  Block encrypt(const Block& in) const;

  /// Encrypt four independent blocks in place. Under AES-NI the four round
  /// chains are interleaved (the CMAC batch path's core); under Scratch
  /// this is four sequential encrypt_block calls. Identical results.
  void encrypt4(Block& b0, Block& b1, Block& b2, Block& b3) const;

  /// The backend this instance selected at construction.
  Backend backend() const { return backend_; }

  /// True when the host CPU supports AES-NI.
  static bool aesni_supported();

  /// Process-wide backend policy. Defaults to Auto (AES-NI when the host
  /// has it); initialized from ASC_AES in the environment ("scratch"
  /// forces the reference path). Affects engines constructed afterwards.
  static void set_backend_policy(BackendPolicy policy);
  static BackendPolicy backend_policy();

 private:
  // 11 round keys of 16 bytes each (AES-128 = 10 rounds), in the FIPS-197
  // byte layout both backends consume.
  std::array<std::uint8_t, 176> round_keys_{};
  Backend backend_ = Backend::Scratch;
};

}  // namespace asc::crypto
