// AES-128 block cipher, implemented from scratch per FIPS-197.
//
// The original ASC prototype linked Brian Gladman's AES library (~3,000 lines)
// into the kernel to compute AES-CBC-OMAC message authentication codes. We
// reproduce that dependency with a compact, table-free-at-source
// implementation: the S-box and round constants are derived algebraically at
// first use (multiplicative inverse in GF(2^8) + affine map), which avoids
// transcription errors and keeps the code auditable.
//
// This implementation favors clarity over speed; MAC computation cost in the
// experiments is accounted by the deterministic cycle model (see
// os/costmodel.h), not by host wall-clock, so a bitsliced AES is unnecessary.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace asc::crypto {

/// A 128-bit AES key.
using Key128 = std::array<std::uint8_t, 16>;

/// A 128-bit block.
using Block = std::array<std::uint8_t, 16>;

/// AES-128 with a fixed key schedule, usable for repeated block encryption.
class Aes128 {
 public:
  explicit Aes128(const Key128& key);

  /// Encrypt one 16-byte block in place.
  void encrypt_block(Block& block) const;

  /// Encrypt `in` into `out` (may alias).
  Block encrypt(const Block& in) const;

 private:
  // 11 round keys of 16 bytes each (AES-128 = 10 rounds).
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace asc::crypto
