// asc::System -- the one-stop public API.
//
// Bundles the trusted installer and a simulated machine that share the MAC
// key, which is the paper's deployment model: the administrator gives the
// key to the installer at install time and to the kernel at boot; nothing
// else ever sees it.
//
// Quickstart:
//   asc::System sys(asc::os::Personality::LinuxSim);
//   auto inst = sys.install(asc::apps::build_bison(sys.personality()));
//   sys.machine().register_program("/bin/bison", inst.image);
//   auto r = sys.machine().run(inst.image, {"grammar.y"});
//   // r.completed, r.stdout_data, r.violation ...
#pragma once

#include <string>

#include "apps/apps.h"
#include "binary/image.h"
#include "crypto/cmac.h"
#include "installer/installer.h"
#include "os/kernel.h"
#include "vm/machine.h"

namespace asc {

/// Deterministic key for examples/tests/benches. A real deployment would
/// generate one per machine.
crypto::Key128 test_key();

/// Deterministic key family for rekey tests, the `asctool rekey` CLI, and
/// per-tenant fleet keys: CMAC of the seed under test_key(), so any two
/// distinct seeds give unrelated keys and seed 0 != test_key(). A real
/// deployment would draw fresh keys from a CSPRNG / KMS instead.
crypto::Key128 derived_key(std::uint64_t seed);

class System {
 public:
  /// Creates an installer and a machine sharing `key`. `mode` selects which
  /// built-in SyscallMonitor is installed in the kernel's enforcement layer
  /// (AscMonitor by default; pass Enforcement::Off for baseline runs).
  /// Custom or composed monitors go through kernel().install_monitor()
  /// afterwards.
  explicit System(os::Personality personality, const crypto::Key128& key = test_key(),
                  os::Enforcement mode = os::Enforcement::Asc, os::CostModel cost = {});

  os::Personality personality() const { return personality_; }
  installer::Installer& installer() { return installer_; }
  vm::Machine& machine() { return machine_; }
  os::Kernel& kernel() { return machine_.kernel(); }

  /// Analyze + rewrite in one step.
  installer::InstallResult install(const binary::Image& image,
                                   const installer::InstallOptions& options = {});

  /// Install and register under a path (for spawn / run_path).
  installer::InstallResult install_and_register(const std::string& path,
                                                const binary::Image& image,
                                                const installer::InstallOptions& options = {});

 private:
  os::Personality personality_;
  installer::Installer installer_;
  vm::Machine machine_;
};

}  // namespace asc
