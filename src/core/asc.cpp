#include "core/asc.h"

#include <algorithm>
#include <array>

namespace asc {

crypto::Key128 test_key() {
  crypto::Key128 k{};
  const char* seed = "asc-repro-key-16";
  for (int i = 0; i < 16; ++i) k[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed[i]);
  return k;
}

crypto::Key128 derived_key(std::uint64_t seed) {
  std::array<std::uint8_t, 8> msg{};
  for (int i = 0; i < 8; ++i) {
    msg[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  const crypto::Mac m = crypto::MacKey(test_key()).mac(msg);
  crypto::Key128 k{};
  std::copy(m.begin(), m.end(), k.begin());
  return k;
}

System::System(os::Personality personality, const crypto::Key128& key, os::Enforcement mode,
               os::CostModel cost)
    : personality_(personality), installer_(key, personality), machine_(personality, cost) {
  // Order is immaterial: set_enforcement installs a monitor that reads the
  // kernel's key/policies/cost at inspect time, not at construction.
  machine_.kernel().set_key(key);
  machine_.kernel().set_enforcement(mode);
}

installer::InstallResult System::install(const binary::Image& image,
                                         const installer::InstallOptions& options) {
  return installer_.install(image, options);
}

installer::InstallResult System::install_and_register(const std::string& path,
                                                      const binary::Image& image,
                                                      const installer::InstallOptions& options) {
  installer::InstallResult r = install(image, options);
  machine_.register_program(path, r.image);
  return r;
}

}  // namespace asc
