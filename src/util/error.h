// Error type used across the ASC library.
//
// We use exceptions for conditions that indicate misuse of the library or a
// malformed input artifact (bad binary image, undecodable instruction stream,
// unsatisfiable installer request). Expected runtime outcomes that callers
// branch on -- e.g. "this system call violates policy" -- are modeled as
// enums/result structs, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace asc {

/// Base exception for all errors raised by the ASC library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a binary image or instruction stream cannot be parsed.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error(what) {}
};

/// Raised when the guest program performs an illegal operation (bad memory
/// access, invalid opcode at runtime, stack overflow). The VM converts these
/// into a fault termination of the guest rather than crashing the host.
class GuestFault : public Error {
 public:
  explicit GuestFault(const std::string& what) : Error(what) {}
};

}  // namespace asc
