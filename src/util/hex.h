// Hex encoding helpers and little-endian byte (de)serialization.
//
// Every multi-byte integer that crosses the application/kernel boundary in
// the ASC design (encoded policies, authenticated-string headers, policy
// state) is serialized little-endian, matching the IA-32 convention of the
// original prototype.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace asc::util {

/// Lowercase hex string for a byte range ("deadbeef").
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parse a hex string (no separators) into bytes. Throws asc::Error on
/// malformed input (odd length, non-hex character).
std::vector<std::uint8_t> from_hex(const std::string& hex);

/// Append `value` to `out` little-endian.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Read little-endian values from a buffer at `offset`. The caller must
/// ensure the read is in bounds; these helpers throw asc::Error otherwise.
std::uint16_t get_u16(std::span<const std::uint8_t> buf, std::size_t offset);
std::uint32_t get_u32(std::span<const std::uint8_t> buf, std::size_t offset);
std::uint64_t get_u64(std::span<const std::uint8_t> buf, std::size_t offset);

/// Write little-endian values in place.
void set_u32(std::span<std::uint8_t> buf, std::size_t offset, std::uint32_t value);

/// Append raw bytes.
void put_bytes(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> bytes);

/// Convenience: bytes of a string (no NUL).
std::vector<std::uint8_t> bytes_of(const std::string& s);

}  // namespace asc::util
