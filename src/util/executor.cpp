#include "util/executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

namespace asc::util {

namespace {

thread_local bool tls_in_parallel_region = false;

}  // namespace

struct Executor::Impl {
  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// One deque per worker. Guarded by its own mutex; contention is low
  /// because owners and thieves touch opposite ends and chunks are coarse.
  struct Worker {
    std::mutex mu;
    std::deque<Range> chunks;
  };

  explicit Impl(int njobs) : jobs(njobs), workers(static_cast<std::size_t>(njobs)) {
    for (auto& w : workers) w = std::make_unique<Worker>();
    threads.reserve(workers.size() - 1);
    for (std::size_t i = 1; i < workers.size(); ++i) {
      threads.emplace_back([this, i] { thread_main(i); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    cv_work.notify_all();
    for (auto& t : threads) t.join();
  }

  void thread_main(std::size_t self) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      cv_work.wait(lk, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      lk.unlock();
      work(self);
      lk.lock();
    }
  }

  bool pop_or_steal(std::size_t self, Range* out) {
    {
      Worker& own = *workers[self];
      std::lock_guard<std::mutex> lk(own.mu);
      if (!own.chunks.empty()) {
        *out = own.chunks.back();
        own.chunks.pop_back();
        return true;
      }
    }
    for (std::size_t off = 1; off < workers.size(); ++off) {
      Worker& victim = *workers[(self + off) % workers.size()];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.chunks.empty()) {
        *out = victim.chunks.front();
        victim.chunks.pop_front();
        return true;
      }
    }
    return false;
  }

  /// Drain chunks (own deque first, then steal) until none remain. Runs on
  /// pool threads and on the caller inside run_batch.
  void work(std::size_t self) {
    tls_in_parallel_region = true;
    Range r;
    while (pop_or_steal(self, &r)) {
      const auto* fn = body.load(std::memory_order_acquire);
      for (std::size_t i = r.begin; i < r.end; ++i) {
        if (!cancelled.load(std::memory_order_relaxed)) {
          try {
            (*fn)(i);
          } catch (...) {
            {
              std::lock_guard<std::mutex> lk(err_mu);
              if (!first_error) first_error = std::current_exception();
            }
            cancelled.store(true, std::memory_order_relaxed);
          }
        }
      }
      const std::size_t len = r.end - r.begin;
      if (remaining.fetch_sub(len, std::memory_order_acq_rel) == len) {
        std::lock_guard<std::mutex> lk(mu);
        cv_done.notify_all();
      }
    }
    tls_in_parallel_region = false;
  }

  void run_batch(const std::function<void(std::size_t)>& fn, std::size_t n) {
    // One batch at a time; concurrent callers queue here.
    std::lock_guard<std::mutex> outer(batch_mu);
    {
      std::lock_guard<std::mutex> lk(err_mu);
      first_error = nullptr;
    }
    cancelled.store(false, std::memory_order_relaxed);
    // Publish body/remaining BEFORE any chunk becomes visible: a worker
    // lingering from the previous batch may pop new chunks the moment they
    // are pushed, without ever seeing the generation bump.
    body.store(&fn, std::memory_order_release);
    remaining.store(n, std::memory_order_release);

    const std::size_t nworkers = workers.size();
    const std::size_t chunk = std::max<std::size_t>(1, n / (nworkers * 8));
    std::size_t next_worker = 0;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const Range r{begin, std::min(n, begin + chunk)};
      Worker& w = *workers[next_worker];
      {
        std::lock_guard<std::mutex> lk(w.mu);
        w.chunks.push_back(r);
      }
      next_worker = (next_worker + 1) % nworkers;
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      ++generation;
    }
    cv_work.notify_all();
    work(0);  // the caller is worker 0
    {
      std::unique_lock<std::mutex> lk(mu);
      cv_done.wait(lk, [&] { return remaining.load(std::memory_order_acquire) == 0; });
    }
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lk(err_mu);
      err = first_error;
      first_error = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }

  int jobs;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::thread> threads;

  std::mutex mu;  // guards generation/stop; cv notification
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t generation = 0;
  bool stop = false;

  std::mutex batch_mu;  // serializes run_batch callers

  std::atomic<const std::function<void(std::size_t)>*> body{nullptr};
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> cancelled{false};
  std::mutex err_mu;
  std::exception_ptr first_error;
};

Executor::Executor(int jobs) : jobs_(jobs <= 0 ? default_jobs() : jobs) {
  if (jobs_ > 1) impl_ = std::make_unique<Impl>(jobs_);
}

Executor::~Executor() = default;

void Executor::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (impl_ == nullptr || n == 1 || tls_in_parallel_region) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  impl_->run_batch(body, n);
}

int Executor::default_jobs() {
  if (const char* env = std::getenv("ASC_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<int>(std::min<long>(v, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::mutex& global_mutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<Executor>& global_slot() {
  static std::unique_ptr<Executor> slot;
  return slot;
}

}  // namespace

Executor& Executor::global() {
  std::lock_guard<std::mutex> lk(global_mutex());
  auto& slot = global_slot();
  if (slot == nullptr) slot = std::make_unique<Executor>(0);
  return *slot;
}

void Executor::set_global_jobs(int jobs) {
  // Startup-time configuration: must not race with parallel work in flight.
  std::lock_guard<std::mutex> lk(global_mutex());
  global_slot() = std::make_unique<Executor>(jobs);
}

bool Executor::in_parallel_region() { return tls_in_parallel_region; }

}  // namespace asc::util
