#include "util/rng.h"

#include "util/error.h"

namespace asc::util {

std::uint64_t Rng::next_u64() {
  // SplitMix64 (public domain, Sebastiano Vigna).
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw Error("Rng::next_below: zero bound");
  return next_u64() % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw Error("Rng::next_in: empty range");
  return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  return next_below(den) < num;
}

std::vector<std::uint8_t> Rng::next_bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_u64());
  return out;
}

Rng Rng::derive(std::uint64_t stream) const {
  // Mix the stream index through one SplitMix64 round so adjacent streams
  // land far apart in the parent's sequence.
  std::uint64_t z = state_ ^ (stream + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

std::string Rng::next_name(std::size_t min_len, std::size_t max_len) {
  std::size_t len = min_len + static_cast<std::size_t>(next_below(max_len - min_len + 1));
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) s.push_back(static_cast<char>('a' + next_below(26)));
  return s;
}

}  // namespace asc::util
