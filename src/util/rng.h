// Deterministic pseudo-random number generator used by property tests, the
// random guest-program generator, and workload generators. Deliberately not
// cryptographic; the MAC key material in tests is fixed or derived from it
// explicitly so experiments are reproducible run to run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asc::util {

/// SplitMix64-based deterministic RNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Random bytes.
  std::vector<std::uint8_t> next_bytes(std::size_t n);

  /// Random lowercase identifier of length in [min_len, max_len].
  std::string next_name(std::size_t min_len, std::size_t max_len);

  /// Independent deterministic substream: the same (state, stream) pair
  /// always yields the same child RNG, regardless of how much the parent
  /// is advanced afterwards. Used by fault campaigns to key per-run
  /// randomness off a stable run index.
  Rng derive(std::uint64_t stream) const;

 private:
  std::uint64_t state_;
};

}  // namespace asc::util
