// Work-stealing thread-pool executor for the host-side pipelines.
//
// The installer's per-function analysis, the rewriter's per-site CMAC
// signing, and the fault campaign's per-run replays are embarrassingly
// parallel; this executor lets them use every core without giving up the
// determinism contract:
//
//   * parallel_for(n, body) invokes body(i) exactly once for each
//     i in [0, n); callers write results into slot i, so the assembled
//     output is identical at any job count,
//   * jobs == 1 is the EXACT serial path: no worker threads, no locks,
//     body runs inline on the caller in index order -- the reference
//     semantics every parallel run must reproduce byte for byte,
//   * a parallel_for issued from inside a worker task runs inline
//     (no nested fan-out, no pool-in-pool deadlock).
//
// Scheduling: a fixed pool of jobs-1 threads plus the calling thread. The
// iteration space is split into contiguous chunks dealt round-robin onto
// per-worker deques; owners pop from the back (LIFO, cache-warm), idle
// workers steal from the front of a victim's deque (FIFO, oldest chunk).
// Scheduling order is irrelevant to the output by construction.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace asc::util {

class Executor {
 public:
  /// jobs <= 0 selects default_jobs() (ASC_JOBS env or hardware cores).
  explicit Executor(int jobs = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int jobs() const { return jobs_; }

  /// Run body(0) .. body(n-1), each exactly once, blocking until all are
  /// done. The first exception thrown by any body is rethrown here (later
  /// iterations are skipped on a best-effort basis).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// parallel_for that collects fn(i) into slot i of the result vector --
  /// result order is index order regardless of execution order.
  template <typename T>
  std::vector<T> parallel_map(std::size_t n, const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// ASC_JOBS environment variable if set to a positive integer, else the
  /// hardware concurrency (at least 1).
  static int default_jobs();

  /// Process-wide pool, lazily built with default_jobs() workers. The CLIs
  /// size it via set_global_jobs(--jobs) before any parallel work starts.
  static Executor& global();
  static void set_global_jobs(int jobs);

  /// True while the calling thread is executing a parallel_for body (of any
  /// executor); used to run nested parallelism inline.
  static bool in_parallel_region();

 private:
  struct Impl;
  int jobs_;
  std::unique_ptr<Impl> impl_;  // null when jobs_ == 1 (pure serial mode)
};

/// Resolve the optional executor argument the pipelines take: nullptr means
/// the process-global pool.
inline Executor& resolve_executor(Executor* exec) {
  return exec != nullptr ? *exec : Executor::global();
}

}  // namespace asc::util
