// Small statistics helper used by the benchmark harnesses to reproduce the
// paper's measurement protocol: Table 4 repeats each experiment 12 times,
// drops the highest and lowest reading, and averages the remaining 10;
// Tables 5/6 average 4 repetitions and report the standard deviation.
#pragma once

#include <cstddef>
#include <vector>

namespace asc::util {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1), 0 if n < 2
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

/// Plain mean/stddev/min/max over all samples.
Summary summarize(const std::vector<double>& samples);

/// The paper's Table 4 protocol: discard one highest and one lowest sample,
/// then summarize the rest. Requires at least 3 samples.
Summary summarize_trimmed(std::vector<double> samples);

}  // namespace asc::util
