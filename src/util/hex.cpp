#include "util/hex.h"

#include "util/error.h"

namespace asc::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw Error("from_hex: invalid hex character");
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw Error("from_hex: odd-length input");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) << 4 | hex_value(hex[i + 1])));
  }
  return out;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

namespace {
void check_bounds(std::size_t size, std::size_t offset, std::size_t need) {
  if (offset + need > size) throw Error("byte read out of bounds");
}
}  // namespace

std::uint16_t get_u16(std::span<const std::uint8_t> buf, std::size_t offset) {
  check_bounds(buf.size(), offset, 2);
  return static_cast<std::uint16_t>(buf[offset] | buf[offset + 1] << 8);
}

std::uint32_t get_u32(std::span<const std::uint8_t> buf, std::size_t offset) {
  check_bounds(buf.size(), offset, 4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | buf[offset + static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> buf, std::size_t offset) {
  check_bounds(buf.size(), offset, 8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | buf[offset + static_cast<std::size_t>(i)];
  return v;
}

void set_u32(std::span<std::uint8_t> buf, std::size_t offset, std::uint32_t value) {
  check_bounds(buf.size(), offset, 4);
  for (int i = 0; i < 4; ++i) buf[offset + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value >> (8 * i));
}

void put_bytes(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

}  // namespace asc::util
