#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace asc::util {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  s.min = samples.front();
  s.max = samples.front();
  double sum = 0.0;
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() >= 2) {
    double sq = 0.0;
    for (double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
  return s;
}

Summary summarize_trimmed(std::vector<double> samples) {
  if (samples.size() < 3) throw Error("summarize_trimmed: need at least 3 samples");
  std::sort(samples.begin(), samples.end());
  std::vector<double> trimmed(samples.begin() + 1, samples.end() - 1);
  return summarize(trimmed);
}

}  // namespace asc::util
