#include "isa/decode.h"

#include "util/error.h"
#include "util/hex.h"

namespace asc::isa {

Decoded decode(std::span<const std::uint8_t> buf, std::size_t offset) {
  if (offset >= buf.size()) throw DecodeError("decode: offset past end of buffer");
  const std::uint8_t opbyte = buf[offset];
  if (!is_valid_opcode(opbyte)) throw DecodeError("decode: invalid opcode");
  const Op op = static_cast<Op>(opbyte);
  const std::size_t size = size_of(op);
  if (offset + size > buf.size()) throw DecodeError("decode: truncated instruction");

  Instr ins;
  ins.op = op;
  switch (format_of(op)) {
    case Fmt::None:
      break;
    case Fmt::R:
      ins.rd = buf[offset + 1];
      if (ins.rd >= kNumRegs) throw DecodeError("decode: bad register");
      break;
    case Fmt::RR:
      ins.rd = static_cast<Reg>(buf[offset + 1] >> 4);
      ins.rs = static_cast<Reg>(buf[offset + 1] & 0xf);
      break;
    case Fmt::RI:
      ins.rd = buf[offset + 1];
      if (ins.rd >= kNumRegs) throw DecodeError("decode: bad register");
      ins.imm = util::get_u32(buf, offset + 2);
      break;
    case Fmt::Mem:
      ins.rd = static_cast<Reg>(buf[offset + 1] >> 4);
      ins.rs = static_cast<Reg>(buf[offset + 1] & 0xf);
      ins.imm = util::get_u32(buf, offset + 2);
      break;
    case Fmt::Addr:
      ins.imm = util::get_u32(buf, offset + 1);
      break;
  }
  return Decoded{ins, size};
}

std::optional<Decoded> try_decode(std::span<const std::uint8_t> buf, std::size_t offset) {
  try {
    return decode(buf, offset);
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace asc::isa
