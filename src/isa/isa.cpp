#include "isa/isa.h"

#include "util/error.h"

namespace asc::isa {

Fmt format_of(Op op) {
  switch (op) {
    case Op::Nop:
    case Op::Halt:
    case Op::Syscall:
    case Op::Ret:
      return Fmt::None;
    case Op::Not:
    case Op::Neg:
    case Op::Push:
    case Op::Pop:
    case Op::Callr:
    case Op::Jmpr:
      return Fmt::R;
    case Op::Mov:
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::Shr:
    case Op::Cmp:
      return Fmt::RR;
    case Op::Movi:
    case Op::Addi:
    case Op::Subi:
    case Op::Muli:
    case Op::Andi:
    case Op::Ori:
    case Op::Xori:
    case Op::Shli:
    case Op::Shri:
    case Op::Cmpi:
    case Op::Lea:
      return Fmt::RI;
    case Op::Load:
    case Op::Store:
    case Op::Loadb:
    case Op::Storeb:
      return Fmt::Mem;
    case Op::Call:
    case Op::Jmp:
    case Op::Jz:
    case Op::Jnz:
    case Op::Jlt:
    case Op::Jle:
    case Op::Jgt:
    case Op::Jge:
      return Fmt::Addr;
  }
  throw DecodeError("format_of: unknown opcode");
}

bool is_valid_opcode(std::uint8_t byte) {
  switch (static_cast<Op>(byte)) {
    case Op::Nop:
    case Op::Halt:
    case Op::Syscall:
    case Op::Movi:
    case Op::Mov:
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::Shr:
    case Op::Addi:
    case Op::Subi:
    case Op::Muli:
    case Op::Andi:
    case Op::Ori:
    case Op::Xori:
    case Op::Shli:
    case Op::Shri:
    case Op::Not:
    case Op::Neg:
    case Op::Cmp:
    case Op::Cmpi:
    case Op::Load:
    case Op::Store:
    case Op::Loadb:
    case Op::Storeb:
    case Op::Push:
    case Op::Pop:
    case Op::Lea:
    case Op::Call:
    case Op::Callr:
    case Op::Ret:
    case Op::Jmp:
    case Op::Jz:
    case Op::Jnz:
    case Op::Jlt:
    case Op::Jle:
    case Op::Jgt:
    case Op::Jge:
    case Op::Jmpr:
      return true;
    default:
      return false;
  }
}

std::size_t size_of(Op op) {
  switch (format_of(op)) {
    case Fmt::None:
      return 1;
    case Fmt::R:
      return 2;
    case Fmt::RR:
      return 2;
    case Fmt::RI:
      return 6;
    case Fmt::Mem:
      return 6;
    case Fmt::Addr:
      return 5;
  }
  throw DecodeError("size_of: unknown format");
}

std::string mnemonic(Op op) {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::Halt: return "halt";
    case Op::Syscall: return "syscall";
    case Op::Movi: return "movi";
    case Op::Mov: return "mov";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Mod: return "mod";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Shl: return "shl";
    case Op::Shr: return "shr";
    case Op::Addi: return "addi";
    case Op::Subi: return "subi";
    case Op::Muli: return "muli";
    case Op::Andi: return "andi";
    case Op::Ori: return "ori";
    case Op::Xori: return "xori";
    case Op::Shli: return "shli";
    case Op::Shri: return "shri";
    case Op::Not: return "not";
    case Op::Neg: return "neg";
    case Op::Cmp: return "cmp";
    case Op::Cmpi: return "cmpi";
    case Op::Load: return "load";
    case Op::Store: return "store";
    case Op::Loadb: return "loadb";
    case Op::Storeb: return "storeb";
    case Op::Push: return "push";
    case Op::Pop: return "pop";
    case Op::Lea: return "lea";
    case Op::Call: return "call";
    case Op::Callr: return "callr";
    case Op::Ret: return "ret";
    case Op::Jmp: return "jmp";
    case Op::Jz: return "jz";
    case Op::Jnz: return "jnz";
    case Op::Jlt: return "jlt";
    case Op::Jle: return "jle";
    case Op::Jgt: return "jgt";
    case Op::Jge: return "jge";
    case Op::Jmpr: return "jmpr";
  }
  return "??";
}

bool is_control_transfer(Op op) {
  switch (op) {
    case Op::Call:
    case Op::Callr:
    case Op::Ret:
    case Op::Jmp:
    case Op::Jz:
    case Op::Jnz:
    case Op::Jlt:
    case Op::Jle:
    case Op::Jgt:
    case Op::Jge:
    case Op::Jmpr:
    case Op::Halt:
      return true;
    default:
      return false;
  }
}

bool is_conditional_branch(Op op) {
  switch (op) {
    case Op::Jz:
    case Op::Jnz:
    case Op::Jlt:
    case Op::Jle:
    case Op::Jgt:
    case Op::Jge:
      return true;
    default:
      return false;
  }
}

bool is_block_terminator(Op op) {
  // Calls do NOT terminate basic blocks for intraprocedural purposes (they
  // return to the next instruction), matching PLTO's treatment; the syscall
  // graph handles interprocedural flow separately. Ret/Jmp/branches/Halt and
  // indirect jumps do terminate blocks.
  switch (op) {
    case Op::Ret:
    case Op::Jmp:
    case Op::Jmpr:
    case Op::Jz:
    case Op::Jnz:
    case Op::Jlt:
    case Op::Jle:
    case Op::Jgt:
    case Op::Jge:
    case Op::Halt:
      return true;
    default:
      return false;
  }
}

bool writes_rd(Op op) {
  switch (op) {
    case Op::Movi:
    case Op::Mov:
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::Shr:
    case Op::Addi:
    case Op::Subi:
    case Op::Muli:
    case Op::Andi:
    case Op::Ori:
    case Op::Xori:
    case Op::Shli:
    case Op::Shri:
    case Op::Not:
    case Op::Neg:
    case Op::Load:
    case Op::Loadb:
    case Op::Pop:
    case Op::Lea:
      return true;
    default:
      return false;
  }
}

}  // namespace asc::isa
