// Textual disassembly of TSA instructions (debugging / policy explorer).
#pragma once

#include <string>

#include "isa/isa.h"

namespace asc::isa {

/// Human-readable one-line form, e.g. "movi r1, 0x5" or "load r2, [r15+8]".
std::string to_string(const Instr& ins);

}  // namespace asc::isa
