#include "isa/disasm.h"

#include <cstdio>

namespace asc::isa {

namespace {
std::string reg_name(Reg r) {
  if (r == kSp) return "sp";
  return "r" + std::to_string(static_cast<int>(r));
}
std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}
}  // namespace

std::string to_string(const Instr& ins) {
  const std::string m = mnemonic(ins.op);
  switch (format_of(ins.op)) {
    case Fmt::None:
      return m;
    case Fmt::R:
      return m + " " + reg_name(ins.rd);
    case Fmt::RR:
      return m + " " + reg_name(ins.rd) + ", " + reg_name(ins.rs);
    case Fmt::RI:
      return m + " " + reg_name(ins.rd) + ", " + hex32(ins.imm);
    case Fmt::Mem:
      if (ins.op == Op::Store || ins.op == Op::Storeb) {
        return m + " [" + reg_name(ins.rs) + "+" + hex32(ins.imm) + "], " + reg_name(ins.rd);
      }
      return m + " " + reg_name(ins.rd) + ", [" + reg_name(ins.rs) + "+" + hex32(ins.imm) + "]";
    case Fmt::Addr:
      return m + " " + hex32(ins.imm);
  }
  return m;
}

}  // namespace asc::isa
