#include "isa/encode.h"

#include "util/error.h"
#include "util/hex.h"

namespace asc::isa {

std::size_t encode(const Instr& ins, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.push_back(static_cast<std::uint8_t>(ins.op));
  switch (format_of(ins.op)) {
    case Fmt::None:
      break;
    case Fmt::R:
      if (ins.rd >= kNumRegs) throw Error("encode: bad register");
      out.push_back(ins.rd);
      break;
    case Fmt::RR:
      if (ins.rd >= kNumRegs || ins.rs >= kNumRegs) throw Error("encode: bad register");
      out.push_back(static_cast<std::uint8_t>(ins.rd << 4 | ins.rs));
      break;
    case Fmt::RI:
      if (ins.rd >= kNumRegs) throw Error("encode: bad register");
      out.push_back(ins.rd);
      util::put_u32(out, ins.imm);
      break;
    case Fmt::Mem:
      if (ins.rd >= kNumRegs || ins.rs >= kNumRegs) throw Error("encode: bad register");
      out.push_back(static_cast<std::uint8_t>(ins.rd << 4 | ins.rs));
      util::put_u32(out, ins.imm);
      break;
    case Fmt::Addr:
      util::put_u32(out, ins.imm);
      break;
  }
  return out.size() - start;
}

std::vector<std::uint8_t> encode_one(const Instr& ins) {
  std::vector<std::uint8_t> out;
  encode(ins, out);
  return out;
}

std::size_t imm_offset(Op op) {
  switch (format_of(op)) {
    case Fmt::RI:
    case Fmt::Mem:
      return 2;
    case Fmt::Addr:
      return 1;
    default:
      throw Error("imm_offset: format has no imm32 field");
  }
}

}  // namespace asc::isa
