// TSA instruction decoder.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "isa/isa.h"

namespace asc::isa {

struct Decoded {
  Instr ins;
  std::size_t size = 0;  // encoded size in bytes
};

/// Decode one instruction at `buf[offset]`. Throws asc::DecodeError when the
/// opcode is invalid or the buffer is truncated. The runtime (VM) and the
/// static disassembler both use this; the static disassembler catches the
/// error to report "cannot completely disassemble" (the paper's PLTO caveat).
Decoded decode(std::span<const std::uint8_t> buf, std::size_t offset);

/// Non-throwing variant; returns nullopt on any decoding failure.
std::optional<Decoded> try_decode(std::span<const std::uint8_t> buf, std::size_t offset);

}  // namespace asc::isa
