// TSA instruction encoder.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace asc::isa {

/// Append the encoding of `ins` to `out`. Returns the encoded size.
std::size_t encode(const Instr& ins, std::vector<std::uint8_t>& out);

/// Encode a single instruction into a fresh byte vector.
std::vector<std::uint8_t> encode_one(const Instr& ins);

/// Byte offset (within the encoding) of the 32-bit immediate/offset/address
/// field, for formats that have one. Used to place relocations on
/// address-bearing fields. Throws for formats without an imm32.
std::size_t imm_offset(Op op);

}  // namespace asc::isa
