// TSA -- the Toy System Architecture.
//
// TSA is the ISA of the simulated machine that stands in for IA-32 in this
// reproduction. It is designed to exercise the same binary-analysis problems
// the paper's PLTO-based installer faces on x86:
//
//   * variable-length instruction encoding (disassembly is nontrivial; a
//     malformed or hand-crafted byte stream can defeat the disassembler,
//     reproducing the OpenBSD `close` stub caveat of Table 2),
//   * absolute addresses embedded in instructions (so relocation information
//     is required for rewriting, just as PLTO requires relocatable ELF),
//   * a trap instruction (SYSCALL) with the system call number in a register
//     (r0 plays the role of EAX before `int 0x80`),
//   * indirect calls/jumps that force conservative call-graph analysis.
//
// Register convention (the "toy ABI"):
//   r0        system call number / function & syscall return value
//   r1..r5    function and system call arguments (caller sets, callee may clobber)
//   r6..r10   RESERVED for the ASC rewriter: policy descriptor, block id,
//             predecessor-set pointer, policy-state pointer, call-MAC pointer.
//             Compiled (toy-libc) code never holds live values here across a
//             system call; the installer relies on this.
//   r11..r14  general purpose, callee-clobbered
//   r15       stack pointer (sp); stack grows down
//
// Condition flags Z (equal) and N (signed less-than) are set only by CMP/CMPI
// and consumed by the conditional jumps.
#pragma once

#include <cstdint>
#include <string>

namespace asc::isa {

/// Register index (0..15). r15 is the stack pointer.
using Reg = std::uint8_t;

inline constexpr Reg kNumRegs = 16;
inline constexpr Reg kSp = 15;

// ASC reserved registers (extra authenticated-call arguments).
inline constexpr Reg kRegPolicyDescriptor = 6;
inline constexpr Reg kRegBlockId = 7;
inline constexpr Reg kRegPredSet = 8;
inline constexpr Reg kRegStatePtr = 9;
inline constexpr Reg kRegCallMac = 10;
// When a call's policy includes argument patterns (§5.1), r11 carries the
// pointer to the (untrusted) match-hint block the application computed.
inline constexpr Reg kRegHintPtr = 11;

/// Operand format of an instruction.
enum class Fmt : std::uint8_t {
  None,  // [op]
  R,     // [op][rd]
  RR,    // [op][rd<<4|rs]
  RI,    // [op][rd][imm32]
  Mem,   // [op][rd<<4|rs][off32]      load rd <- [rs+off] / store [rs+off] <- rd
  Addr,  // [op][addr32]               control transfer to absolute address
};

enum class Op : std::uint8_t {
  Nop = 0x00,
  Halt = 0x01,     // abnormal stop (guest bug); normal exit is the Exit syscall
  Syscall = 0x02,  // trap to kernel; number in r0, args in r1..r5

  Movi = 0x10,  // RI: rd = imm (plain constant)
  Mov = 0x11,   // RR: rd = rs
  Add = 0x12,   // RR: rd += rs
  Sub = 0x13,
  Mul = 0x14,
  Div = 0x15,  // signed; divide-by-zero faults the guest
  Mod = 0x16,
  And = 0x17,
  Or = 0x18,
  Xor = 0x19,
  Shl = 0x1a,  // shift amount = rs & 31
  Shr = 0x1b,  // logical

  Addi = 0x20,  // RI: rd += imm
  Subi = 0x21,
  Muli = 0x22,
  Andi = 0x23,
  Ori = 0x24,
  Xori = 0x25,
  Shli = 0x26,
  Shri = 0x27,
  Not = 0x28,  // R
  Neg = 0x29,  // R

  Cmp = 0x30,   // RR: set Z/N from rd - rs (signed)
  Cmpi = 0x31,  // RI

  Load = 0x40,    // Mem: rd = mem32[rs+off]
  Store = 0x41,   // Mem: mem32[rs+off] = rd
  Loadb = 0x42,   // Mem: rd = zext(mem8[rs+off])
  Storeb = 0x43,  // Mem: mem8[rs+off] = rd & 0xff
  Push = 0x44,    // R
  Pop = 0x45,     // R
  Lea = 0x46,     // RI: rd = absolute address (always relocated)

  Call = 0x50,   // Addr: push return address; pc = addr
  Callr = 0x51,  // R: indirect call
  Ret = 0x52,    // None

  Jmp = 0x60,  // Addr
  Jz = 0x61,
  Jnz = 0x62,
  Jlt = 0x63,
  Jle = 0x64,
  Jgt = 0x65,
  Jge = 0x66,
  Jmpr = 0x67,  // R: indirect jump
};

/// Decoded instruction. `imm` holds the immediate, memory offset, or absolute
/// address depending on the format.
struct Instr {
  Op op = Op::Nop;
  Reg rd = 0;
  Reg rs = 0;
  std::uint32_t imm = 0;

  bool operator==(const Instr&) const = default;
};

/// Operand format for an opcode. Throws DecodeError for an unknown opcode.
Fmt format_of(Op op);

/// True if `byte` is a defined opcode.
bool is_valid_opcode(std::uint8_t byte);

/// Encoded size in bytes of an instruction with this opcode.
std::size_t size_of(Op op);

/// Mnemonic ("movi", "jz", ...).
std::string mnemonic(Op op);

/// Classification helpers used by the analyses.
bool is_control_transfer(Op op);           // call/ret/jmp/branches/halt/jmpr
bool is_conditional_branch(Op op);         // jz..jge
bool is_block_terminator(Op op);           // ends a basic block
bool writes_rd(Op op);                     // instruction defines rd
}  // namespace asc::isa
