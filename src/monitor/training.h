// Training-based policy generation -- the approach most existing system call
// monitors use (§2.2) and the baseline our static-analysis policies are
// compared against in Tables 1 and 2.
//
// The program is executed on a set of SAMPLE inputs with kernel tracing on;
// the observed syscalls (and, optionally, their path arguments) become the
// policy. By construction the policy misses anything the samples did not
// exercise -- error paths, rare features -- which is exactly the
// false-alarm weakness the paper demonstrates.
#pragma once

#include <string>
#include <vector>

#include "binary/image.h"
#include "os/kernel.h"
#include "vm/machine.h"

namespace asc::monitor {

struct TrainingRun {
  std::vector<std::string> argv;
  std::string stdin_data;
};

struct TrainingOptions {
  bool learn_paths = true;  // record path arguments as allowed patterns
};

/// Run `image` on every sample in `runs` inside `machine` (tracing is
/// enabled and restored) and distill a MonitorPolicy from the union of the
/// observed traces.
os::MonitorPolicy train_policy(vm::Machine& machine, const binary::Image& image,
                               const std::vector<TrainingRun>& runs,
                               const TrainingOptions& options = {});

/// Distill from an already-captured trace.
os::MonitorPolicy policy_from_trace(const std::vector<os::TraceEntry>& trace,
                                    const TrainingOptions& options = {});

}  // namespace asc::monitor
