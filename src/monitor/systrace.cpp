#include "monitor/systrace.h"

namespace asc::monitor {

SystracePolicy make_published_policy(const os::MonitorPolicy& trained,
                                     os::Personality personality) {
  SystracePolicy out;
  out.runtime = trained;

  bool saw_fsread = false;
  bool saw_fswrite = false;
  for (std::uint16_t sysno : trained.allowed) {
    const auto id = os::syscall_from_number(personality, sysno);
    if (!id.has_value()) continue;
    const auto& sig = os::signature(*id);
    if (sig.category == os::Category::FsRead) {
      saw_fsread = true;
      continue;  // folded into the alias, not named individually
    }
    if (sig.category == os::Category::FsWrite) {
      saw_fswrite = true;
      continue;
    }
    out.named.insert(sig.name);
    out.permitted.insert(sig.name);
  }
  // The published policies almost always carry both aliases once any
  // filesystem access is observed (hand edits favor generality).
  if (saw_fsread || saw_fswrite) {
    saw_fsread = saw_fswrite = true;
  }
  out.runtime.allow_fsread = saw_fsread;
  out.runtime.allow_fswrite = saw_fswrite;
  if (saw_fsread) out.named.insert("fsread");
  if (saw_fswrite) out.named.insert("fswrite");
  for (os::SysId id : os::available_syscalls(personality)) {
    const auto& sig = os::signature(id);
    if ((saw_fsread && sig.category == os::Category::FsRead) ||
        (saw_fswrite && sig.category == os::Category::FsWrite)) {
      out.permitted.insert(sig.name);
    }
  }
  return out;
}

}  // namespace asc::monitor
