// The Systrace stand-in (§4.2).
//
// Published Systrace policies (Project Hairy Eyeball) are produced by
// training plus hand edits, and use two generic aliases -- `fsread` and
// `fswrite` -- that implicitly permit whole families of filesystem calls.
// make_published_policy() reproduces that: it takes a trained policy and
// generalizes path-oriented calls into the aliases, which both (a) hides
// some trained calls behind the aliases and (b) implicitly permits
// filesystem calls the application never makes (the mkdir/readlink/rmdir/
// unlink rows of Table 2).
#pragma once

#include <set>
#include <string>

#include "os/sysmonitor.h"
#include "os/syscalls.h"

namespace asc::monitor {

struct SystracePolicy {
  os::MonitorPolicy runtime;  // enforceable by the Daemon/KernelTable modes
  /// Distinct syscall names the policy *names directly* (what a published
  /// policy file lists; the Table 1 "Systrace policy" count).
  std::set<std::string> named;
  /// Every syscall name the policy actually PERMITS, i.e. named calls plus
  /// alias expansions (used for the Table 2 comparison).
  std::set<std::string> permitted;
};

/// Generalize a trained policy the way the published OpenBSD policies are
/// written.
SystracePolicy make_published_policy(const os::MonitorPolicy& trained,
                                     os::Personality personality);

}  // namespace asc::monitor
