#include "monitor/training.h"

#include <algorithm>

namespace asc::monitor {

os::MonitorPolicy policy_from_trace(const std::vector<os::TraceEntry>& trace,
                                    const TrainingOptions& options) {
  os::MonitorPolicy pol;
  for (const auto& t : trace) {
    pol.allowed.insert(t.sysno);
    if (options.learn_paths && !t.path.empty()) {
      auto& pats = pol.path_patterns[t.sysno];
      if (std::find(pats.begin(), pats.end(), t.path) == pats.end()) pats.push_back(t.path);
    }
  }
  return pol;
}

os::MonitorPolicy train_policy(vm::Machine& machine, const binary::Image& image,
                               const std::vector<TrainingRun>& runs,
                               const TrainingOptions& options) {
  auto& kernel = machine.kernel();
  const auto saved_mode = kernel.enforcement();
  kernel.set_enforcement(os::Enforcement::Off);
  kernel.set_tracing(true);
  kernel.clear_trace();
  for (const auto& run : runs) {
    (void)machine.run(image, run.argv, run.stdin_data);
  }
  os::MonitorPolicy pol = policy_from_trace(kernel.trace(), options);
  kernel.set_tracing(false);
  kernel.clear_trace();
  kernel.set_enforcement(saved_mode);
  return pol;
}

}  // namespace asc::monitor
