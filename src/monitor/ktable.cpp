#include "monitor/ktable.h"

namespace asc::monitor {

os::MonitorPolicy table_from_asc_policies(const std::vector<policy::SyscallPolicy>& policies) {
  os::MonitorPolicy pol;
  for (const auto& p : policies) {
    pol.allowed.insert(p.sysno);
    // Carry exact string-argument constraints where the ASC policy has them
    // for the first path argument.
    const auto& sig = os::signature(p.sys);
    if (p.arity > 0 && sig.args[0] == os::ArgKind::PathIn &&
        p.args[0].kind == policy::ArgPolicy::Kind::String) {
      auto& pats = pol.path_patterns[p.sysno];
      pats.push_back(p.args[0].str);
    }
  }
  return pol;
}

}  // namespace asc::monitor
