// In-kernel table monitor baseline.
//
// Represents the "implemented entirely in the kernel" family of monitors
// (§1): the kernel holds a per-program table of permitted syscalls and
// checks each trap with a table lookup. Cheap per call, but the kernel must
// store and manage every program's policy -- the complexity ASC moves into
// the application binary. Used by the monitor-comparison ablation bench.
#pragma once

#include <vector>

#include "os/sysmonitor.h"
#include "policy/policy.h"

namespace asc::monitor {

/// Build a kernel-table policy equivalent (at syscall-set granularity) to a
/// set of ASC policies, so the ablation compares enforcement mechanisms on
/// the same policy content.
os::MonitorPolicy table_from_asc_policies(const std::vector<policy::SyscallPolicy>& policies);

}  // namespace asc::monitor
