// Image -> IR disassembler (the front end of the PLTO-style installer).
//
// Requires a *relocatable* image: relocation entries tell the disassembler
// which 32-bit immediates are absolute addresses, letting it symbolize them
// precisely (the same reason PLTO requires `-Wl,-q` binaries). The result is
// a symbolic IR in which:
//
//   * intra-function branch targets are instruction indexes (CodeLocal),
//   * call targets and address-taken code constants are function indexes
//     (FuncEntry),
//   * data address constants stay absolute (DataAddr) -- the fixed section
//     windows of the TXE format guarantee they survive rewriting.
//
// Functions whose bytes cannot be fully decoded -- or that use computed
// jumps the analysis cannot resolve -- are marked OPAQUE and reported, the
// behavior the paper observed for OpenBSD's `close` stub ("PLTO always
// reports when it cannot completely disassemble a binary").
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "binary/image.h"
#include "isa/isa.h"

namespace asc::util {
class Executor;
}

namespace asc::analysis {

enum class RefKind : std::uint8_t {
  None,       // plain immediate
  CodeLocal,  // index of an instruction in the same function
  FuncEntry,  // index of a function in ProgramIr::funcs
  DataAddr,   // absolute address in a data section window
};

struct IrInstr {
  isa::Instr ins;
  std::uint32_t orig_addr = 0;  // address in the input image (0 if inserted)
  RefKind ref = RefKind::None;
  std::size_t ref_index = 0;      // CodeLocal instr index or FuncEntry func index
  std::uint32_t ref_addr = 0;     // DataAddr target
};

struct IrFunction {
  std::string name;
  std::uint32_t orig_addr = 0;
  std::vector<IrInstr> instrs;
  bool opaque = false;
  std::string opaque_reason;
  bool address_taken = false;  // via Lea or a data-resident code pointer
  bool inlined_away = false;   // stub removed by the inliner (dead)
};

struct ProgramIr {
  std::string name;
  std::size_t entry_func = 0;
  std::vector<IrFunction> funcs;
  /// Virtual addresses of data-section relocation slots that hold code
  /// pointers (function entries); the rewriter must retarget these.
  std::vector<std::pair<std::uint32_t, std::size_t>> data_code_ptrs;  // slot -> func index

  const IrFunction* find(const std::string& fn_name) const;
};

/// Disassemble a relocatable image. Throws asc::Error if the image is not
/// relocatable or structurally broken; individual undecodable functions are
/// marked opaque rather than failing the whole program. Per-function decode
/// and symbolization fan out over `exec` (nullptr = the global executor);
/// the result is identical at any job count.
ProgramIr disassemble(const binary::Image& image, util::Executor* exec = nullptr);

}  // namespace asc::analysis
