#include "analysis/inliner.h"

#include "util/error.h"

namespace asc::analysis {

bool is_syscall_stub(const ProgramIr& ir, std::size_t fi) {
  const IrFunction& f = ir.funcs[fi];
  if (f.opaque || f.inlined_away) return false;
  if (f.instrs.empty() || f.instrs.size() > kMaxStubLen) return false;
  if (f.instrs.back().ins.op != isa::Op::Ret) return false;
  bool has_syscall = false;
  for (std::size_t i = 0; i < f.instrs.size(); ++i) {
    const isa::Op op = f.instrs[i].ins.op;
    if (op == isa::Op::Syscall) has_syscall = true;
    // Straight-line only: any control transfer except the final Ret
    // disqualifies (including calls -- a stub must trap directly).
    if (isa::is_control_transfer(op) && !(op == isa::Op::Ret && i + 1 == f.instrs.size())) {
      return false;
    }
    // A jump INTO the stub body would break inlining; CodeLocal refs only
    // arise from branches, excluded above, so nothing more to check.
  }
  return has_syscall;
}

namespace {

/// Remove functions in `candidates` that are no longer referenced.
void remove_dead(ProgramIr& ir, const std::vector<bool>& candidates, InlineReport& report) {
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    if (!candidates[fi]) continue;
    if (ir.funcs[fi].address_taken || fi == ir.entry_func) continue;
    bool still_called = false;
    for (std::size_t oi = 0; oi < ir.funcs.size() && !still_called; ++oi) {
      const IrFunction& other = ir.funcs[oi];
      if (other.opaque || other.inlined_away) continue;
      for (const auto& instr : other.instrs) {
        if ((instr.ins.op == isa::Op::Call || instr.ins.op == isa::Op::Jmp) &&
            instr.ref == RefKind::FuncEntry && instr.ref_index == fi) {
          still_called = true;
          break;
        }
      }
    }
    if (!still_called) {
      ir.funcs[fi].inlined_away = true;
      ir.funcs[fi].instrs.clear();
      ++report.stubs_removed;
    }
  }
}

}  // namespace

InlineReport inline_syscall_wrappers(ProgramIr& ir) {
  InlineReport report;

  // Qualify wrappers on a snapshot taken after stub inlining.
  std::vector<bool> qualifies(ir.funcs.size(), false);
  std::vector<std::vector<IrInstr>> snapshot(ir.funcs.size());
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    const IrFunction& f = ir.funcs[fi];
    if (fi == ir.entry_func || f.opaque || f.inlined_away || f.address_taken) continue;
    if (f.instrs.empty() || f.instrs.size() > kMaxWrapperLen) continue;
    bool has_syscall = false;
    bool ok = true;
    for (const auto& instr : f.instrs) {
      if (instr.ins.op == isa::Op::Syscall) has_syscall = true;
      if (instr.ins.op == isa::Op::Jmpr || instr.ins.op == isa::Op::Callr) ok = false;
      // Self-recursion cannot be inlined.
      if (instr.ins.op == isa::Op::Call && instr.ref == RefKind::FuncEntry &&
          instr.ref_index == fi) {
        ok = false;
      }
    }
    if (has_syscall && ok) {
      qualifies[fi] = true;
      snapshot[fi] = f.instrs;
      ++report.stubs_found;
      report.stub_names.push_back(f.name);
    }
  }

  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    IrFunction& f = ir.funcs[fi];
    if (f.opaque || f.inlined_away) continue;
    if (qualifies[fi]) continue;  // wrappers keep calling each other as-is
    for (std::size_t i = 0; i < f.instrs.size(); /* advance inside */) {
      const IrInstr& instr = f.instrs[i];
      if (!(instr.ins.op == isa::Op::Call && instr.ref == RefKind::FuncEntry &&
            qualifies[instr.ref_index]) ||
          i + 1 == f.instrs.size()) {
        // (A call as the very last instruction has no landing point for the
        // converted returns; leave it alone.)
        ++i;
        continue;
      }
      std::vector<IrInstr> body = snapshot[instr.ref_index];
      const std::size_t len = body.size();
      // Rebase the body: internal CodeLocal refs shift by +i; returns jump
      // past the spliced body (to the caller's next instruction).
      for (auto& bi : body) {
        if (bi.ref == RefKind::CodeLocal) bi.ref_index += i;
        if (bi.ins.op == isa::Op::Ret) {
          bi.ins = {isa::Op::Jmp, 0, 0, 0};
          bi.ref = RefKind::CodeLocal;
          bi.ref_index = i + len;
        }
        bi.orig_addr = 0;  // inserted code has no original address
      }
      const std::ptrdiff_t delta = static_cast<std::ptrdiff_t>(len) - 1;
      for (auto& other : f.instrs) {
        if (other.ref == RefKind::CodeLocal && other.ref_index > i) {
          other.ref_index =
              static_cast<std::size_t>(static_cast<std::ptrdiff_t>(other.ref_index) + delta);
        }
      }
      f.instrs.erase(f.instrs.begin() + static_cast<std::ptrdiff_t>(i));
      f.instrs.insert(f.instrs.begin() + static_cast<std::ptrdiff_t>(i), body.begin(),
                      body.end());
      ++report.call_sites_inlined;
      i += len;
    }
  }

  remove_dead(ir, qualifies, report);
  return report;
}

InlineReport inline_syscall_stubs(ProgramIr& ir) {
  InlineReport report;
  std::vector<bool> is_stub(ir.funcs.size(), false);
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    if (fi == ir.entry_func) continue;
    if (is_syscall_stub(ir, fi)) {
      is_stub[fi] = true;
      ++report.stubs_found;
      report.stub_names.push_back(ir.funcs[fi].name);
    }
  }

  // Replace each Call-to-stub with the stub body (minus the final Ret).
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    IrFunction& f = ir.funcs[fi];
    if (f.opaque || f.inlined_away || is_stub[fi]) continue;  // stubs don't call stubs
    for (std::size_t i = 0; i < f.instrs.size(); /* advance inside */) {
      const IrInstr& instr = f.instrs[i];
      if (instr.ins.op == isa::Op::Call && instr.ref == RefKind::FuncEntry &&
          is_stub[instr.ref_index]) {
        const IrFunction& stub = ir.funcs[instr.ref_index];
        std::vector<IrInstr> body(stub.instrs.begin(), stub.instrs.end() - 1);
        // CodeLocal refs inside a straight-line stub cannot exist; DataAddr
        // and FuncEntry refs are position-independent, so the body can be
        // spliced verbatim. Fix up local branch targets in the caller that
        // point past the splice.
        const std::ptrdiff_t delta = static_cast<std::ptrdiff_t>(body.size()) - 1;
        for (auto& other : f.instrs) {
          if (other.ref == RefKind::CodeLocal && other.ref_index > i) {
            other.ref_index = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(other.ref_index) + delta);
          }
        }
        f.instrs.erase(f.instrs.begin() + static_cast<std::ptrdiff_t>(i));
        f.instrs.insert(f.instrs.begin() + static_cast<std::ptrdiff_t>(i), body.begin(),
                        body.end());
        ++report.call_sites_inlined;
        i += body.size();
      } else {
        ++i;
      }
    }
  }

  // Remove stubs that are now dead.
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    if (!is_stub[fi]) continue;
    if (ir.funcs[fi].address_taken) continue;
    bool still_called = false;
    for (std::size_t oi = 0; oi < ir.funcs.size() && !still_called; ++oi) {
      const IrFunction& other = ir.funcs[oi];
      if (other.opaque || other.inlined_away) continue;
      for (const auto& instr : other.instrs) {
        if ((instr.ins.op == isa::Op::Call || instr.ins.op == isa::Op::Jmp) &&
            instr.ref == RefKind::FuncEntry && instr.ref_index == fi) {
          still_called = true;
          break;
        }
      }
    }
    if (!still_called) {
      ir.funcs[fi].inlined_away = true;
      ir.funcs[fi].instrs.clear();
      ++report.stubs_removed;
    }
  }
  return report;
}

}  // namespace asc::analysis
