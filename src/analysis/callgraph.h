// Program call graph (conservative).
//
// Direct calls come from Call instructions; indirect calls (Callr) are
// resolved conservatively to the set of address-taken functions, which the
// disassembler computed from Lea instructions and data-resident code
// pointers. The paper's syscall graph (control-flow policies) is derived
// from this graph plus the per-function CFGs.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/disassembler.h"

namespace asc::analysis {

struct CallGraph {
  /// Per function: callee function indexes (deduplicated).
  std::vector<std::vector<std::size_t>> callees;
  /// Per function: caller function indexes (deduplicated).
  std::vector<std::vector<std::size_t>> callers;
  /// Functions whose address is taken (possible indirect-call targets).
  std::vector<std::size_t> address_taken;
  /// True if any function contains an indirect call.
  bool has_indirect_calls = false;
};

CallGraph build_callgraph(const ProgramIr& ir, const Cfg& cfg);

}  // namespace asc::analysis
