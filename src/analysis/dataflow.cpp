#include "analysis/dataflow.h"

#include <algorithm>
#include <array>

#include "util/error.h"

namespace asc::analysis {

std::vector<isa::Reg> ReachingDefs::defined_regs(const IrInstr& instr) {
  const isa::Op op = instr.ins.op;
  if (op == isa::Op::Call || op == isa::Op::Callr) {
    // Toy ABI: calls may clobber r0..r5 and r11..r14.
    std::vector<isa::Reg> regs;
    for (isa::Reg r = 0; r <= 5; ++r) regs.push_back(r);
    for (isa::Reg r = 11; r <= 14; ++r) regs.push_back(r);
    return regs;
  }
  if (op == isa::Op::Syscall) return {0};
  if (isa::writes_rd(op)) return {instr.ins.rd};
  return {};
}

ReachingDefs::ReachingDefs(const ProgramIr& ir, const Cfg& cfg, std::size_t fi)
    : f_(ir.funcs[fi]), cfg_(cfg), fi_(fi) {
  const FunctionCfg& fc = cfg.functions[fi];
  if (fc.block_ids.empty()) return;

  // gen/kill per block: last def of each register within the block (or none).
  struct BlockSummary {
    std::array<std::optional<std::size_t>, isa::kNumRegs> last_def{};  // kills + gens
  };
  std::map<std::uint32_t, BlockSummary> summary;
  for (std::uint32_t bid : fc.block_ids) {
    const BasicBlock& b = cfg.block(bid);
    BlockSummary s;
    for (std::size_t i = b.first; i <= b.last; ++i) {
      for (isa::Reg r : defined_regs(f_.instrs[i])) s.last_def[r] = i;
    }
    summary[bid] = s;
  }

  // Initialize: entry block starts with the synthetic entry definition for
  // every register.
  for (std::uint32_t bid : fc.block_ids) {
    in_[bid] = {};
  }
  for (isa::Reg r = 0; r < isa::kNumRegs; ++r) in_[fc.entry_block][r].insert(kEntryDef);

  // Worklist fixpoint.
  std::vector<std::uint32_t> worklist(fc.block_ids.begin(), fc.block_ids.end());
  while (!worklist.empty()) {
    const std::uint32_t bid = worklist.back();
    worklist.pop_back();
    const BasicBlock& b = cfg.block(bid);
    const BlockSummary& s = summary[bid];
    // out = gen U (in - kill) per register.
    std::array<std::set<std::size_t>, isa::kNumRegs> out;
    for (isa::Reg r = 0; r < isa::kNumRegs; ++r) {
      if (s.last_def[r].has_value()) {
        out[r] = {*s.last_def[r]};
      } else {
        out[r] = in_[bid][r];
      }
    }
    for (std::uint32_t succ : b.succs) {
      bool changed = false;
      for (isa::Reg r = 0; r < isa::kNumRegs; ++r) {
        for (std::size_t d : out[r]) {
          if (in_[succ][r].insert(d).second) changed = true;
        }
      }
      if (changed) worklist.push_back(succ);
    }
  }
}

std::set<std::size_t> ReachingDefs::defs_at(std::size_t instr, isa::Reg r) const {
  const std::uint32_t bid = cfg_.block_containing(fi_, instr);
  const BasicBlock& b = cfg_.block(bid);
  auto it = in_.find(bid);
  if (it == in_.end()) return {};
  std::set<std::size_t> defs = it->second[r];
  for (std::size_t i = b.first; i < instr; ++i) {
    for (isa::Reg dr : defined_regs(f_.instrs[i])) {
      if (dr == r) defs = {i};
    }
  }
  return defs;
}

namespace {

bool is_rodata_cstring(const binary::Image& image, std::uint32_t addr) {
  const auto sec = image.section_containing(addr);
  if (!sec.has_value() || *sec != binary::SectionKind::Rodata) return false;
  return image.cstring_at(addr).has_value();
}

}  // namespace

AbstractValue trace_value(const ProgramIr& ir, const binary::Image& image, const Cfg& cfg,
                          const ReachingDefs& rd, std::size_t fi, std::size_t instr, isa::Reg r,
                          int depth) {
  AbstractValue result;
  if (depth > 12) return result;  // Unknown

  const IrFunction& f = ir.funcs[fi];
  const auto defs = rd.defs_at(instr, r);
  if (defs.empty()) return result;

  // Resolve every reaching definition to an abstract value; merge.
  std::vector<AbstractValue> vals;
  for (std::size_t d : defs) {
    if (d == kEntryDef) return AbstractValue{};  // parameter: Unknown
    const IrInstr& din = f.instrs[d];
    switch (din.ins.op) {
      case isa::Op::Movi: {
        AbstractValue v;
        v.kind = AbstractValue::Kind::Const;
        v.value = din.ins.imm;
        vals.push_back(v);
        break;
      }
      case isa::Op::Lea: {
        AbstractValue v;
        if (din.ref == RefKind::DataAddr && is_rodata_cstring(image, din.ref_addr)) {
          v.kind = AbstractValue::Kind::StrAddr;
          v.value = din.ref_addr;
        } else if (din.ref == RefKind::DataAddr) {
          // Address of a non-string or writable object: a constant address
          // ("Immediate" in the paper's classification).
          v.kind = AbstractValue::Kind::Const;
          v.value = din.ref_addr;
        } else {
          // Function pointer constants are constants too.
          v.kind = AbstractValue::Kind::Const;
          v.value = din.ins.imm;
        }
        vals.push_back(v);
        break;
      }
      case isa::Op::Mov: {
        vals.push_back(trace_value(ir, image, cfg, rd, fi, d, din.ins.rs, depth + 1));
        break;
      }
      case isa::Op::Syscall: {
        // The r0 result of an fd-returning syscall is a capability source.
        // Determine which syscall this is by tracing ITS r0 input.
        AbstractValue v;  // Unknown unless fd-returning
        const AbstractValue sysno = trace_value(ir, image, cfg, rd, fi, d, 0, depth + 1);
        if (sysno.kind == AbstractValue::Kind::Const) {
          v.kind = AbstractValue::Kind::FdFrom;
          v.fd_sites = {d};
        }
        vals.push_back(v);
        break;
      }
      default:
        vals.push_back(AbstractValue{});  // Unknown
        break;
    }
  }

  // Merge.
  bool all_const = true;
  bool all_fd = true;
  std::set<std::uint32_t> consts;
  std::set<std::size_t> fd_sites;
  for (const auto& v : vals) {
    switch (v.kind) {
      case AbstractValue::Kind::Const:
      case AbstractValue::Kind::StrAddr:
        consts.insert(v.value);
        all_fd = false;
        break;
      case AbstractValue::Kind::Multi:
        for (auto c : v.values) consts.insert(c);
        all_fd = false;
        break;
      case AbstractValue::Kind::FdFrom:
        for (auto s : v.fd_sites) fd_sites.insert(s);
        all_const = false;
        break;
      case AbstractValue::Kind::Unknown:
        return AbstractValue{};
    }
  }
  if (all_fd && !fd_sites.empty()) {
    result.kind = AbstractValue::Kind::FdFrom;
    result.fd_sites.assign(fd_sites.begin(), fd_sites.end());
    return result;
  }
  if (!all_const || consts.empty()) return AbstractValue{};
  if (consts.size() == 1 && vals.size() >= 1) {
    // Single value: preserve the StrAddr kind if every def was the string.
    bool all_str = std::all_of(vals.begin(), vals.end(), [](const AbstractValue& v) {
      return v.kind == AbstractValue::Kind::StrAddr;
    });
    result.kind = all_str ? AbstractValue::Kind::StrAddr : AbstractValue::Kind::Const;
    result.value = *consts.begin();
    return result;
  }
  result.kind = AbstractValue::Kind::Multi;
  result.values.assign(consts.begin(), consts.end());
  return result;
}

}  // namespace asc::analysis
