#include "analysis/syscallgraph.h"

#include <algorithm>
#include <set>

#include "policy/policy.h"
#include "util/error.h"
#include "util/executor.h"

namespace asc::analysis {

SyscallGraph build_syscall_graph(const ProgramIr& ir, const Cfg& cfg, const CallGraph& cg,
                                 const std::vector<SyscallSite>& sites,
                                 util::Executor* exec) {
  // ---- collect per-function entry and exit (ret) blocks ----
  const std::size_t nfuncs = ir.funcs.size();
  std::vector<std::vector<std::uint32_t>> exits(nfuncs);
  for (const auto& b : cfg.blocks) {
    if (b.ends_in_call && b.ends_in_ret) {
      throw Error("syscall graph: tail calls are not supported by this installer");
    }
    if (b.ends_in_ret) exits[b.func].push_back(b.id);
  }

  // ---- reverse supergraph edges ----
  std::map<std::uint32_t, std::set<std::uint32_t>> rev;
  auto add_edge = [&](std::uint32_t from, std::uint32_t to) { rev[to].insert(from); };

  for (const auto& b : cfg.blocks) {
    if (!b.ends_in_call) {
      for (std::uint32_t s : b.succs) add_edge(b.id, s);
      continue;
    }
    // Call block: resolve callee set.
    std::vector<std::size_t> callees;
    if (b.call_target != SIZE_MAX) {
      callees.push_back(b.call_target);
    } else {
      callees = cg.address_taken;
    }
    bool any_known_callee = false;
    for (std::size_t callee : callees) {
      const IrFunction& cf = ir.funcs[callee];
      if (cf.opaque || cf.inlined_away || cfg.functions[callee].block_ids.empty()) continue;
      any_known_callee = true;
      // Call edge.
      add_edge(b.id, cfg.functions[callee].entry_block);
      // Return edges: callee exits -> fallthrough successor(s) of the call.
      for (std::uint32_t s : b.succs) {
        for (std::uint32_t e : exits[callee]) add_edge(e, s);
      }
    }
    if (!any_known_callee) {
      // Unknown/opaque callee: be conservative, let flow skip the call.
      for (std::uint32_t s : b.succs) add_edge(b.id, s);
    }
  }

  // ---- program entry block ----
  std::uint32_t program_entry_block = 0;
  if (!cfg.functions[ir.entry_func].block_ids.empty()) {
    program_entry_block = cfg.functions[ir.entry_func].entry_block;
  }

  // ---- per-site reverse walks (parallel: rev/cfg are read-only, each
  // site writes only its own predecessors slot) ----
  SyscallGraph g;
  g.predecessors.resize(sites.size());
  util::resolve_executor(exec).parallel_for(sites.size(), [&](std::size_t si) {
    const SyscallSite& site = sites[si];
    std::set<std::uint32_t> preds;

    // Another syscall earlier in the same block is the sole predecessor.
    const BasicBlock& b0 = cfg.block(site.block);
    bool earlier_in_block = false;
    for (std::size_t s : b0.syscall_instrs) {
      if (s < site.instr) earlier_in_block = true;
    }
    if (earlier_in_block) {
      g.predecessors[si] = {site.block};
      return;
    }

    std::set<std::uint32_t> visited;
    std::vector<std::uint32_t> stack;
    auto expand = [&](std::uint32_t block_id) {
      if (block_id == program_entry_block) preds.insert(policy::kStartBlockLocal);
      auto it = rev.find(block_id);
      if (it == rev.end()) return;
      for (std::uint32_t p : it->second) {
        if (visited.insert(p).second) stack.push_back(p);
      }
    };
    expand(site.block);
    while (!stack.empty()) {
      const std::uint32_t cur = stack.back();
      stack.pop_back();
      const BasicBlock& cb = cfg.block(cur);
      if (!cb.syscall_instrs.empty()) {
        preds.insert(cur);  // stop: the last syscall in `cur` precedes us
        continue;
      }
      expand(cur);
    }
    g.predecessors[si].assign(preds.begin(), preds.end());
  });
  return g;
}

}  // namespace asc::analysis
