#include "analysis/argclass.h"

#include <algorithm>

namespace asc::analysis {

ArgCoverage compute_arg_coverage(const SiteScan& scan) {
  ArgCoverage c;
  std::set<os::SysId> distinct;
  for (const auto& site : scan.sites) {
    ++c.sites;
    distinct.insert(site.id);
    const auto& sig = os::signature(site.id);
    c.args += static_cast<std::size_t>(site.arity);
    for (int a = 0; a < site.arity; ++a) {
      const auto idx = static_cast<std::size_t>(a);
      if (os::is_output_arg(sig.args[idx])) ++c.output_only;
      switch (site.args[idx].kind) {
        case ArgClass::Kind::Const:
        case ArgClass::Kind::String:
          ++c.auth;
          break;
        case ArgClass::Kind::Multi:
          ++c.multi_value;
          break;
        case ArgClass::Kind::FdArg:
          ++c.fds;
          break;
        case ArgClass::Kind::Unknown:
          break;
      }
    }
  }
  c.calls = distinct.size();
  return c;
}

std::vector<std::string> distinct_syscalls(const SiteScan& scan) {
  std::set<std::string> names;
  for (const auto& site : scan.sites) names.insert(os::signature(site.id).name);
  return std::vector<std::string>(names.begin(), names.end());
}

}  // namespace asc::analysis
