// System call site identification and argument classification (§4.1).
//
// After stub inlining, every SYSCALL instruction in a non-opaque function is
// a distinct call site. For each site the analysis determines:
//   * the system call number (the reaching definition of r0 must be a single
//     constant -- this is the "int 0x80 with the number in EAX" pattern),
//   * the classification of each argument per the paper:
//     String / Immediate / Unknown, plus the extension statistics:
//     multi-value arguments and fd arguments traced to fd-returning calls.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/disassembler.h"
#include "binary/image.h"
#include "os/syscalls.h"

namespace asc::util {
class Executor;
}

namespace asc::analysis {

struct ArgClass {
  enum class Kind : std::uint8_t {
    Unknown,  // analysis could not predict a value
    Const,    // single known constant (paper: Immediate)
    String,   // address of a known .rodata string (paper: String)
    Multi,    // several known constants reach (Table 3 `mv`)
    FdArg,    // traced to the result(s) of fd-returning syscalls (Table 3 `fds`)
  };
  Kind kind = Kind::Unknown;
  std::uint32_t value = 0;               // Const / String (the address)
  std::string str;                       // String content
  std::vector<std::uint32_t> values;     // Multi
  std::vector<std::uint32_t> fd_origin_blocks;  // FdArg: local block ids of sources
};

struct SyscallSite {
  std::size_t func = 0;
  std::size_t instr = 0;
  std::uint32_t block = 0;  // local block id
  std::uint16_t sysno = 0;
  os::SysId id = os::SysId::Exit;
  int arity = 0;
  std::array<ArgClass, os::kMaxSyscallArgs> args{};
};

struct SiteScan {
  std::vector<SyscallSite> sites;
  /// Functions that contain syscalls the analysis had to skip (opaque
  /// functions, non-constant syscall numbers). The administrator is warned:
  /// calls from these locations will NOT be authenticated.
  std::vector<std::string> warnings;
};

/// The per-function reaching-definitions + value-tracing work (the
/// installer's hottest analysis) fans out over `exec`; per-function partial
/// results are concatenated in function order, so sites and warnings come
/// back in exactly the serial order at any job count.
SiteScan find_syscall_sites(const ProgramIr& ir, const binary::Image& image, const Cfg& cfg,
                            os::Personality personality, util::Executor* exec = nullptr);

}  // namespace asc::analysis
