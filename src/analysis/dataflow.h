// Reaching definitions and abstract value tracing.
//
// The installer classifies each system call argument by running a standard
// reaching-definitions analysis (intraprocedural, over the post-inlining IR)
// and then tracing the reaching definitions of the argument register to an
// abstract value:
//
//   Const(v)        movi constant, or lea of a non-string / writable object
//   StrAddr(a)      lea of a NUL-terminated constant in .rodata
//   FdFrom(sites)   copy chain rooted at the r0 result of fd-returning
//                   syscalls (Table 3's `fds` column, §5.3)
//   Multi(values)   several constant definitions reach (Table 3's `mv`)
//   Unknown         anything else (params, loads, arithmetic, call results)
//
// Definition sites are function-local instruction indexes, plus a synthetic
// "entry" definition representing the ABI argument registers at function
// entry (always Unknown).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/disassembler.h"

namespace asc::analysis {

/// A definition: instruction index within the function, or kEntryDef for the
/// synthetic entry definition.
inline constexpr std::size_t kEntryDef = SIZE_MAX;

/// Reaching-definition sets for one function.
class ReachingDefs {
 public:
  /// Compute for function `fi`. Uses the CFG's blocks for that function.
  ReachingDefs(const ProgramIr& ir, const Cfg& cfg, std::size_t fi);

  /// Definitions of register `r` reaching the *start* of instruction `instr`.
  std::set<std::size_t> defs_at(std::size_t instr, isa::Reg r) const;

  /// Registers an instruction defines (ABI-aware: Call clobbers r0..r5 and
  /// r11..r14; Syscall defines r0).
  static std::vector<isa::Reg> defined_regs(const IrInstr& instr);

 private:
  const IrFunction& f_;
  const Cfg& cfg_;
  std::size_t fi_;
  // Per block, per register: reaching defs at block entry.
  std::map<std::uint32_t, std::array<std::set<std::size_t>, isa::kNumRegs>> in_;
};

/// Abstract value of a traced argument.
struct AbstractValue {
  enum class Kind : std::uint8_t { Unknown, Const, StrAddr, FdFrom, Multi };
  Kind kind = Kind::Unknown;
  std::uint32_t value = 0;                  // Const or StrAddr (the address)
  std::vector<std::uint32_t> values;        // Multi: the possible constants
  std::vector<std::size_t> fd_sites;        // FdFrom: syscall instr indexes
};

/// Trace the value of register `r` at instruction `instr` of function `fi`.
/// `image` supplies section/string information for Lea targets.
AbstractValue trace_value(const ProgramIr& ir, const binary::Image& image, const Cfg& cfg,
                          const ReachingDefs& rd, std::size_t fi, std::size_t instr, isa::Reg r,
                          int depth = 0);

}  // namespace asc::analysis
