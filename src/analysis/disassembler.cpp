#include "analysis/disassembler.h"

#include <algorithm>
#include <map>

#include "isa/decode.h"
#include "isa/encode.h"
#include "util/error.h"
#include "util/executor.h"
#include "util/hex.h"

namespace asc::analysis {

namespace {

bool in_text(std::uint32_t addr) {
  const std::uint32_t base = binary::section_base(binary::SectionKind::Text);
  return addr >= base && addr < base + binary::section_limit(binary::SectionKind::Text);
}

}  // namespace

const IrFunction* ProgramIr::find(const std::string& fn_name) const {
  for (const auto& f : funcs) {
    if (f.name == fn_name) return &f;
  }
  return nullptr;
}

ProgramIr disassemble(const binary::Image& image, util::Executor* exec) {
  util::Executor& ex = util::resolve_executor(exec);
  if (!image.relocatable) {
    throw Error("disassemble: installer requires a relocatable image (like PLTO)");
  }
  const binary::Section* text = image.find_section(binary::SectionKind::Text);
  if (text == nullptr) throw Error("disassemble: image has no .text");

  ProgramIr ir;
  ir.name = image.name;

  // Collect function symbols sorted by address.
  std::vector<const binary::Symbol*> fsyms;
  for (const auto& s : image.symbols) {
    if (s.kind == binary::SymbolKind::Function) fsyms.push_back(&s);
  }
  std::sort(fsyms.begin(), fsyms.end(),
            [](const binary::Symbol* a, const binary::Symbol* b) { return a->addr < b->addr; });

  std::map<std::uint32_t, std::size_t> func_of_entry;  // entry addr -> func index
  for (std::size_t i = 0; i < fsyms.size(); ++i) func_of_entry[fsyms[i]->addr] = i;

  // Relocation slot set for O(log n) membership tests.
  std::set<std::uint32_t> reloc_slots;
  for (const auto& r : image.relocs) reloc_slots.insert(r.slot);

  // ---- pass 1: decode every function linearly (parallel per function) ----
  // Per function: list of (addr, Instr); remember addr->index for pass 2.
  // Each task touches only its own ir.funcs / index_of_addr slot.
  std::vector<std::map<std::uint32_t, std::size_t>> index_of_addr(fsyms.size());
  ir.funcs.resize(fsyms.size());
  ex.parallel_for(fsyms.size(), [&](std::size_t fi) {
    const binary::Symbol& sym = *fsyms[fi];
    IrFunction& f = ir.funcs[fi];
    f.name = sym.name;
    f.orig_addr = sym.addr;
    std::uint32_t off = sym.addr - text->vaddr();
    const std::uint32_t end = off + sym.size;
    while (off < end) {
      const auto dec = isa::try_decode(text->bytes, off);
      if (!dec.has_value()) {
        f.opaque = true;
        f.opaque_reason = "undecodable bytes at 0x" +
                          util::to_hex(std::vector<std::uint8_t>{
                              static_cast<std::uint8_t>((text->vaddr() + off) >> 24),
                              static_cast<std::uint8_t>((text->vaddr() + off) >> 16),
                              static_cast<std::uint8_t>((text->vaddr() + off) >> 8),
                              static_cast<std::uint8_t>(text->vaddr() + off)});
        break;
      }
      IrInstr instr;
      instr.ins = dec->ins;
      instr.orig_addr = text->vaddr() + off;
      index_of_addr[fi][instr.orig_addr] = f.instrs.size();
      f.instrs.push_back(instr);
      off += static_cast<std::uint32_t>(dec->size);
    }
    if (!f.opaque && off != end) {
      f.opaque = true;
      f.opaque_reason = "instruction overruns function end";
    }
  });

  // ---- pass 2: symbolize immediates (parallel per function) ----
  // Reads the shared func_of_entry / reloc_slots maps and this function's
  // own index_of_addr slot; writes only this function's instructions.
  ex.parallel_for(ir.funcs.size(), [&](std::size_t fi) {
    IrFunction& f = ir.funcs[fi];
    if (f.opaque) return;
    for (std::size_t ii = 0; ii < f.instrs.size(); ++ii) {
      IrInstr& instr = f.instrs[ii];
      const isa::Fmt fmt = isa::format_of(instr.ins.op);
      const bool has_imm = fmt == isa::Fmt::RI || fmt == isa::Fmt::Mem || fmt == isa::Fmt::Addr;
      if (!has_imm) continue;
      const std::uint32_t slot =
          instr.orig_addr + static_cast<std::uint32_t>(isa::imm_offset(instr.ins.op));
      const bool relocated = reloc_slots.count(slot) != 0;
      if (!relocated) continue;  // plain immediate / memory offset

      const std::uint32_t target = instr.ins.imm;
      if (in_text(target)) {
        // Prefer a local interpretation: a branch to this function's own
        // first instruction is a loop head, not a (tail) call. Only CALLs
        // to our own entry are recursion and stay FuncEntry.
        auto iit = index_of_addr[fi].find(target);
        const bool branch_like = instr.ins.op != isa::Op::Call && instr.ins.op != isa::Op::Lea;
        if (iit != index_of_addr[fi].end() && branch_like) {
          instr.ref = RefKind::CodeLocal;
          instr.ref_index = iit->second;
          continue;
        }
        auto fit = func_of_entry.find(target);
        if (fit != func_of_entry.end()) {
          instr.ref = RefKind::FuncEntry;
          instr.ref_index = fit->second;
          continue;
        }
        if (iit != index_of_addr[fi].end()) {
          instr.ref = RefKind::CodeLocal;
          instr.ref_index = iit->second;
          continue;
        }
        f.opaque = true;
        f.opaque_reason = "code reference into another function's body";
        break;
      }
      instr.ref = RefKind::DataAddr;
      instr.ref_addr = target;
    }
    if (f.opaque) return;
    // Computed jumps defeat the conservative analysis: without value
    // tracking for the jump register the CFG is unknown.
    for (const auto& instr : f.instrs) {
      if (instr.ins.op == isa::Op::Jmpr) {
        f.opaque = true;
        f.opaque_reason = "computed jump (jmpr) cannot be resolved";
        break;
      }
    }
  });

  // ---- pass 3: address-taken functions & data-resident code pointers ----
  for (const auto& f : ir.funcs) (void)f;
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    IrFunction& f = ir.funcs[fi];
    if (f.opaque) continue;
    for (const auto& instr : f.instrs) {
      if (instr.ins.op == isa::Op::Lea && instr.ref == RefKind::FuncEntry) {
        ir.funcs[instr.ref_index].address_taken = true;
      }
    }
  }
  for (const auto& r : image.relocs) {
    // Relocation slots living in data sections may hold function pointers.
    const auto sec = image.section_containing(r.slot);
    if (!sec.has_value() || *sec == binary::SectionKind::Text) continue;
    const auto word = image.bytes_at(r.slot, 4);
    if (!word.has_value()) continue;
    const std::uint32_t target = util::get_u32(*word, 0);
    auto fit = func_of_entry.find(target);
    if (fit != func_of_entry.end()) {
      ir.funcs[fit->second].address_taken = true;
      ir.data_code_ptrs.emplace_back(r.slot, fit->second);
    }
  }

  // ---- entry function ----
  auto eit = func_of_entry.find(image.entry);
  if (eit == func_of_entry.end()) throw Error("disassemble: entry is not a function symbol");
  ir.entry_func = eit->second;
  return ir;
}

}  // namespace asc::analysis
