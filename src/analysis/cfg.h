// Basic blocks and intraprocedural control-flow graphs over the IR.
//
// Basic block identity is central to the ASC design: the paper approximates
// a system call's location by the basic block containing it, and block ids
// become the vocabulary of control-flow policies (predecessor sets) and the
// lastBlock policy state. Local block ids are assigned program-wide,
// starting at 1 (id 0 is the "program start" pseudo-block, see
// policy::kStartBlockLocal).
//
// Call/Callr terminate blocks (so the interprocedural syscall graph can
// splice callee flow between a call block and its fallthrough block);
// Syscall does not.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/disassembler.h"

namespace asc::util {
class Executor;
}

namespace asc::analysis {

struct BasicBlock {
  std::uint32_t id = 0;      // program-wide local block id (>= 1)
  std::size_t func = 0;      // function index
  std::size_t first = 0;     // first instruction index (inclusive)
  std::size_t last = 0;      // last instruction index (inclusive)
  std::vector<std::uint32_t> succs;  // intraprocedural successor block ids
  bool ends_in_ret = false;
  bool ends_in_call = false;         // Call or Callr
  std::size_t call_target = SIZE_MAX;  // FuncEntry index for direct Call
  std::vector<std::size_t> syscall_instrs;  // instruction indexes of SYSCALLs
};

struct FunctionCfg {
  std::size_t func = 0;
  std::uint32_t entry_block = 0;              // block id, 0 if function empty/opaque
  std::vector<std::uint32_t> block_ids;       // blocks of this function in layout order
};

struct Cfg {
  std::vector<BasicBlock> blocks;          // indexed by id-1
  std::vector<FunctionCfg> functions;      // indexed by function index
  std::map<std::pair<std::size_t, std::size_t>, std::uint32_t> block_of_instr;

  const BasicBlock& block(std::uint32_t id) const { return blocks.at(id - 1); }
  BasicBlock& block(std::uint32_t id) { return blocks.at(id - 1); }
  std::uint32_t block_containing(std::size_t func, std::size_t instr) const;
};

/// Build the CFG of every non-opaque function. Per-function block discovery
/// fans out over `exec`; program-wide block ids are then assigned in a
/// serial merge pass, so numbering is identical at any job count.
Cfg build_cfg(const ProgramIr& ir, util::Executor* exec = nullptr);

}  // namespace asc::analysis
