#include "analysis/syscallsites.h"

#include <set>

#include "isa/decode.h"
#include "util/error.h"
#include "util/executor.h"

namespace asc::analysis {

namespace {

/// Scan one function: the expensive per-function unit (reaching defs +
/// per-argument value tracing) the executor fans out.
SiteScan scan_function(const ProgramIr& ir, const binary::Image& image, const Cfg& cfg,
                       os::Personality personality, std::size_t fi) {
  SiteScan scan;
  const IrFunction& f = ir.funcs[fi];
  if (f.inlined_away) return scan;
  if (f.opaque) {
    // Opaque functions might hide syscalls; PLTO reports this so the
    // administrator knows the policy may be incomplete (the OpenBSD
    // `close` case of Table 2).
    scan.warnings.push_back("function " + f.name + " not analyzable: " + f.opaque_reason);
    return scan;
  }
  bool any_syscall = false;
  for (const auto& instr : f.instrs) {
    if (instr.ins.op == isa::Op::Syscall) any_syscall = true;
  }
  if (!any_syscall) return scan;

  const ReachingDefs rd(ir, cfg, fi);
  for (std::size_t ii = 0; ii < f.instrs.size(); ++ii) {
    if (f.instrs[ii].ins.op != isa::Op::Syscall) continue;

    SyscallSite site;
    site.func = fi;
    site.instr = ii;
    site.block = cfg.block_containing(fi, ii);

    // System call number: must be a single constant.
    const AbstractValue r0 = trace_value(ir, image, cfg, rd, fi, ii, 0);
    if (r0.kind != AbstractValue::Kind::Const) {
      scan.warnings.push_back("function " + f.name +
                              ": syscall with non-constant number; cannot authenticate");
      continue;
    }
    site.sysno = static_cast<std::uint16_t>(r0.value);
    const auto id = os::syscall_from_number(personality, site.sysno);
    if (!id.has_value()) {
      scan.warnings.push_back("function " + f.name + ": unknown syscall number " +
                              std::to_string(site.sysno));
      continue;
    }
    site.id = *id;
    site.arity = os::signature(site.id).arity;

    for (int a = 0; a < site.arity; ++a) {
      const isa::Reg reg = static_cast<isa::Reg>(1 + a);
      const AbstractValue v = trace_value(ir, image, cfg, rd, fi, ii, reg);
      ArgClass& cls = site.args[static_cast<std::size_t>(a)];
      switch (v.kind) {
        case AbstractValue::Kind::Const:
          cls.kind = ArgClass::Kind::Const;
          cls.value = v.value;
          break;
        case AbstractValue::Kind::StrAddr: {
          cls.kind = ArgClass::Kind::String;
          cls.value = v.value;
          cls.str = image.cstring_at(v.value).value_or("");
          break;
        }
        case AbstractValue::Kind::Multi:
          cls.kind = ArgClass::Kind::Multi;
          cls.values = v.values;
          break;
        case AbstractValue::Kind::FdFrom: {
          // Only count sources that are fd-returning syscalls.
          std::set<std::uint32_t> blocks;
          for (std::size_t src : v.fd_sites) {
            const AbstractValue srcno = trace_value(ir, image, cfg, rd, fi, src, 0);
            if (srcno.kind != AbstractValue::Kind::Const) continue;
            const auto src_id =
                os::syscall_from_number(personality, static_cast<std::uint16_t>(srcno.value));
            if (src_id.has_value() && os::signature(*src_id).returns_fd) {
              blocks.insert(cfg.block_containing(fi, src));
            }
          }
          if (!blocks.empty()) {
            cls.kind = ArgClass::Kind::FdArg;
            cls.fd_origin_blocks.assign(blocks.begin(), blocks.end());
          }
          break;
        }
        case AbstractValue::Kind::Unknown:
          break;
      }
    }
    scan.sites.push_back(std::move(site));
  }
  return scan;
}

}  // namespace

SiteScan find_syscall_sites(const ProgramIr& ir, const binary::Image& image, const Cfg& cfg,
                            os::Personality personality, util::Executor* exec) {
  // Fan out per function, then concatenate partial results in function
  // order: sites and warnings interleave exactly as the serial scan's.
  std::vector<SiteScan> partial(ir.funcs.size());
  util::resolve_executor(exec).parallel_for(ir.funcs.size(), [&](std::size_t fi) {
    partial[fi] = scan_function(ir, image, cfg, personality, fi);
  });

  SiteScan scan;
  for (SiteScan& p : partial) {
    for (auto& s : p.sites) scan.sites.push_back(std::move(s));
    for (auto& w : p.warnings) scan.warnings.push_back(std::move(w));
  }
  return scan;
}

}  // namespace asc::analysis
