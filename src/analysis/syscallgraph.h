// The system call graph (§3.3): which system calls can immediately precede
// a given system call.
//
// Computed from the interprocedural "supergraph" of basic blocks: intra-
// procedural CFG edges, call edges (call block -> callee entry), and return
// edges (callee ret blocks -> the call block's fallthrough block,
// context-insensitively -- the same conservative approximation a call-graph
// projection gives). A site's predecessor set is found by reverse
// reachability that stops at the first syscall-bearing block on each path;
// reaching program entry contributes the start sentinel
// (policy::kStartBlockLocal).
//
// The result is conservative: every runtime-feasible predecessor is
// included (no false alarms), at the cost of some infeasible ones.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/syscallsites.h"

namespace asc::util {
class Executor;
}

namespace asc::analysis {

struct SyscallGraph {
  /// For sites[i]: sorted local predecessor block ids, possibly including
  /// policy::kStartBlockLocal (0).
  std::vector<std::vector<std::uint32_t>> predecessors;
};

/// The reverse supergraph is built once (serial); the per-site reverse
/// reachability walks are independent and fan out over `exec`, each writing
/// its own predecessors slot.
SyscallGraph build_syscall_graph(const ProgramIr& ir, const Cfg& cfg, const CallGraph& cg,
                                 const std::vector<SyscallSite>& sites,
                                 util::Executor* exec = nullptr);

}  // namespace asc::analysis
