#include "analysis/cfg.h"

#include <set>

#include "util/error.h"
#include "util/executor.h"

namespace asc::analysis {

std::uint32_t Cfg::block_containing(std::size_t func, std::size_t instr) const {
  // Blocks are contiguous instruction ranges; find via the leader map.
  auto it = block_of_instr.find({func, instr});
  if (it != block_of_instr.end()) return it->second;
  throw Error("Cfg::block_containing: no block for instruction");
}

namespace {

/// Blocks of one function with successors as LOCAL ordinals (position within
/// the function's leader-sorted block list). Global ids are assigned by the
/// serial merge pass, which keeps program-wide numbering identical to the
/// fully serial build at any job count.
struct LocalBlocks {
  std::vector<BasicBlock> blocks;  // id unset; succs hold local ordinals
};

LocalBlocks build_function_blocks(const IrFunction& f, std::size_t fi) {
  LocalBlocks out;
  if (f.opaque || f.inlined_away || f.instrs.empty()) return out;

  // ---- find leaders ----
  std::set<std::size_t> leaders;
  leaders.insert(0);
  for (std::size_t i = 0; i < f.instrs.size(); ++i) {
    const IrInstr& instr = f.instrs[i];
    const isa::Op op = instr.ins.op;
    const bool terminator =
        isa::is_block_terminator(op) || op == isa::Op::Call || op == isa::Op::Callr;
    if (terminator && i + 1 < f.instrs.size()) leaders.insert(i + 1);
    if (instr.ref == RefKind::CodeLocal &&
        (isa::is_conditional_branch(op) || op == isa::Op::Jmp)) {
      leaders.insert(instr.ref_index);
    }
  }

  // ---- create blocks ----
  std::vector<std::size_t> sorted(leaders.begin(), leaders.end());
  std::map<std::size_t, std::uint32_t> ordinal_of_leader;
  for (std::size_t li = 0; li < sorted.size(); ++li) {
    BasicBlock b;
    b.func = fi;
    b.first = sorted[li];
    b.last = (li + 1 < sorted.size() ? sorted[li + 1] : f.instrs.size()) - 1;
    for (std::size_t i = b.first; i <= b.last; ++i) {
      if (f.instrs[i].ins.op == isa::Op::Syscall) b.syscall_instrs.push_back(i);
    }
    ordinal_of_leader[b.first] = static_cast<std::uint32_t>(li);
    out.blocks.push_back(std::move(b));
  }

  // ---- successors (as local ordinals) ----
  for (BasicBlock& b : out.blocks) {
    const IrInstr& lastins = f.instrs[b.last];
    const isa::Op op = lastins.ins.op;
    auto fallthrough = [&]() {
      if (b.last + 1 < f.instrs.size()) b.succs.push_back(ordinal_of_leader.at(b.last + 1));
    };
    switch (op) {
      case isa::Op::Ret:
        b.ends_in_ret = true;
        break;
      case isa::Op::Halt:
        break;
      case isa::Op::Jmp:
        if (lastins.ref == RefKind::CodeLocal) {
          b.succs.push_back(ordinal_of_leader.at(lastins.ref_index));
        } else if (lastins.ref == RefKind::FuncEntry) {
          // Tail call: treated as call-without-return.
          b.ends_in_call = true;
          b.call_target = lastins.ref_index;
          b.ends_in_ret = true;  // control leaves this function
        }
        break;
      case isa::Op::Jz:
      case isa::Op::Jnz:
      case isa::Op::Jlt:
      case isa::Op::Jle:
      case isa::Op::Jgt:
      case isa::Op::Jge:
        if (lastins.ref == RefKind::CodeLocal) {
          b.succs.push_back(ordinal_of_leader.at(lastins.ref_index));
        }
        fallthrough();
        break;
      case isa::Op::Call:
        b.ends_in_call = true;
        if (lastins.ref == RefKind::FuncEntry) b.call_target = lastins.ref_index;
        fallthrough();
        break;
      case isa::Op::Callr:
        b.ends_in_call = true;  // indirect: targets = address-taken set
        fallthrough();
        break;
      default:
        fallthrough();
        break;
    }
  }
  return out;
}

}  // namespace

Cfg build_cfg(const ProgramIr& ir, util::Executor* exec) {
  Cfg cfg;
  cfg.functions.resize(ir.funcs.size());

  // ---- phase A: per-function block discovery (parallel) ----
  std::vector<LocalBlocks> local(ir.funcs.size());
  util::resolve_executor(exec).parallel_for(ir.funcs.size(), [&](std::size_t fi) {
    local[fi] = build_function_blocks(ir.funcs[fi], fi);
  });

  // ---- phase B: assign program-wide ids in function order (serial) ----
  std::uint32_t next_id = 1;
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    FunctionCfg& fc = cfg.functions[fi];
    fc.func = fi;
    if (local[fi].blocks.empty()) continue;
    const std::uint32_t base = next_id;
    for (BasicBlock& b : local[fi].blocks) {
      b.id = next_id++;
      for (std::uint32_t& s : b.succs) s = base + s;  // ordinal -> global id
      for (std::size_t i = b.first; i <= b.last; ++i) cfg.block_of_instr[{fi, i}] = b.id;
      fc.block_ids.push_back(b.id);
      cfg.blocks.push_back(std::move(b));
    }
    fc.entry_block = base;  // the leader-sorted list always starts at instr 0
  }
  return cfg;
}

}  // namespace asc::analysis
