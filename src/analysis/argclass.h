// Argument coverage statistics -- the raw material of Table 3.
//
// For a scanned program: number of call sites, number of distinct system
// calls, total arguments, output-only arguments, arguments protectable by
// the basic approach (constants + strings), multi-value arguments, and fd
// arguments traceable to fd-returning calls.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analysis/syscallsites.h"

namespace asc::analysis {

struct ArgCoverage {
  std::size_t sites = 0;     // separate system call locations
  std::size_t calls = 0;     // distinct system calls
  std::size_t args = 0;      // total arguments across all sites
  std::size_t output_only = 0;  // o/p column
  std::size_t auth = 0;      // protectable by the basic approach
  std::size_t multi_value = 0;  // mv column
  std::size_t fds = 0;       // fds column
};

ArgCoverage compute_arg_coverage(const SiteScan& scan);

/// Distinct system calls permitted by the scan (the "policy size" of
/// Table 1), as sorted syscall names.
std::vector<std::string> distinct_syscalls(const SiteScan& scan);

}  // namespace asc::analysis
