#include "analysis/callgraph.h"

#include <algorithm>
#include <set>

namespace asc::analysis {

CallGraph build_callgraph(const ProgramIr& ir, const Cfg& cfg) {
  CallGraph g;
  g.callees.resize(ir.funcs.size());
  g.callers.resize(ir.funcs.size());

  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    if (ir.funcs[fi].address_taken && !ir.funcs[fi].inlined_away) {
      g.address_taken.push_back(fi);
    }
  }

  std::vector<std::set<std::size_t>> callee_sets(ir.funcs.size());
  for (const auto& b : cfg.blocks) {
    if (!b.ends_in_call) continue;
    if (b.call_target != SIZE_MAX) {
      callee_sets[b.func].insert(b.call_target);
    } else {
      g.has_indirect_calls = true;
      for (std::size_t t : g.address_taken) callee_sets[b.func].insert(t);
    }
  }
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    g.callees[fi].assign(callee_sets[fi].begin(), callee_sets[fi].end());
    for (std::size_t callee : g.callees[fi]) g.callers[callee].push_back(fi);
  }
  for (auto& v : g.callers) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return g;
}

}  // namespace asc::analysis
