// System-call stub inlining (§4.1).
//
// libc wraps each system call in a stub (movi r0, NR; syscall; ret). If the
// stub itself carried the policy, every caller would share one call site and
// one (merged, weak) policy. Like PLTO's installer, we inline stubs into
// their callers so each caller gets its own call site, its own argument
// analysis, and its own control-flow policy.
//
// A stub is a non-opaque, straight-line function (no branches, labels or
// calls) of at most kMaxStubLen instructions that contains a SYSCALL and ends
// in RET. Stubs that become dead after inlining (no remaining direct callers,
// not address-taken, not the entry function) are removed, mirroring PLTO's
// dead-code elimination.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/disassembler.h"

namespace asc::analysis {

inline constexpr std::size_t kMaxStubLen = 10;

struct InlineReport {
  std::size_t stubs_found = 0;
  std::size_t call_sites_inlined = 0;
  std::size_t stubs_removed = 0;
  std::vector<std::string> stub_names;
};

/// True if function `fi` of `ir` is an inlinable syscall stub.
bool is_syscall_stub(const ProgramIr& ir, std::size_t fi);

/// Inline all stub calls in place. Call sequences referencing removed stubs
/// indirectly (address-taken) keep the stub.
InlineReport inline_syscall_stubs(ProgramIr& ir);

/// Second round: inline small WRAPPER functions that directly contain a
/// SYSCALL after round one (e.g. an open_or_die() helper), so each caller
/// again gets its own call site with its own argument constants. Wrappers
/// may contain branches and calls; internal returns become jumps past the
/// spliced body. Bounded by kMaxWrapperLen instructions.
InlineReport inline_syscall_wrappers(ProgramIr& ir);

inline constexpr std::size_t kMaxWrapperLen = 24;

}  // namespace asc::analysis
