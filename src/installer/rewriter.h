// The binary rewriter: transform a relocatable image + generated policies
// into a non-relocatable AUTHENTICATED image (§3.3).
//
// Transformations:
//   * string constants used as constrained syscall arguments become
//     authenticated strings in the new .asdata section; the defining LEA
//     instructions are retargeted at the AS body,
//   * every syscall site gains the five extra-argument setup instructions
//     (polDes, blockID, predSet, lbPtr, callMAC -- plus the hint pointer for
//     pattern policies),
//   * the per-program policy state {lastBlock, lbMAC} is allocated and
//     initialized (lastBlock = composed start block, lbMAC = MAC(start, 0)),
//   * predecessor sets and call MACs are computed over the FINAL layout
//     (call sites are final addresses) and stored in .asdata,
//   * data-resident code pointers are retargeted at moved function entries.
#pragma once

#include <cstdint>

#include "binary/image.h"
#include "crypto/cmac.h"
#include "installer/policygen.h"
#include "installer/rekeyer.h"
#include "util/executor.h"

namespace asc::installer {

struct RewriteOptions {
  std::uint16_t program_id = 1;
  bool unique_block_ids = true;  // §5.5 Frankenstein defence
  /// Pool for the parallel phases (per-function instruction rebuild, AS and
  /// call-MAC signing); nullptr = the process-global pool. The .asdata
  /// layout stays serial, so the output image is byte-identical at any job
  /// count.
  util::Executor* executor = nullptr;
};

struct RewriteResult {
  binary::Image image;
  /// Final policies: call_site filled, block ids composed.
  std::vector<policy::SyscallPolicy> policies;
  /// The key-independent record of everything the sign phase MACed, enabling
  /// Rekeyer::rekey() to re-sign this image without re-running analysis.
  SignManifest manifest;
};

/// `gp` is consumed (its IR is mutated by instruction insertion).
RewriteResult rewrite_with_policies(const binary::Image& input, GeneratedPolicies gp,
                                    const crypto::MacKey& key, const RewriteOptions& options);

/// Name of the guest-side hint buffer symbol required by pattern policies.
inline constexpr const char* kHintBufferSymbol = "asc_hint_buf";

}  // namespace asc::installer
