#include "installer/rekeyer.h"

#include <atomic>
#include <unordered_map>

#include "policy/authstring.h"
#include "policy/policy.h"
#include "util/error.h"
#include "util/hex.h"

namespace asc::installer {

namespace {

// Manifest file format: magic, version, fixed header, AS table, call table.
constexpr std::uint32_t kManifestMagic = 0x464d5341;  // "ASMF"
constexpr std::uint32_t kManifestVersion = 1;

// Records per compute_batch chunk. Large enough to keep the 4-lane AES-NI
// core saturated, small enough that parallel_for has work to spread.
constexpr std::size_t kBatchChunk = 64;

std::size_t chunk_count(std::size_t n) { return (n + kBatchChunk - 1) / kBatchChunk; }

}  // namespace

std::uint64_t SignManifest::mac_surface_bytes() const {
  std::uint64_t total = policy::encode_policy_state(0, 0).size();
  for (const auto& as : as_records) total += as.len;
  for (const auto& c : calls) total += c.message.size();
  return total;
}

std::vector<std::uint8_t> SignManifest::serialize() const {
  std::vector<std::uint8_t> out;
  util::put_u32(out, kManifestMagic);
  util::put_u32(out, kManifestVersion);
  util::put_u16(out, program_id);
  out.push_back(unique_block_ids ? 1 : 0);
  util::put_u32(out, state_addr);
  util::put_u32(out, start_block);
  util::put_u32(out, static_cast<std::uint32_t>(as_records.size()));
  for (const auto& as : as_records) {
    util::put_u32(out, as.body);
    util::put_u32(out, as.len);
  }
  util::put_u32(out, static_cast<std::uint32_t>(calls.size()));
  for (const auto& c : calls) {
    util::put_u32(out, c.mac_slot);
    util::put_u32(out, static_cast<std::uint32_t>(c.message.size()));
    out.insert(out.end(), c.message.begin(), c.message.end());
    util::put_u32(out, static_cast<std::uint32_t>(c.patches.size()));
    for (const auto& p : c.patches) {
      util::put_u32(out, p.msg_off);
      util::put_u32(out, p.as_body);
    }
  }
  return out;
}

SignManifest SignManifest::deserialize(std::span<const std::uint8_t> file) {
  std::size_t off = 0;
  auto u32 = [&](const char* what) {
    if (off + 4 > file.size()) throw Error(std::string("SignManifest: truncated at ") + what);
    const std::uint32_t v = util::get_u32(file, off);
    off += 4;
    return v;
  };
  if (u32("magic") != kManifestMagic) throw Error("SignManifest: bad magic");
  if (u32("version") != kManifestVersion) throw Error("SignManifest: unsupported version");
  SignManifest m;
  if (off + 3 > file.size()) throw Error("SignManifest: truncated header");
  m.program_id = util::get_u16(file, off);
  off += 2;
  m.unique_block_ids = file[off++] != 0;
  m.state_addr = u32("state_addr");
  m.start_block = u32("start_block");
  const std::uint32_t n_as = u32("as count");
  for (std::uint32_t i = 0; i < n_as; ++i) {
    ManifestAsRecord as;
    as.body = u32("as body");
    as.len = u32("as len");
    m.as_records.push_back(as);
  }
  const std::uint32_t n_calls = u32("call count");
  for (std::uint32_t i = 0; i < n_calls; ++i) {
    ManifestCallRecord c;
    c.mac_slot = u32("call mac slot");
    const std::uint32_t msg_len = u32("call msg len");
    if (off + msg_len > file.size()) throw Error("SignManifest: truncated call message");
    c.message.assign(file.begin() + static_cast<std::ptrdiff_t>(off),
                     file.begin() + static_cast<std::ptrdiff_t>(off + msg_len));
    off += msg_len;
    const std::uint32_t n_patches = u32("patch count");
    for (std::uint32_t j = 0; j < n_patches; ++j) {
      ManifestPatch p;
      p.msg_off = u32("patch msg off");
      p.as_body = u32("patch as body");
      if (p.msg_off + 16 > c.message.size()) throw Error("SignManifest: patch out of message");
      c.patches.push_back(p);
    }
    m.calls.push_back(c);
  }
  if (off != file.size()) throw Error("SignManifest: trailing bytes");
  return m;
}

RekeyResult Rekeyer::rekey(const binary::Image& image, const SignManifest& manifest,
                           const crypto::Key128& old_key, const crypto::Key128& new_key,
                           util::Executor* executor) {
  util::Executor& ex = util::resolve_executor(executor);
  const crypto::MacKey old_mac(old_key);
  const crypto::MacKey new_mac(new_key);

  RekeyResult out;
  out.image = image;
  out.view.state_addr = manifest.state_addr;

  binary::Section& asdata = out.image.section(binary::SectionKind::AsData);
  const std::uint32_t base = asdata.vaddr();
  std::vector<std::uint8_t>& bytes = asdata.bytes;
  // Every manifest address must resolve inside .asdata; `what` names the
  // offending record class on failure.
  auto at = [&](std::uint32_t vaddr, std::uint32_t n, const char* what) -> std::size_t {
    if (vaddr < base || vaddr - base > bytes.size() || n > bytes.size() - (vaddr - base)) {
      throw Error(std::string("Rekeyer: ") + what + " outside .asdata");
    }
    return vaddr - base;
  };
  // Pre-resolve all offsets serially (throws happen before threads start).
  struct AsOffsets {
    std::size_t body;
    std::size_t mac;
    std::uint32_t len;
  };
  std::vector<AsOffsets> as_offs;
  as_offs.reserve(manifest.as_records.size());
  for (const auto& as : manifest.as_records) {
    const std::size_t body = at(as.body, as.len, "AS body");
    const std::size_t mac = at(as.body - 16, 16, "AS MAC slot");
    if (as.body < base + policy::kAsHeaderSize ||
        util::get_u32(bytes, body - policy::kAsHeaderSize) != as.len) {
      throw Error("Rekeyer: AS length field mismatch");
    }
    as_offs.push_back({body, mac, as.len});
  }
  std::vector<std::size_t> call_offs;
  call_offs.reserve(manifest.calls.size());
  for (const auto& c : manifest.calls) call_offs.push_back(at(c.mac_slot, 16, "call MAC slot"));
  const std::size_t state_off = at(manifest.state_addr, policy::kPolicyStateSize, "state record");
  // AS body address -> index, for splicing content MACs into call messages.
  std::unordered_map<std::uint32_t, std::size_t> as_index;
  for (std::size_t i = 0; i < manifest.as_records.size(); ++i) {
    as_index.emplace(manifest.as_records[i].body, i);
  }
  for (const auto& c : manifest.calls) {
    for (const auto& p : c.patches) {
      if (!as_index.contains(p.as_body)) throw Error("Rekeyer: patch names unknown AS");
    }
  }

  // Builds one call message with its embedded AS MAC fields spliced in from
  // `mac_of` (old MACs for the verify pass, new ones for the sign pass).
  auto patched_message = [&](const ManifestCallRecord& c,
                             auto&& mac_of) -> std::vector<std::uint8_t> {
    std::vector<std::uint8_t> msg = c.message;
    for (const auto& p : c.patches) {
      const auto* m = mac_of(as_index.at(p.as_body));
      std::copy(m, m + 16, msg.begin() + p.msg_off);
    }
    return msg;
  };

  // ---- Phase V: verify the whole old surface under old_key. A mismatch
  // means the image was tampered with (or keys are wrong); refusing here
  // keeps the rekeyer from laundering a tamper into valid new-key MACs.
  std::atomic<bool> ok{true};
  ex.parallel_for(chunk_count(manifest.as_records.size()), [&](std::size_t ci) {
    const std::size_t lo = ci * kBatchChunk;
    const std::size_t hi = std::min(lo + kBatchChunk, manifest.as_records.size());
    std::vector<std::span<const std::uint8_t>> msgs;
    std::vector<crypto::Mac> expected;
    for (std::size_t i = lo; i < hi; ++i) {
      msgs.emplace_back(bytes.data() + as_offs[i].body, as_offs[i].len);
      crypto::Mac m;
      std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(as_offs[i].mac), 16, m.begin());
      expected.push_back(m);
    }
    for (bool v : old_mac.verify_batch(msgs, expected)) {
      if (!v) ok.store(false, std::memory_order_relaxed);
    }
  });
  ex.parallel_for(chunk_count(manifest.calls.size()), [&](std::size_t ci) {
    const std::size_t lo = ci * kBatchChunk;
    const std::size_t hi = std::min(lo + kBatchChunk, manifest.calls.size());
    std::vector<std::vector<std::uint8_t>> storage;
    std::vector<std::span<const std::uint8_t>> msgs;
    std::vector<crypto::Mac> expected;
    for (std::size_t i = lo; i < hi; ++i) {
      storage.push_back(patched_message(
          manifest.calls[i], [&](std::size_t ai) { return bytes.data() + as_offs[ai].mac; }));
      crypto::Mac m;
      std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(call_offs[i]), 16, m.begin());
      expected.push_back(m);
    }
    for (const auto& s : storage) msgs.emplace_back(s.data(), s.size());
    for (bool v : old_mac.verify_batch(msgs, expected)) {
      if (!v) ok.store(false, std::memory_order_relaxed);
    }
  });
  // Policy-state seed: a rekeyable image is at rest, so its record must
  // still be the install-time {start_block, counter 0} seed.
  {
    const std::uint32_t last = util::get_u32(bytes, state_off);
    crypto::Mac m;
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(state_off + 4), 16, m.begin());
    if (last != manifest.start_block ||
        !old_mac.verify(policy::encode_policy_state(last, 0), m)) {
      ok.store(false, std::memory_order_relaxed);
    }
  }
  if (!ok.load()) throw Error("Rekeyer: image does not verify under the old key");

  // ---- Phase S: recompute the surface under new_key. AS content MACs
  // first (content is key-independent), then call MACs over messages with
  // the NEW embedded MACs spliced in, then the state seed.
  std::vector<crypto::Mac> new_as(manifest.as_records.size());
  ex.parallel_for(chunk_count(manifest.as_records.size()), [&](std::size_t ci) {
    const std::size_t lo = ci * kBatchChunk;
    const std::size_t hi = std::min(lo + kBatchChunk, manifest.as_records.size());
    std::vector<std::span<const std::uint8_t>> msgs;
    for (std::size_t i = lo; i < hi; ++i) {
      msgs.emplace_back(bytes.data() + as_offs[i].body, as_offs[i].len);
    }
    const std::vector<crypto::Mac> macs = new_mac.mac_batch(msgs);
    for (std::size_t i = lo; i < hi; ++i) new_as[i] = macs[i - lo];
  });
  for (std::size_t i = 0; i < manifest.as_records.size(); ++i) {
    std::copy(new_as[i].begin(), new_as[i].end(),
              bytes.begin() + static_cast<std::ptrdiff_t>(as_offs[i].mac));
  }
  std::vector<crypto::Mac> new_calls(manifest.calls.size());
  ex.parallel_for(chunk_count(manifest.calls.size()), [&](std::size_t ci) {
    const std::size_t lo = ci * kBatchChunk;
    const std::size_t hi = std::min(lo + kBatchChunk, manifest.calls.size());
    std::vector<std::vector<std::uint8_t>> storage;
    std::vector<std::span<const std::uint8_t>> msgs;
    for (std::size_t i = lo; i < hi; ++i) {
      storage.push_back(patched_message(manifest.calls[i],
                                        [&](std::size_t ai) { return new_as[ai].data(); }));
    }
    for (const auto& s : storage) msgs.emplace_back(s.data(), s.size());
    const std::vector<crypto::Mac> macs = new_mac.mac_batch(msgs);
    for (std::size_t i = lo; i < hi; ++i) new_calls[i] = macs[i - lo];
  });
  for (std::size_t i = 0; i < manifest.calls.size(); ++i) {
    std::copy(new_calls[i].begin(), new_calls[i].end(),
              bytes.begin() + static_cast<std::ptrdiff_t>(call_offs[i]));
  }
  const crypto::Mac state_mac =
      new_mac.mac(policy::encode_policy_state(manifest.start_block, 0));
  std::copy(state_mac.begin(), state_mac.end(),
            bytes.begin() + static_cast<std::ptrdiff_t>(state_off + 4));

  // The live-swap view covers the AS and call MAC slots but NOT the state
  // MAC: a running process's {lastBlock, counter} has moved past the seed,
  // so the kernel re-MACs the live state itself (os/rekey.h).
  out.view.patches.reserve(manifest.as_records.size() + manifest.calls.size());
  for (std::size_t i = 0; i < manifest.as_records.size(); ++i) {
    os::RekeyPatch p;
    p.addr = manifest.as_records[i].body - 16;
    std::copy(new_as[i].begin(), new_as[i].end(), p.bytes.begin());
    out.view.patches.push_back(p);
  }
  for (std::size_t i = 0; i < manifest.calls.size(); ++i) {
    os::RekeyPatch p;
    p.addr = manifest.calls[i].mac_slot;
    std::copy(new_calls[i].begin(), new_calls[i].end(), p.bytes.begin());
    out.view.patches.push_back(p);
  }

  out.stats.macs_recomputed = manifest.mac_count();
  out.stats.surface_bytes = manifest.mac_surface_bytes();
  return out;
}

}  // namespace asc::installer
