// The trusted installer (§3.3, Fig. 2).
//
// Run by the security administrator with the MAC key. Reads a relocatable
// binary, generates policies by conservative static analysis, and rewrites
// the binary so every system call is an authenticated system call. The
// two-step analyze()/rewrite() form supports the metapolicy workflow of
// §5.2: analyze, inspect/fill the policy template, then rewrite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "binary/image.h"
#include "crypto/cmac.h"
#include "installer/policygen.h"
#include "installer/rewriter.h"
#include "os/syscalls.h"

namespace asc::installer {

struct InstallOptions {
  bool control_flow = true;
  bool capability_tracking = false;
  bool unique_block_ids = true;
  policy::Metapolicy metapolicy;
  /// Override the program id (0 = allocate from the installer's counter).
  /// Explicit ids keep installs deterministic when several images are
  /// installed concurrently by independent tasks.
  std::uint16_t program_id = 0;
  /// Pool the analysis and signing phases fan out over (nullptr = the
  /// process-global pool). Output is byte-identical at any job count.
  util::Executor* executor = nullptr;
};

struct InstallResult {
  binary::Image image;
  std::vector<policy::SyscallPolicy> policies;
  std::vector<std::string> warnings;
  analysis::InlineReport inline_report;
  /// Key-independent signing surface of `image`; feed it to Rekeyer::rekey()
  /// to re-sign under a different key without re-running analysis.
  SignManifest manifest;
};

class Installer {
 public:
  /// The key is provided by the security administrator at startup and is
  /// shared only with the kernel.
  Installer(const crypto::Key128& key, os::Personality personality);

  /// Step 1: static analysis + policy generation (no key needed; this is
  /// the part the paper also ran on OpenBSD).
  GeneratedPolicies analyze(const binary::Image& input,
                            const InstallOptions& options = {}) const;

  /// Step 2: rewrite with (possibly administrator-edited) policies.
  InstallResult rewrite(const binary::Image& input, GeneratedPolicies gp,
                        const InstallOptions& options = {});

  /// One-shot: analyze + rewrite. Throws if the metapolicy leaves holes.
  InstallResult install(const binary::Image& input, const InstallOptions& options = {});

  /// Program ids are unique per installer instance (machine-wide in the
  /// deployment story), making block ids machine-unique (§5.5).
  std::uint16_t next_program_id() const { return next_program_id_; }

 private:
  crypto::MacKey key_;
  os::Personality personality_;
  std::uint16_t next_program_id_ = 1;
};

}  // namespace asc::installer
