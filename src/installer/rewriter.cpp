#include "installer/rewriter.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/dataflow.h"
#include "isa/encode.h"
#include "policy/authstring.h"
#include "util/error.h"
#include "util/executor.h"
#include "util/hex.h"

namespace asc::installer {

namespace {

using analysis::IrFunction;
using analysis::IrInstr;
using analysis::RefKind;
using binary::SectionKind;

/// Allocator for the .asdata section.
///
/// Layout (reserve/add_as/add_string_as) is strictly serial so addresses are
/// identical at any job count; the CMAC over every AS blob is recorded as a
/// pending signing job and computed by sign_pending() in parallel -- each
/// job MACs its own content range and writes its own 16-byte MAC slot.
class AsDataBuilder {
 public:
  /// Reserve `n` bytes; returns the virtual address of the first byte.
  std::uint32_t reserve(std::uint32_t n) {
    const std::uint32_t addr = binary::section_base(SectionKind::AsData) +
                               static_cast<std::uint32_t>(bytes_.size());
    bytes_.resize(bytes_.size() + n, 0);
    if (bytes_.size() > binary::section_limit(SectionKind::AsData)) {
      throw Error("rewriter: .asdata exceeds section window");
    }
    return addr;
  }

  /// Append an AS blob {len, MAC, content}; the MAC is left zero until
  /// sign_pending(). Returns the BODY address.
  std::uint32_t add_as(std::span<const std::uint8_t> content) {
    if (content.size() > policy::kAsMaxLength) throw Error("authenticated string too long");
    const auto len = static_cast<std::uint32_t>(content.size());
    const std::uint32_t addr = reserve(policy::kAsHeaderSize + len);
    const std::uint32_t off = addr - binary::section_base(SectionKind::AsData);
    util::set_u32(bytes_, off, len);
    std::copy(content.begin(), content.end(), bytes_.begin() + off + policy::kAsHeaderSize);
    pending_.push_back({off + policy::kAsHeaderSize, len, off + 4});
    return addr + policy::as_body_offset();
  }

  /// Deduplicated AS for a string constant. The AS length covers the string
  /// WITHOUT the NUL (the kernel MACs the logical string) while the stored
  /// content keeps NUL termination for the guest.
  std::uint32_t add_string_as(const std::string& s) {
    auto it = string_cache_.find(s);
    if (it != string_cache_.end()) return it->second;
    const auto len = static_cast<std::uint32_t>(s.size());
    const std::uint32_t addr = reserve(policy::kAsHeaderSize + len + 1);
    const std::uint32_t off = addr - binary::section_base(SectionKind::AsData);
    util::set_u32(bytes_, off, len);
    std::copy(s.begin(), s.end(), bytes_.begin() + off + policy::kAsHeaderSize);
    pending_.push_back({off + policy::kAsHeaderSize, len, off + 4});
    const std::uint32_t body = addr + policy::as_body_offset();
    string_cache_[s] = body;
    return body;
  }

  /// Compute every pending AS MAC and write it into its slot. Chunks of
  /// kSignChunk records go through Cmac::compute_batch (4-lane AES-NI
  /// lockstep), and the chunks fan out over `ex`. Disjoint read/write ranges
  /// per job; bytes_ no longer grows.
  void sign_pending(const crypto::MacKey& key, util::Executor& ex) {
    constexpr std::size_t kSignChunk = 64;
    const std::size_t nchunks = (pending_.size() + kSignChunk - 1) / kSignChunk;
    ex.parallel_for(nchunks, [&](std::size_t ci) {
      const std::size_t lo = ci * kSignChunk;
      const std::size_t hi = std::min(lo + kSignChunk, pending_.size());
      std::vector<std::span<const std::uint8_t>> msgs;
      msgs.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        msgs.emplace_back(bytes_.data() + pending_[i].msg_off, pending_[i].msg_len);
      }
      const std::vector<crypto::Mac> macs = key.mac_batch(msgs);
      for (std::size_t i = lo; i < hi; ++i) {
        std::copy(macs[i - lo].begin(), macs[i - lo].end(),
                  bytes_.begin() + pending_[i].mac_off);
      }
    });
    pending_.clear();
  }

  /// Manifest view of every AS blob allocated so far (body vaddr + covered
  /// length). Must be harvested BEFORE sign_pending() clears the list;
  /// dedup in add_string_as means one record per unique string.
  std::vector<ManifestAsRecord> manifest_as_records() const {
    std::vector<ManifestAsRecord> recs;
    recs.reserve(pending_.size());
    for (const PendingMac& p : pending_) {
      recs.push_back(
          ManifestAsRecord{binary::section_base(SectionKind::AsData) + p.msg_off, p.msg_len});
    }
    return recs;
  }

  void write(std::uint32_t addr, std::span<const std::uint8_t> data) {
    const std::uint32_t off = addr - binary::section_base(SectionKind::AsData);
    if (off + data.size() > bytes_.size()) throw Error("rewriter: .asdata write out of range");
    std::copy(data.begin(), data.end(), bytes_.begin() + off);
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  struct PendingMac {
    std::uint32_t msg_off = 0;  // offsets into bytes_
    std::uint32_t msg_len = 0;
    std::uint32_t mac_off = 0;
  };
  std::vector<std::uint8_t> bytes_;
  std::vector<PendingMac> pending_;
  std::map<std::string, std::uint32_t> string_cache_;
};

}  // namespace

RewriteResult rewrite_with_policies(const binary::Image& input, GeneratedPolicies gp,
                                    const crypto::MacKey& key, const RewriteOptions& options) {
  if (!gp.holes.empty()) {
    throw Error("rewriter: policy template has " + std::to_string(gp.holes.size()) +
                " unfilled holes (metapolicy not satisfied)");
  }
  util::Executor& ex = util::resolve_executor(options.executor);
  analysis::ProgramIr& ir = gp.ir;

  auto compose = [&](std::uint32_t local) {
    return policy::make_block_id(options.program_id, local, options.unique_block_ids);
  };

  AsDataBuilder asdata;

  // ---- allocate policy state in .asdata (writable in this VM) ----
  const std::uint32_t state_addr = asdata.reserve(policy::kPolicyStateSize);

  // ---- per-site .asdata allocation: strings, patterns, pred sets, MACs ----
  // Serial: address assignment must not depend on scheduling. All AES work
  // (the AS MACs) is deferred to the parallel sign_pending() below.
  const std::size_t nsites = gp.scan.sites.size();
  struct SiteAlloc {
    std::array<std::uint32_t, os::kMaxSyscallArgs> as_body{};   // AS body addr per String arg
    std::array<std::uint32_t, os::kMaxSyscallArgs> pattern_body{};  // per Pattern arg
    std::uint32_t pred_body = 0;
    std::uint32_t mac_slot = 0;
  };
  std::vector<SiteAlloc> allocs(nsites);
  bool any_pattern = false;

  for (std::size_t si = 0; si < nsites; ++si) {
    policy::SyscallPolicy& pol = gp.policies[si];
    SiteAlloc& al = allocs[si];
    std::vector<policy::PatternRef> pattern_refs;
    for (int a = 0; a < pol.arity; ++a) {
      const auto idx = static_cast<std::size_t>(a);
      if (pol.args[idx].kind == policy::ArgPolicy::Kind::String) {
        al.as_body[idx] = asdata.add_string_as(pol.args[idx].str);
      } else if (pol.args[idx].kind == policy::ArgPolicy::Kind::Pattern) {
        any_pattern = true;
        const std::string& pat = pol.args[idx].str;
        al.pattern_body[idx] =
            asdata.add_as(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(pat.data()), pat.size()));
        pattern_refs.push_back(
            policy::PatternRef{static_cast<std::uint32_t>(a), al.pattern_body[idx]});
      }
    }
    // Compose block ids now.
    pol.block_id = compose(pol.block_id);
    for (auto& p : pol.predecessors) p = compose(p);
    for (auto& c : pol.fd_sources) c = compose(c);
    if (pol.control_flow || !pattern_refs.empty() || !pol.fd_sources.empty()) {
      pol.control_flow = true;  // the blob rides on the control-flow tuple
      const auto blob = policy::encode_pred_set(pol.predecessors, pol.fd_sources, pattern_refs);
      al.pred_body = asdata.add_as(blob);
    }
    al.mac_slot = asdata.reserve(16);
  }

  // ---- sign every AS blob (parallel batched CMAC schedule) ----
  // The manifest's AS table is harvested first: sign_pending consumes the
  // pending list, and the rekeyer needs the same {body, len} surface.
  RewriteResult result;
  result.manifest.program_id = options.program_id;
  result.manifest.unique_block_ids = options.unique_block_ids;
  result.manifest.state_addr = state_addr;
  result.manifest.start_block = compose(policy::kStartBlockLocal);
  result.manifest.as_records = asdata.manifest_as_records();
  result.manifest.calls.resize(nsites);
  asdata.sign_pending(key, ex);

  // ---- locate the guest hint buffer if patterns are used ----
  std::uint32_t hint_buf_addr = 0;
  if (any_pattern) {
    const binary::Symbol* sym = input.find_symbol(kHintBufferSymbol);
    if (sym == nullptr) {
      throw Error(std::string("rewriter: pattern policies require the guest symbol ") +
                  kHintBufferSymbol);
    }
    hint_buf_addr = sym->addr;
  }

  // ---- retarget string-argument LEAs and insert extra-arg setup ----
  // Group sites by function; rebuild each function's instruction list once.
  // Functions are independent (each task rebuilds its own f.instrs and
  // updates only its own sites' instruction indexes), so the rebuild -- and
  // the per-function ReachingDefs it needs -- fans out over the pool.
  std::map<std::size_t, std::vector<std::size_t>> sites_by_func;
  for (std::size_t si = 0; si < nsites; ++si) {
    sites_by_func[gp.scan.sites[si].func].push_back(si);
  }
  const std::vector<std::pair<std::size_t, std::vector<std::size_t>>> func_sites(
      sites_by_func.begin(), sites_by_func.end());

  ex.parallel_for(func_sites.size(), [&](std::size_t k) {
    const std::size_t fi = func_sites[k].first;
    const std::vector<std::size_t>& site_ids = func_sites[k].second;
    IrFunction& f = ir.funcs[fi];

    // Retarget defining LEAs of String arguments.
    const analysis::ReachingDefs rd(ir, gp.cfg, fi);
    for (std::size_t si : site_ids) {
      const analysis::SyscallSite& site = gp.scan.sites[si];
      const policy::SyscallPolicy& pol = gp.policies[si];
      for (int a = 0; a < pol.arity; ++a) {
        const auto idx = static_cast<std::size_t>(a);
        if (pol.args[idx].kind != policy::ArgPolicy::Kind::String) continue;
        const std::uint32_t body = allocs[si].as_body[idx];
        for (std::size_t d : rd.defs_at(site.instr, static_cast<isa::Reg>(1 + a))) {
          if (d == analysis::kEntryDef) continue;
          IrInstr& din = f.instrs[d];
          if (din.ins.op == isa::Op::Lea && din.ref == RefKind::DataAddr) {
            din.ref_addr = body;
          }
        }
      }
    }

    // Insert the extra-argument setup before each SYSCALL of this function.
    std::vector<IrInstr> out;
    out.reserve(f.instrs.size() + site_ids.size() * 6);
    std::vector<std::size_t> new_index(f.instrs.size());
    std::map<std::size_t, std::size_t> site_at_instr;  // old instr idx -> site idx
    for (std::size_t si : site_ids) site_at_instr[gp.scan.sites[si].instr] = si;

    for (std::size_t i = 0; i < f.instrs.size(); ++i) {
      auto hit = site_at_instr.find(i);
      if (hit != site_at_instr.end()) {
        const std::size_t si = hit->second;
        const policy::SyscallPolicy& pol = gp.policies[si];
        const SiteAlloc& al = allocs[si];
        auto emit = [&](IrInstr instr) { out.push_back(instr); };
        IrInstr mi;
        mi.ins = {isa::Op::Movi, isa::kRegPolicyDescriptor, 0, pol.descriptor().bits()};
        emit(mi);
        mi.ins = {isa::Op::Movi, isa::kRegBlockId, 0, pol.block_id};
        emit(mi);
        if (pol.control_flow) {
          IrInstr lp;
          lp.ins = {isa::Op::Lea, isa::kRegPredSet, 0, 0};
          lp.ref = RefKind::DataAddr;
          lp.ref_addr = al.pred_body;
          emit(lp);
          lp.ins = {isa::Op::Lea, isa::kRegStatePtr, 0, 0};
          lp.ref_addr = state_addr;
          emit(lp);
        }
        IrInstr lm;
        lm.ins = {isa::Op::Lea, isa::kRegCallMac, 0, 0};
        lm.ref = RefKind::DataAddr;
        lm.ref_addr = al.mac_slot;
        emit(lm);
        bool has_pattern = false;
        for (int a = 0; a < pol.arity; ++a) {
          if (pol.args[static_cast<std::size_t>(a)].kind == policy::ArgPolicy::Kind::Pattern) {
            has_pattern = true;
          }
        }
        if (has_pattern) {
          IrInstr lh;
          lh.ins = {isa::Op::Lea, isa::kRegHintPtr, 0, 0};
          lh.ref = RefKind::DataAddr;
          lh.ref_addr = hint_buf_addr;
          emit(lh);
        }
      }
      new_index[i] = out.size();
      out.push_back(f.instrs[i]);
    }
    // Remap CodeLocal refs and site instruction indexes.
    for (auto& instr : out) {
      if (instr.ref == RefKind::CodeLocal) instr.ref_index = new_index[instr.ref_index];
    }
    for (std::size_t si : site_ids) {
      gp.scan.sites[si].instr = new_index[gp.scan.sites[si].instr];
    }
    f.instrs = std::move(out);
  });

  // ---- layout pass: assign final addresses ----
  std::vector<std::uint32_t> func_addr(ir.funcs.size(), 0);
  std::vector<std::vector<std::uint32_t>> instr_addr(ir.funcs.size());
  std::uint32_t pc = binary::section_base(SectionKind::Text);
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    const IrFunction& f = ir.funcs[fi];
    if (f.inlined_away) continue;
    func_addr[fi] = pc;
    instr_addr[fi].resize(f.instrs.size());
    if (f.opaque) {
      // Opaque functions are copied byte-for-byte from the input (they were
      // never decoded); size comes from the original symbol.
      const binary::Symbol* sym = input.find_symbol(f.name);
      if (sym == nullptr) throw Error("rewriter: lost symbol for opaque function");
      pc += sym->size;
      continue;
    }
    for (std::size_t i = 0; i < f.instrs.size(); ++i) {
      instr_addr[fi][i] = pc;
      pc += static_cast<std::uint32_t>(isa::size_of(f.instrs[i].ins.op));
    }
  }
  if (pc - binary::section_base(SectionKind::Text) > binary::section_limit(SectionKind::Text)) {
    throw Error("rewriter: .text exceeds section window");
  }

  // ---- emit .text ----
  std::vector<std::uint8_t> text;
  text.reserve(pc - binary::section_base(SectionKind::Text));
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    const IrFunction& f = ir.funcs[fi];
    if (f.inlined_away) continue;
    if (f.opaque) {
      const binary::Symbol* sym = input.find_symbol(f.name);
      const auto bytes = input.bytes_at(sym->addr, sym->size);
      if (!bytes.has_value()) throw Error("rewriter: cannot copy opaque function bytes");
      // NOTE: opaque functions may contain absolute self-references that
      // would be stale after relocation; the toy libc only uses
      // position-relative tricks inside opaque stubs, but we verify no
      // relocation slot of the input falls inside an opaque function whose
      // address changed.
      if (sym->addr != func_addr[fi]) {
        for (const auto& r : input.relocs) {
          if (r.slot >= sym->addr && r.slot < sym->addr + sym->size) {
            throw Error("rewriter: opaque function " + f.name +
                        " has relocations but moved; cannot rewrite safely");
          }
        }
      }
      text.insert(text.end(), bytes->begin(), bytes->end());
      continue;
    }
    for (std::size_t i = 0; i < f.instrs.size(); ++i) {
      isa::Instr ins = f.instrs[i].ins;
      switch (f.instrs[i].ref) {
        case RefKind::None:
          break;
        case RefKind::CodeLocal:
          ins.imm = instr_addr[fi][f.instrs[i].ref_index];
          break;
        case RefKind::FuncEntry:
          ins.imm = func_addr[f.instrs[i].ref_index];
          break;
        case RefKind::DataAddr:
          ins.imm = f.instrs[i].ref_addr;
          break;
      }
      isa::encode(ins, text);
    }
  }

  // ---- opaque functions that moved: the check above threw if unsafe ----

  // ---- build the output image ----
  binary::Image& out = result.image;
  out.sections.reserve(8);  // section() grows the vector; see tasm::link
  out.name = input.name;
  out.relocatable = false;
  out.authenticated = true;
  out.program_id = options.program_id;
  out.section(SectionKind::Text).bytes = std::move(text);
  if (const auto* s = input.find_section(SectionKind::Rodata)) out.sections.push_back(*s);
  if (const auto* s = input.find_section(SectionKind::Data)) out.sections.push_back(*s);
  if (const auto* s = input.find_section(SectionKind::Bss)) out.sections.push_back(*s);

  // Retarget data-resident code pointers.
  for (const auto& [slot, target_func] : ir.data_code_ptrs) {
    const auto sk = out.section_containing(slot);
    if (!sk.has_value()) continue;
    auto& sec = out.section(*sk);
    util::set_u32(sec.bytes, slot - sec.vaddr(), func_addr[target_func]);
  }

  // Symbols: functions at new addresses; data objects unchanged.
  for (std::size_t fi = 0; fi < ir.funcs.size(); ++fi) {
    const IrFunction& f = ir.funcs[fi];
    if (f.inlined_away) continue;
    std::uint32_t size = 0;
    if (f.opaque) {
      size = input.find_symbol(f.name)->size;
    } else if (!f.instrs.empty()) {
      const std::size_t lastix = f.instrs.size() - 1;
      size = instr_addr[fi][lastix] +
             static_cast<std::uint32_t>(isa::size_of(f.instrs[lastix].ins.op)) - func_addr[fi];
    }
    out.symbols.push_back(
        binary::Symbol{f.name, func_addr[fi], size, binary::SymbolKind::Function});
  }
  for (const auto& s : input.symbols) {
    if (s.kind == binary::SymbolKind::Object) out.symbols.push_back(s);
  }
  out.entry = func_addr[ir.entry_func];

  // ---- final call sites & encoded policies/MACs ----
  // Parallel per site: every call MAC is an independent CMAC over that
  // site's encoded policy, written to that site's own 16-byte .asdata slot.
  ex.parallel_for(nsites, [&](std::size_t si) {
    policy::SyscallPolicy& pol = gp.policies[si];
    const analysis::SyscallSite& site = gp.scan.sites[si];
    pol.call_site = instr_addr[site.func][site.instr];

    policy::EncodedPolicyInputs in;
    in.sysno = pol.sysno;
    in.descriptor = pol.descriptor();
    in.call_site = pol.call_site;
    in.block_id = pol.block_id;
    in.arity = pol.arity;
    for (int a = 0; a < pol.arity; ++a) {
      const auto idx = static_cast<std::size_t>(a);
      switch (pol.args[idx].kind) {
        case policy::ArgPolicy::Kind::Const:
          in.const_values[idx] = pol.args[idx].value;
          break;
        case policy::ArgPolicy::Kind::String: {
          policy::AsRef as;
          as.addr = allocs[si].as_body[idx];
          as.len = static_cast<std::uint32_t>(pol.args[idx].str.size());
          as.mac = key.mac(std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(pol.args[idx].str.data()),
              pol.args[idx].str.size()));
          in.as_args[idx] = as;
          break;
        }
        default:
          break;
      }
    }
    if (pol.control_flow) {
      std::vector<policy::PatternRef> pattern_refs;
      for (int a = 0; a < pol.arity; ++a) {
        const auto idx = static_cast<std::size_t>(a);
        if (pol.args[idx].kind == policy::ArgPolicy::Kind::Pattern) {
          pattern_refs.push_back(
              policy::PatternRef{static_cast<std::uint32_t>(a), allocs[si].pattern_body[idx]});
        }
      }
      const auto blob = policy::encode_pred_set(pol.predecessors, pol.fd_sources, pattern_refs);
      policy::AsRef pred;
      pred.addr = allocs[si].pred_body;
      pred.len = static_cast<std::uint32_t>(blob.size());
      pred.mac = key.mac(blob);
      in.pred_set = pred;
      in.lb_ptr = state_addr;
    }
    const auto encoded = policy::encode_policy(in);
    const crypto::Mac call_mac = key.mac(encoded);
    asdata.write(allocs[si].mac_slot, call_mac);

    // Manifest call record: the encoded message with its embedded AS MAC
    // fields zeroed (keeping the manifest key-independent) plus the patch
    // list binding each field to the AS whose content MAC fills it. The
    // offsets helper mirrors encode_policy, so the bodies line up: AS args
    // in ascending order, then the predecessor set.
    ManifestCallRecord& rec = result.manifest.calls[si];
    rec.mac_slot = allocs[si].mac_slot;
    rec.message = encoded;
    std::vector<std::uint32_t> bodies;
    for (int a = 0; a < pol.arity; ++a) {
      const auto idx = static_cast<std::size_t>(a);
      if (in.descriptor.arg_is_authenticated_string(a)) bodies.push_back(allocs[si].as_body[idx]);
    }
    if (in.descriptor.control_flow_constrained()) bodies.push_back(allocs[si].pred_body);
    const std::vector<std::size_t> mac_offs = policy::embedded_mac_offsets(in);
    for (std::size_t k = 0; k < mac_offs.size(); ++k) {
      rec.patches.push_back(ManifestPatch{static_cast<std::uint32_t>(mac_offs[k]), bodies[k]});
      std::fill_n(rec.message.begin() + static_cast<std::ptrdiff_t>(mac_offs[k]), 16, 0);
    }
  });

  // ---- initialize the policy state ----
  {
    std::vector<std::uint8_t> state;
    const std::uint32_t start = policy::make_block_id(
        options.program_id, policy::kStartBlockLocal, options.unique_block_ids);
    util::put_u32(state, start);
    const auto msg = policy::encode_policy_state(start, 0);
    const crypto::Mac m = key.mac(msg);
    state.insert(state.end(), m.begin(), m.end());
    asdata.write(state_addr, state);
  }

  out.section(SectionKind::AsData).bytes = asdata.take();
  result.policies = std::move(gp.policies);
  return result;
}

}  // namespace asc::installer
