// Policy generation: run the full static-analysis pipeline and derive the
// logical system call policy for every call site (§3.3, §4.1).
//
// Pipeline: disassemble -> inline syscall stubs -> basic blocks/CFG ->
// call graph -> reaching definitions & value tracing per site -> syscall
// graph -> logical SyscallPolicy per site (+ metapolicy holes, §5.2).
//
// This stage is OS-personality specific (syscall numbers differ) but does
// not need the MAC key; it is what the paper "ported to OpenBSD" for the
// Table 1/2 experiments.
#pragma once

#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/disassembler.h"
#include "analysis/inliner.h"
#include "analysis/syscallgraph.h"
#include "analysis/syscallsites.h"
#include "binary/image.h"
#include "os/syscalls.h"
#include "policy/metapolicy.h"
#include "policy/policy.h"
#include "util/executor.h"

namespace asc::installer {

struct PolicyGenOptions {
  bool control_flow = true;          // emit predecessor-set policies
  bool capability_tracking = false;  // emit fd-source sets (§5.3)
  policy::Metapolicy metapolicy;     // strictness requirements (§5.2)
  /// Work-stealing pool the per-function/per-site analysis fans out over
  /// (nullptr = the process-global pool). Output is identical at any job
  /// count; jobs=1 is the exact serial reference path.
  util::Executor* executor = nullptr;
};

struct GeneratedPolicies {
  analysis::ProgramIr ir;   // post-inlining IR
  analysis::Cfg cfg;
  analysis::CallGraph callgraph;
  analysis::SiteScan scan;  // sites parallel to `policies`
  analysis::SyscallGraph graph;
  analysis::InlineReport inline_report;
  /// Logical policies (call_site and composed block ids are filled in by the
  /// rewriter; block ids here are LOCAL). The administrator may edit these
  /// (fill template holes) before rewriting.
  std::vector<policy::SyscallPolicy> policies;
  /// Metapolicy holes that must be filled before rewriting (§5.2).
  std::vector<policy::TemplateHole> holes;
  std::vector<std::string> warnings;
};

GeneratedPolicies generate_policies(const binary::Image& image, os::Personality personality,
                                    const PolicyGenOptions& options = {});

}  // namespace asc::installer
