#include "installer/policygen.h"

namespace asc::installer {

GeneratedPolicies generate_policies(const binary::Image& image, os::Personality personality,
                                    const PolicyGenOptions& options) {
  util::Executor* exec = options.executor;
  GeneratedPolicies gp;
  gp.ir = analysis::disassemble(image, exec);
  gp.inline_report = analysis::inline_syscall_stubs(gp.ir);
  const analysis::InlineReport wrappers = analysis::inline_syscall_wrappers(gp.ir);
  gp.inline_report.stubs_found += wrappers.stubs_found;
  gp.inline_report.call_sites_inlined += wrappers.call_sites_inlined;
  gp.inline_report.stubs_removed += wrappers.stubs_removed;
  gp.cfg = analysis::build_cfg(gp.ir, exec);
  gp.callgraph = analysis::build_callgraph(gp.ir, gp.cfg);
  gp.scan = analysis::find_syscall_sites(gp.ir, image, gp.cfg, personality, exec);

  // Reachability pruning: only functions reachable from the entry point (or
  // address-taken, hence possible indirect targets) contribute policies --
  // mirroring what static linking of a real libc gives the paper's
  // installer. Unreachable SYSCALLs stay unauthenticated in the output,
  // which is safe: the kernel blocks unauthenticated calls.
  {
    std::vector<bool> reachable(gp.ir.funcs.size(), false);
    std::vector<std::size_t> stack{gp.ir.entry_func};
    for (std::size_t fi : gp.callgraph.address_taken) stack.push_back(fi);
    while (!stack.empty()) {
      const std::size_t fi = stack.back();
      stack.pop_back();
      if (reachable[fi]) continue;
      reachable[fi] = true;
      for (std::size_t callee : gp.callgraph.callees[fi]) stack.push_back(callee);
    }
    std::vector<analysis::SyscallSite> kept;
    for (auto& site : gp.scan.sites) {
      if (reachable[site.func]) kept.push_back(site);
    }
    gp.scan.sites = std::move(kept);
  }

  gp.graph = analysis::build_syscall_graph(gp.ir, gp.cfg, gp.callgraph, gp.scan.sites, exec);
  gp.warnings = gp.scan.warnings;
  for (const auto& f : gp.ir.funcs) {
    if (f.opaque) {
      gp.warnings.push_back("opaque function " + f.name + ": " + f.opaque_reason);
    }
  }

  // Per-site policy derivation: independent per site, each task writes only
  // its own slot of the (pre-sized) policy list.
  gp.policies.resize(gp.scan.sites.size());
  util::resolve_executor(exec).parallel_for(gp.scan.sites.size(), [&](std::size_t si) {
    const analysis::SyscallSite& site = gp.scan.sites[si];
    policy::SyscallPolicy p;
    p.sys = site.id;
    p.sysno = site.sysno;
    p.block_id = site.block;  // local; composed by the rewriter
    p.arity = site.arity;
    p.control_flow = options.control_flow;
    if (options.control_flow) p.predecessors = gp.graph.predecessors[si];

    for (int a = 0; a < site.arity; ++a) {
      const auto idx = static_cast<std::size_t>(a);
      const analysis::ArgClass& cls = site.args[idx];
      policy::ArgPolicy& ap = p.args[idx];
      switch (cls.kind) {
        case analysis::ArgClass::Kind::Const:
          ap.kind = policy::ArgPolicy::Kind::Const;
          ap.value = cls.value;
          break;
        case analysis::ArgClass::Kind::String:
          ap.kind = policy::ArgPolicy::Kind::String;
          ap.str = cls.str;
          break;
        case analysis::ArgClass::Kind::Multi:
          ap.kind = policy::ArgPolicy::Kind::MultiValue;
          ap.values = cls.values;
          break;
        case analysis::ArgClass::Kind::FdArg:
          ap.kind = policy::ArgPolicy::Kind::Unconstrained;
          if (options.capability_tracking) {
            p.fd_sources = cls.fd_origin_blocks;  // local; composed later
          }
          break;
        case analysis::ArgClass::Kind::Unknown:
          ap.kind = policy::ArgPolicy::Kind::Unconstrained;
          break;
      }
    }
    gp.policies[si] = std::move(p);
  });

  gp.holes = policy::find_holes(gp.policies, options.metapolicy);
  return gp;
}

}  // namespace asc::installer
