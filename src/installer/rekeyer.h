// Differential re-keying: O(MAC-surface) re-signing of an installed image.
//
// A fresh install runs the whole pipeline -- disassembly, CFG construction,
// supergraph walks, policy derivation, rewrite, sign. But the only
// key-dependent bytes in the output are the MACs: call MACs over encoded
// policies, AS content MACs, and the policy-state seed MAC. The rewriter
// therefore emits a SignManifest alongside the image recording exactly where
// those MACs live and what bytes each one covers, and Rekeyer::rekey()
// re-signs the image under a new key by recomputing only that surface --
// batched through Cmac::compute_batch and fanned out with
// util::Executor::parallel_for.
//
// Call-MAC messages are NOT stored key-dependent: an encoded policy embeds
// the content MACs of its AS arguments and of its predecessor-set blob, so
// the manifest stores each call message with those embedded MAC fields
// ZEROED plus a patch list {offset in message, AS body address}. The verify
// pass splices in the old MACs read from the image; the sign pass splices in
// the freshly computed new ones. The manifest itself is thus strictly
// key-independent and reusable across any number of rotations.
//
// rekey() first verifies the ENTIRE old surface under the old key and throws
// on any mismatch -- re-signing a tampered image would launder the tamper
// into valid new-key MACs. The output is byte-identical to a fresh install
// under the new key (the differential oracle test pins this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "binary/image.h"
#include "crypto/cmac.h"
#include "os/rekey.h"
#include "util/executor.h"

namespace asc::installer {

/// One authenticated string (or predecessor-set / pattern blob) the
/// installer signed: content at [body, body+len), MAC at body-16, length
/// field at body-20 (policy/authstring.h layout).
struct ManifestAsRecord {
  std::uint32_t body = 0;
  std::uint32_t len = 0;

  bool operator==(const ManifestAsRecord&) const = default;
};

/// One embedded-MAC splice point within a call-MAC message.
struct ManifestPatch {
  std::uint32_t msg_off = 0;  // offset of the 16-byte MAC field in `message`
  std::uint32_t as_body = 0;  // AS body address whose content MAC goes there

  bool operator==(const ManifestPatch&) const = default;
};

/// One call MAC: the 16-byte slot in .asdata and the encoded-policy message
/// it covers, with embedded AS MAC fields zeroed (see file comment).
struct ManifestCallRecord {
  std::uint32_t mac_slot = 0;
  std::vector<std::uint8_t> message;
  std::vector<ManifestPatch> patches;

  bool operator==(const ManifestCallRecord&) const = default;
};

/// Everything needed to re-sign an installed image under a different key
/// without re-running any analysis. Emitted by the rewriter, consumed by
/// Rekeyer::rekey(). Key-independent by construction.
struct SignManifest {
  std::uint16_t program_id = 0;
  bool unique_block_ids = true;
  std::uint32_t state_addr = 0;   // policy-state record {u32 lastBlock, 16B MAC}
  std::uint32_t start_block = 0;  // composed id of the start pseudo-block
  std::vector<ManifestAsRecord> as_records;
  std::vector<ManifestCallRecord> calls;

  /// Total message bytes covered by the MAC surface (AS contents + call
  /// messages + the 12-byte policy-state message). This is the work a rekey
  /// costs, against the whole-image work a reinstall costs.
  std::uint64_t mac_surface_bytes() const;

  /// Number of MACs one signing pass recomputes.
  std::uint64_t mac_count() const { return as_records.size() + calls.size() + 1; }

  /// File form (asctool writes `<out>.manifest` next to installed images).
  std::vector<std::uint8_t> serialize() const;
  static SignManifest deserialize(std::span<const std::uint8_t> file);

  bool operator==(const SignManifest&) const = default;
};

struct RekeyStats {
  std::uint64_t macs_recomputed = 0;  // sign-pass MACs written
  std::uint64_t surface_bytes = 0;    // mac_surface_bytes() of the manifest
};

struct RekeyResult {
  binary::Image image;  // re-signed copy, byte-identical to a fresh install
  os::RekeyView view;   // MAC-slot patches + state_addr for live kernel swap
  RekeyStats stats;
};

class Rekeyer {
 public:
  /// Re-sign `image` (installed under `old_key`) so it verifies under
  /// `new_key`. Verifies the whole old MAC surface first and throws Error on
  /// any mismatch (tampered input must not be laundered into fresh MACs).
  /// Deterministic: byte-identical output at any executor job count.
  static RekeyResult rekey(const binary::Image& image, const SignManifest& manifest,
                           const crypto::Key128& old_key, const crypto::Key128& new_key,
                           util::Executor* executor = nullptr);
};

}  // namespace asc::installer
