#include "installer/installer.h"

namespace asc::installer {

Installer::Installer(const crypto::Key128& key, os::Personality personality)
    : key_(key), personality_(personality) {}

GeneratedPolicies Installer::analyze(const binary::Image& input,
                                     const InstallOptions& options) const {
  PolicyGenOptions pg;
  pg.control_flow = options.control_flow;
  pg.capability_tracking = options.capability_tracking;
  pg.metapolicy = options.metapolicy;
  pg.executor = options.executor;
  return generate_policies(input, personality_, pg);
}

InstallResult Installer::rewrite(const binary::Image& input, GeneratedPolicies gp,
                                 const InstallOptions& options) {
  InstallResult result;
  result.warnings = gp.warnings;
  result.inline_report = gp.inline_report;
  RewriteOptions ro;
  ro.program_id = options.program_id != 0 ? options.program_id : next_program_id_++;
  ro.unique_block_ids = options.unique_block_ids;
  ro.executor = options.executor;
  RewriteResult rr = rewrite_with_policies(input, std::move(gp), key_, ro);
  result.image = std::move(rr.image);
  result.policies = std::move(rr.policies);
  result.manifest = std::move(rr.manifest);
  return result;
}

InstallResult Installer::install(const binary::Image& input, const InstallOptions& options) {
  return rewrite(input, analyze(input, options), options);
}

}  // namespace asc::installer
