// Guest program builders.
//
// Every benchmark program of the paper's evaluation (Table 5's suite, the
// policy-table programs of Tables 1-3, the Andrew-style tools, and the
// attack target) is written in TSA assembly against libtoy and built here as
// a relocatable TXE image, ready for the installer.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "binary/image.h"
#include "os/syscalls.h"

namespace asc::apps {

// ---- policy-table programs (Tables 1-3) ----
binary::Image build_bison(os::Personality p);   // parser generator analog
binary::Image build_calc(os::Personality p);    // arbitrary-precision calculator analog
binary::Image build_screen(os::Personality p);  // screen manager analog

// ---- Table 5/6 benchmark suite ----
binary::Image build_gzip_spec(os::Personality p);  // CPU: compression kernel
binary::Image build_crafty(os::Personality p);     // CPU: game tree search analog
binary::Image build_mcf(os::Personality p);        // CPU: combinatorial optimization
binary::Image build_vpr(os::Personality p);        // CPU: placement/annealing
binary::Image build_twolf(os::Personality p);      // CPU: place & route
binary::Image build_gcc(os::Personality p);        // syscall+CPU: compiler analog
binary::Image build_vortex(os::Personality p);     // syscall+CPU: OO database analog
binary::Image build_pyramid(os::Personality p);    // syscall: DB index creation
binary::Image build_gzip(os::Personality p);       // syscall: file compression tool

// ---- Andrew-style tools (also usable standalone) ----
binary::Image build_tar(os::Personality p);
binary::Image build_tool_cat(os::Personality p);
binary::Image build_tool_cp(os::Personality p);
binary::Image build_tool_rm(os::Personality p);
binary::Image build_tool_mv(os::Personality p);
binary::Image build_tool_chmod(os::Personality p);
binary::Image build_tool_mkdir(os::Personality p);
binary::Image build_tool_sort(os::Personality p);

// ---- attack target (§4.1) ----
// Reads a file name from stdin into a FIXED 64-byte stack buffer with an
// unchecked read(0, buf, 4096) -- a classic stack overflow -- then runs
// spawn("/bin/ls", <name>).
binary::Image build_vuln_echo(os::Personality p);

/// Every program above, as (name, image) pairs.
std::vector<std::pair<std::string, binary::Image>> build_all(os::Personality p);

}  // namespace asc::apps
