// libtoy -- the C library of the simulated world.
//
// Plays the role of the statically linked libc in the paper's experiments:
// it provides the system call stubs (which the installer inlines at each
// call site), string/memory helpers, console I/O, a brk-based allocator, and
// -- deliberately -- a fatal-error path (`die`) that uses socket/sendto/kill.
// Error paths like this are what conservative static analysis finds and
// training-based policy generation misses (Tables 1 and 2).
//
// Personality differences mirror the paper's Linux/OpenBSD differences:
//   * on BsdSim, `sys_mmap` routes through the generic `__syscall`
//     indirection, and `sys_close` is a hand-written stub with a computed
//     jump the static disassembler cannot decode (it is reported and its
//     close() is missing from generated policies -- Table 2's `close` row),
//   * on LinuxSim, `sys_time` exists; on BsdSim, `sys_fstatfs` exists and
//     time() is emulated with gettimeofday.
//
// ABI recap (see isa/isa.h): args r1..r5, result r0; ALL of r0-r5/r11-r14
// are caller-saved; locals live in an sp-relative frame.
#pragma once

#include "os/syscalls.h"
#include "tasm/assembler.h"

namespace asc::apps {

/// Emit `_start`, every syscall stub available under `personality`, and the
/// helper library into `a`. Call after emitting the app's own functions
/// (order does not matter; linking is two-pass).
void emit_libc(tasm::Assembler& a, os::Personality personality);

/// Syscall number or throw (for stubs that must exist).
std::uint16_t sysno(os::Personality p, os::SysId id);

/// Registers, for readability in app code.
inline constexpr isa::Reg R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5;
inline constexpr isa::Reg R11 = 11, R12 = 12, R13 = 13, R14 = 14, SP = isa::kSp;

// open() flag values shared with os::SimFs.
inline constexpr std::uint32_t O_RDONLY = 0, O_WRONLY = 1, O_RDWR = 2, O_CREAT = 0x40,
                               O_TRUNC = 0x200, O_APPEND = 0x400;

}  // namespace asc::apps
