#include "apps/libtoy.h"

#include "util/error.h"

namespace asc::apps {

using os::Personality;
using os::SysId;

std::uint16_t sysno(Personality p, SysId id) {
  const auto n = os::syscall_number(p, id);
  if (!n.has_value()) {
    throw Error(std::string("libtoy: syscall ") + os::signature(id).name +
                " unavailable on " + os::personality_name(p));
  }
  return *n;
}

namespace {

/// Plain stub: movi r0, NR; syscall; ret.
void stub(tasm::Assembler& a, Personality p, SysId id, const std::string& name) {
  a.func(name);
  a.movi(R0, sysno(p, id));
  a.syscall_();
  a.ret();
}

void emit_stubs(tasm::Assembler& a, Personality p) {
  stub(a, p, SysId::Exit, "sys_exit");
  stub(a, p, SysId::Read, "sys_read");
  stub(a, p, SysId::Write, "sys_write");
  stub(a, p, SysId::Open, "sys_open");
  stub(a, p, SysId::Unlink, "sys_unlink");
  stub(a, p, SysId::Rename, "sys_rename");
  stub(a, p, SysId::Mkdir, "sys_mkdir");
  stub(a, p, SysId::Rmdir, "sys_rmdir");
  stub(a, p, SysId::Chdir, "sys_chdir");
  stub(a, p, SysId::Getcwd, "sys_getcwd");
  stub(a, p, SysId::Stat, "sys_stat");
  stub(a, p, SysId::Fstat, "sys_fstat");
  stub(a, p, SysId::Lseek, "sys_lseek");
  stub(a, p, SysId::Dup, "sys_dup");
  stub(a, p, SysId::Brk, "sys_brk");
  stub(a, p, SysId::Getpid, "sys_getpid");
  stub(a, p, SysId::Getuid, "sys_getuid");
  stub(a, p, SysId::Gettimeofday, "sys_gettimeofday");
  stub(a, p, SysId::Nanosleep, "sys_nanosleep");
  stub(a, p, SysId::Kill, "sys_kill");
  stub(a, p, SysId::Sigaction, "sys_sigaction");
  stub(a, p, SysId::Socket, "sys_socket");
  stub(a, p, SysId::Connect, "sys_connect");
  stub(a, p, SysId::Sendto, "sys_sendto");
  stub(a, p, SysId::Recvfrom, "sys_recvfrom");
  stub(a, p, SysId::Fcntl, "sys_fcntl");
  stub(a, p, SysId::Readlink, "sys_readlink");
  stub(a, p, SysId::Symlink, "sys_symlink");
  stub(a, p, SysId::Chmod, "sys_chmod");
  stub(a, p, SysId::Access, "sys_access");
  stub(a, p, SysId::Ftruncate, "sys_ftruncate");
  stub(a, p, SysId::Getdirentries, "sys_getdirentries");
  stub(a, p, SysId::Uname, "sys_uname");
  stub(a, p, SysId::Sysconf, "sys_sysconf");
  stub(a, p, SysId::Madvise, "sys_madvise");
  stub(a, p, SysId::Munmap, "sys_munmap");
  stub(a, p, SysId::Writev, "sys_writev");
  stub(a, p, SysId::Umask, "sys_umask");
  stub(a, p, SysId::Ioctl, "sys_ioctl");
  stub(a, p, SysId::Spawn, "sys_spawn");
  stub(a, p, SysId::Pipe, "sys_pipe");

  // ---- close: ordinary on LinuxSim, undisassemblable on BsdSim ----
  if (p == Personality::LinuxSim) {
    stub(a, p, SysId::Close, "sys_close");
  } else {
    // A hand-optimized stub using a computed jump over an inline data byte.
    // The VM executes it fine (the jmpr skips the junk); the static
    // disassembler reports the function as not analyzable, so close() is
    // missing from BsdSim policies -- reproducing Table 2's `close` row.
    a.func("sys_close");
    a.lea(R11, ".real");
    a.jmpr(R11);
    a.raw({0xff, 0x17});  // junk bytes, not a valid instruction
    a.label(".real");
    a.movi(R0, sysno(p, SysId::Close));
    a.syscall_();
    a.ret();
  }

  // ---- time ----
  if (p == Personality::LinuxSim) {
    stub(a, p, SysId::Time, "sys_time");
  } else {
    // BsdSim has no time(2); libc emulates it with gettimeofday into a
    // scratch buffer and returns the seconds.
    a.func("sys_time");
    a.push(R1);
    a.lea(R1, "libc_tv_buf");
    a.movi(R2, 0);
    a.movi(R0, sysno(p, SysId::Gettimeofday));
    a.syscall_();
    a.lea(R11, "libc_tv_buf");
    a.load(R0, R11, 0);
    a.pop(R1);
    a.cmpi(R1, 0);
    a.jz(".done");
    a.store(R1, 0, R0);
    a.label(".done");
    a.ret();
  }

  // ---- fstatfs: BsdSim only ----
  if (p == Personality::BsdSim) {
    stub(a, p, SysId::Fstatfs, "sys_fstatfs");
  }

  // ---- mmap: direct on LinuxSim, through __syscall on BsdSim ----
  // sys_mmap(addr, len, prot, flags) -- anonymous mappings only.
  if (p == Personality::LinuxSim) {
    a.func("sys_mmap");
    a.movi(R5, 0);  // fd unused
    a.movi(R0, sysno(p, SysId::Mmap));
    a.syscall_();
    a.ret();
  } else {
    a.func("sys_mmap");
    a.mov(R5, R4);
    a.mov(R4, R3);
    a.mov(R3, R2);
    a.mov(R2, R1);
    a.movi(R1, 71);  // historic BSD mmap convention number
    a.movi(R0, sysno(p, SysId::SyscallIndirect));
    a.syscall_();
    a.ret();
  }
}

void emit_helpers(tasm::Assembler& a) {
  // ---- strlen(r1 s) -> r0 ----
  a.func("strlen");
  a.movi(R0, 0);
  a.label(".loop");
  a.mov(R11, R1);
  a.add(R11, R0);
  a.loadb(R12, R11, 0);
  a.cmpi(R12, 0);
  a.jz(".done");
  a.addi(R0, 1);
  a.jmp(".loop");
  a.label(".done");
  a.ret();

  // ---- strcpy(r1 dst, r2 src) -> r0 dst ----
  a.func("strcpy");
  a.mov(R0, R1);
  a.label(".loop");
  a.loadb(R11, R2, 0);
  a.storeb(R1, 0, R11);
  a.cmpi(R11, 0);
  a.jz(".done");
  a.addi(R1, 1);
  a.addi(R2, 1);
  a.jmp(".loop");
  a.label(".done");
  a.ret();

  // ---- strcat(r1 dst, r2 src) -> r0 dst ----
  a.func("strcat");
  a.mov(R0, R1);
  a.label(".find");
  a.loadb(R11, R1, 0);
  a.cmpi(R11, 0);
  a.jz(".copy");
  a.addi(R1, 1);
  a.jmp(".find");
  a.label(".copy");
  a.loadb(R11, R2, 0);
  a.storeb(R1, 0, R11);
  a.cmpi(R11, 0);
  a.jz(".done");
  a.addi(R1, 1);
  a.addi(R2, 1);
  a.jmp(".copy");
  a.label(".done");
  a.ret();

  // ---- strcmp(r1, r2) -> r0 (0 if equal) ----
  a.func("strcmp");
  a.label(".loop");
  a.loadb(R11, R1, 0);
  a.loadb(R12, R2, 0);
  a.cmp(R11, R12);
  a.jnz(".diff");
  a.cmpi(R11, 0);
  a.jz(".eq");
  a.addi(R1, 1);
  a.addi(R2, 1);
  a.jmp(".loop");
  a.label(".diff");
  a.mov(R0, R11);
  a.sub(R0, R12);
  a.ret();
  a.label(".eq");
  a.movi(R0, 0);
  a.ret();

  // ---- memset(r1 dst, r2 val, r3 n) ----
  a.func("memset");
  a.label(".loop");
  a.cmpi(R3, 0);
  a.jz(".done");
  a.storeb(R1, 0, R2);
  a.addi(R1, 1);
  a.subi(R3, 1);
  a.jmp(".loop");
  a.label(".done");
  a.ret();

  // ---- memcpy(r1 dst, r2 src, r3 n) ----
  a.func("memcpy");
  a.label(".loop");
  a.cmpi(R3, 0);
  a.jz(".done");
  a.loadb(R11, R2, 0);
  a.storeb(R1, 0, R11);
  a.addi(R1, 1);
  a.addi(R2, 1);
  a.subi(R3, 1);
  a.jmp(".loop");
  a.label(".done");
  a.ret();

  // ---- print(r1 s): write(1, s, strlen(s)) ----
  a.func("print");
  a.push(R1);
  a.call("strlen");
  a.pop(R2);
  a.mov(R3, R0);
  a.movi(R1, 1);
  a.call("sys_write");
  a.ret();

  // ---- print_err(r1 s) ----
  a.func("print_err");
  a.push(R1);
  a.call("strlen");
  a.pop(R2);
  a.mov(R3, R0);
  a.movi(R1, 2);
  a.call("sys_write");
  a.ret();

  // ---- itoa(r1 value, r2 buf) -> r0 len (unsigned decimal) ----
  a.func("itoa");
  a.subi(SP, 16);
  a.movi(R11, 0);  // digit count
  a.mov(R12, R1);  // value
  a.cmpi(R12, 0);
  a.jnz(".digits");
  a.movi(R13, '0');
  a.storeb(R2, 0, R13);
  a.movi(R13, 0);
  a.storeb(R2, 1, R13);
  a.movi(R0, 1);
  a.addi(SP, 16);
  a.ret();
  a.label(".digits");
  a.cmpi(R12, 0);
  a.jz(".emit");
  a.mov(R13, R12);
  a.movi(R14, 10);
  a.mod(R13, R14);
  a.addi(R13, '0');
  a.mov(R14, SP);
  a.add(R14, R11);
  a.storeb(R14, 0, R13);
  a.addi(R11, 1);
  a.movi(R14, 10);
  a.div(R12, R14);
  a.jmp(".digits");
  a.label(".emit");
  a.movi(R0, 0);
  a.label(".eloop");
  a.cmpi(R11, 0);
  a.jz(".done");
  a.subi(R11, 1);
  a.mov(R13, SP);
  a.add(R13, R11);
  a.loadb(R14, R13, 0);
  a.mov(R13, R2);
  a.add(R13, R0);
  a.storeb(R13, 0, R14);
  a.addi(R0, 1);
  a.jmp(".eloop");
  a.label(".done");
  a.mov(R13, R2);
  a.add(R13, R0);
  a.movi(R14, 0);
  a.storeb(R13, 0, R14);
  a.addi(SP, 16);
  a.ret();

  // ---- atoi(r1 s) -> r0 ----
  a.func("atoi");
  a.movi(R0, 0);
  a.label(".loop");
  a.loadb(R11, R1, 0);
  a.cmpi(R11, '0');
  a.jlt(".done");
  a.cmpi(R11, '9');
  a.jgt(".done");
  a.muli(R0, 10);
  a.subi(R11, '0');
  a.add(R0, R11);
  a.addi(R1, 1);
  a.jmp(".loop");
  a.label(".done");
  a.ret();

  // ---- print_num(r1 n) ----
  a.func("print_num");
  a.lea(R2, "libc_itoa_buf");
  a.call("itoa");
  a.lea(R1, "libc_itoa_buf");
  a.call("print");
  a.ret();

  // ---- log_error_net: report a fatal error over the "syslog" socket ----
  // Only reachable from die(); static analysis finds socket/sendto/close
  // here even though no normal run executes them.
  a.func("log_error_net");
  a.movi(R1, 2);
  a.movi(R2, 2);
  a.movi(R3, 0);
  a.call("sys_socket");
  a.cmpi(R0, 0);
  a.jlt(".skip");
  a.subi(SP, 4);
  a.store(SP, 0, R0);
  a.mov(R1, R0);
  a.lea(R2, "libc_err_msg");
  a.movi(R3, 12);
  a.movi(R4, 0);
  a.movi(R5, 0);
  a.call("sys_sendto");
  a.load(R1, SP, 0);
  a.addi(SP, 4);
  a.call("sys_close");
  a.label(".skip");
  a.ret();

  // ---- die(r1 code): never returns ----
  a.func("die");
  a.push(R1);
  a.lea(R1, "libc_err_msg");
  a.call("print_err");
  a.call("log_error_net");
  a.call("sys_getpid");
  a.mov(R1, R0);
  a.movi(R2, 9);
  a.call("sys_kill");
  a.pop(R1);
  a.call("sys_exit");
  a.halt();

  // ---- open_or_die(r1 path, r2 flags, r3 mode) -> r0 fd ----
  a.func("open_or_die");
  a.call("sys_open");
  a.cmpi(R0, 0);
  a.jlt(".bad");
  a.ret();
  a.label(".bad");
  a.movi(R1, 1);
  a.call("die");
  a.ret();

  // ---- malloc(r1 n) -> r0 (brk bump allocator) ----
  a.func("malloc");
  a.addi(R1, 3);
  a.andi(R1, 0xfffffffcu);
  a.subi(SP, 8);
  a.store(SP, 0, R1);  // n
  a.lea(R11, "libc_malloc_cur");
  a.load(R12, R11, 0);
  a.cmpi(R12, 0);
  a.jnz(".have");
  a.movi(R1, 0);
  a.call("sys_brk");
  a.mov(R12, R0);
  a.lea(R11, "libc_malloc_cur");
  a.store(R11, 0, R12);
  a.label(".have");
  a.store(SP, 4, R12);  // cur
  a.load(R13, SP, 0);
  a.cmpi(R13, 65536);
  a.jle(".small");
  // Large allocation: advise the kernel (rare path; Table 2's madvise).
  a.mov(R1, R12);
  a.mov(R2, R13);
  a.movi(R3, 1);
  a.call("sys_madvise");
  a.label(".small");
  a.load(R12, SP, 4);
  a.load(R13, SP, 0);
  a.mov(R1, R12);
  a.add(R1, R13);
  a.call("sys_brk");
  a.cmpi(R0, 0);
  a.jlt(".fail");
  a.load(R12, SP, 4);
  a.load(R13, SP, 0);
  a.mov(R14, R12);
  a.add(R14, R13);
  a.lea(R11, "libc_malloc_cur");
  a.store(R11, 0, R14);
  a.mov(R0, R12);
  a.addi(SP, 8);
  a.ret();
  a.label(".fail");
  a.addi(SP, 8);
  a.movi(R1, 1);
  a.call("die");
  a.ret();

  // ---- tmpname(r1 buf): "/tmp/t<pid>" ----
  a.func("tmpname");
  a.subi(SP, 4);
  a.store(SP, 0, R1);
  a.lea(R2, "libc_tmp_prefix");
  a.call("strcpy");
  a.call("sys_getpid");
  a.mov(R1, R0);
  a.load(R2, SP, 0);
  a.addi(R2, 6);  // strlen("/tmp/t")
  a.call("itoa");
  a.load(R0, SP, 0);
  a.addi(SP, 4);
  a.ret();

  // ---- sig_init: install handlers for TERM and INT ----
  a.func("sig_init");
  a.movi(R1, 15);
  a.lea(R2, "libc_sigact_buf");
  a.movi(R3, 0);
  a.call("sys_sigaction");
  a.movi(R1, 2);
  a.lea(R2, "libc_sigact_buf");
  a.movi(R3, 0);
  a.call("sys_sigaction");
  a.ret();

  // ---- diag: verbose diagnostics (rare path apps expose via flags) ----
  a.func("diag");
  a.lea(R1, "libc_uname_buf");
  a.call("sys_uname");
  a.lea(R1, "libc_uname_buf");
  a.call("print");
  a.lea(R1, "libc_nl");
  a.call("print");
  a.movi(R1, 1);
  a.call("sys_sysconf");
  a.mov(R1, R0);
  a.call("print_num");
  a.lea(R1, "libc_nl");
  a.call("print");
  a.lea(R1, "libc_sleep_ts");
  a.movi(R2, 0);
  a.call("sys_nanosleep");
  a.ret();

  // ---- asc_set_hint1(r1 take): hint block for one single-star pattern ----
  a.func("asc_set_hint1");
  a.lea(R11, "asc_hint_buf");
  a.movi(R12, 1);
  a.store(R11, 0, R12);
  a.store(R11, 4, R1);
  a.ret();

  // ---- _start ----
  a.func("_start");
  a.call("main");
  a.mov(R1, R0);
  a.call("sys_exit");
  a.halt();
}

void emit_data(tasm::Assembler& a) {
  a.rodata_cstr("libc_err_msg", "fatal error\n");
  a.rodata_cstr("libc_tmp_prefix", "/tmp/t");
  a.rodata_cstr("libc_nl", "\n");
  a.data_words("libc_malloc_cur", {0});
  a.data_words("libc_sleep_ts", {0, 1000});
  a.bss("libc_itoa_buf", 16);
  a.bss("libc_uname_buf", 64);
  a.bss("libc_sigact_buf", 16);
  a.bss("libc_tv_buf", 8);
  a.bss("asc_hint_buf", 64);
}

}  // namespace

void emit_libc(tasm::Assembler& a, Personality personality) {
  emit_stubs(a, personality);
  emit_helpers(a);
  emit_data(a);
}

}  // namespace asc::apps
