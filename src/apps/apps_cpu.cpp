// CPU-bound benchmark guests (the SPECint-2000 stand-ins of Table 5):
// gzip-spec, crafty, mcf, vpr, twolf. Each takes an iteration count in
// argv[0] (with a default), runs a compute kernel with few system calls,
// and prints a checksum.
#include "apps/apps.h"
#include "apps/libtoy.h"
#include "tasm/assembler.h"

namespace asc::apps {

namespace {

/// main() boilerplate: r1 = scale (argv[0] or `def`), call `kernel`, print
/// the checksum and a newline, return 0.
void cpu_main(tasm::Assembler& a, const std::string& kernel, std::uint32_t def) {
  a.func("main");
  a.subi(SP, 12);
  a.store(SP, 0, R1);
  a.store(SP, 4, R2);
  a.movi(R11, def);
  a.store(SP, 8, R11);
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".run");
  a.load(R11, SP, 4);
  a.load(R1, R11, 0);
  a.call("atoi");
  a.cmpi(R0, 0);
  a.jz(".run");
  a.store(SP, 8, R0);
  a.label(".run");
  a.load(R1, SP, 8);
  a.call(kernel);
  a.mov(R1, R0);
  a.call("print_num");
  a.lea(R1, "libc_nl");
  a.call("print");
  a.addi(SP, 12);
  a.movi(R0, 0);
  a.ret();
}

}  // namespace

binary::Image build_gzip_spec(os::Personality p) {
  tasm::Assembler a("gzip-spec");
  cpu_main(a, "gz_kernel", 20);

  // gz_kernel(r1 = passes) -> r0 checksum. Generates a 32KB pseudo-random
  // buffer once, then RLE-compresses it `passes` times.
  a.func("gz_kernel");
  a.movi(R11, 12345);  // LCG state
  a.movi(R12, 0);
  a.label(".gen");
  a.cmpi(R12, 32768);
  a.jge(".gen_done");
  a.muli(R11, 1103515245);
  a.addi(R11, 12345);
  a.mov(R13, R11);
  a.shri(R13, 16);
  a.andi(R13, 3);  // few distinct values -> compressible runs
  a.lea(R14, "spec_in");
  a.add(R14, R12);
  a.storeb(R14, 0, R13);
  a.addi(R12, 1);
  a.jmp(".gen");
  a.label(".gen_done");
  a.movi(R0, 0);
  a.label(".iter");
  a.cmpi(R1, 0);
  a.jz(".done");
  a.movi(R12, 0);  // input cursor
  a.movi(R4, 0);   // output cursor
  a.label(".cl");
  a.cmpi(R12, 32768);
  a.jge(".cd");
  a.lea(R13, "spec_in");
  a.add(R13, R12);
  a.loadb(R14, R13, 0);
  a.movi(R5, 0);
  a.label(".cr");
  a.cmpi(R12, 32768);
  a.jge(".ce");
  a.cmpi(R5, 255);
  a.jge(".ce");
  a.lea(R13, "spec_in");
  a.add(R13, R12);
  a.loadb(R3, R13, 0);
  a.cmp(R3, R14);
  a.jnz(".ce");
  a.addi(R12, 1);
  a.addi(R5, 1);
  a.jmp(".cr");
  a.label(".ce");
  a.lea(R13, "spec_out");
  a.add(R13, R4);
  a.storeb(R13, 0, R5);
  a.storeb(R13, 1, R14);
  a.addi(R4, 2);
  a.jmp(".cl");
  a.label(".cd");
  a.add(R0, R4);
  a.push(R0);
  a.push(R1);
  a.movi(R1, 1);
  a.lea(R2, "gs_dot");
  a.movi(R3, 1);
  a.movi(R0, 4);  // write
  a.syscall_();
  a.pop(R1);
  a.pop(R0);
  a.subi(R1, 1);
  a.jmp(".iter");
  a.label(".done");
  a.ret();

  a.rodata_cstr("gs_dot", ".");
  a.bss("spec_in", 32768);
  a.bss("spec_out", 65536);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_crafty(os::Personality p) {
  tasm::Assembler a("crafty");
  cpu_main(a, "crafty_kernel", 400000);

  // xorshift-driven "position evaluation" loop (bit tricks, no memory).
  a.func("crafty_kernel");
  a.movi(R0, 0);
  a.movi(R11, 88172645);
  a.label(".loop");
  a.cmpi(R1, 0);
  a.jz(".done");
  // Progress tick every 16384 evaluations (matches the I/O the real
  // programs do alongside their computation).
  a.mov(R12, R1);
  a.andi(R12, 16383);
  a.cmpi(R12, 0);
  a.jnz(".no_tick");
  a.push(R0);
  a.push(R1);
  a.push(R11);
  a.movi(R1, 1);
  a.lea(R2, "cr_dot");
  a.movi(R3, 1);
  a.movi(R0, 4);  // write
  a.syscall_();
  a.pop(R11);
  a.pop(R1);
  a.pop(R0);
  a.label(".no_tick");
  a.mov(R12, R11);
  a.shli(R12, 13);
  a.xor_(R11, R12);
  a.mov(R12, R11);
  a.shri(R12, 17);
  a.xor_(R11, R12);
  a.mov(R12, R11);
  a.shli(R12, 5);
  a.xor_(R11, R12);
  a.mov(R12, R11);
  a.andi(R12, 0x0f0f0f0f);
  a.add(R0, R12);
  a.mov(R12, R11);
  a.shri(R12, 4);
  a.andi(R12, 0x0f0f0f0f);
  a.sub(R0, R12);
  a.subi(R1, 1);
  a.jmp(".loop");
  a.label(".done");
  a.ret();
  a.rodata_cstr("cr_dot", ".");
  emit_libc(a, p);
  return a.link();
}

binary::Image build_mcf(os::Personality p) {
  tasm::Assembler a("mcf");
  cpu_main(a, "mcf_kernel", 400);

  // Cost-table relaxation passes (memory-bound loop).
  a.func("mcf_kernel");
  a.movi(R11, 0);
  a.label(".init");
  a.cmpi(R11, 1024);
  a.jge(".init_done");
  a.mov(R12, R11);
  a.muli(R12, 2654435761u);
  a.shri(R12, 20);
  a.lea(R13, "mcf_tab");
  a.mov(R14, R11);
  a.muli(R14, 4);
  a.add(R13, R14);
  a.store(R13, 0, R12);
  a.addi(R11, 1);
  a.jmp(".init");
  a.label(".init_done");
  a.label(".pass");
  a.cmpi(R1, 0);
  a.jz(".done");
  a.mov(R12, R1);
  a.andi(R12, 31);
  a.cmpi(R12, 0);
  a.jnz(".no_tick");
  a.push(R1);
  a.movi(R1, 1);
  a.lea(R2, "mc_dot");
  a.movi(R3, 1);
  a.movi(R0, 4);  // write
  a.syscall_();
  a.pop(R1);
  a.label(".no_tick");
  a.movi(R11, 1);
  a.label(".relax");
  a.cmpi(R11, 1024);
  a.jge(".pass_end");
  a.lea(R13, "mcf_tab");
  a.mov(R14, R11);
  a.muli(R14, 4);
  a.add(R13, R14);
  a.load(R12, R13, 0);
  a.load(R5, R13, -4);
  a.addi(R5, 3);
  a.cmp(R12, R5);
  a.jle(".no_relax");
  a.store(R13, 0, R5);
  a.label(".no_relax");
  a.addi(R11, 1);
  a.jmp(".relax");
  a.label(".pass_end");
  a.subi(R1, 1);
  a.jmp(".pass");
  a.label(".done");
  a.lea(R13, "mcf_tab");
  a.load(R0, R13, 4092);
  a.ret();
  a.bss("mcf_tab", 4096);
  a.rodata_cstr("mc_dot", ".");
  emit_libc(a, p);
  return a.link();
}

binary::Image build_vpr(os::Personality p) {
  tasm::Assembler a("vpr");
  cpu_main(a, "vpr_kernel", 300000);

  // Simulated-annealing-flavored accept/reject loop (mul/mod heavy).
  a.func("vpr_kernel");
  a.movi(R11, 7);
  a.movi(R0, 0);
  a.label(".loop");
  a.cmpi(R1, 0);
  a.jz(".done");
  a.mov(R12, R1);
  a.andi(R12, 16383);
  a.cmpi(R12, 0);
  a.jnz(".no_tick");
  a.push(R0);
  a.push(R1);
  a.push(R11);
  a.movi(R1, 1);
  a.lea(R2, "vp_dot");
  a.movi(R3, 1);
  a.movi(R0, 4);  // write
  a.syscall_();
  a.pop(R11);
  a.pop(R1);
  a.pop(R0);
  a.label(".no_tick");
  a.muli(R11, 1664525);
  a.addi(R11, 1013904223);
  a.mov(R12, R11);
  a.shri(R12, 16);
  a.andi(R12, 255);
  a.mov(R13, R11);
  a.shri(R13, 8);
  a.andi(R13, 255);
  a.mov(R14, R12);
  a.sub(R14, R13);
  a.mov(R5, R14);
  a.mul(R14, R5);
  a.mov(R5, R14);
  a.movi(R3, 7);
  a.mod(R5, R3);
  a.cmpi(R5, 3);
  a.jge(".reject");
  a.add(R0, R14);
  a.jmp(".next");
  a.label(".reject");
  a.subi(R0, 1);
  a.label(".next");
  a.subi(R1, 1);
  a.jmp(".loop");
  a.label(".done");
  a.ret();
  a.rodata_cstr("vp_dot", ".");
  emit_libc(a, p);
  return a.link();
}

binary::Image build_twolf(os::Personality p) {
  tasm::Assembler a("twolf");
  cpu_main(a, "twolf_kernel", 300000);

  // Place-and-route analog: table updates with mod arithmetic.
  a.func("twolf_kernel");
  a.movi(R0, 1);
  a.label(".loop");
  a.cmpi(R1, 0);
  a.jz(".done");
  a.mov(R11, R1);
  a.andi(R11, 16383);
  a.cmpi(R11, 0);
  a.jnz(".no_tick");
  a.push(R0);
  a.push(R1);
  a.movi(R1, 1);
  a.lea(R2, "tw_dot");
  a.movi(R3, 1);
  a.movi(R0, 4);  // write
  a.syscall_();
  a.pop(R1);
  a.pop(R0);
  a.label(".no_tick");
  a.mov(R11, R1);
  a.andi(R11, 1023);
  a.muli(R11, 4);
  a.lea(R12, "twolf_tab");
  a.add(R12, R11);
  a.load(R13, R12, 0);
  a.addi(R13, 17);
  a.mov(R14, R13);
  a.movi(R5, 13);
  a.mod(R14, R5);
  a.add(R13, R14);
  a.store(R12, 0, R13);
  a.add(R0, R13);
  a.subi(R1, 1);
  a.jmp(".loop");
  a.label(".done");
  a.ret();
  a.bss("twolf_tab", 4096);
  a.rodata_cstr("tw_dot", ".");
  emit_libc(a, p);
  return a.link();
}

}  // namespace asc::apps
